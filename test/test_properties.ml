(* Cross-module property tests: paper invariants checked over random
   circuits rather than one fixture. *)

let make_pool seed gates =
  let nl =
    Circuit.Generator.generate
      { Circuit.Generator.default with num_gates = gates; seed; depth = 8;
        num_inputs = 10; num_outputs = 8 }
  in
  let model = Timing.Variation.make_model ~levels:3 () in
  let dm = Timing.Delay_model.build nl model in
  let t_cons = Timing.Delay_model.nominal_critical_delay dm in
  let r = Timing.Path_extract.extract ~max_paths:400 dm ~t_cons ~yield_threshold:0.99 in
  match r.Timing.Path_extract.paths with
  | [] -> None
  | paths -> Some (dm, t_cons, Timing.Paths.build dm paths)

let prop_exact_selection_zero_error =
  QCheck.Test.make ~count:12 ~name:"exact selection has ~zero analytic error"
    QCheck.(int_range 1 500)
    (fun seed ->
      match make_pool seed 90 with
      | None -> true
      | Some (_, _, pool) ->
        let sel =
          Core.Select.exact ~a:(Timing.Paths.a_mat pool)
            ~mu:(Timing.Paths.mu_paths pool) ()
        in
        sel.Core.Select.eps_r < 1e-6)

let prop_rank_at_most_segments =
  QCheck.Test.make ~count:12 ~name:"Lemma 1: rank(A) <= n_S on random circuits"
    QCheck.(int_range 501 1000)
    (fun seed ->
      match make_pool seed 80 with
      | None -> true
      | Some (_, _, pool) ->
        Linalg.Rank.of_mat (Timing.Paths.a_mat pool) <= Timing.Paths.num_segments pool)

let prop_approx_never_exceeds_rank =
  QCheck.Test.make ~count:10 ~name:"Algorithm 1 size never exceeds rank"
    QCheck.(int_range 1 300)
    (fun seed ->
      match make_pool seed 100 with
      | None -> true
      | Some (_, t_cons, pool) ->
        let sel =
          Core.Select.approximate ~a:(Timing.Paths.a_mat pool)
            ~mu:(Timing.Paths.mu_paths pool) ~eps:0.05 ~t_cons ()
        in
        Array.length sel.Core.Select.indices <= sel.Core.Select.rank)

let prop_analytic_bound_holds_on_mc =
  QCheck.Test.make ~count:6 ~name:"per-path analytic sigma bounds MC deviations"
    QCheck.(int_range 1 200)
    (fun seed ->
      match make_pool seed 90 with
      | None -> true
      | Some (_, t_cons, pool) ->
        let sel =
          Core.Select.approximate ~a:(Timing.Paths.a_mat pool)
            ~mu:(Timing.Paths.mu_paths pool) ~eps:0.05 ~t_cons ()
        in
        let p = sel.Core.Select.predictor in
        let mc = Timing.Monte_carlo.sample (Rng.create (seed + 9000)) pool ~n:400 in
        let d = Timing.Monte_carlo.path_delays mc in
        let rep = Core.Predictor.rep_indices p in
        let rem = Core.Predictor.rem_indices p in
        let pred = Core.Predictor.predict_all p ~measured:(Linalg.Mat.select_cols d rep) in
        let sigmas = Core.Predictor.error_sigmas p in
        (* every observed |error| must stay within 5.5 sigma of the
           analytic model. 400 samples x up to ~100 remaining paths is
           ~40k Gaussian draws per case, whose expected max |z| is
           already ~4.6 — a 4.5-sigma bound flakes routinely. 5.5
           clears the observed worst case over the whole generator
           domain (4.85) yet still fails if the sigma model is off by
           ~15% or more. *)
        let ok = ref true in
        Array.iteri
          (fun j rem_j ->
            for k = 0 to 399 do
              let e = Float.abs (Linalg.Mat.get pred k j -. Linalg.Mat.get d k rem_j) in
              if e > (5.5 *. sigmas.(j)) +. 1e-9 then ok := false
            done)
          rem;
        !ok)

let prop_ssta_mean_dominates_paths =
  QCheck.Test.make ~count:8 ~name:"SSTA circuit mean >= every path mean"
    QCheck.(int_range 1 400)
    (fun seed ->
      match make_pool seed 70 with
      | None -> true
      | Some (dm, _, pool) ->
        let r = Timing.Ssta.analyze dm in
        let mean = r.Timing.Ssta.circuit_delay.Timing.Ssta.mean in
        let mu = Timing.Paths.mu_paths pool in
        Array.for_all (fun m -> mean >= m -. 1e-6) mu)

let prop_hybrid_bounded =
  QCheck.Test.make ~count:5 ~name:"hybrid measurements bounded by r1 + n_S"
    QCheck.(int_range 1 100)
    (fun seed ->
      match make_pool seed 80 with
      | None -> true
      | Some (_, t_cons, pool) ->
        let h =
          Core.Hybrid.run ~a:(Timing.Paths.a_mat pool) ~g:(Timing.Paths.g_mat pool)
            ~sigma:(Timing.Paths.sigma_mat pool) ~mu:(Timing.Paths.mu_paths pool)
            ~eps:0.08 ~t_cons ()
        in
        Core.Hybrid.total_measurements h <= h.Core.Hybrid.r1 + Timing.Paths.num_segments pool)

let prop_extraction_paths_end_at_outputs =
  QCheck.Test.make ~count:10 ~name:"every extracted path ends at a primary output"
    QCheck.(int_range 1 600)
    (fun seed ->
      match make_pool seed 80 with
      | None -> true
      | Some (dm, _, pool) ->
        let nl = Timing.Delay_model.netlist dm in
        let po = Hashtbl.create 32 in
        Array.iter
          (fun o -> Hashtbl.replace po (Circuit.Netlist.encode_signal nl o) ())
          (Circuit.Netlist.outputs nl);
        let ok = ref true in
        for i = 0 to Timing.Paths.num_paths pool - 1 do
          let p = Timing.Paths.path pool i in
          let last = p.Timing.Path_extract.gates.(Array.length p.Timing.Path_extract.gates - 1) in
          let code = Circuit.Netlist.encode_signal nl (Circuit.Netlist.Gate_out last) in
          if not (Hashtbl.mem po code) then ok := false
        done;
        !ok)

let suites =
  [
    ( "paper-invariants",
      List.map (fun t -> QCheck_alcotest.to_alcotest t)
        [
          prop_exact_selection_zero_error;
          prop_rank_at_most_segments;
          prop_approx_never_exceeds_rank;
          prop_analytic_bound_holds_on_mc;
          prop_ssta_mean_dominates_paths;
          prop_hybrid_bounded;
          prop_extraction_paths_end_at_outputs;
        ] );
  ]
