(* Tests for the self-healing loop's state machine (Serve.Monitor),
   driven deterministically: [step ~now] takes the caller's clock, so
   calibration, drift-triggered re-selection, cooldown, exponential
   backoff on failure, and artifact-swap recalibration are all checked
   without threads or wall-clock sleeps. *)

module Monitor = Serve.Monitor

let n_paths = 5
let r = 2
let m = 3

let mon_cfg =
  {
    Monitor.default_config with
    Monitor.calibrate = 4;
    min_dies = 4;
    buffer = 8;
    refit_min = 2;
    cooldown = 1.0;
    max_backoff = 4.0;
    drift =
      { Stats.Drift.default_config with Stats.Drift.slack = 0.0; warn = 1.0;
        drift = 2.0 };
  }

(* a fully measured die whose residual is [resid]; delay values are
   arbitrary finite numbers keyed off [i] so the refit sees variation *)
let obs ?(resid = 0.0) i =
  let f k = 10.0 +. float_of_int (((i * 7) + k) mod 5) in
  let measured = Array.init r f in
  let truth = Array.init m (fun k -> f (r + k)) in
  let full = Array.append measured truth in
  { Monitor.measured; truth; full; resid; wafer = "" }

let create ?(config = mon_cfg) ?(reselect = fun _ -> Ok (r, m, 1.0)) () =
  Monitor.create ~config ~n_paths ~r ~m ~reselect ()

(* submit [calibrate] healthy dies with +/-0.1 residuals: reference
   mean ~0, sigma ~0.1, so a unit residual is a ~10-sigma step *)
let calibrate t ~now =
  for i = 1 to mon_cfg.Monitor.calibrate do
    Monitor.submit t (obs ~resid:(if i mod 2 = 0 then 0.1 else -0.1) i)
  done;
  Monitor.step t ~now

let test_calibration () =
  let t = create () in
  let r0 = Monitor.read t in
  Alcotest.(check bool) "starts calibrating" true r0.Monitor.calibrating;
  calibrate t ~now:0.0;
  let r1 = Monitor.read t in
  Alcotest.(check bool) "calibrated" false r1.Monitor.calibrating;
  Alcotest.(check int) "dies observed" 4 r1.Monitor.observed;
  Alcotest.(check string) "healthy" "healthy"
    (Stats.Drift.state_to_string r1.Monitor.state);
  (* refit_min = 2 < 4: a coefficient snapshot is published *)
  match Monitor.coefficients t with
  | Some (b, n) ->
    Alcotest.(check (pair int int)) "coeff dims" (r + 1, m) (Linalg.Mat.dims b);
    Alcotest.(check int) "dies behind the snapshot" 4 n
  | None -> Alcotest.fail "no coefficients after refit_min dies"

let test_drift_triggers_reselect () =
  let calls = ref [] in
  let reselect recent =
    calls := Linalg.Mat.dims recent :: !calls;
    Ok (r, m, 42.0)
  in
  let t = create ~reselect () in
  calibrate t ~now:0.0;
  (* one 10-sigma residual blows straight past drift = 2 *)
  Monitor.submit t (obs ~resid:1.0 99);
  Monitor.step t ~now:10.0;
  let rep = Monitor.read t in
  Alcotest.(check int) "one reselect" 1 rep.Monitor.reselects;
  Alcotest.(check int) "no failures" 0 rep.Monitor.reselect_failures;
  Alcotest.(check bool) "wall time surfaced" true
    (Float.abs (rep.Monitor.last_reselect_ms -. 42.0) < 1e-9);
  Alcotest.(check bool) "recalibrating against the new artifact" true
    rep.Monitor.calibrating;
  (match !calls with
   | [ (dies, cols) ] ->
     Alcotest.(check int) "full-path columns" n_paths cols;
     Alcotest.(check int) "all ring dies passed" 5 dies
   | l -> Alcotest.failf "expected one reselect call, got %d" (List.length l));
  (* cooldown: drift again immediately after recalibration must wait
     out [now + cooldown] before the next attempt fires *)
  calibrate t ~now:10.2;
  Monitor.submit t (obs ~resid:1.0 100);
  Monitor.step t ~now:10.5;
  Alcotest.(check int) "cooldown holds" 1 (Monitor.read t).Monitor.reselects;
  Monitor.step t ~now:11.0;
  Alcotest.(check int) "cooldown elapsed" 2 (Monitor.read t).Monitor.reselects

let test_failure_backoff () =
  let fail = ref true in
  let attempts = ref 0 in
  let reselect _ =
    incr attempts;
    if !fail then Error "boom" else Ok (r, m, 5.0)
  in
  let t = create ~reselect () in
  calibrate t ~now:0.0;
  Monitor.submit t (obs ~resid:1.0 50);
  Monitor.step t ~now:10.0;
  let rep = Monitor.read t in
  Alcotest.(check int) "first failure" 1 rep.Monitor.reselect_failures;
  Alcotest.(check string) "error surfaced" "boom" rep.Monitor.last_error;
  Alcotest.(check bool) "backoff at cooldown" true
    (Float.abs (rep.Monitor.backoff_s -. 1.0) < 1e-9);
  (* the latch holds the detector at Drifted, but the backoff gates
     retries: nothing fires before now + backoff *)
  Monitor.step t ~now:10.9;
  Alcotest.(check int) "backoff holds" 1 !attempts;
  Monitor.step t ~now:11.0;
  Alcotest.(check int) "retry at the deadline" 2 !attempts;
  Alcotest.(check bool) "backoff doubles" true
    (Float.abs ((Monitor.read t).Monitor.backoff_s -. 2.0) < 1e-9);
  Monitor.step t ~now:13.0;
  Alcotest.(check int) "third attempt" 3 !attempts;
  Monitor.step t ~now:17.0;
  Alcotest.(check int) "fourth attempt" 4 !attempts;
  Alcotest.(check bool) "backoff capped at max_backoff" true
    (Float.abs ((Monitor.read t).Monitor.backoff_s -. 4.0) < 1e-9);
  (* recovery: the next successful attempt clears the backoff and the
     failure trail, and the old-artifact stream was never interrupted *)
  fail := false;
  Monitor.step t ~now:21.0;
  let rep = Monitor.read t in
  Alcotest.(check int) "success after failures" 1 rep.Monitor.reselects;
  Alcotest.(check int) "failures retained for the record" 4
    rep.Monitor.reselect_failures;
  Alcotest.(check bool) "backoff cleared" true
    (Float.abs rep.Monitor.backoff_s < 1e-9);
  Alcotest.(check string) "error cleared" "" rep.Monitor.last_error

let test_swapped_recalibrates () =
  let t = create () in
  calibrate t ~now:0.0;
  Monitor.submit t (obs ~resid:1.0 7);
  (* min_dies not yet in the ring? it is (5 >= 4) — but make the swap
     arrive before the step so no reselect fires *)
  Monitor.swapped t ~r ~m;
  let rep = Monitor.read t in
  Alcotest.(check bool) "recalibrating after swap" true rep.Monitor.calibrating;
  Alcotest.(check int) "refit restarted" 0 rep.Monitor.refit_dies;
  Monitor.step t ~now:1.0;
  Alcotest.(check int) "no reselect during recalibration" 0
    (Monitor.read t).Monitor.reselects;
  (* incompatible split is a programming error, loudly rejected *)
  match Monitor.swapped t ~r:(r + 1) ~m with
  | () -> Alcotest.fail "incompatible split must be rejected"
  | exception Invalid_argument _ -> ()

(* serve's reload path reports every swap back through [swapped] — when
   the swap is the monitor's own re-selection landing, the post-reselect
   cooldown must survive the resync instead of being erased by it *)
let test_self_swap_keeps_cooldown () =
  let t = create () in
  calibrate t ~now:0.0;
  Monitor.submit t (obs ~resid:1.0 99);
  Monitor.step t ~now:10.0;
  Alcotest.(check int) "reselect fired" 1 (Monitor.read t).Monitor.reselects;
  (* the mon_resync round-trip: our own artifact landed *)
  Monitor.swapped t ~r ~m;
  calibrate t ~now:10.1;
  Monitor.submit t (obs ~resid:1.0 100);
  Monitor.step t ~now:10.5;
  Alcotest.(check int) "cooldown survives own swap" 1
    (Monitor.read t).Monitor.reselects;
  Monitor.step t ~now:11.0;
  Alcotest.(check int) "cooldown elapsed" 2 (Monitor.read t).Monitor.reselects

let test_operator_swap_clears_backoff () =
  let fail = ref true in
  let reselect _ = if !fail then Error "boom" else Ok (r, m, 1.0) in
  let t = create ~reselect () in
  calibrate t ~now:0.0;
  Monitor.submit t (obs ~resid:1.0 50);
  Monitor.step t ~now:10.0;
  Alcotest.(check bool) "backoff pending" true
    ((Monitor.read t).Monitor.backoff_s > 0.0);
  (* an operator SIGHUPs a fresh artifact in: pacing resets — the new
     model deserves an ungated first attempt if it still drifts *)
  Monitor.swapped t ~r ~m;
  Alcotest.(check bool) "operator swap clears backoff" true
    (Float.abs (Monitor.read t).Monitor.backoff_s < 1e-9);
  fail := false;
  calibrate t ~now:10.1;
  Monitor.submit t (obs ~resid:1.0 51);
  Monitor.step t ~now:10.2;
  Alcotest.(check int) "retry not gated after operator swap" 1
    (Monitor.read t).Monitor.reselects

let test_pending_cap_drops () =
  let cfg = { mon_cfg with Monitor.pending_cap = 2 } in
  let t = create ~config:cfg () in
  for i = 1 to 5 do Monitor.submit t (obs i) done;
  Monitor.step t ~now:0.0;
  let rep = Monitor.read t in
  Alcotest.(check int) "cap admits two" 2 rep.Monitor.observed;
  Alcotest.(check int) "overflow counted, not blocked" 3 rep.Monitor.dropped;
  (* the drain released exactly the admitted slots: the next batch is
     admitted up to the cap again, not against a stale count *)
  for i = 6 to 10 do Monitor.submit t (obs i) done;
  Monitor.step t ~now:1.0;
  let rep = Monitor.read t in
  Alcotest.(check int) "slots released after drain" 4 rep.Monitor.observed;
  Alcotest.(check int) "second overflow counted" 6 rep.Monitor.dropped

let test_malformed_observations () =
  let t = create () in
  (* wrong measured length: skipped by the shape check *)
  Monitor.submit t
    { Monitor.measured = [| 1.0 |]; truth = Array.make m 1.0;
      full = Array.make n_paths 1.0; resid = 0.0; wafer = "" };
  (* non-finite die: refit refuses it, detector sees the residual *)
  let bad = obs 3 in
  bad.Monitor.measured.(0) <- Float.nan;
  bad.Monitor.full.(0) <- Float.nan;
  Monitor.submit t bad;
  Monitor.step t ~now:0.0;
  let rep = Monitor.read t in
  Alcotest.(check int) "both skipped" 2 rep.Monitor.skipped;
  Alcotest.(check int) "neither observed" 0 rep.Monitor.observed;
  Alcotest.(check int) "fail-safe untripped" 0 rep.Monitor.monitor_errors

let test_create_validation () =
  let rejects name f =
    match f () with
    | (_ : Monitor.t) -> Alcotest.failf "%s: expected Invalid_argument" name
    | exception Invalid_argument _ -> ()
  in
  let reselect _ = Ok (r, m, 0.0) in
  rejects "split does not cover the pool" (fun () ->
      Monitor.create ~config:mon_cfg ~n_paths ~r:3 ~m ~reselect ());
  rejects "buffer below min_dies" (fun () ->
      Monitor.create
        ~config:{ mon_cfg with Monitor.buffer = 2 }
        ~n_paths ~r ~m ~reselect ());
  rejects "nonpositive cooldown" (fun () ->
      Monitor.create
        ~config:{ mon_cfg with Monitor.cooldown = 0.0 }
        ~n_paths ~r ~m ~reselect ());
  (* detector thresholds are validated at startup, not when calibration
     completes mid-stream on the monitor thread *)
  rejects "warn above drift threshold" (fun () ->
      Monitor.create
        ~config:
          { mon_cfg with
            Monitor.drift =
              { mon_cfg.Monitor.drift with Stats.Drift.warn = 9.0; drift = 8.0 } }
        ~n_paths ~r ~m ~reselect ());
  rejects "nonpositive drift threshold" (fun () ->
      Monitor.create
        ~config:
          { mon_cfg with
            Monitor.drift =
              { mon_cfg.Monitor.drift with Stats.Drift.warn = 0.0; drift = 0.0 } }
        ~n_paths ~r ~m ~reselect ())

(* ------------------------------------------------------------------ *)
(* Durability: recovery must land on the state an uninterrupted run
   holds — not approximately, bit-exactly. *)

module Durable = Serve.Durable

(* drift thresholds pushed out of reach: no re-selection fires, so the
   comparison below is pure ingest state (refit moments, detector
   accumulators, ring, counters) with no pacing noise *)
let quiet_cfg =
  {
    mon_cfg with
    Monitor.drift =
      { Stats.Drift.default_config with Stats.Drift.slack = 0.0; warn = 1e6;
        drift = 1e9; var_ratio = 1e9 };
  }

(* die [i] of a deterministic stream with some character: varying
   residuals, an occasional non-finite truth (exercises the skipped
   path) — recovery must reproduce the bookkeeping for those too *)
let stream_die i =
  let o = obs ~resid:(0.05 *. float_of_int ((i mod 9) - 4)) i in
  if i mod 7 = 3 then o.Monitor.truth.(0) <- Float.nan;
  o

let quiet_create () = create ~config:quiet_cfg ()

(* an uninterrupted monitor over journaled dies [1..n] *)
let uninterrupted n =
  let t = quiet_create () in
  for i = 1 to n do
    Monitor.submit ~seq:i t (stream_die i)
  done;
  Monitor.step t ~now:0.0;
  t

let prop_recovery =
  QCheck.Test.make ~count:40
    ~name:"checkpoint + WAL-suffix replay equals the uninterrupted run"
    QCheck.(triple (int_range 1 40) (int_range 0 1000) (int_range 0 3))
    (fun (n, kseed, overlap) ->
      let k = kseed mod (n + 1) in
      let reference = uninterrupted n in
      (* the crashed run: k dies made it into the checkpoint *)
      let before = quiet_create () in
      for i = 1 to k do
        Monitor.submit ~seq:i before (stream_die i)
      done;
      Monitor.step before ~now:0.0;
      (* the snapshot rides the real codec, so this also proves the
         canonical encoding round-trips *)
      let snap =
        match Durable.decode_snapshot (Durable.encode_snapshot
                                         (Monitor.snapshot before)) with
        | Ok s -> s
        | Error msg -> QCheck.Test.fail_reportf "snapshot codec: %s" msg
      in
      let recovered =
        Monitor.restore ~config:quiet_cfg ~n_paths
          ~reselect:(fun _ -> Error "no reselect during the property") snap
      in
      if Monitor.applied_seq recovered <> k then
        QCheck.Test.fail_reportf "restored applied_seq %d, expected %d"
          (Monitor.applied_seq recovered) k;
      (* replay a WAL suffix that overlaps the checkpoint: records at
         or below applied_seq must be skipped (idempotence) *)
      let from = Int.max 1 (k - overlap + 1) in
      Monitor.replay recovered
        (List.init (n - from + 1) (fun j -> (from + j, stream_die (from + j))));
      Monitor.applied_seq recovered = n
      && Durable.snapshot_equal (Monitor.snapshot reference)
           (Monitor.snapshot recovered))

(* a double replay of the same suffix must change nothing *)
let test_replay_idempotent () =
  let n = 12 and k = 5 in
  let recovered =
    Monitor.restore ~config:quiet_cfg ~n_paths
      ~reselect:(fun _ -> Error "no reselect")
      (Monitor.snapshot
         (let t = quiet_create () in
          for i = 1 to k do
            Monitor.submit ~seq:i t (stream_die i)
          done;
          Monitor.step t ~now:0.0;
          t))
  in
  let suffix = List.init (n - k) (fun j -> (k + 1 + j, stream_die (k + 1 + j))) in
  Monitor.replay recovered suffix;
  let once = Monitor.snapshot recovered in
  Monitor.replay recovered suffix;
  Alcotest.(check bool) "second replay is a no-op" true
    (Durable.snapshot_equal once (Monitor.snapshot recovered));
  Alcotest.(check bool) "matches the uninterrupted run" true
    (Durable.snapshot_equal (Monitor.snapshot (uninterrupted n)) once)

(* Durable.save_checkpoint rides Store.write_file_atomic: children are
   SIGKILLed mid-save; the checkpoint path must always load as the old
   or the new (gen, snapshot) pair, never torn — the serve-layer twin
   of test_store's kill-mid-write *)
let test_checkpoint_kill_mid_write () =
  let snap_after n =
    let t = uninterrupted n in
    Monitor.snapshot t
  in
  let s1 = snap_after 6 and s2 = snap_after 14 in
  let path = Filename.temp_file "pathsel-ckpt" ".psc" in
  (match Durable.save_checkpoint path ~gen:1 s1 with
   | Ok () -> ()
   | Error e -> Alcotest.failf "seed checkpoint: %s" (Core.Errors.to_string e));
  let fork_or_skip () =
    try Unix.fork () with Failure _ -> Sys.remove path; Alcotest.skip ()
  in
  for i = 0 to 19 do
    (match fork_or_skip () with
     | 0 ->
       ignore (Durable.save_checkpoint path ~gen:2 s2);
       Unix._exit 0
     | pid ->
       let delay = float_of_int (i mod 7) *. 0.0004 in
       if delay > 0.0 then Unix.sleepf delay;
       (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
       ignore (Unix.waitpid [] pid));
    match Durable.load_checkpoint path with
    | Error e ->
      Alcotest.failf "iteration %d: torn checkpoint: %s" i
        (Core.Errors.to_string e)
    | Ok None -> Alcotest.failf "iteration %d: checkpoint vanished" i
    | Ok (Some (gen, s)) ->
      if
        not
          ((gen = 1 && Durable.snapshot_equal s s1)
          || (gen = 2 && Durable.snapshot_equal s s2))
      then Alcotest.failf "iteration %d: checkpoint is neither old nor new" i
  done;
  let dir = Filename.dirname path in
  let prefix = Filename.basename path ^ ".tmp." in
  Array.iter
    (fun f ->
      if String.length f >= String.length prefix
         && String.sub f 0 (String.length prefix) = prefix
      then try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
    (Sys.readdir dir);
  Sys.remove path

let suites =
  [
    ( "monitor",
      List.map
        (fun (name, f) -> Alcotest.test_case name `Quick f)
        [
          ("calibration publishes a healthy baseline", test_calibration);
          ("drift triggers background reselect", test_drift_triggers_reselect);
          ("failed reselect backs off exponentially", test_failure_backoff);
          ("artifact swap recalibrates", test_swapped_recalibrates);
          ("own swap keeps the reselect cooldown", test_self_swap_keeps_cooldown);
          ("operator swap clears the backoff", test_operator_swap_clears_backoff);
          ("pending cap drops instead of blocking", test_pending_cap_drops);
          ("malformed observations are contained", test_malformed_observations);
          ("create validates config", test_create_validation);
          ("replay is idempotent", test_replay_idempotent);
          ( "kill mid-checkpoint leaves old or new, never torn",
            test_checkpoint_kill_mid_write );
        ]
      @ [ QCheck_alcotest.to_alcotest prop_recovery ] );
  ]
