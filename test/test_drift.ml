(* Tests for the CUSUM drift detector (Stats.Drift): threshold
   boundaries, the Drifted latch, the variance-ratio channel, the
   zero-sigma degenerate reference, and the NaN quarantine fail-safe. *)

open Stats

let cfg ?(slack = 0.5) ?(warn = 4.0) ?(drift = 8.0) ?(window = 8)
    ?(var_ratio = 6.0) ?(max_bad = 3) () =
  {
    Drift.slack;
    warn;
    drift;
    window;
    var_ratio;
    max_consecutive_bad = max_bad;
  }

let state = Alcotest.testable
    (fun fmt s -> Format.pp_print_string fmt (Drift.state_to_string s))
    (fun a b ->
      match (a, b) with
      | Drift.Healthy, Drift.Healthy
      | Drift.Warning, Drift.Warning
      | Drift.Drifted, Drift.Drifted -> true
      | (Drift.Healthy | Drift.Warning | Drift.Drifted), _ -> false)

let test_healthy_stream () =
  let d = Drift.create ~config:(cfg ()) ~mean:0.0 ~sigma:1.0 () in
  for i = 1 to 200 do
    let x = if i mod 2 = 0 then 0.3 else -0.3 in
    Alcotest.check state "stays healthy" Drift.Healthy (Drift.observe d x)
  done;
  Alcotest.(check int) "observed" 200 (Drift.observed d);
  Alcotest.(check bool) "cusum stays small" true (Drift.cusum d < 1.0)

let test_mean_shift_progression () =
  (* z = 2 per observation, slack 0.5: the high side climbs 1.5/obs.
     warn=4 binds on the 3rd observation (4.5), drift=8 on the 6th (9). *)
  let d = Drift.create ~config:(cfg ~window:64 ()) ~mean:0.0 ~sigma:1.0 () in
  let states = Array.init 6 (fun _ -> Drift.observe d 2.0) in
  Alcotest.check state "still healthy at 3.0" Drift.Healthy states.(1);
  Alcotest.check state "warning at 4.5" Drift.Warning states.(2);
  Alcotest.check state "warning at 7.5" Drift.Warning states.(4);
  Alcotest.check state "drifted at 9.0" Drift.Drifted states.(5)

let test_negative_shift_detected () =
  let d = Drift.create ~config:(cfg ~window:64 ()) ~mean:0.0 ~sigma:1.0 () in
  for _ = 1 to 5 do ignore (Drift.observe d (-2.0)) done;
  Alcotest.check state "two-sided" Drift.Drifted (Drift.observe d (-2.0))

let test_threshold_boundary_inclusive () =
  (* slack 0, threshold 2: two unit steps land the statistic exactly on
     the boundary — Drifted must bind at >=, not >. *)
  let config = cfg ~slack:0.0 ~warn:2.0 ~drift:2.0 ~window:64 () in
  let d = Drift.create ~config ~mean:0.0 ~sigma:1.0 () in
  Alcotest.check state "below threshold" Drift.Healthy (Drift.observe d 1.0);
  Alcotest.check state "exactly at threshold" Drift.Drifted (Drift.observe d 1.0)

let test_latch_and_reset () =
  let d = Drift.create ~config:(cfg ~window:64 ()) ~mean:0.0 ~sigma:1.0 () in
  for _ = 1 to 10 do ignore (Drift.observe d 2.0) done;
  Alcotest.check state "drifted" Drift.Drifted (Drift.state d);
  (* perfectly healthy residuals do not clear the latch *)
  for _ = 1 to 100 do
    Alcotest.check state "latched" Drift.Drifted (Drift.observe d 0.0)
  done;
  Drift.reset d;
  Alcotest.check state "reset clears the latch" Drift.Healthy (Drift.state d);
  Alcotest.(check bool) "cusum cleared" true (Drift.cusum d < 1e-12);
  Alcotest.check state "healthy after reset" Drift.Healthy (Drift.observe d 0.0)

let test_zero_sigma_reference () =
  (* degenerate reference: healthy residuals are a point mass, so the
     floored sigma turns the first real departure into a huge step *)
  let d = Drift.create ~config:(cfg ()) ~mean:1.0 ~sigma:0.0 () in
  for _ = 1 to 50 do
    Alcotest.check state "point mass is healthy" Drift.Healthy
      (Drift.observe d 1.0)
  done;
  Alcotest.check state "any departure binds immediately" Drift.Drifted
    (Drift.observe d 1.000001)

let test_variance_blowup_without_mean_shift () =
  (* alternating +/-3 sigma keeps both CUSUM sides below warn (each
     step up is cancelled on the next observation) but the windowed
     variance ratio is ~9x the reference: the variance channel must
     catch what the mean channel cannot. *)
  let config = cfg ~window:8 ~var_ratio:6.0 () in
  let d = Drift.create ~config ~mean:0.0 ~sigma:1.0 () in
  for i = 1 to 7 do
    let x = if i mod 2 = 0 then 3.0 else -3.0 in
    Alcotest.check state "mean channel silent" Drift.Healthy (Drift.observe d x);
    Alcotest.(check bool) "no ratio before the window fills" true
      (Drift.variance_ratio d = None)
  done;
  Alcotest.check state "variance channel binds" Drift.Drifted
    (Drift.observe d 3.0);
  (match Drift.variance_ratio d with
   | Some r -> Alcotest.(check bool) "ratio ~ 9" true (r > 6.0 && r < 12.0)
   | None -> Alcotest.fail "window full but no ratio")

let test_nan_quarantine () =
  let d = Drift.create ~config:(cfg ~max_bad:3 ()) ~mean:0.0 ~sigma:1.0 () in
  ignore (Drift.observe d Float.nan);
  ignore (Drift.observe d Float.infinity);
  Alcotest.(check bool) "two bad, not yet quarantined" false (Drift.quarantined d);
  Alcotest.(check int) "bad counted" 2 (Drift.bad_inputs d);
  (* a finite residual resets the consecutive run *)
  ignore (Drift.observe d 0.0);
  ignore (Drift.observe d Float.nan);
  ignore (Drift.observe d Float.nan);
  Alcotest.(check bool) "run restarted" false (Drift.quarantined d);
  ignore (Drift.observe d Float.nan);
  Alcotest.(check bool) "third consecutive quarantines" true (Drift.quarantined d);
  Alcotest.(check int) "cumulative bad" 5 (Drift.bad_inputs d);
  (* quarantine freezes the detector: even a massive shift is ignored *)
  let n0 = Drift.observed d in
  Alcotest.check state "frozen" Drift.Healthy (Drift.observe d 1000.0);
  Alcotest.(check int) "frozen input not consumed" n0 (Drift.observed d);
  Drift.reset d;
  Alcotest.(check bool) "reset lifts quarantine" false (Drift.quarantined d);
  Alcotest.(check int) "bad_inputs survives reset" 5 (Drift.bad_inputs d)

let test_create_validation () =
  let rejects name f =
    match f () with
    | (_ : Drift.t) -> Alcotest.failf "%s: expected Invalid_argument" name
    | exception Invalid_argument _ -> ()
  in
  rejects "negative sigma" (fun () -> Drift.create ~mean:0.0 ~sigma:(-1.0) ());
  rejects "nan mean" (fun () -> Drift.create ~mean:Float.nan ~sigma:1.0 ());
  rejects "nan sigma" (fun () -> Drift.create ~mean:0.0 ~sigma:Float.nan ());
  rejects "warn above drift" (fun () ->
      Drift.create ~config:(cfg ~warn:9.0 ~drift:8.0 ()) ~mean:0.0 ~sigma:1.0 ());
  rejects "window of one" (fun () ->
      Drift.create ~config:(cfg ~window:1 ()) ~mean:0.0 ~sigma:1.0 ());
  rejects "nonpositive drift" (fun () ->
      Drift.create ~config:(cfg ~warn:0.0 ~drift:0.0 ()) ~mean:0.0 ~sigma:1.0 ());
  rejects "var_ratio at one" (fun () ->
      Drift.create ~config:(cfg ~var_ratio:1.0 ()) ~mean:0.0 ~sigma:1.0 ());
  rejects "bad run of zero" (fun () ->
      Drift.create ~config:(cfg ~max_bad:0 ()) ~mean:0.0 ~sigma:1.0 ());
  rejects "nan warn" (fun () ->
      Drift.create ~config:(cfg ~warn:Float.nan ()) ~mean:0.0 ~sigma:1.0 ());
  (* the standalone validator lets callers that defer detector creation
     (calibration) fail at configuration time *)
  match Drift.check_config (cfg ~warn:9.0 ~drift:8.0 ()) with
  | () -> Alcotest.fail "check_config: expected Invalid_argument"
  | exception Invalid_argument _ -> Drift.check_config (cfg ())

let suites =
  [
    ( "drift",
      List.map
        (fun (name, f) -> Alcotest.test_case name `Quick f)
        [
          ("healthy stream stays healthy", test_healthy_stream);
          ("mean shift walks warn then drifted", test_mean_shift_progression);
          ("negative shift detected", test_negative_shift_detected);
          ("drift boundary is inclusive", test_threshold_boundary_inclusive);
          ("drifted latches until reset", test_latch_and_reset);
          ("zero-sigma reference is floored", test_zero_sigma_reference);
          ("variance blow-up without mean shift", test_variance_blowup_without_mean_shift);
          ("nan quarantine", test_nan_quarantine);
          ("create validates inputs", test_create_validation);
        ] );
  ]
