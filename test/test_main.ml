let () =
  Alcotest.run "repro"
    (Test_linalg.suites @ Test_stats.suites @ Test_circuit.suites
     @ Test_timing.suites @ Test_convexopt.suites @ Test_core.suites
     @ Test_extensions.suites @ Test_edge_cases.suites @ Test_sparse_rsvd.suites @ Test_liberty.suites @ Test_measurement.suites @ Test_verilog.suites @ Test_report.suites @ Test_nested.suites @ Test_experiments.suites @ Test_sdf_corners.suites @ Test_placement.suites @ Test_baselines.suites @ Test_golden.suites @ Test_criticality.suites @ Test_properties.suites
     @ Test_par.suites
     @ Test_robust.suites @ Test_store.suites @ Test_wal.suites
     @ Test_refit.suites
     @ Test_drift.suites @ Test_serve.suites @ Test_monitor.suites
     @ Test_chaos.suites @ Test_lint.suites @ Test_analysis.suites
     @ Test_yield.suites
     @ Test_tune.suites)
