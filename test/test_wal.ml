(* Tests for the observe journal (Store.Wal): framed append/fold
   round-trips, torn-tail recovery on open, mid-log corruption
   detection, segment rotation + retention pruning, and a
   kill-mid-append crash-safety loop in the test_store style. *)

module Wal = Store.Wal

let dir_counter = ref 0

(* a fresh, not-yet-existing directory; Wal.open_ creates it *)
let fresh_dir () =
  incr dir_counter;
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "pathsel-wal-test-%d-%d" (Unix.getpid ()) !dir_counter)

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter
      (fun f -> Sys.remove (Filename.concat dir f))
      (Sys.readdir dir);
    Unix.rmdir dir
  end

let get_ok label = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" label (Core.Errors.to_string e)

let open_wal ?config dir = get_ok "open_" (Wal.open_ ?config dir)

(* replay the whole dir into [(seq, payload)] order plus the high-water
   mark, via the public fold *)
let replay ?from_seq dir =
  let acc, high =
    get_ok "fold"
      (Wal.fold ?from_seq dir ~init:[] ~f:(fun acc ~seq payload ->
           (seq, payload) :: acc))
  in
  (List.rev acc, high)

let segments dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f ->
         String.length f > 4 && String.sub f 0 4 = "wal-")
  |> List.sort String.compare

(* deterministic payload for sequence number [i]; includes raw binary
   bytes so framing is exercised beyond printable text, and is ~1.1 KB
   so a handful of records fills a minimum-size (4 KiB) segment *)
let payload i =
  let head = Printf.sprintf "rec-%d-%c%c-" i (Char.chr (i mod 256)) (Char.chr 0) in
  head ^ String.init 1100 (fun j -> Char.chr ((i + j) mod 256))

let check_replay label dir ~upto =
  let records, high = replay dir in
  Alcotest.(check int) (label ^ ": high-water mark") upto high;
  Alcotest.(check int) (label ^ ": record count") upto (List.length records);
  List.iteri
    (fun i (seq, p) ->
      Alcotest.(check int) (label ^ ": seq order") (i + 1) seq;
      Alcotest.(check string) (label ^ ": payload") (payload seq) p)
    records

(* ------------------------------------------------------------------ *)

let test_roundtrip () =
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let t = open_wal dir in
  Alcotest.(check int) "seqs start at 1" 1 (Wal.next_seq t);
  let records, high = replay dir in
  Alcotest.(check int) "empty log high" 0 high;
  Alcotest.(check int) "empty log records" 0 (List.length records);
  let last = get_ok "append" (Wal.append t [ payload 1; payload 2 ]) in
  Alcotest.(check int) "append returns last seq" 2 last;
  let last = get_ok "append" (Wal.append t [ payload 3 ]) in
  Alcotest.(check int) "seqs are consecutive" 3 last;
  Alcotest.(check int) "next_seq advances" 4 (Wal.next_seq t);
  Wal.close t;
  check_replay "after close" dir ~upto:3;
  (* from_seq skips the prefix without breaking the high-water mark *)
  let tail, high = replay ~from_seq:3 dir in
  Alcotest.(check int) "from_seq high" 3 high;
  Alcotest.(check (list (pair int string)))
    "from_seq suffix"
    [ (3, payload 3) ]
    tail;
  (* reopen continues the sequence *)
  let t = open_wal dir in
  Alcotest.(check int) "reopen next_seq" 4 (Wal.next_seq t);
  ignore (get_ok "append" (Wal.append t [ payload 4 ]));
  Wal.close t;
  check_replay "after reopen" dir ~upto:4

let test_append_validation () =
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let t = open_wal dir in
  Fun.protect ~finally:(fun () -> Wal.close t) @@ fun () ->
  Alcotest.check_raises "empty batch rejected"
    (Invalid_argument "Wal.append: empty batch") (fun () ->
      ignore (Wal.append t []))

(* ------------------------------------------------------------------ *)
(* Torn tails: every way a crash can mangle the *last* segment must
   recover to the intact prefix — open_ truncates, fold ends silently,
   and the log accepts further appends at the right sequence number. *)

(* build a 3-record single-segment log, damage it, then check both
   read paths and that writing resumes *)
let torn_tail_case label damage =
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let t = open_wal dir in
  ignore (get_ok "append" (Wal.append t [ payload 1; payload 2; payload 3 ]));
  Wal.close t;
  let seg =
    match segments dir with
    | [ s ] -> Filename.concat dir s
    | ss -> Alcotest.failf "%s: expected 1 segment, got %d" label (List.length ss)
  in
  let pristine = In_channel.with_open_bin seg In_channel.input_all in
  let intact = damage ~seg ~pristine in
  (* fold without open_: torn tail in the last segment ends silently *)
  check_replay (label ^ " (fold)") dir ~upto:intact;
  (* open_ physically truncates and positions next_seq after the
     prefix; appends land where the lost records were *)
  let t = open_wal dir in
  Alcotest.(check int) (label ^ ": recovered next_seq") (intact + 1)
    (Wal.next_seq t);
  for i = intact + 1 to 3 do
    ignore (get_ok "append" (Wal.append t [ payload i ]))
  done;
  Wal.close t;
  check_replay (label ^ " (rewritten)") dir ~upto:3

(* byte offset where record [i] (0-based) starts: each frame is
   8 header + 8 seq + payload *)
let frame_start pristine i =
  let off = ref 0 in
  for _ = 1 to i do
    let len =
      Char.code pristine.[!off]
      lor (Char.code pristine.[!off + 1] lsl 8)
      lor (Char.code pristine.[!off + 2] lsl 16)
    in
    off := !off + 8 + len
  done;
  !off

let truncate_to ~seg ~pristine n =
  Out_channel.with_open_bin seg (fun oc ->
      Out_channel.output_string oc (String.sub pristine 0 n))

let test_torn_tails () =
  (* cut mid-way through the last frame's length field *)
  torn_tail_case "torn length field" (fun ~seg ~pristine ->
      truncate_to ~seg ~pristine (frame_start pristine 2 + 2);
      2);
  (* cut inside the last frame's CRC *)
  torn_tail_case "torn crc" (fun ~seg ~pristine ->
      truncate_to ~seg ~pristine (frame_start pristine 2 + 6);
      2);
  (* cut inside the last payload *)
  torn_tail_case "torn payload" (fun ~seg ~pristine ->
      truncate_to ~seg ~pristine (String.length pristine - 1);
      2);
  (* the whole last record gone: a clean shorter log *)
  torn_tail_case "missing last record" (fun ~seg ~pristine ->
      truncate_to ~seg ~pristine (frame_start pristine 2);
      2);
  (* a flipped payload byte fails the CRC: the record and everything
     after it (nothing here) are dropped *)
  torn_tail_case "payload bit flip" (fun ~seg ~pristine ->
      let b = Bytes.of_string pristine in
      let off = frame_start pristine 2 + 16 in
      Bytes.set b off (Char.chr (Char.code (Bytes.get b off) lxor 0x40));
      Out_channel.with_open_bin seg (fun oc ->
          Out_channel.output_bytes oc b);
      2);
  (* a flipped CRC byte likewise *)
  torn_tail_case "crc bit flip" (fun ~seg ~pristine ->
      let b = Bytes.of_string pristine in
      let off = frame_start pristine 2 + 4 in
      Bytes.set b off (Char.chr (Char.code (Bytes.get b off) lxor 0x01));
      Out_channel.with_open_bin seg (fun oc ->
          Out_channel.output_bytes oc b);
      2);
  (* trailing garbage after the last intact record reads as a torn
     frame, not as data *)
  torn_tail_case "trailing garbage" (fun ~seg ~pristine ->
      Out_channel.with_open_bin seg (fun oc ->
          Out_channel.output_string oc pristine;
          Out_channel.output_string oc "\xff\xff\xff\xff junk");
      3)

(* corruption that is NOT a crash tail — a bad frame in a sealed
   segment — is data loss and must be reported, not skipped *)
let test_midlog_corruption () =
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let config = { Wal.segment_bytes = 4096; retain_segments = 0 } in
  let t = open_wal ~config dir in
  for i = 1 to 12 do
    ignore (get_ok "append" (Wal.append t [ payload i ]))
  done;
  Wal.close t;
  let segs = segments dir in
  if List.length segs < 2 then
    Alcotest.failf "rotation produced %d segments" (List.length segs);
  (* flip a payload byte deep inside the FIRST (sealed) segment *)
  let first = Filename.concat dir (List.hd segs) in
  let b =
    Bytes.of_string (In_channel.with_open_bin first In_channel.input_all)
  in
  Bytes.set b 17 (Char.chr (Char.code (Bytes.get b 17) lxor 0x10));
  Out_channel.with_open_bin first (fun oc -> Out_channel.output_bytes oc b);
  match Wal.fold dir ~init:0 ~f:(fun acc ~seq:_ _ -> acc + 1) with
  | Ok (n, high) ->
    Alcotest.failf "mid-log corruption replayed as %d records (high %d)" n high
  | Error (Core.Errors.Corrupt_artifact _ as e) ->
    Alcotest.(check int) "sysexits data code" 65 (Core.Errors.exit_code e)
  | Error e ->
    Alcotest.failf "expected Corrupt_artifact, got %s" (Core.Errors.to_string e)

(* ------------------------------------------------------------------ *)
(* Rotation and retention *)

let test_rotation_and_prune () =
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let config = { Wal.segment_bytes = 4096; retain_segments = 1 } in
  let t = open_wal ~config dir in
  for i = 1 to 20 do
    ignore (get_ok "append" (Wal.append t [ payload i ]))
  done;
  let n_segs = List.length (segments dir) in
  if n_segs < 4 then Alcotest.failf "expected >= 4 segments, got %d" n_segs;
  (* replay spans every segment, in order *)
  check_replay "multi-segment replay" dir ~upto:20;
  (* a checkpoint at the high-water mark covers every sealed segment;
     prune keeps the active one plus retain_segments as safety *)
  let deleted = get_ok "prune" (Wal.prune t ~upto_seq:20) in
  Alcotest.(check int) "segments deleted" (n_segs - 2) deleted;
  Alcotest.(check int) "segments kept" 2 (List.length (segments dir));
  (* pruning again is a no-op *)
  Alcotest.(check int) "prune idempotent" 0
    (get_ok "prune" (Wal.prune t ~upto_seq:20));
  (* the surviving suffix still replays cleanly and keeps its seqs *)
  let records, high = replay dir in
  Alcotest.(check int) "suffix high" 20 high;
  (match records with
   | (first_seq, p) :: _ ->
     Alcotest.(check bool) "suffix starts past the pruned prefix" true
       (first_seq > 1);
     Alcotest.(check string) "suffix payload" (payload first_seq) p
   | [] -> Alcotest.fail "pruned log lost its suffix");
  (* writing continues across the prune *)
  ignore (get_ok "append" (Wal.append t [ payload 21 ]));
  Wal.close t;
  let _, high = replay dir in
  Alcotest.(check int) "post-prune append" 21 high;
  (* a checkpoint below the sealed segments deletes nothing *)
  let t = open_wal ~config dir in
  (match records with
   | (first_seq, _) :: _ ->
     Alcotest.(check int) "uncovered segments survive" 0
       (get_ok "prune" (Wal.prune t ~upto_seq:(first_seq - 1)))
   | [] -> ());
  Wal.close t

(* ------------------------------------------------------------------ *)
(* Crash safety: children are SIGKILLed at staggered points while
   appending; after every kill the log must open to a contiguous,
   CRC-clean prefix whose payloads match their sequence numbers, and
   keep accepting appends. Small segments so kills also land around
   rotation boundaries. *)

let test_kill_mid_append () =
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let config = { Wal.segment_bytes = 4096; retain_segments = 1 } in
  let t = open_wal ~config dir in
  ignore (get_ok "append" (Wal.append t [ payload 1; payload 2 ]));
  Wal.close t;
  (* OCaml < 5.2 forbids fork after a domain has spawned; earlier
     suites in this binary use the pool, so skip rather than fail *)
  let fork_or_skip () =
    try Unix.fork () with Failure _ -> Alcotest.skip ()
  in
  for i = 0 to 19 do
    match fork_or_skip () with
    | 0 ->
      (match Wal.open_ ~config dir with
       | Error _ -> Unix._exit 1
       | Ok t ->
         let rec spin () =
           let first = Wal.next_seq t in
           ignore (Wal.append t (List.init 3 (fun j -> payload (first + j))));
           spin ()
         in
         spin ())
    | pid ->
      let delay = float_of_int (i mod 7) *. 0.0004 in
      if delay > 0.0 then Unix.sleepf delay;
      (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
      ignore (Unix.waitpid [] pid);
      (* recovery invariant: an intact, contiguous, content-correct
         prefix — fold itself rejects gaps and bad CRCs *)
      let records, high = replay dir in
      Alcotest.(check int)
        (Printf.sprintf "iter %d: contiguous prefix" i)
        high (List.length records);
      List.iteri
        (fun j (seq, p) ->
          Alcotest.(check int) "seq" (j + 1) seq;
          Alcotest.(check string) "payload" (payload seq) p)
        records
  done;
  (* the survivor is append-clean *)
  let t = open_wal ~config dir in
  let first = Wal.next_seq t in
  ignore (get_ok "append" (Wal.append t [ payload first ]));
  Wal.close t;
  let _, high = replay dir in
  Alcotest.(check int) "final append lands" first high

(* ------------------------------------------------------------------ *)

let suites =
  [
    ( "wal",
      [
        Alcotest.test_case "append/fold/reopen round trip" `Quick test_roundtrip;
        Alcotest.test_case "append validation" `Quick test_append_validation;
        Alcotest.test_case "torn-tail recovery table" `Quick test_torn_tails;
        Alcotest.test_case "mid-log corruption is an error" `Quick
          test_midlog_corruption;
        Alcotest.test_case "rotation and prune retention" `Quick
          test_rotation_and_prune;
        Alcotest.test_case "kill mid-append" `Quick test_kill_mid_append;
      ] );
  ]
