(* Tests for the extension modules: block-based SSTA, clustered
   selection, and post-silicon diagnosis. *)

let check_close ?(tol = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > tol then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

let fixture =
  lazy
    (let nl =
       Circuit.Generator.generate
         { Circuit.Generator.default with num_gates = 150; num_inputs = 14;
           num_outputs = 12; depth = 10; seed = 8 }
     in
     let model = Timing.Variation.make_model ~levels:3 () in
     let dm = Timing.Delay_model.build nl model in
     let setup = Core.Pipeline.prepare ~netlist:nl ~model ~yield_samples:200 ~seed:21 () in
     (dm, setup))

(* ------------------------------------------------------------------ *)
(* SSTA *)

let test_ssta_canonical_sigma () =
  let c = { Timing.Ssta.mean = 1.0; coeffs = [| 3.0; 4.0 |]; residual = 0.0 } in
  check_close "sigma from coeffs" 5.0 (Timing.Ssta.sigma c);
  let c2 = { c with residual = 12.0 } in
  check_close "sigma with residual" 13.0 (Timing.Ssta.sigma c2)

let test_ssta_add_delay () =
  let base = { Timing.Ssta.mean = 10.0; coeffs = [| 1.0 |]; residual = 3.0 } in
  let out = Timing.Ssta.add_delay base ~mean:5.0 ~coeffs:[| 2.0 |] ~residual:4.0 in
  check_close "mean" 15.0 out.Timing.Ssta.mean;
  check_close "coeff" 3.0 out.Timing.Ssta.coeffs.(0);
  check_close "residual quadrature" 5.0 out.Timing.Ssta.residual

let test_clark_max_dominance () =
  (* when a strictly dominates b, max ~= a *)
  let a = { Timing.Ssta.mean = 100.0; coeffs = [| 1.0 |]; residual = 1.0 } in
  let b = { Timing.Ssta.mean = 10.0; coeffs = [| 1.0 |]; residual = 1.0 } in
  let m = Timing.Ssta.clark_max a b in
  check_close ~tol:1e-6 "mean = dominant mean" 100.0 m.Timing.Ssta.mean

let test_clark_max_identical () =
  (* fully-correlated (residual-free) identical forms: max(a,a) = a.
     Residual parts of two different forms are independent by the
     canonical model's convention, so only the coeff part counts as
     shared. *)
  let a = { Timing.Ssta.mean = 50.0; coeffs = [| 2.0; 1.0 |]; residual = 0.0 } in
  let m = Timing.Ssta.clark_max a a in
  check_close "identical forms" 50.0 m.Timing.Ssta.mean;
  check_close "sigma preserved" (Timing.Ssta.sigma a) (Timing.Ssta.sigma m)

let test_clark_max_mean_bounds () =
  (* E[max(a,b)] >= max(E a, E b), and for independent equal forms the
     exact answer is mu + sigma/sqrt(pi) *)
  let a = { Timing.Ssta.mean = 0.0; coeffs = [| 0.0 |]; residual = 1.0 } in
  let b = { Timing.Ssta.mean = 0.0; coeffs = [| 0.0 |]; residual = 1.0 } in
  let m = Timing.Ssta.clark_max a b in
  check_close ~tol:1e-9 "E max of two iid N(0,1)" (1.0 /. sqrt Float.pi)
    m.Timing.Ssta.mean

let test_ssta_matches_monte_carlo () =
  let dm, _ = Lazy.force fixture in
  let r = Timing.Ssta.analyze dm in
  let mu_ssta = r.Timing.Ssta.circuit_delay.Timing.Ssta.mean in
  let sd_ssta = Timing.Ssta.sigma r.Timing.Ssta.circuit_delay in
  (* MC reference *)
  let t50 = Timing.Ssta.quantile r 0.5 in
  let y_mc =
    Timing.Monte_carlo.circuit_yield dm ~t_cons:t50 ~rng:(Rng.create 5) ~samples:2000
  in
  (* the SSTA median should split the MC distribution roughly in half *)
  if y_mc < 0.40 || y_mc > 0.62 then
    Alcotest.failf "SSTA median off: MC yield at SSTA t50 = %.3f" y_mc;
  (* +3 sigma should cover nearly everything *)
  let y3 =
    Timing.Monte_carlo.circuit_yield dm
      ~t_cons:(mu_ssta +. (3.0 *. sd_ssta))
      ~rng:(Rng.create 6) ~samples:2000
  in
  Alcotest.(check bool) "3-sigma covers MC" true (y3 > 0.99)

let test_ssta_yield_monotone () =
  let dm, _ = Lazy.force fixture in
  let r = Timing.Ssta.analyze dm in
  let t = r.Timing.Ssta.circuit_delay.Timing.Ssta.mean in
  Alcotest.(check bool) "monotone yield" true
    (Timing.Ssta.yield_at r (t *. 1.1) > Timing.Ssta.yield_at r (t *. 0.9))

let test_ssta_quantile_inverts_yield () =
  let dm, _ = Lazy.force fixture in
  let r = Timing.Ssta.analyze dm in
  let q = Timing.Ssta.quantile r 0.9 in
  check_close ~tol:1e-9 "yield at quantile" 0.9 (Timing.Ssta.yield_at r q)

let test_ssta_arrival_dominates_nominal () =
  (* the statistical circuit delay mean must be >= the nominal critical
     delay (max of Gaussians is biased upward) *)
  let dm, _ = Lazy.force fixture in
  let r = Timing.Ssta.analyze dm in
  let nominal = Timing.Delay_model.nominal_critical_delay dm in
  Alcotest.(check bool) "mean >= nominal" true
    (r.Timing.Ssta.circuit_delay.Timing.Ssta.mean >= nominal -. 1e-6)

(* ------------------------------------------------------------------ *)
(* Clustered selection *)

let test_kmeans_separates_obvious_clusters () =
  (* rows pointing along two orthogonal directions *)
  let a =
    Linalg.Mat.of_arrays
      [|
        [| 1.0; 0.01 |]; [| 0.9; 0.0 |]; [| 1.1; -0.01 |];
        [| 0.0; 1.0 |]; [| 0.02; 0.8 |]; [| -0.01; 1.2 |];
      |]
  in
  let assign = Core.Cluster.kmeans_rows ~rng:(Rng.create 3) ~k:2 a in
  Alcotest.(check bool) "first three together" true
    (assign.(0) = assign.(1) && assign.(1) = assign.(2));
  Alcotest.(check bool) "last three together" true
    (assign.(3) = assign.(4) && assign.(4) = assign.(5));
  Alcotest.(check bool) "two groups differ" true (assign.(0) <> assign.(3))

let test_kmeans_k_clamped () =
  let a = Linalg.Mat.identity 3 in
  let assign = Core.Cluster.kmeans_rows ~rng:(Rng.create 1) ~k:10 a in
  Alcotest.(check int) "three rows assigned" 3 (Array.length assign)

let test_cluster_select_meets_tolerance () =
  let _, setup = Lazy.force fixture in
  let a = Timing.Paths.a_mat setup.Core.Pipeline.pool in
  let mu = Timing.Paths.mu_paths setup.Core.Pipeline.pool in
  let eps = 0.05 in
  let c = Core.Cluster.select ~k:4 ~a ~mu ~eps ~t_cons:setup.Core.Pipeline.t_cons () in
  (* the merged predictor can only be better than the per-cluster ones,
     each of which met eps *)
  Alcotest.(check bool) "merged eps_r within tolerance" true (c.Core.Cluster.eps_r <= eps);
  Alcotest.(check int) "every path assigned" (fst (Linalg.Mat.dims a))
    (Array.length c.Core.Cluster.assignments)

let test_cluster_select_close_to_direct () =
  let _, setup = Lazy.force fixture in
  let a = Timing.Paths.a_mat setup.Core.Pipeline.pool in
  let mu = Timing.Paths.mu_paths setup.Core.Pipeline.pool in
  let eps = 0.05 in
  let direct =
    Core.Select.approximate ~a ~mu ~eps ~t_cons:setup.Core.Pipeline.t_cons ()
  in
  let clustered =
    Core.Cluster.select ~k:4 ~a ~mu ~eps ~t_cons:setup.Core.Pipeline.t_cons ()
  in
  let nd = Array.length direct.Core.Select.indices in
  let nc = Array.length clustered.Core.Cluster.indices in
  (* clustering trades some selection size for speed; it must stay within
     a small constant factor (here 6x) of the direct size *)
  Alcotest.(check bool)
    (Printf.sprintf "clustered size %d vs direct %d" nc nd)
    true
    (nc <= max 8 (6 * nd))

let test_cluster_validation () =
  let a = Linalg.Mat.identity 3 in
  Alcotest.(check bool) "k=0 rejected" true
    (match Core.Cluster.select ~k:0 ~a ~mu:[| 1.; 1.; 1. |] ~eps:0.05 ~t_cons:1.0 () with
     | (_ : Core.Cluster.t) -> false
     | exception Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Diagnosis *)

let test_diagnose_estimate_consistent () =
  (* x_hat must reproduce the measured representative delays exactly:
     A_r x_hat = d_r - mu_r *)
  let _, setup = Lazy.force fixture in
  let pool = setup.Core.Pipeline.pool in
  let sel = Core.Pipeline.approximate_selection setup ~eps:0.05 in
  let d = Core.Diagnose.build ~pool ~rep:sel.Core.Select.indices in
  let mc = Timing.Monte_carlo.sample (Rng.create 17) pool ~n:1 in
  let delays = Timing.Monte_carlo.path_delays mc in
  let measured = Array.map (fun i -> Linalg.Mat.get delays 0 i) sel.Core.Select.indices in
  let x_hat = Core.Diagnose.estimate_x d ~measured in
  let a_r =
    Linalg.Mat.select_rows (Timing.Paths.a_mat pool) sel.Core.Select.indices
  in
  let mu = Timing.Paths.mu_paths pool in
  let reproduced = Linalg.Mat.apply a_r x_hat in
  Array.iteri
    (fun k i ->
      check_close ~tol:1e-6 "A_r x_hat = d_r - mu_r"
        (measured.(k) -. mu.(i)) reproduced.(k))
    sel.Core.Select.indices

let test_diagnose_detects_d2d_shift () =
  (* fabricate a die whose die-to-die Leff variable is +2 sigma and all
     other variables are nominal; the estimator must attribute a clear
     positive global shift *)
  let _, setup = Lazy.force fixture in
  let pool = setup.Core.Pipeline.pool in
  let sel = Core.Pipeline.exact_selection setup in
  let d = Core.Diagnose.build ~pool ~rep:sel.Core.Select.indices in
  let keys = Timing.Paths.var_keys pool in
  let x = Array.make (Array.length keys) 0.0 in
  Array.iteri
    (fun i k ->
      match k with
      | Timing.Variation.Region { level = 0; _ } -> x.(i) <- 2.0
      | Timing.Variation.Region _ | Timing.Variation.Gate_random _ -> ())
    keys;
  let a = Timing.Paths.a_mat pool in
  let mu = Timing.Paths.mu_paths pool in
  let delays = Linalg.Vec.add mu (Linalg.Mat.apply a x) in
  let measured = Array.map (fun i -> delays.(i)) sel.Core.Select.indices in
  let shift = Core.Diagnose.die_to_die_shift d ~measured in
  Alcotest.(check bool)
    (Printf.sprintf "global shift %.2f detected" shift)
    true (shift > 1.0)

let test_diagnose_attribution_ranked () =
  let _, setup = Lazy.force fixture in
  let pool = setup.Core.Pipeline.pool in
  let sel = Core.Pipeline.approximate_selection setup ~eps:0.05 in
  let d = Core.Diagnose.build ~pool ~rep:sel.Core.Select.indices in
  let mc = Timing.Monte_carlo.sample (Rng.create 23) pool ~n:1 in
  let delays = Timing.Monte_carlo.path_delays mc in
  let measured = Array.map (fun i -> Linalg.Mat.get delays 0 i) sel.Core.Select.indices in
  let att = Core.Diagnose.attribute ~top:5 d ~measured in
  Alcotest.(check int) "five attributions" 5 (List.length att);
  let magnitudes = List.map (fun a -> Float.abs a.Core.Diagnose.z_score) att in
  let rec sorted = function
    | a :: b :: rest -> a >= b -. 1e-12 && sorted (b :: rest)
    | [ _ ] | [] -> true
  in
  Alcotest.(check bool) "ranked by magnitude" true (sorted magnitudes)

let test_diagnose_predicted_failures_on_slow_die () =
  (* a +3-sigma global die must flag far more paths than a -3-sigma one *)
  let _, setup = Lazy.force fixture in
  let pool = setup.Core.Pipeline.pool in
  let sel = Core.Pipeline.approximate_selection setup ~eps:0.05 in
  let d = Core.Diagnose.build ~pool ~rep:sel.Core.Select.indices in
  let keys = Timing.Paths.var_keys pool in
  let die shift =
    let x = Array.make (Array.length keys) 0.0 in
    Array.iteri
      (fun i k ->
        match k with
        | Timing.Variation.Region { level = 0; _ } -> x.(i) <- shift
        | Timing.Variation.Region _ | Timing.Variation.Gate_random _ -> ())
      keys;
    let a = Timing.Paths.a_mat pool in
    let mu = Timing.Paths.mu_paths pool in
    let delays = Linalg.Vec.add mu (Linalg.Mat.apply a x) in
    Array.map (fun i -> delays.(i)) sel.Core.Select.indices
  in
  let flags shift =
    List.length
      (Core.Diagnose.predicted_failures d ~measured:(die shift)
         ~eps:sel.Core.Select.per_path_eps ~t_cons:setup.Core.Pipeline.t_cons)
  in
  let slow = flags 3.0 and fast = flags (-3.0) in
  Alcotest.(check bool)
    (Printf.sprintf "slow die flags %d > fast die flags %d" slow fast)
    true (slow > fast)

let unit_tests =
  [
    ("ssta: canonical sigma", test_ssta_canonical_sigma);
    ("ssta: add delay", test_ssta_add_delay);
    ("ssta: clark max dominance", test_clark_max_dominance);
    ("ssta: clark max identical forms", test_clark_max_identical);
    ("ssta: clark max iid mean", test_clark_max_mean_bounds);
    ("ssta: matches monte carlo", test_ssta_matches_monte_carlo);
    ("ssta: yield monotone", test_ssta_yield_monotone);
    ("ssta: quantile inverts yield", test_ssta_quantile_inverts_yield);
    ("ssta: mean >= nominal critical", test_ssta_arrival_dominates_nominal);
    ("cluster: kmeans separates clusters", test_kmeans_separates_obvious_clusters);
    ("cluster: k clamped to rows", test_kmeans_k_clamped);
    ("cluster: selection meets tolerance", test_cluster_select_meets_tolerance);
    ("cluster: close to direct selection", test_cluster_select_close_to_direct);
    ("cluster: validation", test_cluster_validation);
    ("diagnose: estimate reproduces measurements", test_diagnose_estimate_consistent);
    ("diagnose: detects die-to-die shift", test_diagnose_detects_d2d_shift);
    ("diagnose: attribution ranked", test_diagnose_attribution_ranked);
    ("diagnose: slow die flags more paths", test_diagnose_predicted_failures_on_slow_die);
  ]

let suites =
  [
    ( "extensions",
      List.map (fun (name, f) -> Alcotest.test_case name `Quick f) unit_tests );
  ]
