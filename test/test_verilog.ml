(* Tests for the structural Verilog reader/writer. *)

let sample =
  {|
// a small mixed netlist
module top (a, b, z);
  input a, b;
  output z;
  wire w1, w2, q;
  NAND2 u1 (.Z(w1), .A(a), .B(b));
  not u2 (w2, w1);
  DFF r1 (.Q(q), .D(w2));
  AND2 u3 (z, q, w1);
endmodule
|}

let test_parse_basic () =
  let nl = Circuit.Verilog_io.parse ~name:"t" sample in
  (* a, b + pseudo-input q; z + pseudo-output w2 *)
  Alcotest.(check int) "inputs" 3 (Circuit.Netlist.num_inputs nl);
  Alcotest.(check int) "outputs" 2 (Array.length (Circuit.Netlist.outputs nl));
  Alcotest.(check int) "gates" 3 (Circuit.Netlist.num_gates nl)

let test_named_vs_positional () =
  let named = "module m (a, z);\n input a;\n output z;\n INV u1 (.Z(z), .A(a));\nendmodule" in
  let positional = "module m (a, z);\n input a;\n output z;\n INV u1 (z, a);\nendmodule" in
  let n1 = Circuit.Verilog_io.parse ~name:"m" named in
  let n2 = Circuit.Verilog_io.parse ~name:"m" positional in
  Alcotest.(check int) "same gates" (Circuit.Netlist.num_gates n1)
    (Circuit.Netlist.num_gates n2)

let test_wide_primitive () =
  let text =
    "module m (a, b, c, d, z);\n input a, b, c, d;\n output z;\n\
     nand u1 (z, a, b, c, d);\nendmodule"
  in
  let nl = Circuit.Verilog_io.parse ~name:"m" text in
  Alcotest.(check int) "4-input nand decomposed" 3 (Circuit.Netlist.num_gates nl)

let test_block_comments_and_escaped_ids () =
  let text =
    "module m (a, z);\n /* multi\nline */ input a;\n output z;\n\
     INV u1 (z, a);\nendmodule"
  in
  let nl = Circuit.Verilog_io.parse ~name:"m" text in
  Alcotest.(check int) "one gate" 1 (Circuit.Netlist.num_gates nl)

let test_errors () =
  let cases =
    [
      ("bus rejected", "module m (a);\n input [3:0] a;\nendmodule");
      ("unknown cell", "module m (a, z);\n input a;\n output z;\n FROB u1 (z, a);\nendmodule");
      ("no endmodule", "module m (a);\n input a;");
      ("no output pin", "module m (a, z);\n input a;\n output z;\n INV u1 (.A(a), .B(z));\nendmodule");
    ]
  in
  List.iter
    (fun (label, text) ->
      match Circuit.Verilog_io.parse ~name:"m" text with
      | (_ : Circuit.Netlist.t) -> Alcotest.failf "%s: parse succeeded" label
      | exception Circuit.Verilog_io.Parse_error _ -> ())
    cases

let test_print_parse_roundtrip () =
  let nl =
    Circuit.Generator.generate { Circuit.Generator.default with num_gates = 80; seed = 44 }
  in
  let text = Circuit.Verilog_io.print nl in
  let nl2 = Circuit.Verilog_io.parse ~name:"rt" text in
  Alcotest.(check int) "gates preserved" (Circuit.Netlist.num_gates nl)
    (Circuit.Netlist.num_gates nl2);
  Alcotest.(check int) "depth preserved" (Circuit.Netlist.depth nl)
    (Circuit.Netlist.depth nl2);
  Alcotest.(check int) "inputs preserved" (Circuit.Netlist.num_inputs nl)
    (Circuit.Netlist.num_inputs nl2)

let test_full_pipeline_on_verilog () =
  let nl =
    Circuit.Generator.generate { Circuit.Generator.default with num_gates = 120; seed = 45 }
  in
  let reparsed = Circuit.Verilog_io.parse ~name:"v" (Circuit.Verilog_io.print nl) in
  let model = Timing.Variation.make_model ~levels:3 () in
  let setup = Core.Pipeline.prepare ~netlist:reparsed ~model ~yield_samples:120 () in
  let sel = Core.Pipeline.approximate_selection setup ~eps:0.05 in
  Alcotest.(check bool) "selection works on parsed verilog" true
    (Array.length sel.Core.Select.indices > 0)

let prop_verilog_roundtrip =
  QCheck.Test.make ~count:10 ~name:"verilog print/parse preserves structure"
    QCheck.(int_range 1 300)
    (fun seed ->
      let nl =
        Circuit.Generator.generate
          { Circuit.Generator.default with num_gates = 50; seed }
      in
      let nl2 = Circuit.Verilog_io.parse ~name:"rt" (Circuit.Verilog_io.print nl) in
      Circuit.Netlist.num_gates nl2 = Circuit.Netlist.num_gates nl
      && Circuit.Netlist.depth nl2 = Circuit.Netlist.depth nl)

let unit_tests =
  [
    ("verilog: parse with DFF cut", test_parse_basic);
    ("verilog: named = positional", test_named_vs_positional);
    ("verilog: wide primitive decomposed", test_wide_primitive);
    ("verilog: comments", test_block_comments_and_escaped_ids);
    ("verilog: errors", test_errors);
    ("verilog: print/parse roundtrip", test_print_parse_roundtrip);
    ("verilog: feeds the pipeline", test_full_pipeline_on_verilog);
  ]

let suites =
  [
    ( "verilog",
      List.map (fun (name, f) -> Alcotest.test_case name `Quick f) unit_tests
      @ [ QCheck_alcotest.to_alcotest prop_verilog_roundtrip ] );
  ]
