(* Golden-file tests: the committed sample data in examples/data must
   stay parseable and mutually consistent. *)

let data_dir =
  (* dune runs tests from the build sandbox; locate the source tree *)
  let candidates =
    [ "examples/data"; "../examples/data"; "../../examples/data";
      "../../../examples/data"; "../../../../examples/data" ]
  in
  lazy
    (List.find_opt
       (fun d -> Sys.file_exists (Filename.concat d "demo90.bench"))
       candidates)

let with_data f =
  match Lazy.force data_dir with
  | Some dir -> f dir
  | None -> () (* data not visible from the sandbox: skip silently *)

let test_bench_golden () =
  with_data (fun dir ->
      let nl = Circuit.Bench_io.parse_file (Filename.concat dir "demo90.bench") in
      Alcotest.(check int) "gate count" 90 (Circuit.Netlist.num_gates nl))

let test_verilog_matches_bench () =
  with_data (fun dir ->
      let nb = Circuit.Bench_io.parse_file (Filename.concat dir "demo90.bench") in
      let nv = Circuit.Verilog_io.parse_file (Filename.concat dir "demo90.v") in
      Alcotest.(check int) "same gates" (Circuit.Netlist.num_gates nb)
        (Circuit.Netlist.num_gates nv);
      Alcotest.(check int) "same depth" (Circuit.Netlist.depth nb)
        (Circuit.Netlist.depth nv))

let test_placement_golden () =
  with_data (fun dir ->
      let nl = Circuit.Bench_io.parse_file (Filename.concat dir "demo90.bench") in
      let placements =
        Circuit.Placement_io.parse_file (Filename.concat dir "demo90.pl")
      in
      let nl2 = Circuit.Placement_io.apply nl placements in
      Alcotest.(check int) "all gates placed" (Circuit.Netlist.num_gates nl)
        (List.length placements);
      ignore nl2)

let test_liberty_golden () =
  with_data (fun dir ->
      let lib =
        Circuit.Liberty.Library.of_group
          (Circuit.Liberty.parse_file (Filename.concat dir "repro90.lib"))
      in
      Alcotest.(check int) "twelve cells" 12
        (List.length lib.Circuit.Liberty.Library.cells))

let test_sdf_golden () =
  with_data (fun dir ->
      let nl = Circuit.Bench_io.parse_file (Filename.concat dir "demo90.bench") in
      let pairs =
        let ic = open_in (Filename.concat dir "demo90.sdf") in
        let len = in_channel_length ic in
        let text = really_input_string ic len in
        close_in ic;
        Timing.Sdf.read text
      in
      let delays = Timing.Sdf.annotate nl pairs in
      Alcotest.(check int) "delay per gate" (Circuit.Netlist.num_gates nl)
        (Array.length delays);
      Array.iter (fun d -> if d <= 0.0 then Alcotest.fail "non-positive delay") delays)

let test_full_pipeline_on_golden () =
  with_data (fun dir ->
      let nl = Circuit.Bench_io.parse_file (Filename.concat dir "demo90.bench") in
      let model = Timing.Variation.make_model ~levels:3 () in
      let setup = Core.Pipeline.prepare ~netlist:nl ~model ~yield_samples:120 () in
      let sel = Core.Pipeline.approximate_selection setup ~eps:0.05 in
      Alcotest.(check bool) "tolerance met" true (sel.Core.Select.eps_r <= 0.05))

let unit_tests =
  [
    ("golden: .bench parses", test_bench_golden);
    ("golden: verilog matches bench", test_verilog_matches_bench);
    ("golden: placement applies", test_placement_golden);
    ("golden: liberty parses", test_liberty_golden);
    ("golden: sdf annotates", test_sdf_golden);
    ("golden: pipeline runs", test_full_pipeline_on_golden);
  ]

let suites =
  [
    ( "golden",
      List.map (fun (name, f) -> Alcotest.test_case name `Quick f) unit_tests );
  ]
