(* Tests for the rng and stats substrates. *)

let check_close ?(tol = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > tol then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

(* ------------------------------------------------------------------ *)
(* Rng *)

let test_rng_determinism () =
  let a = Rng.create 7 in
  let b = Rng.create 7 in
  for i = 0 to 99 do
    if Rng.float a <> Rng.float b then Alcotest.failf "streams diverge at %d" i
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let xa = Array.init 8 (fun _ -> Rng.float a) in
  let xb = Array.init 8 (fun _ -> Rng.float b) in
  Alcotest.(check bool) "different seeds differ" false (xa = xb)

let test_rng_float_range () =
  let r = Rng.create 3 in
  for _ = 1 to 10_000 do
    let x = Rng.float r in
    if x < 0.0 || x >= 1.0 then Alcotest.failf "uniform out of range: %g" x
  done

let test_rng_int_range () =
  let r = Rng.create 5 in
  let counts = Array.make 7 0 in
  for _ = 1 to 70_000 do
    let k = Rng.int r 7 in
    counts.(k) <- counts.(k) + 1
  done;
  Array.iteri
    (fun i c ->
      if c < 8_000 || c > 12_000 then
        Alcotest.failf "bucket %d count %d far from uniform" i c)
    counts

let test_rng_gaussian_moments () =
  let r = Rng.create 11 in
  let n = 200_000 in
  let xs = Rng.gaussian_vector r n in
  check_close ~tol:0.02 "mean ~ 0" 0.0 (Stats.Descriptive.mean xs);
  check_close ~tol:0.02 "var ~ 1" 1.0 (Stats.Descriptive.variance xs)

let test_rng_gaussian_tail () =
  let r = Rng.create 13 in
  let n = 100_000 in
  let beyond = ref 0 in
  for _ = 1 to n do
    if Float.abs (Rng.gaussian r) > 1.959964 then incr beyond
  done;
  let frac = float_of_int !beyond /. float_of_int n in
  check_close ~tol:0.01 "5% beyond 1.96 sigma" 0.05 frac

let test_rng_split_independence () =
  let r = Rng.create 17 in
  let r1 = Rng.split r in
  let r2 = Rng.split r in
  let x1 = Array.init 1000 (fun _ -> Rng.gaussian r1) in
  let x2 = Array.init 1000 (fun _ -> Rng.gaussian r2) in
  let corr = Stats.Descriptive.correlation x1 x2 in
  if Float.abs corr > 0.1 then Alcotest.failf "split streams correlated: %g" corr

let test_rng_shuffle_permutes () =
  let r = Rng.create 23 in
  let a = Array.init 20 (fun i -> i) in
  Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "same multiset" (Array.init 20 (fun i -> i)) sorted

(* ------------------------------------------------------------------ *)
(* Normal distribution *)

let test_normal_cdf_known () =
  check_close ~tol:1e-7 "cdf 0" 0.5 (Stats.Normal.cdf 0.0);
  check_close ~tol:1e-6 "cdf 1.96" 0.975 (Stats.Normal.cdf 1.959964);
  check_close ~tol:1e-7 "cdf -3" 0.00134990 (Stats.Normal.cdf (-3.0));
  check_close ~tol:1e-9 "symmetry" 1.0 (Stats.Normal.cdf 1.3 +. Stats.Normal.cdf (-1.3))

let test_normal_quantile_inverse () =
  let ps = [ 0.001; 0.01; 0.1; 0.25; 0.5; 0.75; 0.9; 0.99; 0.999 ] in
  List.iter
    (fun p ->
      let x = Stats.Normal.quantile p in
      check_close ~tol:1e-9 (Printf.sprintf "cdf(quantile %g)" p) p (Stats.Normal.cdf x))
    ps

let test_normal_quantile_known () =
  check_close ~tol:1e-6 "median" 0.0 (Stats.Normal.quantile 0.5);
  check_close ~tol:1e-5 "97.5%" 1.959964 (Stats.Normal.quantile 0.975)

let test_normal_quantile_domain () =
  Alcotest.check_raises "p=0"
    (Invalid_argument "Normal.quantile: p outside (0,1)") (fun () ->
      ignore (Stats.Normal.quantile 0.0))

let test_normal_pdf_integrates () =
  (* trapezoid over [-8, 8] *)
  let n = 4000 in
  let h = 16.0 /. float_of_int n in
  let acc = ref 0.0 in
  for i = 0 to n do
    let x = -8.0 +. (float_of_int i *. h) in
    let w = if i = 0 || i = n then 0.5 else 1.0 in
    acc := !acc +. (w *. Stats.Normal.pdf x)
  done;
  check_close ~tol:1e-9 "integral 1" 1.0 (!acc *. h)

let test_gaussian_worst_case () =
  let g = { Stats.Normal.mean = -2.0; std = 1.5 } in
  check_close "wc" (2.0 +. (3.0 *. 1.5)) (Stats.Normal.worst_case ~kappa:3.0 g);
  let d = { Stats.Normal.mean = 1.0; std = 0.0 } in
  check_close "degenerate cdf below" 0.0 (Stats.Normal.cdf_of d 0.5);
  check_close "degenerate cdf above" 1.0 (Stats.Normal.cdf_of d 1.5)

let test_gaussian_yield () =
  let g = { Stats.Normal.mean = 10.0; std = 2.0 } in
  check_close ~tol:1e-7 "yield at mean" 0.5 (Stats.Normal.yield_at g 10.0);
  check_close ~tol:1e-6 "yield +2sigma" 0.97725 (Stats.Normal.yield_at g 14.0)

(* ------------------------------------------------------------------ *)
(* Descriptive *)

let test_descriptive_basic () =
  let xs = [| 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 |] in
  check_close "mean" 5.0 (Stats.Descriptive.mean xs);
  check_close ~tol:1e-9 "variance" (32.0 /. 7.0) (Stats.Descriptive.variance xs)

let test_descriptive_quantile () =
  let xs = [| 1.0; 2.0; 3.0; 4.0 |] in
  check_close "q0" 1.0 (Stats.Descriptive.quantile xs 0.0);
  check_close "q1" 4.0 (Stats.Descriptive.quantile xs 1.0);
  check_close "median" 2.5 (Stats.Descriptive.quantile xs 0.5);
  (* input untouched *)
  Alcotest.(check (array (float 0.0))) "input preserved" [| 1.0; 2.0; 3.0; 4.0 |] xs

let test_descriptive_correlation () =
  let xs = [| 1.0; 2.0; 3.0; 4.0 |] in
  let ys = [| 2.0; 4.0; 6.0; 8.0 |] in
  check_close ~tol:1e-12 "perfect corr" 1.0 (Stats.Descriptive.correlation xs ys);
  let zs = [| -2.0; -4.0; -6.0; -8.0 |] in
  check_close ~tol:1e-12 "anti corr" (-1.0) (Stats.Descriptive.correlation xs zs);
  let c = [| 5.0; 5.0; 5.0; 5.0 |] in
  check_close "constant corr" 0.0 (Stats.Descriptive.correlation xs c)

(* ------------------------------------------------------------------ *)
(* Property tests *)

let prop_quantile_monotone =
  QCheck.Test.make ~count:200 ~name:"normal quantile is monotone"
    QCheck.(pair (float_range 0.01 0.99) (float_range 0.001 0.009))
    (fun (p, dp) -> Stats.Normal.quantile (p +. dp) > Stats.Normal.quantile p)

let prop_cdf_in_unit =
  QCheck.Test.make ~count:200 ~name:"normal cdf in [0,1]"
    QCheck.(float_range (-40.0) 40.0)
    (fun x ->
      let c = Stats.Normal.cdf x in
      c >= 0.0 && c <= 1.0)

let prop_empirical_quantile_bounds =
  QCheck.Test.make ~count:100 ~name:"empirical quantile within data range"
    QCheck.(pair (array_of_size (QCheck.Gen.int_range 1 50) (float_range (-5.) 5.))
              (float_range 0.0 1.0))
    (fun (xs, p) ->
      let q = Stats.Descriptive.quantile xs p in
      let lo = Array.fold_left Float.min xs.(0) xs in
      let hi = Array.fold_left Float.max xs.(0) xs in
      q >= lo -. 1e-12 && q <= hi +. 1e-12)

let unit_tests =
  [
    ("rng: determinism", test_rng_determinism);
    ("rng: seed sensitivity", test_rng_seed_sensitivity);
    ("rng: uniform range", test_rng_float_range);
    ("rng: int uniformity", test_rng_int_range);
    ("rng: gaussian moments", test_rng_gaussian_moments);
    ("rng: gaussian tail mass", test_rng_gaussian_tail);
    ("rng: split independence", test_rng_split_independence);
    ("rng: shuffle is a permutation", test_rng_shuffle_permutes);
    ("normal: cdf at known points", test_normal_cdf_known);
    ("normal: quantile inverts cdf", test_normal_quantile_inverse);
    ("normal: quantile known values", test_normal_quantile_known);
    ("normal: quantile domain", test_normal_quantile_domain);
    ("normal: pdf integrates to 1", test_normal_pdf_integrates);
    ("gaussian: worst case + degenerate", test_gaussian_worst_case);
    ("gaussian: yield", test_gaussian_yield);
    ("descriptive: mean/variance", test_descriptive_basic);
    ("descriptive: quantile", test_descriptive_quantile);
    ("descriptive: correlation", test_descriptive_correlation);
  ]

let property_tests =
  List.map (fun t -> QCheck_alcotest.to_alcotest t)
    [ prop_quantile_monotone; prop_cdf_in_unit; prop_empirical_quantile_bounds ]

let suites =
  [
    ( "rng+stats",
      List.map (fun (name, f) -> Alcotest.test_case name `Quick f) unit_tests
      @ property_tests );
  ]
