(* Tests for the CSR sparse matrices and the randomized SVD. *)

let check_close ?(tol = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > tol then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

let lcg_state = ref 99

let lcg_float () =
  lcg_state := ((!lcg_state * 1103515245) + 12345) land 0x3FFFFFFF;
  (float_of_int !lcg_state /. float_of_int 0x3FFFFFFF *. 2.0) -. 1.0

let random_sparse_dense m n density =
  Linalg.Mat.init m n (fun _ _ ->
      let v = lcg_float () in
      if Float.abs v < 1.0 -. density then 0.0 else v)

(* ------------------------------------------------------------------ *)
(* Sparse *)

let test_sparse_roundtrip () =
  let d = random_sparse_dense 7 9 0.3 in
  let s = Linalg.Sparse.of_dense d in
  Alcotest.(check bool) "to_dense inverts of_dense" true
    (Linalg.Mat.equal d (Linalg.Sparse.to_dense s));
  Alcotest.(check bool) "equal_dense agrees" true (Linalg.Sparse.equal_dense s d)

let test_sparse_of_rows_duplicates () =
  let s = Linalg.Sparse.of_rows 3 [| [ (0, 1.0); (0, 2.0); (2, 5.0) ]; [] |] in
  check_close "summed duplicate" 3.0 (Linalg.Sparse.get s 0 0);
  check_close "other entry" 5.0 (Linalg.Sparse.get s 0 2);
  check_close "empty row" 0.0 (Linalg.Sparse.get s 1 1);
  Alcotest.(check int) "nnz" 2 (Linalg.Sparse.nnz s)

let test_sparse_apply () =
  let d = random_sparse_dense 6 8 0.4 in
  let s = Linalg.Sparse.of_dense d in
  let x = Array.init 8 (fun i -> float_of_int (i - 3)) in
  Alcotest.(check bool) "apply matches dense" true
    (Linalg.Vec.equal ~tol:1e-12 (Linalg.Mat.apply d x) (Linalg.Sparse.apply s x));
  let y = Array.init 6 (fun i -> float_of_int (2 * i) -. 5.0) in
  Alcotest.(check bool) "apply_t matches dense" true
    (Linalg.Vec.equal ~tol:1e-12 (Linalg.Mat.apply_t d y) (Linalg.Sparse.apply_t s y))

let test_sparse_mul_dense_nt () =
  let a = random_sparse_dense 5 7 0.4 in
  let s = Linalg.Sparse.of_dense a in
  let x = Linalg.Mat.init 4 7 (fun i j -> float_of_int ((i * 7) + j) /. 10.0) in
  Alcotest.(check bool) "X A^T matches dense" true
    (Linalg.Mat.equal ~tol:1e-12 (Linalg.Mat.mul_nt x a) (Linalg.Sparse.mul_dense_nt x s))

let test_sparse_transpose () =
  let d = random_sparse_dense 5 6 0.4 in
  let s = Linalg.Sparse.of_dense d in
  Alcotest.(check bool) "transpose matches dense" true
    (Linalg.Sparse.equal_dense (Linalg.Sparse.transpose s) (Linalg.Mat.transpose d))

let test_sparse_row_norms () =
  let d = random_sparse_dense 5 6 0.5 in
  let s = Linalg.Sparse.of_dense d in
  Alcotest.(check bool) "row norms match" true
    (Linalg.Vec.equal ~tol:1e-12 (Linalg.Mat.row_norms2 d) (Linalg.Sparse.row_norms2 s))

let test_sparse_density () =
  let s = Linalg.Sparse.of_rows 4 [| [ (0, 1.0) ]; [ (1, 1.0); (2, 1.0) ] |] in
  check_close "density" (3.0 /. 8.0) (Linalg.Sparse.density s)

let test_sparse_tol_drop () =
  let d = Linalg.Mat.of_arrays [| [| 1.0; 1e-14 |] |] in
  let s = Linalg.Sparse.of_dense ~tol:1e-12 d in
  Alcotest.(check int) "tiny entry dropped" 1 (Linalg.Sparse.nnz s)

(* ------------------------------------------------------------------ *)
(* Randomized SVD *)

let test_rsvd_low_rank_exact () =
  (* on an exactly rank-3 matrix, rsvd with rank 3 recovers the spectrum *)
  (* per-column frequencies keep the factors genuinely full rank
     (sin (i*k + j) alone spans only a 2-dimensional space) *)
  let b =
    Linalg.Mat.init 30 3 (fun i j ->
        sin (float_of_int i *. (0.37 +. (0.21 *. float_of_int j))))
  in
  let c =
    Linalg.Mat.init 3 20 (fun i j ->
        cos (float_of_int j *. (0.23 +. (0.31 *. float_of_int i))) /. 3.0)
  in
  let a = Linalg.Mat.mul b c in
  let exact = Linalg.Svd.factor a in
  let approx = Linalg.Rsvd.factor ~rank:3 ~seed:7 a in
  for i = 0 to 2 do
    check_close ~tol:1e-6 (Printf.sprintf "s%d" i) exact.Linalg.Svd.s.(i)
      approx.Linalg.Rsvd.s.(i)
  done

let test_rsvd_leading_values_close () =
  (* on a full-rank matrix with decaying spectrum, the leading values
     are captured to a few percent *)
  let a =
    Linalg.Mat.init 40 25 (fun i j ->
        exp (-0.25 *. float_of_int (min i j)) *. cos (float_of_int ((i * 7) + j)))
  in
  let exact = Linalg.Svd.factor a in
  let approx = Linalg.Rsvd.factor ~rank:5 ~seed:3 a in
  for i = 0 to 4 do
    let rel =
      Float.abs (exact.Linalg.Svd.s.(i) -. approx.Linalg.Rsvd.s.(i))
      /. Float.max 1e-12 exact.Linalg.Svd.s.(i)
    in
    if rel > 0.05 then
      Alcotest.failf "s%d off by %.1f%%" i (100.0 *. rel)
  done

let test_rsvd_orthonormal_u () =
  let a =
    Linalg.Mat.init 20 15 (fun i j ->
        sin (float_of_int i *. (0.51 +. (0.07 *. float_of_int j)))
        +. (0.3 *. cos (float_of_int ((i * 2) + (j * j)))))
  in
  let approx = Linalg.Rsvd.factor ~rank:6 ~seed:9 a in
  let g = Linalg.Mat.mul_tn approx.Linalg.Rsvd.u approx.Linalg.Rsvd.u in
  Alcotest.(check bool) "U^T U = I" true
    (Linalg.Mat.equal ~tol:1e-8 g (Linalg.Mat.identity 6))

let test_rsvd_deterministic () =
  let a = Linalg.Mat.init 15 10 (fun i j -> cos (float_of_int ((3 * i) + j))) in
  let r1 = Linalg.Rsvd.factor ~rank:4 ~seed:5 a in
  let r2 = Linalg.Rsvd.factor ~rank:4 ~seed:5 a in
  Alcotest.(check bool) "same seed, same result" true
    (Linalg.Vec.equal r1.Linalg.Rsvd.s r2.Linalg.Rsvd.s)

let test_rsvd_subset_selection_compatible () =
  (* Algorithm 2 driven by the randomized factorization picks rows that
     still form a well-conditioned basis *)
  let b =
    Linalg.Mat.init 25 4 (fun i j ->
        sin (float_of_int i *. (0.29 +. (0.17 *. float_of_int j))))
  in
  let c =
    Linalg.Mat.init 4 12 (fun i j ->
        cos (float_of_int j *. (0.41 +. (0.13 *. float_of_int i))))
  in
  let a = Linalg.Mat.mul b c in
  let svd = Linalg.Rsvd.to_svd (Linalg.Rsvd.factor ~rank:4 ~seed:11 a) in
  let rows = Core.Subset_select.rows_from_svd svd ~r:4 in
  let sub = Linalg.Mat.select_rows a rows in
  Alcotest.(check int) "independent rows" 4 (Linalg.Rank.of_mat sub)

let prop_rsvd_values_below_exact =
  QCheck.Test.make ~count:25
    ~name:"rsvd singular values never exceed the exact ones (much)"
    QCheck.(int_range 1 500)
    (fun seed ->
      let a =
        Linalg.Mat.init 18 12 (fun i j ->
            sin (float_of_int ((seed * 31) + (i * 5) + j)))
      in
      let exact = Linalg.Svd.factor a in
      let approx = Linalg.Rsvd.factor ~rank:4 ~seed a in
      let ok = ref true in
      Array.iteri
        (fun i s ->
          if s > exact.Linalg.Svd.s.(i) *. (1.0 +. 1e-8) +. 1e-10 then ok := false)
        approx.Linalg.Rsvd.s;
      !ok)

let unit_tests =
  [
    ("sparse: dense roundtrip", test_sparse_roundtrip);
    ("sparse: of_rows merges duplicates", test_sparse_of_rows_duplicates);
    ("sparse: apply / apply_t", test_sparse_apply);
    ("sparse: X A^T kernel", test_sparse_mul_dense_nt);
    ("sparse: transpose", test_sparse_transpose);
    ("sparse: row norms", test_sparse_row_norms);
    ("sparse: density", test_sparse_density);
    ("sparse: tolerance drop", test_sparse_tol_drop);
    ("rsvd: exact on low rank", test_rsvd_low_rank_exact);
    ("rsvd: leading values close", test_rsvd_leading_values_close);
    ("rsvd: orthonormal U", test_rsvd_orthonormal_u);
    ("rsvd: deterministic", test_rsvd_deterministic);
    ("rsvd: feeds Algorithm 2", test_rsvd_subset_selection_compatible);
  ]

let property_tests =
  List.map (fun t -> QCheck_alcotest.to_alcotest t) [ prop_rsvd_values_below_exact ]

let suites =
  [
    ( "sparse+rsvd",
      List.map (fun (name, f) -> Alcotest.test_case name `Quick f) unit_tests
      @ property_tests );
  ]
