(* Tests for the CSR sparse matrices and the randomized SVD. *)

let check_close ?(tol = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > tol then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

let lcg_state = ref 99

let lcg_float () =
  lcg_state := ((!lcg_state * 1103515245) + 12345) land 0x3FFFFFFF;
  (float_of_int !lcg_state /. float_of_int 0x3FFFFFFF *. 2.0) -. 1.0

let random_sparse_dense m n density =
  Linalg.Mat.init m n (fun _ _ ->
      let v = lcg_float () in
      if Float.abs v < 1.0 -. density then 0.0 else v)

(* ------------------------------------------------------------------ *)
(* Sparse *)

let test_sparse_roundtrip () =
  let d = random_sparse_dense 7 9 0.3 in
  let s = Linalg.Sparse.of_dense d in
  Alcotest.(check bool) "to_dense inverts of_dense" true
    (Linalg.Mat.equal d (Linalg.Sparse.to_dense s));
  Alcotest.(check bool) "equal_dense agrees" true (Linalg.Sparse.equal_dense s d)

let test_sparse_of_rows_duplicates () =
  let s = Linalg.Sparse.of_rows 3 [| [ (0, 1.0); (0, 2.0); (2, 5.0) ]; [] |] in
  check_close "summed duplicate" 3.0 (Linalg.Sparse.get s 0 0);
  check_close "other entry" 5.0 (Linalg.Sparse.get s 0 2);
  check_close "empty row" 0.0 (Linalg.Sparse.get s 1 1);
  Alcotest.(check int) "nnz" 2 (Linalg.Sparse.nnz s)

let test_sparse_apply () =
  let d = random_sparse_dense 6 8 0.4 in
  let s = Linalg.Sparse.of_dense d in
  let x = Array.init 8 (fun i -> float_of_int (i - 3)) in
  Alcotest.(check bool) "apply matches dense" true
    (Linalg.Vec.equal ~tol:1e-12 (Linalg.Mat.apply d x) (Linalg.Sparse.apply s x));
  let y = Array.init 6 (fun i -> float_of_int (2 * i) -. 5.0) in
  Alcotest.(check bool) "apply_t matches dense" true
    (Linalg.Vec.equal ~tol:1e-12 (Linalg.Mat.apply_t d y) (Linalg.Sparse.apply_t s y))

let test_sparse_mul_dense_nt () =
  let a = random_sparse_dense 5 7 0.4 in
  let s = Linalg.Sparse.of_dense a in
  let x = Linalg.Mat.init 4 7 (fun i j -> float_of_int ((i * 7) + j) /. 10.0) in
  Alcotest.(check bool) "X A^T matches dense" true
    (Linalg.Mat.equal ~tol:1e-12 (Linalg.Mat.mul_nt x a) (Linalg.Sparse.mul_dense_nt x s))

let test_sparse_transpose () =
  let d = random_sparse_dense 5 6 0.4 in
  let s = Linalg.Sparse.of_dense d in
  Alcotest.(check bool) "transpose matches dense" true
    (Linalg.Sparse.equal_dense (Linalg.Sparse.transpose s) (Linalg.Mat.transpose d))

let test_sparse_row_norms () =
  let d = random_sparse_dense 5 6 0.5 in
  let s = Linalg.Sparse.of_dense d in
  Alcotest.(check bool) "row norms match" true
    (Linalg.Vec.equal ~tol:1e-12 (Linalg.Mat.row_norms2 d) (Linalg.Sparse.row_norms2 s))

let test_sparse_density () =
  let s = Linalg.Sparse.of_rows 4 [| [ (0, 1.0) ]; [ (1, 1.0); (2, 1.0) ] |] in
  check_close "density" (3.0 /. 8.0) (Linalg.Sparse.density s)

let test_sparse_tol_drop () =
  let d = Linalg.Mat.of_arrays [| [| 1.0; 1e-14 |] |] in
  let s = Linalg.Sparse.of_dense ~tol:1e-12 d in
  Alcotest.(check int) "tiny entry dropped" 1 (Linalg.Sparse.nnz s)

(* ------------------------------------------------------------------ *)
(* Streaming builder and the parallel CSR kernels *)

let test_init_rows_matches_of_rows () =
  let rows =
    [| [ (3, 1.5); (0, -2.0) ]; []; [ (1, 4.0); (1, -1.0); (4, 0.5) ] |]
  in
  let a = Linalg.Sparse.of_rows 5 rows in
  let b = Linalg.Sparse.init_rows ~rows:3 ~cols:5 (fun i -> rows.(i)) in
  Alcotest.(check bool) "init_rows = of_rows" true
    (Linalg.Sparse.equal_dense b (Linalg.Sparse.to_dense a))

let test_init_rows_out_of_range () =
  Alcotest.check_raises "column out of range"
    (Invalid_argument "Sparse.init_rows: column out of range")
    (fun () ->
      ignore (Linalg.Sparse.init_rows ~rows:1 ~cols:4 (fun _ -> [ (4, 1.0) ])))

let test_mul_vec_matches_dense () =
  let d = random_sparse_dense 9 13 0.35 in
  let s = Linalg.Sparse.of_dense d in
  let x = Array.init 13 (fun i -> float_of_int (i - 6) /. 3.0) in
  Alcotest.(check bool) "mul_vec = dense apply" true
    (Linalg.Vec.equal ~tol:1e-12 (Linalg.Mat.apply d x) (Linalg.Sparse.mul_vec s x))

let test_mul_mat_matches_dense () =
  let d = random_sparse_dense 8 11 0.35 in
  let s = Linalg.Sparse.of_dense d in
  let x = Linalg.Mat.init 11 5 (fun i j -> float_of_int ((i * 5) + j) /. 7.0) in
  Alcotest.(check bool) "mul_mat = dense mul" true
    (Linalg.Mat.equal ~tol:1e-12 (Linalg.Mat.mul d x) (Linalg.Sparse.mul_mat s x))

let test_tmul_mat_matches_dense () =
  let d = random_sparse_dense 8 11 0.35 in
  let s = Linalg.Sparse.of_dense d in
  let y = Linalg.Mat.init 8 4 (fun i j -> float_of_int ((i * 4) + j) /. 9.0) in
  Alcotest.(check bool) "tmul_mat = dense mul_tn" true
    (Linalg.Mat.equal ~tol:1e-12 (Linalg.Mat.mul_tn d y) (Linalg.Sparse.tmul_mat s y))

(* PR-3 discipline: the banded kernels must be bit-identical at any
   pool size, including with the grain threshold forced low enough that
   the parallel path actually runs. *)
let with_forced_parallel sizes f =
  let saved_threshold = Linalg.Mat.par_threshold_value () in
  let saved_domains = Par.Pool.size () in
  Linalg.Mat.set_par_threshold 1;
  Fun.protect ~finally:(fun () ->
      Linalg.Mat.set_par_threshold saved_threshold;
      Par.Pool.set_size saved_domains)
  @@ fun () ->
  List.map
    (fun d ->
      Par.Pool.set_size d;
      f ())
    sizes

let test_kernels_pool_size_invariant () =
  let d = random_sparse_dense 17 23 0.3 in
  let s = Linalg.Sparse.of_dense d in
  let x = Linalg.Mat.init 23 6 (fun i j -> sin (float_of_int ((i * 6) + j))) in
  let y = Linalg.Mat.init 17 6 (fun i j -> cos (float_of_int ((i * 6) + j))) in
  let v = Array.init 23 (fun i -> float_of_int (i mod 5) -. 2.0) in
  (match with_forced_parallel [ 1; 2; 4 ] (fun () -> Linalg.Sparse.mul_mat s x) with
   | r1 :: rest ->
     List.iter
       (fun r ->
         Alcotest.(check bool) "mul_mat bit-identical" true
           (Linalg.Mat.equal ~tol:0.0 r1 r))
       rest
   | [] -> assert false);
  (match with_forced_parallel [ 1; 2; 4 ] (fun () -> Linalg.Sparse.tmul_mat s y) with
   | r1 :: rest ->
     List.iter
       (fun r ->
         Alcotest.(check bool) "tmul_mat bit-identical" true
           (Linalg.Mat.equal ~tol:0.0 r1 r))
       rest
   | [] -> assert false);
  match with_forced_parallel [ 1; 2; 4 ] (fun () -> Linalg.Sparse.mul_vec s v) with
  | r1 :: rest ->
    List.iter
      (fun r ->
        Alcotest.(check bool) "mul_vec bit-identical" true
          (Linalg.Vec.equal ~tol:0.0 r1 r))
      rest
  | [] -> assert false

(* random CSR row structure with empty rows and duplicate columns; the
   dense reference accumulates duplicates in the same sorted-column
   order the CSR merge uses, so comparisons can stay tight *)
let qcheck_rows_gen =
  QCheck.Gen.(
    let entry cols = pair (int_bound (cols - 1)) (float_range (-2.0) 2.0) in
    let* rows = int_range 1 8 in
    let* cols = int_range 1 9 in
    let* data = array_size (return rows) (list_size (int_bound 6) (entry cols)) in
    return (rows, cols, data))

let qcheck_rows =
  QCheck.make
    ~print:(fun (rows, cols, data) ->
      Printf.sprintf "%dx%d %s" rows cols
        (String.concat "; "
           (Array.to_list
              (Array.map
                 (fun l ->
                   "["
                   ^ String.concat ","
                       (List.map (fun (j, v) -> Printf.sprintf "(%d,%g)" j v) l)
                   ^ "]")
                 data))))
    qcheck_rows_gen

let dense_of_row_lists rows cols data =
  let m = Linalg.Mat.create rows cols in
  Array.iteri
    (fun i l ->
      List.iter
        (fun (j, v) -> Linalg.Mat.set m i j (Linalg.Mat.get m i j +. v))
        (List.stable_sort (fun (a, _) (b, _) -> compare a b) l))
    data;
  m

let prop_sparse_kernels_match_dense =
  QCheck.Test.make ~count:100
    ~name:"CSR mul_vec/mul_mat/tmul_mat match dense refs (dups, empty rows)"
    qcheck_rows
    (fun (rows, cols, data) ->
      let s = Linalg.Sparse.init_rows ~rows ~cols (fun i -> data.(i)) in
      let d = dense_of_row_lists rows cols data in
      let x = Linalg.Mat.init cols 3 (fun i j -> sin (float_of_int ((i * 3) + j))) in
      let y = Linalg.Mat.init rows 3 (fun i j -> cos (float_of_int ((i * 3) + j))) in
      let v = Array.init cols (fun i -> float_of_int (i - 2)) in
      Linalg.Sparse.equal_dense ~tol:1e-12 s d
      && Linalg.Vec.equal ~tol:1e-9 (Linalg.Sparse.mul_vec s v) (Linalg.Mat.apply d v)
      && Linalg.Mat.equal ~tol:1e-9 (Linalg.Sparse.mul_mat s x) (Linalg.Mat.mul d x)
      && Linalg.Mat.equal ~tol:1e-9 (Linalg.Sparse.tmul_mat s y)
           (Linalg.Mat.mul_tn d y))

(* ------------------------------------------------------------------ *)
(* Randomized SVD *)

let test_rsvd_low_rank_exact () =
  (* on an exactly rank-3 matrix, rsvd with rank 3 recovers the spectrum *)
  (* per-column frequencies keep the factors genuinely full rank
     (sin (i*k + j) alone spans only a 2-dimensional space) *)
  let b =
    Linalg.Mat.init 30 3 (fun i j ->
        sin (float_of_int i *. (0.37 +. (0.21 *. float_of_int j))))
  in
  let c =
    Linalg.Mat.init 3 20 (fun i j ->
        cos (float_of_int j *. (0.23 +. (0.31 *. float_of_int i))) /. 3.0)
  in
  let a = Linalg.Mat.mul b c in
  let exact = Linalg.Svd.factor a in
  let approx = Linalg.Rsvd.factor ~rank:3 ~seed:7 a in
  for i = 0 to 2 do
    check_close ~tol:1e-6 (Printf.sprintf "s%d" i) exact.Linalg.Svd.s.(i)
      approx.Linalg.Rsvd.s.(i)
  done

let test_rsvd_leading_values_close () =
  (* on a full-rank matrix with decaying spectrum, the leading values
     are captured to a few percent *)
  let a =
    Linalg.Mat.init 40 25 (fun i j ->
        exp (-0.25 *. float_of_int (min i j)) *. cos (float_of_int ((i * 7) + j)))
  in
  let exact = Linalg.Svd.factor a in
  let approx = Linalg.Rsvd.factor ~rank:5 ~seed:3 a in
  for i = 0 to 4 do
    let rel =
      Float.abs (exact.Linalg.Svd.s.(i) -. approx.Linalg.Rsvd.s.(i))
      /. Float.max 1e-12 exact.Linalg.Svd.s.(i)
    in
    if rel > 0.05 then
      Alcotest.failf "s%d off by %.1f%%" i (100.0 *. rel)
  done

let test_rsvd_orthonormal_u () =
  let a =
    Linalg.Mat.init 20 15 (fun i j ->
        sin (float_of_int i *. (0.51 +. (0.07 *. float_of_int j)))
        +. (0.3 *. cos (float_of_int ((i * 2) + (j * j)))))
  in
  let approx = Linalg.Rsvd.factor ~rank:6 ~seed:9 a in
  let g = Linalg.Mat.mul_tn approx.Linalg.Rsvd.u approx.Linalg.Rsvd.u in
  Alcotest.(check bool) "U^T U = I" true
    (Linalg.Mat.equal ~tol:1e-8 g (Linalg.Mat.identity 6))

let test_rsvd_deterministic () =
  let a = Linalg.Mat.init 15 10 (fun i j -> cos (float_of_int ((3 * i) + j))) in
  let r1 = Linalg.Rsvd.factor ~rank:4 ~seed:5 a in
  let r2 = Linalg.Rsvd.factor ~rank:4 ~seed:5 a in
  Alcotest.(check bool) "same seed, same result" true
    (Linalg.Vec.equal r1.Linalg.Rsvd.s r2.Linalg.Rsvd.s)

let test_rsvd_subset_selection_compatible () =
  (* Algorithm 2 driven by the randomized factorization picks rows that
     still form a well-conditioned basis *)
  let b =
    Linalg.Mat.init 25 4 (fun i j ->
        sin (float_of_int i *. (0.29 +. (0.17 *. float_of_int j))))
  in
  let c =
    Linalg.Mat.init 4 12 (fun i j ->
        cos (float_of_int j *. (0.41 +. (0.13 *. float_of_int i))))
  in
  let a = Linalg.Mat.mul b c in
  let svd = Linalg.Rsvd.to_svd (Linalg.Rsvd.factor ~rank:4 ~seed:11 a) in
  let rows = Core.Subset_select.rows_from_svd svd ~r:4 in
  let sub = Linalg.Mat.select_rows a rows in
  Alcotest.(check int) "independent rows" 4 (Linalg.Rank.of_mat sub)

let prop_rsvd_values_below_exact =
  QCheck.Test.make ~count:25
    ~name:"rsvd singular values never exceed the exact ones (much)"
    QCheck.(int_range 1 500)
    (fun seed ->
      let a =
        Linalg.Mat.init 18 12 (fun i j ->
            sin (float_of_int ((seed * 31) + (i * 5) + j)))
      in
      let exact = Linalg.Svd.factor a in
      let approx = Linalg.Rsvd.factor ~rank:4 ~seed a in
      let ok = ref true in
      Array.iteri
        (fun i s ->
          if s > exact.Linalg.Svd.s.(i) *. (1.0 +. 1e-8) +. 1e-10 then ok := false)
        approx.Linalg.Rsvd.s;
      !ok)

(* ------------------------------------------------------------------ *)
(* Operator-form factorization and the streaming pool *)

let test_factor_op_matches_dense () =
  (* the sparse operator route and the dense route agree on the leading
     spectrum of a fast-decaying full-rank matrix (per-column distinct
     frequencies keep the columns independent) *)
  let d =
    Linalg.Mat.init 60 20 (fun i j ->
        exp (-0.4 *. float_of_int j)
        *. sin (float_of_int i *. (0.31 +. (0.17 *. float_of_int j))))
  in
  let s = Linalg.Sparse.of_dense d in
  let dense = Linalg.Rsvd.factor ~rank:6 ~seed:21 d in
  let viaop =
    Linalg.Rsvd.factor_op ~rank:6 ~seed:21 (Linalg.Rsvd.op_of_sparse s)
  in
  Alcotest.(check int) "same rank kept" (Array.length dense.Linalg.Rsvd.s)
    (Array.length viaop.Linalg.Rsvd.s);
  (* the two routes sum in different orders (blocked dense vs CSR), so
     agreement is tight but not bitwise *)
  Array.iteri
    (fun i sd ->
      let rel = Float.abs (sd -. viaop.Linalg.Rsvd.s.(i)) /. Float.max 1e-12 sd in
      if rel > 1e-6 then
        Alcotest.failf "route mismatch at s%d: %.3g vs %.3g" i sd
          viaop.Linalg.Rsvd.s.(i))
    dense.Linalg.Rsvd.s;
  let exact = Linalg.Svd.factor d in
  for i = 0 to min 3 (Array.length viaop.Linalg.Rsvd.s - 1) do
    let rel =
      Float.abs (exact.Linalg.Svd.s.(i) -. viaop.Linalg.Rsvd.s.(i))
      /. Float.max 1e-12 exact.Linalg.Svd.s.(i)
    in
    if rel > 0.02 then Alcotest.failf "s%d off by %.2f%%" i (100.0 *. rel)
  done

let test_factor_adaptive_clears_tail () =
  (* decay slow enough that the default init rank of 8 leaves > 1% of
     the energy in the tail, forcing at least one doubling *)
  let d =
    Linalg.Mat.init 80 30 (fun i j ->
        exp (-0.15 *. float_of_int j)
        *. cos (float_of_int i *. (0.23 +. (0.11 *. float_of_int j))))
  in
  let ops = Linalg.Rsvd.op_of_mat d in
  let f, tail = Linalg.Rsvd.factor_adaptive ~tail_energy:0.01 ~seed:4 ops in
  Alcotest.(check bool) "tail cleared" true (tail <= 0.01);
  Alcotest.(check bool) "rank grew beyond init" true
    (Array.length f.Linalg.Rsvd.s > 8);
  let f2, tail2 = Linalg.Rsvd.factor_adaptive ~tail_energy:0.01 ~seed:4 ops in
  Alcotest.(check bool) "deterministic in the seed" true
    (Linalg.Vec.equal ~tol:0.0 f.Linalg.Rsvd.s f2.Linalg.Rsvd.s
    && Float.equal tail tail2)

(* a small circuit pool built both ways: the sparse streaming builder
   must reproduce Paths.build column-for-column *)
let small_pool () =
  let nl =
    Circuit.Generator.generate
      { Circuit.Generator.default with num_gates = 120; seed = 17 }
  in
  let model = Timing.Variation.make_model ~levels:2 () in
  let setup = Core.Pipeline.prepare ~yield_samples:100 ~netlist:nl ~model () in
  setup

let test_pool_stream_matches_paths_build () =
  let setup = small_pool () in
  let dm = setup.Core.Pipeline.dm in
  let result =
    Timing.Path_extract.extract dm ~t_cons:setup.Core.Pipeline.t_cons
      ~yield_threshold:setup.Core.Pipeline.yield_threshold
  in
  let paths = result.Timing.Path_extract.paths in
  let dense = Timing.Paths.build dm paths in
  let stream = Timing.Pool_stream.of_paths dm paths in
  Alcotest.(check int) "paths" (Timing.Paths.num_paths dense)
    (Timing.Pool_stream.num_paths stream);
  Alcotest.(check int) "segments" (Timing.Paths.num_segments dense)
    (Timing.Pool_stream.num_segments stream);
  Alcotest.(check int) "vars" (Timing.Paths.num_vars dense)
    (Timing.Pool_stream.num_vars stream);
  Alcotest.(check bool) "G matches" true
    (Linalg.Sparse.equal_dense (Timing.Pool_stream.g stream)
       (Timing.Paths.g_mat dense));
  Alcotest.(check bool) "Sigma matches" true
    (Linalg.Sparse.equal_dense ~tol:1e-12 (Timing.Pool_stream.sigma stream)
       (Timing.Paths.sigma_mat dense));
  Alcotest.(check bool) "mu matches" true
    (Linalg.Vec.equal ~tol:1e-9 (Timing.Pool_stream.mu stream)
       (Timing.Paths.mu_paths dense));
  let n = Timing.Paths.num_paths dense in
  let all = Array.init n (fun i -> i) in
  Alcotest.(check bool) "implicit A rows match A = G*Sigma" true
    (Linalg.Mat.equal ~tol:1e-9
       (Timing.Pool_stream.rows_dense stream all)
       (Timing.Paths.a_mat dense))

let test_sketched_engine_matches_exact_selection () =
  (* on a pool with fast decay the sketched engine reproduces the exact
     engine's representative set (verified end-to-end on demo90 too) *)
  let setup = small_pool () in
  let a = Timing.Paths.a_mat setup.Core.Pipeline.pool in
  let mu = Timing.Paths.mu_paths setup.Core.Pipeline.pool in
  let ex =
    Core.Select.approximate ~engine:Core.Select.Exact ~a ~mu ~eps:0.05
      ~t_cons:setup.Core.Pipeline.t_cons ()
  in
  let sk =
    Core.Select.approximate ~engine:Core.Select.Sketched ~a ~mu ~eps:0.05
      ~t_cons:setup.Core.Pipeline.t_cons ()
  in
  Alcotest.(check bool) "sketched meets the same tolerance" true
    (sk.Core.Select.eps_r <= 0.05);
  Alcotest.(check bool) "selection size within 2x of exact" true
    (Array.length sk.Core.Select.indices
    <= max 2 (2 * Array.length ex.Core.Select.indices));
  let sk2 =
    Core.Select.approximate ~engine:Core.Select.Sketched ~a ~mu ~eps:0.05
      ~t_cons:setup.Core.Pipeline.t_cons ()
  in
  Alcotest.(check bool) "sketched selection deterministic" true
    (sk.Core.Select.indices = sk2.Core.Select.indices)

let test_sketch_config_validation () =
  (* a nonpositive fixed rank must be rejected, not clamped to a silent
     rank-1 sketch with degraded selections *)
  let setup = small_pool () in
  let a = Timing.Paths.a_mat setup.Core.Pipeline.pool in
  let mu = Timing.Paths.mu_paths setup.Core.Pipeline.pool in
  let bad field sketch =
    Alcotest.check_raises field (Invalid_argument ("Select: " ^ field))
      (fun () ->
        ignore
          (Core.Select.approximate ~engine:Core.Select.Sketched ~sketch ~a ~mu
             ~eps:0.05 ~t_cons:setup.Core.Pipeline.t_cons ()))
  in
  let d = Core.Select.default_sketch in
  bad "sketch_rank must be >= 1" { d with Core.Select.sketch_rank = Some 0 };
  bad "oversample must be >= 0" { d with Core.Select.oversample = -1 };
  bad "power_iters must be >= 0" { d with Core.Select.power_iters = -2 };
  Alcotest.check_raises "streaming entry validates too"
    (Invalid_argument "Select: sketch_rank must be >= 1")
    (fun () ->
      let pool =
        Timing.Pool_stream.synthetic ~seed:3 ~paths:50 ~segments:20 ~vars:10
          ~segs_per_path:4 ~vars_per_seg:2 ()
      in
      ignore
        (Core.Select.sketch_representatives
           ~sketch:{ d with Core.Select.sketch_rank = Some (-1) }
           ~ops:(Timing.Pool_stream.op pool) ()))

let test_sketch_representatives_synthetic () =
  let pool =
    Timing.Pool_stream.synthetic ~seed:5 ~paths:3000 ~segments:300 ~vars:150
      ~segs_per_path:6 ~vars_per_seg:3 ()
  in
  let st =
    Core.Select.sketch_representatives ~ops:(Timing.Pool_stream.op pool) ()
  in
  let idx = st.Core.Select.stream_indices in
  Alcotest.(check bool) "non-empty selection" true (Array.length idx > 0);
  let sorted = Array.copy idx in
  Array.sort compare sorted;
  Alcotest.(check bool) "indices sorted and in range" true
    (idx = sorted && idx.(0) >= 0
    && idx.(Array.length idx - 1) < Timing.Pool_stream.num_paths pool);
  let distinct = Array.length idx = List.length (List.sort_uniq compare (Array.to_list idx)) in
  Alcotest.(check bool) "indices distinct" true distinct;
  Alcotest.(check bool) "adaptive tail recorded" true
    (Float.is_finite st.Core.Select.tail_fraction);
  let st2 =
    Core.Select.sketch_representatives ~ops:(Timing.Pool_stream.op pool) ()
  in
  Alcotest.(check bool) "deterministic" true
    (st.Core.Select.stream_indices = st2.Core.Select.stream_indices)

let unit_tests =
  [
    ("sparse: dense roundtrip", test_sparse_roundtrip);
    ("sparse: of_rows merges duplicates", test_sparse_of_rows_duplicates);
    ("sparse: apply / apply_t", test_sparse_apply);
    ("sparse: X A^T kernel", test_sparse_mul_dense_nt);
    ("sparse: transpose", test_sparse_transpose);
    ("sparse: row norms", test_sparse_row_norms);
    ("sparse: density", test_sparse_density);
    ("sparse: tolerance drop", test_sparse_tol_drop);
    ("sparse: init_rows matches of_rows", test_init_rows_matches_of_rows);
    ("sparse: init_rows rejects bad column", test_init_rows_out_of_range);
    ("sparse: mul_vec vs dense", test_mul_vec_matches_dense);
    ("sparse: mul_mat vs dense", test_mul_mat_matches_dense);
    ("sparse: tmul_mat vs dense", test_tmul_mat_matches_dense);
    ("sparse: kernels pool-size invariant", test_kernels_pool_size_invariant);
    ("rsvd: exact on low rank", test_rsvd_low_rank_exact);
    ("rsvd: leading values close", test_rsvd_leading_values_close);
    ("rsvd: orthonormal U", test_rsvd_orthonormal_u);
    ("rsvd: deterministic", test_rsvd_deterministic);
    ("rsvd: feeds Algorithm 2", test_rsvd_subset_selection_compatible);
    ("rsvd: operator route matches dense", test_factor_op_matches_dense);
    ("rsvd: adaptive clears the tail", test_factor_adaptive_clears_tail);
    ("stream: Pool_stream matches Paths.build", test_pool_stream_matches_paths_build);
    ("select: sketched engine vs exact", test_sketched_engine_matches_exact_selection);
    ("select: sketch config validation", test_sketch_config_validation);
    ("select: sketch_representatives on synthetic", test_sketch_representatives_synthetic);
  ]

let property_tests =
  List.map
    (fun t -> QCheck_alcotest.to_alcotest t)
    [ prop_rsvd_values_below_exact; prop_sparse_kernels_match_dense ]

let suites =
  [
    ( "sparse-rsvd",
      List.map (fun (name, f) -> Alcotest.test_case name `Quick f) unit_tests
      @ property_tests );
  ]
