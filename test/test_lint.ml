(* Tests for the project linter (tools/lint): a fixture corpus of
   known-bad snippets, one positive and one negative case per rule,
   plus suppression-comment and output-format coverage. Snippets are
   linted from strings via [Lint.lint_source] — the [path] argument
   drives the directory-scoped rules, no files are written. *)

let fired rule diags = List.exists (fun d -> d.Lint.rule = rule) diags

let count rule diags =
  List.length (List.filter (fun d -> d.Lint.rule = rule) diags)

let lint ?(path = "lib/timing/example.ml") src = Lint.lint_source ~path src

let check_fires rule ?path src () =
  let diags = lint ?path src in
  if not (fired rule diags) then
    Alcotest.failf "expected rule %s to fire; got [%s]" rule
      (String.concat "; " (List.map Lint.render_text diags))

let check_silent rule ?path src () =
  let diags = lint ?path src in
  if fired rule diags then
    Alcotest.failf "expected rule %s to stay silent; got [%s]" rule
      (String.concat "; " (List.map Lint.render_text diags))

(* ------------------------------------------------------------------ *)
(* Rule corpus: (rule, bad snippet in a generic lib file, good snippet
   or same snippet at an allowed path) *)

let raw_domain_bad = "let d = Domain.spawn (fun () -> 1)\nlet () = Domain.join d"

let self_init_bad = "let () = Random.self_init ()"
let ambient_random_bad = "let x = Random.int 7"

let unsafe_bad = "let f a = Array.unsafe_get a 0"
let unsafe_bigarray_bad = "let f a i = Bigarray.Array1.unsafe_get a i"

let float_eq_bad = "let f x = x = 0.0"
let float_neq_bad = "let f x = x <> 1.5"
let float_eq_expr_bad = "let f x y = (x +. y) = x"
let float_eq_annot_bad = "let f x y = (x : float) = y"
let int_eq_good = "let f x = x = 0"

let catchall_bad = "let f g = try g () with _ -> 0"
let catchall_ignore_bad = "let f g = try g () with e -> ignore e"
let catch_typed_good = "let f g = try g () with Not_found -> 0"

let exit_bad = "let f () = exit 1"
let failwith_bad = "let f () = failwith \"boom\""

let par_ref_bad =
  "let total = ref 0\n\
   let f n = Par.Pool.parallel_for 0 n (fun i -> total := !total + i)"

let unbounded_read_bad = "let f fd buf = Unix.read fd buf 0 (Bytes.length buf)"
let unbounded_write_bad = "let f fd b = Unix.write fd b 0 (Bytes.length b)"
let unbounded_connect_bad = "let f fd sa = Unix.connect fd sa"

let par_local_ref_good =
  "let f n =\n\
  \  let total = ref 0 in\n\
  \  Par.Pool.parallel_for 0 n (fun i -> ignore i);\n\
  \  !total"

let wal_write_bad = "let journal wal_fd b = Unix.write wal_fd b 0 (Bytes.length b)"

let wal_write_field_bad =
  "let journal t b = Unix.single_write t.wal_fd b 0 (Bytes.length b)"

let wal_write_string_bad = "let touch fd = Unix.write_substring fd \"wal-header\" 0 3"
let plain_write_good = "let f fd b = Unix.write fd b 0 (Bytes.length b)"

let monitor_mutex_bad = "let f m = Mutex.lock m"
let monitor_condwait_bad = "let f c m = Condition.wait c m"
let monitor_join_bad = "let f t = Thread.join t"
let monitor_select_bad = "let f fd = Unix.select [ fd ] [] [] 0.25"

let dense_pool_bad = "let f sp = Linalg.Sparse.to_dense sp"
let dense_pool_mat_bad = "let f rows = Linalg.Mat.of_rows rows"

let dense_pool_good =
  "let f t x = Linalg.Sparse.mul_mat t.g (Linalg.Sparse.mul_mat t.sigma x)"

let monitor_atomic_good =
  "let q = Atomic.make []\n\
   let push x =\n\
  \  let rec go () =\n\
  \    let old = Atomic.get q in\n\
  \    if not (Atomic.compare_and_set q old (x :: old)) then go ()\n\
  \  in\n\
  \  go ()\n\
   let drain () = Atomic.exchange q []"

(* ------------------------------------------------------------------ *)

let unit_tests =
  [
    (* each rule: fires on bad input *)
    ("no-raw-domain fires", check_fires "no-raw-domain" raw_domain_bad);
    ("no-self-init fires on self_init", check_fires "no-self-init" self_init_bad);
    ( "no-self-init fires on ambient Random",
      check_fires "no-self-init" ambient_random_bad );
    ("unsafe-array fires", check_fires "unsafe-array" unsafe_bad);
    ("unsafe-array fires on Bigarray", check_fires "unsafe-array" unsafe_bigarray_bad);
    ("no-float-eq fires on (=) literal", check_fires "no-float-eq" float_eq_bad);
    ("no-float-eq fires on (<>)", check_fires "no-float-eq" float_neq_bad);
    ("no-float-eq fires on float expression", check_fires "no-float-eq" float_eq_expr_bad);
    ("no-float-eq fires on annotation", check_fires "no-float-eq" float_eq_annot_bad);
    ("no-catchall fires on _", check_fires "no-catchall" catchall_bad);
    ("no-catchall fires on ignore e", check_fires "no-catchall" catchall_ignore_bad);
    ("no-exit fires on exit", check_fires "no-exit" exit_bad);
    ("no-exit fires on failwith", check_fires "no-exit" failwith_bad);
    ("mutable-global-in-par fires", check_fires "mutable-global-in-par" par_ref_bad);
    (* each rule: negative case *)
    ( "no-raw-domain allowed in lib/par/",
      check_silent "no-raw-domain" ~path:"lib/par/pool.ml" raw_domain_bad );
    ( "ambient Random allowed in lib/rng/",
      check_silent "no-self-init" ~path:"lib/rng/rng.ml" ambient_random_bad );
    ( "Random.self_init banned even in lib/rng/",
      check_fires "no-self-init" ~path:"lib/rng/rng.ml" self_init_bad );
    ( "unsafe-array allowed in allowlisted kernel",
      check_silent "unsafe-array" ~path:"lib/linalg/mat.ml" unsafe_bad );
    ("no-float-eq silent on int (=)", check_silent "no-float-eq" int_eq_good);
    ( "no-float-eq silent on Float.equal",
      check_silent "no-float-eq" "let f x = Float.equal x 0.0" );
    ("no-catchall silent on typed handler", check_silent "no-catchall" catch_typed_good);
    ( "no-catchall allowed in lib/core/errors.ml",
      check_silent "no-catchall" ~path:"lib/core/errors.ml" catchall_bad );
    ( "no-exit silent outside lib/",
      check_silent "no-exit" ~path:"bin/pathsel.ml" exit_bad );
    ( "mutable-global-in-par silent on region-local ref",
      check_silent "mutable-global-in-par" par_local_ref_good );
    (* no-unbounded-io: raw socket calls in serving code must go
       through the deadline-carrying Serve.Io wrappers *)
    ( "no-unbounded-io fires on Unix.read in lib/serve",
      check_fires "no-unbounded-io" ~path:"lib/serve/serve.ml" unbounded_read_bad );
    ( "no-unbounded-io fires on Unix.write in lib/chaos",
      check_fires "no-unbounded-io" ~path:"lib/chaos/chaos.ml" unbounded_write_bad );
    ( "no-unbounded-io fires on Unix.connect",
      check_fires "no-unbounded-io" ~path:"lib/serve/client.ml"
        unbounded_connect_bad );
    ( "no-unbounded-io silent in the wrapper file",
      check_silent "no-unbounded-io" ~path:"lib/serve/io.ml" unbounded_read_bad );
    ( "no-unbounded-io silent outside serving code",
      check_silent "no-unbounded-io" ~path:"lib/store/store.ml"
        unbounded_write_bad );
    ( "no-unbounded-io silent on select/accept",
      check_silent "no-unbounded-io" ~path:"lib/serve/serve.ml"
        "let f fd = Unix.select [ fd ] [] [] 0.25, Unix.accept fd" );
    (* no-blocking-in-monitor: the self-healing loop shares state with
       the serving path through Atomic snapshots only *)
    ( "no-blocking-in-monitor fires on Mutex.lock",
      check_fires "no-blocking-in-monitor" ~path:"lib/serve/monitor.ml"
        monitor_mutex_bad );
    ( "no-blocking-in-monitor fires on Condition.wait",
      check_fires "no-blocking-in-monitor" ~path:"lib/serve/monitor.ml"
        monitor_condwait_bad );
    ( "no-blocking-in-monitor fires on Thread.join",
      check_fires "no-blocking-in-monitor" ~path:"lib/serve/monitor.ml"
        monitor_join_bad );
    ( "no-blocking-in-monitor fires on Unix.select",
      check_fires "no-blocking-in-monitor" ~path:"lib/serve/monitor.ml"
        monitor_select_bad );
    ( "no-blocking-in-monitor silent outside the monitor",
      check_silent "no-blocking-in-monitor" ~path:"lib/serve/serve.ml"
        monitor_mutex_bad );
    ( "no-blocking-in-monitor silent on lock-free Atomic code",
      check_silent "no-blocking-in-monitor" ~path:"lib/serve/monitor.ml"
        monitor_atomic_good );
    (* no-dense-pool: the streaming pool front-end must stay CSR and be
       consumed through the mat-mul operator *)
    ( "no-dense-pool fires on Sparse.to_dense",
      check_fires "no-dense-pool" ~path:"lib/timing/pool_stream.ml"
        dense_pool_bad );
    ( "no-dense-pool fires on Mat.of_rows",
      check_fires "no-dense-pool" ~path:"lib/timing/pool_stream.ml"
        dense_pool_mat_bad );
    ( "no-dense-pool silent on CSR mat-mul",
      check_silent "no-dense-pool" ~path:"lib/timing/pool_stream.ml"
        dense_pool_good );
    ( "no-dense-pool silent outside the streaming front-end",
      check_silent "no-dense-pool" ~path:"lib/timing/paths.ml" dense_pool_bad );
    (* no-unfsynced-wal: raw writes to wal-named fds/paths belong in
       Store.Wal, whose frame CRC + fsync is the journal-before-ack
       durability point *)
    ( "no-unfsynced-wal fires on a wal-named descriptor",
      check_fires "no-unfsynced-wal" wal_write_bad );
    ( "no-unfsynced-wal fires through a record field",
      check_fires "no-unfsynced-wal" wal_write_field_bad );
    ( "no-unfsynced-wal fires on a wal-named path literal",
      check_fires "no-unfsynced-wal" wal_write_string_bad );
    ( "no-unfsynced-wal silent inside Store.Wal",
      check_silent "no-unfsynced-wal" ~path:"lib/store/wal.ml" wal_write_bad );
    ( "no-unfsynced-wal silent on non-wal descriptors",
      check_silent "no-unfsynced-wal" plain_write_good );
    ( "no-unfsynced-wal honors allow-next",
      check_silent "no-unfsynced-wal"
        ("(* lint: allow-next no-unfsynced-wal *)\n" ^ wal_write_bad) );
    (* suppression comments *)
    ( "suppression silences a rule",
      check_silent "no-float-eq" ("(* lint: allow no-float-eq *)\n" ^ float_eq_bad) );
    ( "suppression of one rule leaves others live",
      check_fires "no-exit"
        ("(* lint: allow no-float-eq *)\n" ^ float_eq_bad ^ "\n" ^ failwith_bad) );
    ( "multi-rule suppression",
      check_silent "no-exit"
        ("(* lint: allow no-float-eq no-exit *)\n" ^ float_eq_bad ^ "\n" ^ failwith_bad)
    );
    (* line-scoped suppression: allow-next covers exactly the line
       after the comment, for exactly the named rule *)
    ( "allow-next silences the next line",
      check_silent "no-float-eq" ("(* lint: allow-next no-float-eq *)\n" ^ float_eq_bad)
    );
    ( "allow-next does not reach past one line",
      check_fires "no-float-eq"
        ("(* lint: allow-next no-float-eq *)\nlet ok = 1\n" ^ float_eq_bad) );
    ( "allow-next silences only the named rule",
      check_silent "no-float-eq"
        "(* lint: allow-next no-float-eq *)\n\
         let f x = if x = 1.0 then failwith \"boom\" else ()" );
    ( "allow-next leaves other rules on the line live",
      check_fires "no-exit"
        "(* lint: allow-next no-float-eq *)\n\
         let f x = if x = 1.0 then failwith \"boom\" else ()" );
  ]

(* ------------------------------------------------------------------ *)
(* Engine-level behaviour *)

let test_severities () =
  let diags = lint (float_eq_bad ^ "\n" ^ par_ref_bad) in
  Alcotest.(check bool) "float-eq is error" true
    (List.exists
       (fun d -> d.Lint.rule = "no-float-eq" && d.Lint.severity = Lint.Error)
       diags);
  Alcotest.(check bool) "mutable-global-in-par is warning" true
    (List.exists
       (fun d ->
         d.Lint.rule = "mutable-global-in-par" && d.Lint.severity = Lint.Warning)
       diags);
  (* warnings alone don't fail the build *)
  Alcotest.(check bool) "has_errors on error" true (Lint.has_errors diags);
  Alcotest.(check bool) "warnings alone pass" false
    (Lint.has_errors (lint par_ref_bad))

let test_locations () =
  let diags = lint ("let ok = 1\n" ^ float_eq_bad) in
  match List.filter (fun d -> d.Lint.rule = "no-float-eq") diags with
  | [ d ] ->
    Alcotest.(check int) "line" 2 d.Lint.line;
    Alcotest.(check string) "file" "lib/timing/example.ml" d.Lint.file
  | ds -> Alcotest.failf "expected one diagnostic, got %d" (List.length ds)

let test_json_output () =
  let diags = lint float_eq_bad in
  let json = Lint.render_json diags in
  Alcotest.(check bool) "array" true
    (String.length json > 2 && json.[0] = '[' && json.[String.length json - 1] = ']');
  let has needle =
    let ln = String.length needle and n = String.length json in
    let rec go i = i + ln <= n && (String.sub json i ln = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "rule field" true (has "\"rule\":\"no-float-eq\"");
  Alcotest.(check bool) "severity field" true (has "\"severity\":\"error\"")

(* The JSON renderer must survive a real parser, not just a substring
   check: escaping bugs (quotes, backslashes, control bytes) are
   exactly the class a round-trip through [Serve.Wire.parse] catches. *)
let test_json_roundtrip () =
  let d =
    {
      Lint.rule = "no-float-eq";
      severity = Lint.Error;
      file = "lib/odd \"name\"\\dir.ml";
      line = 3;
      col = 7;
      message = "quote \" backslash \\ newline \n tab \t control \x01 end";
    }
  in
  match Serve.Wire.parse (Lint.render_json [ d ]) with
  | Error e -> Alcotest.failf "render_json output is not valid JSON: %s" e
  | Ok (Serve.Wire.List [ obj ]) ->
    let str k =
      match Serve.Wire.member k obj with
      | Some (Serve.Wire.String s) -> s
      | _ -> Alcotest.failf "missing string field %s" k
    in
    Alcotest.(check string) "message round-trips" d.Lint.message (str "message");
    Alcotest.(check string) "file round-trips" d.Lint.file (str "file");
    Alcotest.(check string) "rule round-trips" d.Lint.rule (str "rule");
    Alcotest.(check bool) "line round-trips" true
      (Serve.Wire.member "line" obj = Some (Serve.Wire.Int 3));
    Alcotest.(check bool) "col round-trips" true
      (Serve.Wire.member "col" obj = Some (Serve.Wire.Int 7))
  | Ok _ -> Alcotest.fail "expected a one-element JSON array"

(* SARIF 2.1.0: the minimal shape CI annotators consume, validated
   field-by-field after a parse. Regions are 1-based, ours are 0-based
   columns — the renderer owns the + 1. *)
let test_sarif_shape () =
  let d =
    {
      Lint.rule = "no-float-eq";
      severity = Lint.Warning;
      file = "lib/a.ml";
      line = 2;
      col = 4;
      message = "float \"eq\"";
    }
  in
  let open Serve.Wire in
  let get k j =
    match member k j with Some v -> v | None -> Alcotest.failf "missing field %s" k
  in
  match parse (Lint.render_sarif ~tool:"pathsel-lint" ~rules:Lint.rules [ d ]) with
  | Error e -> Alcotest.failf "render_sarif output is not valid JSON: %s" e
  | Ok j ->
    Alcotest.(check bool) "version" true (member "version" j = Some (String "2.1.0"));
    let run =
      match get "runs" j with
      | List [ r ] -> r
      | _ -> Alcotest.fail "expected exactly one run"
    in
    let driver = get "driver" (get "tool" run) in
    Alcotest.(check bool) "tool name" true
      (member "name" driver = Some (String "pathsel-lint"));
    (match get "rules" driver with
     | List rules ->
       Alcotest.(check int) "rule table is complete" (List.length Lint.rules)
         (List.length rules)
     | _ -> Alcotest.fail "expected a rule array");
    let result =
      match get "results" run with
      | List [ r ] -> r
      | _ -> Alcotest.fail "expected exactly one result"
    in
    Alcotest.(check bool) "ruleId" true
      (member "ruleId" result = Some (String "no-float-eq"));
    Alcotest.(check bool) "level" true (member "level" result = Some (String "warning"));
    let region =
      match get "locations" result with
      | List [ l ] -> get "region" (get "physicalLocation" l)
      | _ -> Alcotest.fail "expected exactly one location"
    in
    Alcotest.(check bool) "startLine" true (member "startLine" region = Some (Int 2));
    Alcotest.(check bool) "startColumn is 1-based" true
      (member "startColumn" region = Some (Int 5))

let test_syntax_error () =
  let diags = lint "let let let" in
  Alcotest.(check bool) "syntax diagnostic" true (fired "syntax" diags);
  Alcotest.(check bool) "syntax is error" true (Lint.has_errors diags)

let test_double_violation_counts () =
  let diags = lint (float_eq_bad ^ "\nlet g y = y = 2.5") in
  Alcotest.(check int) "both sites reported" 2 (count "no-float-eq" diags)

let test_repo_tree_is_clean () =
  (* the acceptance invariant, as a test: zero unsuppressed errors on
     the real tree. Skipped when the sources aren't alongside the test
     binary (e.g. installed-package runs). *)
  if Sys.file_exists "lib" && Sys.file_exists "tools" then begin
    let diags = Lint.lint_paths [ "lib"; "bin"; "bench" ] in
    let errs = List.filter (fun d -> d.Lint.severity = Lint.Error) diags in
    if errs <> [] then
      Alcotest.failf "repository tree has lint errors:\n%s"
        (String.concat "\n" (List.map Lint.render_text errs))
  end

(* ------------------------------------------------------------------ *)
(* Companion runtime-contract layer (Checks) *)

let with_checks enabled f =
  let prev = Checks.on () in
  Checks.set_enabled enabled;
  Fun.protect ~finally:(fun () -> Checks.set_enabled prev) f

let test_checks_nan_introduction () =
  (* inf * 0 inside the kernel: NaN from NaN-free inputs must trip *)
  with_checks true (fun () ->
      let a = Linalg.Mat.of_arrays [| [| Float.infinity |] |] in
      let b = Linalg.Mat.of_arrays [| [| 0.0 |] |] in
      match Linalg.Mat.mul a b with
      | _ -> Alcotest.fail "expected Contract_violation"
      | exception Checks.Contract_violation _ -> ())

let test_checks_nan_passthrough () =
  (* NaN already in the inputs is the robust layer's business *)
  with_checks true (fun () ->
      let a = Linalg.Mat.of_arrays [| [| Float.nan |] |] in
      let b = Linalg.Mat.of_arrays [| [| 1.0 |] |] in
      let c = Linalg.Mat.mul a b in
      Alcotest.(check bool) "nan propagates unflagged" true
        (Float.is_nan (Linalg.Mat.get c 0 0)))

let test_checks_off_is_silent () =
  with_checks false (fun () ->
      let a = Linalg.Mat.of_arrays [| [| Float.infinity |] |] in
      let b = Linalg.Mat.of_arrays [| [| 0.0 |] |] in
      let c = Linalg.Mat.mul a b in
      Alcotest.(check bool) "disabled checks never raise" true
        (Float.is_nan (Linalg.Mat.get c 0 0)))

let test_checks_predictor_dims () =
  with_checks true (fun () ->
      let a =
        Linalg.Mat.of_arrays
          [| [| 1.0; 0.0 |]; [| 0.0; 1.0 |]; [| 1.0; 1.0 |] |]
      in
      let p = Core.Predictor.build ~a ~mu:[| 0.0; 0.0; 0.0 |] ~rep:[| 0; 1 |] in
      let out = Core.Predictor.predict p ~measured:[| 1.0; 2.0 |] in
      Alcotest.(check int) "one remaining path" 1 (Array.length out))

let engine_tests =
  [
    ("severities and exit policy", test_severities);
    ("checks: NaN introduction trips", test_checks_nan_introduction);
    ("checks: input NaN passes through", test_checks_nan_passthrough);
    ("checks: disabled layer is silent", test_checks_off_is_silent);
    ("checks: predictor contracts hold", test_checks_predictor_dims);
    ("locations point at the construct", test_locations);
    ("json output", test_json_output);
    ("json round-trips through the wire parser", test_json_roundtrip);
    ("sarif output shape", test_sarif_shape);
    ("syntax errors become diagnostics", test_syntax_error);
    ("every violation is reported", test_double_violation_counts);
    ("repo tree is lint-clean", test_repo_tree_is_clean);
  ]

let suites =
  [
    ( "lint",
      List.map
        (fun (name, f) -> Alcotest.test_case name `Quick f)
        (unit_tests @ engine_tests) );
  ]
