(* Tests for placement IO. *)

let check_close ?(tol = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > tol then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

let netlist () =
  Circuit.Generator.generate { Circuit.Generator.default with num_gates = 40; seed = 77 }

let test_roundtrip () =
  let nl = netlist () in
  let text = Circuit.Placement_io.print nl in
  let placements = Circuit.Placement_io.parse text in
  Alcotest.(check int) "one entry per gate" (Circuit.Netlist.num_gates nl)
    (List.length placements);
  let nl2 = Circuit.Placement_io.apply nl placements in
  Array.iter
    (fun (g : Circuit.Netlist.gate) ->
      let g2 = Circuit.Netlist.gate nl2 g.id in
      check_close ~tol:1e-5 (g.name ^ " x") g.x g2.x;
      check_close ~tol:1e-5 (g.name ^ " y") g.y g2.y)
    (Circuit.Netlist.gates nl)

let test_apply_moves_gates () =
  let nl = netlist () in
  let name0 = (Circuit.Netlist.gate nl 0).Circuit.Netlist.name in
  let nl2 = Circuit.Placement_io.apply nl [ (name0, (0.9, 0.1)) ] in
  let g0 = Circuit.Netlist.gate nl2 0 in
  check_close "moved x" 0.9 g0.x;
  check_close "moved y" 0.1 g0.y;
  (* other gates untouched *)
  let g1 = Circuit.Netlist.gate nl 1 and g1' = Circuit.Netlist.gate nl2 1 in
  check_close "others x" g1.x g1'.x

let test_placement_changes_spatial_model () =
  (* moving every gate into one corner collapses the covered regions *)
  let nl = netlist () in
  let everywhere =
    Array.to_list (Circuit.Netlist.gates nl)
    |> List.map (fun (g : Circuit.Netlist.gate) -> (g.name, (0.01, 0.01)))
  in
  let nl2 = Circuit.Placement_io.apply nl everywhere in
  let model = Timing.Variation.make_model ~levels:3 () in
  let pool_of n =
    let dm = Timing.Delay_model.build n model in
    let t = Timing.Delay_model.nominal_critical_delay dm in
    let r = Timing.Path_extract.extract dm ~t_cons:t ~yield_threshold:0.999 in
    Timing.Paths.build dm r.Timing.Path_extract.paths
  in
  let spread = Timing.Paths.covered_regions (pool_of nl) in
  let cornered = Timing.Paths.covered_regions (pool_of nl2) in
  Alcotest.(check bool)
    (Printf.sprintf "cornered %d < spread %d regions" cornered spread)
    true (cornered < spread);
  (* one cell per level when everything sits in one corner *)
  Alcotest.(check int) "3 regions when colocated" 3 cornered

let test_parse_errors () =
  Alcotest.(check bool) "off-die rejected" true
    (match Circuit.Placement_io.parse "g0 1.5 0.2\n" with
     | (_ : (string * (float * float)) list) -> false
     | exception Circuit.Placement_io.Parse_error (1, _) -> true);
  Alcotest.(check bool) "malformed rejected" true
    (match Circuit.Placement_io.parse "g0 abc 0.2\n" with
     | (_ : (string * (float * float)) list) -> false
     | exception Circuit.Placement_io.Parse_error _ -> true);
  Alcotest.(check bool) "comment-only ok" true
    (Circuit.Placement_io.parse "# nothing\n\n" = [])

let test_apply_unknown_gate () =
  let nl = netlist () in
  Alcotest.(check bool) "unknown gate" true
    (match Circuit.Placement_io.apply nl [ ("ghost", (0.5, 0.5)) ] with
     | (_ : Circuit.Netlist.t) -> false
     | exception Invalid_argument _ -> true)

let unit_tests =
  [
    ("placement: roundtrip", test_roundtrip);
    ("placement: apply moves gates", test_apply_moves_gates);
    ("placement: drives the spatial model", test_placement_changes_spatial_model);
    ("placement: parse errors", test_parse_errors);
    ("placement: unknown gate", test_apply_unknown_gate);
  ]

let suites =
  [
    ( "placement",
      List.map (fun (name, f) -> Alcotest.test_case name `Quick f) unit_tests );
  ]
