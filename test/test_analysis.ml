(* Fixture corpus for the whole-program typedtree analyzer
   (tools/lint's [Analysis]). Every fixture is typechecked in-process
   via [Analysis.analyze_sources], so the corpus needs no files on
   disk and no separate compiler invocation; the [path] of each
   snippet is what lands it inside (or deliberately outside) the
   analyzer's directory scopes. Per rule family the corpus holds a
   true positive, a true negative, a line-scoped suppression, and —
   the reason the analyzer exists — an interprocedural case the
   syntactic linter provably misses. *)

let fired rule diags = List.exists (fun d -> d.Lint.rule = rule) diags

let show diags = String.concat "; " (List.map Lint.render_text diags)

let contains hay needle =
  let hl = String.length hay and nl = String.length needle in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

(* Entry points live in Fix_-prefixed modules so the in-process
   typechecker can never confuse a fixture with a real library. *)
let cfg =
  {
    Analysis.default_config with
    monitor_entries = [ "Fix_mon.tick" ];
    serving_entries = [ "Fix_srv.handle" ];
    handler_entries = [ "Fix_srv.handle" ];
    io_wrapper_modules = [ "Fix_io" ];
    summary_cache = None;
  }

let analyze mods = Analysis.analyze_sources ~config:cfg mods

let check_fires rule mods () =
  let diags = analyze mods in
  if not (fired rule diags) then
    Alcotest.failf "expected %s to fire; got [%s]" rule (show diags)

let check_silent rule mods () =
  let diags = analyze mods in
  if fired rule diags then
    Alcotest.failf "expected %s to stay silent; got [%s]" rule (show diags)

(* ------------------------------------------------------------------ *)
(* Blocking reachability: monitor side *)

let mon_locks_directly = "let m = Mutex.create ()\nlet tick () = Mutex.lock m"

let helper_locks =
  "let m = Mutex.create ()\n\
   let guarded f = Mutex.lock m; let r = f () in Mutex.unlock m; r"

(* no blocking token appears in this module's own text *)
let mon_via_helper =
  "let state = ref 0\nlet tick () = Fix_helper.guarded (fun () -> incr state)"

let mon_lockfree =
  "let state = Atomic.make 0\nlet tick () = Atomic.set state (Atomic.get state + 1)"

let helper_locks_suppressed =
  "let m = Mutex.create ()\n\
   (* bounded handshake, never shared with serving: fixture justification *)\n\
   (* lint: allow-next monitor-blocking *)\n\
   let guarded f = Mutex.lock m; let r = f () in Mutex.unlock m; r"

(* The acceptance fixture: a helper module takes a lock, monitor code
   only calls the helper. The old syntactic [no-blocking-in-monitor]
   sees no blocking token in the monitor file and stays silent; the
   interprocedural analysis follows the call edge and anchors the
   diagnostic at the lock site with the full chain. *)
let test_cross_module_lock_beats_syntactic () =
  let syntactic = Lint.lint_source ~path:"lib/serve/monitor.ml" mon_via_helper in
  if fired "no-blocking-in-monitor" syntactic then
    Alcotest.fail "syntactic rule unexpectedly caught the cross-module lock";
  let diags =
    analyze
      [
        ("Fix_helper", "lib/serve/fix_helper.ml", helper_locks);
        ("Fix_mon", "lib/serve/fix_mon.ml", mon_via_helper);
      ]
  in
  match List.filter (fun d -> d.Lint.rule = "monitor-blocking") diags with
  | [] -> Alcotest.failf "analyzer missed the cross-module lock; got [%s]" (show diags)
  | d :: _ ->
    Alcotest.(check string) "anchored at the lock site" "lib/serve/fix_helper.ml"
      d.Lint.file;
    Alcotest.(check bool) "chain names the entry point" true
      (contains d.Lint.message "Fix_mon.tick -> Fix_helper.guarded")

(* ------------------------------------------------------------------ *)
(* Blocking reachability: deadline-scoped handlers *)

let util_naps = "let nap () = Unix.sleepf 0.001"
let srv_calls_nap = "let handle () = Fix_util.nap ()"

let util_naps_suppressed =
  "(* lint: allow-next handler-blocking *)\nlet nap () = Unix.sleepf 0.001"

let io_wrapper = "let recv () = Unix.sleepf 0.0005"
let srv_via_io = "let handle () = Fix_io.recv ()"

(* ------------------------------------------------------------------ *)
(* Shared-mutable race discipline *)

let race_state =
  "type t = { mutable cur : int }\n\
   let cell = { cur = 0 }\n\
   let bump () = cell.cur <- cell.cur + 1\n\
   let read () = cell.cur"

let race_state_suppressed =
  "type t = { mutable cur : int }\n\
   let cell = { cur = 0 }\n\
   (* guarded by an external mutex in this fixture's story *)\n\
   (* lint: allow-next shared-mutable-race *)\n\
   let bump () = cell.cur <- cell.cur + 1\n\
   let read () = cell.cur"

let ref_state = "let hits = ref 0\nlet bump () = incr hits\nlet read () = !hits"

let atomic_state =
  "let cell = Atomic.make 0\n\
   let bump () = Atomic.incr cell\n\
   let read () = Atomic.get cell"

let mon_bumps = "let tick () = Fix_state.bump ()"
let srv_reads = "let handle () = Fix_state.read ()"

let race_trio state_src state_path =
  [
    ("Fix_state", state_path, state_src);
    ("Fix_mon", "lib/serve/fix_mon.ml", mon_bumps);
    ("Fix_srv", "lib/serve/fix_srv.ml", srv_reads);
  ]

let test_race_names_both_sides () =
  let diags = analyze (race_trio race_state "lib/serve/fix_state.ml") in
  match List.filter (fun d -> d.Lint.rule = "shared-mutable-race") diags with
  | [] -> Alcotest.failf "expected a race diagnostic; got [%s]" (show diags)
  | d :: _ ->
    Alcotest.(check string) "anchored at the monitor-side write"
      "lib/serve/fix_state.ml" d.Lint.file;
    Alcotest.(check bool) "names the location key" true
      (contains d.Lint.message "Fix_state.t.cur");
    Alcotest.(check bool) "names the monitor chain" true
      (contains d.Lint.message "Fix_mon.tick -> Fix_state.bump");
    Alcotest.(check bool) "names the serving chain" true
      (contains d.Lint.message "Fix_srv.handle -> Fix_state.read")

(* ------------------------------------------------------------------ *)
(* fd-leak tracking *)

let fd_path = "lib/store/fix_fd.ml"

let fd_leak_plain =
  "let probe path =\n\
  \  let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in\n\
  \  Unix.isatty fd"

let fd_leak_exn =
  "let probe path =\n\
  \  let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in\n\
  \  let _pos = Unix.lseek fd 4 Unix.SEEK_SET in\n\
  \  Unix.close fd"

let fd_closed =
  "let probe path =\n\
  \  let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in\n\
  \  Unix.close fd"

let fd_protected =
  "let probe path =\n\
  \  let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in\n\
  \  Fun.protect ~finally:(fun () -> Unix.close fd)\n\
  \    (fun () -> let _pos = Unix.lseek fd 4 Unix.SEEK_SET in ())"

let fd_transferred =
  "let q : Unix.file_descr Queue.t = Queue.create ()\n\
   let probe path =\n\
  \  let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in\n\
  \  Queue.add fd q"

(* [open_ro] hands its descriptor to the caller (clean); [probe] then
   leaks it — only the second round, with [open_ro] in the derived
   creator set, can see that *)
let fd_wrapper =
  "let open_ro path = let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in fd\n\
   let probe path =\n\
  \  let fd = open_ro path in\n\
  \  Unix.isatty fd"

let fd_closer_wrapper =
  "let shut fd = Unix.close fd\n\
   let probe path =\n\
  \  let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in\n\
  \  shut fd"

let fd_leak_suppressed =
  "let probe path =\n\
  \  (* descriptor deliberately parked for the process lifetime *)\n\
  \  (* lint: allow-next fd-leak *)\n\
  \  let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in\n\
  \  Unix.isatty fd"

let test_fd_wrapper_composes () =
  let diags = analyze [ ("Fix_fd", fd_path, fd_wrapper) ] in
  match List.filter (fun d -> d.Lint.rule = "fd-leak") diags with
  | [] -> Alcotest.failf "expected the wrapper's caller to leak; got [%s]" (show diags)
  | [ d ] ->
    Alcotest.(check bool) "blames the wrapper as creator" true
      (contains d.Lint.message "Fix_fd.open_ro");
    Alcotest.(check bool) "flags the caller, not the wrapper" true
      (contains d.Lint.message "Fix_fd.probe")
  | ds -> Alcotest.failf "expected exactly one leak, got %d: [%s]" (List.length ds) (show ds)

let test_fd_exception_edge_message () =
  let diags = analyze [ ("Fix_fd", fd_path, fd_leak_exn) ] in
  match List.filter (fun d -> d.Lint.rule = "fd-leak") diags with
  | [ d ] ->
    Alcotest.(check bool) "names the raising call" true
      (contains d.Lint.message "leaks if Unix.lseek raises")
  | ds -> Alcotest.failf "expected exactly one leak, got %d: [%s]" (List.length ds) (show ds)

(* ------------------------------------------------------------------ *)
(* WAL/checkpoint descriptors: the journal's segment fds live in
   lib/store and get the same leak tracking as every other descriptor *)

let wal_fd_path = "lib/store/fix_wal.ml"

let wal_fd_leak =
  "let open_segment dir =\n\
  \  let fd =\n\
  \    Unix.openfile (Filename.concat dir \"wal-1.log\") [ Unix.O_WRONLY ] 0o644\n\
  \  in\n\
  \  let _off = Unix.lseek fd 0 Unix.SEEK_END in\n\
  \  Unix.close fd"

(* the rotate/checkpoint idiom: fsync under Fun.protect close *)
let wal_fd_rotated =
  "let seal dir =\n\
  \  let fd =\n\
  \    Unix.openfile (Filename.concat dir \"wal-1.log\") [ Unix.O_WRONLY ] 0o644\n\
  \  in\n\
  \  Fun.protect ~finally:(fun () -> Unix.close fd)\n\
  \    (fun () -> Unix.fsync fd)"

(* ------------------------------------------------------------------ *)
(* boot_fns: recovery code runs single-threaded (before workers and
   monitor exist), so a write reachable from a serving entry ONLY
   through a declared boot function is not a cross-thread race *)

let boot_replays = "let replay () = Fix_state.read ()"
let srv_boots = "let handle () = Fix_boot.replay ()"

let boot_quad =
  [
    ("Fix_state", "lib/serve/fix_state.ml", race_state);
    ("Fix_boot", "lib/serve/fix_boot.ml", boot_replays);
    ("Fix_mon", "lib/serve/fix_mon.ml", mon_bumps);
    ("Fix_srv", "lib/serve/fix_srv.ml", srv_boots);
  ]

let test_boot_cut () =
  (* undeclared, the recovery chain looks like a serving-side read
     racing the monitor's write *)
  let diags = analyze boot_quad in
  if not (fired "shared-mutable-race" diags) then
    Alcotest.failf "expected the undeclared boot chain to race; got [%s]"
      (show diags);
  (* declared boot-only, the chain is cut and the race disappears *)
  let diags =
    Analysis.analyze_sources
      ~config:{ cfg with Analysis.boot_fns = [ "Fix_boot.replay" ] }
      boot_quad
  in
  if fired "shared-mutable-race" diags then
    Alcotest.failf "boot_fns failed to cut the recovery chain; got [%s]"
      (show diags)

(* a boot function that is itself an entry stays analyzed on its own
   side: cutting must not blind the analyzer to the entry's body *)
let test_boot_fn_entry_still_seeded () =
  let diags =
    Analysis.analyze_sources
      ~config:
        { cfg with
          Analysis.serving_entries = [ "Fix_boot.replay" ];
          handler_entries = [];
          boot_fns = [ "Fix_boot.replay" ] }
      [
        ("Fix_state", "lib/serve/fix_state.ml", race_state);
        ("Fix_boot", "lib/serve/fix_boot.ml", boot_replays);
        ("Fix_mon", "lib/serve/fix_mon.ml", mon_bumps);
      ]
  in
  if not (fired "shared-mutable-race" diags) then
    Alcotest.failf "entry listed in boot_fns lost its own seeding; got [%s]"
      (show diags)

(* ------------------------------------------------------------------ *)
(* The @smoke invariant, as a test: pathsel-analyze reports zero
   errors on the real tree. dune runs this suite from
   _build/default/test, where the built tree sits one level up (cmts
   in lib/<l>/.<l>.objs/, sources copied alongside); a repo-root run
   finds the same tree under _build/default. Anywhere else — e.g. an
   installed-package run — skip. *)

let test_repo_tree_clean () =
  let root =
    if Sys.file_exists "../lib" && Sys.file_exists "../tools" then Some ".."
    else if Sys.file_exists "lib" && Sys.file_exists "_build/default/lib" then Some "."
    else None
  in
  match root with
  | None -> ()
  | Some root ->
    let cwd = Sys.getcwd () in
    Fun.protect
      ~finally:(fun () -> Sys.chdir cwd)
      (fun () ->
        Sys.chdir root;
        let cmt_root =
          if Sys.file_exists "_build/default/lib" then "_build/default/lib" else "lib"
        in
        let cmts = Analysis.find_cmts cmt_root in
        if cmts <> [] then begin
          let config = { Analysis.default_config with summary_cache = None } in
          let errs =
            List.filter
              (fun d -> d.Lint.severity = Lint.Error)
              (Analysis.analyze_cmts ~config cmts)
          in
          if errs <> [] then
            Alcotest.failf "repository tree has analyzer errors:\n%s"
              (String.concat "\n" (List.map Lint.render_text errs))
        end)

(* ------------------------------------------------------------------ *)

let corpus =
  [
    (* monitor blocking *)
    ( "monitor-blocking fires on a direct lock",
      check_fires "monitor-blocking"
        [ ("Fix_mon", "lib/serve/fix_mon.ml", mon_locks_directly) ] );
    ( "monitor-blocking silent on lock-free Atomic code",
      check_silent "monitor-blocking"
        [ ("Fix_mon", "lib/serve/fix_mon.ml", mon_lockfree) ] );
    ( "monitor-blocking honors allow-next at the lock site",
      check_silent "monitor-blocking"
        [
          ("Fix_helper", "lib/serve/fix_helper.ml", helper_locks_suppressed);
          ("Fix_mon", "lib/serve/fix_mon.ml", mon_via_helper);
        ] );
    ( "cross-module lock: analyzer fires where the syntactic rule is silent",
      test_cross_module_lock_beats_syntactic );
    (* handler blocking *)
    ( "handler-blocking fires through a helper module",
      check_fires "handler-blocking"
        [
          ("Fix_util", "lib/serve/fix_util.ml", util_naps);
          ("Fix_srv", "lib/serve/fix_srv.ml", srv_calls_nap);
        ] );
    ( "handler-blocking exempts the Io wrapper module",
      check_silent "handler-blocking"
        [
          ("Fix_io", "lib/serve/fix_io.ml", io_wrapper);
          ("Fix_srv", "lib/serve/fix_srv.ml", srv_via_io);
        ] );
    ( "handler-blocking honors allow-next at the syscall site",
      check_silent "handler-blocking"
        [
          ("Fix_util", "lib/serve/fix_util.ml", util_naps_suppressed);
          ("Fix_srv", "lib/serve/fix_srv.ml", srv_calls_nap);
        ] );
    (* shared-mutable races *)
    ( "race fires on a mutable field used from both threads",
      check_fires "shared-mutable-race" (race_trio race_state "lib/serve/fix_state.ml")
    );
    ( "race fires on a ref cell used from both threads",
      check_fires "shared-mutable-race" (race_trio ref_state "lib/serve/fix_state.ml") );
    ( "race silent when the cell is an Atomic.t",
      check_silent "shared-mutable-race"
        (race_trio atomic_state "lib/serve/fix_state.ml") );
    ( "race silent when the state lives outside the scoped dirs",
      check_silent "shared-mutable-race"
        (race_trio race_state "lib/timing/fix_state.ml") );
    ( "race honors allow-next at the monitor-side write",
      check_silent "shared-mutable-race"
        (race_trio race_state_suppressed "lib/serve/fix_state.ml") );
    ("race diagnostic names key and both chains", test_race_names_both_sides);
    (* fd leaks *)
    ( "fd-leak fires when no path closes",
      check_fires "fd-leak" [ ("Fix_fd", fd_path, fd_leak_plain) ] );
    ( "fd-leak fires on an unprotected exception edge",
      check_fires "fd-leak" [ ("Fix_fd", fd_path, fd_leak_exn) ] );
    ("fd-leak exception-edge message", test_fd_exception_edge_message);
    ( "fd-leak silent on straight-line close",
      check_silent "fd-leak" [ ("Fix_fd", fd_path, fd_closed) ] );
    ( "fd-leak silent under Fun.protect ~finally",
      check_silent "fd-leak" [ ("Fix_fd", fd_path, fd_protected) ] );
    ( "fd-leak silent on ownership transfer",
      check_silent "fd-leak" [ ("Fix_fd", fd_path, fd_transferred) ] );
    ("fd-leak composes through a same-module wrapper", test_fd_wrapper_composes);
    ( "fd-leak silent when a local wrapper closes",
      check_silent "fd-leak" [ ("Fix_fd", fd_path, fd_closer_wrapper) ] );
    ( "fd-leak honors allow-next at the creation site",
      check_silent "fd-leak" [ ("Fix_fd", fd_path, fd_leak_suppressed) ] );
    ( "fd-leak silent outside the scoped dirs",
      check_silent "fd-leak" [ ("Fix_fd", "lib/timing/fix_fd.ml", fd_leak_plain) ] );
    (* WAL/checkpoint descriptors *)
    ( "fd-leak tracks a WAL segment descriptor",
      check_fires "fd-leak" [ ("Fix_wal", wal_fd_path, wal_fd_leak) ] );
    ( "fd-leak silent on the seal/rotate idiom",
      check_silent "fd-leak" [ ("Fix_wal", wal_fd_path, wal_fd_rotated) ] );
    (* boot-phase cuts *)
    ("boot_fns cuts the recovery chain out of the race", test_boot_cut);
    ( "a boot function listed as an entry is still seeded",
      test_boot_fn_entry_still_seeded );
    (* the acceptance invariant *)
    ("repo tree is analyzer-clean", test_repo_tree_clean);
  ]

let suites =
  [
    ( "analysis",
      List.map (fun (name, f) -> Alcotest.test_case name `Quick f) corpus );
  ]
