(* Tests for the incremental refit (Core.Refit): the load-bearing
   property is that the rank-1-maintained coefficients match a cold
   batch refactorization of the same moments — including streams with
   faulty (non-finite) dies, which must be skipped without poisoning
   the moments — plus exact-model recovery, resync bookkeeping, and
   input validation. *)

open Linalg

let mats_close ?(tol = 1e-8) name a b =
  let ra, ca = Mat.dims a and rb, cb = Mat.dims b in
  if ra <> rb || ca <> cb then
    Alcotest.failf "%s: dims (%d,%d) vs (%d,%d)" name ra ca rb cb;
  let scale = ref 1.0 in
  for i = 0 to ra - 1 do
    for j = 0 to ca - 1 do
      scale := Float.max !scale (Float.abs (Mat.get b i j))
    done
  done;
  for i = 0 to ra - 1 do
    for j = 0 to ca - 1 do
      let d = Float.abs (Mat.get a i j -. Mat.get b i j) in
      if d /. !scale > tol then
        Alcotest.failf "%s: (%d,%d) differs: %.17g vs %.17g (rel %.3g)" name i
          j (Mat.get a i j) (Mat.get b i j) (d /. !scale)
    done
  done

(* stream [n] random dies through [t]; every [faulty_every]-th die (when
   positive) carries a NaN and must be skipped *)
let feed_stream rng t ~n ~faulty_every =
  let r = Core.Refit.r t and m = Core.Refit.m t in
  for i = 1 to n do
    let measured = Array.init r (fun _ -> 10.0 +. (5.0 *. Rng.gaussian rng)) in
    let truth = Array.init m (fun _ -> 20.0 +. (8.0 *. Rng.gaussian rng)) in
    if faulty_every > 0 && i mod faulty_every = 0 then
      measured.(Rng.int rng r) <- Float.nan;
    ignore (Core.Refit.observe t ~measured ~truth)
  done

let prop_incremental_matches_batch =
  QCheck.Test.make ~count:40 ~name:"incremental coefficients match batch refit"
    QCheck.(triple (int_range 1 6) (int_range 1 5) (int_range 0 10_000))
    (fun (r, m, seed) ->
      let rng = Rng.create seed in
      let n = 5 + Rng.int rng 60 in
      (* resync disabled: the property must hold on the pure rank-1
         path, not because a resync just cleaned the factor *)
      let t = Core.Refit.create ~resync_every:0 ~r ~m () in
      feed_stream rng t ~n ~faulty_every:7;
      mats_close ~tol:1e-7 "incremental vs batch"
        (Core.Refit.coefficients t)
        (Core.Refit.batch_coefficients t);
      Core.Refit.count t + Core.Refit.skipped t = n
      && Core.Refit.skipped t = n / 7
      && Core.Refit.drift t < 1e-10)

let test_recovers_linear_model () =
  (* exactly linear data: y = 3 + 2 x1 - x2 per output; with a
     negligible ridge the regression must recover the coefficients and
     reproduce the training outputs *)
  let rng = Rng.create 42 in
  let t = Core.Refit.create ~ridge:1e-9 ~r:2 ~m:2 () in
  let dies =
    Array.init 30 (fun _ ->
        let x1 = Rng.gaussian rng and x2 = Rng.gaussian rng in
        ([| x1; x2 |], [| 3.0 +. (2.0 *. x1) -. x2; 1.0 -. x1 |]))
  in
  Array.iter
    (fun (measured, truth) ->
      Alcotest.(check bool) "accepted" true
        (Core.Refit.observe t ~measured ~truth))
    dies;
  let b = Core.Refit.coefficients t in
  let expect =
    Mat.of_arrays [| [| 3.0; 1.0 |]; [| 2.0; -1.0 |]; [| -1.0; 0.0 |] |]
  in
  mats_close ~tol:1e-6 "recovered coefficients" b expect;
  let measured = Mat.of_arrays (Array.map fst dies) in
  let pred = Core.Refit.predict ~coefficients:b ~measured in
  let truth = Mat.of_arrays (Array.map snd dies) in
  mats_close ~tol:1e-6 "in-sample predictions" pred truth

let test_faulty_die_skipped () =
  let t = Core.Refit.create ~r:2 ~m:1 () in
  Alcotest.(check bool) "clean accepted" true
    (Core.Refit.observe t ~measured:[| 1.0; 2.0 |] ~truth:[| 3.0 |]);
  let before = Core.Refit.coefficients t in
  Alcotest.(check bool) "nan measured rejected" false
    (Core.Refit.observe t ~measured:[| Float.nan; 2.0 |] ~truth:[| 3.0 |]);
  Alcotest.(check bool) "inf truth rejected" false
    (Core.Refit.observe t ~measured:[| 1.0; 2.0 |] ~truth:[| Float.infinity |]);
  Alcotest.(check int) "count" 1 (Core.Refit.count t);
  Alcotest.(check int) "skipped" 2 (Core.Refit.skipped t);
  mats_close "moments untouched by faulty dies" (Core.Refit.coefficients t)
    before

let test_shape_mismatch_raises () =
  let t = Core.Refit.create ~r:2 ~m:1 () in
  let rejects name f =
    match f () with
    | (_ : bool) -> Alcotest.failf "%s: expected Invalid_argument" name
    | exception Invalid_argument _ -> ()
  in
  rejects "short measured" (fun () ->
      Core.Refit.observe t ~measured:[| 1.0 |] ~truth:[| 1.0 |]);
  rejects "long truth" (fun () ->
      Core.Refit.observe t ~measured:[| 1.0; 2.0 |] ~truth:[| 1.0; 2.0 |]);
  match Core.Refit.create ~ridge:0.0 ~r:2 ~m:1 () with
  | (_ : Core.Refit.t) -> Alcotest.fail "zero ridge must be rejected"
  | exception Invalid_argument _ -> ()

let test_resync_bookkeeping () =
  let rng = Rng.create 7 in
  let t = Core.Refit.create ~resync_every:4 ~r:3 ~m:2 () in
  feed_stream rng t ~n:10 ~faulty_every:0;
  Alcotest.(check int) "automatic resyncs at the period" 2
    (Core.Refit.resyncs t);
  Core.Refit.resync t;
  Alcotest.(check int) "explicit resync counted" 3 (Core.Refit.resyncs t);
  Alcotest.(check bool) "factor exact after resync" true
    (Core.Refit.drift t < 1e-12);
  mats_close "resync preserves the solution"
    (Core.Refit.coefficients t)
    (Core.Refit.batch_coefficients t)

let test_empty_state () =
  let t = Core.Refit.create ~r:2 ~m:3 () in
  let b = Core.Refit.coefficients t in
  Alcotest.(check (pair int int)) "dims" (3, 3) (Mat.dims b);
  for i = 0 to 2 do
    for j = 0 to 2 do
      Alcotest.(check bool) "all zero before any die" true
        (Float.abs (Mat.get b i j) < 1e-300)
    done
  done

let suites =
  [
    ( "refit",
      List.map (fun (name, f) -> Alcotest.test_case name `Quick f)
        [
          ("recovers an exact linear model", test_recovers_linear_model);
          ("faulty dies are skipped, moments stay clean", test_faulty_die_skipped);
          ("shape and config validation", test_shape_mismatch_raises);
          ("resync bookkeeping and exactness", test_resync_bookkeeping);
          ("empty state is well-defined", test_empty_state);
        ]
      @ List.map
          (fun t -> QCheck_alcotest.to_alcotest t)
          [ prop_incremental_matches_batch ]
    );
  ]
