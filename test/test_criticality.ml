(* Tests for statistical gate criticality. *)

let dm () =
  let nl =
    Circuit.Generator.generate
      { Circuit.Generator.default with num_gates = 130; seed = 91 }
  in
  Timing.Delay_model.build nl (Timing.Variation.make_model ~levels:3 ())

let test_probabilities_in_range () =
  let d = dm () in
  let c = Timing.Criticality.compute d ~rng:(Rng.create 1) ~samples:300 in
  Array.iter
    (fun p -> if p < 0.0 || p > 1.0 then Alcotest.failf "probability %g out of range" p)
    c.probability

let test_nominal_path_is_highly_critical () =
  (* the gates of the nominal critical path must carry substantial
     statistical criticality mass *)
  let d = dm () in
  let c = Timing.Criticality.compute d ~rng:(Rng.create 2) ~samples:400 in
  let nominal = Timing.Criticality.nominal_critical_gates d in
  Alcotest.(check bool) "nominal path nonempty" true (Array.length nominal > 0);
  let avg =
    Array.fold_left (fun acc g -> acc +. c.probability.(g)) 0.0 nominal
    /. float_of_int (Array.length nominal)
  in
  Alcotest.(check bool)
    (Printf.sprintf "nominal path avg criticality %.3f" avg)
    true (avg > 0.2)

let test_nominal_path_is_a_path () =
  (* consecutive nominal-critical gates must be connected *)
  let d = dm () in
  let nl = Timing.Delay_model.netlist d in
  let gates = Timing.Criticality.nominal_critical_gates d in
  (* arrival-ordered: each gate after the first has the previous one in
     its transitive fanin via direct connection *)
  for k = 1 to Array.length gates - 1 do
    let g = Circuit.Netlist.gate nl gates.(k) in
    let prev_code = Circuit.Netlist.encode_signal nl (Circuit.Netlist.Gate_out gates.(k - 1)) in
    if not (Array.exists (fun c -> c = prev_code) g.fanin) then
      Alcotest.failf "gates %d -> %d not connected" gates.(k - 1) gates.(k)
  done

let test_mean_length_sane () =
  let d = dm () in
  let nl = Timing.Delay_model.netlist d in
  let c = Timing.Criticality.compute d ~rng:(Rng.create 3) ~samples:200 in
  Alcotest.(check bool) "length positive" true (c.mean_critical_length >= 1.0);
  Alcotest.(check bool) "length bounded by depth" true
    (c.mean_critical_length <= float_of_int (Circuit.Netlist.depth nl) +. 1e-9)

let test_criticality_mass_conservation () =
  (* summed criticality = mean critical length (each die contributes
     its path's gates exactly once) *)
  let d = dm () in
  let c = Timing.Criticality.compute d ~rng:(Rng.create 4) ~samples:250 in
  let total = Array.fold_left ( +. ) 0.0 c.probability in
  if Float.abs (total -. c.mean_critical_length) > 1e-9 then
    Alcotest.failf "mass %.4f vs mean length %.4f" total c.mean_critical_length

let test_ranking_sorted () =
  let d = dm () in
  let c = Timing.Criticality.compute d ~rng:(Rng.create 5) ~samples:150 in
  let r = Timing.Criticality.ranking c in
  for k = 1 to Array.length r - 1 do
    if c.probability.(r.(k)) > c.probability.(r.(k - 1)) +. 1e-12 then
      Alcotest.fail "ranking not sorted"
  done

let test_validation () =
  let d = dm () in
  Alcotest.(check bool) "0 samples rejected" true
    (match Timing.Criticality.compute d ~rng:(Rng.create 1) ~samples:0 with
     | (_ : Timing.Criticality.t) -> false
     | exception Invalid_argument _ -> true)

let unit_tests =
  [
    ("criticality: probabilities in [0,1]", test_probabilities_in_range);
    ("criticality: nominal path is critical", test_nominal_path_is_highly_critical);
    ("criticality: nominal gates form a path", test_nominal_path_is_a_path);
    ("criticality: mean length sane", test_mean_length_sane);
    ("criticality: mass conservation", test_criticality_mass_conservation);
    ("criticality: ranking sorted", test_ranking_sorted);
    ("criticality: validation", test_validation);
  ]

let suites =
  [
    ( "criticality",
      List.map (fun (name, f) -> Alcotest.test_case name `Quick f) unit_tests );
  ]
