(* Tests for the convex-optimization substrate. *)

let check_close ?(tol = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > tol then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

(* ------------------------------------------------------------------ *)
(* Prox *)

let test_l1_projection_inside () =
  let v = [| 0.2; -0.1; 0.05 |] in
  let p = Convexopt.Prox.project_l1_ball v 1.0 in
  Alcotest.(check bool) "unchanged inside ball" true (Linalg.Vec.equal v p)

let test_l1_projection_norm () =
  let v = [| 3.0; -2.0; 1.0; 0.5 |] in
  let p = Convexopt.Prox.project_l1_ball v 1.0 in
  check_close ~tol:1e-9 "on the sphere" 1.0 (Linalg.Vec.norm1 p)

let test_l1_projection_is_projection () =
  (* p must be the closest point: moving toward any feasible q cannot
     get closer to v *)
  let v = [| 2.0; -1.5; 0.7; -0.1 |] in
  let r = 1.2 in
  let p = Convexopt.Prox.project_l1_ball v r in
  let d0 = Linalg.Vec.dist2 v p in
  let candidates =
    [ [| r; 0.; 0.; 0. |]; [| 0.; -.r; 0.; 0. |]; [| 0.6; -0.6; 0.; 0. |];
      [| 0.4; -0.4; 0.3; -0.1 |] ]
  in
  List.iter
    (fun q ->
      if Linalg.Vec.norm1 q <= r +. 1e-12 && Linalg.Vec.dist2 v q < d0 -. 1e-9 then
        Alcotest.fail "found a closer feasible point")
    candidates

let test_l1_projection_signs () =
  let v = [| -5.0; 4.0 |] in
  let p = Convexopt.Prox.project_l1_ball v 1.0 in
  Alcotest.(check bool) "signs preserved" true (p.(0) <= 0.0 && p.(1) >= 0.0)

let test_prox_linf_shrinks_max () =
  let v = [| 3.0; 1.0; -0.5 |] in
  let p = Convexopt.Prox.prox_linf v 1.0 in
  (* prox of the max-norm pulls the largest entries down *)
  Alcotest.(check bool) "max reduced" true (Linalg.Vec.norm_inf p < 3.0);
  Alcotest.(check bool) "small entries nearly intact" true (Float.abs (p.(2) +. 0.5) < 1e-9)

let test_prox_linf_zero_tau () =
  let v = [| 1.0; -2.0 |] in
  let p = Convexopt.Prox.prox_linf v 0.0 in
  Alcotest.(check bool) "identity at tau=0" true (Linalg.Vec.equal v p)

let test_prox_linf_kills_small_vectors () =
  (* for tau >= ||v||_1, the prox of ||.||_inf is 0 *)
  let v = [| 0.3; -0.2 |] in
  let p = Convexopt.Prox.prox_linf v 1.0 in
  check_close ~tol:1e-12 "zeroed" 0.0 (Linalg.Vec.norm_inf p)

let test_prox_linf_optimality () =
  (* p = prox(v) minimizes tau*||u||_inf + 1/2||u-v||^2; check against
     random perturbations *)
  let v = [| 2.0; -1.0; 0.8; 0.1 |] in
  let tau = 0.7 in
  let p = Convexopt.Prox.prox_linf v tau in
  let f u = (tau *. Linalg.Vec.norm_inf u) +. (0.5 *. (Linalg.Vec.dist2 u v ** 2.0)) in
  let fp = f p in
  for k = 0 to 40 do
    let u =
      Array.mapi
        (fun i x -> x +. (0.05 *. sin (float_of_int ((7 * k) + (3 * i)))))
        p
    in
    if f u < fp -. 1e-9 then Alcotest.failf "perturbation %d beats prox" k
  done

let test_soft_threshold () =
  check_close "shrinks" 1.0 (Convexopt.Prox.soft_threshold 1.5 0.5);
  check_close "kills" 0.0 (Convexopt.Prox.soft_threshold 0.3 0.5);
  check_close "negative" (-1.0) (Convexopt.Prox.soft_threshold (-1.5) 0.5)

(* ------------------------------------------------------------------ *)
(* FISTA *)

let test_fista_quadratic () =
  (* min 1/2 || x - c ||^2 with no regularizer: solution is c *)
  let c = Linalg.Mat.of_arrays [| [| 1.0; -2.0 |]; [| 0.5; 3.0 |] |] in
  let report =
    Convexopt.Fista.solve
      {
        Convexopt.Fista.grad_f = (fun x -> Linalg.Mat.sub x c);
        prox_g = (fun v _ -> v);
        objective = (fun x -> 0.5 *. (Linalg.Mat.frobenius (Linalg.Mat.sub x c) ** 2.0));
        lipschitz = 1.0;
      }
      ~init:(Linalg.Mat.create 2 2)
  in
  Alcotest.(check bool) "converged" true report.converged;
  Alcotest.(check bool) "solution = c" true
    (Linalg.Mat.equal ~tol:1e-5 c report.solution)

let test_fista_lasso_sparsity () =
  (* min 1/2||x - c||^2 + lambda ||x||_1 has the soft-threshold solution *)
  let c = Linalg.Mat.of_arrays [| [| 2.0; 0.3; -1.0; 0.05 |] |] in
  let lambda = 0.5 in
  let prox v step =
    Linalg.Mat.map (fun x -> Convexopt.Prox.soft_threshold x (lambda *. step)) v
  in
  let report =
    Convexopt.Fista.solve
      {
        Convexopt.Fista.grad_f = (fun x -> Linalg.Mat.sub x c);
        prox_g = prox;
        objective =
          (fun x ->
            (0.5 *. (Linalg.Mat.frobenius (Linalg.Mat.sub x c) ** 2.0))
            +. (lambda
                *. Array.fold_left (fun a v -> a +. Float.abs v) 0.0
                     (Linalg.Mat.row x 0)));
        lipschitz = 1.0;
      }
      ~init:(Linalg.Mat.create 1 4)
  in
  let x = Linalg.Mat.row report.solution 0 in
  check_close ~tol:1e-5 "x0" 1.5 x.(0);
  check_close ~tol:1e-5 "x1 zeroed" 0.0 x.(1);
  check_close ~tol:1e-5 "x2" (-0.5) x.(2);
  check_close ~tol:1e-5 "x3 zeroed" 0.0 x.(3)

let test_fista_objective_decreases () =
  let c = Linalg.Mat.init 3 5 (fun i j -> sin (float_of_int ((3 * i) + j))) in
  let obj x = 0.5 *. (Linalg.Mat.frobenius (Linalg.Mat.sub x c) ** 2.0) in
  let report =
    Convexopt.Fista.solve
      ~stop:{ Convexopt.Fista.max_iter = 10; rel_tol = 0.0 }
      {
        Convexopt.Fista.grad_f = (fun x -> Linalg.Mat.sub x c);
        prox_g = (fun v _ -> v);
        objective = obj;
        lipschitz = 1.0;
      }
      ~init:(Linalg.Mat.create 3 5)
  in
  Alcotest.(check bool) "objective below start" true
    (report.objective_value < obj (Linalg.Mat.create 3 5))

let test_power_iteration () =
  let m = Linalg.Mat.of_arrays [| [| 4.0; 1.0 |]; [| 1.0; 3.0 |] |] in
  (* eigenvalues (7 +- sqrt 5)/2 -> max ~ 4.618 *)
  check_close ~tol:1e-6 "dominant eigenvalue" ((7.0 +. sqrt 5.0) /. 2.0)
    (Convexopt.Fista.power_iteration_norm m)

(* ------------------------------------------------------------------ *)
(* Group selection *)

(* Synthetic instance with a known sparse answer: 6 segments, but the
   4 rows of g1 only involve segments {0, 2, 5}. *)
let sparse_instance () =
  let n_s = 6 and m = 8 in
  let sigma =
    Linalg.Mat.init n_s m (fun s j ->
        if j = s then 1.0 else 0.2 *. sin (float_of_int ((s * 3) + j)))
  in
  let g1 =
    Linalg.Mat.of_arrays
      [|
        [| 1.; 0.; 0.; 0.; 0.; 0. |];
        [| 0.; 0.; 1.; 0.; 0.; 0. |];
        [| 0.; 0.; 0.; 0.; 0.; 1. |];
        [| 1.; 0.; 1.; 0.; 0.; 0. |];
      |]
  in
  (sigma, g1)

let test_group_select_recovers_support () =
  let sigma, g1 = sparse_instance () in
  let bounds = Array.make 4 0.05 in
  let r = Convexopt.Group_select.select ~sigma ~g1 ~bounds ~kappa:3.0 () in
  Alcotest.(check bool) "feasible" true r.feasible;
  Alcotest.(check (array int)) "support {0,2,5}" [| 0; 2; 5 |] r.support;
  Array.iter
    (fun e -> if e > 0.05 then Alcotest.failf "error %g above bound" e)
    r.row_errors

let test_group_select_loose_bounds_sparser () =
  let sigma, g1 = sparse_instance () in
  let tight = Convexopt.Group_select.select ~sigma ~g1 ~bounds:(Array.make 4 0.01)
      ~kappa:3.0 () in
  let loose = Convexopt.Group_select.select ~sigma ~g1 ~bounds:(Array.make 4 10.0)
      ~kappa:3.0 () in
  Alcotest.(check bool) "loose support not larger" true
    (Array.length loose.support <= Array.length tight.support)

let test_group_select_refit_zero_error_on_full_support () =
  let sigma, g1 = sparse_instance () in
  let support = Array.init 6 (fun i -> i) in
  let b = Convexopt.Group_select.refit ~sigma ~g1 ~support in
  let errors = Convexopt.Group_select.row_errors ~sigma ~g1 ~b ~kappa:3.0 in
  Array.iter (fun e -> if e > 1e-7 then Alcotest.failf "nonzero error %g" e) errors

let test_group_select_validation () =
  let sigma, g1 = sparse_instance () in
  Alcotest.(check bool) "negative bound rejected" true
    (match
       Convexopt.Group_select.select ~sigma ~g1 ~bounds:(Array.make 4 (-1.0)) ~kappa:3.0 ()
     with
     | (_ : Convexopt.Group_select.result) -> false
     | exception Invalid_argument _ -> true);
  Alcotest.(check bool) "bad kappa rejected" true
    (match
       Convexopt.Group_select.select ~sigma ~g1 ~bounds:(Array.make 4 1.0) ~kappa:0.0 ()
     with
     | (_ : Convexopt.Group_select.result) -> false
     | exception Invalid_argument _ -> true)

let prop_l1_projection_feasible =
  QCheck.Test.make ~count:100 ~name:"l1 projection lands in the ball"
    QCheck.(pair (array_of_size (QCheck.Gen.int_range 1 12) (float_range (-5.) 5.))
              (float_range 0.1 3.0))
    (fun (v, r) ->
      let p = Convexopt.Prox.project_l1_ball v r in
      Linalg.Vec.norm1 p <= r +. 1e-9)

let prop_prox_linf_nonexpansive =
  QCheck.Test.make ~count:60 ~name:"prox_linf is non-expansive"
    QCheck.(pair (array_of_size (QCheck.Gen.return 6) (float_range (-3.) 3.))
              (array_of_size (QCheck.Gen.return 6) (float_range (-3.) 3.)))
    (fun (u, v) ->
      let pu = Convexopt.Prox.prox_linf u 0.8 in
      let pv = Convexopt.Prox.prox_linf v 0.8 in
      Linalg.Vec.dist2 pu pv <= Linalg.Vec.dist2 u v +. 1e-9)

let unit_tests =
  [
    ("prox: l1 projection inside ball", test_l1_projection_inside);
    ("prox: l1 projection onto sphere", test_l1_projection_norm);
    ("prox: l1 projection optimality", test_l1_projection_is_projection);
    ("prox: l1 projection sign safety", test_l1_projection_signs);
    ("prox: linf shrinks the max", test_prox_linf_shrinks_max);
    ("prox: linf identity at tau=0", test_prox_linf_zero_tau);
    ("prox: linf kills small vectors", test_prox_linf_kills_small_vectors);
    ("prox: linf optimality", test_prox_linf_optimality);
    ("prox: soft threshold", test_soft_threshold);
    ("fista: unconstrained quadratic", test_fista_quadratic);
    ("fista: lasso soft-threshold solution", test_fista_lasso_sparsity);
    ("fista: objective decreases", test_fista_objective_decreases);
    ("fista: power iteration", test_power_iteration);
    ("group: recovers true support", test_group_select_recovers_support);
    ("group: looser bounds not denser", test_group_select_loose_bounds_sparser);
    ("group: full-support refit is exact", test_group_select_refit_zero_error_on_full_support);
    ("group: input validation", test_group_select_validation);
  ]

let property_tests =
  List.map (fun t -> QCheck_alcotest.to_alcotest t)
    [ prop_l1_projection_feasible; prop_prox_linf_nonexpansive ]

let suites =
  [
    ( "convexopt",
      List.map (fun (name, f) -> Alcotest.test_case name `Quick f) unit_tests
      @ property_tests );
  ]
