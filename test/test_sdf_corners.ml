(* Tests for the SDF writer/reader and the multi-corner selection. *)

let check_close ?(tol = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > tol then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

let netlist () =
  Circuit.Generator.generate { Circuit.Generator.default with num_gates = 60; seed = 33 }

(* ------------------------------------------------------------------ *)
(* SDF *)

let test_sdf_roundtrip () =
  let nl = netlist () in
  let delays =
    Array.init (Circuit.Netlist.num_gates nl) (fun g -> 10.0 +. (0.25 *. float_of_int g))
  in
  let text = Timing.Sdf.write nl ~delays in
  let parsed = Timing.Sdf.read text in
  Alcotest.(check int) "one entry per gate" (Circuit.Netlist.num_gates nl)
    (List.length parsed);
  let back = Timing.Sdf.annotate nl parsed in
  Array.iteri
    (fun g d -> check_close ~tol:1e-3 (Printf.sprintf "gate %d" g) delays.(g) d)
    back

let test_sdf_structure () =
  let nl = netlist () in
  let delays = Array.make (Circuit.Netlist.num_gates nl) 5.0 in
  let text = Timing.Sdf.write nl ~delays in
  Alcotest.(check bool) "has version" true
    (String.length text > 0
     && (let rec contains i =
           i + 16 <= String.length text
           && (String.sub text i 16 = "(SDFVERSION \"3.0" || contains (i + 1))
         in
         contains 0))

let test_sdf_rejects_bad_lengths () =
  let nl = netlist () in
  Alcotest.(check bool) "length mismatch" true
    (match Timing.Sdf.write nl ~delays:[| 1.0 |] with
     | (_ : string) -> false
     | exception Invalid_argument _ -> true)

let test_sdf_read_tolerates_noise () =
  let text =
    "(DELAYFILE (SDFVERSION \"3.0\")\n// a comment\n\
     (CELL (CELLTYPE \"INV\") (INSTANCE g7)\n\
     (DELAY (ABSOLUTE (IOPATH A Z (1.5:2.0:2.5))))))"
  in
  match Timing.Sdf.read text with
  | [ ("g7", d) ] -> check_close "typical value" 1.5 d
  | other -> Alcotest.failf "unexpected parse: %d entries" (List.length other)

let test_sdf_parse_error () =
  Alcotest.(check bool) "unbalanced" true
    (match Timing.Sdf.read "(DELAYFILE (CELL" with
     | (_ : (string * float) list) -> false
     | exception Timing.Sdf.Parse_error _ -> true)

let test_sdf_annotate_missing_gate () =
  let nl = netlist () in
  Alcotest.(check bool) "missing instance" true
    (match Timing.Sdf.annotate nl [ ("nonexistent", 1.0) ] with
     | (_ : float array) -> false
     | exception Timing.Sdf.Annotate_error _ -> true)

let test_sdf_of_nldm_sweep () =
  (* full loop: NLDM sweep -> SDF -> read back -> delay model *)
  let nl = netlist () in
  let lib =
    Circuit.Liberty.Library.of_group (Circuit.Liberty.parse Circuit.Liberty.builtin)
  in
  let sweep = Timing.Delay_calc.run lib nl in
  let text = Timing.Sdf.write nl ~delays:sweep.Timing.Delay_calc.delays in
  let back = Timing.Sdf.annotate nl (Timing.Sdf.read text) in
  let model = Timing.Variation.make_model ~levels:3 () in
  let dm = Timing.Delay_model.build_with_nominals nl model back in
  check_close ~tol:0.01 "critical delay survives the roundtrip"
    (Timing.Delay_model.nominal_critical_delay
       (Timing.Delay_model.build_with_nominals nl model sweep.Timing.Delay_calc.delays))
    (Timing.Delay_model.nominal_critical_delay dm)

(* ------------------------------------------------------------------ *)
(* Corners *)

let corners_fixture () =
  let nl =
    Circuit.Generator.generate
      { Circuit.Generator.default with num_gates = 120; seed = 51 }
  in
  let mk levels random_boost =
    let model = Timing.Variation.make_model ~levels ~random_boost () in
    let dm = Timing.Delay_model.build nl model in
    let t_cons = Timing.Delay_model.nominal_critical_delay dm in
    let r = Timing.Path_extract.extract dm ~t_cons ~yield_threshold:0.995 in
    (dm, t_cons, r.Timing.Path_extract.paths)
  in
  (* corner A: mild variation; corner B: boosted random (a "cold, fast"
     vs "hot, noisy" pairing). Use the SAME path set so the corner rows
     align: extract at corner A and price those paths at corner B. *)
  let dm_a, t_a, paths = mk 3 1.0 in
  let pool_a = Timing.Paths.build dm_a paths in
  let model_b = Timing.Variation.make_model ~levels:3 ~random_boost:2.0 () in
  let dm_b = Timing.Delay_model.build nl model_b in
  let pool_b = Timing.Paths.build dm_b paths in
  let corner label pool t_cons =
    {
      Core.Corners.label;
      a = Timing.Paths.a_mat pool;
      mu = Timing.Paths.mu_paths pool;
      t_cons;
    }
  in
  (corner "typ" pool_a t_a, corner "noisy" pool_b (1.02 *. t_a), pool_a, pool_b)

let test_corners_meet_tolerance_everywhere () =
  let ca, cb, _, _ = corners_fixture () in
  let eps = 0.05 in
  let r = Core.Corners.select ~corners:[ ca; cb ] ~eps () in
  Alcotest.(check bool)
    (Printf.sprintf "worst eps_r %.4f <= eps" r.Core.Corners.worst_eps_r)
    true
    (r.Core.Corners.worst_eps_r <= eps +. 1e-9);
  List.iter
    (fun (label, sel) ->
      if sel.Core.Select.eps_r > eps +. 1e-9 then
        Alcotest.failf "corner %s violates eps: %.4f" label sel.Core.Select.eps_r)
    r.Core.Corners.per_corner

let test_corners_single_corner_degenerates () =
  let ca, _, _, _ = corners_fixture () in
  let eps = 0.05 in
  let joint = Core.Corners.select ~corners:[ ca ] ~eps () in
  let solo =
    Core.Select.approximate ~a:ca.Core.Corners.a ~mu:ca.Core.Corners.mu ~eps
      ~t_cons:ca.Core.Corners.t_cons ()
  in
  let nj = Array.length joint.Core.Corners.indices in
  let ns = Array.length solo.Core.Select.indices in
  if abs (nj - ns) > 2 then
    Alcotest.failf "single-corner joint %d far from solo %d" nj ns

let test_corners_needs_at_least_solo_size () =
  (* the joint selection cannot be smaller than (much below) the larger
     single-corner need *)
  let ca, cb, _, _ = corners_fixture () in
  let eps = 0.05 in
  let joint = Core.Corners.select ~corners:[ ca; cb ] ~eps () in
  let solo c =
    Array.length
      (Core.Select.approximate ~a:c.Core.Corners.a ~mu:c.Core.Corners.mu ~eps
         ~t_cons:c.Core.Corners.t_cons ()).Core.Select.indices
  in
  let need = max (solo ca) (solo cb) in
  Alcotest.(check bool) "joint >= max solo - 1" true
    (Array.length joint.Core.Corners.indices >= need - 1)

let test_corners_validation () =
  Alcotest.(check bool) "empty corners" true
    (match Core.Corners.select ~corners:[] ~eps:0.05 () with
     | (_ : Core.Corners.t) -> false
     | exception Invalid_argument _ -> true)

let test_corners_mc_accuracy_at_each_corner () =
  let ca, cb, pool_a, pool_b = corners_fixture () in
  let eps = 0.05 in
  let r = Core.Corners.select ~corners:[ ca; cb ] ~eps () in
  List.iter2
    (fun (label, sel) pool ->
      let mc = Timing.Monte_carlo.sample (Rng.create 40) pool ~n:800 in
      let m =
        Core.Evaluate.predictor_metrics sel.Core.Select.predictor
          ~path_delays:(Timing.Monte_carlo.path_delays mc)
      in
      if m.Core.Evaluate.e1 > eps *. 1.5 then
        Alcotest.failf "corner %s MC e1 %.4f too high" label m.Core.Evaluate.e1)
    r.Core.Corners.per_corner [ pool_a; pool_b ]

let unit_tests =
  [
    ("sdf: write/read roundtrip", test_sdf_roundtrip);
    ("sdf: document structure", test_sdf_structure);
    ("sdf: rejects bad lengths", test_sdf_rejects_bad_lengths);
    ("sdf: reader tolerates noise", test_sdf_read_tolerates_noise);
    ("sdf: parse error", test_sdf_parse_error);
    ("sdf: annotate missing gate", test_sdf_annotate_missing_gate);
    ("sdf: NLDM sweep roundtrip", test_sdf_of_nldm_sweep);
    ("corners: tolerance met at every corner", test_corners_meet_tolerance_everywhere);
    ("corners: single corner degenerates to solo", test_corners_single_corner_degenerates);
    ("corners: joint at least max solo", test_corners_needs_at_least_solo_size);
    ("corners: validation", test_corners_validation);
    ("corners: MC accuracy per corner", test_corners_mc_accuracy_at_each_corner);
  ]

let suites =
  [
    ( "sdf+corners",
      List.map (fun (name, f) -> Alcotest.test_case name `Quick f) unit_tests );
  ]
