(* The versioned artifact store: round-trip fidelity and fail-closed
   behaviour under every kind of on-disk damage. *)

let make_artifact seed =
  let nl =
    Circuit.Generator.generate
      { Circuit.Generator.default with num_gates = 80 + (seed mod 40); seed;
        depth = 8; num_inputs = 10; num_outputs = 8 }
  in
  let model = Timing.Variation.make_model ~levels:3 () in
  let dm = Timing.Delay_model.build nl model in
  let t_cons = Timing.Delay_model.nominal_critical_delay dm in
  let r =
    Timing.Path_extract.extract ~max_paths:400 dm ~t_cons ~yield_threshold:0.99
  in
  match r.Timing.Path_extract.paths with
  | [] -> None
  | paths ->
    let pool = Timing.Paths.build dm paths in
    let a = Timing.Paths.a_mat pool in
    let mu = Timing.Paths.mu_paths pool in
    let sel = Core.Select.approximate ~a ~mu ~eps:0.05 ~t_cons () in
    Some
      (Store.of_selection
         ~fingerprint:(Printf.sprintf "test seed=%d" seed)
         ~n_segments:(Timing.Paths.num_segments pool)
         ~t_cons ~eps:0.05 ~a ~mu sel)

let fixture = lazy (Option.get (make_artifact 11))

let expect_error label bytes check =
  match Store.of_bytes ~file:"<test>" bytes with
  | Ok _ -> Alcotest.failf "%s: corrupt artifact accepted" label
  | Error e ->
    check e;
    Alcotest.(check int)
      (label ^ ": sysexits data code")
      65 (Core.Errors.exit_code e)

(* ------------------------------------------------------------------ *)

let test_roundtrip_bytes () =
  let t = Lazy.force fixture in
  match Store.of_bytes (Store.to_bytes t) with
  | Error e -> Alcotest.failf "decode failed: %s" (Core.Errors.to_string e)
  | Ok t' ->
    Alcotest.(check bool) "bit-exact round trip" true (Store.equal t t');
    Alcotest.(check string) "fingerprint" "test seed=11" t'.Store.fingerprint

let test_roundtrip_file () =
  let t = Lazy.force fixture in
  let path = Filename.temp_file "pathsel-test" ".psa" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) @@ fun () ->
  (match Store.save path t with
   | Ok () -> ()
   | Error e -> Alcotest.failf "save failed: %s" (Core.Errors.to_string e));
  match Store.load path with
  | Error e -> Alcotest.failf "load failed: %s" (Core.Errors.to_string e)
  | Ok t' -> Alcotest.(check bool) "file round trip" true (Store.equal t t')

let test_predictors_survive () =
  let t = Lazy.force fixture in
  let t' =
    match Store.of_bytes (Store.to_bytes t) with
    | Ok t' -> t'
    | Error e -> Alcotest.failf "decode failed: %s" (Core.Errors.to_string e)
  in
  let p = Store.predictor t and p' = Store.predictor t' in
  let r = Array.length (Core.Predictor.rep_indices p) in
  let measured = Linalg.Mat.init 7 r (fun i j -> 400.0 +. float_of_int ((3 * i) + j)) in
  let d1 = Core.Predictor.predict_all p ~measured in
  let d2 = Core.Predictor.predict_all p' ~measured in
  Alcotest.(check bool) "plain predictions identical" true
    (Linalg.Mat.equal ~tol:0.0 d1 d2);
  let rb = Store.robust t and rb' = Store.robust t' in
  let faulty = Linalg.Mat.copy measured in
  Linalg.Mat.set faulty 2 (r - 1) Float.nan;
  let r1 = Core.Robust.predict_all rb ~measured:faulty in
  let r2 = Core.Robust.predict_all rb' ~measured:faulty in
  Alcotest.(check bool) "robust predictions identical" true
    (Linalg.Mat.equal ~tol:0.0 r1.Core.Robust.predicted r2.Core.Robust.predicted)

let test_bad_magic () =
  let bytes = Bytes.of_string (Store.to_bytes (Lazy.force fixture)) in
  Bytes.set bytes 0 'X';
  expect_error "magic" (Bytes.to_string bytes) (function
    | Core.Errors.Bad_magic _ -> ()
    | e -> Alcotest.failf "expected Bad_magic, got %s" (Core.Errors.to_string e))

let test_future_version () =
  let bytes = Bytes.of_string (Store.to_bytes (Lazy.force fixture)) in
  Bytes.set_int32_le bytes 4 99l;
  expect_error "version" (Bytes.to_string bytes) (function
    | Core.Errors.Version_mismatch { found = 99; expected = 2; _ } -> ()
    | e -> Alcotest.failf "expected Version_mismatch, got %s" (Core.Errors.to_string e))

let test_truncated () =
  let s = Store.to_bytes (Lazy.force fixture) in
  List.iter
    (fun keep ->
      expect_error
        (Printf.sprintf "truncated to %d" keep)
        (String.sub s 0 keep)
        (function
          | Core.Errors.Corrupt_artifact _ -> ()
          | e ->
            Alcotest.failf "expected Corrupt_artifact, got %s"
              (Core.Errors.to_string e)))
    [ 0; 3; 10; Store.header_size; String.length s / 2; String.length s - 1 ]

let test_payload_bit_flip () =
  let s = Store.to_bytes (Lazy.force fixture) in
  let bytes = Bytes.of_string s in
  let pos = Store.header_size + ((Bytes.length bytes - Store.header_size) / 2) in
  Bytes.set bytes pos (Char.chr (Char.code (Bytes.get bytes pos) lxor 0x40));
  expect_error "bit flip" (Bytes.to_string bytes) (function
    | Core.Errors.Corrupt_artifact { msg; _ } ->
      Alcotest.(check bool) "CRC named" true
        (String.length msg > 0)
    | e -> Alcotest.failf "expected Corrupt_artifact, got %s" (Core.Errors.to_string e))

let test_trailing_garbage () =
  let s = Store.to_bytes (Lazy.force fixture) in
  expect_error "trailing bytes" (s ^ "junk") (function
    | Core.Errors.Corrupt_artifact _ -> ()
    | e -> Alcotest.failf "expected Corrupt_artifact, got %s" (Core.Errors.to_string e))

(* ------------------------------------------------------------------ *)
(* Crash safety *)

(* [Store.save] writes a temp file, fsyncs, and renames. Children are
   SIGKILLed at assorted points mid-save; the destination must always
   hold a loadable artifact — the old one or the new one, never a torn
   hybrid. *)
let test_kill_mid_write () =
  let v1 = Lazy.force fixture in
  let v2 = Option.get (make_artifact 12) in
  let path = Filename.temp_file "pathsel-kill" ".psa" in
  (match Store.save path v1 with
   | Ok () -> ()
   | Error e -> Alcotest.failf "seed save failed: %s" (Core.Errors.to_string e));
  (* OCaml < 5.2 forbids fork once other domains exist, and in the
     full multi-suite run the par suites have already spawned the
     pool. The standalone store run (what @smoke invokes) still
     exercises the kill loop. *)
  let fork_or_skip () =
    try Unix.fork () with Failure _ -> Sys.remove path; Alcotest.skip ()
  in
  for i = 0 to 19 do
    (match fork_or_skip () with
     | 0 ->
       ignore (Store.save path v2);
       Unix._exit 0
     | pid ->
       (* stagger the kill so it lands before, during, and after the
          child's write across iterations *)
       let delay = float_of_int (i mod 7) *. 0.0004 in
       if delay > 0.0 then Unix.sleepf delay;
       (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
       ignore (Unix.waitpid [] pid));
    match Store.load path with
    | Error e ->
      Alcotest.failf "iteration %d: torn artifact: %s" i
        (Core.Errors.to_string e)
    | Ok t ->
      if not (Store.equal t v1 || Store.equal t v2) then
        Alcotest.failf "iteration %d: artifact is neither old nor new" i
  done;
  (* reap temp files the killed children left behind *)
  let dir = Filename.dirname path in
  let prefix = Filename.basename path ^ ".tmp." in
  Array.iter
    (fun f ->
      if String.length f >= String.length prefix
         && String.sub f 0 (String.length prefix) = prefix
      then try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
    (Sys.readdir dir);
  Sys.remove path

(* a truncated artifact *file* — e.g. a copy cut short by a full disk
   or an interrupted transfer — must surface as the same typed
   Corrupt_artifact the in-memory decoder reports, not as a parse
   crash or a silent partial load *)
let test_load_truncated_file () =
  let t = Lazy.force fixture in
  let path = Filename.temp_file "pathsel-store-trunc" ".psa" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
  @@ fun () ->
  (match Store.save path t with
   | Ok () -> ()
   | Error e -> Alcotest.failf "save: %s" (Core.Errors.to_string e));
  let full = (Unix.stat path).Unix.st_size in
  List.iter
    (fun keep ->
      Unix.truncate path keep;
      match Store.load path with
      | Ok _ -> Alcotest.failf "truncated to %d bytes: accepted" keep
      | Error (Core.Errors.Corrupt_artifact _ as e) ->
        Alcotest.(check int) "sysexits data code" 65 (Core.Errors.exit_code e)
      | Error e ->
        Alcotest.failf "truncated to %d bytes: expected Corrupt_artifact, got %s"
          keep (Core.Errors.to_string e))
    [ full - 1; full / 2; Store.header_size; 3; 0 ]

(* ------------------------------------------------------------------ *)
(* Properties *)

let prop_roundtrip =
  QCheck.Test.make ~count:5 ~name:"save -> load is the identity (bit-exact)"
    QCheck.(int_range 1 500)
    (fun seed ->
      match make_artifact seed with
      | None -> QCheck.assume_fail ()
      | Some t ->
        (match Store.of_bytes (Store.to_bytes t) with
         | Ok t' -> Store.equal t t'
         | Error e -> QCheck.Test.fail_report (Core.Errors.to_string e)))

let prop_any_byte_flip_rejected =
  let s = lazy (Store.to_bytes (Lazy.force fixture)) in
  QCheck.Test.make ~count:60
    ~name:"flipping any single byte yields a typed error with exit code 65"
    QCheck.(pair (int_range 0 1_000_000) (int_range 1 255))
    (fun (pos, mask) ->
      let s = Lazy.force s in
      let pos = pos mod String.length s in
      let bytes = Bytes.of_string s in
      Bytes.set bytes pos (Char.chr (Char.code (Bytes.get bytes pos) lxor mask));
      match Store.of_bytes (Bytes.to_string bytes) with
      | Ok _ -> QCheck.Test.fail_report "corrupted artifact accepted"
      | Error e -> Core.Errors.exit_code e = 65)

let suites =
  [
    ( "store",
      [
        Alcotest.test_case "round trip (bytes)" `Quick test_roundtrip_bytes;
        Alcotest.test_case "round trip (file)" `Quick test_roundtrip_file;
        Alcotest.test_case "predictors survive the trip" `Quick
          test_predictors_survive;
        Alcotest.test_case "bad magic" `Quick test_bad_magic;
        Alcotest.test_case "future version" `Quick test_future_version;
        Alcotest.test_case "truncation" `Quick test_truncated;
        Alcotest.test_case "payload bit flip" `Quick test_payload_bit_flip;
        Alcotest.test_case "trailing garbage" `Quick test_trailing_garbage;
        Alcotest.test_case "kill mid-write leaves old or new, never torn"
          `Quick test_kill_mid_write;
        Alcotest.test_case "truncated artifact file is a typed error" `Quick
          test_load_truncated_file;
        QCheck_alcotest.to_alcotest prop_roundtrip;
        QCheck_alcotest.to_alcotest prop_any_byte_flip_rejected;
      ] );
  ]
