(* Importance-sampled yield estimation: dominant-path geometry, the
   bit-exact brute-force contract against Timing.Monte_carlo, the
   degenerate-shift collapse, and IS-vs-MC statistical agreement. *)

let mat rows = Linalg.Mat.of_arrays (Array.map Array.copy rows)

(* a small correlated synthetic model: paths x vars sensitivities from
   a fixed generator, means spread below the constraint *)
let synth_model seed n_paths n_vars =
  let rng = Rng.create seed in
  let a =
    Linalg.Mat.init n_paths n_vars (fun _ _ ->
        if Rng.uniform rng 0.0 1.0 < 0.4 then 0.0
        else Float.abs (Rng.gaussian rng) +. 0.1)
  in
  let mu = Array.init n_paths (fun _ -> Rng.uniform rng 100.0 140.0) in
  (a, mu)

let test_dominant_and_design_point () =
  let a = mat [| [| 3.0; 4.0 |]; [| 1.0; 0.0 |] |] in
  let mu = [| 90.0; 99.0 |] in
  let t_cons = 100.0 in
  (* betas: (100-90)/5 = 2 and (100-99)/1 = 1 -> path 1 dominates *)
  let dom, beta = Yield.dominant_path ~a ~mu ~t_cons in
  Alcotest.(check int) "dominant path" 1 dom;
  Alcotest.(check (float 1e-12)) "beta" 1.0 beta;
  let shift = Yield.design_point ~a ~mu ~t_cons in
  (* the shift puts the dominant path exactly on its boundary *)
  let d1 = mu.(1) +. (Linalg.Mat.get a 1 0 *. shift.(0))
           +. (Linalg.Mat.get a 1 1 *. shift.(1)) in
  Alcotest.(check (float 1e-9)) "on the boundary" t_cons d1

let test_deterministic_pool () =
  let a = mat [| [| 0.0; 0.0 |]; [| 0.0; 0.0 |] |] in
  let mu = [| 90.0; 95.0 |] in
  let pass =
    Yield.importance ~a ~mu ~t_cons:100.0 ~rng:(Rng.create 1) ~samples:64 ()
  in
  Alcotest.(check (float 0.0)) "never fails" 0.0 pass.Yield.p_fail;
  Alcotest.(check (float 0.0)) "no variance" 0.0 pass.Yield.std_err;
  Alcotest.(check int) "dominant -1" (-1) pass.Yield.dominant;
  Alcotest.(check (float 0.0)) "full ess" 64.0 pass.Yield.ess;
  let fail =
    Yield.importance ~a ~mu ~t_cons:94.0 ~rng:(Rng.create 1) ~samples:64 ()
  in
  Alcotest.(check (float 0.0)) "always fails" 1.0 fail.Yield.p_fail;
  Alcotest.(check int) "all hits" 64 fail.Yield.hits

let test_validation () =
  let a = mat [| [| 1.0 |] |] in
  let expect_invalid name f =
    match f () with
    | (_ : Yield.estimate) -> Alcotest.failf "%s: expected Invalid_argument" name
    | exception Invalid_argument _ -> ()
  in
  expect_invalid "samples < 2" (fun () ->
      Yield.importance ~a ~mu:[| 0.0 |] ~t_cons:1.0 ~rng:(Rng.create 1)
        ~samples:1 ());
  expect_invalid "mu length" (fun () ->
      Yield.importance ~a ~mu:[| 0.0; 1.0 |] ~t_cons:1.0 ~rng:(Rng.create 1)
        ~samples:8 ());
  expect_invalid "t_cons nan" (fun () ->
      Yield.importance ~a ~mu:[| 0.0 |] ~t_cons:Float.nan ~rng:(Rng.create 1)
        ~samples:8 ())

(* the mli contract: brute_force with the same seed consumes exactly
   Timing.Monte_carlo.sample's draw sequence, so its failure count
   equals one computed offline from path_delays *)
let test_brute_force_matches_monte_carlo () =
  let nl =
    Circuit.Generator.generate
      { Circuit.Generator.default with num_gates = 90; seed = 23; depth = 8;
        num_inputs = 10; num_outputs = 8 }
  in
  let model = Timing.Variation.make_model ~levels:3 () in
  let dm = Timing.Delay_model.build nl model in
  let t_cons = Timing.Delay_model.nominal_critical_delay dm in
  let r =
    Timing.Path_extract.extract ~max_paths:200 dm ~t_cons ~yield_threshold:0.99
  in
  let pool = Timing.Paths.build dm r.Timing.Path_extract.paths in
  let a = Timing.Paths.a_mat pool in
  let mu = Timing.Paths.mu_paths pool in
  let n = 2000 in
  let d =
    Timing.Monte_carlo.path_delays
      (Timing.Monte_carlo.sample (Rng.create 77) pool ~n)
  in
  let n_paths = Timing.Paths.num_paths pool in
  let offline = ref 0 in
  for i = 0 to n - 1 do
    let worst = ref Float.neg_infinity in
    for j = 0 to n_paths - 1 do
      worst := Float.max !worst (Linalg.Mat.get d i j)
    done;
    if !worst > t_cons then incr offline
  done;
  let est =
    Yield.brute_force ~a ~mu ~t_cons ~rng:(Rng.create 77) ~samples:n ()
  in
  Alcotest.(check int) "hit counts agree bit-for-bit" !offline est.Yield.hits;
  Alcotest.(check bool) "p is the exact ratio" true
    (Int64.bits_of_float est.Yield.p_fail
    = Int64.bits_of_float (float_of_int !offline /. float_of_int n))

(* degenerate shift regression: with the dominant path exactly at its
   constraint, x* = 0, every weight is exactly 1.0 and importance
   sampling collapses onto brute force bit-for-bit *)
let test_degenerate_shift_collapses_to_brute_force () =
  let a, mu = synth_model 5 10 6 in
  let dom, _ = Yield.dominant_path ~a ~mu ~t_cons:(mu.(0) +. 50.0) in
  (* t_cons = mu of the (then-)dominant path makes its beta exactly 0;
     re-derive until the fixed point holds *)
  let t_cons = mu.(dom) in
  let dom', beta = Yield.dominant_path ~a ~mu ~t_cons in
  Alcotest.(check bool) "beta <= 0 at the boundary" true (beta <= 0.0);
  let shift = Yield.design_point ~a ~mu ~t_cons in
  ignore dom';
  Alcotest.(check bool) "x* = 0 only when dominant sits on the boundary" true
    (Array.for_all (fun v -> v = 0.0 || beta <> 0.0) shift);
  let samples = 4096 in
  let is_est =
    Yield.importance ~a ~mu ~t_cons ~rng:(Rng.create 9) ~samples ()
  in
  let mc_est =
    Yield.brute_force ~a ~mu ~t_cons ~rng:(Rng.create 9) ~samples ()
  in
  if is_est.Yield.shift_norm = 0.0 then begin
    let bits = Int64.bits_of_float in
    Alcotest.(check bool) "p_fail bit-equal" true
      (bits is_est.Yield.p_fail = bits mc_est.Yield.p_fail);
    Alcotest.(check bool) "std_err bit-equal" true
      (bits is_est.Yield.std_err = bits mc_est.Yield.std_err);
    Alcotest.(check int) "hits equal" mc_est.Yield.hits is_est.Yield.hits;
    Alcotest.(check (float 0.0)) "ess = n (unit weights)"
      (float_of_int samples) is_est.Yield.ess
  end
  else
    (* the dominant path moved when t_cons dropped: the collapse is
       exercised by the explicit zero-beta instance below instead *)
    ()

(* an explicit zero-beta instance so the collapse is always exercised *)
let test_degenerate_shift_explicit () =
  let a = mat [| [| 2.0; 0.0 |]; [| 0.0; 1.0 |] |] in
  let mu = [| 100.0; 50.0 |] in
  (* betas: 0 / 2 = 0 (dominant) and 50 / 1 = 50 *)
  let t_cons = 100.0 in
  let samples = 2048 in
  let is_est = Yield.importance ~a ~mu ~t_cons ~rng:(Rng.create 3) ~samples () in
  let mc_est = Yield.brute_force ~a ~mu ~t_cons ~rng:(Rng.create 3) ~samples () in
  Alcotest.(check (float 0.0)) "zero shift" 0.0 is_est.Yield.shift_norm;
  Alcotest.(check bool) "p_fail bit-equal" true
    (Int64.bits_of_float is_est.Yield.p_fail
    = Int64.bits_of_float mc_est.Yield.p_fail);
  Alcotest.(check int) "hits equal" mc_est.Yield.hits is_est.Yield.hits;
  Alcotest.(check (float 0.0)) "ess = n" (float_of_int samples) is_est.Yield.ess;
  (* ~half the draws land above a boundary-sitting dominant path *)
  Alcotest.(check bool) "p near 1/2" true
    (is_est.Yield.p_fail > 0.4 && is_est.Yield.p_fail < 0.6)

let test_union_bound_and_calibration () =
  let a, mu = synth_model 11 12 8 in
  let target = 1e-4 in
  let t = Yield.calibrate_t_cons ~a ~mu ~target in
  let b = Yield.union_bound ~a ~mu ~t_cons:t in
  Alcotest.(check bool) "bound hits the target" true
    (Float.abs (b -. target) < 1e-6);
  Alcotest.(check bool) "monotone: looser constraint, smaller bound" true
    (Yield.union_bound ~a ~mu ~t_cons:(t +. 10.0) < b);
  Alcotest.(check bool) "clamped at 1" true
    (Yield.union_bound ~a ~mu ~t_cons:(-1e6) = 1.0)

(* the E18 acceptance criterion at unit-test scale, fixed seed: IS and
   MC within 3 combined standard errors, IS at >= 50x fewer samples *)
let test_is_agrees_with_mc_within_3_se () =
  let a, mu = synth_model 17 12 8 in
  let t_cons = Yield.calibrate_t_cons ~a ~mu ~target:1e-3 in
  let is_est =
    Yield.importance ~a ~mu ~t_cons ~rng:(Rng.create 21) ~samples:8192 ()
  in
  let mc_est =
    Yield.brute_force ~a ~mu ~t_cons ~rng:(Rng.create 22) ~samples:200_000 ()
  in
  Alcotest.(check bool) "MC saw failures" true (mc_est.Yield.hits > 0);
  let z = Yield.agreement_z is_est mc_est in
  if not (Float.is_finite z && z <= 3.0) then
    Alcotest.failf "agreement_z = %g (IS %g +- %g, MC %g +- %g)" z
      is_est.Yield.p_fail is_est.Yield.std_err mc_est.Yield.p_fail
      mc_est.Yield.std_err;
  let red = Yield.sample_reduction is_est in
  if not (Float.is_finite red && red >= 50.0) then
    Alcotest.failf "sample_reduction = %g < 50" red

(* block size is an implementation detail: same bits at any block *)
let test_block_invariance () =
  let a, mu = synth_model 29 8 5 in
  let t_cons = Yield.calibrate_t_cons ~a ~mu ~target:5e-3 in
  let run block =
    Yield.importance ~block ~a ~mu ~t_cons ~rng:(Rng.create 4) ~samples:1000 ()
  in
  let e1 = run 7 and e2 = run 4096 in
  Alcotest.(check bool) "p_fail bit-equal across blocks" true
    (Int64.bits_of_float e1.Yield.p_fail = Int64.bits_of_float e2.Yield.p_fail);
  Alcotest.(check bool) "sn bit-equal across blocks" true
    (Int64.bits_of_float e1.Yield.sn_p_fail
    = Int64.bits_of_float e2.Yield.sn_p_fail);
  Alcotest.(check int) "hits equal" e2.Yield.hits e1.Yield.hits

(* randomized: on small instances IS and MC agree statistically —
   wherever the LR standard error is trustworthy. On some drawn
   instances the 1e-2 calibration target misses badly (true p_fail can
   be ~1) and the design-point shift collapses the effective sample
   size, under which std_err is biased low and a pure z-test has
   deterministic false failures (e.g. seeds 1155, 982). So: skip
   instances where ESS says IS is meaningless (< 64 of 8192), and for
   the rest allow the documented O(1/ess) small-sample bias on top of
   the repo's 4.5-combined-SE property convention (the fixed-seed test
   above asserts the sharp 3-SE acceptance gate). Validated over seeds
   1-2300 exhaustively: 0 failures, ~75% of instances genuinely
   tested. *)
let prop_is_mc_agree =
  QCheck.Test.make ~count:8 ~name:"IS ~= MC within 4.5 combined SE"
    QCheck.(int_range 1 10_000)
    (fun seed ->
      let n_paths = 2 + (seed mod 11) in
      let n_vars = 2 + (seed mod 7) in
      let a, mu = synth_model seed n_paths n_vars in
      let t_cons = Yield.calibrate_t_cons ~a ~mu ~target:1e-2 in
      let is_est =
        Yield.importance ~a ~mu ~t_cons ~rng:(Rng.create (seed + 1))
          ~samples:8192 ()
      in
      let mc_est =
        Yield.brute_force ~a ~mu ~t_cons ~rng:(Rng.create (seed + 2))
          ~samples:60_000 ()
      in
      if
        mc_est.Yield.hits = 0 || is_est.Yield.hits = 0
        || is_est.Yield.ess < 64.0
      then true
      else
        let gap = Float.abs (is_est.Yield.p_fail -. mc_est.Yield.p_fail) in
        let se =
          sqrt
            ((is_est.Yield.std_err *. is_est.Yield.std_err)
            +. (mc_est.Yield.std_err *. mc_est.Yield.std_err))
        in
        Float.is_finite gap && gap <= (4.5 *. se) +. (2.0 /. is_est.Yield.ess))

let suites =
  [
    ( "yield",
      [
        Alcotest.test_case "dominant path and design point" `Quick
          test_dominant_and_design_point;
        Alcotest.test_case "deterministic pool" `Quick test_deterministic_pool;
        Alcotest.test_case "input validation" `Quick test_validation;
        Alcotest.test_case "brute force matches Monte_carlo bit-for-bit" `Quick
          test_brute_force_matches_monte_carlo;
        Alcotest.test_case "degenerate shift collapses to brute force" `Quick
          test_degenerate_shift_collapses_to_brute_force;
        Alcotest.test_case "degenerate shift: explicit zero-beta instance"
          `Quick test_degenerate_shift_explicit;
        Alcotest.test_case "union bound and calibration" `Quick
          test_union_bound_and_calibration;
        Alcotest.test_case "IS within 3 SE of MC at >= 50x reduction" `Quick
          test_is_agrees_with_mc_within_3_se;
        Alcotest.test_case "block-size invariance" `Quick test_block_invariance;
        QCheck_alcotest.to_alcotest prop_is_mc_agree;
      ] );
  ]
