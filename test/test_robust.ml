(* Fault injection, the robust predictor, and the typed error layer. *)

let make_pool seed gates =
  let nl =
    Circuit.Generator.generate
      { Circuit.Generator.default with num_gates = gates; seed; depth = 8;
        num_inputs = 10; num_outputs = 8 }
  in
  let model = Timing.Variation.make_model ~levels:3 () in
  let dm = Timing.Delay_model.build nl model in
  let t_cons = Timing.Delay_model.nominal_critical_delay dm in
  let r = Timing.Path_extract.extract ~max_paths:400 dm ~t_cons ~yield_threshold:0.99 in
  match r.Timing.Path_extract.paths with
  | [] -> None
  | paths -> Some (t_cons, Timing.Paths.build dm paths)

let robust_fixture seed =
  match make_pool seed 90 with
  | None -> None
  | Some (t_cons, pool) ->
    let a = Timing.Paths.a_mat pool in
    let mu = Timing.Paths.mu_paths pool in
    let sel = Core.Select.approximate ~a ~mu ~eps:0.05 ~t_cons () in
    let robust = Core.Robust.of_selection ~a ~mu sel in
    let mc = Timing.Monte_carlo.sample (Rng.create (seed + 77)) pool ~n:300 in
    let d = Timing.Monte_carlo.path_delays mc in
    let p = sel.Core.Select.predictor in
    let measured = Linalg.Mat.select_cols d (Core.Predictor.rep_indices p) in
    let truth = Linalg.Mat.select_cols d (Core.Predictor.rem_indices p) in
    Some (p, robust, measured, truth)

(* ------------------------------------------------------------------ *)
(* Faults *)

let test_faults_validate () =
  Timing.Faults.validate Timing.Faults.none;
  Alcotest.check_raises "rate > 1"
    (Invalid_argument "Faults: path_dropout must be in [0, 1], got 1.5")
    (fun () ->
      Timing.Faults.validate
        { Timing.Faults.none with Timing.Faults.path_dropout = 1.5 });
  Alcotest.check_raises "negative drift"
    (Invalid_argument "Faults: drift_sigma_ps must be non-negative") (fun () ->
      Timing.Faults.validate
        { Timing.Faults.none with Timing.Faults.drift_sigma_ps = -1.0 })

let test_faults_of_string () =
  (match Timing.Faults.of_string "dropout=0.1,outliers=0.01,stuck=0.005" with
   | Error m -> Alcotest.failf "spec rejected: %s" m
   | Ok sp ->
     Alcotest.(check (float 1e-12)) "dropout" 0.1 sp.Timing.Faults.path_dropout;
     Alcotest.(check (float 1e-12)) "outliers" 0.01 sp.Timing.Faults.outlier_rate;
     Alcotest.(check (float 1e-12)) "stuck" 0.005 sp.Timing.Faults.stuck_rate;
     (* round trip *)
     (match Timing.Faults.of_string (Timing.Faults.to_string sp) with
      | Error m -> Alcotest.failf "round trip rejected: %s" m
      | Ok sp' -> Alcotest.(check bool) "round trip" true (sp = sp')));
  (match Timing.Faults.of_string "bogus=1" with
   | Ok _ -> Alcotest.fail "unknown field accepted"
   | Error _ -> ());
  match Timing.Faults.of_string "dropout=lots" with
  | Ok _ -> Alcotest.fail "malformed number accepted"
  | Error _ -> ()

let test_faults_inject_identity () =
  let clean = Linalg.Mat.init 30 8 (fun i j -> 100.0 +. float_of_int ((7 * i) + j)) in
  let inj = Timing.Faults.inject Timing.Faults.none (Rng.create 3) clean in
  let stats = inj.Timing.Faults.stats in
  Alcotest.(check int) "no missing" 0 stats.Timing.Faults.missing_entries;
  Alcotest.(check int) "no outliers" 0 stats.Timing.Faults.outlier_entries;
  Alcotest.(check int) "total" 240 stats.Timing.Faults.total_entries;
  for i = 0 to 29 do
    for j = 0 to 7 do
      Alcotest.(check (float 0.0)) "entry unchanged" (Linalg.Mat.get clean i j)
        (Linalg.Mat.get inj.Timing.Faults.data i j);
      Alcotest.(check bool) "mask true" true inj.Timing.Faults.mask.(i).(j)
    done
  done

let test_faults_inject_rates () =
  let clean = Linalg.Mat.init 200 20 (fun _ _ -> 250.0) in
  let spec =
    { Timing.Faults.none with Timing.Faults.path_dropout = 0.1; outlier_rate = 0.05 }
  in
  let inj = Timing.Faults.inject spec (Rng.create 11) clean in
  let stats = inj.Timing.Faults.stats in
  let total = float_of_int stats.Timing.Faults.total_entries in
  let miss_rate = float_of_int stats.Timing.Faults.missing_entries /. total in
  Alcotest.(check bool) "dropout rate in range" true
    (miss_rate > 0.07 && miss_rate < 0.13);
  (* mask and nan encoding agree *)
  let nan_count = ref 0 in
  Array.iteri
    (fun i row ->
      Array.iteri
        (fun j present ->
          let v = Linalg.Mat.get inj.Timing.Faults.data i j in
          if Float.is_nan v then incr nan_count;
          Alcotest.(check bool) "mask iff finite" present (not (Float.is_nan v)))
        row)
    inj.Timing.Faults.mask;
  Alcotest.(check int) "nan count = missing" stats.Timing.Faults.missing_entries
    !nan_count

(* ------------------------------------------------------------------ *)
(* Robust predictor *)

(* Zero faults => the robust layer must reproduce the plain Theorem-2
   predictor bit-for-bit, over random circuits. *)
let prop_clean_bit_for_bit =
  QCheck.Test.make ~count:8 ~name:"Robust = Predictor on clean data (bit-for-bit)"
    QCheck.(int_range 1 300)
    (fun seed ->
      match robust_fixture seed with
      | None -> true
      | Some (p, robust, measured, _) ->
        let expected = Core.Predictor.predict_all p ~measured in
        let pr = Core.Robust.predict_all robust ~measured in
        let n, k = Linalg.Mat.dims expected in
        let ok = ref pr.Core.Robust.screened.Core.Robust.clean in
        for i = 0 to n - 1 do
          for j = 0 to k - 1 do
            if Linalg.Mat.get expected i j
               <> Linalg.Mat.get pr.Core.Robust.predicted i j
            then ok := false
          done
        done;
        !ok)

(* More dropout must not make the robust predictor more accurate. *)
let prop_monotone_dropout =
  QCheck.Test.make ~count:5 ~name:"Robust e2 degrades monotonically in dropout"
    QCheck.(int_range 1 200)
    (fun seed ->
      match robust_fixture seed with
      | None -> true
      | Some (_, robust, measured, truth) ->
        let e2_at rate =
          let spec =
            { Timing.Faults.none with Timing.Faults.path_dropout = rate }
          in
          let inj = Timing.Faults.inject spec (Rng.create 5) measured in
          let pr =
            Core.Robust.predict_all robust ~measured:inj.Timing.Faults.data
          in
          (Core.Robust.metrics pr ~truth).Core.Evaluate.e2
        in
        let e2s = List.map e2_at [ 0.0; 0.1; 0.35; 0.7 ] in
        (* allow a hair of slack: a higher rate resamples the fault
           pattern, so tiny non-monotonic wiggles are possible *)
        let rec mono = function
          | a :: (b :: _ as rest) -> a <= b +. 0.002 && mono rest
          | _ -> true
        in
        List.for_all Float.is_finite e2s && mono e2s)

let test_screen_planted_outliers () =
  match robust_fixture 17 with
  | None -> Alcotest.fail "fixture produced no paths"
  | Some (_, robust, measured, _) ->
    let n, r = Linalg.Mat.dims measured in
    let clean_screen = Core.Robust.screen robust ~measured in
    Alcotest.(check bool) "clean data screens clean" true
      clean_screen.Core.Robust.clean;
    (* plant gross outliers on known entries *)
    let planted = [ (0, 0); (n / 2, r - 1); (n - 1, 0) ] in
    let dirty =
      Linalg.Mat.init n r (fun i j ->
          let v = Linalg.Mat.get measured i j in
          if List.mem (i, j) planted then 3.0 *. v else v)
    in
    let s = Core.Robust.screen robust ~measured:dirty in
    Alcotest.(check bool) "screen not clean" false s.Core.Robust.clean;
    List.iter
      (fun (i, j) ->
        Alcotest.(check bool)
          (Printf.sprintf "outlier (%d,%d) rejected" i j)
          false s.Core.Robust.mask.(i).(j))
      planted;
    Alcotest.(check int) "no false alarms" (List.length planted)
      s.Core.Robust.outliers

let test_ridge_fallback () =
  match robust_fixture 23 with
  | None -> Alcotest.fail "fixture produced no paths"
  | Some (_, robust, measured, truth) ->
    let spec = { Timing.Faults.none with Timing.Faults.path_dropout = 0.3 } in
    let inj = Timing.Faults.inject spec (Rng.create 9) measured in
    (* a cond limit just above 1 declares every reduced Gram
       ill-conditioned, so each reduced solve must take the ridge path
       and still produce finite predictions *)
    let pr =
      Core.Robust.predict_all ~cond_limit:1.0000001 robust
        ~measured:inj.Timing.Faults.data
    in
    Alcotest.(check bool) "ridge used" true (pr.Core.Robust.ridge_fallbacks > 0);
    (* 1x1 reduced systems have condition exactly 1 and may skip the
       ridge; everything larger must take it *)
    Alcotest.(check bool) "ridge bounded by solves" true
      (pr.Core.Robust.ridge_fallbacks <= pr.Core.Robust.resolves);
    let m = Core.Robust.metrics pr ~truth in
    Alcotest.(check bool) "metrics finite" true
      (Float.is_finite m.Core.Evaluate.e1 && Float.is_finite m.Core.Evaluate.e2)

(* ------------------------------------------------------------------ *)
(* demo90 acceptance: 10% dropout + 1% outliers *)

let data_dir =
  let candidates =
    [ "examples/data"; "../examples/data"; "../../examples/data";
      "../../../examples/data"; "../../../../examples/data" ]
  in
  lazy
    (List.find_opt
       (fun d -> Sys.file_exists (Filename.concat d "demo90.bench"))
       candidates)

let with_data f =
  match Lazy.force data_dir with Some dir -> f dir | None -> ()

let test_demo90_acceptance () =
  with_data (fun dir ->
      let nl = Circuit.Bench_io.parse_file (Filename.concat dir "demo90.bench") in
      let model = Timing.Variation.make_model ~levels:3 () in
      let setup =
        Core.Pipeline.prepare ~max_paths:400 ~yield_samples:150 ~netlist:nl
          ~model ()
      in
      let pool = setup.Core.Pipeline.pool in
      let sel = Core.Pipeline.approximate_selection setup ~eps:0.05 in
      let robust =
        Core.Robust.of_selection ~a:(Timing.Paths.a_mat pool)
          ~mu:(Timing.Paths.mu_paths pool) sel
      in
      let p = sel.Core.Select.predictor in
      let mc = Core.Pipeline.draw setup in
      let d = Timing.Monte_carlo.path_delays mc in
      let measured = Linalg.Mat.select_cols d (Core.Predictor.rep_indices p) in
      let truth = Linalg.Mat.select_cols d (Core.Predictor.rem_indices p) in
      let clean = Core.Evaluate.of_predictions ~truth
          ~predicted:(Core.Predictor.predict_all p ~measured)
      in
      let spec =
        match Timing.Faults.of_string "dropout=0.1,outliers=0.01" with
        | Ok sp -> sp
        | Error m -> Alcotest.failf "spec: %s" m
      in
      let inj = Timing.Faults.inject spec (Rng.create 43) measured in
      Alcotest.(check bool) "faults actually injected" true
        (inj.Timing.Faults.stats.Timing.Faults.missing_entries > 0
        && inj.Timing.Faults.stats.Timing.Faults.outlier_entries > 0);
      (* the robust path completes with a bounded margin over clean *)
      let pr = Core.Robust.predict_all robust ~measured:inj.Timing.Faults.data in
      let m = Core.Robust.metrics pr ~truth in
      Alcotest.(check bool) "robust e2 bounded" true
        (Float.is_finite m.Core.Evaluate.e2
        && m.Core.Evaluate.e2 <= clean.Core.Evaluate.e2 +. 0.05);
      Alcotest.(check bool) "robust e1 finite" true
        (Float.is_finite m.Core.Evaluate.e1);
      (* the naive path must fail on the same data *)
      match
        Core.Evaluate.of_predictions ~truth
          ~predicted:(Core.Predictor.predict_all p ~measured:inj.Timing.Faults.data)
      with
      | _ -> Alcotest.fail "naive predictor accepted non-finite data"
      | exception Core.Errors.Error (Core.Errors.Bad_data _) -> ())

(* ------------------------------------------------------------------ *)
(* Errors + lenient ingestion *)

let dirty_bench =
  "INPUT(a)\nINPUT(b)\nthis is not a bench line\nc = AND(a, b)\n\
   d = FROBGATE(a, b)\ne = OR(c, ghost)\nOUTPUT(c)\nOUTPUT(e)\n"

let test_lenient_bench () =
  (* strict parse rejects the garbage line, with its line number *)
  (match Circuit.Bench_io.parse ~name:"dirty" dirty_bench with
   | _ -> Alcotest.fail "strict parse accepted garbage"
   | exception Circuit.Bench_io.Parse_error (3, _) -> ()
   | exception Circuit.Bench_io.Parse_error (l, m) ->
     Alcotest.failf "wrong position %d: %s" l m);
  (* lenient parse survives, warns, and keeps the usable gate *)
  let nl, warnings = Circuit.Bench_io.parse_lenient ~name:"dirty" dirty_bench in
  Alcotest.(check bool) "warned" true (List.length warnings >= 3);
  Alcotest.(check int) "one usable gate" 1 (Circuit.Netlist.num_gates nl)

let test_error_wrappers () =
  (match Core.Errors.parse_bench_file "/nonexistent/x.bench" with
   | Ok _ -> Alcotest.fail "missing file parsed"
   | Error e ->
     (match e with
      | Core.Errors.Io _ -> ()
      | other -> Alcotest.failf "wrong class: %s" (Core.Errors.to_string other));
     Alcotest.(check int) "missing input exit code" 66 (Core.Errors.exit_code e));
  let tmp = Filename.temp_file "dirty" ".bench" in
  Fun.protect
    ~finally:(fun () -> Sys.remove tmp)
    (fun () ->
      let oc = open_out tmp in
      output_string oc dirty_bench;
      close_out oc;
      (match Core.Errors.parse_bench_file tmp with
       | Ok _ -> Alcotest.fail "strict wrapper accepted garbage"
       | Error (Core.Errors.Parse { line = Some 3; _ } as e) ->
         Alcotest.(check int) "data exit code" 65 (Core.Errors.exit_code e)
       | Error e -> Alcotest.failf "wrong error: %s" (Core.Errors.to_string e));
      (* parse_file raises with the path and line baked into the message *)
      (match Circuit.Bench_io.parse_file tmp with
       | _ -> Alcotest.fail "parse_file accepted garbage"
       | exception Circuit.Bench_io.Parse_error (3, msg) ->
         Alcotest.(check bool) "message carries file:line" true
           (let tag = Printf.sprintf "%s:3:" tmp in
            String.length msg >= String.length tag
            && String.sub msg 0 (String.length tag) = tag));
      match Core.Errors.parse_bench_file ~lenient:true tmp with
      | Ok (nl, warnings) ->
        Alcotest.(check int) "lenient gate" 1 (Circuit.Netlist.num_gates nl);
        Alcotest.(check bool) "lenient warns" true (warnings <> [])
      | Error e -> Alcotest.failf "lenient failed: %s" (Core.Errors.to_string e))

let test_no_critical_paths_error () =
  let nl =
    Circuit.Generator.generate { Circuit.Generator.default with num_gates = 60 }
  in
  let model = Timing.Variation.make_model ~levels:3 () in
  (* a hugely relaxed constraint leaves no statistically-critical path *)
  (match
     Core.Pipeline.prepare ~t_cons_scale:50.0 ~yield_samples:60 ~netlist:nl
       ~model ()
   with
   | _ -> Alcotest.fail "expected No_critical_paths"
   | exception Core.Errors.Error (Core.Errors.No_critical_paths _) -> ());
  match
    Core.Pipeline.prepare_result ~t_cons_scale:50.0 ~yield_samples:60 ~netlist:nl
      ~model ()
  with
  | Ok _ -> Alcotest.fail "expected error result"
  | Error e -> Alcotest.(check int) "exit code" 65 (Core.Errors.exit_code e)

let test_svd_rejects_nan () =
  let a = Linalg.Mat.init 4 3 (fun i j -> if i = 2 && j = 1 then Float.nan else 1.0) in
  match Linalg.Svd.factor a with
  | _ -> Alcotest.fail "factor accepted NaN"
  | exception Invalid_argument _ -> ()

let test_sdf_lenient_annotate () =
  let nl =
    Circuit.Generator.generate { Circuit.Generator.default with num_gates = 20 }
  in
  let n = Circuit.Netlist.num_gates nl in
  let delays = Array.init n (fun i -> 50.0 +. float_of_int i) in
  let pairs = Timing.Sdf.read (Timing.Sdf.write nl ~delays) in
  let full = Timing.Sdf.annotate nl pairs in
  Alcotest.(check (float 1e-9)) "round trip" delays.(3) full.(3);
  let partial = List.filteri (fun i _ -> i > 1) pairs in
  (match Timing.Sdf.annotate nl partial with
   | _ -> Alcotest.fail "annotate accepted missing instances"
   | exception Timing.Sdf.Annotate_error msg ->
     Alcotest.(check bool) "failure counts instances" true
       (String.length msg > 0));
  let filled, warnings = Timing.Sdf.annotate_lenient nl partial in
  Alcotest.(check int) "two warnings" 2 (List.length warnings);
  Alcotest.(check int) "full length" n (Array.length filled);
  Array.iter
    (fun v -> Alcotest.(check bool) "finite fill" true (Float.is_finite v))
    filled

let suites =
  [
    ( "faults",
      [
        Alcotest.test_case "validate" `Quick test_faults_validate;
        Alcotest.test_case "of_string" `Quick test_faults_of_string;
        Alcotest.test_case "inject: none is identity" `Quick
          test_faults_inject_identity;
        Alcotest.test_case "inject: rates and mask" `Quick test_faults_inject_rates;
      ] );
    ( "robust",
      [
        QCheck_alcotest.to_alcotest prop_clean_bit_for_bit;
        QCheck_alcotest.to_alcotest prop_monotone_dropout;
        Alcotest.test_case "screen: planted outliers" `Quick
          test_screen_planted_outliers;
        Alcotest.test_case "ridge fallback" `Quick test_ridge_fallback;
        Alcotest.test_case "demo90: 10% dropout + 1% outliers" `Quick
          test_demo90_acceptance;
      ] );
    ( "errors",
      [
        Alcotest.test_case "lenient bench parse" `Quick test_lenient_bench;
        Alcotest.test_case "typed wrappers + exit codes" `Quick test_error_wrappers;
        Alcotest.test_case "no critical paths" `Quick test_no_critical_paths_error;
        Alcotest.test_case "svd rejects NaN" `Quick test_svd_rejects_nan;
        Alcotest.test_case "sdf lenient annotate" `Quick test_sdf_lenient_annotate;
      ] );
  ]
