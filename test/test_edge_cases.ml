(* Edge-case and failure-injection tests across the stack. *)

let check_close ?(tol = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > tol then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

(* ------------------------------------------------------------------ *)
(* Degenerate matrices *)

let test_svd_single_entry () =
  let f = Linalg.Svd.factor (Linalg.Mat.of_arrays [| [| -7.0 |] |]) in
  check_close "singular value" 7.0 f.s.(0);
  Alcotest.(check bool) "reconstructs" true
    (Linalg.Mat.equal ~tol:1e-12 (Linalg.Mat.of_arrays [| [| -7.0 |] |])
       (Linalg.Svd.reconstruct f))

let test_svd_single_row_and_column () =
  let row = Linalg.Mat.of_arrays [| [| 3.0; 4.0 |] |] in
  let f = Linalg.Svd.factor row in
  check_close "row norm" 5.0 f.s.(0);
  let col = Linalg.Mat.of_arrays [| [| 3.0 |]; [| 4.0 |] |] in
  let g = Linalg.Svd.factor col in
  check_close "col norm" 5.0 g.s.(0)

let test_svd_rank_one_large () =
  let u = Array.init 40 (fun i -> sin (float_of_int i)) in
  let v = Array.init 25 (fun j -> cos (float_of_int j)) in
  let a = Linalg.Mat.init 40 25 (fun i j -> u.(i) *. v.(j)) in
  let f = Linalg.Svd.factor a in
  Alcotest.(check int) "rank 1" 1 (Linalg.Svd.rank f);
  check_close ~tol:1e-8 "s0 = |u||v|" (Linalg.Vec.norm2 u *. Linalg.Vec.norm2 v) f.s.(0)

let test_qr_zero_column () =
  (* pivoting must push an all-zero column last *)
  let a =
    Linalg.Mat.of_arrays
      [| [| 1.0; 0.0; 2.0 |]; [| 3.0; 0.0; 4.0 |]; [| 5.0; 0.0; 6.0 |] |]
  in
  let f = Linalg.Qr.factor_pivoted a in
  let perm = Linalg.Qr.perm f in
  Alcotest.(check int) "zero column pivoted last" 1 perm.(2);
  Alcotest.(check int) "rank 2" 2 (Linalg.Qr.rank f)

let test_pinv_of_zero () =
  let p = Linalg.Pinv.compute (Linalg.Mat.create 3 2) in
  check_close "pinv of zero is zero" 0.0 (Linalg.Mat.norm_inf p)

let test_mat_empty_product () =
  let a = Linalg.Mat.create 0 5 in
  let b = Linalg.Mat.create 5 0 in
  let c = Linalg.Mat.mul a (Linalg.Mat.create 5 3) in
  Alcotest.(check (pair int int)) "0x3" (0, 3) (Linalg.Mat.dims c);
  let d = Linalg.Mat.mul (Linalg.Mat.create 3 5) b in
  Alcotest.(check (pair int int)) "3x0" (3, 0) (Linalg.Mat.dims d)

(* ------------------------------------------------------------------ *)
(* Ill-conditioned predictor inputs *)

let test_predictor_duplicate_rows () =
  (* duplicated representative rows make the Gram singular; the
     pseudo-inverse branch must still give an exact predictor *)
  let a =
    Linalg.Mat.of_arrays
      [| [| 1.0; 0.0 |]; [| 1.0; 0.0 |]; [| 0.0; 1.0 |]; [| 1.0; 1.0 |] |]
  in
  let mu = [| 1.0; 1.0; 2.0; 3.0 |] in
  let p = Core.Predictor.build ~a ~mu ~rep:[| 0; 1; 2 |] in
  let sig_err = Core.Predictor.error_sigmas p in
  check_close ~tol:1e-8 "exact despite singular gram" 0.0 sig_err.(0);
  let pred = Core.Predictor.predict p ~measured:[| 1.5; 1.5; 2.25 |] in
  check_close ~tol:1e-8 "prediction" 3.75 pred.(0)

let test_predictor_all_paths_representative () =
  let a = Linalg.Mat.identity 3 in
  let mu = [| 1.0; 2.0; 3.0 |] in
  let p = Core.Predictor.build ~a ~mu ~rep:[| 0; 1; 2 |] in
  Alcotest.(check int) "no remaining paths" 0 (Array.length (Core.Predictor.rem_indices p));
  check_close "zero worst case" 0.0 (Core.Predictor.worst_case_error p ~kappa:3.0)

let test_select_on_rank_one_pool () =
  (* all paths proportional: one representative suffices at any eps *)
  let a = Linalg.Mat.init 6 4 (fun i j -> float_of_int (i + 1) *. [| 1.0; 0.5; 0.25; 0.1 |].(j)) in
  let mu = Array.init 6 (fun i -> 100.0 +. float_of_int i) in
  let sel = Core.Select.approximate ~a ~mu ~eps:0.05 ~t_cons:100.0 () in
  Alcotest.(check int) "rank 1" 1 sel.Core.Select.rank;
  Alcotest.(check int) "one path" 1 (Array.length sel.Core.Select.indices);
  Alcotest.(check bool) "zero error" true (sel.Core.Select.eps_r < 1e-8)

let test_hybrid_on_tiny_pool () =
  (* hybrid on the figure-1 style pool should still produce a feasible
     measurement plan *)
  let pi i = Circuit.Netlist.Pi i in
  let gout g = Circuit.Netlist.Gate_out g in
  let nl =
    Circuit.Netlist.build ~name:"tiny" ~num_inputs:2
      ~gates:
        [
          ("a", Circuit.Cell.Inv, [| pi 0 |], (0.2, 0.2));
          ("b", Circuit.Cell.Inv, [| pi 1 |], (0.2, 0.8));
          ("c", Circuit.Cell.Nand2, [| gout 0; gout 1 |], (0.5, 0.5));
          ("d", Circuit.Cell.Inv, [| gout 2 |], (0.8, 0.5));
        ]
      ~outputs:[ gout 3 ]
  in
  let dm = Timing.Delay_model.build nl (Timing.Variation.make_model ~levels:2 ()) in
  let r = Timing.Path_extract.extract dm ~t_cons:1.0 ~yield_threshold:0.9999 in
  let pool = Timing.Paths.build dm r.Timing.Path_extract.paths in
  (* a realistic constraint: with T near the nominal path delay, the
     per-path uncertainty exceeds eps*T and something must be measured *)
  let t_cons = Timing.Delay_model.nominal_critical_delay dm in
  let h =
    Core.Hybrid.run
      ~a:(Timing.Paths.a_mat pool) ~g:(Timing.Paths.g_mat pool)
      ~sigma:(Timing.Paths.sigma_mat pool) ~mu:(Timing.Paths.mu_paths pool)
      ~eps:0.05 ~t_cons ()
  in
  Alcotest.(check bool) "some measurements" true (Core.Hybrid.total_measurements h > 0);
  Alcotest.(check bool) "bounded by pool" true
    (Core.Hybrid.total_measurements h
     <= Timing.Paths.num_paths pool + Timing.Paths.num_segments pool)

(* ------------------------------------------------------------------ *)
(* Failure injection: measurement noise *)

let test_prediction_degrades_gracefully_with_noise () =
  (* corrupt the measured representative delays with noise; the
     prediction error must grow smoothly, not explode (the predictor's
     weights are bounded) *)
  let nl =
    Circuit.Generator.generate
      { Circuit.Generator.default with num_gates = 120; seed = 77 }
  in
  let model = Timing.Variation.make_model ~levels:3 () in
  let setup = Core.Pipeline.prepare ~netlist:nl ~model ~yield_samples:150 () in
  let sel = Core.Pipeline.approximate_selection setup ~eps:0.05 in
  let p = sel.Core.Select.predictor in
  let mc = Timing.Monte_carlo.sample (Rng.create 5) setup.Core.Pipeline.pool ~n:200 in
  let d = Timing.Monte_carlo.path_delays mc in
  let rep = Core.Predictor.rep_indices p in
  let noise_rng = Rng.create 6 in
  let eval noise_std =
    let measured =
      Linalg.Mat.init 200 (Array.length rep) (fun i k ->
          Linalg.Mat.get d i rep.(k) +. (noise_std *. Rng.gaussian noise_rng))
    in
    let truth = Linalg.Mat.select_cols d (Core.Predictor.rem_indices p) in
    let m = Core.Evaluate.of_predictions ~truth
        ~predicted:(Core.Predictor.predict_all p ~measured) in
    m.Core.Evaluate.e2
  in
  let clean = eval 0.0 in
  let noisy = eval 1.0 in
  let very_noisy = eval 4.0 in
  Alcotest.(check bool) "noise hurts" true (noisy > clean);
  Alcotest.(check bool) "but boundedly (16x noise var < 40x error)" true
    (very_noisy < Float.max 0.02 (40.0 *. Float.max 1e-6 noisy))

(* ------------------------------------------------------------------ *)
(* Determinism of the full pipeline *)

let test_pipeline_fully_deterministic () =
  let build () =
    let nl =
      Circuit.Generator.generate
        { Circuit.Generator.default with num_gates = 100; seed = 31 }
    in
    let model = Timing.Variation.make_model ~levels:3 () in
    let setup = Core.Pipeline.prepare ~netlist:nl ~model ~yield_samples:100 () in
    let sel = Core.Pipeline.approximate_selection setup ~eps:0.05 in
    (Timing.Paths.num_paths setup.Core.Pipeline.pool, sel.Core.Select.indices,
     sel.Core.Select.eps_r)
  in
  let n1, i1, e1 = build () in
  let n2, i2, e2 = build () in
  Alcotest.(check int) "same pool" n1 n2;
  Alcotest.(check (array int)) "same selection" i1 i2;
  check_close "same error" e1 e2

(* ------------------------------------------------------------------ *)
(* Numerical-stability property tests *)

let prop_svd_scale_invariance =
  QCheck.Test.make ~count:40 ~name:"svd singular values scale linearly"
    QCheck.(pair (int_range 1 300) (float_range 0.1 100.0))
    (fun (seed, scale) ->
      let a =
        Linalg.Mat.init 6 4 (fun i j -> sin (float_of_int ((seed * 13) + (i * 5) + j)))
      in
      let s1 = (Linalg.Svd.factor a).Linalg.Svd.s in
      let s2 = (Linalg.Svd.factor (Linalg.Mat.scale scale a)).Linalg.Svd.s in
      let ok = ref true in
      Array.iteri
        (fun i v ->
          if Float.abs (v -. (scale *. s1.(i))) > 1e-6 *. Float.max 1.0 (scale *. s1.(i))
          then ok := false)
        s2;
      !ok)

let prop_predictor_row_permutation_invariant =
  QCheck.Test.make ~count:25 ~name:"error sigma set invariant to remaining-row order"
    QCheck.(int_range 1 200)
    (fun seed ->
      let a = Linalg.Mat.init 8 5 (fun i j -> cos (float_of_int ((seed * 7) + (i * 3) + j))) in
      let mu = Array.init 8 (fun i -> 10.0 +. float_of_int i) in
      let p = Core.Predictor.build ~a ~mu ~rep:[| 0; 3 |] in
      let sig1 = Core.Predictor.error_sigmas p in
      (* permute the non-representative rows of a and rebuild: the multiset
         of error sigmas must be unchanged *)
      let order = [| 0; 1; 2; 3; 4; 5; 6; 7 |] in
      let swap i j = let t = order.(i) in order.(i) <- order.(j); order.(j) <- t in
      swap 1 6; swap 2 5;
      let a2 = Linalg.Mat.select_rows a order in
      let mu2 = Array.map (fun i -> mu.(i)) order in
      let p2 = Core.Predictor.build ~a:a2 ~mu:mu2 ~rep:[| 0; 3 |] in
      let sig2 = Core.Predictor.error_sigmas p2 in
      let sorted x = let y = Array.copy x in Array.sort compare y; y in
      Linalg.Vec.equal ~tol:1e-9 (sorted sig1) (sorted sig2))

let unit_tests =
  [
    ("svd: 1x1", test_svd_single_entry);
    ("svd: single row / column", test_svd_single_row_and_column);
    ("svd: large rank-1", test_svd_rank_one_large);
    ("qr: zero column pivoted last", test_qr_zero_column);
    ("pinv: of zero matrix", test_pinv_of_zero);
    ("mat: empty products", test_mat_empty_product);
    ("predictor: duplicate representative rows", test_predictor_duplicate_rows);
    ("predictor: all paths representative", test_predictor_all_paths_representative);
    ("select: rank-one pool", test_select_on_rank_one_pool);
    ("hybrid: tiny pool", test_hybrid_on_tiny_pool);
    ("noise: graceful degradation", test_prediction_degrades_gracefully_with_noise);
    ("pipeline: fully deterministic", test_pipeline_fully_deterministic);
  ]

let property_tests =
  List.map (fun t -> QCheck_alcotest.to_alcotest t)
    [ prop_svd_scale_invariance; prop_predictor_row_permutation_invariant ]

let suites =
  [
    ( "edge-cases",
      List.map (fun (name, f) -> Alcotest.test_case name `Quick f) unit_tests
      @ property_tests );
  ]
