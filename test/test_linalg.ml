(* Unit and property tests for the dense linear-algebra substrate. *)

let mat = Linalg.Mat.of_arrays

let check_float = Alcotest.(check (float 1e-9))

let check_close ?(tol = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > tol then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

let check_mat_close ?(tol = 1e-9) msg a b =
  if not (Linalg.Mat.equal ~tol a b) then
    Alcotest.failf "%s: matrices differ (max delta %g)" msg
      (Linalg.Mat.norm_inf (Linalg.Mat.sub a b))

(* A deterministic light-weight PRNG for matrix generation in tests
   (independent of the library's own rng so the substrates do not test
   themselves with themselves). *)
let lcg_state = ref 42

let lcg_float () =
  lcg_state := ((!lcg_state * 1103515245) + 12345) land 0x3FFFFFFF;
  (float_of_int !lcg_state /. float_of_int 0x3FFFFFFF *. 2.0) -. 1.0

let random_mat m n =
  Linalg.Mat.init m n (fun _ _ -> lcg_float ())

let random_low_rank m n r =
  let a = random_mat m r in
  let b = random_mat r n in
  Linalg.Mat.mul a b

let is_orthonormal_cols ?(tol = 1e-8) q =
  let _, k = Linalg.Mat.dims q in
  let g = Linalg.Mat.mul_tn q q in
  Linalg.Mat.equal ~tol g (Linalg.Mat.identity k)

(* ------------------------------------------------------------------ *)
(* Vec *)

let test_vec_dot () =
  check_float "dot" 32.0 (Linalg.Vec.dot [| 1.; 2.; 3. |] [| 4.; 5.; 6. |])

let test_vec_norms () =
  check_float "norm2" 5.0 (Linalg.Vec.norm2 [| 3.; 4. |]);
  check_float "norm1" 7.0 (Linalg.Vec.norm1 [| 3.; -4. |]);
  check_float "norm_inf" 4.0 (Linalg.Vec.norm_inf [| 3.; -4. |]);
  check_float "empty norm" 0.0 (Linalg.Vec.norm2 [||])

let test_vec_norm2_no_overflow () =
  let big = 1e200 in
  check_close ~tol:1e186 "scaled norm" (big *. sqrt 2.0)
    (Linalg.Vec.norm2 [| big; big |])

let test_vec_axpy () =
  let y = [| 1.0; 1.0 |] in
  Linalg.Vec.axpy 2.0 [| 3.0; 4.0 |] y;
  check_float "axpy.0" 7.0 y.(0);
  check_float "axpy.1" 9.0 y.(1)

let test_vec_stats () =
  check_float "sum" 6.0 (Linalg.Vec.sum [| 1.; 2.; 3. |]);
  check_float "mean" 2.0 (Linalg.Vec.mean [| 1.; 2.; 3. |]);
  check_float "max" 3.0 (Linalg.Vec.max_elt [| 1.; 3.; 2. |]);
  check_float "min" 1.0 (Linalg.Vec.min_elt [| 1.; 3.; 2. |]);
  Alcotest.(check int) "argmax" 1 (Linalg.Vec.argmax [| 1.; 3.; 2. |])

let test_vec_mismatch () =
  Alcotest.check_raises "dot mismatch"
    (Invalid_argument "Vec.dot: dimensions 2 and 3 differ") (fun () ->
      ignore (Linalg.Vec.dot [| 1.; 2. |] [| 1.; 2.; 3. |]))

(* ------------------------------------------------------------------ *)
(* Mat *)

let test_mat_mul () =
  let a = mat [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  let b = mat [| [| 5.; 6. |]; [| 7.; 8. |] |] in
  let c = Linalg.Mat.mul a b in
  check_mat_close "2x2 product" (mat [| [| 19.; 22. |]; [| 43.; 50. |] |]) c

let test_mat_mul_rect () =
  let a = random_mat 7 5 in
  let b = random_mat 5 3 in
  let c = Linalg.Mat.mul a b in
  let c' =
    Linalg.Mat.init 7 3 (fun i j ->
        Linalg.Vec.dot (Linalg.Mat.row a i) (Linalg.Mat.col b j))
  in
  check_mat_close "rect product" c' c

let test_mat_mul_nt_tn () =
  let a = random_mat 6 4 in
  let b = random_mat 5 4 in
  check_mat_close "mul_nt"
    (Linalg.Mat.mul a (Linalg.Mat.transpose b))
    (Linalg.Mat.mul_nt a b);
  let b2 = random_mat 6 3 in
  check_mat_close "mul_tn"
    (Linalg.Mat.mul (Linalg.Mat.transpose a) b2)
    (Linalg.Mat.mul_tn a b2)

let test_mat_gram () =
  let a = random_mat 5 7 in
  check_mat_close "gram" (Linalg.Mat.mul_nt a a) (Linalg.Mat.gram a)

let test_mat_apply () =
  let a = mat [| [| 1.; 2.; 3. |]; [| 4.; 5.; 6. |] |] in
  let y = Linalg.Mat.apply a [| 1.; 1.; 1. |] in
  check_float "apply.0" 6.0 y.(0);
  check_float "apply.1" 15.0 y.(1);
  let z = Linalg.Mat.apply_t a [| 1.; 1. |] in
  check_float "apply_t.0" 5.0 z.(0);
  check_float "apply_t.2" 9.0 z.(2)

let test_mat_select_drop () =
  let a = random_mat 6 3 in
  let idx = [| 4; 1 |] in
  let sel = Linalg.Mat.select_rows a idx in
  check_mat_close "select row 0" (mat [| Linalg.Mat.row a 4 |])
    (mat [| Linalg.Mat.row sel 0 |]);
  let dropped = Linalg.Mat.drop_rows a idx in
  Alcotest.(check int) "drop count" 4 (fst (Linalg.Mat.dims dropped));
  check_mat_close "drop keeps order" (mat [| Linalg.Mat.row a 0 |])
    (mat [| Linalg.Mat.row dropped 0 |]);
  check_mat_close "drop keeps order 2" (mat [| Linalg.Mat.row a 2 |])
    (mat [| Linalg.Mat.row dropped 1 |])

let test_mat_cat () =
  let a = random_mat 2 3 in
  let b = random_mat 2 2 in
  let h = Linalg.Mat.hcat a b in
  Alcotest.(check (pair int int)) "hcat dims" (2, 5) (Linalg.Mat.dims h);
  check_close "hcat entry" (Linalg.Mat.get b 1 1) (Linalg.Mat.get h 1 4);
  let c = random_mat 3 3 in
  let v = Linalg.Mat.vcat a c in
  Alcotest.(check (pair int int)) "vcat dims" (5, 3) (Linalg.Mat.dims v);
  check_close "vcat entry" (Linalg.Mat.get c 2 0) (Linalg.Mat.get v 4 0)

let test_mat_transpose_involution () =
  let a = random_mat 4 7 in
  check_mat_close "transpose^2" a Linalg.Mat.(transpose (transpose a))

let test_mat_row_norms () =
  let a = mat [| [| 3.; 4. |]; [| 0.; 0. |] |] in
  let n = Linalg.Mat.row_norms2 a in
  check_float "row norm 0" 5.0 n.(0);
  check_float "row norm 1" 0.0 n.(1)

(* ------------------------------------------------------------------ *)
(* LU *)

let test_lu_solve () =
  let a = mat [| [| 4.; 3. |]; [| 6.; 3. |] |] in
  let x = Linalg.Lu.solve_system a [| 10.; 12. |] in
  check_close "x0" 1.0 x.(0);
  check_close "x1" 2.0 x.(1)

let test_lu_det () =
  let a = mat [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  check_close "det" (-2.0) (Linalg.Lu.det (Linalg.Lu.factor a));
  let p = mat [| [| 0.; 1. |]; [| 1.; 0. |] |] in
  check_close "det permutation" (-1.0) (Linalg.Lu.det (Linalg.Lu.factor p))

let test_lu_inverse () =
  let a = random_mat 8 8 in
  let inv = Linalg.Lu.inverse a in
  check_mat_close ~tol:1e-8 "a * a^-1" (Linalg.Mat.identity 8) (Linalg.Mat.mul a inv)

let test_lu_singular () =
  let a = mat [| [| 1.; 2. |]; [| 2.; 4. |] |] in
  Alcotest.check_raises "singular" Linalg.Lu.Singular (fun () ->
      ignore (Linalg.Lu.solve_system a [| 1.; 1. |]))

(* ------------------------------------------------------------------ *)
(* Cholesky *)

let test_cholesky_roundtrip () =
  let b = random_mat 6 6 in
  let a = Linalg.Mat.add (Linalg.Mat.gram b) (Linalg.Mat.scale 0.5 (Linalg.Mat.identity 6)) in
  let l = Linalg.Cholesky.factor a in
  check_mat_close ~tol:1e-8 "l l^T" a (Linalg.Mat.mul_nt l l);
  let x_true = Array.init 6 (fun i -> float_of_int (i + 1)) in
  let bvec = Linalg.Mat.apply a x_true in
  let x = Linalg.Cholesky.solve l bvec in
  Alcotest.(check bool) "solve" true (Linalg.Vec.equal ~tol:1e-7 x_true x)

let test_cholesky_not_pd () =
  let a = mat [| [| 1.; 2. |]; [| 2.; 1. |] |] in
  Alcotest.(check bool) "indefinite" false (Linalg.Cholesky.is_positive_definite a)

(* ------------------------------------------------------------------ *)
(* QR *)

let test_qr_reconstruct () =
  let a = random_mat 8 5 in
  let f = Linalg.Qr.factor a in
  let q = Linalg.Qr.q f in
  let r = Linalg.Qr.r f in
  Alcotest.(check bool) "orthonormal q" true (is_orthonormal_cols q);
  check_mat_close ~tol:1e-8 "qr reconstruct" a (Linalg.Mat.mul q r)

let test_qr_pivoted_reconstruct () =
  let a = random_mat 6 9 in
  let f = Linalg.Qr.factor_pivoted a in
  let q = Linalg.Qr.q f in
  let r = Linalg.Qr.r f in
  let perm = Linalg.Qr.perm f in
  let ap = Linalg.Mat.select_cols a perm in
  Alcotest.(check bool) "orthonormal q" true (is_orthonormal_cols q);
  check_mat_close ~tol:1e-8 "pivoted reconstruct" ap (Linalg.Mat.mul q r)

let test_qr_pivot_decreasing_diag () =
  let a = random_mat 10 10 in
  let f = Linalg.Qr.factor_pivoted a in
  let r = Linalg.Qr.r f in
  let d = Array.map Float.abs (Linalg.Mat.diag r) in
  for i = 0 to Array.length d - 2 do
    if d.(i + 1) > d.(i) +. 1e-9 then
      Alcotest.failf "pivoted diagonal not non-increasing at %d: %g < %g" i d.(i) d.(i + 1)
  done

let test_qr_rank_detection () =
  let a = random_low_rank 12 9 4 in
  Alcotest.(check int) "pivoted qr rank" 4 (Linalg.Rank.of_mat_qr a)

let test_qr_lstsq () =
  let a = random_mat 12 5 in
  let x_true = Array.init 5 (fun i -> float_of_int i -. 2.0) in
  let b = Linalg.Mat.apply a x_true in
  let x = Linalg.Qr.solve_lstsq (Linalg.Qr.factor a) b in
  Alcotest.(check bool) "recover exact" true (Linalg.Vec.equal ~tol:1e-8 x_true x)

let test_qr_lstsq_residual_orthogonal () =
  (* The least-squares residual must be orthogonal to the column space. *)
  let a = random_mat 10 4 in
  let b = Array.init 10 (fun _ -> lcg_float ()) in
  let x = Linalg.Lstsq.solve a b in
  let r = Linalg.Vec.sub (Linalg.Mat.apply a x) b in
  let g = Linalg.Mat.apply_t a r in
  check_close ~tol:1e-8 "A^T r = 0" 0.0 (Linalg.Vec.norm_inf g)

let test_qr_apply_qt () =
  let a = random_mat 7 4 in
  let f = Linalg.Qr.factor a in
  let b = Array.init 7 (fun _ -> lcg_float ()) in
  (* ||Q^T b|| over the first k entries must match ||Q Q^T b|| etc.; simplest
     check: Q^T preserves the norm of vectors in the full space. *)
  let y = Linalg.Qr.apply_qt f b in
  check_close ~tol:1e-8 "norm preserved" (Linalg.Vec.norm2 b) (Linalg.Vec.norm2 y)

(* ------------------------------------------------------------------ *)
(* SVD *)

let test_svd_known () =
  (* diag(3, 2) has singular values 3, 2 *)
  let a = mat [| [| 3.; 0. |]; [| 0.; 2. |] |] in
  let f = Linalg.Svd.factor a in
  check_close "s0" 3.0 f.s.(0);
  check_close "s1" 2.0 f.s.(1)

let test_svd_reconstruct_tall () =
  let a = random_mat 10 6 in
  let f = Linalg.Svd.factor a in
  check_mat_close ~tol:1e-8 "reconstruct" a (Linalg.Svd.reconstruct f);
  Alcotest.(check bool) "u orthonormal" true (is_orthonormal_cols f.u);
  Alcotest.(check bool) "v orthonormal" true (is_orthonormal_cols f.v)

let test_svd_reconstruct_wide () =
  let a = random_mat 5 11 in
  let f = Linalg.Svd.factor a in
  check_mat_close ~tol:1e-8 "reconstruct wide" a (Linalg.Svd.reconstruct f);
  Alcotest.(check bool) "u orthonormal" true (is_orthonormal_cols f.u);
  Alcotest.(check bool) "v orthonormal" true (is_orthonormal_cols f.v)

let test_svd_ordering () =
  let a = random_mat 9 9 in
  let f = Linalg.Svd.factor a in
  Array.iteri
    (fun i s ->
      if i > 0 && s > f.s.(i - 1) +. 1e-12 then
        Alcotest.failf "singular values not sorted at %d" i)
    f.s

let test_svd_rank () =
  let a = random_low_rank 14 10 3 in
  Alcotest.(check int) "svd rank" 3 (Linalg.Rank.of_mat a)

let test_svd_vs_jacobi () =
  let a = random_mat 8 6 in
  let f1 = Linalg.Svd.factor a in
  let f2 = Linalg.Svd.factor_jacobi a in
  Alcotest.(check bool) "spectra agree" true
    (Linalg.Vec.equal ~tol:1e-7 f1.s f2.s)

let test_svd_frobenius_identity () =
  let a = random_mat 7 9 in
  let f = Linalg.Svd.factor a in
  let fro2 = Array.fold_left (fun acc s -> acc +. (s *. s)) 0.0 f.s in
  check_close ~tol:1e-8 "sum s^2 = ||A||_F^2"
    (Linalg.Mat.frobenius a ** 2.0) fro2

let test_svd_zero_matrix () =
  let f = Linalg.Svd.factor (Linalg.Mat.create 4 3) in
  check_close "all zero" 0.0 (Linalg.Vec.norm_inf f.s);
  Alcotest.(check int) "rank 0" 0 (Linalg.Svd.rank f)

let test_pinv_moore_penrose () =
  let a = random_low_rank 8 6 3 in
  let p = Linalg.Pinv.compute a in
  let apa = Linalg.Mat.mul (Linalg.Mat.mul a p) a in
  check_mat_close ~tol:1e-7 "A A+ A = A" a apa;
  let pap = Linalg.Mat.mul (Linalg.Mat.mul p a) p in
  check_mat_close ~tol:1e-7 "A+ A A+ = A+" p pap;
  let ap = Linalg.Mat.mul a p in
  check_mat_close ~tol:1e-7 "(A A+)^T = A A+" (Linalg.Mat.transpose ap) ap

let test_pinv_solve_gram_definite () =
  let b = random_mat 5 5 in
  let g = Linalg.Mat.add (Linalg.Mat.gram b) (Linalg.Mat.identity 5) in
  let rhs = random_mat 5 2 in
  let x = Linalg.Pinv.solve_gram g rhs in
  check_mat_close ~tol:1e-7 "g x = rhs" rhs (Linalg.Mat.mul g x)

let test_pinv_solve_gram_singular () =
  let b = random_low_rank 5 5 2 in
  let g = Linalg.Mat.gram b in
  let rhs = Linalg.Mat.mul g (random_mat 5 1) in
  (* rhs lives in range(g), so the pseudo-solve must satisfy it exactly *)
  let x = Linalg.Pinv.solve_gram g rhs in
  check_mat_close ~tol:1e-6 "singular gram solve" rhs (Linalg.Mat.mul g x)

(* ------------------------------------------------------------------ *)
(* Eigen *)

let test_eigen_known () =
  let a = mat [| [| 2.; 1. |]; [| 1.; 2. |] |] in
  let e = Linalg.Eigen.symmetric a in
  check_close "lambda0" 3.0 e.values.(0);
  check_close "lambda1" 1.0 e.values.(1)

let test_eigen_reconstruct () =
  let b = random_mat 7 7 in
  let a = Linalg.Mat.add b (Linalg.Mat.transpose b) in
  let e = Linalg.Eigen.symmetric a in
  check_mat_close ~tol:1e-7 "eigen reconstruct" a (Linalg.Eigen.reconstruct e);
  Alcotest.(check bool) "orthonormal vectors" true (is_orthonormal_cols e.vectors)

let test_eigen_matches_svd_on_gram () =
  let a = random_mat 6 4 in
  let g = Linalg.Mat.mul_tn a a in
  let e = Linalg.Eigen.symmetric g in
  let f = Linalg.Svd.factor a in
  for i = 0 to 3 do
    check_close ~tol:1e-7 (Printf.sprintf "lambda_%d = s_%d^2" i i)
      (f.s.(i) *. f.s.(i)) e.values.(i)
  done

(* ------------------------------------------------------------------ *)
(* Property tests *)

let qcheck_mat ?(max_dim = 10) () =
  let open QCheck in
  let gen_mat =
    Gen.(
      int_range 1 max_dim >>= fun m ->
      int_range 1 max_dim >>= fun n ->
      array_size (return (m * n)) (float_range (-10.0) 10.0) >|= fun data ->
      Linalg.Mat.init m n (fun i j -> data.((i * n) + j)))
  in
  make ~print:(fun m -> Format.asprintf "%a" Linalg.Mat.pp m) gen_mat

let prop_svd_reconstruct =
  QCheck.Test.make ~count:60 ~name:"svd reconstructs any matrix" (qcheck_mat ())
    (fun a ->
      let f = Linalg.Svd.factor a in
      Linalg.Mat.equal ~tol:1e-6 a (Linalg.Svd.reconstruct f))

let prop_svd_spectral_norm_bound =
  QCheck.Test.make ~count:60 ~name:"largest singular value bounds ||Ax||/||x||"
    (qcheck_mat ()) (fun a ->
      let _, n = Linalg.Mat.dims a in
      let f = Linalg.Svd.factor a in
      let x = Array.init n (fun i -> cos (float_of_int (i + 1))) in
      let lhs = Linalg.Vec.norm2 (Linalg.Mat.apply a x) in
      lhs <= (f.s.(0) *. Linalg.Vec.norm2 x) +. 1e-6)

let prop_qr_reconstruct =
  QCheck.Test.make ~count:60 ~name:"pivoted qr reconstructs" (qcheck_mat ())
    (fun a ->
      let f = Linalg.Qr.factor_pivoted a in
      let ap = Linalg.Mat.select_cols a (Linalg.Qr.perm f) in
      Linalg.Mat.equal ~tol:1e-6 ap (Linalg.Mat.mul (Linalg.Qr.q f) (Linalg.Qr.r f)))

let prop_lu_solve =
  QCheck.Test.make ~count:60 ~name:"lu solves well-conditioned systems"
    QCheck.(pair (int_range 1 8) (array_of_size (Gen.return 64) (float_range (-1.0) 1.0)))
    (fun (n, data) ->
      let a =
        Linalg.Mat.init n n (fun i j ->
            data.(((i * n) + j) mod 64) +. if i = j then float_of_int n else 0.0)
      in
      let x_true = Array.init n (fun i -> float_of_int (i - 1)) in
      let b = Linalg.Mat.apply a x_true in
      let x = Linalg.Lu.solve_system a b in
      Linalg.Vec.equal ~tol:1e-6 x_true x)

let prop_rank_bounded =
  QCheck.Test.make ~count:60 ~name:"rank <= min(m,n)" (qcheck_mat ()) (fun a ->
      let m, n = Linalg.Mat.dims a in
      Linalg.Rank.of_mat a <= min m n)

let prop_pinv_least_squares =
  QCheck.Test.make ~count:40 ~name:"pinv gives a least-squares minimizer"
    (qcheck_mat ~max_dim:6 ()) (fun a ->
      let m, n = Linalg.Mat.dims a in
      let b = Array.init m (fun i -> sin (float_of_int i)) in
      let x = Linalg.Lstsq.solve_min_norm a b in
      let base = Linalg.Lstsq.residual_norm a x b in
      (* perturbing the solution must not reduce the residual *)
      let ok = ref true in
      for j = 0 to n - 1 do
        let x' = Array.copy x in
        x'.(j) <- x'.(j) +. 1e-3;
        if Linalg.Lstsq.residual_norm a x' b < base -. 1e-9 then ok := false
      done;
      !ok)

let unit_tests =
  [
    ("vec: dot", test_vec_dot);
    ("vec: norms", test_vec_norms);
    ("vec: norm2 avoids overflow", test_vec_norm2_no_overflow);
    ("vec: axpy", test_vec_axpy);
    ("vec: stats", test_vec_stats);
    ("vec: dimension mismatch raises", test_vec_mismatch);
    ("mat: 2x2 multiply", test_mat_mul);
    ("mat: rectangular multiply", test_mat_mul_rect);
    ("mat: mul_nt / mul_tn", test_mat_mul_nt_tn);
    ("mat: gram", test_mat_gram);
    ("mat: apply / apply_t", test_mat_apply);
    ("mat: select/drop rows", test_mat_select_drop);
    ("mat: hcat/vcat", test_mat_cat);
    ("mat: transpose involution", test_mat_transpose_involution);
    ("mat: row norms", test_mat_row_norms);
    ("lu: solve 2x2", test_lu_solve);
    ("lu: determinant", test_lu_det);
    ("lu: inverse", test_lu_inverse);
    ("lu: singular raises", test_lu_singular);
    ("cholesky: roundtrip + solve", test_cholesky_roundtrip);
    ("cholesky: rejects indefinite", test_cholesky_not_pd);
    ("qr: reconstruct", test_qr_reconstruct);
    ("qr: pivoted reconstruct", test_qr_pivoted_reconstruct);
    ("qr: pivoted diag non-increasing", test_qr_pivot_decreasing_diag);
    ("qr: rank detection", test_qr_rank_detection);
    ("qr: least squares exact recovery", test_qr_lstsq);
    ("qr: residual orthogonality", test_qr_lstsq_residual_orthogonal);
    ("qr: apply_qt preserves norm", test_qr_apply_qt);
    ("svd: known diagonal", test_svd_known);
    ("svd: reconstruct tall", test_svd_reconstruct_tall);
    ("svd: reconstruct wide", test_svd_reconstruct_wide);
    ("svd: ordering", test_svd_ordering);
    ("svd: rank of low-rank product", test_svd_rank);
    ("svd: agrees with jacobi", test_svd_vs_jacobi);
    ("svd: frobenius identity", test_svd_frobenius_identity);
    ("svd: zero matrix", test_svd_zero_matrix);
    ("pinv: moore-penrose identities", test_pinv_moore_penrose);
    ("pinv: gram solve (definite)", test_pinv_solve_gram_definite);
    ("pinv: gram solve (singular)", test_pinv_solve_gram_singular);
    ("eigen: known 2x2", test_eigen_known);
    ("eigen: reconstruct", test_eigen_reconstruct);
    ("eigen: matches svd on gram", test_eigen_matches_svd_on_gram);
  ]

let property_tests =
  List.map (fun t -> QCheck_alcotest.to_alcotest t)
    [
      prop_svd_reconstruct;
      prop_svd_spectral_norm_bound;
      prop_qr_reconstruct;
      prop_lu_solve;
      prop_rank_bounded;
      prop_pinv_least_squares;
    ]

let suites =
  [
    ( "linalg",
      List.map (fun (name, f) -> Alcotest.test_case name `Quick f) unit_tests
      @ property_tests );
  ]
