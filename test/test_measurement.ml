(* Tests for measurement modelling and the randomized selection path. *)

let check_close ?(tol = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > tol then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

let test_measurement_ideal_identity () =
  let rng = Rng.create 1 in
  check_close "identity" 123.456
    (Timing.Measurement.apply Timing.Measurement.ideal rng 123.456)

let test_measurement_quantization () =
  let m = { Timing.Measurement.quantization_ps = 2.0; jitter_sigma_ps = 0.0;
            offset_ps = 0.0 } in
  let rng = Rng.create 1 in
  check_close "rounds down" 122.0 (Timing.Measurement.apply m rng 122.9);
  check_close "rounds up" 124.0 (Timing.Measurement.apply m rng 123.1);
  (* all outputs on the grid *)
  for i = 0 to 50 do
    let v = Timing.Measurement.apply m rng (100.0 +. (0.37 *. float_of_int i)) in
    let q = v /. 2.0 in
    if Float.abs (q -. Float.round q) > 1e-9 then
      Alcotest.failf "off-grid measurement %g" v
  done

let test_measurement_offset () =
  let m = { Timing.Measurement.quantization_ps = 0.0; jitter_sigma_ps = 0.0;
            offset_ps = 1.5 } in
  let rng = Rng.create 1 in
  check_close "offset added" 101.5 (Timing.Measurement.apply m rng 100.0)

let test_measurement_jitter_statistics () =
  let m = { Timing.Measurement.quantization_ps = 0.0; jitter_sigma_ps = 2.0;
            offset_ps = 0.0 } in
  let rng = Rng.create 5 in
  let xs = Array.init 20_000 (fun _ -> Timing.Measurement.apply m rng 100.0) in
  check_close ~tol:0.1 "mean preserved" 100.0 (Stats.Descriptive.mean xs);
  check_close ~tol:0.1 "sigma = jitter" 2.0 (Stats.Descriptive.stddev xs)

let test_measurement_worst_case () =
  let m = { Timing.Measurement.quantization_ps = 2.0; jitter_sigma_ps = 1.0;
            offset_ps = 0.5 } in
  check_close "bound" (0.5 +. 1.0 +. 3.0) (Timing.Measurement.worst_case_error m ~kappa:3.0)

let test_measurement_error_within_bound () =
  let m = Timing.Measurement.typical_path_ro in
  let bound = Timing.Measurement.worst_case_error m ~kappa:4.0 in
  let rng = Rng.create 9 in
  for _ = 1 to 5_000 do
    let d = 200.0 +. Rng.uniform rng 0.0 100.0 in
    let v = Timing.Measurement.apply m rng d in
    if Float.abs (v -. d) > bound then
      Alcotest.failf "error %.3f above bound %.3f" (Float.abs (v -. d)) bound
  done

let test_measurement_apply_mat () =
  let m = { Timing.Measurement.quantization_ps = 1.0; jitter_sigma_ps = 0.0;
            offset_ps = 0.0 } in
  let rng = Rng.create 2 in
  let input = Linalg.Mat.of_arrays [| [| 1.4; 2.6 |] |] in
  let out = Timing.Measurement.apply_mat m rng input in
  check_close "entry 0" 1.0 (Linalg.Mat.get out 0 0);
  check_close "entry 1" 3.0 (Linalg.Mat.get out 0 1)

(* ------------------------------------------------------------------ *)
(* Randomized selection *)

let fixture =
  lazy
    (let nl =
       Circuit.Generator.generate
         { Circuit.Generator.default with num_gates = 150; num_inputs = 14;
           num_outputs = 12; depth = 10; seed = 8 }
     in
     let model = Timing.Variation.make_model ~levels:3 () in
     Core.Pipeline.prepare ~netlist:nl ~model ~yield_samples:200 ~seed:21 ())

let test_randomized_select_meets_tolerance () =
  let setup = Lazy.force fixture in
  let a = Timing.Paths.a_mat setup.Core.Pipeline.pool in
  let mu = Timing.Paths.mu_paths setup.Core.Pipeline.pool in
  let sel =
    Core.Select.approximate_randomized ~a ~mu ~eps:0.05
      ~t_cons:setup.Core.Pipeline.t_cons ~sketch_rank:40 ()
  in
  Alcotest.(check bool) "eps_r <= eps" true (sel.Core.Select.eps_r <= 0.05)

let test_randomized_select_close_to_exact () =
  let setup = Lazy.force fixture in
  let a = Timing.Paths.a_mat setup.Core.Pipeline.pool in
  let mu = Timing.Paths.mu_paths setup.Core.Pipeline.pool in
  let t_cons = setup.Core.Pipeline.t_cons in
  let exact = Core.Select.approximate ~a ~mu ~eps:0.05 ~t_cons () in
  let rand =
    Core.Select.approximate_randomized ~a ~mu ~eps:0.05 ~t_cons ~sketch_rank:40 ()
  in
  let ne = Array.length exact.Core.Select.indices in
  let nr = Array.length rand.Core.Select.indices in
  if nr > (2 * ne) + 2 then
    Alcotest.failf "randomized selection much larger: %d vs %d" nr ne

let test_randomized_select_deterministic () =
  let setup = Lazy.force fixture in
  let a = Timing.Paths.a_mat setup.Core.Pipeline.pool in
  let mu = Timing.Paths.mu_paths setup.Core.Pipeline.pool in
  let t_cons = setup.Core.Pipeline.t_cons in
  let s1 = Core.Select.approximate_randomized ~a ~mu ~eps:0.05 ~t_cons ~sketch_rank:30 () in
  let s2 = Core.Select.approximate_randomized ~a ~mu ~eps:0.05 ~t_cons ~sketch_rank:30 () in
  Alcotest.(check (array int)) "same selection" s1.Core.Select.indices
    s2.Core.Select.indices

let test_prediction_under_path_ro_measurement () =
  (* end-to-end: typical path-RO measurement error must barely move the
     MC accuracy of the predictor *)
  let setup = Lazy.force fixture in
  let sel = Core.Pipeline.approximate_selection setup ~eps:0.05 in
  let p = sel.Core.Select.predictor in
  let mc = Timing.Monte_carlo.sample (Rng.create 3) setup.Core.Pipeline.pool ~n:800 in
  let d = Timing.Monte_carlo.path_delays mc in
  let rep = Core.Predictor.rep_indices p in
  let rem = Core.Predictor.rem_indices p in
  let truth = Linalg.Mat.select_cols d rem in
  let clean = Linalg.Mat.select_cols d rep in
  let noisy =
    Timing.Measurement.apply_mat Timing.Measurement.typical_path_ro (Rng.create 4) clean
  in
  let m_clean =
    Core.Evaluate.of_predictions ~truth ~predicted:(Core.Predictor.predict_all p ~measured:clean)
  in
  let m_noisy =
    Core.Evaluate.of_predictions ~truth ~predicted:(Core.Predictor.predict_all p ~measured:noisy)
  in
  Alcotest.(check bool)
    (Printf.sprintf "e2 inflation small: %.3f%% -> %.3f%%"
       (100.0 *. m_clean.Core.Evaluate.e2) (100.0 *. m_noisy.Core.Evaluate.e2))
    true
    (m_noisy.Core.Evaluate.e2 < m_clean.Core.Evaluate.e2 +. 0.01)

let unit_tests =
  [
    ("measurement: ideal identity", test_measurement_ideal_identity);
    ("measurement: quantization grid", test_measurement_quantization);
    ("measurement: offset", test_measurement_offset);
    ("measurement: jitter statistics", test_measurement_jitter_statistics);
    ("measurement: worst-case bound formula", test_measurement_worst_case);
    ("measurement: errors within bound", test_measurement_error_within_bound);
    ("measurement: matrix apply", test_measurement_apply_mat);
    ("rsvd-select: meets tolerance", test_randomized_select_meets_tolerance);
    ("rsvd-select: close to exact", test_randomized_select_close_to_exact);
    ("rsvd-select: deterministic", test_randomized_select_deterministic);
    ("e2e: path-RO measurement barely hurts", test_prediction_under_path_ro_measurement);
  ]

let suites =
  [
    ( "measurement",
      List.map (fun (name, f) -> Alcotest.test_case name `Quick f) unit_tests );
  ]
