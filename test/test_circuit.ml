(* Tests for the circuit substrate: cells, netlists, the generator and
   the .bench reader/writer. *)

let pi i = Circuit.Netlist.Pi i

let gout g = Circuit.Netlist.Gate_out g

(* A tiny hand-built netlist used across tests:
   g0 = NAND2(pi0, pi1); g1 = INV(g0); outputs: g1 *)
let tiny () =
  Circuit.Netlist.build ~name:"tiny" ~num_inputs:2
    ~gates:
      [
        ("g0", Circuit.Cell.Nand2, [| pi 0; pi 1 |], (0.2, 0.2));
        ("g1", Circuit.Cell.Inv, [| gout 0 |], (0.6, 0.6));
      ]
    ~outputs:[ gout 1 ]

(* ------------------------------------------------------------------ *)
(* Cell *)

let test_cell_arities () =
  List.iter
    (fun c ->
      let a = Circuit.Cell.arity c in
      if a < 1 || a > 3 then Alcotest.failf "bad arity for %s" (Circuit.Cell.name c))
    Circuit.Cell.all

let test_cell_names_roundtrip () =
  List.iter
    (fun c ->
      match Circuit.Cell.of_name (Circuit.Cell.name c) with
      | Some c' when c = c' -> ()
      | Some _ | None -> Alcotest.failf "name roundtrip failed for %s" (Circuit.Cell.name c))
    Circuit.Cell.all

let test_cell_iscas_aliases () =
  Alcotest.(check bool) "NOT -> Inv" true (Circuit.Cell.of_name "not" = Some Circuit.Cell.Inv);
  Alcotest.(check bool) "NAND -> Nand2" true
    (Circuit.Cell.of_name "NAND" = Some Circuit.Cell.Nand2);
  Alcotest.(check bool) "garbage -> None" true (Circuit.Cell.of_name "FOO" = None)

let test_cell_delay_monotone_in_fanout () =
  List.iter
    (fun c ->
      let d1 = Circuit.Cell.delay c ~fanout:1 in
      let d4 = Circuit.Cell.delay c ~fanout:4 in
      if d4 <= d1 then Alcotest.failf "%s delay not increasing in fanout" (Circuit.Cell.name c);
      if d1 <= 0.0 then Alcotest.failf "%s has non-positive delay" (Circuit.Cell.name c))
    Circuit.Cell.all

let test_cell_sensitivities_positive () =
  List.iter
    (fun c ->
      if Circuit.Cell.leff_sensitivity c <= 0.0 || Circuit.Cell.vt_sensitivity c <= 0.0 then
        Alcotest.failf "%s has non-positive sensitivity" (Circuit.Cell.name c))
    Circuit.Cell.all

(* ------------------------------------------------------------------ *)
(* Netlist *)

let test_netlist_basic () =
  let nl = tiny () in
  Alcotest.(check int) "gates" 2 (Circuit.Netlist.num_gates nl);
  Alcotest.(check int) "inputs" 2 (Circuit.Netlist.num_inputs nl);
  Alcotest.(check int) "depth" 2 (Circuit.Netlist.depth nl);
  Alcotest.(check int) "fanout g0" 1 (Circuit.Netlist.fanout_count nl 0);
  Alcotest.(check int) "fanout g1 (PO)" 1 (Circuit.Netlist.fanout_count nl 1)

let test_netlist_signal_codec () =
  let nl = tiny () in
  let s = gout 1 in
  let code = Circuit.Netlist.encode_signal nl s in
  Alcotest.(check bool) "roundtrip" true (Circuit.Netlist.decode_signal nl code = s);
  Alcotest.(check int) "pi code" 0 (Circuit.Netlist.encode_signal nl (pi 0))

let test_netlist_rejects_forward_ref () =
  Alcotest.(check bool) "forward reference rejected" true
    (match
       Circuit.Netlist.build ~name:"bad" ~num_inputs:1
         ~gates:[ ("g0", Circuit.Cell.Inv, [| gout 1 |], (0.5, 0.5)) ]
         ~outputs:[ gout 0 ]
     with
     | (_ : Circuit.Netlist.t) -> false
     | exception Invalid_argument _ -> true)

let test_netlist_rejects_arity_mismatch () =
  Alcotest.(check bool) "arity mismatch rejected" true
    (match
       Circuit.Netlist.build ~name:"bad" ~num_inputs:2
         ~gates:[ ("g0", Circuit.Cell.Nand2, [| pi 0 |], (0.5, 0.5)) ]
         ~outputs:[ gout 0 ]
     with
     | (_ : Circuit.Netlist.t) -> false
     | exception Invalid_argument _ -> true)

let test_netlist_rejects_dangling_gate () =
  Alcotest.(check bool) "dangling gate rejected" true
    (match
       Circuit.Netlist.build ~name:"bad" ~num_inputs:1
         ~gates:
           [
             ("g0", Circuit.Cell.Inv, [| pi 0 |], (0.5, 0.5));
             ("g1", Circuit.Cell.Inv, [| pi 0 |], (0.5, 0.5));
           ]
         ~outputs:[ gout 0 ]
     with
     | (_ : Circuit.Netlist.t) -> false
     | exception Invalid_argument _ -> true)

let test_netlist_rejects_duplicate_names () =
  Alcotest.(check bool) "duplicate name rejected" true
    (match
       Circuit.Netlist.build ~name:"bad" ~num_inputs:1
         ~gates:
           [
             ("g", Circuit.Cell.Inv, [| pi 0 |], (0.5, 0.5));
             ("g", Circuit.Cell.Inv, [| pi 0 |], (0.5, 0.5));
           ]
         ~outputs:[ gout 0; gout 1 ]
     with
     | (_ : Circuit.Netlist.t) -> false
     | exception Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Generator *)

let test_generator_deterministic () =
  let p = Circuit.Generator.default in
  let a = Circuit.Generator.generate p in
  let b = Circuit.Generator.generate p in
  Alcotest.(check string) "same stats" (Circuit.Netlist.stats a) (Circuit.Netlist.stats b);
  let ga = Circuit.Netlist.gates a and gb = Circuit.Netlist.gates b in
  Array.iteri
    (fun i (g : Circuit.Netlist.gate) ->
      if g.cell <> gb.(i).cell || g.fanin <> gb.(i).fanin then
        Alcotest.failf "gate %d differs between runs" i)
    ga

let test_generator_seed_changes_structure () =
  let a = Circuit.Generator.generate Circuit.Generator.default in
  let b = Circuit.Generator.generate { Circuit.Generator.default with seed = 99 } in
  let ga = Circuit.Netlist.gates a and gb = Circuit.Netlist.gates b in
  let d = ref false in
  Array.iteri (fun i (g : Circuit.Netlist.gate) -> if g.fanin <> gb.(i).fanin then d := true) ga;
  Alcotest.(check bool) "structures differ" true !d

let test_generator_sizes () =
  let p = { Circuit.Generator.default with num_gates = 777; depth = 20 } in
  let nl = Circuit.Generator.generate p in
  Alcotest.(check int) "gate count" 777 (Circuit.Netlist.num_gates nl);
  Alcotest.(check bool) "depth <= target" true (Circuit.Netlist.depth nl <= 20);
  Alcotest.(check bool) "depth close to target" true (Circuit.Netlist.depth nl >= 15)

let test_generator_placement_on_die () =
  let nl = Circuit.Generator.generate Circuit.Generator.default in
  Array.iter
    (fun (g : Circuit.Netlist.gate) ->
      if g.x < 0.0 || g.x > 1.0 || g.y < 0.0 || g.y > 1.0 then
        Alcotest.failf "gate %s off die" g.name)
    (Circuit.Netlist.gates nl)

let test_generator_rejects_bad_params () =
  Alcotest.(check bool) "bad depth rejected" true
    (match Circuit.Generator.generate { Circuit.Generator.default with depth = 0 } with
     | (_ : Circuit.Netlist.t) -> false
     | exception Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Bench IO *)

let sample_bench =
  {|# a small sequential circuit
INPUT(a)
INPUT(b)
OUTPUT(z)
w1 = NAND(a, b)
w2 = NOT(w1)
q = DFF(w2)
z = AND(q, w1)
|}

let test_bench_parse () =
  let nl = Circuit.Bench_io.parse ~name:"sample" sample_bench in
  (* a, b + pseudo-input q -> 3 inputs; z + pseudo-output w2 -> 2 outputs *)
  Alcotest.(check int) "inputs (incl DFF Q)" 3 (Circuit.Netlist.num_inputs nl);
  Alcotest.(check int) "outputs (incl DFF D)" 2 (Array.length (Circuit.Netlist.outputs nl));
  Alcotest.(check int) "gates" 3 (Circuit.Netlist.num_gates nl)

let test_bench_parse_out_of_order () =
  let text = "INPUT(a)\nOUTPUT(z)\nz = NOT(y)\ny = NOT(a)\n" in
  let nl = Circuit.Bench_io.parse ~name:"ooo" text in
  Alcotest.(check int) "gates" 2 (Circuit.Netlist.num_gates nl);
  Alcotest.(check int) "depth" 2 (Circuit.Netlist.depth nl)

let test_bench_wide_gate_decomposition () =
  let text = "INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\nOUTPUT(z)\nz = NAND(a, b, c, d)\n" in
  let nl = Circuit.Bench_io.parse ~name:"wide" text in
  (* 4-input NAND -> 2 AND2 + 1 NAND2 *)
  Alcotest.(check int) "decomposed gates" 3 (Circuit.Netlist.num_gates nl)

let test_bench_parse_errors () =
  let bad = "INPUT(a)\nOUTPUT(z)\nz = FROB(a)\n" in
  Alcotest.(check bool) "unknown function rejected" true
    (match Circuit.Bench_io.parse ~name:"bad" bad with
     | (_ : Circuit.Netlist.t) -> false
     | exception Circuit.Bench_io.Parse_error (3, _) -> true
     | exception Circuit.Bench_io.Parse_error _ -> true);
  let undef = "INPUT(a)\nOUTPUT(z)\nz = NOT(ghost)\n" in
  Alcotest.(check bool) "undefined signal rejected" true
    (match Circuit.Bench_io.parse ~name:"bad" undef with
     | (_ : Circuit.Netlist.t) -> false
     | exception Circuit.Bench_io.Parse_error _ -> true)

let test_bench_cycle_detected () =
  let text = "INPUT(a)\nOUTPUT(z)\nz = AND(a, y)\ny = NOT(z)\n" in
  Alcotest.(check bool) "cycle rejected" true
    (match Circuit.Bench_io.parse ~name:"cyc" text with
     | (_ : Circuit.Netlist.t) -> false
     | exception Circuit.Bench_io.Parse_error _ -> true)

let test_bench_roundtrip () =
  let nl = Circuit.Generator.generate { Circuit.Generator.default with num_gates = 60 } in
  let text = Circuit.Bench_io.print nl in
  let nl2 = Circuit.Bench_io.parse ~name:"rt" text in
  Alcotest.(check int) "gates preserved" (Circuit.Netlist.num_gates nl)
    (Circuit.Netlist.num_gates nl2);
  Alcotest.(check int) "inputs preserved" (Circuit.Netlist.num_inputs nl)
    (Circuit.Netlist.num_inputs nl2);
  Alcotest.(check int) "depth preserved" (Circuit.Netlist.depth nl) (Circuit.Netlist.depth nl2)

(* ------------------------------------------------------------------ *)
(* Benchmarks *)

let test_benchmarks_table () =
  Alcotest.(check int) "ten presets" 10 (List.length Circuit.Benchmarks.all);
  match Circuit.Benchmarks.find "s1423" with
  | None -> Alcotest.fail "s1423 missing"
  | Some p ->
    Alcotest.(check int) "s1423 regions" 21 (Circuit.Benchmarks.region_count p);
    (match Circuit.Benchmarks.find "s38417" with
     | None -> Alcotest.fail "s38417 missing"
     | Some big -> Alcotest.(check int) "s38417 regions" 341 (Circuit.Benchmarks.region_count big))

let test_benchmarks_scaled_netlist () =
  match Circuit.Benchmarks.find "s1196" with
  | None -> Alcotest.fail "s1196 missing"
  | Some p ->
    let nl = Circuit.Benchmarks.netlist ~scale:0.25 p in
    let g = Circuit.Netlist.num_gates nl in
    Alcotest.(check bool) "scaled size" true (g > 100 && g < 200)

let prop_generator_valid =
  QCheck.Test.make ~count:25 ~name:"generator output always validates"
    QCheck.(pair (int_range 20 300) (int_range 1 1000))
    (fun (gates, seed) ->
      let p =
        { Circuit.Generator.default with num_gates = gates; seed; depth = 8 }
      in
      (* Netlist.build validates topology/arity/coverage; surviving it is
         the property *)
      let nl = Circuit.Generator.generate p in
      Circuit.Netlist.num_gates nl = gates)

let prop_bench_roundtrip =
  QCheck.Test.make ~count:15 ~name:"bench print/parse preserves structure"
    QCheck.(int_range 1 500)
    (fun seed ->
      let nl =
        Circuit.Generator.generate
          { Circuit.Generator.default with num_gates = 50; seed }
      in
      let nl2 = Circuit.Bench_io.parse ~name:"rt" (Circuit.Bench_io.print nl) in
      Circuit.Netlist.num_gates nl2 = Circuit.Netlist.num_gates nl
      && Circuit.Netlist.depth nl2 = Circuit.Netlist.depth nl)

let unit_tests =
  [
    ("cell: arities", test_cell_arities);
    ("cell: name roundtrip", test_cell_names_roundtrip);
    ("cell: iscas aliases", test_cell_iscas_aliases);
    ("cell: delay monotone in fanout", test_cell_delay_monotone_in_fanout);
    ("cell: positive sensitivities", test_cell_sensitivities_positive);
    ("netlist: basic accessors", test_netlist_basic);
    ("netlist: signal codec", test_netlist_signal_codec);
    ("netlist: rejects forward reference", test_netlist_rejects_forward_ref);
    ("netlist: rejects arity mismatch", test_netlist_rejects_arity_mismatch);
    ("netlist: rejects dangling gate", test_netlist_rejects_dangling_gate);
    ("netlist: rejects duplicate names", test_netlist_rejects_duplicate_names);
    ("generator: deterministic", test_generator_deterministic);
    ("generator: seed changes structure", test_generator_seed_changes_structure);
    ("generator: exact sizes", test_generator_sizes);
    ("generator: placement on die", test_generator_placement_on_die);
    ("generator: rejects bad params", test_generator_rejects_bad_params);
    ("bench: parse with DFF cut", test_bench_parse);
    ("bench: out-of-order definitions", test_bench_parse_out_of_order);
    ("bench: wide gate decomposition", test_bench_wide_gate_decomposition);
    ("bench: parse errors", test_bench_parse_errors);
    ("bench: cycle detected", test_bench_cycle_detected);
    ("bench: roundtrip", test_bench_roundtrip);
    ("benchmarks: paper table presets", test_benchmarks_table);
    ("benchmarks: scaled netlist", test_benchmarks_scaled_netlist);
  ]

let property_tests =
  List.map (fun t -> QCheck_alcotest.to_alcotest t)
    [ prop_generator_valid; prop_bench_roundtrip ]

let suites =
  [
    ( "circuit",
      List.map (fun (name, f) -> Alcotest.test_case name `Quick f) unit_tests
      @ property_tests );
  ]
