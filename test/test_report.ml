(* Tests for the JSON measurement-plan reports. *)

let fixture =
  lazy
    (let nl =
       Circuit.Generator.generate
         { Circuit.Generator.default with num_gates = 120; seed = 19 }
     in
     let model = Timing.Variation.make_model ~levels:3 () in
     Core.Pipeline.prepare ~netlist:nl ~model ~yield_samples:150 ())

let test_json_rendering () =
  let j =
    Core.Report.Obj
      [
        ("a", Core.Report.Int 1);
        ("b", Core.Report.List [ Core.Report.Bool true; Core.Report.Null ]);
        ("c", Core.Report.String "x\"y\\z\n");
        ("d", Core.Report.Float 2.5);
      ]
  in
  Alcotest.(check string) "compact json"
    "{\"a\":1,\"b\":[true,null],\"c\":\"x\\\"y\\\\z\\n\",\"d\":2.5}"
    (Core.Report.to_string j)

let test_json_nonfinite_floats () =
  Alcotest.(check string) "nan -> null" "null"
    (Core.Report.to_string (Core.Report.Float Float.nan));
  Alcotest.(check string) "inf -> null" "null"
    (Core.Report.to_string (Core.Report.Float Float.infinity))

(* a five-minute JSON validity checker: balanced structure via a tiny
   recursive parser (no external deps in tests either) *)
let rec skip_value s i =
  let n = String.length s in
  if i >= n then failwith "eof"
  else
    match s.[i] with
    | '{' -> skip_obj s (i + 1)
    | '[' -> skip_arr s (i + 1)
    | '"' -> skip_string s (i + 1)
    | 't' -> i + 4
    | 'f' -> i + 5
    | 'n' -> i + 4
    | '-' | '0' .. '9' ->
      let j = ref i in
      while
        !j < n
        && (match s.[!j] with
            | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
            | _ -> false)
      do
        incr j
      done;
      !j
    | c -> failwith (Printf.sprintf "unexpected %c" c)

and skip_string s i =
  let n = String.length s in
  let j = ref i in
  while !j < n && s.[!j] <> '"' do
    if s.[!j] = '\\' then j := !j + 2 else incr j
  done;
  if !j >= n then failwith "unterminated string";
  !j + 1

and skip_obj s i =
  if i < String.length s && s.[i] = '}' then i + 1
  else begin
    let rec members i =
      let i = skip_string s (i + 1) in
      if s.[i] <> ':' then failwith "expected :";
      let i = skip_value s (i + 1) in
      match s.[i] with
      | ',' -> members (i + 1)
      | '}' -> i + 1
      | _ -> failwith "expected , or }"
    in
    members i
  end

and skip_arr s i =
  if i < String.length s && s.[i] = ']' then i + 1
  else begin
    let rec elems i =
      let i = skip_value s i in
      match s.[i] with
      | ',' -> elems (i + 1)
      | ']' -> i + 1
      | _ -> failwith "expected , or ]"
    in
    elems i
  end

let check_valid_json s =
  match skip_value s 0 with
  | stop ->
    if stop <> String.length s then Alcotest.failf "trailing garbage at %d" stop
  | exception Failure msg -> Alcotest.failf "invalid json: %s" msg

let test_selection_report_valid () =
  let setup = Lazy.force fixture in
  let sel = Core.Pipeline.approximate_selection setup ~eps:0.05 in
  let j =
    Core.Report.selection_report ~pool:setup.Core.Pipeline.pool
      ~t_cons:setup.Core.Pipeline.t_cons ~eps:0.05 sel
  in
  let s = Core.Report.to_string j in
  check_valid_json s;
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "mentions kind" true (contains s "path-selection")

let test_hybrid_report_valid () =
  let setup = Lazy.force fixture in
  let h = Core.Pipeline.hybrid_selection setup ~eps:0.08 in
  let j =
    Core.Report.hybrid_report ~pool:setup.Core.Pipeline.pool
      ~t_cons:setup.Core.Pipeline.t_cons ~eps:0.08 h
  in
  check_valid_json (Core.Report.to_string j)

let test_write_file () =
  let path = Filename.temp_file "repro_report" ".json" in
  Core.Report.write_file path (Core.Report.Obj [ ("ok", Core.Report.Bool true) ]);
  let ic = open_in path in
  let line = input_line ic in
  close_in ic;
  Sys.remove path;
  Alcotest.(check string) "file contents" "{\"ok\":true}" line

let unit_tests =
  [
    ("report: json rendering", test_json_rendering);
    ("report: non-finite floats", test_json_nonfinite_floats);
    ("report: selection report is valid json", test_selection_report_valid);
    ("report: hybrid report is valid json", test_hybrid_report_valid);
    ("report: write_file", test_write_file);
  ]

let suites =
  [
    ( "report",
      List.map (fun (name, f) -> Alcotest.test_case name `Quick f) unit_tests );
  ]
