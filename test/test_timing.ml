(* Tests for the timing substrate: variation model, delay model, timing
   graph, path extraction, segments/matrices, Monte Carlo. *)

let check_close ?(tol = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > tol then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

let small_netlist () =
  Circuit.Generator.generate
    { Circuit.Generator.default with num_gates = 120; num_inputs = 12;
      num_outputs = 10; depth = 9; seed = 5 }

let model3 () = Timing.Variation.make_model ~levels:3 ()

let small_pool () =
  let nl = small_netlist () in
  let dm = Timing.Delay_model.build nl (model3 ()) in
  let t_cons = Timing.Delay_model.nominal_critical_delay dm in
  let r = Timing.Path_extract.extract dm ~t_cons ~yield_threshold:0.99 in
  (dm, t_cons, Timing.Paths.build dm r.Timing.Path_extract.paths)

(* The paper's Figure 1 circuit: nine gates, four designated paths
   merging at G5, where any three paths determine the fourth. *)
let figure1_pool () =
  let pi i = Circuit.Netlist.Pi i in
  let gout g = Circuit.Netlist.Gate_out g in
  let inv = Circuit.Cell.Inv in
  (* ids:      0   1   2   3   4   5   6   7   8
     names:   G1  G2  G3  G4  G5  G6  G7  G8  G9 *)
  let nl =
    Circuit.Netlist.build ~name:"fig1" ~num_inputs:2
      ~gates:
        [
          ("G1", inv, [| pi 0 |], (0.1, 0.3));
          ("G2", inv, [| pi 1 |], (0.1, 0.7));
          ("G3", inv, [| gout 0 |], (0.3, 0.3));
          ("G4", inv, [| gout 1 |], (0.3, 0.7));
          ("G5", Circuit.Cell.Nand2, [| gout 2; gout 3 |], (0.5, 0.5));
          ("G6", inv, [| gout 4 |], (0.7, 0.7));
          ("G7", inv, [| gout 4 |], (0.7, 0.3));
          ("G8", inv, [| gout 5 |], (0.9, 0.7));
          ("G9", inv, [| gout 6 |], (0.9, 0.3));
        ]
      ~outputs:[ gout 7; gout 8 ]
  in
  let dm = Timing.Delay_model.build nl (model3 ()) in
  (* extract ALL four PI->PO paths: use a very high yield threshold and a
     tiny t_cons so every path qualifies *)
  let r = Timing.Path_extract.extract dm ~t_cons:1.0 ~yield_threshold:0.9999 in
  (dm, Timing.Paths.build dm r.Timing.Path_extract.paths)

(* ------------------------------------------------------------------ *)
(* Variation *)

let test_variation_region_counts () =
  let m3 = model3 () in
  Alcotest.(check int) "3-level regions" 21 (Timing.Variation.region_count m3);
  let m5 = Timing.Variation.make_model ~levels:5 () in
  Alcotest.(check int) "5-level regions" 341 (Timing.Variation.region_count m5)

let test_variation_weights_normalized () =
  let m = Timing.Variation.make_model ~levels:4 ~level_weights:[| 2.0; 1.0; 1.0; 1.0 |] () in
  check_close "weights sum to 1" 1.0 (Array.fold_left ( +. ) 0.0 m.level_weights)

let test_variation_cell_of_position () =
  Alcotest.(check int) "level 0 single cell" 0
    (Timing.Variation.cell_of_position ~level:0 0.73 0.21);
  Alcotest.(check int) "level 1 bottom-left" 0
    (Timing.Variation.cell_of_position ~level:1 0.1 0.1);
  Alcotest.(check int) "level 1 top-right" 3
    (Timing.Variation.cell_of_position ~level:1 0.9 0.9);
  Alcotest.(check int) "boundary clamped" 3
    (Timing.Variation.cell_of_position ~level:1 1.0 1.0)

let test_variation_nearby_gates_share_regions () =
  (* two positions in the same level-2 cell share all correlated vars *)
  let c1 = Timing.Variation.cell_of_position ~level:2 0.30 0.30 in
  let c2 = Timing.Variation.cell_of_position ~level:2 0.26 0.26 in
  Alcotest.(check int) "same cell" c1 c2;
  let far = Timing.Variation.cell_of_position ~level:2 0.9 0.9 in
  Alcotest.(check bool) "far cell differs" true (far <> c1)

let test_variation_validation () =
  Alcotest.(check bool) "levels 0 rejected" true
    (match Timing.Variation.make_model ~levels:0 () with
     | (_ : Timing.Variation.model) -> false
     | exception Invalid_argument _ -> true);
  Alcotest.(check bool) "random_share 1 rejected" true
    (match Timing.Variation.make_model ~levels:2 ~random_share:1.0 () with
     | (_ : Timing.Variation.model) -> false
     | exception Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Delay model *)

let test_delay_model_random_share () =
  let nl = small_netlist () in
  let share = 0.06 in
  let dm = Timing.Delay_model.build nl (model3 ()) in
  (* for every gate, the random variable's variance must be [share] of
     the total *)
  for g = 0 to Circuit.Netlist.num_gates nl - 1 do
    let total = Timing.Delay_model.sigma dm g ** 2.0 in
    let rand_var =
      List.fold_left
        (fun acc (k, c) ->
          match k with
          | Timing.Variation.Gate_random _ -> acc +. (c *. c)
          | Timing.Variation.Region _ -> acc)
        0.0
        (Timing.Delay_model.sensitivities dm g)
    in
    check_close ~tol:1e-9 (Printf.sprintf "gate %d random share" g) share (rand_var /. total)
  done

let test_delay_model_boost_scales_random () =
  let nl = small_netlist () in
  let m1 = Timing.Variation.make_model ~levels:3 () in
  let m3 = Timing.Variation.make_model ~levels:3 ~random_boost:3.0 () in
  let d1 = Timing.Delay_model.build nl m1 in
  let d3 = Timing.Delay_model.build nl m3 in
  let rand_coeff dm g =
    List.fold_left
      (fun acc (k, c) ->
        match k with
        | Timing.Variation.Gate_random _ -> acc +. c
        | Timing.Variation.Region _ -> acc)
      0.0
      (Timing.Delay_model.sensitivities dm g)
  in
  check_close ~tol:1e-9 "boost multiplies random coeff" (3.0 *. rand_coeff d1 0)
    (rand_coeff d3 0)

let test_delay_model_nominal_positive () =
  let nl = small_netlist () in
  let dm = Timing.Delay_model.build nl (model3 ()) in
  for g = 0 to Circuit.Netlist.num_gates nl - 1 do
    if Timing.Delay_model.nominal dm g <= 0.0 then Alcotest.failf "gate %d nominal <= 0" g
  done;
  Alcotest.(check bool) "critical delay positive" true
    (Timing.Delay_model.nominal_critical_delay dm > 0.0)

(* ------------------------------------------------------------------ *)
(* Tgraph *)

let test_tgraph_structure () =
  let nl = small_netlist () in
  let tg = Timing.Tgraph.build nl in
  Alcotest.(check int) "node count"
    (Circuit.Netlist.num_inputs nl + Circuit.Netlist.num_gates nl)
    (Timing.Tgraph.num_nodes tg);
  (* arc count = distinct (driver, gate) pairs: pins tied to the same
     net collapse to one timing arc *)
  let arcs = ref 0 in
  for v = 0 to Timing.Tgraph.num_nodes tg - 1 do
    arcs := !arcs + List.length (Timing.Tgraph.arcs_from tg v)
  done;
  let distinct = Hashtbl.create 256 in
  Array.iter
    (fun (g : Circuit.Netlist.gate) ->
      Array.iter (fun src -> Hashtbl.replace distinct (src, g.id) ()) g.fanin)
    (Circuit.Netlist.gates nl);
  Alcotest.(check int) "arc count = distinct driver pairs" (Hashtbl.length distinct) !arcs

let test_tgraph_rest_bounds () =
  let nl = small_netlist () in
  let dm = Timing.Delay_model.build nl (model3 ()) in
  let tg = Timing.Tgraph.build nl in
  let rest = Timing.Tgraph.rest_bounds tg ~gate_value:(Timing.Delay_model.nominal dm) in
  (* max over PIs of rest = critical delay *)
  let best =
    Array.fold_left (fun acc pi -> Float.max acc rest.(pi)) neg_infinity
      (Timing.Tgraph.pi_codes tg)
  in
  check_close ~tol:1e-6 "rest bound at PIs = critical delay"
    (Timing.Delay_model.nominal_critical_delay dm) best

(* ------------------------------------------------------------------ *)
(* Path extraction *)

let test_extract_paths_meet_criterion () =
  let nl = small_netlist () in
  let dm = Timing.Delay_model.build nl (model3 ()) in
  let t_cons = Timing.Delay_model.nominal_critical_delay dm in
  let y = 0.995 in
  let r = Timing.Path_extract.extract dm ~t_cons ~yield_threshold:y in
  Alcotest.(check bool) "some paths" true (r.paths <> []);
  List.iter
    (fun p ->
      let py = Timing.Path_extract.path_yield p ~t_cons in
      if py >= y then Alcotest.failf "extracted path with yield %.5f >= %.5f" py y)
    r.paths

let test_extract_path_delays_consistent () =
  let nl = small_netlist () in
  let dm = Timing.Delay_model.build nl (model3 ()) in
  let t_cons = Timing.Delay_model.nominal_critical_delay dm in
  let r = Timing.Path_extract.extract dm ~t_cons ~yield_threshold:0.99 in
  List.iter
    (fun (p : Timing.Path_extract.path) ->
      let mu =
        Array.fold_left (fun acc g -> acc +. Timing.Delay_model.nominal dm g) 0.0 p.gates
      in
      check_close ~tol:1e-9 "mu = sum of nominals" mu p.mu;
      if p.sigma <= 0.0 then Alcotest.fail "sigma <= 0")
    r.paths

let test_extract_finds_all_without_pruning () =
  (* with an accept-everything criterion, B&B must enumerate every
     PI->PO path of the figure-1 circuit: exactly 4 *)
  let _, pool = figure1_pool () in
  Alcotest.(check int) "figure 1 has 4 paths" 4 (Timing.Paths.num_paths pool)

let test_extract_max_paths_cap () =
  let nl = small_netlist () in
  let dm = Timing.Delay_model.build nl (model3 ()) in
  let r = Timing.Path_extract.extract ~max_paths:5 dm ~t_cons:1.0 ~yield_threshold:0.9999 in
  Alcotest.(check int) "capped" 5 (List.length r.paths);
  Alcotest.(check bool) "flagged truncated" true r.truncated

let test_extract_dedupes_pin_paths () =
  (* two PIs feeding the same NAND give one gate-sequence path, not two *)
  let pi i = Circuit.Netlist.Pi i in
  let gout g = Circuit.Netlist.Gate_out g in
  let nl =
    Circuit.Netlist.build ~name:"dedup" ~num_inputs:2
      ~gates:[ ("g0", Circuit.Cell.Nand2, [| pi 0; pi 1 |], (0.5, 0.5)) ]
      ~outputs:[ gout 0 ]
  in
  let dm = Timing.Delay_model.build nl (model3 ()) in
  let r = Timing.Path_extract.extract dm ~t_cons:1.0 ~yield_threshold:0.9999 in
  Alcotest.(check int) "one unique path" 1 (List.length r.paths)

(* ------------------------------------------------------------------ *)
(* Paths: segments and matrices *)

let test_figure1_segments () =
  (* Figure 1's four paths decompose over segments; the merge at G5
     forces the G5 gate into its own or shared chains such that
     rank(G) = 3, reproducing d_p1 = d_p2 - d_p3 + d_p4 *)
  let _, pool = figure1_pool () in
  let g = Timing.Paths.g_mat pool in
  Alcotest.(check int) "rank(G) = 3" 3 (Linalg.Rank.of_mat g);
  let a = Timing.Paths.a_mat pool in
  Alcotest.(check bool) "rank(A) <= 3" true (Linalg.Rank.of_mat a <= 3)

let test_segments_partition_paths () =
  let _, _, pool = small_pool () in
  for i = 0 to Timing.Paths.num_paths pool - 1 do
    let p = Timing.Paths.path pool i in
    let segs = Timing.Paths.segments_of_path pool i in
    let concat =
      Array.concat (Array.to_list (Array.map (Timing.Paths.segment_gates pool) segs))
    in
    if concat <> p.gates then Alcotest.failf "path %d: segments do not concatenate" i
  done

let test_segments_disjoint_gates () =
  (* every gate belongs to at most one segment *)
  let _, _, pool = small_pool () in
  let seen = Hashtbl.create 256 in
  for s = 0 to Timing.Paths.num_segments pool - 1 do
    Array.iter
      (fun g ->
        match Hashtbl.find_opt seen g with
        | Some s' when s' <> s -> Alcotest.failf "gate %d in segments %d and %d" g s s'
        | Some _ | None -> Hashtbl.replace seen g s)
      (Timing.Paths.segment_gates pool s)
  done

let test_a_equals_g_sigma () =
  let _, _, pool = small_pool () in
  let a = Timing.Paths.a_mat pool in
  let gs = Linalg.Mat.mul (Timing.Paths.g_mat pool) (Timing.Paths.sigma_mat pool) in
  Alcotest.(check bool) "A = G Sigma" true (Linalg.Mat.equal ~tol:1e-9 a gs)

let test_a_matches_direct_rows () =
  let _, _, pool = small_pool () in
  let a = Timing.Paths.a_mat pool in
  for i = 0 to min 30 (Timing.Paths.num_paths pool - 1) do
    let direct = Timing.Paths.path_row pool i in
    if not (Linalg.Vec.equal ~tol:1e-9 direct (Linalg.Mat.row a i)) then
      Alcotest.failf "path %d row mismatch" i
  done

let test_mu_paths_equals_g_mu_segments () =
  let _, _, pool = small_pool () in
  let mu = Timing.Paths.mu_paths pool in
  let gmu = Linalg.Mat.apply (Timing.Paths.g_mat pool) (Timing.Paths.mu_segments pool) in
  Alcotest.(check bool) "mu_P = G mu_S" true (Linalg.Vec.equal ~tol:1e-7 mu gmu)

let test_path_sigma_matches_row_norm () =
  let _, _, pool = small_pool () in
  let a = Timing.Paths.a_mat pool in
  let norms = Linalg.Mat.row_norms2 a in
  for i = 0 to Timing.Paths.num_paths pool - 1 do
    let p = Timing.Paths.path pool i in
    check_close ~tol:1e-7 (Printf.sprintf "path %d sigma" i) p.sigma norms.(i)
  done

let test_rank_bounded_by_segments () =
  (* Lemma 1: rank(A) <= n_S *)
  let _, _, pool = small_pool () in
  let r = Linalg.Rank.of_mat (Timing.Paths.a_mat pool) in
  Alcotest.(check bool) "rank(A) <= n_S" true (r <= Timing.Paths.num_segments pool)

let test_covered_counts () =
  let _, _, pool = small_pool () in
  let n_gates_covered = Timing.Paths.covered_gates pool in
  let n_regions = Timing.Paths.covered_regions pool in
  (* m = |G_C| + 2 |R_C| as in the paper's variable accounting *)
  Alcotest.(check int) "variable count"
    (n_gates_covered + (2 * n_regions))
    (Timing.Paths.num_vars pool)

(* ------------------------------------------------------------------ *)
(* Monte Carlo *)

let test_mc_path_delay_moments () =
  let _, _, pool = small_pool () in
  let mc = Timing.Monte_carlo.sample (Rng.create 3) pool ~n:4000 in
  let d = Timing.Monte_carlo.path_delays mc in
  let mu = Timing.Paths.mu_paths pool in
  let a = Timing.Paths.a_mat pool in
  let sigmas = Linalg.Mat.row_norms2 a in
  (* check the first path's empirical mean and std against the model *)
  let col = Linalg.Mat.col d 0 in
  check_close ~tol:(4.0 *. sigmas.(0) /. sqrt 4000.0) "mean" mu.(0)
    (Stats.Descriptive.mean col);
  let sd = Stats.Descriptive.stddev col in
  if Float.abs (sd -. sigmas.(0)) > 0.1 *. sigmas.(0) then
    Alcotest.failf "std %.3f vs model %.3f" sd sigmas.(0)

let test_mc_paths_vs_segments_consistent () =
  (* path delay must equal the sum of its segment delays, per sample *)
  let _, _, pool = small_pool () in
  let mc = Timing.Monte_carlo.sample (Rng.create 11) pool ~n:50 in
  let dp = Timing.Monte_carlo.path_delays mc in
  let ds = Timing.Monte_carlo.segment_delays mc in
  for i = 0 to min 20 (Timing.Paths.num_paths pool - 1) do
    let segs = Timing.Paths.segments_of_path pool i in
    for k = 0 to 49 do
      let sum = Array.fold_left (fun acc s -> acc +. Linalg.Mat.get ds k s) 0.0 segs in
      check_close ~tol:1e-7 "d_path = sum d_segments" (Linalg.Mat.get dp k i) sum
    done
  done

let test_mc_circuit_yield_sane () =
  let nl = small_netlist () in
  let dm = Timing.Delay_model.build nl (model3 ()) in
  let t = Timing.Delay_model.nominal_critical_delay dm in
  let y_tight = Timing.Monte_carlo.circuit_yield dm ~t_cons:t ~rng:(Rng.create 1) ~samples:300 in
  let y_loose =
    Timing.Monte_carlo.circuit_yield dm ~t_cons:(1.3 *. t) ~rng:(Rng.create 1) ~samples:300
  in
  Alcotest.(check bool) "tight < loose" true (y_tight < y_loose);
  Alcotest.(check bool) "loose near 1" true (y_loose > 0.95)

let prop_extraction_threshold_monotone =
  QCheck.Test.make ~count:8 ~name:"stricter yield threshold extracts fewer paths"
    QCheck.(int_range 1 100)
    (fun seed ->
      let nl =
        Circuit.Generator.generate
          { Circuit.Generator.default with num_gates = 100; seed; depth = 8 }
      in
      let dm = Timing.Delay_model.build nl (model3 ()) in
      let t = Timing.Delay_model.nominal_critical_delay dm in
      let n_at y =
        List.length (Timing.Path_extract.extract dm ~t_cons:t ~yield_threshold:y).paths
      in
      n_at 0.9 <= n_at 0.99)

let unit_tests =
  [
    ("variation: region counts 21/341", test_variation_region_counts);
    ("variation: weights normalized", test_variation_weights_normalized);
    ("variation: quadtree cell lookup", test_variation_cell_of_position);
    ("variation: locality shares regions", test_variation_nearby_gates_share_regions);
    ("variation: validation", test_variation_validation);
    ("delay: random share is 6%", test_delay_model_random_share);
    ("delay: boost scales random term", test_delay_model_boost_scales_random);
    ("delay: positive nominals", test_delay_model_nominal_positive);
    ("tgraph: structure", test_tgraph_structure);
    ("tgraph: rest bounds = critical delay", test_tgraph_rest_bounds);
    ("extract: paths meet yield criterion", test_extract_paths_meet_criterion);
    ("extract: delays consistent", test_extract_path_delays_consistent);
    ("extract: figure-1 enumerates all 4", test_extract_finds_all_without_pruning);
    ("extract: max_paths cap", test_extract_max_paths_cap);
    ("extract: dedupes pin-level paths", test_extract_dedupes_pin_paths);
    ("paths: figure-1 rank(G) = 3", test_figure1_segments);
    ("paths: segments partition each path", test_segments_partition_paths);
    ("paths: segments have disjoint gates", test_segments_disjoint_gates);
    ("paths: A = G Sigma", test_a_equals_g_sigma);
    ("paths: A matches direct rows", test_a_matches_direct_rows);
    ("paths: mu_P = G mu_S", test_mu_paths_equals_g_mu_segments);
    ("paths: path sigma = row norm", test_path_sigma_matches_row_norm);
    ("paths: Lemma 1 rank(A) <= n_S", test_rank_bounded_by_segments);
    ("paths: variable accounting |G_C| + 2|R_C|", test_covered_counts);
    ("mc: path delay moments", test_mc_path_delay_moments);
    ("mc: paths = sum of segments per die", test_mc_paths_vs_segments_consistent);
    ("mc: circuit yield sane", test_mc_circuit_yield_sane);
  ]

let property_tests =
  List.map (fun t -> QCheck_alcotest.to_alcotest t) [ prop_extraction_threshold_monotone ]

let suites =
  [
    ( "timing",
      List.map (fun (name, f) -> Alcotest.test_case name `Quick f) unit_tests
      @ property_tests );
  ]
