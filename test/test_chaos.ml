(* The fault-injecting proxy: spec parsing, transparency when no fault
   is armed, and the core serving invariant under each injector — a
   mangled wire can fail a request but can never change an answer. *)

let artifact =
  lazy
    (let nl =
       Circuit.Generator.generate
         { Circuit.Generator.default with num_gates = 90; seed = 23; depth = 8;
           num_inputs = 10; num_outputs = 8 }
     in
     let model = Timing.Variation.make_model ~levels:3 () in
     let dm = Timing.Delay_model.build nl model in
     let t_cons = Timing.Delay_model.nominal_critical_delay dm in
     let r =
       Timing.Path_extract.extract ~max_paths:400 dm ~t_cons ~yield_threshold:0.99
     in
     let pool = Timing.Paths.build dm r.Timing.Path_extract.paths in
     let a = Timing.Paths.a_mat pool in
     let mu = Timing.Paths.mu_paths pool in
     let sel = Core.Select.exact ~a ~mu () in
     let mc = Timing.Monte_carlo.sample (Rng.create 7) pool ~n:12 in
     let d = Timing.Monte_carlo.path_delays mc in
     let rep = Core.Predictor.rep_indices sel.Core.Select.predictor in
     let clean = Linalg.Mat.select_cols d rep in
     let store =
       Store.of_selection ~fingerprint:"test:chaos"
         ~n_segments:(Timing.Paths.num_segments pool)
         ~t_cons ~eps:0.05 ~a ~mu sel
     in
     (store, clean))

let bits_equal m1 m2 =
  Linalg.Mat.dims m1 = Linalg.Mat.dims m2
  &&
  let r, c = Linalg.Mat.dims m1 in
  try
    for i = 0 to r - 1 do
      for j = 0 to c - 1 do
        if
          Int64.bits_of_float (Linalg.Mat.get m1 i j)
          <> Int64.bits_of_float (Linalg.Mat.get m2 i j)
        then raise Exit
      done
    done;
    true
  with Exit -> false

(* real server on a thread, proxy in front, both torn down afterwards *)
let with_stack ?seed ?eintr_pid spec f =
  let store, clean = Lazy.force artifact in
  let dir = Filename.temp_file "pathsel-chaos" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let s_addr = Serve.Unix_sock (Filename.concat dir "s.sock") in
  let thread =
    Thread.create (fun () -> Serve.run ~install_signals:false store s_addr) ()
  in
  (* wait for the server socket before pointing the proxy at it *)
  (let c = Serve.Client.connect s_addr in
   Serve.Client.close c);
  let proxy =
    Chaos.start ?seed ?eintr_pid spec
      ~listen:(Serve.Unix_sock (Filename.concat dir "p.sock"))
      ~upstream:s_addr
  in
  Fun.protect
    ~finally:(fun () ->
      Chaos.stop proxy;
      (try
         let c = Serve.Client.connect ~retries:5 s_addr in
         Serve.Client.shutdown c;
         Serve.Client.close c
       with _ -> ());
      Thread.join thread;
      Array.iter
        (fun e -> try Sys.remove (Filename.concat dir e) with Sys_error _ -> ())
        (Sys.readdir dir);
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () ->
      let expected =
        Core.Predictor.predict_all (Store.predictor store) ~measured:clean
      in
      f proxy (Chaos.bound_addr proxy) clean expected)

(* ------------------------------------------------------------------ *)

let test_spec_strings () =
  (match Chaos.of_string "" with
   | Ok s -> Alcotest.(check bool) "empty spec is none" true (s = Chaos.none)
   | Error m -> Alcotest.failf "empty spec rejected: %s" m);
  (match Chaos.of_string "delay=2,jitter=5,corrupt=0.25,stall=0.1,eintr=3" with
   | Ok s ->
     Alcotest.(check (float 0.0)) "delay" 2.0 s.Chaos.delay_ms;
     Alcotest.(check (float 0.0)) "jitter" 5.0 s.Chaos.jitter_ms;
     Alcotest.(check (float 0.0)) "corrupt" 0.25 s.Chaos.corrupt;
     Alcotest.(check (float 0.0)) "stall" 0.1 s.Chaos.stall;
     Alcotest.(check int) "eintr" 3 s.Chaos.eintr_burst;
     (* to_string emits only non-defaults and round-trips *)
     (match Chaos.of_string (Chaos.to_string s) with
      | Ok s' -> Alcotest.(check bool) "round trip" true (s = s')
      | Error m -> Alcotest.failf "round trip rejected: %s" m)
   | Error m -> Alcotest.failf "spec rejected: %s" m);
  List.iter
    (fun bad ->
      match Chaos.of_string bad with
      | Ok _ -> Alcotest.failf "bad spec %S accepted" bad
      | Error _ -> ())
    [ "corrupt=1.5"; "delay=-1"; "frobnicate=1"; "corrupt=sideways"; "stall" ]

let test_transparent_proxy () =
  with_stack Chaos.none (fun proxy addr clean expected ->
      let c = Serve.Client.connect addr in
      Fun.protect ~finally:(fun () -> Serve.Client.close c) @@ fun () ->
      Alcotest.(check bool) "ping through proxy" true (Serve.Client.ping c);
      (match Serve.Client.predict c clean with
       | Ok (m, _) ->
         Alcotest.(check bool) "bit-identical through proxy" true
           (bits_equal m expected)
       | Error m -> Alcotest.failf "predict through idle proxy failed: %s" m);
      let st = Chaos.stats proxy in
      Alcotest.(check bool) "connections counted" true (st.Chaos.connections >= 1);
      Alcotest.(check bool) "chunks counted" true (st.Chaos.chunks >= 2);
      Alcotest.(check bool) "no faults fired" true
        (st.Chaos.corrupted = 0 && st.Chaos.stalled = 0
        && st.Chaos.disconnected = 0))

(* corruption can only break a frame, never alter an answer: with every
   chunk corrupted, requests must fail — not return different bits *)
let test_corrupt_never_wrong () =
  with_stack { Chaos.none with Chaos.corrupt = 1.0 }
    (fun proxy addr clean expected ->
      for _ = 1 to 3 do
        let c = Serve.Client.connect addr in
        (match Serve.Client.predict ~deadline:5.0 c clean with
         | Ok (m, _) ->
           if not (bits_equal m expected) then
             Alcotest.fail "corrupted wire produced a WRONG answer"
         | Error _ -> ());
        Serve.Client.close c
      done;
      Alcotest.(check bool) "corruption fired" true
        ((Chaos.stats proxy).Chaos.corrupted >= 1))

let test_partial_write_reassembles () =
  with_stack
    { Chaos.none with Chaos.partial_write = 1.0; delay_ms = 1.0 }
    (fun proxy addr clean expected ->
      let c = Serve.Client.connect addr in
      Fun.protect ~finally:(fun () -> Serve.Client.close c) @@ fun () ->
      (match Serve.Client.predict ~deadline:10.0 c clean with
       | Ok (m, _) ->
         Alcotest.(check bool) "bit-identical through fragments" true
           (bits_equal m expected)
       | Error m -> Alcotest.failf "fragmented predict failed: %s" m);
      Alcotest.(check bool) "fragmenting fired" true
        ((Chaos.stats proxy).Chaos.partial_writes >= 1))

let test_stall_times_out () =
  with_stack { Chaos.none with Chaos.stall = 1.0 }
    (fun proxy addr clean _expected ->
      let c = Serve.Client.connect addr in
      Fun.protect ~finally:(fun () -> Serve.Client.close c) @@ fun () ->
      (match Serve.Client.predict ~deadline:0.5 c clean with
       | Ok _ -> Alcotest.fail "stalled connection answered"
       | Error _ -> ());
      Alcotest.(check bool) "stall fired" true
        ((Chaos.stats proxy).Chaos.stalled >= 1))

let test_disconnect_fails_cleanly () =
  with_stack { Chaos.none with Chaos.disconnect = 1.0 }
    (fun proxy addr clean _expected ->
      let c = Serve.Client.connect addr in
      Fun.protect ~finally:(fun () -> Serve.Client.close c) @@ fun () ->
      (match Serve.Client.predict ~deadline:2.0 c clean with
       | Ok _ -> Alcotest.fail "dropped link answered"
       | Error _ -> ());
      Alcotest.(check bool) "disconnect fired" true
        ((Chaos.stats proxy).Chaos.disconnected >= 1))

(* with a fixed proxy seed the outcome is deterministic: bounded
   retries push a clean batch through a flaky wire *)
let test_retry_wins_through_faults () =
  with_stack ~seed:4242
    { Chaos.none with Chaos.corrupt = 0.25; disconnect = 0.1 }
    (fun _proxy addr clean expected ->
      let retry =
        { Serve.Client.attempts = 15; base_delay = 0.01; max_delay = 0.2;
          connect_timeout = 5.0; deadline = 5.0 }
      in
      match
        Serve.Client.predict_with_retry ~retry ~rng:(Rng.create 11) addr clean
      with
      | Ok (m, _) ->
        Alcotest.(check bool) "bit-identical after retries" true
          (bits_equal m expected)
      | Error m -> Alcotest.failf "retries exhausted: %s" m)

(* EINTR storms: the proxy signals this very process while the server
   thread is mid-select/read; requests must still complete *)
let test_eintr_storm () =
  let previous = Sys.signal Sys.sigusr1 (Sys.Signal_handle (fun _ -> ())) in
  Fun.protect ~finally:(fun () -> Sys.set_signal Sys.sigusr1 previous)
  @@ fun () ->
  with_stack ~eintr_pid:(Unix.getpid ())
    { Chaos.none with Chaos.eintr_burst = 2; delay_ms = 1.0 }
    (fun proxy addr clean expected ->
      let c = Serve.Client.connect addr in
      Fun.protect ~finally:(fun () -> Serve.Client.close c) @@ fun () ->
      (match Serve.Client.predict ~deadline:10.0 c clean with
       | Ok (m, _) ->
         Alcotest.(check bool) "bit-identical under EINTR storm" true
           (bits_equal m expected)
       | Error m -> Alcotest.failf "predict under EINTR storm failed: %s" m);
      Alcotest.(check bool) "signals fired" true
        ((Chaos.stats proxy).Chaos.eintr_signals >= 1))

let suites =
  [
    ( "chaos",
      [
        Alcotest.test_case "spec strings" `Quick test_spec_strings;
        Alcotest.test_case "transparent when no fault armed" `Quick
          test_transparent_proxy;
        Alcotest.test_case "corruption never alters an answer" `Quick
          test_corrupt_never_wrong;
        Alcotest.test_case "partial writes reassemble" `Quick
          test_partial_write_reassembles;
        Alcotest.test_case "stalled connections time out" `Quick
          test_stall_times_out;
        Alcotest.test_case "disconnects fail cleanly" `Quick
          test_disconnect_fails_cleanly;
        Alcotest.test_case "retries win through a flaky wire" `Quick
          test_retry_wins_through_faults;
        Alcotest.test_case "EINTR storm" `Quick test_eintr_storm;
      ] );
  ]
