(* Tunable-buffer configuration: the branch-and-bound solver against
   full enumeration on tiny instances, the complete infeasibility
   check, the node-budget fallback, and the code-65 semantic error
   surfaced through a live server. *)

(* random tiny instances the exhaustive reference can always handle:
   <= 3 paths, <= 3 buffers, <= 4 levels each *)
let gen_instance seed =
  let rng = Rng.create seed in
  let n_paths = 1 + Rng.int rng 3 in
  let n_buffers = 1 + Rng.int rng 3 in
  let delays =
    Array.init n_paths (fun _ -> Rng.uniform rng 80.0 120.0)
  in
  let buffers =
    Array.init n_buffers (fun _ ->
        let n_levels = 1 + Rng.int rng 4 in
        let n_cover = 1 + Rng.int rng n_paths in
        let idx = Array.init n_paths (fun i -> i) in
        Rng.shuffle rng idx;
        {
          Tune.paths = Array.sub idx 0 n_cover;
          levels =
            Array.init n_levels (fun _ ->
                {
                  Tune.offset_ps = Rng.uniform rng (-30.0) 10.0;
                  cost = Rng.uniform rng 0.0 5.0;
                });
        })
  in
  let t_clk = Rng.uniform rng 75.0 125.0 in
  { Tune.delays; t_clk; buffers }

let adjusted (inst : Tune.instance) (levels : int array) =
  let d = Array.copy inst.Tune.delays in
  Array.iteri
    (fun b l ->
      let buf = inst.Tune.buffers.(b) in
      Array.iter
        (fun p -> d.(p) <- d.(p) +. buf.Tune.levels.(l).Tune.offset_ps)
        buf.Tune.paths)
    levels;
  d

let meets inst levels =
  Array.for_all (fun d -> d <= inst.Tune.t_clk) (adjusted inst levels)

(* 200 random tiny instances: solve and exhaustive agree on
   feasibility, optimal cost, and both certificates meet timing *)
let test_solve_equals_exhaustive () =
  for seed = 1 to 200 do
    let inst = gen_instance seed in
    match (Tune.solve inst, Tune.exhaustive inst) with
    | Tune.Infeasible i1, Tune.Infeasible i2 ->
      Alcotest.(check int)
        (Printf.sprintf "seed %d: same worst path" seed)
        i2.Tune.path i1.Tune.path;
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "seed %d: same deficit" seed)
        i2.Tune.deficit_ps i1.Tune.deficit_ps
    | Tune.Feasible a1, Tune.Feasible a2 ->
      if Float.abs (a1.Tune.cost -. a2.Tune.cost) > 1e-9 then
        Alcotest.failf "seed %d: cost %g (solve) vs %g (exhaustive)" seed
          a1.Tune.cost a2.Tune.cost;
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: solve meets t_clk" seed)
        true (meets inst a1.Tune.levels);
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: exhaustive meets t_clk" seed)
        true (meets inst a2.Tune.levels);
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: exact" seed)
        true a1.Tune.exact
    | Tune.Feasible _, Tune.Infeasible _ | Tune.Infeasible _, Tune.Feasible _
      ->
      Alcotest.failf "seed %d: solvers disagree on feasibility" seed
  done

(* infeasibility is decided completely up front: the reported deficit
   is exactly the worst path's miss at all-minimum offsets *)
let test_infeasible_is_complete () =
  let inst =
    {
      Tune.delays = [| 100.0; 130.0 |];
      t_clk = 105.0;
      buffers =
        [|
          {
            Tune.paths = [| 1 |];
            levels =
              [|
                { Tune.offset_ps = 0.0; cost = 0.0 };
                { Tune.offset_ps = -10.0; cost = 2.0 };
              |];
          };
        |];
    }
  in
  (match Tune.solve inst with
  | Tune.Feasible _ -> Alcotest.fail "expected Infeasible"
  | Tune.Infeasible i ->
    Alcotest.(check int) "worst path" 1 i.Tune.path;
    (* 130 - 10 = 120 misses 105 by 15 *)
    Alcotest.(check (float 1e-9)) "deficit" 15.0 i.Tune.deficit_ps);
  (* one more level makes it feasible at the minimum sufficient cost *)
  let buf = inst.Tune.buffers.(0) in
  let fixable =
    {
      inst with
      Tune.buffers =
        [|
          {
            buf with
            Tune.levels =
              Array.append buf.Tune.levels
                [| { Tune.offset_ps = -25.0; cost = 7.0 } |];
          };
        |];
    }
  in
  match Tune.solve fixable with
  | Tune.Infeasible _ -> Alcotest.fail "expected Feasible"
  | Tune.Feasible a ->
    Alcotest.(check (float 1e-9)) "pays for the only feasible level" 7.0
      a.Tune.cost;
    Alcotest.(check (float 1e-9)) "slack" 0.0 a.Tune.slack_ps

(* a loose clock costs nothing: every buffer picks its cheapest level *)
let test_loose_clock_zero_cost () =
  let inst = gen_instance 42 in
  let inst = { inst with Tune.t_clk = 1e6 } in
  let cheapest =
    Array.fold_left
      (fun acc (buf : Tune.buffer) ->
        acc
        +. Array.fold_left
             (fun m (l : Tune.level) -> Float.min m l.Tune.cost)
             Float.infinity buf.Tune.levels)
      0.0 inst.Tune.buffers
  in
  match Tune.solve inst with
  | Tune.Infeasible _ -> Alcotest.fail "loose clock cannot be infeasible"
  | Tune.Feasible a ->
    Alcotest.(check (float 1e-9)) "sum of cheapest levels" cheapest a.Tune.cost

(* exhausting the node budget still returns a feasible, timing-clean
   incumbent -- just not a proof of optimality *)
let test_node_budget_fallback () =
  (* the all-minimum-offset seed is deliberately expensive, so proving
     the cheap assignments optimal needs more than one search node *)
  let buf =
    {
      Tune.paths = [| 0 |];
      levels =
        [|
          { Tune.offset_ps = 0.0; cost = 0.0 };
          { Tune.offset_ps = -5.0; cost = 3.0 };
        |];
    }
  in
  let inst = { Tune.delays = [| 100.0 |]; t_clk = 1e6; buffers = [| buf; buf |] } in
  match Tune.solve ~max_nodes:1 inst with
  | Tune.Infeasible _ -> Alcotest.fail "feasible instance"
  | Tune.Feasible a ->
    Alcotest.(check bool) "marked inexact" false a.Tune.exact;
    Alcotest.(check bool) "still meets t_clk" true (meets inst a.Tune.levels)

let test_check_instance () =
  let base = gen_instance 3 in
  let expect_invalid name inst =
    match Tune.solve inst with
    | (_ : Tune.result) -> Alcotest.failf "%s: expected Invalid_argument" name
    | exception Invalid_argument _ -> ()
  in
  expect_invalid "nan delay"
    { base with Tune.delays = Array.map (fun _ -> Float.nan) base.Tune.delays };
  expect_invalid "path out of range"
    {
      base with
      Tune.buffers =
        [|
          {
            Tune.paths = [| Array.length base.Tune.delays |];
            levels = [| { Tune.offset_ps = 0.0; cost = 0.0 } |];
          };
        |];
    };
  expect_invalid "negative cost"
    {
      base with
      Tune.buffers =
        [|
          {
            Tune.paths = [| 0 |];
            levels = [| { Tune.offset_ps = 0.0; cost = -1.0 } |];
          };
        |];
    };
  expect_invalid "empty levels"
    { base with Tune.buffers = [| { Tune.paths = [| 0 |]; levels = [||] } |] }

(* ---- through the server: tune as a first-class op ---------------- *)

let artifact =
  lazy
    (let nl =
       Circuit.Generator.generate
         { Circuit.Generator.default with num_gates = 90; seed = 23; depth = 8;
           num_inputs = 10; num_outputs = 8 }
     in
     let model = Timing.Variation.make_model ~levels:3 () in
     let dm = Timing.Delay_model.build nl model in
     let t_cons = Timing.Delay_model.nominal_critical_delay dm in
     let r =
       Timing.Path_extract.extract ~max_paths:400 dm ~t_cons
         ~yield_threshold:0.99
     in
     let pool = Timing.Paths.build dm r.Timing.Path_extract.paths in
     let a = Timing.Paths.a_mat pool in
     let mu = Timing.Paths.mu_paths pool in
     let sel = Core.Select.exact ~a ~mu () in
     let mc = Timing.Monte_carlo.sample (Rng.create 99) pool ~n:4 in
     let d = Timing.Monte_carlo.path_delays mc in
     let rep = Core.Predictor.rep_indices sel.Core.Select.predictor in
     let measured = Linalg.Mat.select_cols d rep in
     let store =
       Store.of_selection ~fingerprint:"test:tune"
         ~n_segments:(Timing.Paths.num_segments pool)
         ~t_cons ~eps:0.05 ~a ~mu sel
     in
     (store, measured))

let with_server f =
  let store, measured = Lazy.force artifact in
  let dir = Filename.temp_file "pathsel-tune" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let path = Filename.concat dir "s.sock" in
  let addr = Serve.Unix_sock path in
  let thread =
    Thread.create (fun () -> Serve.run ~install_signals:false store addr) ()
  in
  Fun.protect
    ~finally:(fun () ->
      (try
         let c = Serve.Client.connect ~retries:5 addr in
         Serve.Client.shutdown c;
         Serve.Client.close c
       with _ -> ());
      Thread.join thread;
      (try Sys.remove path with Sys_error _ -> ());
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () -> f store measured addr)

let simple_buffers =
  [|
    {
      Tune.paths = [| 0 |];
      levels =
        [|
          { Tune.offset_ps = 0.0; cost = 0.0 };
          { Tune.offset_ps = -10.0; cost = 1.0 };
        |];
    };
  |]

(* an impossible clock fails the whole request with semantic code 65 --
   a typed error the client must not retry *)
let test_serve_infeasible_code_65 () =
  with_server (fun _store measured addr ->
      let conn = Serve.Client.connect addr in
      Fun.protect
        ~finally:(fun () -> Serve.Client.close conn)
        (fun () ->
          let req =
            Serve.Client.tune_request ~t_clk:1.0 ~buffers:simple_buffers
              ~measured ()
          in
          match Serve.Client.request conn req with
          | Error e -> Alcotest.failf "transport error: %s" e
          | Ok resp ->
            Alcotest.(check bool) "ok:false" true
              (Serve.Wire.member "ok" resp = Some (Serve.Wire.Bool false));
            (match Serve.Wire.member "code" resp with
            | Some (Serve.Wire.Int 65) -> ()
            | other ->
              Alcotest.failf "expected semantic code 65, got %s"
                (match other with
                | Some j -> Serve.Wire.print j
                | None -> "<absent>"))))

(* a loose clock is feasible on every die: cheapest levels, zero cost,
   exact -- and the floats come back bit-identical to a local solve *)
let test_serve_feasible_matches_local () =
  with_server (fun _store measured addr ->
      let conn = Serve.Client.connect addr in
      Fun.protect
        ~finally:(fun () -> Serve.Client.close conn)
        (fun () ->
          match
            Serve.Client.tune ~t_clk:1e9 ~buffers:simple_buffers ~measured conn
          with
          | Error e -> Alcotest.failf "tune failed: %s" e
          | Ok resp ->
            let rows =
              match Serve.Wire.member "results" resp with
              | Some (Serve.Wire.List l) -> l
              | _ -> []
            in
            let dies, _ = Linalg.Mat.dims measured in
            Alcotest.(check int) "one result per die" dies (List.length rows);
            List.iter
              (fun row ->
                Alcotest.(check bool) "cheapest level" true
                  (Serve.Wire.member "levels" row
                  = Some (Serve.Wire.List [ Serve.Wire.Int 0 ]));
                (match Serve.Wire.member "cost" row with
                | Some (Serve.Wire.Float c) ->
                  Alcotest.(check bool) "zero cost bits" true
                    (Int64.bits_of_float c = Int64.bits_of_float 0.0)
                | Some (Serve.Wire.Int 0) -> ()
                | _ -> Alcotest.fail "cost missing");
                Alcotest.(check bool) "exact" true
                  (Serve.Wire.member "exact" row
                  = Some (Serve.Wire.Bool true)))
              rows))

let suites =
  [
    ( "tune",
      [
        Alcotest.test_case "solve equals exhaustive on tiny instances" `Quick
          test_solve_equals_exhaustive;
        Alcotest.test_case "infeasibility check is complete" `Quick
          test_infeasible_is_complete;
        Alcotest.test_case "loose clock costs nothing" `Quick
          test_loose_clock_zero_cost;
        Alcotest.test_case "node-budget fallback stays feasible" `Quick
          test_node_budget_fallback;
        Alcotest.test_case "instance validation" `Quick test_check_instance;
        Alcotest.test_case "serve: infeasible surfaces as code 65" `Quick
          test_serve_infeasible_code_65;
        Alcotest.test_case "serve: feasible matches local bits" `Quick
          test_serve_feasible_matches_local;
      ] );
  ]
