(* Domain-pool runtime and parallel-kernel equivalence tests.

   The contract under test is the one lib/par documents: parallelism
   buys wall-clock only. Every kernel must be bit-identical at pool
   sizes 1, 2 and 4 — including on this repo's single-core CI hosts,
   where sizes 2 and 4 still exercise the real multi-domain code path
   (the domains just time-share one core). *)

let with_pool_size d f =
  let saved = Par.Pool.size () in
  Par.Pool.set_size d;
  Fun.protect ~finally:(fun () -> Par.Pool.set_size saved) f

(* low threshold so even QCheck-sized matrices take the parallel path *)
let with_low_threshold f =
  let saved = Linalg.Mat.par_threshold_value () in
  Linalg.Mat.set_par_threshold 64;
  Fun.protect ~finally:(fun () -> Linalg.Mat.set_par_threshold saved) f

let bits_equal m1 m2 =
  Linalg.Mat.dims m1 = Linalg.Mat.dims m2
  &&
  let r, c = Linalg.Mat.dims m1 in
  try
    for i = 0 to r - 1 do
      for j = 0 to c - 1 do
        if
          Int64.bits_of_float (Linalg.Mat.get m1 i j)
          <> Int64.bits_of_float (Linalg.Mat.get m2 i j)
        then raise Exit
      done
    done;
    true
  with Exit -> false

let rand_mat seed r c =
  let rng = Rng.create seed in
  Linalg.Mat.init r c (fun _ _ -> Rng.gaussian rng)

(* ---------------- pool unit tests ---------------- *)

let test_parallel_for_covers_range () =
  with_pool_size 4 @@ fun () ->
  let n = 10_000 in
  let hits = Array.make n 0 in
  Par.Pool.parallel_for 0 n (fun i -> hits.(i) <- hits.(i) + 1);
  Alcotest.(check bool) "each index exactly once" true
    (Array.for_all (fun h -> h = 1) hits)

let test_parallel_for_empty_range () =
  with_pool_size 4 @@ fun () ->
  let ran = ref false in
  Par.Pool.parallel_for 5 5 (fun _ -> ran := true);
  Alcotest.(check bool) "no iteration on empty range" false !ran

let test_exception_propagates () =
  with_pool_size 4 @@ fun () ->
  Alcotest.check_raises "chunk exception re-raised in caller"
    (Failure "boom")
    (fun () ->
      Par.Pool.parallel_for 0 1000 (fun i -> if i = 777 then failwith "boom"))

let test_nested_region_runs_serially () =
  with_pool_size 4 @@ fun () ->
  let n = 64 in
  let hits = Array.make (n * n) 0 in
  Par.Pool.parallel_for 0 n (fun i ->
      Par.Pool.parallel_for 0 n (fun j ->
          hits.((i * n) + j) <- hits.((i * n) + j) + 1));
  Alcotest.(check bool) "nested loops still cover the product range" true
    (Array.for_all (fun h -> h = 1) hits)

let test_set_size_respawns () =
  with_pool_size 3 @@ fun () ->
  Alcotest.(check int) "size reflects set_size" 3 (Par.Pool.size ());
  let acc = Atomic.make 0 in
  Par.Pool.parallel_for 0 100 (fun _ -> Atomic.incr acc);
  Par.Pool.set_size 2;
  Alcotest.(check int) "resized" 2 (Par.Pool.size ());
  Par.Pool.parallel_for 0 100 (fun _ -> Atomic.incr acc);
  Alcotest.(check int) "both regions ran all iterations" 200 (Atomic.get acc);
  Alcotest.check_raises "set_size 0 rejected"
    (Invalid_argument "Par.Pool.set_size: size must be >= 1")
    (fun () -> Par.Pool.set_size 0)

let test_shutdown_then_reuse () =
  with_pool_size 2 @@ fun () ->
  let acc = Atomic.make 0 in
  Par.Pool.parallel_for 0 50 (fun _ -> Atomic.incr acc);
  Par.Pool.shutdown ();
  (* the next region must lazily respawn the pool *)
  Par.Pool.parallel_for 0 50 (fun _ -> Atomic.incr acc);
  Alcotest.(check int) "regions before and after shutdown" 100 (Atomic.get acc)

(* ---------------- kernel bit-identity properties ---------------- *)

let at_sizes f =
  with_low_threshold @@ fun () ->
  let reference = with_pool_size 1 f in
  List.for_all
    (fun d -> bits_equal reference (with_pool_size d f))
    [ 2; 4 ]

let dims_gen = QCheck.(triple (int_range 1 40) (int_range 1 40) (int_range 1 40))

let prop_mul_identical =
  QCheck.Test.make ~count:15 ~name:"mul bit-identical at pool sizes 1/2/4"
    QCheck.(pair int dims_gen)
    (fun (seed, (m, k, n)) ->
      let a = rand_mat seed m k and b = rand_mat (seed + 1) k n in
      at_sizes (fun () -> Linalg.Mat.mul a b))

let prop_mul_nt_identical =
  QCheck.Test.make ~count:15 ~name:"mul_nt bit-identical at pool sizes 1/2/4"
    QCheck.(pair int dims_gen)
    (fun (seed, (m, k, n)) ->
      let a = rand_mat seed m k and b = rand_mat (seed + 1) n k in
      at_sizes (fun () -> Linalg.Mat.mul_nt a b))

let prop_mul_tn_identical =
  QCheck.Test.make ~count:15 ~name:"mul_tn bit-identical at pool sizes 1/2/4"
    QCheck.(pair int dims_gen)
    (fun (seed, (m, k, n)) ->
      let a = rand_mat seed k m and b = rand_mat (seed + 1) k n in
      at_sizes (fun () -> Linalg.Mat.mul_tn a b))

let prop_gram_identical =
  QCheck.Test.make ~count:15 ~name:"gram bit-identical at pool sizes 1/2/4"
    QCheck.(pair int (pair (int_range 1 40) (int_range 1 40)))
    (fun (seed, (m, k)) ->
      let a = rand_mat seed m k in
      at_sizes (fun () -> Linalg.Mat.gram a))

(* ---------------- fused in-place ops vs their composed forms -------- *)

let prop_sub_scaled_matches_composed =
  QCheck.Test.make ~count:30 ~name:"sub_scaled a s b == sub a (scale s b)"
    QCheck.(triple int (pair (int_range 1 20) (int_range 1 20)) (float_range (-4.0) 4.0))
    (fun (seed, (m, n), s) ->
      let a = rand_mat seed m n and b = rand_mat (seed + 1) m n in
      bits_equal (Linalg.Mat.sub_scaled a s b)
        (Linalg.Mat.sub a (Linalg.Mat.scale s b)))

let prop_axpy_matches_composed =
  QCheck.Test.make ~count:30 ~name:"axpy alpha x y == add y (scale alpha x)"
    QCheck.(triple int (pair (int_range 1 20) (int_range 1 20)) (float_range (-4.0) 4.0))
    (fun (seed, (m, n), alpha) ->
      let x = rand_mat seed m n and y = rand_mat (seed + 1) m n in
      let fused = Linalg.Mat.copy y in
      Linalg.Mat.axpy ~alpha x fused;
      bits_equal fused (Linalg.Mat.add y (Linalg.Mat.scale alpha x)))

let prop_sub_into_matches =
  QCheck.Test.make ~count:30 ~name:"sub_into == sub (incl. aliased target)"
    QCheck.(pair int (pair (int_range 1 20) (int_range 1 20)))
    (fun (seed, (m, n)) ->
      let a = rand_mat seed m n and b = rand_mat (seed + 1) m n in
      let expected = Linalg.Mat.sub a b in
      let fresh = Linalg.Mat.create m n in
      Linalg.Mat.sub_into ~into:fresh a b;
      let aliased = Linalg.Mat.copy a in
      Linalg.Mat.sub_into ~into:aliased aliased b;
      bits_equal expected fresh && bits_equal expected aliased)

(* ---------------- Monte Carlo invariance across pool sizes ---------- *)

let mc_fixture =
  lazy
    (let nl =
       Circuit.Generator.generate
         { Circuit.Generator.default with num_gates = 120; seed = 21 }
     in
     let model = Timing.Variation.make_model ~levels:3 () in
     let dm = Timing.Delay_model.build nl model in
     (dm, Timing.Delay_model.nominal_critical_delay dm))

let test_circuit_yield_invariant () =
  let dm, t_cons = Lazy.force mc_fixture in
  let yield_at d =
    with_pool_size d (fun () ->
        Timing.Monte_carlo.circuit_yield dm ~t_cons ~rng:(Rng.create 42)
          ~samples:150)
  in
  let reference = yield_at 1 in
  List.iter
    (fun d ->
      Alcotest.(check (float 0.0))
        (Printf.sprintf "yield at %d domains" d)
        reference (yield_at d))
    [ 2; 4 ]

let test_path_delays_invariant () =
  let dm, t_cons = Lazy.force mc_fixture in
  let r =
    Timing.Path_extract.extract ~max_paths:300 dm ~t_cons ~yield_threshold:0.99
  in
  match r.Timing.Path_extract.paths with
  | [] -> Alcotest.skip ()
  | paths ->
    let pool = Timing.Paths.build dm paths in
    let delays_at d =
      with_pool_size d (fun () ->
          with_low_threshold (fun () ->
              let mc = Timing.Monte_carlo.sample (Rng.create 9) pool ~n:120 in
              Timing.Monte_carlo.path_delays mc))
    in
    let reference = delays_at 1 in
    List.iter
      (fun d ->
        Alcotest.(check bool)
          (Printf.sprintf "die delays bit-identical at %d domains" d)
          true
          (bits_equal reference (delays_at d)))
      [ 2; 4 ]

let q = QCheck_alcotest.to_alcotest

let suites =
  [
    ( "par",
      [
        Alcotest.test_case "parallel_for covers range once" `Quick
          test_parallel_for_covers_range;
        Alcotest.test_case "parallel_for empty range" `Quick
          test_parallel_for_empty_range;
        Alcotest.test_case "exception propagates" `Quick test_exception_propagates;
        Alcotest.test_case "nested regions run serially" `Quick
          test_nested_region_runs_serially;
        Alcotest.test_case "set_size resizes and validates" `Quick
          test_set_size_respawns;
        Alcotest.test_case "shutdown then lazy respawn" `Quick
          test_shutdown_then_reuse;
        q prop_mul_identical;
        q prop_mul_nt_identical;
        q prop_mul_tn_identical;
        q prop_gram_identical;
        q prop_sub_scaled_matches_composed;
        q prop_axpy_matches_composed;
        q prop_sub_into_matches;
        Alcotest.test_case "circuit yield invariant across pool sizes" `Quick
          test_circuit_yield_invariant;
        Alcotest.test_case "MC die delays invariant across pool sizes" `Quick
          test_path_delays_invariant;
      ] );
  ]
