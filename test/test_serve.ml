(* Integration: the prediction server on a real Unix-domain socket,
   checked bit-for-bit against the in-process predictors, plus wire
   format round trips and per-connection error isolation. *)

let artifact =
  lazy
    (let nl =
       Circuit.Generator.generate
         { Circuit.Generator.default with num_gates = 90; seed = 23; depth = 8;
           num_inputs = 10; num_outputs = 8 }
     in
     let model = Timing.Variation.make_model ~levels:3 () in
     let dm = Timing.Delay_model.build nl model in
     let t_cons = Timing.Delay_model.nominal_critical_delay dm in
     let r =
       Timing.Path_extract.extract ~max_paths:400 dm ~t_cons ~yield_threshold:0.99
     in
     let pool = Timing.Paths.build dm r.Timing.Path_extract.paths in
     let a = Timing.Paths.a_mat pool in
     let mu = Timing.Paths.mu_paths pool in
     let sel = Core.Select.exact ~a ~mu () in
     let mc = Timing.Monte_carlo.sample (Rng.create 99) pool ~n:40 in
     let d = Timing.Monte_carlo.path_delays mc in
     let rep = Core.Predictor.rep_indices sel.Core.Select.predictor in
     let clean = Linalg.Mat.select_cols d rep in
     let store =
       Store.of_selection ~fingerprint:"test:serve"
         ~n_segments:(Timing.Paths.num_segments pool)
         ~t_cons ~eps:0.05 ~a ~mu sel
     in
     (store, clean))

let bits_equal m1 m2 =
  Linalg.Mat.dims m1 = Linalg.Mat.dims m2
  &&
  let r, c = Linalg.Mat.dims m1 in
  try
    for i = 0 to r - 1 do
      for j = 0 to c - 1 do
        if
          Int64.bits_of_float (Linalg.Mat.get m1 i j)
          <> Int64.bits_of_float (Linalg.Mat.get m2 i j)
        then raise Exit
      done
    done;
    true
  with Exit -> false

(* run the real accept loop on a background thread; the client drives
   it over the socket and shuts it down at the end *)
let with_server f =
  let store, clean = Lazy.force artifact in
  let dir = Filename.temp_file "pathsel-serve" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let path = Filename.concat dir "s.sock" in
  let addr = Serve.Unix_sock path in
  let thread =
    Thread.create (fun () -> Serve.run ~install_signals:false store addr) ()
  in
  Fun.protect
    ~finally:(fun () ->
      (try
         let c = Serve.Client.connect ~retries:5 addr in
         Serve.Client.shutdown c;
         Serve.Client.close c
       with _ -> ());
      Thread.join thread;
      (try Sys.remove path with Sys_error _ -> ());
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () -> f store clean addr)

(* raw line-level access, for sending deliberately malformed requests *)
let raw_connect path =
  let rec go tries =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () -> fd
    | exception Unix.Unix_error ((ECONNREFUSED | ENOENT), _, _) when tries > 0 ->
      Unix.close fd;
      Thread.delay 0.1;
      go (tries - 1)
  in
  go 50

let raw_roundtrip fd line =
  let msg = Bytes.of_string (line ^ "\n") in
  ignore (Unix.write fd msg 0 (Bytes.length msg));
  let buf = Buffer.create 256 in
  let chunk = Bytes.create 4096 in
  let rec read_line () =
    let n = Unix.read fd chunk 0 (Bytes.length chunk) in
    if n = 0 then Buffer.contents buf
    else begin
      let s = Bytes.sub_string chunk 0 n in
      match String.index_opt s '\n' with
      | Some i ->
        Buffer.add_string buf (String.sub s 0 i);
        Buffer.contents buf
      | None ->
        Buffer.add_string buf s;
        read_line ()
    end
  in
  read_line ()

(* ------------------------------------------------------------------ *)

let test_wire_roundtrip () =
  let open Serve.Wire in
  let samples =
    [
      Null;
      Bool true;
      Int (-42);
      Float 1.0e-17;
      Float 425.00000000000301;
      String "a \"quoted\" \\ line\nwith\tcontrol \x01 bytes";
      List [ Int 1; Null; Float Float.pi ];
      Obj [ ("op", String "predict"); ("dies", List [ List [ Float 1.5 ] ]) ];
    ]
  in
  List.iter
    (fun j ->
      match parse (print j) with
      | Ok j' -> Alcotest.(check bool) "parse (print j) = j" true (j = j')
      | Error m -> Alcotest.failf "re-parse failed: %s on %s" m (print j))
    samples;
  (match parse "{\"a\":1} trailing" with
   | Ok _ -> Alcotest.fail "trailing garbage accepted"
   | Error _ -> ());
  match parse "[1," with
  | Ok _ -> Alcotest.fail "unterminated array accepted"
  | Error _ -> ()

let test_wire_float_bits () =
  (* %.17g must reproduce arbitrary doubles exactly *)
  let rng = Rng.create 5 in
  for _ = 1 to 1000 do
    let x = ((2.0 *. Rng.float rng) -. 1.0) *. 1e6 in
    match Serve.Wire.parse (Serve.Wire.print (Serve.Wire.Float x)) with
    | Ok (Serve.Wire.Float y) ->
      if Int64.bits_of_float x <> Int64.bits_of_float y then
        Alcotest.failf "float %h lost bits -> %h" x y
    | Ok j -> Alcotest.failf "float re-parsed as %s" (Serve.Wire.print j)
    | Error m -> Alcotest.failf "float re-parse error: %s" m
  done

let test_clean_batch_bit_identical () =
  with_server (fun store clean addr ->
      let c = Serve.Client.connect addr in
      Fun.protect ~finally:(fun () -> Serve.Client.close c) @@ fun () ->
      Alcotest.(check bool) "ping" true (Serve.Client.ping c);
      match Serve.Client.predict c clean with
      | Error m -> Alcotest.failf "predict failed: %s" m
      | Ok (served, resp) ->
        let expected =
          Core.Predictor.predict_all (Store.predictor store) ~measured:clean
        in
        Alcotest.(check bool) "bit-identical to Predictor.predict_all" true
          (bits_equal served expected);
        (match Serve.Wire.member "robust" resp with
         | Some (Serve.Wire.Bool false) -> ()
         | _ -> Alcotest.fail "clean batch should take the plain path"))

let test_faulty_batch_matches_robust () =
  with_server (fun store clean addr ->
      let c = Serve.Client.connect addr in
      Fun.protect ~finally:(fun () -> Serve.Client.close c) @@ fun () ->
      let faulty = Linalg.Mat.copy clean in
      let _, cols = Linalg.Mat.dims faulty in
      Linalg.Mat.set faulty 1 (cols - 1) Float.nan;
      match Serve.Client.predict c faulty with
      | Error m -> Alcotest.failf "predict failed: %s" m
      | Ok (served, resp) ->
        let expected =
          Core.Robust.predict_all (Store.robust store) ~measured:faulty
        in
        Alcotest.(check bool) "bit-identical to Robust.predict_all" true
          (bits_equal served expected.Core.Robust.predicted);
        (match Serve.Wire.member "robust" resp with
         | Some (Serve.Wire.Bool true) -> ()
         | _ -> Alcotest.fail "NaN entry should route through Robust");
        match Serve.Wire.member "screen" resp with
        | Some (Serve.Wire.Obj _) -> ()
        | _ -> Alcotest.fail "robust response should carry screen counters")

let test_malformed_line_isolated () =
  with_server (fun _store clean addr ->
      let path = match addr with Serve.Unix_sock p -> p | Serve.Tcp _ -> assert false in
      let fd = raw_connect path in
      Fun.protect ~finally:(fun () -> Unix.close fd) @@ fun () ->
      (* a mixed session on ONE connection: garbage, then wrong shapes,
         then a clean batch — only the bad lines get error responses *)
      let r1 = raw_roundtrip fd "this is not json" in
      Alcotest.(check bool) "garbage -> ok:false" true
        (String.length r1 > 0
        && Serve.Wire.(
             match parse r1 with
             | Ok j -> member "ok" j = Some (Bool false)
             | Error _ -> false));
      let r2 = raw_roundtrip fd "{\"op\":\"predict\",\"dies\":[[1,2,3,4,5,6,7,8,9]]}" in
      (match Serve.Wire.parse r2 with
       | Ok j ->
         Alcotest.(check bool) "wrong width -> ok:false" true
           (Serve.Wire.member "ok" j = Some (Serve.Wire.Bool false));
         (match Serve.Wire.member "code" j with
          | Some (Serve.Wire.Int 65) -> ()
          | _ -> Alcotest.fail "bad data should carry sysexits code 65")
       | Error m -> Alcotest.failf "unparseable error response: %s" m);
      let r3 = raw_roundtrip fd "{\"op\":\"ping\"}" in
      (match Serve.Wire.parse r3 with
       | Ok j ->
         Alcotest.(check bool) "connection survives bad lines" true
           (Serve.Wire.member "ok" j = Some (Serve.Wire.Bool true))
       | Error m -> Alcotest.failf "ping after errors failed: %s" m);
      ignore clean)

let test_stats_counters () =
  with_server (fun _store clean addr ->
      let c = Serve.Client.connect addr in
      Fun.protect ~finally:(fun () -> Serve.Client.close c) @@ fun () ->
      ignore (Serve.Client.ping c);
      (match Serve.Client.predict c clean with
       | Ok _ -> ()
       | Error m -> Alcotest.failf "predict failed: %s" m);
      match Serve.Client.stats c with
      | Error m -> Alcotest.failf "stats failed: %s" m
      | Ok j ->
        let dies, _ = Linalg.Mat.dims clean in
        (match Serve.Wire.member "dies_predicted" j with
         | Some (Serve.Wire.Int n) ->
           Alcotest.(check int) "dies_predicted" dies n
         | _ -> Alcotest.fail "stats missing dies_predicted");
        (match Serve.Wire.member "errors" j with
         | Some (Serve.Wire.Int 0) -> ()
         | _ -> Alcotest.fail "unexpected errors counted");
        match Serve.Wire.member "latency_ms" j with
        | Some (Serve.Wire.Obj fields) ->
          Alcotest.(check bool) "latency quantiles present" true
            (List.mem_assoc "p99" fields && List.mem_assoc "mean" fields)
        | _ -> Alcotest.fail "stats missing latency_ms")

let suites =
  [
    ( "serve",
      [
        Alcotest.test_case "wire round trip" `Quick test_wire_roundtrip;
        Alcotest.test_case "wire floats keep their bits" `Quick
          test_wire_float_bits;
        Alcotest.test_case "clean batch bit-identical over socket" `Quick
          test_clean_batch_bit_identical;
        Alcotest.test_case "faulty batch matches Robust" `Quick
          test_faulty_batch_matches_robust;
        Alcotest.test_case "malformed lines poison only themselves" `Quick
          test_malformed_line_isolated;
        Alcotest.test_case "stats counters" `Quick test_stats_counters;
      ] );
  ]
