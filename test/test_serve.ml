(* Integration: the prediction server on a real Unix-domain socket,
   checked bit-for-bit against the in-process predictors, plus wire
   format round trips and per-connection error isolation. *)

let artifact =
  lazy
    (let nl =
       Circuit.Generator.generate
         { Circuit.Generator.default with num_gates = 90; seed = 23; depth = 8;
           num_inputs = 10; num_outputs = 8 }
     in
     let model = Timing.Variation.make_model ~levels:3 () in
     let dm = Timing.Delay_model.build nl model in
     let t_cons = Timing.Delay_model.nominal_critical_delay dm in
     let r =
       Timing.Path_extract.extract ~max_paths:400 dm ~t_cons ~yield_threshold:0.99
     in
     let pool = Timing.Paths.build dm r.Timing.Path_extract.paths in
     let a = Timing.Paths.a_mat pool in
     let mu = Timing.Paths.mu_paths pool in
     let sel = Core.Select.exact ~a ~mu () in
     let mc = Timing.Monte_carlo.sample (Rng.create 99) pool ~n:40 in
     let d = Timing.Monte_carlo.path_delays mc in
     let rep = Core.Predictor.rep_indices sel.Core.Select.predictor in
     let clean = Linalg.Mat.select_cols d rep in
     let store =
       Store.of_selection ~fingerprint:"test:serve"
         ~n_segments:(Timing.Paths.num_segments pool)
         ~t_cons ~eps:0.05 ~a ~mu sel
     in
     (store, clean))

let bits_equal m1 m2 =
  Linalg.Mat.dims m1 = Linalg.Mat.dims m2
  &&
  let r, c = Linalg.Mat.dims m1 in
  try
    for i = 0 to r - 1 do
      for j = 0 to c - 1 do
        if
          Int64.bits_of_float (Linalg.Mat.get m1 i j)
          <> Int64.bits_of_float (Linalg.Mat.get m2 i j)
        then raise Exit
      done
    done;
    true
  with Exit -> false

(* run the real accept loop on a background thread; the client drives
   it over the socket and shuts it down at the end *)
let with_server ?config ?reload_from f =
  let store, clean = Lazy.force artifact in
  let dir = Filename.temp_file "pathsel-serve" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let path = Filename.concat dir "s.sock" in
  let addr = Serve.Unix_sock path in
  let thread =
    Thread.create
      (fun () ->
        Serve.run ~install_signals:false ?config ?reload_from store addr)
      ()
  in
  Fun.protect
    ~finally:(fun () ->
      (* the teardown connection can itself be shed when a bounded-queue
         test leaves the queue full (unix connect succeeds before accept):
         the server answers "overloaded" instead of executing the
         shutdown, and a single blind attempt would leave the join below
         blocked forever — retry until the drain is actually acked *)
      let shutdown_acked () =
        try
          let c = Serve.Client.connect ~retries:5 addr in
          let r =
            Serve.Client.request c
              (Serve.Wire.Obj [ ("op", Serve.Wire.String "shutdown") ])
          in
          Serve.Client.close c;
          match r with
          | Ok j -> Serve.Wire.member "ok" j = Some (Serve.Wire.Bool true)
          | Error _ -> false
        with _ -> false
      in
      let rec ask tries =
        if (not (shutdown_acked ())) && tries > 0 then begin
          Thread.delay 0.1;
          ask (tries - 1)
        end
      in
      ask 50;
      Thread.join thread;
      (try Sys.remove path with Sys_error _ -> ());
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () -> f store clean addr)

let sock_path = function
  | Serve.Unix_sock p -> p
  | Serve.Tcp _ -> assert false

(* raw line-level access, for sending deliberately malformed requests *)
let raw_connect path =
  let rec go tries =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () -> fd
    | exception Unix.Unix_error ((ECONNREFUSED | ENOENT), _, _) when tries > 0 ->
      Unix.close fd;
      Thread.delay 0.1;
      go (tries - 1)
  in
  go 50

let raw_send fd s =
  let b = Bytes.of_string s in
  let off = ref 0 in
  while !off < Bytes.length b do
    off := !off + Unix.write fd b !off (Bytes.length b - !off)
  done

let raw_read_line fd =
  let buf = Buffer.create 256 in
  let chunk = Bytes.create 4096 in
  let rec read_line () =
    let n = Unix.read fd chunk 0 (Bytes.length chunk) in
    if n = 0 then Buffer.contents buf
    else begin
      let s = Bytes.sub_string chunk 0 n in
      match String.index_opt s '\n' with
      | Some i ->
        Buffer.add_string buf (String.sub s 0 i);
        Buffer.contents buf
      | None ->
        Buffer.add_string buf s;
        read_line ()
    end
  in
  read_line ()

let raw_roundtrip fd line =
  raw_send fd (line ^ "\n");
  raw_read_line fd

(* response triage: ok flag and the failure-code vocabulary *)
let response_ok r =
  match Serve.Wire.parse r with
  | Ok j -> Serve.Wire.member "ok" j = Some (Serve.Wire.Bool true)
  | Error _ -> false

let response_code r =
  match Serve.Wire.parse r with
  | Ok j -> Serve.Wire.member "code" j
  | Error _ -> None

let check_infra_code label r code =
  if response_code r <> Some (Serve.Wire.String code) then
    Alcotest.failf "%s: expected string code %S, got %s" label code r

let stat_int c key =
  match Serve.Client.stats c with
  | Error m -> Alcotest.failf "stats failed: %s" m
  | Ok j ->
    (match Serve.Wire.member key j with
     | Some (Serve.Wire.Int n) -> n
     | _ -> Alcotest.failf "stats missing int field %S" key)

(* ------------------------------------------------------------------ *)

let test_wire_roundtrip () =
  let open Serve.Wire in
  let samples =
    [
      Null;
      Bool true;
      Int (-42);
      Float 1.0e-17;
      Float 425.00000000000301;
      String "a \"quoted\" \\ line\nwith\tcontrol \x01 bytes";
      List [ Int 1; Null; Float Float.pi ];
      Obj [ ("op", String "predict"); ("dies", List [ List [ Float 1.5 ] ]) ];
    ]
  in
  List.iter
    (fun j ->
      match parse (print j) with
      | Ok j' -> Alcotest.(check bool) "parse (print j) = j" true (j = j')
      | Error m -> Alcotest.failf "re-parse failed: %s on %s" m (print j))
    samples;
  (match parse "{\"a\":1} trailing" with
   | Ok _ -> Alcotest.fail "trailing garbage accepted"
   | Error _ -> ());
  match parse "[1," with
  | Ok _ -> Alcotest.fail "unterminated array accepted"
  | Error _ -> ()

let test_wire_float_bits () =
  (* %.17g must reproduce arbitrary doubles exactly *)
  let rng = Rng.create 5 in
  for _ = 1 to 1000 do
    let x = ((2.0 *. Rng.float rng) -. 1.0) *. 1e6 in
    match Serve.Wire.parse (Serve.Wire.print (Serve.Wire.Float x)) with
    | Ok (Serve.Wire.Float y) ->
      if Int64.bits_of_float x <> Int64.bits_of_float y then
        Alcotest.failf "float %h lost bits -> %h" x y
    | Ok j -> Alcotest.failf "float re-parsed as %s" (Serve.Wire.print j)
    | Error m -> Alcotest.failf "float re-parse error: %s" m
  done

let test_clean_batch_bit_identical () =
  with_server (fun store clean addr ->
      let c = Serve.Client.connect addr in
      Fun.protect ~finally:(fun () -> Serve.Client.close c) @@ fun () ->
      Alcotest.(check bool) "ping" true (Serve.Client.ping c);
      match Serve.Client.predict c clean with
      | Error m -> Alcotest.failf "predict failed: %s" m
      | Ok (served, resp) ->
        let expected =
          Core.Predictor.predict_all (Store.predictor store) ~measured:clean
        in
        Alcotest.(check bool) "bit-identical to Predictor.predict_all" true
          (bits_equal served expected);
        (match Serve.Wire.member "robust" resp with
         | Some (Serve.Wire.Bool false) -> ()
         | _ -> Alcotest.fail "clean batch should take the plain path"))

let test_faulty_batch_matches_robust () =
  with_server (fun store clean addr ->
      let c = Serve.Client.connect addr in
      Fun.protect ~finally:(fun () -> Serve.Client.close c) @@ fun () ->
      let faulty = Linalg.Mat.copy clean in
      let _, cols = Linalg.Mat.dims faulty in
      Linalg.Mat.set faulty 1 (cols - 1) Float.nan;
      match Serve.Client.predict c faulty with
      | Error m -> Alcotest.failf "predict failed: %s" m
      | Ok (served, resp) ->
        let expected =
          Core.Robust.predict_all (Store.robust store) ~measured:faulty
        in
        Alcotest.(check bool) "bit-identical to Robust.predict_all" true
          (bits_equal served expected.Core.Robust.predicted);
        (match Serve.Wire.member "robust" resp with
         | Some (Serve.Wire.Bool true) -> ()
         | _ -> Alcotest.fail "NaN entry should route through Robust");
        match Serve.Wire.member "screen" resp with
        | Some (Serve.Wire.Obj _) -> ()
        | _ -> Alcotest.fail "robust response should carry screen counters")

let test_malformed_line_isolated () =
  with_server (fun _store clean addr ->
      let path = match addr with Serve.Unix_sock p -> p | Serve.Tcp _ -> assert false in
      let fd = raw_connect path in
      Fun.protect ~finally:(fun () -> Unix.close fd) @@ fun () ->
      (* a mixed session on ONE connection: garbage, then wrong shapes,
         then a clean batch — only the bad lines get error responses *)
      let r1 = raw_roundtrip fd "this is not json" in
      Alcotest.(check bool) "garbage -> ok:false" true
        (String.length r1 > 0
        && Serve.Wire.(
             match parse r1 with
             | Ok j -> member "ok" j = Some (Bool false)
             | Error _ -> false));
      let r2 = raw_roundtrip fd "{\"op\":\"predict\",\"dies\":[[1,2,3,4,5,6,7,8,9]]}" in
      (match Serve.Wire.parse r2 with
       | Ok j ->
         Alcotest.(check bool) "wrong width -> ok:false" true
           (Serve.Wire.member "ok" j = Some (Serve.Wire.Bool false));
         (match Serve.Wire.member "code" j with
          | Some (Serve.Wire.Int 65) -> ()
          | _ -> Alcotest.fail "bad data should carry sysexits code 65")
       | Error m -> Alcotest.failf "unparseable error response: %s" m);
      let r3 = raw_roundtrip fd "{\"op\":\"ping\"}" in
      (match Serve.Wire.parse r3 with
       | Ok j ->
         Alcotest.(check bool) "connection survives bad lines" true
           (Serve.Wire.member "ok" j = Some (Serve.Wire.Bool true))
       | Error m -> Alcotest.failf "ping after errors failed: %s" m);
      ignore clean)

let test_stats_counters () =
  with_server (fun _store clean addr ->
      let c = Serve.Client.connect addr in
      Fun.protect ~finally:(fun () -> Serve.Client.close c) @@ fun () ->
      ignore (Serve.Client.ping c);
      (match Serve.Client.predict c clean with
       | Ok _ -> ()
       | Error m -> Alcotest.failf "predict failed: %s" m);
      match Serve.Client.stats c with
      | Error m -> Alcotest.failf "stats failed: %s" m
      | Ok j ->
        let dies, _ = Linalg.Mat.dims clean in
        (match Serve.Wire.member "dies_predicted" j with
         | Some (Serve.Wire.Int n) ->
           Alcotest.(check int) "dies_predicted" dies n
         | _ -> Alcotest.fail "stats missing dies_predicted");
        (match Serve.Wire.member "errors" j with
         | Some (Serve.Wire.Int 0) -> ()
         | _ -> Alcotest.fail "unexpected errors counted");
        match Serve.Wire.member "latency_ms" j with
        | Some (Serve.Wire.Obj fields) ->
          Alcotest.(check bool) "latency quantiles present" true
            (List.mem_assoc "p99" fields && List.mem_assoc "mean" fields)
        | _ -> Alcotest.fail "stats missing latency_ms")

(* ------------------------------------------------------------------ *)
(* Framing edge cases *)

let test_framer_edges () =
  let open Serve.Wire in
  let f = Framer.create ~max_line:32 () in
  (* a line split across many one-byte reads reassembles *)
  let line = "{\"op\":\"ping\"}" in
  String.iter (fun c -> Framer.feed f (Bytes.make 1 c) 0 1) (line ^ "\n");
  (match Framer.pop f with
   | Some (Framer.Line l) -> Alcotest.(check string) "tiny reads" line l
   | _ -> Alcotest.fail "expected a line from one-byte feeds");
  (* CRLF terminators are tolerated *)
  let b = Bytes.of_string "abc\r\n" in
  Framer.feed f b 0 (Bytes.length b);
  (match Framer.pop f with
   | Some (Framer.Line l) -> Alcotest.(check string) "CRLF stripped" "abc" l
   | _ -> Alcotest.fail "expected a line from CRLF input");
  (* empty line is a line, not a protocol wedge *)
  Framer.feed f (Bytes.of_string "\n") 0 1;
  (match Framer.pop f with
   | Some (Framer.Line "") -> ()
   | _ -> Alcotest.fail "expected an empty line");
  (* over-cap flood: capped, buffered prefix discarded, total reported *)
  Alcotest.(check bool) "not overflowing" false (Framer.overflowing f);
  let flood = Bytes.of_string (String.make 100 'x') in
  Framer.feed f flood 0 100;
  Alcotest.(check bool) "overflowing mid-flood" true (Framer.overflowing f);
  Alcotest.(check bool) "partial while discarding" true (Framer.partial f);
  Framer.feed f (Bytes.of_string "\n") 0 1;
  (match Framer.pop f with
   | Some (Framer.Too_long n) -> Alcotest.(check int) "total bytes" 100 n
   | _ -> Alcotest.fail "expected Too_long");
  (* and the next line is unaffected *)
  Framer.feed f (Bytes.of_string "ok\n") 0 3;
  match Framer.pop f with
  | Some (Framer.Line "ok") -> ()
  | _ -> Alcotest.fail "line after the overflow was lost"

let test_framing_over_socket () =
  let config = { Serve.default_config with Serve.max_line = 256 } in
  with_server ~config (fun _store _clean addr ->
      let fd = raw_connect (sock_path addr) in
      Fun.protect ~finally:(fun () -> Unix.close fd) @@ fun () ->
      (* a newline-less flood far past the cap: typed error, capped
         memory, and the connection survives *)
      raw_send fd (String.make 4096 'z');
      raw_send fd "\n";
      let r = raw_read_line fd in
      check_infra_code "oversized line" r "line_too_long";
      (* trailing garbage after valid JSON poisons only that line *)
      let r = raw_roundtrip fd "{\"op\":\"ping\"} trailing" in
      check_infra_code "trailing garbage" r "bad_frame";
      (* an empty line is a frame error, not a hang or a disconnect *)
      let r = raw_roundtrip fd "" in
      check_infra_code "empty line" r "bad_frame";
      (* CRLF-terminated request works *)
      raw_send fd "{\"op\":\"ping\"}\r\n";
      Alcotest.(check bool) "CRLF request" true (response_ok (raw_read_line fd));
      (* a request dribbled out one byte at a time still completes *)
      String.iter (fun c -> raw_send fd (String.make 1 c)) "{\"op\":\"ping\"}\n";
      Alcotest.(check bool) "tiny writes" true (response_ok (raw_read_line fd)))

(* ------------------------------------------------------------------ *)
(* Overload shedding, deadlines, idle reaping *)

let test_shed_overloaded () =
  let config = { Serve.default_config with Serve.workers = 1; queue = 1 } in
  with_server ~config (fun _store _clean addr ->
      let path = sock_path addr in
      (* occupy the single worker ... *)
      let a = raw_connect path in
      Thread.delay 0.3;
      (* ... fill the one queue slot ... *)
      let b = raw_connect path in
      Thread.delay 0.3;
      (* ... and the next connection must be shed with a typed code *)
      let c = raw_connect path in
      Fun.protect
        ~finally:(fun () -> List.iter Unix.close [ a; b; c ])
      @@ fun () ->
      let r = raw_read_line c in
      check_infra_code "shed connection" r "overloaded";
      (* the worker's own connection still serves, and counted the shed *)
      let r = raw_roundtrip a "{\"op\":\"ping\"}" in
      Alcotest.(check bool) "occupied conn still serves" true (response_ok r);
      let r = raw_roundtrip a "{\"op\":\"stats\"}" in
      match Serve.Wire.parse r with
      | Ok j ->
        (match Serve.Wire.member "shed" j with
         | Some (Serve.Wire.Int n) when n >= 1 -> ()
         | _ -> Alcotest.failf "shed counter missing or zero: %s" r)
      | Error m -> Alcotest.failf "stats unparseable: %s" m)

let test_deadline_exceeded () =
  let config = { Serve.default_config with Serve.deadline = 0.4 } in
  with_server ~config (fun _store _clean addr ->
      let fd = raw_connect (sock_path addr) in
      Fun.protect ~finally:(fun () -> Unix.close fd) @@ fun () ->
      (* start a request line and never finish it: the wall clock, not
         the read loop, decides when it dies *)
      raw_send fd "{\"op\":";
      let t0 = Unix.gettimeofday () in
      let r = raw_read_line fd in
      let dt = Unix.gettimeofday () -. t0 in
      check_infra_code "deadline expiry" r "deadline_exceeded";
      Alcotest.(check bool) "expired near the configured deadline" true
        (dt >= 0.2 && dt < 5.0);
      (* mid-frame stream: the server must close after answering *)
      Alcotest.(check string) "closed after deadline" "" (raw_read_line fd);
      (* the per-cause counter is visible to a fresh client *)
      let c = Serve.Client.connect addr in
      Fun.protect ~finally:(fun () -> Serve.Client.close c) @@ fun () ->
      Alcotest.(check bool) "timeouts counter" true (stat_int c "timeouts" >= 1))

let test_idle_reaped () =
  let config = { Serve.default_config with Serve.idle_timeout = 0.3 } in
  with_server ~config (fun _store _clean addr ->
      let fd = raw_connect (sock_path addr) in
      Fun.protect ~finally:(fun () -> Unix.close fd) @@ fun () ->
      let t0 = Unix.gettimeofday () in
      (* no request in flight: a silent connection is closed without a
         response (idle reap, not deadline expiry) *)
      Alcotest.(check string) "silent close" "" (raw_read_line fd);
      Alcotest.(check bool) "after the idle window" true
        (Unix.gettimeofday () -. t0 >= 0.2);
      let c = Serve.Client.connect addr in
      Fun.protect ~finally:(fun () -> Serve.Client.close c) @@ fun () ->
      Alcotest.(check bool) "idle_closed counter" true
        (stat_int c "idle_closed" >= 1))

(* ------------------------------------------------------------------ *)
(* SIGHUP hot reload *)

let test_sighup_reload () =
  let store, _ = Lazy.force artifact in
  let apath = Filename.temp_file "pathsel-reload" ".psa" in
  (match Store.save apath store with
   | Ok () -> ()
   | Error e -> Alcotest.failf "save failed: %s" (Core.Errors.to_string e));
  Fun.protect ~finally:(fun () -> try Sys.remove apath with Sys_error _ -> ())
  @@ fun () ->
  with_server ~reload_from:apath (fun store clean addr ->
      let c = Serve.Client.connect addr in
      Fun.protect ~finally:(fun () -> Serve.Client.close c) @@ fun () ->
      let expected =
        Core.Predictor.predict_all (Store.predictor store) ~measured:clean
      in
      let predict_ok label =
        match Serve.Client.predict c clean with
        | Ok (m, _) ->
          Alcotest.(check bool) (label ^ ": bits stable") true
            (bits_equal m expected)
        | Error m -> Alcotest.failf "%s: predict failed: %s" label m
      in
      predict_ok "before reload";
      (* swap in a same-selection artifact under a new fingerprint *)
      (match
         Store.save apath { store with Store.fingerprint = "test:serve v2" }
       with
       | Ok () -> ()
       | Error e -> Alcotest.failf "re-save failed: %s" (Core.Errors.to_string e));
      Unix.kill (Unix.getpid ()) Sys.sighup;
      (* the accept loop applies the reload between accepts; poll *)
      let deadline = Unix.gettimeofday () +. 10.0 in
      while stat_int c "reloads" < 1 && Unix.gettimeofday () < deadline do
        Thread.delay 0.05
      done;
      Alcotest.(check bool) "reload counted" true (stat_int c "reloads" >= 1);
      (match Serve.Client.stats c with
       | Ok j ->
         (match Serve.Wire.member "artifact" j with
          | Some a ->
            (match Serve.Wire.member "fingerprint" a with
             | Some (Serve.Wire.String "test:serve v2") -> ()
             | _ -> Alcotest.failf "fingerprint not swapped: %s" (Serve.Wire.print j))
          | None -> Alcotest.fail "stats missing artifact")
       | Error m -> Alcotest.failf "stats failed: %s" m);
      predict_ok "after reload";
      (* a corrupt artifact is rejected: serving state untouched *)
      Out_channel.with_open_bin apath (fun oc ->
          Out_channel.output_string oc "definitely not an artifact");
      Unix.kill (Unix.getpid ()) Sys.sighup;
      let deadline = Unix.gettimeofday () +. 10.0 in
      while stat_int c "reload_failures" < 1 && Unix.gettimeofday () < deadline do
        Thread.delay 0.05
      done;
      Alcotest.(check bool) "bad artifact rejected" true
        (stat_int c "reload_failures" >= 1);
      predict_ok "after failed reload")

(* ------------------------------------------------------------------ *)
(* Client retry policy *)

let test_retry_semantics () =
  with_server (fun _store clean addr ->
      let c = Serve.Client.connect addr in
      Fun.protect ~finally:(fun () -> Serve.Client.close c) @@ fun () ->
      let _, cols = Linalg.Mat.dims clean in
      let bad = Linalg.Mat.create 1 (cols + 1) in
      let r0 = stat_int c "requests" in
      (* a semantic error (integer code) must NOT be retried: exactly
         one request hits the server no matter how many attempts the
         policy allows *)
      (match Serve.Client.predict_with_retry addr bad with
       | Ok _ -> Alcotest.fail "wrong-width batch accepted"
       | Error _ -> ());
      let r1 = stat_int c "requests" in
      (* r0's stats read was already counted; since then: the one bad
         predict and the r1 stats read itself *)
      Alcotest.(check int) "semantic error sent once" (r0 + 2) r1;
      (* a good batch through the retry path predicts normally *)
      (match Serve.Client.predict_with_retry addr clean with
       | Ok _ -> ()
       | Error m -> Alcotest.failf "retry predict failed: %s" m);
      (* transport errors ARE retried: a dead address costs the backoff
         schedule and comes back as Error, not an exception *)
      let retry =
        { Serve.Client.attempts = 3; base_delay = 0.02; max_delay = 0.1;
          connect_timeout = 0.5; deadline = 0.5 }
      in
      let dead = Serve.Unix_sock (sock_path addr ^ ".nowhere") in
      let t0 = Unix.gettimeofday () in
      (match
         Serve.Client.request_with_retry ~retry dead
           (Serve.Wire.Obj [ ("op", Serve.Wire.String "ping") ])
       with
       | Ok _ -> Alcotest.fail "request to a dead socket succeeded"
       | Error _ -> ());
      Alcotest.(check bool) "backoff slept between attempts" true
        (Unix.gettimeofday () -. t0 >= 0.03))

(* ------------------------------------------------------------------ *)
(* Generation counters, the observe op, and the self-healing loop
   (in-process: [Serve.handle]/[Serve.monitor_step] driven directly) *)

let gen_of r =
  match Serve.Wire.parse r with
  | Ok j ->
    (match Serve.Wire.member "gen" j with
     | Some (Serve.Wire.Int g) -> g
     | _ -> Alcotest.failf "response carries no generation: %s" r)
  | Error m -> Alcotest.failf "unparseable response: %s" m

let observe_req measured truth =
  Serve.Wire.print
    (Serve.Wire.Obj
       [
         ("op", Serve.Wire.String "observe");
         ("dies", Serve.Wire.mat_to_json measured);
         ("truth", Serve.Wire.mat_to_json truth);
       ])

let serve_mon_cfg =
  {
    Serve.Monitor.default_config with
    Serve.Monitor.calibrate = 8;
    min_dies = 8;
    buffer = 16;
    refit_min = 4;
    cooldown = 0.5;
    drift =
      { Stats.Drift.default_config with Stats.Drift.slack = 0.0; warn = 1.0;
        drift = 2.0 };
  }

(* residual-free truth: predictions of the serving artifact itself, so
   calibration sees a zero-sigma healthy reference *)
let exact_truth store clean =
  Core.Predictor.predict_all (Store.predictor store) ~measured:clean

let with_artifact_file f =
  let store, clean = Lazy.force artifact in
  let apath = Filename.temp_file "pathsel-mon" ".psa" in
  (match Store.save apath store with
   | Ok () -> ()
   | Error e -> Alcotest.failf "save failed: %s" (Core.Errors.to_string e));
  Fun.protect ~finally:(fun () -> try Sys.remove apath with Sys_error _ -> ())
  @@ fun () -> f store clean apath

let test_generation_and_reload () =
  with_artifact_file @@ fun store _clean apath ->
  let t = Serve.create ~reload_from:apath store in
  Alcotest.(check int) "fresh server is generation 1" 1
    (gen_of (Serve.handle t {|{"op":"ping"}|}));
  (match Serve.do_reload t with
   | Ok () -> ()
   | Error m -> Alcotest.failf "reload failed: %s" m);
  Alcotest.(check int) "reload bumps the generation" 2
    (gen_of (Serve.handle t {|{"op":"ping"}|}));
  (match Serve.Wire.parse (Serve.handle t {|{"op":"stats"}|}) with
   | Ok j ->
     (match Serve.Wire.member "artifact" j with
      | Some a ->
        (match Serve.Wire.member "generation" a with
         | Some (Serve.Wire.Int 2) -> ()
         | _ -> Alcotest.failf "artifact.generation: %s" (Serve.Wire.print j))
      | None -> Alcotest.fail "stats missing artifact")
   | Error m -> Alcotest.failf "stats unparseable: %s" m);
  (* without a reload path the swap is refused, not crashed *)
  let t2 = Serve.create store in
  match Serve.do_reload t2 with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "reload without a path must be refused"

let test_observe_requires_monitor () =
  let store, clean = Lazy.force artifact in
  let t = Serve.create store in
  Alcotest.(check bool) "observe refused when monitoring is off" false
    (response_ok (Serve.handle t (observe_req clean (exact_truth store clean))))

let test_auto_reselect_end_to_end () =
  with_artifact_file @@ fun store clean apath ->
  let config =
    { Serve.default_config with Serve.monitor = Some serve_mon_cfg }
  in
  let t = Serve.create ~config ~reload_from:apath store in
  let truth = exact_truth store clean in
  let n_dies, n_rem = Linalg.Mat.dims truth in
  (* healthy stream: calibration plus a flat zero-residual baseline *)
  let r1 = Serve.handle t (observe_req clean truth) in
  Alcotest.(check bool) "observe accepted" true (response_ok r1);
  Alcotest.(check int) "observe rides generation 1" 1 (gen_of r1);
  (match Serve.Wire.parse r1 with
   | Ok j ->
     (match Serve.Wire.member "queued" j with
      | Some (Serve.Wire.Int q) -> Alcotest.(check int) "all dies clean" n_dies q
      | _ -> Alcotest.failf "no queued count: %s" r1)
   | Error m -> Alcotest.failf "unparseable: %s" m);
  Serve.monitor_step t ~now:0.0;
  (match Serve.monitor_report t with
   | Some rep ->
     Alcotest.(check bool) "calibrated" false rep.Serve.Monitor.calibrating;
     Alcotest.(check int) "stream observed" n_dies rep.Serve.Monitor.observed;
     Alcotest.(check string) "healthy baseline" "healthy"
       (Stats.Drift.state_to_string rep.Serve.Monitor.state)
   | None -> Alcotest.fail "monitor armed but no report");
  (* inject a process shift: every remaining-path delay jumps — the
     residual stream leaves the zero-sigma reference immediately *)
  let shifted =
    Linalg.Mat.init n_dies n_rem (fun i j -> Linalg.Mat.get truth i j +. 10.0)
  in
  Alcotest.(check bool) "shifted batch accepted" true
    (response_ok (Serve.handle t (observe_req clean shifted)));
  Serve.monitor_step t ~now:1.0;
  (match Serve.monitor_report t with
   | Some rep ->
     Alcotest.(check int) "drift bound, reselect ran" 1
       rep.Serve.Monitor.reselects;
     Alcotest.(check int) "no failures" 0 rep.Serve.Monitor.reselect_failures;
     Alcotest.(check bool) "reselect wall time surfaced" true
       (Float.is_finite rep.Serve.Monitor.last_reselect_ms)
   | None -> Alcotest.fail "monitor lost after reselect");
  (* the re-selected artifact was saved, CRC-verified and swapped in *)
  Alcotest.(check int) "swap bumped the generation" 2
    (gen_of (Serve.handle t {|{"op":"ping"}|}));
  match Serve.Wire.parse (Serve.handle t {|{"op":"stats"}|}) with
  | Ok j ->
    (match Serve.Wire.member "artifact" j with
     | Some a ->
       (match Serve.Wire.member "fingerprint" a with
        | Some (Serve.Wire.String fp) ->
          let has_marker =
            let marker = "[reselect" in
            let lm = String.length marker and n = String.length fp in
            let rec go i =
              i + lm <= n && (String.sub fp i lm = marker || go (i + 1))
            in
            go 0
          in
          Alcotest.(check bool) "provenance in the fingerprint" true has_marker
        | _ -> Alcotest.fail "no fingerprint")
     | None -> Alcotest.fail "stats missing artifact")
  | Error m -> Alcotest.failf "stats unparseable: %s" m

let test_reselect_failure_degrades_gracefully () =
  (* monitor armed but no reload path: re-selection cannot swap, so it
     must fail into backoff while the old artifact keeps serving *)
  let store, clean = Lazy.force artifact in
  let config =
    { Serve.default_config with Serve.monitor = Some serve_mon_cfg }
  in
  let t = Serve.create ~config store in
  let truth = exact_truth store clean in
  let n_dies, n_rem = Linalg.Mat.dims truth in
  Alcotest.(check bool) "healthy stream" true
    (response_ok (Serve.handle t (observe_req clean truth)));
  Serve.monitor_step t ~now:0.0;
  let shifted =
    Linalg.Mat.init n_dies n_rem (fun i j -> Linalg.Mat.get truth i j +. 10.0)
  in
  Alcotest.(check bool) "shifted stream" true
    (response_ok (Serve.handle t (observe_req clean shifted)));
  Serve.monitor_step t ~now:1.0;
  (match Serve.monitor_report t with
   | Some rep ->
     Alcotest.(check int) "failure counted" 1
       rep.Serve.Monitor.reselect_failures;
     Alcotest.(check int) "nothing swapped" 0 rep.Serve.Monitor.reselects;
     Alcotest.(check bool) "backoff armed" true
       (rep.Serve.Monitor.backoff_s > 0.0);
     Alcotest.(check bool) "cause surfaced" true
       (String.length rep.Serve.Monitor.last_error > 0)
   | None -> Alcotest.fail "monitor armed but no report");
  (* the serving path never noticed: same generation, predictions live *)
  Alcotest.(check int) "old artifact keeps serving" 1
    (gen_of (Serve.handle t {|{"op":"ping"}|}));
  let predict_req =
    Serve.Wire.print
      (Serve.Wire.Obj
         [
           ("op", Serve.Wire.String "predict");
           ("dies", Serve.Wire.mat_to_json clean);
         ])
  in
  Alcotest.(check bool) "predict unaffected" true
    (response_ok (Serve.handle t predict_req))

let test_client_observe_and_generation () =
  let config =
    { Serve.default_config with Serve.monitor = Some serve_mon_cfg }
  in
  with_server ~config (fun store clean addr ->
      let c = Serve.Client.connect addr in
      Fun.protect ~finally:(fun () -> Serve.Client.close c) @@ fun () ->
      Alcotest.(check (option int)) "no generation before a response" None
        (Serve.Client.generation c);
      Alcotest.(check bool) "ping" true (Serve.Client.ping c);
      Alcotest.(check (option int)) "generation tracked" (Some 1)
        (Serve.Client.generation c);
      let truth = exact_truth store clean in
      match Serve.Client.observe c ~measured:clean ~truth with
      | Ok j ->
        (match Serve.Wire.member "queued" j with
         | Some (Serve.Wire.Int q) when q >= 1 -> ()
         | _ -> Alcotest.failf "queued missing: %s" (Serve.Wire.print j))
      | Error m -> Alcotest.failf "client observe failed: %s" m)

(* durability: a clean restart over the same WAL directory must come
   back with the generation bumped and the monitor state — counters,
   drift accumulators — bit-exactly where the first run left it *)
let test_restart_recovers_state () =
  let store, clean = Lazy.force artifact in
  let wal_dir =
    let d = Filename.temp_file "pathsel-serve-wal" "" in
    Sys.remove d;
    d
  in
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists wal_dir then begin
        Array.iter
          (fun f -> try Sys.remove (Filename.concat wal_dir f) with _ -> ())
          (Sys.readdir wal_dir);
        try Unix.rmdir wal_dir with Unix.Unix_error _ -> ()
      end)
  @@ fun () ->
  let config =
    {
      Serve.default_config with
      Serve.monitor =
        (* drift thresholds out of reach: the stream below has real
           residuals (live CUSUM movement to compare across the
           restart) but must never trigger a re-selection *)
        Some
          {
            serve_mon_cfg with
            Serve.Monitor.cooldown = 0.05;
            drift =
              { Stats.Drift.default_config with Stats.Drift.slack = 0.0;
                warn = 1e6; drift = 1e9; var_ratio = 1e9 };
          };
      durability =
        Some
          { Serve.wal_dir; checkpoint_every = 4; wal_segment_bytes = 1 lsl 22;
            wal_retain = 1 };
    }
  in
  let obj_int j outer field =
    match Serve.Wire.member outer j with
    | Some o ->
      (match Serve.Wire.member field o with
       | Some (Serve.Wire.Int i) -> i
       | _ -> Alcotest.failf "stats: no %s.%s (int)" outer field)
    | None -> Alcotest.failf "stats: no %s object" outer
  in
  let obj_float j outer field =
    match Serve.Wire.member outer j with
    | Some o ->
      (match Serve.Wire.member field o with
       | Some (Serve.Wire.Float f) -> f
       | Some (Serve.Wire.Int i) -> float_of_int i
       | _ -> Alcotest.failf "stats: no %s.%s (float)" outer field)
    | None -> Alcotest.failf "stats: no %s object" outer
  in
  let obj_string j outer field =
    match Serve.Wire.member outer j with
    | Some o ->
      (match Serve.Wire.member field o with
       | Some (Serve.Wire.String s) -> s
       | _ -> Alcotest.failf "stats: no %s.%s (string)" outer field)
    | None -> Alcotest.failf "stats: no %s object" outer
  in
  let stats_exn c =
    match Serve.Client.stats c with
    | Ok j -> j
    | Error m -> Alcotest.failf "stats failed: %s" m
  in
  let gen_of j =
    match Serve.Wire.member "gen" j with
    | Some (Serve.Wire.Int g) -> g
    | _ -> Alcotest.fail "stats: no gen"
  in
  (* truth with a constant shift: nonzero residuals, so the detector
     accumulators the restart must preserve are not trivially zero *)
  let truth = exact_truth store clean in
  let n_dies, n_rem = Linalg.Mat.dims truth in
  let shifted =
    Linalg.Mat.init n_dies n_rem (fun i j -> Linalg.Mat.get truth i j +. 0.25)
  in
  (* first run: feed the monitor, wait until every journaled record is
     applied, and note the exact state the restart must reproduce *)
  let first_run =
    with_server ~config (fun _store _clean addr ->
        let c = Serve.Client.connect addr in
        Fun.protect ~finally:(fun () -> Serve.Client.close c) @@ fun () ->
        for _ = 1 to 4 do
          match Serve.Client.observe c ~measured:clean ~truth:shifted with
          | Ok j ->
            Alcotest.(check bool) "ack only after the journal write" true
              (Serve.Wire.member "journaled" j = Some (Serve.Wire.Bool true));
            Alcotest.(check int) "per-die status for the whole batch" n_dies
              (List.length (Serve.Client.die_statuses j))
          | Error m -> Alcotest.failf "observe failed: %s" m
        done;
        (* the monitor drains asynchronously: settle before reading *)
        let deadline = Unix.gettimeofday () +. 5.0 in
        let rec settle () =
          let j = stats_exn c in
          let applied =
            obj_int j "monitor" "observed" + obj_int j "monitor" "skipped"
          in
          if applied >= obj_int j "durability" "journaled" then j
          else if Unix.gettimeofday () > deadline then
            Alcotest.fail "monitor never drained the journal"
          else begin
            Thread.delay 0.02;
            settle ()
          end
        in
        settle ())
  in
  let gen1 = gen_of first_run in
  let journaled1 = obj_int first_run "durability" "journaled" in
  Alcotest.(check int) "every die journaled" (4 * n_dies) journaled1;
  (* second run, same WAL dir: recovery is checkpoint + WAL suffix *)
  with_server ~config (fun _store _clean addr ->
      let c = Serve.Client.connect addr in
      Fun.protect ~finally:(fun () -> Serve.Client.close c) @@ fun () ->
      let j = stats_exn c in
      Alcotest.(check int) "generation survives and increments" (gen1 + 1)
        (gen_of j);
      Alcotest.(check int) "journal high-water mark survives" journaled1
        (obj_int j "durability" "journaled");
      List.iter
        (fun field ->
          Alcotest.(check int)
            ("monitor." ^ field ^ " recovered")
            (obj_int first_run "monitor" field)
            (obj_int j "monitor" field))
        [ "observed"; "skipped"; "dropped"; "refit_dies"; "reselects" ];
      Alcotest.(check string) "drift state recovered"
        (obj_string first_run "monitor" "state")
        (obj_string j "monitor" "state");
      (* the wire prints %.17g, so bit-level equality is observable
         end to end *)
      List.iter
        (fun field ->
          Alcotest.(check int64)
            ("monitor." ^ field ^ " bit-exact")
            (Int64.bits_of_float (obj_float first_run "monitor" field))
            (Int64.bits_of_float (obj_float j "monitor" field)))
        [ "cusum"; "var_ratio" ];
      (* and the revived journal keeps accepting acked work *)
      match Serve.Client.observe c ~measured:clean ~truth:shifted with
      | Ok ack ->
        Alcotest.(check bool) "post-restart observe journaled" true
          (Serve.Wire.member "journaled" ack = Some (Serve.Wire.Bool true));
        Alcotest.(check bool) "dies accepted after recovery" true
          (List.for_all (fun s -> s = "used") (Serve.Client.die_statuses ack))
      | Error m -> Alcotest.failf "post-restart observe failed: %s" m)

let suites =
  [
    ( "serve",
      [
        Alcotest.test_case "wire round trip" `Quick test_wire_roundtrip;
        Alcotest.test_case "wire floats keep their bits" `Quick
          test_wire_float_bits;
        Alcotest.test_case "clean batch bit-identical over socket" `Quick
          test_clean_batch_bit_identical;
        Alcotest.test_case "faulty batch matches Robust" `Quick
          test_faulty_batch_matches_robust;
        Alcotest.test_case "malformed lines poison only themselves" `Quick
          test_malformed_line_isolated;
        Alcotest.test_case "stats counters" `Quick test_stats_counters;
        Alcotest.test_case "framer edge cases" `Quick test_framer_edges;
        Alcotest.test_case "framing edge cases over the socket" `Quick
          test_framing_over_socket;
        Alcotest.test_case "overload shedding" `Quick test_shed_overloaded;
        Alcotest.test_case "deadline expiry answers and closes" `Quick
          test_deadline_exceeded;
        Alcotest.test_case "idle connections reaped" `Quick test_idle_reaped;
        Alcotest.test_case "SIGHUP hot reload" `Quick test_sighup_reload;
        Alcotest.test_case "retry policy semantics" `Quick test_retry_semantics;
        Alcotest.test_case "generation counter and reload" `Quick
          test_generation_and_reload;
        Alcotest.test_case "observe requires the monitor" `Quick
          test_observe_requires_monitor;
        Alcotest.test_case "drift to auto-reselect, end to end" `Quick
          test_auto_reselect_end_to_end;
        Alcotest.test_case "reselect failure degrades gracefully" `Quick
          test_reselect_failure_degrades_gracefully;
        Alcotest.test_case "client observe and generation tracking" `Quick
          test_client_observe_and_generation;
        Alcotest.test_case "restart recovers generation and monitor state"
          `Quick test_restart_recovers_state;
      ] );
  ]
