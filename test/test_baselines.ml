(* Tests for the related-work baseline implementations. *)

let fixture =
  lazy
    (let nl =
       Circuit.Generator.generate
         { Circuit.Generator.default with num_gates = 150; num_inputs = 14;
           num_outputs = 12; depth = 10; seed = 8 }
     in
     let model = Timing.Variation.make_model ~levels:3 () in
     Core.Pipeline.prepare ~netlist:nl ~model ~yield_samples:200 ~seed:21 ())

let score setup predictor =
  let mc = Timing.Monte_carlo.sample (Rng.create 3) setup.Core.Pipeline.pool ~n:1200 in
  Core.Evaluate.predictor_metrics predictor
    ~path_delays:(Timing.Monte_carlo.path_delays mc)

let test_random_selection_valid () =
  let setup = Lazy.force fixture in
  let a = Timing.Paths.a_mat setup.Core.Pipeline.pool in
  let mu = Timing.Paths.mu_paths setup.Core.Pipeline.pool in
  let p = Core.Baselines.random_selection ~rng:(Rng.create 1) ~a ~mu ~r:8 in
  Alcotest.(check int) "eight paths" 8 (Array.length (Core.Predictor.rep_indices p));
  let m = score setup p in
  Alcotest.(check bool) "finite errors" true (Float.is_finite m.Core.Evaluate.e1)

let test_random_selection_validation () =
  let setup = Lazy.force fixture in
  let a = Timing.Paths.a_mat setup.Core.Pipeline.pool in
  let mu = Timing.Paths.mu_paths setup.Core.Pipeline.pool in
  Alcotest.(check bool) "r = 0 rejected" true
    (match Core.Baselines.random_selection ~rng:(Rng.create 1) ~a ~mu ~r:0 with
     | (_ : Core.Predictor.t) -> false
     | exception Invalid_argument _ -> true)

let test_path_features_sane () =
  let setup = Lazy.force fixture in
  let pool = setup.Core.Pipeline.pool in
  for i = 0 to min 20 (Timing.Paths.num_paths pool - 1) do
    let f = Core.Baselines.path_features pool i in
    let p = Timing.Paths.path pool i in
    Alcotest.(check int) "length" (Array.length p.Timing.Path_extract.gates)
      (int_of_float f.Core.Baselines.length);
    let mix_sum = Array.fold_left ( +. ) 0.0 f.Core.Baselines.cell_mix in
    if Float.abs (mix_sum -. 1.0) > 1e-9 then
      Alcotest.failf "path %d cell mix sums to %g" i mix_sum
  done

let test_feature_clustering_runs () =
  let setup = Lazy.force fixture in
  let p =
    Core.Baselines.feature_clustering ~rng:(Rng.create 2)
      ~pool:setup.Core.Pipeline.pool ~r:6
  in
  let n = Array.length (Core.Predictor.rep_indices p) in
  Alcotest.(check bool) "between 1 and 6 medoids" true (n >= 1 && n <= 6)

let test_rcp_single_path () =
  let setup = Lazy.force fixture in
  let p = Core.Baselines.representative_critical_path ~pool:setup.Core.Pipeline.pool in
  Alcotest.(check int) "one path" 1 (Array.length (Core.Predictor.rep_indices p))

let test_algorithm1_beats_baselines () =
  (* the paper's premise: variational subset selection binds paths
     better than structural features or chance, at the same budget *)
  let setup = Lazy.force fixture in
  let pool = setup.Core.Pipeline.pool in
  let a = Timing.Paths.a_mat pool in
  let mu = Timing.Paths.mu_paths pool in
  let algo1 = Core.Pipeline.approximate_selection setup ~eps:0.05 in
  let r = max 1 (Array.length algo1.Core.Select.indices) in
  let e1_algo = (score setup algo1.Core.Select.predictor).Core.Evaluate.e1 in
  (* average 3 random draws *)
  let e1_rand =
    List.fold_left
      (fun acc seed ->
        acc
        +. (score setup (Core.Baselines.random_selection ~rng:(Rng.create seed) ~a ~mu ~r))
             .Core.Evaluate.e1)
      0.0 [ 11; 12; 13 ]
    /. 3.0
  in
  Alcotest.(check bool)
    (Printf.sprintf "algo1 %.3f <= random avg %.3f" e1_algo e1_rand)
    true
    (e1_algo <= e1_rand +. 1e-6)

let unit_tests =
  [
    ("baselines: random selection", test_random_selection_valid);
    ("baselines: random validation", test_random_selection_validation);
    ("baselines: path features", test_path_features_sane);
    ("baselines: feature clustering", test_feature_clustering_runs);
    ("baselines: single RCP", test_rcp_single_path);
    ("baselines: algorithm 1 not worse than random", test_algorithm1_beats_baselines);
  ]

let suites =
  [
    ( "baselines",
      List.map (fun (name, f) -> Alcotest.test_case name `Quick f) unit_tests );
  ]
