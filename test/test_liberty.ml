(* Tests for the Liberty reader and the NLDM delay calculator. *)

let check_close ?(tol = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > tol then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

let builtin_lib =
  lazy (Circuit.Liberty.Library.of_group (Circuit.Liberty.parse Circuit.Liberty.builtin))

(* ------------------------------------------------------------------ *)
(* Parser *)

let test_parse_builtin () =
  let g = Circuit.Liberty.parse Circuit.Liberty.builtin in
  Alcotest.(check string) "top group" "library" g.Circuit.Liberty.gname;
  let lib = Circuit.Liberty.Library.of_group g in
  Alcotest.(check string) "name" "repro90" lib.Circuit.Liberty.Library.lib_name;
  Alcotest.(check int) "twelve cells" 12
    (List.length lib.Circuit.Liberty.Library.cells)

let test_parse_comments_and_strings () =
  let text =
    "library (demo) { /* block\ncomment */ // line comment\n# hash comment\n\
     cell (X) { area : 2.5; pin (A) { direction : input; capacitance : 0.002; } } }"
  in
  let lib = Circuit.Liberty.Library.of_group (Circuit.Liberty.parse text) in
  match Circuit.Liberty.Library.find_cell lib "X" with
  | None -> Alcotest.fail "cell X missing"
  | Some c ->
    Alcotest.(check bool) "area parsed" true (c.Circuit.Liberty.Library.area = Some 2.5);
    check_close "cap" 0.002 (Circuit.Liberty.Library.average_input_cap c)

let test_parse_complex_attribute () =
  let text = "library (demo) { capacitive_load_unit (1, pf); cell (Y) { area : 1.0; } }" in
  let g = Circuit.Liberty.parse text in
  Alcotest.(check bool) "complex attr captured" true
    (List.mem_assoc "capacitive_load_unit" g.Circuit.Liberty.attrs)

let test_parse_errors () =
  Alcotest.(check bool) "unterminated group" true
    (match Circuit.Liberty.parse "library (x) { cell (y) {" with
     | (_ : Circuit.Liberty.group) -> false
     | exception Circuit.Liberty.Parse_error _ -> true);
  Alcotest.(check bool) "garbage" true
    (match Circuit.Liberty.parse "%%%" with
     | (_ : Circuit.Liberty.group) -> false
     | exception Circuit.Liberty.Parse_error _ -> true)

let test_not_a_library () =
  Alcotest.(check bool) "of_group rejects non-library" true
    (match
       Circuit.Liberty.Library.of_group (Circuit.Liberty.parse "cell (x) { }")
     with
     | (_ : Circuit.Liberty.Library.t) -> false
     | exception Circuit.Liberty.Parse_error _ -> true)

(* ------------------------------------------------------------------ *)
(* Tables *)

let table =
  {
    Circuit.Liberty.Table.index1 = [| 0.0; 1.0 |];
    index2 = [| 0.0; 2.0 |];
    values = [| [| 0.0; 2.0 |]; [| 1.0; 3.0 |] |];
  }

let test_table_corners () =
  let lk slew load = Circuit.Liberty.Table.lookup table ~slew ~load in
  check_close "corner 00" 0.0 (lk 0.0 0.0);
  check_close "corner 01" 2.0 (lk 0.0 2.0);
  check_close "corner 10" 1.0 (lk 1.0 0.0);
  check_close "corner 11" 3.0 (lk 1.0 2.0)

let test_table_interpolation () =
  let lk slew load = Circuit.Liberty.Table.lookup table ~slew ~load in
  check_close "center" 1.5 (lk 0.5 1.0);
  check_close "edge midpoint" 0.5 (lk 0.5 0.0)

let test_table_clamping () =
  let lk slew load = Circuit.Liberty.Table.lookup table ~slew ~load in
  (* queries beyond the characterized grid clamp to the edge value *)
  check_close "beyond slew clamps" 1.0 (lk 2.0 0.0);
  check_close "below slew clamps" 0.0 (lk (-1.0) 0.0);
  check_close "beyond load clamps" 3.0 (lk 5.0 9.0)

let test_table_monotone_in_load () =
  let lib = Lazy.force builtin_lib in
  match Circuit.Liberty.Library.find_cell lib "INV" with
  | None -> Alcotest.fail "INV missing"
  | Some c ->
    let d1 = Circuit.Liberty.Library.worst_delay c ~slew:0.05 ~load:0.002 in
    let d2 = Circuit.Liberty.Library.worst_delay c ~slew:0.05 ~load:0.02 in
    Alcotest.(check bool) "more load, more delay" true (d2 > d1)

(* ------------------------------------------------------------------ *)
(* Delay calculation *)

let netlist () =
  Circuit.Generator.generate { Circuit.Generator.default with num_gates = 150; seed = 2 }

let test_delay_calc_positive () =
  let lib = Lazy.force builtin_lib in
  let nl = netlist () in
  let r = Timing.Delay_calc.run lib nl in
  Array.iteri
    (fun g d -> if d <= 0.0 then Alcotest.failf "gate %d delay %.3f <= 0" g d)
    r.Timing.Delay_calc.delays;
  Array.iter
    (fun l -> if l <= 0.0 then Alcotest.fail "gate with zero load")
    r.Timing.Delay_calc.loads

let test_delay_calc_fanout_increases_load () =
  let lib = Lazy.force builtin_lib in
  let nl = netlist () in
  let r = Timing.Delay_calc.run lib nl in
  (* the gate with max fanout must carry more load than one with min *)
  let gmax = ref 0 and gmin = ref 0 in
  for g = 0 to Circuit.Netlist.num_gates nl - 1 do
    if Circuit.Netlist.fanout_count nl g > Circuit.Netlist.fanout_count nl !gmax then
      gmax := g;
    if Circuit.Netlist.fanout_count nl g < Circuit.Netlist.fanout_count nl !gmin then
      gmin := g
  done;
  Alcotest.(check bool) "load tracks fanout" true
    (r.Timing.Delay_calc.loads.(!gmax) > r.Timing.Delay_calc.loads.(!gmin))

let test_delay_calc_slew_propagates () =
  (* deep gates should generally see different slews than PI-driven
     gates; at minimum, some slew must differ from the PI default *)
  let lib = Lazy.force builtin_lib in
  let nl = netlist () in
  let r = Timing.Delay_calc.run lib nl in
  let distinct = Hashtbl.create 16 in
  Array.iter (fun s -> Hashtbl.replace distinct s ()) r.Timing.Delay_calc.slews;
  Alcotest.(check bool) "slews vary" true (Hashtbl.length distinct > 3)

let test_delay_model_from_nldm () =
  let lib = Lazy.force builtin_lib in
  let nl = netlist () in
  let model = Timing.Variation.make_model ~levels:3 () in
  let dm = Timing.Delay_calc.delay_model lib nl ~model in
  let r = Timing.Delay_calc.run lib nl in
  for g = 0 to Circuit.Netlist.num_gates nl - 1 do
    check_close ~tol:1e-9 "nominal = NLDM delay" r.Timing.Delay_calc.delays.(g)
      (Timing.Delay_model.nominal dm g)
  done;
  (* sensitivities still follow the 6% random share rule *)
  let total = Timing.Delay_model.sigma dm 0 ** 2.0 in
  let rand_var =
    List.fold_left
      (fun acc (k, c) ->
        match k with
        | Timing.Variation.Gate_random _ -> acc +. (c *. c)
        | Timing.Variation.Region _ -> acc)
      0.0
      (Timing.Delay_model.sensitivities dm 0)
  in
  check_close ~tol:1e-9 "random share preserved" 0.06 (rand_var /. total)

let test_delay_model_nominals_validation () =
  let nl = netlist () in
  let model = Timing.Variation.make_model ~levels:3 () in
  Alcotest.(check bool) "wrong length rejected" true
    (match Timing.Delay_model.build_with_nominals nl model [| 1.0 |] with
     | (_ : Timing.Delay_model.t) -> false
     | exception Invalid_argument _ -> true)

let test_full_selection_on_nldm_model () =
  (* the whole pipeline runs off an NLDM-based delay model *)
  let lib = Lazy.force builtin_lib in
  let nl = netlist () in
  let model = Timing.Variation.make_model ~levels:3 () in
  let dm = Timing.Delay_calc.delay_model lib nl ~model in
  let t_cons = Timing.Delay_model.nominal_critical_delay dm in
  let r = Timing.Path_extract.extract dm ~t_cons ~yield_threshold:0.995 in
  Alcotest.(check bool) "paths extracted" true (r.Timing.Path_extract.paths <> []);
  let pool = Timing.Paths.build dm r.Timing.Path_extract.paths in
  let sel =
    Core.Select.approximate ~a:(Timing.Paths.a_mat pool)
      ~mu:(Timing.Paths.mu_paths pool) ~eps:0.05 ~t_cons ()
  in
  Alcotest.(check bool) "selection within tolerance" true (sel.Core.Select.eps_r <= 0.05)

let unit_tests =
  [
    ("liberty: parse builtin", test_parse_builtin);
    ("liberty: comments and strings", test_parse_comments_and_strings);
    ("liberty: complex attribute", test_parse_complex_attribute);
    ("liberty: parse errors", test_parse_errors);
    ("liberty: of_group rejects non-library", test_not_a_library);
    ("table: corners", test_table_corners);
    ("table: bilinear interpolation", test_table_interpolation);
    ("table: clamped extrapolation", test_table_clamping);
    ("table: monotone in load", test_table_monotone_in_load);
    ("nldm: positive delays and loads", test_delay_calc_positive);
    ("nldm: load tracks fanout", test_delay_calc_fanout_increases_load);
    ("nldm: slews propagate", test_delay_calc_slew_propagates);
    ("nldm: feeds delay model", test_delay_model_from_nldm);
    ("nldm: nominal validation", test_delay_model_nominals_validation);
    ("nldm: full selection pipeline", test_full_selection_on_nldm_model);
  ]

let suites =
  [
    ( "liberty+nldm",
      List.map (fun (name, f) -> Alcotest.test_case name `Quick f) unit_tests );
  ]
