(* Tests for the core library: effective rank, subset selection,
   Theorem-2 predictor, Algorithms 1 and 3, guard-band analysis, and the
   end-to-end pipeline. *)

let check_close ?(tol = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > tol then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

(* Shared small end-to-end fixture (built once). *)
let fixture =
  lazy
    (let nl =
       Circuit.Generator.generate
         { Circuit.Generator.default with num_gates = 150; num_inputs = 14;
           num_outputs = 12; depth = 10; seed = 8 }
     in
     let model = Timing.Variation.make_model ~levels:3 () in
     Core.Pipeline.prepare ~netlist:nl ~model ~yield_samples:200 ~seed:21 ())

(* ------------------------------------------------------------------ *)
(* Effective rank *)

let test_effective_rank_known () =
  let s = [| 10.0; 5.0; 1.0; 0.5; 0.25 |] in
  (* E = 16.75; (1-0.05)E = 15.9125 -> needs 10+5+1 = 16 -> k = 3 *)
  Alcotest.(check int) "eta 5%" 3 (Core.Effective_rank.of_singular_values ~eta:0.05 s);
  (* (1-0.4)E = 10.05 -> 10+5 = 15 >= 10.05 at k = 2 *)
  Alcotest.(check int) "eta 40%" 2 (Core.Effective_rank.of_singular_values ~eta:0.4 s)

let test_effective_rank_bounds () =
  let s = [| 4.0; 3.0; 2.0; 1.0 |] in
  let er = Core.Effective_rank.of_singular_values ~eta:0.05 s in
  Alcotest.(check bool) "1 <= er <= n" true (er >= 1 && er <= 4);
  Alcotest.(check int) "zero spectrum" 0
    (Core.Effective_rank.of_singular_values ~eta:0.05 [| 0.0; 0.0 |])

let test_effective_rank_monotone_in_eta () =
  let s = Array.init 20 (fun i -> exp (-0.4 *. float_of_int i)) in
  let e1 = Core.Effective_rank.of_singular_values ~eta:0.01 s in
  let e10 = Core.Effective_rank.of_singular_values ~eta:0.10 s in
  Alcotest.(check bool) "larger eta, smaller effective rank" true (e10 <= e1)

let test_effective_rank_le_rank () =
  let setup = Lazy.force fixture in
  let a = Timing.Paths.a_mat setup.pool in
  let svd = Linalg.Svd.factor a in
  let er = Core.Effective_rank.of_singular_values ~eta:0.05 svd.Linalg.Svd.s in
  Alcotest.(check bool) "effective rank <= rank" true (er <= Linalg.Svd.rank svd)

let test_effective_rank_validation () =
  Alcotest.(check bool) "bad eta" true
    (match Core.Effective_rank.of_singular_values ~eta:1.5 [| 1.0 |] with
     | (_ : int) -> false
     | exception Invalid_argument _ -> true);
  Alcotest.(check bool) "unsorted spectrum" true
    (match Core.Effective_rank.of_singular_values ~eta:0.05 [| 1.0; 2.0 |] with
     | (_ : int) -> false
     | exception Invalid_argument _ -> true)

let test_energy_profile () =
  let p = Core.Effective_rank.energy_profile [| 3.0; 1.0 |] in
  check_close "first" 0.75 p.(0);
  check_close "last" 1.0 p.(1);
  let n = Core.Effective_rank.normalized_spectrum [| 3.0; 1.0 |] in
  check_close "normalized head" 0.75 n.(0)

(* ------------------------------------------------------------------ *)
(* Subset selection (Algorithm 2) *)

let test_subset_select_distinct_sorted () =
  let setup = Lazy.force fixture in
  let a = Timing.Paths.a_mat setup.pool in
  let idx = Core.Subset_select.rows a ~r:10 in
  Alcotest.(check int) "10 rows" 10 (Array.length idx);
  Array.iteri
    (fun k i ->
      if k > 0 && idx.(k - 1) >= i then Alcotest.fail "indices not sorted/distinct")
    idx

let test_subset_select_rows_independent () =
  (* the selected rows must be linearly independent when r <= rank *)
  let setup = Lazy.force fixture in
  let a = Timing.Paths.a_mat setup.pool in
  let svd = Linalg.Svd.factor a in
  let rank = Linalg.Svd.rank svd in
  let r = min rank 12 in
  let idx = Core.Subset_select.rows_from_svd svd ~r in
  let sub = Linalg.Mat.select_rows a idx in
  Alcotest.(check int) "full row rank" r (Linalg.Rank.of_mat sub)

let test_subset_select_range_check () =
  let a = Linalg.Mat.identity 4 in
  Alcotest.(check bool) "r=0 rejected" true
    (match Core.Subset_select.rows a ~r:0 with
     | (_ : int array) -> false
     | exception Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Predictor (Theorem 2) *)

(* A tiny analytic case: three "paths" over two variables where path 3
   is exactly path1 + path2. Measuring rows {0,1} predicts row 2 with
   zero error. *)
let tiny_a () =
  Linalg.Mat.of_arrays [| [| 1.0; 0.0 |]; [| 0.0; 1.0 |]; [| 1.0; 1.0 |] |]

let test_predictor_exact_dependency () =
  let a = tiny_a () in
  let mu = [| 10.0; 20.0; 30.0 |] in
  let p = Core.Predictor.build ~a ~mu ~rep:[| 0; 1 |] in
  let sig_err = Core.Predictor.error_sigmas p in
  check_close ~tol:1e-10 "zero analytic error" 0.0 sig_err.(0);
  (* measured delays for x = (0.5, -0.2): d0 = 10.5, d1 = 19.8 -> d2 = 30.3 *)
  let pred = Core.Predictor.predict p ~measured:[| 10.5; 19.8 |] in
  check_close ~tol:1e-9 "exact prediction" 30.3 pred.(0)

let test_predictor_partial_information () =
  (* measuring only row 0 of the tiny system leaves variance of x2 *)
  let a = tiny_a () in
  let mu = [| 10.0; 20.0; 30.0 |] in
  let p = Core.Predictor.build ~a ~mu ~rep:[| 0 |] in
  let sig_err = Core.Predictor.error_sigmas p in
  (* remaining rows are 1:(0,1) and 2:(1,1); predictor from row 0 can
     cancel the x1 part of row 2 but never x2 *)
  check_close ~tol:1e-9 "row 1 irreducible sigma" 1.0 sig_err.(0);
  check_close ~tol:1e-9 "row 2 residual sigma" 1.0 sig_err.(1)

let test_predictor_error_matches_mc () =
  (* the analytic per-path error std must match Monte Carlo *)
  let setup = Lazy.force fixture in
  let sel = Core.Pipeline.approximate_selection setup ~eps:0.05 in
  let p = sel.Core.Select.predictor in
  let mc = Timing.Monte_carlo.sample (Rng.create 33) setup.pool ~n:3000 in
  let d = Timing.Monte_carlo.path_delays mc in
  let rep = Core.Predictor.rep_indices p in
  let rem = Core.Predictor.rem_indices p in
  let pred = Core.Predictor.predict_all p ~measured:(Linalg.Mat.select_cols d rep) in
  let truth = Linalg.Mat.select_cols d rem in
  let sig_model = Core.Predictor.error_sigmas p in
  (* pick the remaining path with the largest modeled error *)
  let j = Linalg.Vec.argmax sig_model in
  let errs =
    Array.init 3000 (fun i -> Linalg.Mat.get pred i j -. Linalg.Mat.get truth i j)
  in
  let sd = Stats.Descriptive.stddev errs in
  if Float.abs (sd -. sig_model.(j)) > 0.12 *. Float.max 1e-9 sig_model.(j) then
    Alcotest.failf "MC error std %.4f vs model %.4f" sd sig_model.(j);
  check_close ~tol:(5.0 *. sig_model.(j) /. sqrt 3000.0) "error is zero-mean" 0.0
    (Stats.Descriptive.mean errs)

let test_predictor_validation () =
  let a = tiny_a () in
  let mu = [| 1.0; 2.0; 3.0 |] in
  Alcotest.(check bool) "empty rep rejected" true
    (match Core.Predictor.build ~a ~mu ~rep:[||] with
     | (_ : Core.Predictor.t) -> false
     | exception Invalid_argument _ -> true);
  Alcotest.(check bool) "unsorted rep rejected" true
    (match Core.Predictor.build ~a ~mu ~rep:[| 1; 0 |] with
     | (_ : Core.Predictor.t) -> false
     | exception Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Selection (Algorithm 1) *)

let test_exact_selection_zero_error () =
  let setup = Lazy.force fixture in
  let sel = Core.Pipeline.exact_selection setup in
  Alcotest.(check int) "r = rank" sel.Core.Select.rank (Array.length sel.Core.Select.indices);
  Alcotest.(check bool) "analytic error ~ 0" true (sel.Core.Select.eps_r < 1e-6)

let test_approximate_meets_tolerance () =
  let setup = Lazy.force fixture in
  let sel = Core.Pipeline.approximate_selection setup ~eps:0.05 in
  Alcotest.(check bool) "eps_r <= eps" true (sel.Core.Select.eps_r <= 0.05);
  Alcotest.(check bool) "fewer than exact" true
    (Array.length sel.Core.Select.indices <= sel.Core.Select.rank)

let test_linear_and_bisection_agree () =
  let setup = Lazy.force fixture in
  let a = Timing.Paths.a_mat setup.pool in
  let mu = Timing.Paths.mu_paths setup.pool in
  let lin =
    Core.Select.approximate ~schedule:Core.Select.Linear ~a ~mu ~eps:0.05
      ~t_cons:setup.t_cons ()
  in
  let bis =
    Core.Select.approximate ~schedule:Core.Select.Bisection ~a ~mu ~eps:0.05
      ~t_cons:setup.t_cons ()
  in
  let nl = Array.length lin.Core.Select.indices in
  let nb = Array.length bis.Core.Select.indices in
  if abs (nl - nb) > 1 then Alcotest.failf "schedules disagree: linear %d, bisection %d" nl nb;
  Alcotest.(check bool) "bisection cheaper" true
    (bis.Core.Select.evaluations <= lin.Core.Select.evaluations)

let test_tighter_eps_needs_more_paths () =
  let setup = Lazy.force fixture in
  let loose = Core.Pipeline.approximate_selection setup ~eps:0.10 in
  let tight = Core.Pipeline.approximate_selection setup ~eps:0.01 in
  Alcotest.(check bool) "monotone in eps" true
    (Array.length tight.Core.Select.indices >= Array.length loose.Core.Select.indices)

let test_mc_error_within_guardband () =
  (* the MC max relative error must respect the analytic bound:
     e1 <= eps (the paper's Table 1 relationship e1 < eps) *)
  let setup = Lazy.force fixture in
  let sel = Core.Pipeline.approximate_selection setup ~eps:0.05 in
  let m = Core.Pipeline.evaluate_selection ~mc_samples:2000 setup sel in
  (* relative errors are vs d_true ~ T, so eps_r (vs T_cons) bounds them
     only loosely; allow the bound with 30% slack *)
  Alcotest.(check bool) "e1 below tolerance" true (m.Core.Evaluate.e1 <= 0.05 *. 1.3);
  Alcotest.(check bool) "e2 < e1" true (m.Core.Evaluate.e2 <= m.Core.Evaluate.e1)

let test_select_with_size () =
  let setup = Lazy.force fixture in
  let a = Timing.Paths.a_mat setup.pool in
  let mu = Timing.Paths.mu_paths setup.pool in
  let s5 = Core.Select.select_with_size ~a ~mu ~r:5 () in
  Alcotest.(check int) "exactly 5" 5 (Array.length s5.Core.Select.indices)

(* ------------------------------------------------------------------ *)
(* Figure 1 (the motivating example) *)

let figure1_pool () =
  let pi i = Circuit.Netlist.Pi i in
  let gout g = Circuit.Netlist.Gate_out g in
  let inv = Circuit.Cell.Inv in
  let nl =
    Circuit.Netlist.build ~name:"fig1" ~num_inputs:2
      ~gates:
        [
          ("G1", inv, [| pi 0 |], (0.1, 0.3));
          ("G2", inv, [| pi 1 |], (0.1, 0.7));
          ("G3", inv, [| gout 0 |], (0.3, 0.3));
          ("G4", inv, [| gout 1 |], (0.3, 0.7));
          ("G5", Circuit.Cell.Nand2, [| gout 2; gout 3 |], (0.5, 0.5));
          ("G6", inv, [| gout 4 |], (0.7, 0.7));
          ("G7", inv, [| gout 4 |], (0.7, 0.3));
          ("G8", inv, [| gout 5 |], (0.9, 0.7));
          ("G9", inv, [| gout 6 |], (0.9, 0.3));
        ]
      ~outputs:[ gout 7; gout 8 ]
  in
  let dm = Timing.Delay_model.build nl (Timing.Variation.make_model ~levels:3 ()) in
  let r = Timing.Path_extract.extract dm ~t_cons:1.0 ~yield_threshold:0.9999 in
  Timing.Paths.build dm r.Timing.Path_extract.paths

let test_figure1_three_paths_suffice () =
  let pool = figure1_pool () in
  Alcotest.(check int) "4 target paths" 4 (Timing.Paths.num_paths pool);
  let a = Timing.Paths.a_mat pool in
  let mu = Timing.Paths.mu_paths pool in
  let sel = Core.Select.exact ~a ~mu () in
  Alcotest.(check int) "3 representative paths" 3 (Array.length sel.Core.Select.indices);
  Alcotest.(check bool) "zero error" true (sel.Core.Select.eps_r < 1e-6)

let test_figure1_prediction_identity () =
  (* d_p1 = d_p2 - d_p3 + d_p4 must hold on every die sample *)
  let pool = figure1_pool () in
  let mc = Timing.Monte_carlo.sample (Rng.create 77) pool ~n:200 in
  let d = Timing.Monte_carlo.path_delays mc in
  let sel = Core.Select.exact ~a:(Timing.Paths.a_mat pool) ~mu:(Timing.Paths.mu_paths pool) () in
  let p = sel.Core.Select.predictor in
  let rep = Core.Predictor.rep_indices p in
  let rem = Core.Predictor.rem_indices p in
  Alcotest.(check int) "one remaining path" 1 (Array.length rem);
  let pred = Core.Predictor.predict_all p ~measured:(Linalg.Mat.select_cols d rep) in
  for k = 0 to 199 do
    check_close ~tol:1e-8 "die-exact prediction"
      (Linalg.Mat.get d k rem.(0)) (Linalg.Mat.get pred k 0)
  done

(* ------------------------------------------------------------------ *)
(* Hybrid (Algorithm 3) *)

let test_hybrid_reduces_measurements () =
  let setup = Lazy.force fixture in
  let h = Core.Pipeline.hybrid_selection setup ~eps:0.08 in
  let exact = Core.Pipeline.exact_selection setup in
  Alcotest.(check bool) "feasible" true h.Core.Hybrid.feasible;
  Alcotest.(check bool) "fewer measurements than exact" true
    (Core.Hybrid.total_measurements h < Array.length exact.Core.Select.indices)

let test_hybrid_unmeasured_paths_within_eps () =
  let setup = Lazy.force fixture in
  let h = Core.Pipeline.hybrid_selection setup ~eps:0.08 in
  Array.iteri
    (fun i wc ->
      let measured = Array.mem i h.Core.Hybrid.path_indices in
      if (not measured) && wc > 0.08 +. 1e-9 then
        Alcotest.failf "path %d worst-case %.4f above eps" i wc)
    h.Core.Hybrid.per_path_wc

let test_hybrid_mc_accuracy () =
  let setup = Lazy.force fixture in
  let h = Core.Pipeline.hybrid_selection setup ~eps:0.08 in
  let m = Core.Pipeline.evaluate_hybrid ~mc_samples:1500 setup h in
  Alcotest.(check bool) "e1 below eps with slack" true (m.Core.Evaluate.e1 <= 0.08 *. 1.3)

let test_hybrid_segment_indices_valid () =
  let setup = Lazy.force fixture in
  let h = Core.Pipeline.hybrid_selection setup ~eps:0.08 in
  let n_s = Timing.Paths.num_segments setup.pool in
  Array.iter
    (fun s -> if s < 0 || s >= n_s then Alcotest.failf "segment id %d out of range" s)
    h.Core.Hybrid.segment_indices

(* ------------------------------------------------------------------ *)
(* Guard band *)

let test_guardband_flag_logic () =
  Alcotest.(check bool) "within band flagged" true
    (Core.Guardband.flagged ~predicted:9.6 ~eps:0.05 ~t_cons:10.0);
  Alcotest.(check bool) "far below not flagged" false
    (Core.Guardband.flagged ~predicted:9.0 ~eps:0.05 ~t_cons:10.0);
  Alcotest.(check bool) "above always flagged" true
    (Core.Guardband.flagged ~predicted:10.5 ~eps:0.0 ~t_cons:10.0)

let test_guardband_no_misses_with_wc_band () =
  (* with the analytic worst-case band, misses are bounded by the kappa
     tail mass (0.13% per check for kappa = 3) *)
  let setup = Lazy.force fixture in
  let sel = Core.Pipeline.approximate_selection setup ~eps:0.05 in
  let r = Core.Pipeline.guardband_report ~mc_samples:1000 setup sel in
  Alcotest.(check bool) "some failures occur in fixture" true (r.true_failures > 0);
  let miss_rate = float_of_int r.missed /. float_of_int (max 1 r.true_failures) in
  Alcotest.(check bool) "miss rate below 1%" true (miss_rate < 0.01);
  Alcotest.(check bool) "rates consistent" true
    (r.detected + r.missed = r.true_failures)

let test_guardband_analyze_validation () =
  let m = Linalg.Mat.create 2 2 in
  Alcotest.(check bool) "eps >= 1 rejected" true
    (match Core.Guardband.analyze ~truth:m ~predicted:m ~eps:[| 0.5; 1.0 |] ~t_cons:1.0 with
     | (_ : Core.Guardband.report) -> false
     | exception Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Evaluate *)

let test_evaluate_perfect_prediction () =
  let d = Linalg.Mat.init 10 3 (fun i j -> 100.0 +. float_of_int ((i * 3) + j)) in
  let m = Core.Evaluate.of_predictions ~truth:d ~predicted:d in
  check_close "e1 = 0" 0.0 m.Core.Evaluate.e1;
  check_close "e2 = 0" 0.0 m.Core.Evaluate.e2

let test_evaluate_known_error () =
  let truth = Linalg.Mat.init 4 1 (fun _ _ -> 100.0) in
  let predicted = Linalg.Mat.init 4 1 (fun i _ -> if i = 0 then 110.0 else 100.0) in
  let m = Core.Evaluate.of_predictions ~truth ~predicted in
  check_close "eps_max = 10%" 0.10 m.Core.Evaluate.eps_max.(0);
  check_close "eps_avg = 2.5%" 0.025 m.Core.Evaluate.eps_avg.(0)

(* ------------------------------------------------------------------ *)
(* Pipeline *)

let test_pipeline_setup_consistent () =
  let setup = Lazy.force fixture in
  Alcotest.(check bool) "yield in (0,1]" true
    (setup.Core.Pipeline.circuit_yield > 0.0 && setup.Core.Pipeline.circuit_yield <= 1.0);
  Alcotest.(check bool) "threshold from yield" true
    (setup.Core.Pipeline.yield_threshold > 0.99);
  Alcotest.(check bool) "pool non-empty" true (Timing.Paths.num_paths setup.Core.Pipeline.pool > 0)

let test_pipeline_relaxed_constraint_extracts_more () =
  let nl =
    Circuit.Generator.generate
      { Circuit.Generator.default with num_gates = 150; num_inputs = 14;
        num_outputs = 12; depth = 10; seed = 8 }
  in
  let model = Timing.Variation.make_model ~levels:3 () in
  let tight = Core.Pipeline.prepare ~netlist:nl ~model ~yield_samples:200 ~seed:21 () in
  let relaxed =
    Core.Pipeline.prepare ~netlist:nl ~model ~yield_samples:200 ~seed:21
      ~t_cons_scale:0.95 ()
  in
  (* a tighter constraint (smaller T) makes more paths critical *)
  Alcotest.(check bool) "tighter T, more paths" true
    (Timing.Paths.num_paths relaxed.Core.Pipeline.pool
     >= Timing.Paths.num_paths tight.Core.Pipeline.pool)

let prop_subset_selection_never_degenerate =
  QCheck.Test.make ~count:10 ~name:"selected predictor never exceeds rank error bound"
    QCheck.(int_range 2 12)
    (fun r ->
      let setup = Lazy.force fixture in
      let a = Timing.Paths.a_mat setup.pool in
      let mu = Timing.Paths.mu_paths setup.pool in
      let sel = Core.Select.select_with_size ~a ~mu ~r () in
      Array.length sel.Core.Select.indices = r && sel.Core.Select.eps_r >= 0.0)

let unit_tests =
  [
    ("effective rank: known spectrum", test_effective_rank_known);
    ("effective rank: bounds", test_effective_rank_bounds);
    ("effective rank: monotone in eta", test_effective_rank_monotone_in_eta);
    ("effective rank: <= rank on real A", test_effective_rank_le_rank);
    ("effective rank: validation", test_effective_rank_validation);
    ("effective rank: energy profile", test_energy_profile);
    ("algo2: indices sorted distinct", test_subset_select_distinct_sorted);
    ("algo2: selected rows independent", test_subset_select_rows_independent);
    ("algo2: range check", test_subset_select_range_check);
    ("thm2: exact dependency", test_predictor_exact_dependency);
    ("thm2: partial information", test_predictor_partial_information);
    ("thm2: analytic error matches MC", test_predictor_error_matches_mc);
    ("thm2: validation", test_predictor_validation);
    ("algo1: exact selection zero error", test_exact_selection_zero_error);
    ("algo1: tolerance met", test_approximate_meets_tolerance);
    ("algo1: linear/bisection agree (E5)", test_linear_and_bisection_agree);
    ("algo1: monotone in eps", test_tighter_eps_needs_more_paths);
    ("algo1: MC error within bound", test_mc_error_within_guardband);
    ("algo1: fixed size", test_select_with_size);
    ("figure 1: three paths suffice", test_figure1_three_paths_suffice);
    ("figure 1: exact prediction identity", test_figure1_prediction_identity);
    ("algo3: fewer measurements than exact", test_hybrid_reduces_measurements);
    ("algo3: unmeasured paths within eps", test_hybrid_unmeasured_paths_within_eps);
    ("algo3: MC accuracy", test_hybrid_mc_accuracy);
    ("algo3: segment indices valid", test_hybrid_segment_indices_valid);
    ("guardband: flag logic", test_guardband_flag_logic);
    ("guardband: miss rate bounded", test_guardband_no_misses_with_wc_band);
    ("guardband: validation", test_guardband_analyze_validation);
    ("evaluate: perfect prediction", test_evaluate_perfect_prediction);
    ("evaluate: known error", test_evaluate_known_error);
    ("pipeline: setup consistent", test_pipeline_setup_consistent);
    ("pipeline: tighter constraint, more paths", test_pipeline_relaxed_constraint_extracts_more);
  ]

let property_tests =
  List.map (fun t -> QCheck_alcotest.to_alcotest t) [ prop_subset_selection_never_degenerate ]

let suites =
  [
    ( "core",
      List.map (fun (name, f) -> Alcotest.test_case name `Quick f) unit_tests
      @ property_tests );
  ]
