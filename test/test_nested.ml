(* Tests for the nested (incremental) subset selection. *)

let fixture =
  lazy
    (let nl =
       Circuit.Generator.generate
         { Circuit.Generator.default with num_gates = 150; num_inputs = 14;
           num_outputs = 12; depth = 10; seed = 8 }
     in
     let model = Timing.Variation.make_model ~levels:3 () in
     Core.Pipeline.prepare ~netlist:nl ~model ~yield_samples:200 ~seed:21 ())

let test_nested_order_is_permutation_prefix () =
  let setup = Lazy.force fixture in
  let a = Timing.Paths.a_mat setup.Core.Pipeline.pool in
  let svd = Linalg.Svd.factor a in
  let order = Core.Subset_select.nested_rows svd in
  let n, _ = Linalg.Mat.dims a in
  Alcotest.(check int) "order covers all rows" n (Array.length order);
  let sorted = Array.copy order in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "a permutation" (Array.init n (fun i -> i)) sorted

let test_nested_prefixes_independent () =
  (* each prefix up to rank picks rows that are independent as members
     of the left singular basis (the space the pivoting works in) *)
  let setup = Lazy.force fixture in
  let a = Timing.Paths.a_mat setup.Core.Pipeline.pool in
  let svd = Linalg.Svd.factor a in
  let rank = Linalg.Svd.rank svd in
  let u_rank = Linalg.Mat.sub_left_cols svd.u rank in
  let order = Core.Subset_select.nested_rows svd in
  List.iter
    (fun r ->
      let r = min r rank in
      let prefix = Array.sub order 0 r in
      let sub = Linalg.Mat.select_rows u_rank prefix in
      Alcotest.(check int) (Printf.sprintf "prefix %d independent" r) r
        (Linalg.Rank.of_mat sub))
    [ 2; 5; 10; 20 ]

let test_nested_meets_tolerance () =
  let setup = Lazy.force fixture in
  let a = Timing.Paths.a_mat setup.Core.Pipeline.pool in
  let mu = Timing.Paths.mu_paths setup.Core.Pipeline.pool in
  let sel =
    Core.Select.approximate_nested ~a ~mu ~eps:0.05 ~t_cons:setup.Core.Pipeline.t_cons ()
  in
  Alcotest.(check bool) "tolerance met" true (sel.Core.Select.eps_r <= 0.05)

let test_nested_close_to_repivot () =
  let setup = Lazy.force fixture in
  let a = Timing.Paths.a_mat setup.Core.Pipeline.pool in
  let mu = Timing.Paths.mu_paths setup.Core.Pipeline.pool in
  let t_cons = setup.Core.Pipeline.t_cons in
  let re = Core.Select.approximate ~a ~mu ~eps:0.05 ~t_cons () in
  let ne = Core.Select.approximate_nested ~a ~mu ~eps:0.05 ~t_cons () in
  let nr = Array.length re.Core.Select.indices in
  let nn = Array.length ne.Core.Select.indices in
  if nn > (2 * nr) + 3 then
    Alcotest.failf "nested selection much larger: %d vs %d" nn nr

let unit_tests =
  [
    ("nested: pivot order is a permutation", test_nested_order_is_permutation_prefix);
    ("nested: prefixes independent", test_nested_prefixes_independent);
    ("nested: meets tolerance", test_nested_meets_tolerance);
    ("nested: close to re-pivoting", test_nested_close_to_repivot);
  ]

let suites =
  [
    ( "nested-select",
      List.map (fun (name, f) -> Alcotest.test_case name `Quick f) unit_tests );
  ]
