(* Smoke tests for the experiment harness: every runner must execute on
   a miniature profile and produce structurally sane rows. Output is
   swallowed into a devnull channel. *)

let tiny_profile =
  {
    Experiments.Profile.name = "tiny";
    scale_of = (fun _ -> 0.12);
    max_paths = 150;
    mc_samples = 200;
    yield_samples = 60;
    benches =
      List.filter
        (fun p ->
          List.mem p.Circuit.Benchmarks.bench_name [ "s1196"; "s1423" ])
        Circuit.Benchmarks.all;
  }

let devnull () = open_out Filename.null

let test_table1_runner () =
  let oc = devnull () in
  let rows = Experiments.Table1.run ~oc tiny_profile in
  close_out oc;
  Alcotest.(check int) "two rows" 2 (List.length rows);
  List.iter
    (fun r ->
      if r.Experiments.Table1.n_approx > r.Experiments.Table1.n_exact then
        Alcotest.fail "approx larger than exact";
      if r.Experiments.Table1.n_exact > r.Experiments.Table1.n_target then
        Alcotest.fail "exact larger than target";
      if r.Experiments.Table1.e1_pct < 0.0 then Alcotest.fail "negative e1";
      if r.Experiments.Table1.e2_pct > r.Experiments.Table1.e1_pct +. 1e-9 then
        Alcotest.fail "e2 above e1")
    rows

let test_table2_runner () =
  let oc = devnull () in
  let rows = Experiments.Table2.run ~oc tiny_profile in
  close_out oc;
  Alcotest.(check int) "two rows" 2 (List.length rows);
  List.iter
    (fun r ->
      Alcotest.(check int) "total = paths + segments"
        (r.Experiments.Table2.hybrid_paths + r.Experiments.Table2.hybrid_segments)
        r.Experiments.Table2.hybrid_total;
      if r.Experiments.Table2.covered_gates > r.Experiments.Table2.gates then
        Alcotest.fail "covered gates exceed gates")
    rows

let test_figure2_runner () =
  let oc = devnull () in
  let series = Experiments.Figure2.run ~oc tiny_profile in
  close_out oc;
  Alcotest.(check int) "two series" 2 (List.length series);
  List.iter
    (fun s ->
      let v = s.Experiments.Figure2.values in
      if Array.length v = 0 then Alcotest.fail "empty series";
      Array.iteri
        (fun i x ->
          if x < 0.0 then Alcotest.fail "negative normalized value";
          if i > 0 && x > v.(i - 1) +. 1e-12 then Alcotest.fail "series not sorted")
        v;
      if s.Experiments.Figure2.effective_rank > s.Experiments.Figure2.rank then
        Alcotest.fail "effective rank above rank")
    series;
  (* the boosted-random series must decay slower *)
  match series with
  | [ a; b ] ->
    Alcotest.(check bool) "3x random flattens the spectrum" true
      (b.Experiments.Figure2.effective_rank >= a.Experiments.Figure2.effective_rank)
  | _ -> Alcotest.fail "expected two series"

let test_guardband_runner () =
  let oc = devnull () in
  let rows = Experiments.Guardband_exp.run ~oc tiny_profile in
  close_out oc;
  Alcotest.(check bool) "rows produced" true (rows <> []);
  List.iter
    (fun r ->
      if r.Experiments.Guardband_exp.detection_rate < 0.95 then
        Alcotest.failf "detection %.3f too low" r.Experiments.Guardband_exp.detection_rate)
    rows

let test_ablation_runners () =
  let oc = devnull () in
  let sched = Experiments.Ablation.run_schedule ~oc tiny_profile in
  let etas = Experiments.Ablation.run_eta ~oc tiny_profile in
  close_out oc;
  List.iter
    (fun r ->
      if abs (r.Experiments.Ablation.linear_r - r.Experiments.Ablation.bisect_r) > 1 then
        Alcotest.fail "schedules disagree";
      if r.Experiments.Ablation.bisect_evals > r.Experiments.Ablation.linear_evals then
        Alcotest.fail "bisection not cheaper")
    sched;
  let ranks = List.map (fun e -> e.Experiments.Ablation.effective_rank) etas in
  let rec non_increasing = function
    | a :: b :: rest -> a >= b && non_increasing (b :: rest)
    | [ _ ] | [] -> true
  in
  Alcotest.(check bool) "eta sweep monotone" true (non_increasing ranks)

let test_robustness_ssta_runner () =
  let oc = devnull () in
  let rows = Experiments.Robustness.run_ssta ~oc tiny_profile in
  close_out oc;
  let rec increasing f = function
    | a :: b :: rest -> f a <= f b +. 1e-9 && increasing f (b :: rest)
    | [ _ ] | [] -> true
  in
  Alcotest.(check bool) "ssta yields increase with T" true
    (increasing (fun r -> r.Experiments.Robustness.ssta_yield) rows);
  List.iter
    (fun r ->
      if Float.abs (r.Experiments.Robustness.ssta_yield
                    -. r.Experiments.Robustness.mc_yield) > 0.15 then
        Alcotest.failf "SSTA and MC yields diverge: %.3f vs %.3f"
          r.Experiments.Robustness.ssta_yield r.Experiments.Robustness.mc_yield)
    rows

let test_profiles_resolvable () =
  Alcotest.(check bool) "quick" true (Experiments.Profile.of_string "quick" <> None);
  Alcotest.(check bool) "full" true (Experiments.Profile.of_string "full" <> None);
  Alcotest.(check bool) "garbage" true (Experiments.Profile.of_string "nope" = None)

let unit_tests =
  [
    ("experiments: table1 runner", test_table1_runner);
    ("experiments: table2 runner", test_table2_runner);
    ("experiments: figure2 runner", test_figure2_runner);
    ("experiments: guardband runner", test_guardband_runner);
    ("experiments: ablation runners", test_ablation_runners);
    ("experiments: ssta validation runner", test_robustness_ssta_runner);
    ("experiments: profile lookup", test_profiles_resolvable);
  ]

let suites =
  [
    ( "experiments",
      List.map (fun (name, f) -> Alcotest.test_case name `Slow f) unit_tests );
  ]
