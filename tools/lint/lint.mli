(** Project-specific static analysis over OCaml sources (untyped AST).

    Eleven rules guard the invariants the parallel numeric core and the
    serving layer depend on; see {!rules} for the list and
    {!default_config} for the allowlists. A comment
    [(* lint: allow rule-a rule-b *)] anywhere in a file suppresses
    those rules for that file; [(* lint: allow-next rule *)] suppresses
    a rule on the next source line only. The diagnostic, rendering and
    suppression machinery here is shared with the whole-program
    typedtree analyzer ({!Analysis}, the pathsel-analyze engine). *)

type severity = Error | Warning

type diagnostic = {
  rule : string;
  severity : severity;
  file : string;
  line : int;  (** 1-based *)
  col : int;   (** 0-based *)
  message : string;
}

type config = {
  unsafe_allowlist : string list;
  raw_domain_dirs : string list;
  catchall_allowlist : string list;
  rng_dirs : string list;
  io_checked_dirs : string list;
      (** directories where raw blocking Unix I/O is banned *)
  io_wrapper_files : string list;
      (** the timeout-wrapped helpers: the only raw-I/O homes *)
  monitor_files : string list;
      (** the monitor/reselect thread: no locks, joins or blocking waits
          ([no-blocking-in-monitor]) — the self-healing loop shares
          state with the serving path through Atomic snapshots only *)
  dense_pool_banned_files : string list;
      (** the streaming pool front-end: no [Sparse.to_dense] or
          [Mat.of_arrays]/[Mat.to_arrays]/[Mat.of_rows]
          ([no-dense-pool]) — million-path pools must stay CSR and be
          consumed through the mat-mul operator *)
  wal_write_files : string list;
      (** the WAL implementation, the only home for raw [Unix.write]s
          to wal-named fds/paths ([no-unfsynced-wal]) — everything else
          must go through [Store.Wal.append], whose frame CRC + fsync
          is the journal-before-ack durability point *)
}

val default_config : config

val rules : (string * severity * string) list
(** [(name, default severity, one-line description)] for every rule. *)

val lint_source : ?config:config -> path:string -> string -> diagnostic list
(** Lint source text as if it lived at [path] (the path drives the
    directory-scoped rules). Unparseable input yields a single
    ["syntax"] diagnostic rather than raising. *)

val lint_file : ?config:config -> string -> diagnostic list

val lint_paths : ?config:config -> string list -> diagnostic list
(** Recursively lints every [.ml] under the given files/directories,
    skipping [_build] and dot-directories. *)

val severity_string : severity -> string

val render_text : diagnostic -> string
(** [file:line:col: severity [rule] message] *)

val render_json : diagnostic list -> string
(** JSON array of diagnostic objects, for machine consumption. *)

val render_sarif :
  tool:string -> rules:(string * severity * string) list -> diagnostic list -> string
(** SARIF 2.1.0 (one run, located results), for CI diff annotation.
    [tool] names the driver ("pathsel-lint" / "pathsel-analyze") and
    [rules] is its rule table. *)

val has_errors : diagnostic list -> bool

(** {2 Suppression comments}

    Shared by both engines: the syntactic linter applies them to the
    source it just parsed, and the typedtree analyzer reads the source
    file named by each [.cmt] to honor the same comments. *)

type suppressions = {
  file_wide : string list;  (** [(* lint: allow rule ... *)] *)
  next_line : (int * string) list;
      (** [(line, rule)] from [(* lint: allow-next rule ... *)]: the
          rule is suppressed on [line + 1] only *)
}

val no_suppressions : suppressions
val suppressions_of_source : string -> suppressions
val filter_suppressed : suppressions -> diagnostic list -> diagnostic list

(** {2 Path classification and file helpers} (shared with {!Analysis}) *)

val normalize : string -> string
(** backslashes to slashes, leading "./" stripped *)

val path_is : string -> string -> bool
(** [path_is p f]: [p] names file [f], exactly or as a
    component-boundary suffix. *)

val path_under : string -> string -> bool
(** [path_under p dir]: [p] lives under directory [dir] at any depth. *)

val in_any : string -> string list -> bool
(** [in_any p dirs = List.exists (path_under p) dirs] *)

val read_file : string -> string
