(* pathsel-lint: project-specific static analysis over the untyped AST.

   Parses every .ml source with the installed compiler's own parser
   (compiler-libs) and walks the Parsetree enforcing the invariants the
   parallel numeric core depends on. Rules are syntactic: no type
   information is available, so e.g. [no-float-eq] recognises an operand
   as a float when it is a float literal, an application of a float
   operator/function, or carries a [: float] constraint. That catches
   every violation this codebase has had in practice and keeps the pass
   dependency-free and fast.

   Suppression: a comment [(* lint: allow rule-a rule-b *)] anywhere in
   a file silences those rules for that file; [(* lint: allow-next
   rule *)] silences a rule for the next source line only. Both forms
   are honored by this engine and by the typedtree analyzer
   (pathsel-analyze, see analysis.ml). *)

type severity = Error | Warning

type diagnostic = {
  rule : string;
  severity : severity;
  file : string;
  line : int;
  col : int;
  message : string;
}

type config = {
  unsafe_allowlist : string list;
      (* files where Array.unsafe_* / Bigarray unsafe access is allowed *)
  raw_domain_dirs : string list;  (* dirs where Domain.spawn/join are allowed *)
  catchall_allowlist : string list;  (* files where [try _ with _ ->] is allowed *)
  rng_dirs : string list;  (* dirs allowed to touch Random/Rng internals *)
  io_checked_dirs : string list;
      (* dirs where raw blocking Unix I/O is banned (serving code) *)
  io_wrapper_files : string list;
      (* the timeout-wrapped helpers themselves: the only raw-I/O homes *)
  monitor_files : string list;
      (* the monitor/reselect thread: must stay lock-free and non-blocking *)
  dense_pool_banned_files : string list;
      (* the streaming pool front-end: must never densify the pool *)
  wal_write_files : string list;
      (* the WAL implementation: the only home for raw writes to WAL fds *)
}

let default_config =
  {
    unsafe_allowlist = [ "lib/linalg/mat.ml"; "lib/linalg/vec.ml" ];
    raw_domain_dirs = [ "lib/par/" ];
    catchall_allowlist = [ "lib/core/errors.ml" ];
    rng_dirs = [ "lib/rng/" ];
    io_checked_dirs = [ "lib/serve/"; "lib/chaos/" ];
    io_wrapper_files = [ "lib/serve/io.ml" ];
    monitor_files = [ "lib/serve/monitor.ml" ];
    dense_pool_banned_files = [ "lib/timing/pool_stream.ml" ];
    wal_write_files = [ "lib/store/wal.ml" ];
  }

let rules =
  [
    ( "no-raw-domain",
      Error,
      "Domain.spawn/Domain.join outside lib/par/ (use Par.Pool)" );
    ( "no-self-init",
      Error,
      "Random.self_init anywhere; ambient Random.* in lib/ (thread Rng state)" );
    ( "unsafe-array",
      Error,
      "Array.unsafe_*/Bigarray unsafe access outside the kernel allowlist" );
    ( "no-float-eq",
      Error,
      "(=)/(<>) on float operands (use Float.equal or a tolerance helper)" );
    ( "no-catchall",
      Error,
      "try ... with _ -> / with e -> ignore e (match specific exceptions)" );
    ( "no-exit",
      Error,
      "exit/failwith in lib/ (raise typed exceptions or return Core.Errors)" );
    ( "mutable-global-in-par",
      Warning,
      "top-level ref referenced inside a Pool.parallel_for/parallel_chunks body" );
    ( "no-unbounded-io",
      Error,
      "raw Unix.read/write/connect in serving code (use the Serve.Io wrappers)" );
    ( "no-blocking-in-monitor",
      Error,
      "Mutex/Condition/Thread.join or blocking waits in the monitor/reselect \
       path (stay lock-free; publish through Atomic snapshots)" );
    ( "no-dense-pool",
      Error,
      "Sparse.to_dense / Mat.of_arrays / Mat.to_arrays / Mat.of_rows in the \
       streaming pool front-end (pools must stay CSR; consume them through \
       the mat-mul operator)" );
    ( "no-unfsynced-wal",
      Error,
      "raw Unix.write to a WAL fd/path outside Store.Wal (the append API is \
       the durability point: length-prefixed CRC frames + fsync before ack)" );
  ]

let severity_of_rule r =
  match List.find_opt (fun (n, _, _) -> n = r) rules with
  | Some (_, s, _) -> s
  | None -> Error

(* ------------------------------------------------------------------ *)
(* Path classification *)

let normalize p =
  let p = String.map (fun c -> if c = '\\' then '/' else c) p in
  if String.length p > 2 && String.sub p 0 2 = "./" then
    String.sub p 2 (String.length p - 2)
  else p

(* [p] names file [f] (relative to some repo root): exact match or a
   component-boundary suffix match, so "lib/linalg/mat.ml" matches both
   "lib/linalg/mat.ml" and "/abs/prefix/lib/linalg/mat.ml". *)
let path_is p f =
  let p = normalize p in
  p = f
  ||
  let lp = String.length p and lf = String.length f in
  lp > lf
  && String.sub p (lp - lf) lf = f
  && p.[lp - lf - 1] = '/'

let path_under p dir =
  let p = normalize p in
  let ld = String.length dir in
  (String.length p >= ld && String.sub p 0 ld = dir)
  ||
  let needle = "/" ^ dir in
  let ln = String.length needle in
  let rec scan i =
    if i + ln > String.length p then false
    else if String.sub p i ln = needle then true
    else scan (i + 1)
  in
  scan 0

let in_any p dirs = List.exists (path_under p) dirs
let is_any p files = List.exists (path_is p) files

(* ------------------------------------------------------------------ *)
(* Suppression comments.

   Two scopes:
     (* lint: allow rule-a rule-b *)       whole file
     (* lint: allow-next rule-a rule-b *)  the next source line only

   The line-scoped form goes on the line immediately above the
   construct it excuses, next to its justification, so one annotated
   exception cannot silently blanket the rest of the file. *)

type suppressions = {
  file_wide : string list;
  next_line : (int * string) list;
      (* (line of the comment, rule): suppresses [rule] on [line + 1] *)
}

let no_suppressions = { file_wide = []; next_line = [] }

let rule_char c = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c = '-'

let suppressions_of_source src =
  let acc = ref no_suppressions in
  let n = String.length src in
  let line = ref 1 in
  let key = "lint:" in
  let skip_ws i =
    let i = ref i in
    while !i < n && (src.[!i] = ' ' || src.[!i] = '\t') do
      incr i
    done;
    !i
  in
  let starts_with i s = i + String.length s <= n && String.sub src i (String.length s) = s in
  (* collect whitespace-separated rule names after the keyword; stops at
     the first token that is not a rule name (e.g. "*)") *)
  let rec collect scope i =
    let i = skip_ws i in
    if i >= n || not (rule_char src.[i]) then i
    else begin
      let j = ref i in
      while !j < n && rule_char src.[!j] do
        incr j
      done;
      let rule = String.sub src i (!j - i) in
      (match scope with
       | `File -> acc := { !acc with file_wide = rule :: !acc.file_wide }
       | `Next l -> acc := { !acc with next_line = (l, rule) :: !acc.next_line });
      collect scope !j
    end
  in
  let i = ref 0 in
  while !i < n do
    if src.[!i] = '\n' then begin
      incr line;
      incr i
    end
    else if starts_with !i key then begin
      let j = skip_ws (!i + String.length key) in
      (* "allow-next" must be tried first: "allow" is its prefix and a
         naive match would read "-next" as the first rule name *)
      if starts_with j "allow-next" then i := collect (`Next !line) (j + 10)
      else if starts_with j "allow" then i := collect `File (j + 5)
      else i := j
    end
    else incr i
  done;
  !acc

let suppressed sup (d : diagnostic) =
  List.mem d.rule sup.file_wide
  || List.exists
       (fun (line, rule) -> rule = d.rule && d.line = line + 1)
       sup.next_line

let filter_suppressed sup diags = List.filter (fun d -> not (suppressed sup d)) diags

(* ------------------------------------------------------------------ *)
(* AST helpers *)

open Parsetree

let rec drop_stdlib = function "Stdlib" :: rest -> drop_stdlib rest | l -> l

let ident_path (e : expression) =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> Some (drop_stdlib (Longident.flatten txt))
  | _ -> None

let loc_of (l : Location.t) =
  let p = l.loc_start in
  (p.pos_lnum, p.pos_cnum - p.pos_bol)

let float_fun_idents =
  [ "sqrt"; "exp"; "log"; "log10"; "log1p"; "expm1"; "cos"; "sin"; "tan";
    "acos"; "asin"; "atan"; "atan2"; "cosh"; "sinh"; "tanh"; "ceil"; "floor";
    "abs_float"; "mod_float"; "float_of_int"; "float_of_string"; "float";
    "infinity"; "neg_infinity"; "nan"; "epsilon_float"; "max_float"; "min_float" ]

let float_ops = [ "+."; "-."; "*."; "/."; "**"; "~-." ]

(* syntactic "this expression is a float": literal, float operator or
   known float function application, Float.* access, or [: float]. *)
let floaty (e : expression) =
  match e.pexp_desc with
  | Pexp_constant (Pconst_float _) -> true
  | Pexp_constraint (_, { ptyp_desc = Ptyp_constr ({ txt = Lident "float"; _ }, []); _ })
    ->
    true
  | Pexp_ident { txt; _ } -> (
    match drop_stdlib (Longident.flatten txt) with
    | "Float" :: _ :: _ -> true
    | [ x ] -> List.mem x [ "infinity"; "neg_infinity"; "nan"; "epsilon_float";
                            "max_float"; "min_float" ]
    | _ -> false)
  | Pexp_apply (f, args) -> (
    match ident_path f with
    | Some [ op ] when List.mem op float_ops -> true
    | Some [ fn ] when List.mem fn float_fun_idents -> true
    | Some ("Float" :: rest)
      when not (List.mem rest [ [ "equal" ]; [ "compare" ]; [ "is_nan" ];
                                [ "is_finite" ]; [ "is_integer" ]; [ "sign_bit" ] ])
      ->
      true
    | _ ->
      ignore args;
      (* partially-applied operator section: ((+.) a) b *)
      (match f.pexp_desc with
       | Pexp_apply (g, _) -> (
         match ident_path g with
         | Some [ op ] when List.mem op float_ops -> true
         | _ -> false)
       | _ -> false))
  | _ -> false

let is_fun (e : expression) =
  match e.pexp_desc with Pexp_fun _ | Pexp_function _ -> true | _ -> false

let contains_ci s sub =
  let s = String.lowercase_ascii s in
  let ls = String.length s and n = String.length sub in
  let rec scan i = i + n <= ls && (String.sub s i n = sub || scan (i + 1)) in
  scan 0

(* syntactic "this expression smells like the WAL": a wal-named
   identifier/field or a string literal mentioning wal. Type-free, like
   [floaty] — the rule wants the fd or path argument of a raw write. *)
let rec mentions_wal (e : expression) =
  let walish l = List.exists (fun c -> contains_ci c "wal") l in
  match e.pexp_desc with
  | Pexp_constant (Pconst_string (s, _, _)) -> contains_ci s "wal"
  | Pexp_ident { txt; _ } -> walish (Longident.flatten txt)
  | Pexp_field (e', { txt; _ }) ->
    mentions_wal e' || walish (Longident.flatten txt)
  | Pexp_apply (f, args) ->
    mentions_wal f || List.exists (fun (_, a) -> mentions_wal a) args
  | Pexp_constraint (e', _) -> mentions_wal e'
  | _ -> false

(* ------------------------------------------------------------------ *)
(* The pass *)

type ctx = {
  path : string;
  cfg : config;
  mutable diags : diagnostic list;
  mutable top_refs : (string * Location.t) list;
}

let emit ctx rule loc message =
  let line, col = loc_of loc in
  ctx.diags <-
    { rule; severity = severity_of_rule rule; file = ctx.path; line; col; message }
    :: ctx.diags

let in_lib ctx = path_under ctx.path "lib/"

(* collect [let name = ref ...] at the structure top level *)
let collect_top_refs ctx (str : structure) =
  List.iter
    (fun (si : structure_item) ->
      match si.pstr_desc with
      | Pstr_value (_, vbs) ->
        List.iter
          (fun vb ->
            match (vb.pvb_pat.ppat_desc, vb.pvb_expr.pexp_desc) with
            | ( Ppat_var { txt = name; _ },
                Pexp_apply (f, _) ) -> (
              match ident_path f with
              | Some [ "ref" ] -> ctx.top_refs <- (name, vb.pvb_loc) :: ctx.top_refs
              | _ -> ())
            | Ppat_constraint ({ ppat_desc = Ppat_var { txt = name; _ }; _ }, _), _
              -> (
              match vb.pvb_expr.pexp_desc with
              | Pexp_apply (f, _) -> (
                match ident_path f with
                | Some [ "ref" ] ->
                  ctx.top_refs <- (name, vb.pvb_loc) :: ctx.top_refs
                | _ -> ())
              | _ -> ())
            | _ -> ())
          vbs
      | _ -> ())
    str

(* flag references to top-level refs inside a closure body *)
let scan_par_body ctx (body : expression) =
  let iter =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          (match e.pexp_desc with
           | Pexp_ident { txt = Lident name; loc } ->
             if List.mem_assoc name ctx.top_refs then
               emit ctx "mutable-global-in-par" loc
                 (Printf.sprintf
                    "top-level ref '%s' referenced inside a parallel region body; \
                     shared mutable state under Pool.parallel_for is a data race \
                     unless externally synchronised"
                    name)
           | _ -> ());
          Ast_iterator.default_iterator.expr self e);
    }
  in
  iter.expr iter body

let check_expr ctx (e : expression) =
  (match e.pexp_desc with
   | Pexp_ident _ -> (
     match ident_path e with
     | Some [ "Domain"; ("spawn" | "join") ]
       when not (in_any ctx.path ctx.cfg.raw_domain_dirs) ->
       emit ctx "no-raw-domain" e.pexp_loc
         "raw Domain.spawn/join outside lib/par/; route parallelism through \
          Par.Pool so domain count, nesting and fork safety stay centralised"
     | Some ("Random" :: rest) ->
       if rest = [ "self_init" ] then
         emit ctx "no-self-init" e.pexp_loc
           "Random.self_init breaks reproducibility; seed an explicit Rng state"
       else if in_lib ctx && not (in_any ctx.path ctx.cfg.rng_dirs) then
         emit ctx "no-self-init" e.pexp_loc
           "ambient Random.* in library code; thread an explicit Rng state \
            (strict-sample-order determinism depends on it)"
     | Some [ "Array"; ("unsafe_get" | "unsafe_set") ]
       when not (is_any ctx.path ctx.cfg.unsafe_allowlist) ->
       emit ctx "unsafe-array" e.pexp_loc
         "Array.unsafe_* outside the kernel allowlist; use checked access or \
          move the kernel into an allowlisted file"
     | Some p
       when List.mem "Bigarray" p
            && (match List.rev p with
                | last :: _ ->
                  String.length last > 7 && String.sub last 0 7 = "unsafe_"
                | [] -> false)
            && not (is_any ctx.path ctx.cfg.unsafe_allowlist) ->
       emit ctx "unsafe-array" e.pexp_loc
         "Bigarray unsafe access outside the kernel allowlist"
     | Some
         [ "Unix";
           (("read" | "write" | "write_substring" | "single_write" | "connect")
            as fn) ]
       when in_any ctx.path ctx.cfg.io_checked_dirs
            && not (is_any ctx.path ctx.cfg.io_wrapper_files) ->
       emit ctx "no-unbounded-io" e.pexp_loc
         (Printf.sprintf
            "raw Unix.%s in serving code can block forever on a slow or dead \
             peer; call the deadline-carrying wrappers in Serve.Io (the only \
             allowlisted home for raw socket I/O)"
            fn)
     | Some [ ("Mutex" | "Condition" | "Thread" | "Unix") as m; fn ]
       when is_any ctx.path ctx.cfg.monitor_files
            && (match (m, fn) with
                | "Mutex", ("lock" | "try_lock") -> true
                | "Condition", ("wait" | "wait_timeout") -> true
                | "Thread", ("join" | "delay") -> true
                | "Unix", ("select" | "sleep" | "sleepf") -> true
                | _ -> false) ->
       emit ctx "no-blocking-in-monitor" e.pexp_loc
         (Printf.sprintf
            "%s.%s in the monitor/reselect path: the self-healing loop must \
             never block (a stalled reselect may slow only its own thread), \
             so share state through Atomic snapshots and let the caller own \
             all waiting"
            m fn)
     | Some p
       when is_any ctx.path ctx.cfg.dense_pool_banned_files
            && (match List.rev p with
                | "to_dense" :: "Sparse" :: _ -> true
                | ("of_arrays" | "to_arrays" | "of_rows") :: "Mat" :: _ -> true
                | _ -> false) ->
       emit ctx "no-dense-pool" e.pexp_loc
         (Printf.sprintf
            "%s in the streaming pool front-end: a million-path pool must \
             never be densified — keep it CSR and consume it through the \
             Rsvd mat-mul operator (Pool_stream.op)"
            (String.concat "." p))
     | Some [ ("exit" | "failwith") as fn ] when in_lib ctx ->
       emit ctx "no-exit" e.pexp_loc
         (Printf.sprintf
            "%s in library code; raise a typed exception (mapped by \
             Core.Errors.of_exn) or return a Core.Errors result"
            fn)
     | _ -> ())
   | Pexp_apply (f, args) -> (
     (match ident_path f with
      | Some [ ("=" | "<>") as op ]
        when List.exists (fun (_, a) -> floaty a) args ->
        emit ctx "no-float-eq" e.pexp_loc
          (Printf.sprintf
             "(%s) on float operands; use Float.equal (exact, NaN-sound) or a \
              tolerance helper (Stats.Descriptive.approx_equal)"
             op)
      | Some
          [ "Unix";
            (("write" | "single_write" | "write_substring") as fn) ]
        when (not (is_any ctx.path ctx.cfg.wal_write_files))
             && List.exists (fun (_, a) -> mentions_wal a) args ->
        emit ctx "no-unfsynced-wal" e.pexp_loc
          (Printf.sprintf
             "Unix.%s to a WAL fd/path outside Store.Wal: bytes that bypass \
              the append API carry no frame CRC and no fsync, so an ack built \
              on them is not durable — append through Store.Wal.append"
             fn)
      | Some p -> (
        match List.rev p with
        | ("parallel_for" | "parallel_chunks") :: "Pool" :: _ ->
          List.iter
            (fun (_, a) -> if is_fun a then scan_par_body ctx a)
            args
        | _ -> ())
      | None -> ()))
   | Pexp_try (_, cases) ->
     if not (is_any ctx.path ctx.cfg.catchall_allowlist) then
       List.iter
         (fun (c : case) ->
           match (c.pc_lhs.ppat_desc, c.pc_guard) with
           | Ppat_any, None ->
             emit ctx "no-catchall" c.pc_lhs.ppat_loc
               "catch-all 'with _ ->' swallows Out_of_memory, Stack_overflow \
                and typed errors alike; match the exceptions you mean (or \
                suppress with (* lint: allow no-catchall *) and a justification)"
           | Ppat_var { txt = v; _ }, None -> (
             match c.pc_rhs.pexp_desc with
             | Pexp_apply (f, [ (_, arg) ]) -> (
               match (ident_path f, arg.pexp_desc) with
               | Some [ "ignore" ], Pexp_ident { txt = Lident v'; _ } when v = v'
                 ->
                 emit ctx "no-catchall" c.pc_lhs.ppat_loc
                   "'with e -> ignore e' is a disguised catch-all; match the \
                    exceptions you mean"
               | _ -> ())
             | _ -> ())
           | _ -> ())
         cases
   | _ -> ())

let lint_structure ctx (str : structure) =
  collect_top_refs ctx str;
  let iter =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          check_expr ctx e;
          Ast_iterator.default_iterator.expr self e);
    }
  in
  iter.structure iter str

(* ------------------------------------------------------------------ *)
(* Entry points *)

let lint_source ?(config = default_config) ~path src =
  let ctx = { path = normalize path; cfg = config; diags = []; top_refs = [] } in
  (try
     let lexbuf = Lexing.from_string src in
     Lexing.set_filename lexbuf path;
     let str = Parse.implementation lexbuf in
     lint_structure ctx str
   with
  | Syntaxerr.Error _ ->
    ctx.diags <-
      {
        rule = "syntax";
        severity = Error;
        file = ctx.path;
        line = 1;
        col = 0;
        message = "file does not parse; run the compiler for details";
      }
      :: ctx.diags
  | Lexer.Error (_, loc) ->
    let line, col = loc_of loc in
    ctx.diags <-
      {
        rule = "syntax";
        severity = Error;
        file = ctx.path;
        line;
        col;
        message = "lexer error";
      }
      :: ctx.diags);
  let kept = filter_suppressed (suppressions_of_source src) ctx.diags in
  List.sort
    (fun a b ->
      match compare a.line b.line with 0 -> compare a.col b.col | c -> c)
    kept

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let lint_file ?config path = lint_source ?config ~path (read_file path)

let rec walk acc path =
  if Sys.is_directory path then
    Array.fold_left
      (fun acc entry ->
        if entry = "" || entry.[0] = '.' || entry = "_build" then acc
        else walk acc (Filename.concat path entry))
      acc (Sys.readdir path)
  else if Filename.check_suffix path ".ml" then path :: acc
  else acc

let lint_paths ?config paths =
  let files = List.sort compare (List.fold_left walk [] paths) in
  List.concat_map (fun f -> lint_file ?config f) files

(* ------------------------------------------------------------------ *)
(* Rendering *)

let severity_string = function Error -> "error" | Warning -> "warning"

let render_text d =
  Printf.sprintf "%s:%d:%d: %s [%s] %s" d.file d.line d.col
    (severity_string d.severity) d.rule d.message

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let render_json diags =
  let item d =
    Printf.sprintf
      {|{"file":"%s","line":%d,"col":%d,"severity":"%s","rule":"%s","message":"%s"}|}
      (json_escape d.file) d.line d.col
      (severity_string d.severity)
      (json_escape d.rule) (json_escape d.message)
  in
  "[" ^ String.concat "," (List.map item diags) ^ "]"

(* SARIF 2.1.0, the minimal shape CI diff-annotators consume: one run,
   the rule table under tool.driver.rules, one result per diagnostic.
   Shared by pathsel-lint and pathsel-analyze (the [tool] name and rule
   table differ). SARIF regions are 1-based in both coordinates; our
   columns are 0-based, hence the + 1. *)
let render_sarif ~tool ~rules diags =
  let buf = Buffer.create 4096 in
  let str s = "\"" ^ json_escape s ^ "\"" in
  Buffer.add_string buf
    "{\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\",\
     \"version\":\"2.1.0\",\"runs\":[{\"tool\":{\"driver\":{";
  Buffer.add_string buf (Printf.sprintf "\"name\":%s,\"rules\":[" (str tool));
  List.iteri
    (fun i (name, _, doc) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "{\"id\":%s,\"shortDescription\":{\"text\":%s}}"
           (str name) (str doc)))
    rules;
  Buffer.add_string buf "]}},\"results\":[";
  List.iteri
    (fun i d ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "{\"ruleId\":%s,\"level\":%s,\"message\":{\"text\":%s},\
            \"locations\":[{\"physicalLocation\":{\"artifactLocation\":\
            {\"uri\":%s},\"region\":{\"startLine\":%d,\"startColumn\":%d}}}]}"
           (str d.rule)
           (str (severity_string d.severity))
           (str d.message) (str d.file) d.line (d.col + 1)))
    diags;
  Buffer.add_string buf "]}]}";
  Buffer.contents buf

let has_errors diags = List.exists (fun d -> d.severity = Error) diags
