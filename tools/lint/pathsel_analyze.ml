(* CLI driver for the whole-program typedtree analyzer. Reads the
   .cmt files dune produced under the given roots (default: lib),
   analyzes them as one program, and exits 1 when any error-severity
   diagnostic survives suppression. When no .cmt files are found it
   prints a skip message and exits 0, so the gate degrades cleanly on
   trees that were never built. *)

let usage = "pathsel-analyze [--format=text|json|sarif] [--root DIR] [cmt-dir ...]"

type format = Text | Json | Sarif

let () =
  let format = ref Text in
  let root = ref None in
  let paths = ref [] in
  let set_format = function
    | "json" -> format := Json
    | "text" -> format := Text
    | "sarif" -> format := Sarif
    | _ ->
      prerr_endline usage;
      exit 64
  in
  let rec parse = function
    | [] -> ()
    | "--format=json" :: rest ->
      format := Json;
      parse rest
    | "--format=text" :: rest ->
      format := Text;
      parse rest
    | "--format=sarif" :: rest ->
      format := Sarif;
      parse rest
    | "--format" :: fmt :: rest ->
      set_format fmt;
      parse rest
    | "--root" :: dir :: rest ->
      root := Some dir;
      parse rest
    | ("--help" | "-h") :: _ ->
      print_endline usage;
      print_endline "rules:";
      List.iter
        (fun (name, sev, doc) ->
          Printf.printf "  %-22s %-7s %s\n" name (Lint.severity_string sev) doc)
        Analysis.rules;
      exit 0
    | arg :: _ when String.length arg > 1 && arg.[0] = '-' ->
      prerr_endline ("pathsel-analyze: unknown option " ^ arg);
      prerr_endline usage;
      exit 64
    | p :: rest ->
      paths := p :: !paths;
      parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  (match !root with Some d -> Sys.chdir d | None -> ());
  let roots =
    match List.rev !paths with
    | [] ->
      (* repo root keeps its artifacts under _build/default; inside a
         dune action the cwd is the build tree itself *)
      if Sys.file_exists "_build/default/lib" then [ "_build/default/lib" ] else [ "lib" ]
    | ps -> ps
  in
  let cmts = List.concat_map Analysis.find_cmts roots in
  if cmts = [] then begin
    Printf.printf
      "pathsel-analyze: no .cmt files under %s — build first (dune build); skipping \
       whole-program analysis\n"
      (String.concat ", " roots);
    exit 0
  end;
  let diags = Analysis.analyze_cmts cmts in
  (match !format with
   | Json -> print_endline (Lint.render_json diags)
   | Sarif ->
     print_endline (Lint.render_sarif ~tool:"pathsel-analyze" ~rules:Analysis.rules diags)
   | Text ->
     List.iter (fun d -> print_endline (Lint.render_text d)) diags;
     let errs =
       List.length (List.filter (fun d -> d.Lint.severity = Lint.Error) diags)
     in
     let warns = List.length diags - errs in
     if diags <> [] then
       Printf.printf "%d error%s, %d warning%s (over %d modules)\n" errs
         (if errs = 1 then "" else "s")
         warns
         (if warns = 1 then "" else "s")
         (List.length cmts));
  exit (if Lint.has_errors diags then 1 else 0)
