(* CLI driver for the project linter. Exits 1 when any error-severity
   diagnostic survives suppression, 0 otherwise (warnings don't fail
   the build). *)

let usage = "pathsel-lint [--format=text|json] [--root DIR] [path ...]"

let () =
  let json = ref false in
  let root = ref None in
  let paths = ref [] in
  let rec parse = function
    | [] -> ()
    | "--format=json" :: rest ->
      json := true;
      parse rest
    | "--format=text" :: rest ->
      json := false;
      parse rest
    | "--format" :: fmt :: rest ->
      (match fmt with
       | "json" -> json := true
       | "text" -> json := false
       | _ ->
         prerr_endline usage;
         exit 64);
      parse rest
    | "--root" :: dir :: rest ->
      root := Some dir;
      parse rest
    | ("--help" | "-h") :: _ ->
      print_endline usage;
      print_endline "rules:";
      List.iter
        (fun (name, sev, doc) ->
          Printf.printf "  %-22s %-7s %s\n" name
            (Lint.severity_string sev)
            doc)
        Lint.rules;
      exit 0
    | arg :: _ when String.length arg > 1 && arg.[0] = '-' ->
      prerr_endline ("pathsel-lint: unknown option " ^ arg);
      prerr_endline usage;
      exit 64
    | p :: rest ->
      paths := p :: !paths;
      parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  (match !root with Some d -> Sys.chdir d | None -> ());
  let paths =
    match List.rev !paths with [] -> [ "lib"; "bin"; "bench" ] | ps -> ps
  in
  let diags = Lint.lint_paths paths in
  if !json then print_endline (Lint.render_json diags)
  else begin
    List.iter (fun d -> print_endline (Lint.render_text d)) diags;
    let errs =
      List.length (List.filter (fun d -> d.Lint.severity = Lint.Error) diags)
    in
    let warns = List.length diags - errs in
    if diags <> [] then
      Printf.printf "%d error%s, %d warning%s\n" errs
        (if errs = 1 then "" else "s")
        warns
        (if warns = 1 then "" else "s")
  end;
  exit (if Lint.has_errors diags then 1 else 0)
