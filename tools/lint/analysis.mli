(** Whole-program dataflow analysis over the typedtree ([.cmt] files).

    The interprocedural companion to {!Lint}: builds a call graph with
    per-function effect summaries and checks atomics/race discipline
    between the monitor thread and the serving path, blocking-call
    reachability (the closure of [no-blocking-in-monitor] and
    [no-unbounded-io]), and path-sensitive fd-leak freedom. Shares
    {!Lint.diagnostic}, the renderers, and the suppression-comment
    syntax (file-wide [lint: allow] and line-scoped
    [lint: allow-next]). *)

type config = {
  shared_mutable_dirs : string list;
      (** directories whose modules' mutable state falls under the
          race rule (their state must be monitor/serving-safe) *)
  fd_dirs : string list;
      (** directories whose modules get fd-leak tracking *)
  monitor_entries : string list;
      (** qualified names, e.g. ["Serve.Monitor.step"] *)
  serving_entries : string list;
  handler_entries : string list;
      (** deadline-scoped request handlers for [handler-blocking] *)
  io_wrapper_modules : string list;
      (** modules allowed to issue raw blocking syscalls *)
  blocking_calls : string list;
  raw_io_calls : string list;
  fd_creators : string list;
  fd_closers : string list;
  fd_transfers : string list;
      (** calls that take ownership of a descriptor argument *)
  thread_spawns : string list;
      (** thread boundaries: closures passed here are severed from the
          spawning function's summary *)
  boot_fns : string list;
      (** functions that run only in single-threaded phases — boot-time
          recovery before any worker or monitor thread is spawned (the
          restore/replay path under [Serve.create]) or the epilogue
          after they are joined (the final forced checkpoint):
          reachability traversals stop at them, so their writes into
          otherwise thread-owned state do not register as cross-thread
          races. A cut function that is itself listed as an entry is
          still seeded and analyzed on that side. *)
  summary_cache : string option;
      (** where per-module summaries are memoized (keyed by cmt
          digest); [None] disables caching *)
}

val default_config : config

val rules : (string * Lint.severity * string) list
(** [(name, severity, one-line description)] for the four rule
    families. *)

val find_cmts : string -> string list
(** All [.cmt] files under a directory (descending into dune's
    [.objs] dot-directories), excluding library alias modules. *)

val analyze_cmts : ?config:config -> string list -> Lint.diagnostic list
(** Analyze the given [.cmt] files as one program. Unreadable or
    non-implementation cmts are skipped. Suppression comments are read
    from the source file each cmt names, resolved relative to the
    current directory. *)

val analyze_sources :
  ?config:config -> (string * string * string) list -> Lint.diagnostic list
(** [analyze_sources [(modname, path, source); ...]] typechecks the
    snippets in-process (in order, so later snippets can reference
    earlier modules by [modname]) and analyzes them as one program —
    the fixture-test entry point. [path] drives the directory-scoped
    config and diagnostic locations. Raises [Failure] if a snippet
    does not typecheck. *)
