(* Whole-program dataflow analysis over the typedtree (.cmt files).

   The second engine of the lint suite. Where {!Lint} checks one file's
   untyped AST in isolation, this module reads the [.cmt] files dune
   produces as compilation side-products, builds a call graph with a
   per-function effect summary for every top-level binding, and runs
   three interprocedural rule families:

   - [shared-mutable-race]: mutable locations (refs, mutable record
     fields, arrays) owned by the shared modules that are reached both
     from the monitor-thread entry points and from the request-serving
     entry points without going through [Atomic.t].
   - [monitor-blocking]: the reachability-closed form of the syntactic
     [no-blocking-in-monitor] rule — a blocking primitive
     ([Mutex.lock], [Unix.select], [Thread.join], ...) anywhere in the
     call graph below a monitor entry point, even across modules.
   - [handler-blocking]: the reachability-closed form of
     [no-unbounded-io] — a raw blocking syscall reachable from a
     deadline-scoped request handler outside the [Serve.Io] wrappers.
   - [fd-leak]: intraprocedural path-sensitive tracking that every
     [Unix.socket]/[accept]/[openfile] result reaches [close] (or an
     ownership transfer: returned, stored, captured by a closure,
     handed to [Thread.create]/a queue) on all paths, including
     exception edges ([Fun.protect ~finally], [match ... with
     exception], [try]); wrappers compose within a module through
     escape-to-caller summaries (a function that closes its fd
     parameter becomes a closer, one that returns a descriptor it
     opened becomes a creator).

   Known approximations, chosen to stay sound for the rules above:
   closure bodies are summarized into their enclosing top-level
   binding; closures handed to [Thread.create]/[Domain.spawn] are
   severed (the spawned thread is a different side of the race
   analysis, so its effects must not leak into the spawner's summary —
   cover spawned code by listing its entry points in the config);
   calls through stored function values are not tracked.

   Per-module summaries are serialized (keyed by the cmt digest) so
   re-analysis after an incremental rebuild only re-walks changed
   modules. *)

open Typedtree

type config = {
  shared_mutable_dirs : string list;
      (** modules whose mutable state is subject to the race rule *)
  fd_dirs : string list;  (** modules subject to fd-leak tracking *)
  monitor_entries : string list;
  serving_entries : string list;
  handler_entries : string list;
      (** deadline-scoped request handlers ([handler-blocking]) *)
  io_wrapper_modules : string list;
      (** modules allowed to issue raw blocking syscalls *)
  blocking_calls : string list;
  raw_io_calls : string list;
  fd_creators : string list;
  fd_closers : string list;
  fd_transfers : string list;
  thread_spawns : string list;
  boot_fns : string list;
      (** single-threaded-phase functions (boot-time recovery, or the
          epilogue after threads are joined): cut from thread-side
          reachability traversal; being listed as an entry still seeds
          them *)
  summary_cache : string option;
}

let default_config =
  {
    shared_mutable_dirs = [ "lib/serve/"; "lib/core/" ];
    fd_dirs = [ "lib/serve/"; "lib/chaos/"; "lib/store/" ];
    monitor_entries =
      [
        "Serve.monitor_step";
        "Serve.reselect_from_recent";
        "Serve.Monitor.step";
        "Serve.Monitor.note_error";
        "Serve.Monitor.swapped";
      ];
    serving_entries = [ "Serve.run"; "Serve.worker"; "Serve.serve_conn"; "Serve.handle" ];
    handler_entries = [ "Serve.serve_conn"; "Serve.handle" ];
    (* Serve.Io: deadline-carrying socket wrappers. Store.Wal: the
       journal's fsync'd append/rotate path — local-disk writes behind
       its own mutex, deliberately synchronous in the observe handler
       (journal-before-ack is the durability point). *)
    io_wrapper_modules = [ "Serve.Io"; "Store.Wal" ];
    blocking_calls =
      [
        "Mutex.lock";
        "Condition.wait";
        "Condition.wait_timeout";
        "Thread.join";
        "Thread.delay";
        "Domain.join";
        "Unix.select";
        "Unix.sleep";
        "Unix.sleepf";
      ];
    raw_io_calls =
      [
        "Unix.read";
        "Unix.write";
        "Unix.write_substring";
        "Unix.single_write";
        "Unix.select";
        "Unix.connect";
        "Unix.accept";
        "Unix.sleep";
        "Unix.sleepf";
      ];
    fd_creators = [ "Unix.socket"; "Unix.accept"; "Unix.openfile" ];
    fd_closers = [ "Unix.close" ];
    fd_transfers =
      [ "Thread.create"; "Queue.add"; "Queue.push"; "Hashtbl.add"; "Hashtbl.replace" ];
    thread_spawns = [ "Thread.create"; "Domain.spawn" ];
    (* Recovery (restore/replay/swapped under Serve.create) runs
       strictly before the listener, workers or monitor thread exist;
       the final forced checkpoint (Serve.maybe_checkpoint in Serve.run's
       epilogue) runs after the monitor thread is joined. Writes into
       monitor/refit state from these single-threaded phases cannot race
       anything; listing them keeps the race rule from seeing a
       serving-side path into the monitor internals. Entry seeding is
       unaffected: a cut function listed as a monitor entry is still
       analyzed as monitor code. *)
    boot_fns =
      [
        "Serve.Monitor.replay";
        "Serve.Monitor.restore";
        "Serve.Monitor.swapped";
        "Serve.Monitor.applied_seq";
        "Serve.maybe_checkpoint";
      ];
    summary_cache = Some "_build/.pathsel-analyze.cache";
  }

let rules =
  [
    ( "shared-mutable-race",
      Lint.Error,
      "mutable state reached from both monitor and serving threads without Atomic.t" );
    ( "monitor-blocking",
      Lint.Error,
      "blocking primitive reachable from a monitor-thread entry point" );
    ( "handler-blocking",
      Lint.Error,
      "raw blocking syscall reachable from a deadline-scoped handler outside the Io wrappers" );
    ( "fd-leak",
      Lint.Error,
      "file descriptor not closed or ownership-transferred on every path (incl. exceptions)" );
  ]

(* ------------------------------------------------------------------ *)
(* Effect summaries *)

type site = { s_file : string; s_line : int; s_col : int }
type access = Read | Write

type fn_summary = {
  fn : string;  (** fully qualified, e.g. "Serve.Monitor.step" *)
  def : site;
  calls : (string * site) list;
  blocking : (string * site) list;
  raw_io : (string * site) list;
  mut_uses : (string * access * site) list;
      (** (location key, kind, site); keys look like "Serve.t.mon",
          "Serve.counters.reloads", "Serve.Monitor.t.ring[]" *)
  fd_leaks : (string * site) list;  (** (message, site) *)
  creates_fd : bool;  (** opens a descriptor and lets it escape *)
  closes_fd_param : bool;  (** closes its descriptor argument on all paths *)
}
[@@warning "-69"] (* def/creates_fd/closes_fd_param are summary
                     metadata: serialized to the cache and read by
                     tests/tooling, not by the rules themselves *)

type module_summary = { m_name : string; m_file : string; m_fns : fn_summary list }

let site_of ~file (loc : Location.t) =
  {
    s_file = file;
    s_line = loc.loc_start.pos_lnum;
    s_col = loc.loc_start.pos_cnum - loc.loc_start.pos_bol;
  }

(* ------------------------------------------------------------------ *)
(* Name normalization.

   cmt module names use dune's mangling ("Serve__Monitor"); paths
   inside a library refer to siblings without the library prefix
   ("Monitor.step" inside serve.cmt); stdlib values carry a "Stdlib."
   prefix ("Stdlib.Mutex.lock"); same-module top-level bindings appear
   as bare idents. Everything is normalized to the dotted form used in
   the config lists ("Serve.Monitor.step", "Mutex.lock"). *)

let replace_dunder s =
  let b = Buffer.create (String.length s) in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    if !i + 1 < n && s.[!i] = '_' && s.[!i + 1] = '_' then begin
      Buffer.add_char b '.';
      i := !i + 2
    end
    else begin
      Buffer.add_char b s.[!i];
      incr i
    end
  done;
  Buffer.contents b

let strip_stdlib s =
  if String.length s > 7 && String.sub s 0 7 = "Stdlib." then
    String.sub s 7 (String.length s - 7)
  else s

type walk_ctx = {
  cfg : config;
  known : string list;  (** normalized module names in this run *)
  cur_mod : string;  (** e.g. "Serve.Monitor" *)
  lib : string;  (** library prefix, e.g. "Serve" *)
  file : string;  (** source path, e.g. "lib/serve/monitor.ml" *)
  toplevel : (Ident.t * string) list ref;
      (** idents of top-level bindings -> qualified names *)
}

let qualify ctx n =
  match String.index_opt n '.' with
  | None -> n
  | Some i ->
    let head = String.sub n 0 i in
    if (not (List.mem head ctx.known)) && List.mem (ctx.lib ^ "." ^ head) ctx.known
    then ctx.lib ^ "." ^ n
    else n

(* Resolve a value path to its normalized dotted name; [None] for
   locals (parameters, let-bound values inside a function). *)
let resolve ctx (p : Path.t) =
  match p with
  | Path.Pident id -> (
    match List.find_opt (fun (i, _) -> Ident.same i id) !(ctx.toplevel) with
    | Some (_, q) -> Some q
    | None -> None)
  | _ -> Some (qualify ctx (strip_stdlib (replace_dunder (Path.name p))))

(* The key naming a record type, qualified with the defining module. *)
let type_key ctx (ty : Types.type_expr) =
  match Types.get_desc ty with
  | Types.Tconstr (p, _, _) ->
    let n = strip_stdlib (replace_dunder (Path.name p)) in
    if String.contains n '.' then qualify ctx n else ctx.cur_mod ^ "." ^ n
  | _ -> ctx.cur_mod ^ ".?"

let is_fd_type (ty : Types.type_expr) =
  match Types.get_desc ty with
  | Types.Tconstr (p, _, _) -> Path.name p = "Unix.file_descr"
  | _ -> false

let callee_name ctx (f : expression) =
  match f.exp_desc with Texp_ident (p, _, _) -> resolve ctx p | _ -> None

(* ------------------------------------------------------------------ *)
(* Effect collection (calls, blocking, raw io, mutable uses) *)

type effects = {
  mutable e_calls : (string * site) list;
  mutable e_blocking : (string * site) list;
  mutable e_raw_io : (string * site) list;
  mutable e_mut : (string * access * site) list;
}

let mutable_base_key ctx (e : expression) =
  match e.exp_desc with
  | Texp_ident (p, _, _) -> (
    match p with
    | Path.Pident _ -> resolve ctx p (* top-level binding or nothing *)
    | _ -> resolve ctx p)
  | Texp_field (_, _, ld) -> Some (type_key ctx ld.Types.lbl_res ^ "." ^ ld.Types.lbl_name)
  | _ -> None

let first_args (args : (Asttypes.arg_label * expression option) list) =
  List.filter_map (function Asttypes.Nolabel, Some a -> Some a | _ -> None) args

let collect_effects ctx body =
  let eff = { e_calls = []; e_blocking = []; e_raw_io = []; e_mut = [] } in
  let add_mut key acc loc = eff.e_mut <- (key, acc, site_of ~file:ctx.file loc) :: eff.e_mut in
  let on_ident p (loc : Location.t) =
    match resolve ctx p with
    | None -> ()
    | Some q ->
      let s = site_of ~file:ctx.file loc in
      if List.mem q ctx.cfg.blocking_calls then eff.e_blocking <- (q, s) :: eff.e_blocking;
      if List.mem q ctx.cfg.raw_io_calls then eff.e_raw_io <- (q, s) :: eff.e_raw_io;
      eff.e_calls <- (q, s) :: eff.e_calls
  in
  let on_apply f args (loc : Location.t) =
    match callee_name ctx f with
    | None -> ()
    | Some op ->
      let arg_key n =
        match List.nth_opt (first_args args) n with
        | Some a -> mutable_base_key ctx a
        | None -> None
      in
      let record n acc suffix =
        match arg_key n with Some k -> add_mut (k ^ suffix) acc loc | None -> ()
      in
      (match op with
       | "!" -> record 0 Read ""
       | ":=" | "incr" | "decr" -> record 0 Write ""
       | "Array.get" | "Array.unsafe_get" | "Array.length" -> record 0 Read "[]"
       | "Array.set" | "Array.unsafe_set" | "Array.fill" -> record 0 Write "[]"
       | "Bytes.get" -> record 0 Read "[]"
       | "Bytes.set" | "Bytes.unsafe_set" -> record 0 Write "[]"
       | _ -> ())
  in
  let is_spawn f =
    match callee_name ctx f with
    | Some c -> List.mem c ctx.cfg.thread_spawns
    | None -> false
  in
  let it =
    {
      Tast_iterator.default_iterator with
      expr =
        (fun sub e ->
          match e.exp_desc with
          | Texp_apply (f, args) when is_spawn f ->
            (* thread boundary: the spawned closure runs on another
               thread, so its effects belong to that thread's entry
               points, not to the spawner *)
            sub.expr sub f;
            List.iter
              (function
                | _, Some { exp_desc = Texp_function _; _ } -> ()
                | _, Some ({ exp_desc = Texp_ident _; _ } as a) ->
                  (* a named top-level function passed as the thread
                     body: skip the call edge too *)
                  ignore a
                | _, Some a -> sub.expr sub a
                | _, None -> ())
              args
          | _ ->
            (match e.exp_desc with
             | Texp_ident (p, _, _) -> on_ident p e.exp_loc
             | Texp_apply (f, args) -> on_apply f args e.exp_loc
             | Texp_field (r, _, ld) ->
               if ld.Types.lbl_mut = Asttypes.Mutable then
                 add_mut
                   (type_key ctx ld.Types.lbl_res ^ "." ^ ld.Types.lbl_name)
                   Read e.exp_loc;
               ignore r
             | Texp_setfield (_, _, ld, _) ->
               add_mut
                 (type_key ctx ld.Types.lbl_res ^ "." ^ ld.Types.lbl_name)
                 Write e.exp_loc
             | _ -> ());
            Tast_iterator.default_iterator.expr sub e);
    }
  in
  it.expr it body;
  eff

(* ------------------------------------------------------------------ *)
(* fd-leak analysis: intraprocedural and path-sensitive.

   For a descriptor bound at a creation site we walk its continuation;
   the result says whether every normal path resolves the descriptor
   (closes it or transfers ownership), whether resolution happens by
   escape, and which calls may raise before it is resolved outside any
   close-on-exception protection. *)

type fd_sets = { creators : string list; closers : string list }

type fd_res = {
  r : bool;  (** resolved on all normal paths *)
  esc : bool;  (** some resolution was an ownership transfer *)
  raise_sites : (string * site) list;
      (** unprotected may-raise calls while unresolved *)
}

let fd_zero = { r = false; esc = false; raise_sites = [] }

let contains_id id e =
  let found = ref false in
  let it =
    {
      Tast_iterator.default_iterator with
      expr =
        (fun sub e ->
          (match e.exp_desc with
           | Texp_ident (Path.Pident i, _, _) when Ident.same i id -> found := true
           | _ -> ());
          if not !found then Tast_iterator.default_iterator.expr sub e);
    }
  in
  it.expr it e;
  !found

let is_bare_id id (e : expression) =
  match e.exp_desc with
  | Texp_ident (Path.Pident i, _, _) -> Ident.same i id
  | _ -> false

let split_comp_cases cases =
  List.fold_right
    (fun c (vals, exns) ->
      match c.c_lhs.pat_desc with
      | Tpat_exception _ -> (vals, c :: exns)
      | _ -> (c :: vals, exns))
    cases ([], [])

let may_raise_name closers c =
  (String.length c > 5 && String.sub c 0 5 = "Unix." && not (List.mem c closers))
  || List.mem c [ "raise"; "raise_notrace"; "failwith"; "invalid_arg" ]

(* [local_closes] maps qualified local function names that close their
   fd argument; [local_uses] those known not to consume it. *)
let rec fd_check ctx sets local_closes id (e : expression) : fd_res =
  let chk e = fd_check ctx sets local_closes id e in
  let seq es =
    List.fold_left
      (fun acc e ->
        if acc.r then acc
        else
          let r = chk e in
          { r = r.r; esc = acc.esc || r.esc; raise_sites = acc.raise_sites @ r.raise_sites })
      fd_zero es
  in
  let escape = { r = true; esc = true; raise_sites = [] } in
  let closed = { r = true; esc = false; raise_sites = [] } in
  match e.exp_desc with
  | Texp_ident (Path.Pident i, _, _) when Ident.same i id -> escape
  | Texp_apply (f, args) -> (
    let cal = callee_name ctx f in
    let pos = first_args args in
    let all_args = List.filter_map (fun (_, a) -> a) args in
    let bare = List.exists (is_bare_id id) all_args in
    let deep =
      List.exists (fun a -> (not (is_bare_id id a)) && contains_id id a) all_args
      || contains_id id f
    in
    match cal with
    | Some "Fun.protect" -> (
      let finally =
        List.find_map
          (function Asttypes.Labelled "finally", Some a -> Some a | _ -> None)
          args
      in
      let fin_closes =
        match finally with
        | Some { exp_desc = Texp_function { cases = [ c ]; _ }; _ } -> (chk c.c_rhs).r
        | Some fin -> (chk fin).r
        | None -> false
      in
      if fin_closes then closed
      else
        match pos with
        | [ body ] when contains_id id body -> escape
        | _ -> if deep || bare then escape else fd_zero)
    | Some c when bare && List.mem c sets.closers -> closed
    | Some c when bare && List.mem_assoc c local_closes ->
      if List.assoc c local_closes then closed else fd_zero
    | Some c when bare && List.mem c ctx.cfg.fd_transfers -> escape
    | Some c when bare && String.length c > 5 && String.sub c 0 5 = "Unix." ->
      (* a syscall that borrows the descriptor without consuming it *)
      if may_raise_name sets.closers c then
        { fd_zero with raise_sites = [ (c, site_of ~file:ctx.file e.exp_loc) ] }
      else fd_zero
    | Some _ when deep -> escape
    | Some _ when bare -> escape (* unknown callee takes ownership *)
    | Some c when may_raise_name sets.closers c ->
      { fd_zero with raise_sites = [ (c, site_of ~file:ctx.file e.exp_loc) ] }
    | _ -> if deep then escape else fd_zero)
  | Texp_let (_, vbs, body) -> seq (List.map (fun vb -> vb.vb_expr) vbs @ [ body ])
  | Texp_sequence (a, b) -> seq [ a; b ]
  | Texp_ifthenelse (c, t, eo) ->
    let rc = chk c in
    if rc.r then rc
    else
      let rt = chk t in
      let re = match eo with Some e -> chk e | None -> fd_zero in
      {
        r = rt.r && (match eo with Some _ -> re.r | None -> false);
        esc = rc.esc || rt.esc || re.esc;
        raise_sites = rc.raise_sites @ rt.raise_sites @ re.raise_sites;
      }
  | Texp_match (scrut, cases, _) ->
    let rs = chk scrut in
    let vals, exns = split_comp_cases cases in
    let exn_rs = List.map (fun c -> chk c.c_rhs) exns in
    (* a handler protects the scrutinee's raise sites if it closes the
       descriptor before (re-)raising, or swallows the exception and
       returns normally (control then continues past the match, where
       the descriptor is still live and tracked) *)
    let handles h = h.r || h.raise_sites = [] in
    let protected = exns <> [] && List.for_all handles exn_rs in
    let scrut_sites = if protected then [] else rs.raise_sites in
    if rs.r then { rs with raise_sites = scrut_sites }
    else
      let val_rs = List.map (fun c -> chk c.c_rhs) vals in
      {
        r =
          vals <> []
          && List.for_all (fun r -> r.r) val_rs
          && List.for_all (fun r -> r.r) exn_rs;
        esc = rs.esc || List.exists (fun r -> r.esc) (val_rs @ exn_rs);
        raise_sites =
          scrut_sites @ List.concat_map (fun r -> r.raise_sites) (val_rs @ exn_rs);
      }
  | Texp_try (b, cases) ->
    let rb = chk b in
    let hs = List.map (fun c -> chk c.c_rhs) cases in
    let protected =
      cases <> [] && List.for_all (fun h -> h.r || h.raise_sites = []) hs
    in
    {
      r = rb.r;
      esc = rb.esc || List.exists (fun h -> h.esc) hs;
      raise_sites = if protected then [] else rb.raise_sites;
    }
  | Texp_while (c, b) ->
    let rc = chk c and rb = chk b in
    { r = false; esc = rc.esc || rb.esc; raise_sites = rc.raise_sites @ rb.raise_sites }
  | Texp_for (_, _, lo, hi, _, b) ->
    let rs = List.map chk [ lo; hi; b ] in
    {
      r = false;
      esc = List.exists (fun r -> r.esc) rs;
      raise_sites = List.concat_map (fun r -> r.raise_sites) rs;
    }
  | Texp_function _ -> if contains_id id e then escape else fd_zero
  | Texp_assert (a, _) -> chk a
  | _ -> if contains_id id e then escape else fd_zero

(* Find descriptor creation sites in a binding body and check each
   continuation. *)
let fd_scan ctx sets local_closes ~fn body =
  let leaks = ref [] in
  let creates = ref false in
  let creator_of (e : expression) =
    match e.exp_desc with
    | Texp_apply (f, _) -> (
      match callee_name ctx f with
      | Some c when List.mem c sets.creators -> Some c
      | _ -> None)
    | _ -> None
  in
  let fd_idents pat =
    List.filter_map
      (fun (id, _, ty) -> if is_fd_type ty then Some id else None)
      (pat_bound_idents_full pat)
  in
  let report creator id cont (loc : Location.t) =
    let res = fd_check ctx sets local_closes id cont in
    if res.esc then creates := true;
    if not res.r then
      leaks :=
        ( Printf.sprintf
            "descriptor from %s bound in %s is not closed (or ownership-transferred) on \
             every path"
            creator fn,
          site_of ~file:ctx.file loc )
        :: !leaks
    else
      match res.raise_sites with
      | (c, s) :: _ ->
        leaks :=
          ( Printf.sprintf
              "descriptor from %s bound in %s leaks if %s raises: no close-on-exception \
               protection (Fun.protect ~finally / match-exception) covers the call"
              creator fn c,
            s )
          :: !leaks
      | [] -> ()
  in
  let rec find (e : expression) =
    match e.exp_desc with
    | Texp_let (_, vbs, body) ->
      List.iter
        (fun vb ->
          match creator_of vb.vb_expr with
          | Some c ->
            List.iter (fun id -> report c id body vb.vb_pat.pat_loc) (fd_idents vb.vb_pat)
          | None -> find vb.vb_expr)
        vbs;
      find body
    | Texp_match (scrut, cases, _) when creator_of scrut <> None ->
      let c = match creator_of scrut with Some c -> c | None -> assert false in
      List.iter
        (fun case ->
          List.iter
            (fun id -> report c id case.c_rhs case.c_lhs.pat_loc)
            (fd_idents case.c_lhs);
          find case.c_rhs)
        cases
    | _ ->
      let it =
        {
          Tast_iterator.default_iterator with
          expr = (fun _sub e -> find e);
        }
      in
      Tast_iterator.default_iterator.expr it e
  in
  find body;
  (List.rev !leaks, !creates)

(* Does the binding close its (first) fd-typed parameter on all paths? *)
let closes_param ctx sets local_closes body =
  let rec peel pats (e : expression) =
    match e.exp_desc with
    | Texp_function { cases = [ { c_lhs; c_guard = None; c_rhs } ]; _ } ->
      peel (c_lhs :: pats) c_rhs
    | _ -> (List.rev pats, e)
  in
  let pats, inner = peel [] body in
  let fd_params =
    List.concat_map
      (fun p ->
        List.filter_map
          (fun (id, _, ty) -> if is_fd_type ty then Some id else None)
          (pat_bound_idents_full p))
      pats
  in
  match fd_params with
  | id :: _ ->
    let res = fd_check ctx sets local_closes id inner in
    res.r && not res.esc
  | [] -> false

(* ------------------------------------------------------------------ *)
(* Per-module summary construction *)

type raw_binding = { b_fn : string; b_loc : Location.t; b_expr : expression }

let collect_bindings ctx (str : structure) =
  let bindings = ref [] in
  let rec items prefix its =
    List.iter
      (fun item ->
        match item.str_desc with
        | Tstr_value (_, vbs) ->
          List.iter
            (fun vb ->
              let ids = pat_bound_idents vb.vb_pat in
              List.iter
                (fun id ->
                  ctx.toplevel := (id, prefix ^ "." ^ Ident.name id) :: !(ctx.toplevel))
                ids;
              match ids with
              | id :: _ ->
                bindings :=
                  { b_fn = prefix ^ "." ^ Ident.name id; b_loc = vb.vb_loc; b_expr = vb.vb_expr }
                  :: !bindings
              | [] -> ())
            vbs
        | Tstr_module mb -> descend_mb prefix mb
        | Tstr_recmodule mbs -> List.iter (descend_mb prefix) mbs
        | _ -> ())
      its
  and descend_mb prefix mb =
    let name = match mb.mb_name.txt with Some n -> n | None -> "_" in
    let rec strip_me me =
      match me.mod_desc with
      | Tmod_structure s -> Some s
      | Tmod_constraint (me, _, _, _) -> strip_me me
      | _ -> None
    in
    match strip_me mb.mb_expr with
    | Some s -> items (prefix ^ "." ^ name) s.str_items
    | None -> ()
  in
  items ctx.cur_mod str.str_items;
  List.rev !bindings

let build_module_summary ~cfg ~known ~modname ~file (str : structure) =
  let lib =
    match String.index_opt modname '.' with
    | Some i -> String.sub modname 0 i
    | None -> modname
  in
  let ctx = { cfg; known; cur_mod = modname; lib; file; toplevel = ref [] } in
  let bindings = collect_bindings ctx str in
  let effects = List.map (fun b -> (b, collect_effects ctx b.b_expr)) bindings in
  let track_fds = Lint.in_any file cfg.fd_dirs in
  let base = { creators = cfg.fd_creators; closers = cfg.fd_closers } in
  let fd_round sets local_closes =
    List.map
      (fun b ->
        if track_fds then
          let leaks, creates = fd_scan ctx sets local_closes ~fn:b.b_fn b.b_expr in
          (b.b_fn, (leaks, creates, closes_param ctx sets local_closes b.b_expr))
        else (b.b_fn, ([], false, false)))
      bindings
  in
  (* two rounds: the first derives per-module creators/closers, the
     second re-checks every binding against the derived sets so
     same-module wrappers compose *)
  let r1 = fd_round base [] in
  let derived =
    {
      creators =
        base.creators @ List.filter_map (fun (f, (_, c, _)) -> if c then Some f else None) r1;
      closers =
        base.closers @ List.filter_map (fun (f, (_, _, c)) -> if c then Some f else None) r1;
    }
  in
  let local_closes = List.map (fun (f, (_, _, c)) -> (f, c)) r1 in
  let r2 = fd_round derived local_closes in
  let fns =
    List.map
      (fun (b, eff) ->
        let leaks, creates, closes =
          match List.assoc_opt b.b_fn r2 with Some x -> x | None -> ([], false, false)
        in
        {
          fn = b.b_fn;
          def = site_of ~file b.b_loc;
          calls = List.sort_uniq compare eff.e_calls;
          blocking = List.sort_uniq compare eff.e_blocking;
          raw_io = List.sort_uniq compare eff.e_raw_io;
          mut_uses = List.sort_uniq compare eff.e_mut;
          fd_leaks = leaks;
          creates_fd = creates;
          closes_fd_param = closes;
        })
      effects
  in
  { m_name = modname; m_file = file; m_fns = fns }

(* ------------------------------------------------------------------ *)
(* Call-graph reachability *)

let build_index summaries =
  let idx = Hashtbl.create 256 in
  List.iter (fun m -> List.iter (fun f -> Hashtbl.replace idx f.fn f) m.m_fns) summaries;
  idx

(* BFS with parent links so diagnostics can print the call chain. *)
let reachable ?(cut = []) idx entries =
  let parent : (string, string option) Hashtbl.t = Hashtbl.create 64 in
  let q = Queue.create () in
  List.iter
    (fun e ->
      if Hashtbl.mem idx e && not (Hashtbl.mem parent e) then begin
        Hashtbl.replace parent e None;
        Queue.add e q
      end)
    entries;
  while not (Queue.is_empty q) do
    let f = Queue.pop q in
    let s = Hashtbl.find idx f in
    List.iter
      (fun (c, _) ->
        if
          Hashtbl.mem idx c
          && (not (Hashtbl.mem parent c))
          && not (List.mem c cut)
        then begin
          Hashtbl.replace parent c (Some f);
          Queue.add c q
        end)
      s.calls
  done;
  parent

let chain parent fn =
  let rec up acc f =
    match Hashtbl.find_opt parent f with
    | Some (Some p) -> up (f :: acc) p
    | Some None -> f :: acc
    | None -> f :: acc
  in
  String.concat " -> " (up [] fn)

(* ------------------------------------------------------------------ *)
(* Rules *)

let diag rule (s : site) message =
  {
    Lint.rule;
    severity = Lint.Error;
    file = s.s_file;
    line = s.s_line;
    col = s.s_col;
    message;
  }

let owner_file ~summaries key =
  (* longest known-module prefix of a location key names its owner *)
  let best = ref None in
  List.iter
    (fun m ->
      let p = m.m_name ^ "." in
      let pl = String.length p in
      if String.length key > pl && String.sub key 0 pl = p then
        match !best with
        | Some (l, _) when l >= pl -> ()
        | _ -> best := Some (pl, m.m_file))
    summaries;
  Option.map snd !best

let access_str = function Read -> "read" | Write -> "written"

let race_rule cfg summaries idx =
  let mon = reachable ~cut:cfg.boot_fns idx cfg.monitor_entries in
  let srv = reachable ~cut:cfg.boot_fns idx cfg.serving_entries in
  (* key -> (side, fn, access, site) uses *)
  let uses = Hashtbl.create 64 in
  Hashtbl.iter
    (fun fn (s : fn_summary) ->
      let m = Hashtbl.mem mon fn and v = Hashtbl.mem srv fn in
      if m || v then
        List.iter
          (fun (key, acc, site) ->
            let prev = try Hashtbl.find uses key with Not_found -> [] in
            let add side l = (side, fn, acc, site) :: l in
            let l = if m then add `Mon prev else prev in
            let l = if v then add `Srv l else l in
            Hashtbl.replace uses key l)
          s.mut_uses)
    idx;
  let site_order (_, _, _, a) (_, _, _, b) = compare (a.s_file, a.s_line, a.s_col) (b.s_file, b.s_line, b.s_col) in
  Hashtbl.fold
    (fun key l acc ->
      match owner_file ~summaries key with
      | Some f when Lint.in_any f cfg.shared_mutable_dirs ->
        let mons = List.sort site_order (List.filter (fun (s, _, _, _) -> s = `Mon) l) in
        let srvs = List.sort site_order (List.filter (fun (s, _, _, _) -> s = `Srv) l) in
        let has_write side =
          List.exists (fun (_, _, a, _) -> a = Write) (if side = `Mon then mons else srvs)
        in
        if mons <> [] && srvs <> [] && (has_write `Mon || has_write `Srv) then begin
          let pick side l =
            match List.find_opt (fun (_, _, a, _) -> a = Write) l with
            | Some u when has_write side -> u
            | _ -> List.hd l
          in
          let _, mfn, macc, msite = pick `Mon mons in
          let _, sfn, sacc, ssite = pick `Srv srvs in
          diag "shared-mutable-race" msite
            (Printf.sprintf
               "mutable location '%s' is %s on the monitor side (%s) and %s on the \
                serving side (%s at %s:%d) without going through Atomic.t"
               key (access_str macc) (chain mon mfn) (access_str sacc) (chain srv sfn)
               ssite.s_file ssite.s_line)
          :: acc
        end
        else acc
      | _ -> acc)
    uses []

let monitor_blocking_rule cfg idx =
  let mon = reachable ~cut:cfg.boot_fns idx cfg.monitor_entries in
  Hashtbl.fold
    (fun fn (s : fn_summary) acc ->
      if Hashtbl.mem mon fn then
        List.fold_left
          (fun acc (b, site) ->
            diag "monitor-blocking" site
              (Printf.sprintf
                 "blocking call '%s' is reachable from a monitor entry point (%s); the \
                  monitor/reselect thread must stay lock- and wait-free"
                 b (chain mon fn))
            :: acc)
          acc s.blocking
      else acc)
    idx []

let handler_blocking_rule cfg idx =
  let h = reachable ~cut:cfg.boot_fns idx cfg.handler_entries in
  let in_wrapper fn =
    List.exists
      (fun m ->
        let p = m ^ "." in
        String.length fn > String.length p && String.sub fn 0 (String.length p) = p)
      cfg.io_wrapper_modules
  in
  Hashtbl.fold
    (fun fn (s : fn_summary) acc ->
      if Hashtbl.mem h fn && not (in_wrapper fn) then
        List.fold_left
          (fun acc (c, site) ->
            diag "handler-blocking" site
              (Printf.sprintf
                 "raw blocking syscall '%s' is reachable from a deadline-scoped handler \
                  (%s); route it through the Io timeout wrappers"
                 c (chain h fn))
            :: acc)
          acc s.raw_io
      else acc)
    idx []

let fd_leak_rule summaries =
  List.concat_map
    (fun m ->
      List.concat_map
        (fun (f : fn_summary) ->
          List.map (fun (msg, site) -> diag "fd-leak" site msg) f.fd_leaks)
        m.m_fns)
    summaries

let run_rules ~cfg ~sources summaries =
  let idx = build_index summaries in
  let diags =
    race_rule cfg summaries idx
    @ monitor_blocking_rule cfg idx
    @ handler_blocking_rule cfg idx
    @ fd_leak_rule summaries
  in
  (* suppression comments come from the source files the cmts point at *)
  let sup_cache = Hashtbl.create 8 in
  let sup_for file =
    match Hashtbl.find_opt sup_cache file with
    | Some s -> s
    | None ->
      let s =
        match List.assoc_opt file sources with
        | Some src -> Lint.suppressions_of_source src
        | None -> (
          try
            if Sys.file_exists file then Lint.suppressions_of_source (Lint.read_file file)
            else Lint.no_suppressions
          with _ -> Lint.no_suppressions)
      in
      Hashtbl.replace sup_cache file s;
      s
  in
  let kept =
    List.filter
      (fun (d : Lint.diagnostic) -> Lint.filter_suppressed (sup_for d.file) [ d ] <> [])
      diags
  in
  List.sort_uniq
    (fun (a : Lint.diagnostic) (b : Lint.diagnostic) ->
      compare (a.file, a.line, a.col, a.rule, a.message) (b.file, b.line, b.col, b.rule, b.message))
    kept

(* ------------------------------------------------------------------ *)
(* Incremental summary cache *)

let cache_tag = "pathsel-analyze-summaries-v1"

let load_cache = function
  | None -> []
  | Some path -> (
    try
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let tag : string = Marshal.from_channel ic in
          if tag = cache_tag then
            (Marshal.from_channel ic : (string * (string * module_summary)) list)
          else [])
    with _ -> [])

let save_cache path entries =
  match path with
  | None -> ()
  | Some path -> (
    try
      let tmp = path ^ ".tmp" in
      let oc = open_out_bin tmp in
      Marshal.to_channel oc cache_tag [];
      Marshal.to_channel oc (entries : (string * (string * module_summary)) list) [];
      close_out oc;
      Sys.rename tmp path
    with _ -> ())

(* ------------------------------------------------------------------ *)
(* Entry points *)

let modname_of_cmt_path p =
  let b = Filename.remove_extension (Filename.basename p) in
  if b = "" then None else Some (replace_dunder (String.capitalize_ascii b))

let find_cmts root =
  let acc = ref [] in
  let rec walk d =
    match Sys.readdir d with
    | exception _ -> ()
    | xs ->
      Array.iter
        (fun x ->
          let p = Filename.concat d x in
          match Sys.is_directory p with
          | exception _ -> ()
          | true -> walk p
          | false ->
            if Filename.check_suffix x ".cmt" && not (String.ends_with ~suffix:"__.cmt" x)
            then acc := p :: !acc)
        xs
  in
  (try if Sys.is_directory root then walk root with _ -> ());
  List.sort compare !acc

let analyze_cmts ?(config = default_config) cmt_paths =
  let known = List.filter_map modname_of_cmt_path cmt_paths in
  let cache = load_cache config.summary_cache in
  (* a cached summary is stale when the cmt changed, but also when the
     analyzer itself or its config did — fold all three into the key *)
  let stamp =
    (try Digest.file Sys.executable_name with _ -> "")
    ^ Digest.string (Marshal.to_string { config with summary_cache = None } [])
  in
  let entries =
    List.filter_map
      (fun p ->
        match Digest.string (stamp ^ Digest.file p) with
        | exception _ -> None
        | dg -> (
          match List.assoc_opt p cache with
          | Some (dg', ms) when dg' = dg -> Some (p, (dg, ms))
          | _ -> (
            try
              let ci = Cmt_format.read_cmt p in
              match ci.Cmt_format.cmt_annots with
              | Cmt_format.Implementation str ->
                let modname = replace_dunder ci.Cmt_format.cmt_modname in
                let file =
                  match ci.Cmt_format.cmt_sourcefile with
                  | Some f -> Lint.normalize f
                  | None -> modname
                in
                Some
                  (p, (dg, build_module_summary ~cfg:config ~known ~modname ~file str))
              | _ -> None
            with _ -> None)))
      cmt_paths
  in
  save_cache config.summary_cache entries;
  run_rules ~cfg:config ~sources:[] (List.map (fun (_, (_, ms)) -> ms) entries)

(* ------------------------------------------------------------------ *)
(* In-process typechecking, for fixture tests: analyze source snippets
   without shelling out to the compiler. Snippets are typed in order;
   each one can refer to the modules of the previous ones. *)

let typecheck_sources srcs =
  Compmisc.init_path ();
  List.iter
    (fun sub ->
      try Load_path.add_dir (Filename.concat Config.standard_library sub) with _ -> ())
    [ "unix"; "threads" ];
  ignore (Warnings.parse_options false "-a");
  let env = ref (Compmisc.initial_env ()) in
  List.map
    (fun (modname, path, src) ->
      let lb = Lexing.from_string src in
      Lexing.set_filename lb path;
      try
        let pstr = Parse.implementation lb in
        let tstr, sg, _names, _shape, _env = Typemod.type_structure !env pstr in
        env :=
          Env.add_module
            (Ident.create_persistent modname)
            Types.Mp_present (Types.Mty_signature sg) !env;
        (modname, path, tstr)
      with e ->
        let msg =
          match Location.error_of_exn e with
          | Some (`Ok err) -> Format.asprintf "%a" Location.print_report err
          | _ -> Printexc.to_string e
        in
        failwith (Printf.sprintf "fixture %s failed to typecheck: %s" path msg))
    srcs

let analyze_sources ?(config = default_config) srcs =
  let typed = typecheck_sources srcs in
  let known = List.map (fun (m, _, _) -> m) srcs in
  let summaries =
    List.map
      (fun (modname, path, tstr) ->
        build_module_summary ~cfg:config ~known ~modname ~file:(Lint.normalize path) tstr)
      typed
  in
  run_rules ~cfg:config
    ~sources:(List.map (fun (_, p, s) -> (Lint.normalize p, s)) srcs)
    summaries
