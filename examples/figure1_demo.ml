(* The paper's Figure 1, executable: four paths merge at gate G5, so the
   delay of any one of them is a linear combination of the other three
   (d_p1 = d_p2 - d_p3 + d_p4). Three representative paths predict the
   fourth with zero error on every die.

   Run with:  dune exec examples/figure1_demo.exe *)

let () =
  let pi i = Circuit.Netlist.Pi i in
  let gout g = Circuit.Netlist.Gate_out g in
  let inv = Circuit.Cell.Inv in
  let netlist =
    Circuit.Netlist.build ~name:"figure1" ~num_inputs:2
      ~gates:
        [
          ("G1", inv, [| pi 0 |], (0.1, 0.3));
          ("G2", inv, [| pi 1 |], (0.1, 0.7));
          ("G3", inv, [| gout 0 |], (0.3, 0.3));
          ("G4", inv, [| gout 1 |], (0.3, 0.7));
          ("G5", Circuit.Cell.Nand2, [| gout 2; gout 3 |], (0.5, 0.5));
          ("G6", inv, [| gout 4 |], (0.7, 0.7));
          ("G7", inv, [| gout 4 |], (0.7, 0.3));
          ("G8", inv, [| gout 5 |], (0.9, 0.7));
          ("G9", inv, [| gout 6 |], (0.9, 0.3));
        ]
      ~outputs:[ gout 7; gout 8 ]
  in
  let dm = Timing.Delay_model.build netlist (Timing.Variation.make_model ~levels:3 ()) in
  (* enumerate all four PI->PO paths *)
  let result = Timing.Path_extract.extract dm ~t_cons:1.0 ~yield_threshold:0.9999 in
  let pool = Timing.Paths.build dm result.paths in
  Printf.printf "target paths (%d):\n" (Timing.Paths.num_paths pool);
  for i = 0 to Timing.Paths.num_paths pool - 1 do
    let p = Timing.Paths.path pool i in
    let names =
      p.gates |> Array.to_list
      |> List.map (fun g -> (Circuit.Netlist.gate netlist g).Circuit.Netlist.name)
      |> String.concat " -> "
    in
    Printf.printf "  p%d: %s  (mu %.1f ps, sigma %.2f)\n" (i + 1) names p.mu p.sigma
  done;
  let a = Timing.Paths.a_mat pool in
  Printf.printf "\nrank(A) = %d, segments = %d\n" (Linalg.Rank.of_mat a)
    (Timing.Paths.num_segments pool);
  let sel = Core.Select.exact ~a ~mu:(Timing.Paths.mu_paths pool) () in
  let rep = Core.Predictor.rep_indices sel.predictor in
  let rem = Core.Predictor.rem_indices sel.predictor in
  Printf.printf "representative paths: %s  |  predicted path: p%d\n"
    (String.concat ", "
       (Array.to_list (Array.map (fun i -> Printf.sprintf "p%d" (i + 1)) rep)))
    (rem.(0) + 1);
  (* fabricate three dies and predict the fourth path's delay on each *)
  let mc = Timing.Monte_carlo.sample (Rng.create 2024) pool ~n:3 in
  let d = Timing.Monte_carlo.path_delays mc in
  print_endline "\ndie-by-die check (predicted vs true, ps):";
  for k = 0 to 2 do
    let measured = Array.map (fun i -> Linalg.Mat.get d k i) rep in
    let predicted = Core.Predictor.predict sel.predictor ~measured in
    Printf.printf "  die %d: %.4f vs %.4f\n" (k + 1) predicted.(0)
      (Linalg.Mat.get d k rem.(0))
  done;
  print_endline "\nzero prediction error, exactly as Figure 1 promises."
