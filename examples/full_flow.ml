(* The complete production flow, end to end:

     structural Verilog  ->  NLDM delay calculation (Liberty tables)
       ->  statistical delay model  ->  target-path extraction
       ->  representative selection  ->  JSON measurement plan

   Run with:  dune exec examples/full_flow.exe *)

let () =
  (* 1. a gate-level Verilog netlist (generated here; parse_file loads
     a real one) *)
  let generated =
    Circuit.Generator.generate
      { Circuit.Generator.default with num_gates = 350; seed = 27 }
  in
  let verilog_text = Circuit.Verilog_io.print generated in
  let netlist = Circuit.Verilog_io.parse ~name:"demo" verilog_text in
  Printf.printf "parsed Verilog: %s\n" (Circuit.Netlist.stats netlist);

  (* 2. NLDM delay calculation from the embedded Liberty library *)
  let lib =
    Circuit.Liberty.Library.of_group (Circuit.Liberty.parse Circuit.Liberty.builtin)
  in
  let sweep = Timing.Delay_calc.run lib netlist in
  Printf.printf "NLDM sweep: gate delays %.1f..%.1f ps, max load %.4f pF\n"
    (Array.fold_left Float.min infinity sweep.delays)
    (Array.fold_left Float.max 0.0 sweep.delays)
    (Array.fold_left Float.max 0.0 sweep.loads);

  (* 3. statistical model on top of the NLDM nominals *)
  let model = Timing.Variation.make_model ~levels:3 () in
  let dm = Timing.Delay_calc.delay_model lib netlist ~model in
  let setup = Core.Pipeline.prepare_with_model ~dm () in
  Printf.printf "targets: %d paths, %d segments at T = %.1f ps (yield %.3f)\n"
    (Timing.Paths.num_paths setup.pool)
    (Timing.Paths.num_segments setup.pool)
    setup.t_cons setup.circuit_yield;

  (* 4. selection, both flavours *)
  let sel = Core.Pipeline.approximate_selection setup ~eps:0.05 in
  let hybrid = Core.Pipeline.hybrid_selection setup ~eps:0.08 in
  Printf.printf "Algorithm 1: %d paths; Algorithm 3: %d paths + %d segments\n"
    (Array.length sel.indices)
    (Array.length hybrid.path_indices)
    (Array.length hybrid.segment_indices);

  (* 5. machine-readable plans for the DFT flow *)
  let dir = Filename.get_temp_dir_name () in
  let path_plan = Filename.concat dir "repro_path_plan.json" in
  let hybrid_plan = Filename.concat dir "repro_hybrid_plan.json" in
  Core.Report.write_file path_plan
    (Core.Report.selection_report ~pool:setup.pool ~t_cons:setup.t_cons ~eps:0.05 sel);
  Core.Report.write_file hybrid_plan
    (Core.Report.hybrid_report ~pool:setup.pool ~t_cons:setup.t_cons ~eps:0.08 hybrid);
  Printf.printf "wrote %s\nwrote %s\n" path_plan hybrid_plan;

  (* 6. sanity: score the plan on Monte Carlo dies with realistic
     (quantized, jittery) measurements *)
  let p = sel.predictor in
  let mc = Timing.Monte_carlo.sample (Rng.create 1) setup.pool ~n:1000 in
  let d = Timing.Monte_carlo.path_delays mc in
  let rep = Core.Predictor.rep_indices p in
  let measured =
    Timing.Measurement.apply_mat Timing.Measurement.typical_path_ro (Rng.create 2)
      (Linalg.Mat.select_cols d rep)
  in
  let metrics =
    Core.Evaluate.of_predictions
      ~truth:(Linalg.Mat.select_cols d (Core.Predictor.rem_indices p))
      ~predicted:(Core.Predictor.predict_all p ~measured)
  in
  Printf.printf
    "with path-RO measurement: e1 = %.2f%%, e2 = %.2f%% over 1000 dies\n"
    (100.0 *. metrics.e1) (100.0 *. metrics.e2)
