(* Multi-corner selection: one instrumented path set that stays
   representative at several operating corners. Here "typical" and a
   noisier corner (2x random variation, slightly relaxed constraint)
   are covered jointly; the example shows that per-corner optimal
   selections differ, while the joint selection meets the tolerance
   everywhere at a modest size premium.

   Run with:  dune exec examples/multi_corner.exe *)

let () =
  let netlist =
    Circuit.Generator.generate
      { Circuit.Generator.default with num_gates = 250; seed = 61 }
  in
  (* corner definitions share the path pool (paths are a design-time
     artifact); each corner prices the pool with its own model *)
  let model_typ = Timing.Variation.make_model ~levels:3 () in
  let dm_typ = Timing.Delay_model.build netlist model_typ in
  let t_typ = Timing.Delay_model.nominal_critical_delay dm_typ in
  let extraction =
    Timing.Path_extract.extract dm_typ ~t_cons:t_typ ~yield_threshold:0.995
  in
  let paths = extraction.paths in
  let pool_typ = Timing.Paths.build dm_typ paths in
  let model_noisy = Timing.Variation.make_model ~levels:3 ~random_boost:2.0 () in
  let dm_noisy = Timing.Delay_model.build netlist model_noisy in
  let pool_noisy = Timing.Paths.build dm_noisy paths in
  Printf.printf "shared pool: %d target paths\n\n" (List.length paths);

  let corner label pool t_cons =
    { Core.Corners.label; a = Timing.Paths.a_mat pool;
      mu = Timing.Paths.mu_paths pool; t_cons }
  in
  let c_typ = corner "typical" pool_typ t_typ in
  let c_noisy = corner "noisy" pool_noisy (1.02 *. t_typ) in

  let eps = 0.05 in
  let solo c =
    Core.Select.approximate ~a:c.Core.Corners.a ~mu:c.Core.Corners.mu ~eps
      ~t_cons:c.Core.Corners.t_cons ()
  in
  let s_typ = solo c_typ and s_noisy = solo c_noisy in
  Printf.printf "per-corner optima: typical needs %d paths, noisy needs %d\n"
    (Array.length s_typ.indices) (Array.length s_noisy.indices);

  let joint = Core.Corners.select ~corners:[ c_typ; c_noisy ] ~eps () in
  Printf.printf "joint selection: %d paths, worst-corner eps_r = %.2f%%\n"
    (Array.length joint.indices) (100.0 *. joint.worst_eps_r);
  List.iter
    (fun (label, sel) ->
      Printf.printf "  corner %-8s: eps_r = %.2f%% with the shared paths\n" label
        (100.0 *. sel.Core.Select.eps_r))
    joint.per_corner;

  (* validate at both corners on their own Monte Carlo dies *)
  List.iter2
    (fun (label, sel) pool ->
      let mc = Timing.Monte_carlo.sample (Rng.create 71) pool ~n:1500 in
      let m =
        Core.Evaluate.predictor_metrics sel.Core.Select.predictor
          ~path_delays:(Timing.Monte_carlo.path_delays mc)
      in
      Printf.printf "  corner %-8s: MC e1 = %.2f%%, e2 = %.2f%%\n" label
        (100.0 *. m.e1) (100.0 *. m.e2))
    joint.per_corner [ pool_typ; pool_noisy ];
  print_endline
    "\nOne set of instrumented paths serves both corners within tolerance."
