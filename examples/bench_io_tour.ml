(* Working with ISCAS .bench netlists: print a generated circuit to the
   .bench format, parse it back, and run the full selection flow on the
   parsed netlist. Drop in a real benchmark file to run on it instead:

     dune exec examples/bench_io_tour.exe -- path/to/s1423.bench

   Run with:  dune exec examples/bench_io_tour.exe *)

let () =
  let netlist =
    match Sys.argv with
    | [| _; path |] ->
      Printf.printf "parsing %s\n" path;
      Circuit.Bench_io.parse_file path
    | _ ->
      (* no file given: demonstrate the round trip on a generated one *)
      let original =
        Circuit.Generator.generate
          { Circuit.Generator.default with num_gates = 220; seed = 6 }
      in
      let text = Circuit.Bench_io.print original in
      print_endline "first lines of the .bench rendering:";
      String.split_on_char '\n' text
      |> List.filteri (fun i _ -> i < 8)
      |> List.iter (fun l -> Printf.printf "  %s\n" l);
      Printf.printf "  ... (%d lines total)\n\n" (List.length (String.split_on_char '\n' text));
      Circuit.Bench_io.parse ~name:"roundtrip" text
  in
  Printf.printf "netlist: %s\n" (Circuit.Netlist.stats netlist);
  let model = Timing.Variation.make_model ~levels:3 () in
  let setup = Core.Pipeline.prepare ~netlist ~model () in
  let sel = Core.Pipeline.approximate_selection setup ~eps:0.05 in
  Printf.printf
    "selection on the parsed netlist: %d of %d target paths (eps_r = %.2f%%)\n"
    (Array.length sel.indices)
    (Timing.Paths.num_paths setup.pool)
    (100.0 *. sel.eps_r)
