(* Post-silicon validation with guard bands (the paper's Section 6.3).

   Scenario: the test floor measures only the representative paths on
   each incoming die, predicts every other target path, and applies the
   conservative test "predicted / (1 - eps_i) > T_cons => fail". This
   example fabricates 500 virtual dies, runs that flow, and reports how
   many real timing failures the guard-banded prediction caught.

   Run with:  dune exec examples/guardband_flow.exe *)

let () =
  let netlist =
    Circuit.Generator.generate
      { Circuit.Generator.default with num_gates = 350; seed = 12 }
  in
  let model = Timing.Variation.make_model ~levels:3 () in
  let setup = Core.Pipeline.prepare ~netlist ~model () in
  let eps = 0.05 in
  let sel = Core.Pipeline.approximate_selection setup ~eps in
  let n_rep = Array.length sel.indices in
  let n_rem = Timing.Paths.num_paths setup.pool - n_rep in
  Printf.printf
    "design stage: %d target paths; instrument %d representative ones\n"
    (Timing.Paths.num_paths setup.pool) n_rep;
  Printf.printf "per-path guard bands: max %.2f%% of T, mean %.2f%%\n"
    (100.0 *. Array.fold_left Float.max 0.0 sel.per_path_eps)
    (100.0 *. Stats.Descriptive.mean sel.per_path_eps);

  (* ---- test floor ---- *)
  let n_dies = 500 in
  let mc = Timing.Monte_carlo.sample (Rng.create 99) setup.pool ~n:n_dies in
  let d = Timing.Monte_carlo.path_delays mc in
  let p = sel.predictor in
  let rep = Core.Predictor.rep_indices p in
  let rem = Core.Predictor.rem_indices p in
  let measured = Linalg.Mat.select_cols d rep in
  let truth = Linalg.Mat.select_cols d rem in
  let predicted = Core.Predictor.predict_all p ~measured in
  let eps_caps = Array.map (fun e -> Float.min 0.99 e) sel.per_path_eps in
  let report =
    Core.Guardband.analyze ~truth ~predicted ~eps:eps_caps ~t_cons:setup.t_cons
  in
  Printf.printf
    "\ntest floor: %d dies x %d predicted paths = %d checks\n" n_dies n_rem
    report.total_checks;
  Printf.printf "  true timing failures : %d\n" report.true_failures;
  Printf.printf "  caught by guard band : %d (%.2f%%)\n" report.detected
    (100.0 *. report.detection_rate);
  Printf.printf "  missed               : %d\n" report.missed;
  Printf.printf "  false alarms         : %d (%.3f%% of checks)\n"
    report.false_alarms (100.0 *. report.false_alarm_rate);
  Printf.printf
    "\nInterpretation: validating %d paths per die instead of %d, the flow\n\
     still localizes essentially every failing path; the price is the\n\
     small false-alarm band around T_cons.\n"
    n_rep (Timing.Paths.num_paths setup.pool)
