(* Post-silicon diagnosis (the paper's Section-7 outlook, implemented):
   from the measured representative-path delays of ONE die, estimate the
   underlying process variations, separate a global (die-to-die) shift
   from localized deviations, and list the paths the die will fail.

   Run with:  dune exec examples/diagnosis.exe *)

let () =
  let netlist =
    Circuit.Generator.generate
      { Circuit.Generator.default with num_gates = 300; seed = 15 }
  in
  let model = Timing.Variation.make_model ~levels:3 () in
  let setup = Core.Pipeline.prepare ~netlist ~model () in
  (* debug instruments the exact representative set (r = rank A): more
     measurements buy localization power *)
  let sel = Core.Pipeline.exact_selection setup in
  let pool = setup.pool in
  let diag = Core.Diagnose.build ~pool ~rep:sel.indices in
  Printf.printf "instrumented %d representative paths out of %d targets\n\n"
    (Array.length sel.indices) (Timing.Paths.num_paths pool);

  (* fabricate two interesting dies: a slow global-corner die and a die
     with one deviant within-die region *)
  let keys = Timing.Paths.var_keys pool in
  let a = Timing.Paths.a_mat pool in
  let mu = Timing.Paths.mu_paths pool in
  let die_of x = Linalg.Vec.add mu (Linalg.Mat.apply a x) in
  let measure delays = Array.map (fun i -> delays.(i)) sel.indices in

  let slow_die =
    let x = Array.make (Array.length keys) 0.0 in
    Array.iteri
      (fun i k ->
        match k with
        | Timing.Variation.Region { level = 0; _ } -> x.(i) <- 2.5
        | Timing.Variation.Region _ | Timing.Variation.Gate_random _ -> ())
      keys;
    die_of x
  in
  let hotspot_die =
    let x = Array.make (Array.length keys) 0.0 in
    (* push one covered finest-level region (both parameters) *)
    let hot_cell =
      Array.to_list keys
      |> List.filter_map (fun k ->
           match k with
           | Timing.Variation.Region { level = 2; cell; _ } -> Some cell
           | Timing.Variation.Region _ | Timing.Variation.Gate_random _ -> None)
      |> function
      | cell :: _ -> cell
      | [] -> 0
    in
    Array.iteri
      (fun i k ->
        match k with
        | Timing.Variation.Region { level = 2; cell; _ } when cell = hot_cell ->
          x.(i) <- 3.0
        | Timing.Variation.Region _ | Timing.Variation.Gate_random _ -> ())
      keys;
    die_of x
  in

  let report name delays =
    let measured = measure delays in
    Printf.printf "--- %s ---\n" name;
    Printf.printf "estimated die-to-die shift: %+.2f sigma\n"
      (Core.Diagnose.die_to_die_shift diag ~measured);
    print_endline "top deviating variables:";
    List.iter
      (fun at ->
        Printf.printf "  %-14s %+.2f sigma\n"
          (Timing.Variation.var_name at.Core.Diagnose.var)
          at.Core.Diagnose.z_score)
      (Core.Diagnose.attribute ~top:5 diag ~measured);
    let failing =
      Core.Diagnose.predicted_failures diag ~measured ~eps:sel.per_path_eps
        ~t_cons:setup.t_cons
    in
    Printf.printf "paths flagged for this die: %d of %d\n\n" (List.length failing)
      (Timing.Paths.num_paths pool)
  in
  report "die A: slow global corner (+2.5 sigma die-to-die)" slow_die;
  report "die B: within-die hotspot (one quadrant +3 sigma)" hotspot_die
