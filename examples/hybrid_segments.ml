(* Hybrid path/segment selection (the paper's Algorithm 3): when the
   independent random variation is strong, whole-path measurements stop
   compressing well, and measuring a few SEGMENTS (to be exposed through
   custom test structures) beats measuring paths. This example runs both
   schemes on the same circuit with the random sensitivities boosted 3x
   (the paper's Figure 2(b) regime) and prints the selected segments as
   a test-structure worklist.

   Run with:  dune exec examples/hybrid_segments.exe *)

let () =
  let netlist =
    Circuit.Generator.generate
      { Circuit.Generator.default with num_gates = 300; seed = 3 }
  in
  (* boosted random variation: the regime that motivates segments *)
  let model = Timing.Variation.make_model ~levels:3 ~random_boost:3.0 () in
  let setup = Core.Pipeline.prepare ~netlist ~model () in
  let eps = 0.08 in
  Printf.printf "pool: %d target paths, %d segments, %d variables\n"
    (Timing.Paths.num_paths setup.pool)
    (Timing.Paths.num_segments setup.pool)
    (Timing.Paths.num_vars setup.pool);

  let approx = Core.Pipeline.approximate_selection setup ~eps in
  let am = Core.Pipeline.evaluate_selection setup approx in
  Printf.printf "\npath-only selection (Algorithm 1): %d paths, MC e1 = %.2f%%\n"
    (Array.length approx.indices) (100.0 *. am.e1);

  let hybrid = Core.Pipeline.hybrid_selection setup ~eps in
  let hm = Core.Pipeline.evaluate_hybrid setup hybrid in
  Printf.printf
    "hybrid selection (Algorithm 3): %d paths + %d segments = %d measurements, \
     MC e1 = %.2f%% (eps' = %.1f%%)\n"
    (Array.length hybrid.path_indices)
    (Array.length hybrid.segment_indices)
    (Core.Hybrid.total_measurements hybrid)
    (100.0 *. hm.e1)
    (100.0 *. hybrid.eps_prime);

  print_endline "\ncustom test-structure worklist (selected segments):";
  Array.iter
    (fun s ->
      let gates = Timing.Paths.segment_gates setup.pool s in
      let names =
        gates |> Array.to_list
        |> List.map (fun g -> (Circuit.Netlist.gate netlist g).Circuit.Netlist.name)
      in
      let mu = Timing.Paths.mu_segments setup.pool in
      Printf.printf "  segment %3d: %2d gates, %.1f ps nominal  [%s%s]\n" s
        (Array.length gates) mu.(s)
        (String.concat " " (List.filteri (fun i _ -> i < 6) names))
        (if Array.length gates > 6 then " ..." else ""))
    hybrid.segment_indices;

  if Array.length hybrid.path_indices > 0 then begin
    print_endline "\npaths still measured directly (scan-based, e.g. [10]):";
    Array.iter (fun i -> Printf.printf "  path %d\n" i) hybrid.path_indices
  end
