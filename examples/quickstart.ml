(* Quickstart: generate a circuit, extract the statistically-critical
   paths, pick a handful of representative ones, and check on Monte
   Carlo "virtual dies" that measuring just those paths predicts all the
   others within the tolerance.

   Run with:  dune exec examples/quickstart.exe *)

let () =
  (* 1. A circuit. Here a synthetic 400-gate netlist; Bench_io.parse_file
     loads a real ISCAS .bench instead. *)
  let netlist = Circuit.Generator.generate Circuit.Generator.default in
  Printf.printf "circuit: %s\n" (Circuit.Netlist.stats netlist);

  (* 2. The variation model: 3-level spatial quadtree (21 regions) for
     L_eff and V_t, plus a 6%-share random term per gate. *)
  let model = Timing.Variation.make_model ~levels:3 () in

  (* 3. Prepare the flow: timing constraint = nominal critical delay,
     target paths = everything whose yield loss exceeds 1% of the
     circuit's yield loss. *)
  let setup = Core.Pipeline.prepare ~netlist ~model () in
  Printf.printf
    "T_cons = %.1f ps, circuit yield %.3f -> %d target paths over %d segments\n"
    setup.t_cons setup.circuit_yield
    (Timing.Paths.num_paths setup.pool)
    (Timing.Paths.num_segments setup.pool);

  (* 4. Representative path selection at a 5% worst-case tolerance. *)
  let eps = 0.05 in
  let sel = Core.Pipeline.approximate_selection setup ~eps in
  Printf.printf
    "rank(A) = %d (exact selection size); effective rank = %d;\n\
     Algorithm 1 picked %d representative paths (analytic eps_r = %.2f%%)\n"
    sel.rank sel.effective_rank
    (Array.length sel.indices)
    (100.0 *. sel.eps_r);

  (* 5. Validate on 2000 virtual dies. *)
  let metrics = Core.Pipeline.evaluate_selection setup sel in
  Printf.printf
    "Monte Carlo over 2000 dies: max relative error e1 = %.2f%%, mean e2 = %.2f%%\n"
    (100.0 *. metrics.e1) (100.0 *. metrics.e2);
  if metrics.e1 <= eps *. 1.3 then
    print_endline "OK: measured errors sit inside the requested tolerance."
  else
    print_endline "WARNING: errors above tolerance; try a smaller eps."
