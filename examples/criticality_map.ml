(* Statistical gate criticality: under variation the critical path moves
   from die to die, so "the" critical path of deterministic STA is the
   wrong prioritization signal. This example compares the two views and
   shows how criticality concentrates the measurement-structure budget.

   Run with:  dune exec examples/criticality_map.exe *)

let () =
  let netlist =
    Circuit.Generator.generate
      { Circuit.Generator.default with num_gates = 300; seed = 9 }
  in
  let model = Timing.Variation.make_model ~levels:3 () in
  let dm = Timing.Delay_model.build netlist model in

  let nominal = Timing.Criticality.nominal_critical_gates dm in
  Printf.printf "deterministic STA: ONE critical path, %d gates\n"
    (Array.length nominal);

  let c = Timing.Criticality.compute dm ~rng:(Rng.create 17) ~samples:2000 in
  Printf.printf
    "statistical view (2000 dies): mean critical length %.1f gates\n\n"
    c.mean_critical_length;

  let ranked = Timing.Criticality.ranking c in
  print_endline "most critical gates (P[on the critical path]):";
  Array.iteri
    (fun k g ->
      if k < 10 then begin
        let gate = Circuit.Netlist.gate netlist g in
        let on_nominal = Array.exists (fun x -> x = g) nominal in
        Printf.printf "  %-8s %-6s p = %.3f%s\n" gate.Circuit.Netlist.name
          (Circuit.Cell.name gate.Circuit.Netlist.cell)
          c.probability.(g)
          (if on_nominal then "  (on the nominal path)" else "")
      end)
    ranked;

  (* how much of the criticality mass does the nominal path miss? *)
  let mass ids = Array.fold_left (fun acc g -> acc +. c.probability.(g)) 0.0 ids in
  let nominal_mass = mass nominal in
  let top_same_budget = Array.sub ranked 0 (Array.length nominal) in
  Printf.printf
    "\ncriticality mass: nominal path carries %.1f of %.1f; the top-%d\n\
     statistically-ranked gates carry %.1f — the gap is what deterministic\n\
     STA misses under variation.\n"
    nominal_mass c.mean_critical_length (Array.length nominal)
    (mass top_same_budget)
