type canonical = { mean : float; coeffs : float array; residual : float }

let sigma c =
  let acc = ref (c.residual *. c.residual) in
  Array.iter (fun v -> acc := !acc +. (v *. v)) c.coeffs;
  sqrt !acc

let add_delay t ~mean ~coeffs ~residual =
  {
    mean = t.mean +. mean;
    coeffs = Array.init (Array.length t.coeffs) (fun i -> t.coeffs.(i) +. coeffs.(i));
    residual = sqrt ((t.residual *. t.residual) +. (residual *. residual));
  }

(* Clark's two-moment max approximation. The correlated coefficients are
   blended by the tightness probability; whatever variance the blend
   cannot express goes to the independent residual. *)
let clark_max a b =
  let var_a = sigma a ** 2.0 in
  let var_b = sigma b ** 2.0 in
  let cov = ref 0.0 in
  for i = 0 to Array.length a.coeffs - 1 do
    cov := !cov +. (a.coeffs.(i) *. b.coeffs.(i))
  done;
  let theta2 = var_a +. var_b -. (2.0 *. !cov) in
  (* relative threshold: cancellation noise on identical forms must not
     masquerade as a genuine max *)
  if theta2 <= 1e-12 *. (var_a +. var_b) +. 1e-300 then
    if a.mean >= b.mean then a else b
  else begin
    let theta = sqrt theta2 in
    let alpha = (a.mean -. b.mean) /. theta in
    let p = Stats.Normal.cdf alpha in
    let phi = Stats.Normal.pdf alpha in
    let mean = (a.mean *. p) +. (b.mean *. (1.0 -. p)) +. (theta *. phi) in
    let second =
      (((a.mean *. a.mean) +. var_a) *. p)
      +. (((b.mean *. b.mean) +. var_b) *. (1.0 -. p))
      +. ((a.mean +. b.mean) *. theta *. phi)
    in
    let variance = Float.max 0.0 (second -. (mean *. mean)) in
    let coeffs =
      Array.init (Array.length a.coeffs) (fun i ->
          (p *. a.coeffs.(i)) +. ((1.0 -. p) *. b.coeffs.(i)))
    in
    let corr_var = Array.fold_left (fun acc v -> acc +. (v *. v)) 0.0 coeffs in
    let residual = sqrt (Float.max 0.0 (variance -. corr_var)) in
    { mean; coeffs; residual }
  end

type t = {
  circuit_delay : canonical;
  node_arrivals : canonical array;
  basis : Variation.var_key array;
}

let analyze dm =
  let nl = Delay_model.netlist dm in
  let model = Delay_model.model dm in
  (* correlated basis: every region variable of the model, both params *)
  let basis =
    List.concat_map
      (fun param ->
        List.concat
          (List.init model.Variation.levels (fun level ->
               List.init (Variation.regions_at_level level) (fun cell ->
                   Variation.Region { param; level; cell }))))
      Variation.params
    |> Array.of_list
  in
  let index = Hashtbl.create (Array.length basis) in
  Array.iteri (fun i k -> Hashtbl.replace index k i) basis;
  let nb = Array.length basis in
  let zero = { mean = 0.0; coeffs = Array.make nb 0.0; residual = 0.0 } in
  let gate_canonical g =
    let coeffs = Array.make nb 0.0 in
    let residual = ref 0.0 in
    List.iter
      (fun (k, c) ->
        match k with
        | Variation.Region _ -> coeffs.(Hashtbl.find index k) <- c
        | Variation.Gate_random _ ->
          residual := sqrt ((!residual *. !residual) +. (c *. c)))
      (Delay_model.sensitivities dm g);
    (Delay_model.nominal dm g, coeffs, !residual)
  in
  let num_inputs = Circuit.Netlist.num_inputs nl in
  let n_nodes = num_inputs + Circuit.Netlist.num_gates nl in
  let arrivals = Array.make n_nodes zero in
  Array.iter
    (fun (g : Circuit.Netlist.gate) ->
      let amax =
        Array.fold_left
          (fun acc code ->
            match acc with
            | None -> Some arrivals.(code)
            | Some best -> Some (clark_max best arrivals.(code)))
          None g.fanin
      in
      let amax = Option.value ~default:zero amax in
      let mean, coeffs, residual = gate_canonical g.id in
      arrivals.(num_inputs + g.id) <- add_delay amax ~mean ~coeffs ~residual)
    (Circuit.Netlist.gates nl);
  let circuit_delay =
    Array.fold_left
      (fun acc o ->
        let arr = arrivals.(Circuit.Netlist.encode_signal nl o) in
        match acc with None -> Some arr | Some best -> Some (clark_max best arr))
      None (Circuit.Netlist.outputs nl)
    |> Option.value ~default:zero
  in
  { circuit_delay; node_arrivals = arrivals; basis }

let yield_at t x =
  Stats.Normal.cdf_of
    { Stats.Normal.mean = t.circuit_delay.mean; std = sigma t.circuit_delay }
    x

let quantile t p =
  t.circuit_delay.mean +. (sigma t.circuit_delay *. Stats.Normal.quantile p)
