type t = {
  probability : float array;
  samples : int;
  mean_critical_length : float;
}

(* One forward sweep + backtrace with the given per-gate delays; marks
   the gates of the critical path in [on_path] and returns its length. *)
let trace_critical nl delays ~arrival ~best_pred ~on_path =
  let num_inputs = Circuit.Netlist.num_inputs nl in
  Array.fill arrival 0 (Array.length arrival) 0.0;
  Array.fill best_pred 0 (Array.length best_pred) (-1);
  Array.iter
    (fun (g : Circuit.Netlist.gate) ->
      let best = ref 0.0 and pred = ref (-1) in
      Array.iter
        (fun code ->
          if arrival.(code) > !best then begin
            best := arrival.(code);
            pred := code
          end
          else if !pred = -1 then pred := code)
        g.fanin;
      arrival.(num_inputs + g.id) <- !best +. delays.(g.id);
      best_pred.(num_inputs + g.id) <- !pred)
    (Circuit.Netlist.gates nl);
  let sink = ref (-1) and sink_arr = ref neg_infinity in
  Array.iter
    (fun o ->
      let code = Circuit.Netlist.encode_signal nl o in
      if arrival.(code) > !sink_arr then begin
        sink_arr := arrival.(code);
        sink := code
      end)
    (Circuit.Netlist.outputs nl);
  let len = ref 0 in
  let node = ref !sink in
  while !node >= num_inputs do
    let gid = !node - num_inputs in
    on_path.(gid) <- true;
    incr len;
    node := best_pred.(!node)
  done;
  !len

let compute dm ~rng ~samples =
  if samples <= 0 then invalid_arg "Criticality.compute: samples must be positive";
  let nl = Delay_model.netlist dm in
  let model = Delay_model.model dm in
  let n = Circuit.Netlist.num_gates nl in
  let num_inputs = Circuit.Netlist.num_inputs nl in
  let counts = Array.make n 0 in
  let arrival = Array.make (num_inputs + n) 0.0 in
  let best_pred = Array.make (num_inputs + n) (-1) in
  let on_path = Array.make n false in
  let delays = Array.make n 0.0 in
  let total_len = ref 0 in
  let levels = model.Variation.levels in
  for _ = 1 to samples do
    let region_draw =
      Array.init 2 (fun _ ->
          Array.init levels (fun level ->
              Rng.gaussian_vector rng (Variation.regions_at_level level)))
    in
    let rand_draw = Rng.gaussian_vector rng n in
    for g = 0 to n - 1 do
      let d = ref (Delay_model.nominal dm g) in
      List.iter
        (fun (k, c) ->
          match k with
          | Variation.Region { param; level; cell } ->
            let p = match param with Variation.Leff -> 0 | Variation.Vt -> 1 in
            d := !d +. (c *. region_draw.(p).(level).(cell))
          | Variation.Gate_random gid -> d := !d +. (c *. rand_draw.(gid)))
        (Delay_model.sensitivities dm g);
      delays.(g) <- !d
    done;
    Array.fill on_path 0 n false;
    total_len := !total_len + trace_critical nl delays ~arrival ~best_pred ~on_path;
    for g = 0 to n - 1 do
      if on_path.(g) then counts.(g) <- counts.(g) + 1
    done
  done;
  {
    probability = Array.map (fun c -> float_of_int c /. float_of_int samples) counts;
    samples;
    mean_critical_length = float_of_int !total_len /. float_of_int samples;
  }

let ranking t =
  let order = Array.init (Array.length t.probability) (fun i -> i) in
  Array.sort (fun i j -> compare t.probability.(j) t.probability.(i)) order;
  order

let nominal_critical_gates dm =
  let nl = Delay_model.netlist dm in
  let n = Circuit.Netlist.num_gates nl in
  let num_inputs = Circuit.Netlist.num_inputs nl in
  let arrival = Array.make (num_inputs + n) 0.0 in
  let best_pred = Array.make (num_inputs + n) (-1) in
  let on_path = Array.make n false in
  let delays = Array.init n (fun g -> Delay_model.nominal dm g) in
  ignore (trace_critical nl delays ~arrival ~best_pred ~on_path);
  let out = ref [] in
  for g = n - 1 downto 0 do
    if on_path.(g) then out := g :: !out
  done;
  Array.of_list !out
