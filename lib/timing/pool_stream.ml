type t = {
  g : Linalg.Sparse.t;
  sigma : Linalg.Sparse.t;
  mu_segments : Linalg.Vec.t;
  mu_paths : Linalg.Vec.t;
}

let num_paths t = fst (Linalg.Sparse.dims t.g)

let num_segments t = fst (Linalg.Sparse.dims t.sigma)

let num_vars t = snd (Linalg.Sparse.dims t.sigma)

let nnz t = Linalg.Sparse.nnz t.g + Linalg.Sparse.nnz t.sigma

let g t = t.g

let sigma t = t.sigma

let mu t = t.mu_paths

let mu_segments t = t.mu_segments

let op t =
  let rows = num_paths t and cols = num_vars t in
  {
    Linalg.Rsvd.rows;
    cols;
    mul = (fun x -> Linalg.Sparse.mul_mat t.g (Linalg.Sparse.mul_mat t.sigma x));
    tmul = (fun y -> Linalg.Sparse.tmul_mat t.sigma (Linalg.Sparse.tmul_mat t.g y));
  }

let of_paths dm path_list =
  if path_list = [] then invalid_arg "Pool_stream.of_paths: empty path list";
  let paths = Array.of_list path_list in
  let segments, seg_of_path = Paths.segment_chains paths in
  let n = Array.length paths in
  let n_s = Array.length segments in
  (* variable space over covered gates, in the same sorted order as
     [Paths.build] so the two front-ends agree column-for-column *)
  let covered = Hashtbl.create 1024 in
  Array.iter (fun s -> Array.iter (fun gt -> Hashtbl.replace covered gt ()) s) segments;
  let var_set = Hashtbl.create 1024 in
  Hashtbl.iter
    (fun gt () ->
      List.iter (fun (k, _) -> Hashtbl.replace var_set k ()) (Delay_model.sensitivities dm gt))
    covered;
  let vars = Array.of_seq (Hashtbl.to_seq_keys var_set) in
  Array.sort Variation.compare_var vars;
  let m = Array.length vars in
  let var_index = Hashtbl.create m in
  Array.iteri (fun i k -> Hashtbl.replace var_index k i) vars;
  let mu_segments = Array.make n_s 0.0 in
  let sigma =
    Linalg.Sparse.init_rows ~rows:n_s ~cols:m (fun s ->
        let gates = segments.(s) in
        let entries = ref [] in
        Array.iter
          (fun gt ->
            mu_segments.(s) <- mu_segments.(s) +. Delay_model.nominal dm gt;
            List.iter
              (fun (k, c) ->
                if not (Float.is_finite c) then
                  invalid_arg
                    (Printf.sprintf
                       "Pool_stream.of_paths: non-finite sensitivity %g at segment %d, gate %d"
                       c s gt);
                entries := (Hashtbl.find var_index k, c) :: !entries)
              (Delay_model.sensitivities dm gt))
          gates;
        !entries)
  in
  let g =
    Linalg.Sparse.init_rows ~rows:n ~cols:n_s (fun i ->
        Array.fold_left (fun acc s -> (s, 1.0) :: acc) [] seg_of_path.(i))
  in
  let mu_paths = Linalg.Sparse.mul_vec g mu_segments in
  { g; sigma; mu_segments; mu_paths }

let of_extract ?max_paths dm ~t_cons ~yield_threshold =
  (* [Path_extract.fold] streams the accepted paths; only the compact
     gate sequences are retained (the chain partition needs the whole
     union graph), never any matrix wider than the CSR rows *)
  let acc, truncated, _visited =
    Path_extract.fold ?max_paths dm ~t_cons ~yield_threshold ~init:[]
      ~f:(fun acc p -> p :: acc)
  in
  if acc = [] then invalid_arg "Pool_stream.of_extract: no critical paths at this threshold";
  (of_paths dm (List.rev acc), truncated)

let synthetic ?(seed = 1) ?(decay = 24.0) ~paths ~segments ~vars ~segs_per_path
    ~vars_per_seg () =
  if paths <= 0 || segments <= 0 || vars <= 0 then
    invalid_arg "Pool_stream.synthetic: dimensions must be positive";
  if segs_per_path <= 0 || vars_per_seg <= 0 then
    invalid_arg "Pool_stream.synthetic: sparsity must be positive";
  if decay <= 0.0 then invalid_arg "Pool_stream.synthetic: decay must be positive";
  let rng = Rng.create seed in
  let seg_rng = Rng.split rng in
  let path_rng = Rng.split rng in
  (* Column scales decay exponentially with an e-folding scale of
     [decay] columns — independent of [vars], so growing the variable
     count widens the matrix without flattening its spectrum. This
     reproduces the fast singular-value decay of the paper's Section
     4.2, the regime that licenses sketched selection in the first
     place. *)
  let col_scale j = exp (-.float_of_int j /. decay) in
  let mu_segments =
    Array.init segments (fun _ -> Rng.uniform seg_rng 0.5 1.5)
  in
  let sigma =
    Linalg.Sparse.init_rows ~rows:segments ~cols:vars (fun _ ->
        let k = min vars_per_seg vars in
        let entries = ref [] in
        for _ = 1 to k do
          let j = Rng.int seg_rng vars in
          let c = col_scale j *. (0.02 +. (0.08 *. Float.abs (Rng.gaussian seg_rng))) in
          entries := (j, c) :: !entries
        done;
        !entries)
  in
  let g =
    Linalg.Sparse.init_rows ~rows:paths ~cols:segments (fun _ ->
        let k = min segs_per_path segments in
        let entries = ref [] in
        for _ = 1 to k do
          entries := (Rng.int path_rng segments, 1.0) :: !entries
        done;
        !entries)
  in
  let mu_paths = Linalg.Sparse.mul_vec g mu_segments in
  { g; sigma; mu_segments; mu_paths }

let rows_dense t idx =
  let m = num_vars t in
  let gm = t.g and sm = t.sigma in
  let out = Linalg.Mat.create (Array.length idx) m in
  Array.iteri
    (fun r i ->
      if i < 0 || i >= num_paths t then invalid_arg "Pool_stream.rows_dense: row out of range";
      let base = r * m in
      for kg = gm.Linalg.Sparse.row_ptr.(i) to gm.Linalg.Sparse.row_ptr.(i + 1) - 1 do
        let s = gm.Linalg.Sparse.col_idx.(kg) in
        let gv = gm.Linalg.Sparse.values.(kg) in
        for ks = sm.Linalg.Sparse.row_ptr.(s) to sm.Linalg.Sparse.row_ptr.(s + 1) - 1 do
          let j = sm.Linalg.Sparse.col_idx.(ks) in
          out.Linalg.Mat.data.(base + j) <-
            out.Linalg.Mat.data.(base + j) +. (gv *. sm.Linalg.Sparse.values.(ks))
        done
      done)
    idx;
  out
