(** Monte Carlo "virtual dies".

    Each sample is one fabricated chip: a draw of the full variation
    vector [x ~ N(0, I)]. True path and segment delays follow from the
    linear model; this is exactly how the paper evaluates prediction
    accuracy (Section 6, N = 10,000 samples). *)

type t

val sample : Rng.t -> Paths.t -> n:int -> t
(** Draw [n] dies for the given path pool. *)

val num_samples : t -> int

val x_mat : t -> Linalg.Mat.t
(** [n x m] raw variation draws. *)

val path_delays : t -> Linalg.Mat.t
(** [n_samples x n_paths] true path delays: [mu_P + X A^T], computed
    lazily and cached. *)

val segment_delays : t -> Linalg.Mat.t
(** [n_samples x n_segments] true segment delays: [mu_S + X Sigma^T],
    lazy and cached. *)

val circuit_yield :
  Delay_model.t -> t_cons:float -> rng:Rng.t -> samples:int -> float
(** Full-circuit timing yield estimate: per sample, draw every model
    variable (all gates, all regions), run a longest-path sweep, and
    count dies meeting [t_cons]. Independent of any extracted path
    pool.

    The per-sample sweeps run on the {!Par.Pool} domain pool;
    randomness is still consumed from [rng] in strict sample order, so
    the estimate is bit-identical at every pool size. *)
