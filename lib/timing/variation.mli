(** The process-variation model of the paper (Section 2 / Section 6).

    Independent standard-Gaussian variables come in two flavours:

    - {b Correlated} variables from the hierarchical spatial-correlation
      model of Blaauw et al.: a quadtree over the unit die with
      [levels] levels. Level 0 is the whole die (the die-to-die
      component); level [k] splits the die into [4^k] rectangles. Each
      parameter (effective channel length [Leff], threshold voltage
      [Vt]) gets one variable per region, and a gate's correlated
      variation is the sum of the variables of the regions containing
      it, weighted by [level_weights].

    - {b Random} variables: one lumped variable per gate, sized to a
      fixed [random_share] of the gate's total delay variance (6% in
      the paper), optionally scaled by [random_boost] (Figure 2(b)
      uses 3x). *)

type param = Leff | Vt

val params : param list

val param_name : param -> string

(** An abstract independent N(0,1) variable of the model. *)
type var_key =
  | Region of { param : param; level : int; cell : int }
  | Gate_random of int  (** netlist gate id *)

type model = {
  levels : int;                (** quadtree levels; 3 => 21 regions, 5 => 341 *)
  level_weights : float array; (** variance share per level; length [levels],
                                   non-negative, sums to 1 *)
  random_share : float;        (** fraction of total delay variance that is
                                   gate-local random; in [0, 1) *)
  random_boost : float;        (** multiplier on random sensitivities *)
}

val make_model :
  ?level_weights:float array ->
  ?random_share:float ->
  ?random_boost:float ->
  levels:int ->
  unit ->
  model
(** Validates and normalizes. Default weights put 40% of the correlated
    variance on the die-to-die level and split the rest evenly across
    the finer levels. Defaults: [random_share = 0.06],
    [random_boost = 1.0]. *)

val region_count : model -> int
(** Total regions |R| across all levels: sum of [4^k]. *)

val regions_at_level : int -> int
(** [4^level]. *)

val cell_of_position : level:int -> float -> float -> int
(** Index of the level-[level] quadtree cell containing the die
    position [(x, y)], both in [0, 1]. *)

val compare_var : var_key -> var_key -> int

val var_name : var_key -> string
