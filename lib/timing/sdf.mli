(** SDF (Standard Delay Format) annotation, version 3.0 subset.

    The NLDM sweep's per-gate delays can be exported as an SDF file —
    the lingua franca for handing annotated delays to downstream
    signoff/simulation tools — and read back for cross-checking. The
    subset covers one [IOPATH] per gate (all input pins to the output,
    equal rise/fall, as the rest of this library models delays) in a
    flat [DELAYFILE]. Times are written in ps with [(TIMESCALE 1ps)]. *)

exception Parse_error of int * string

exception Annotate_error of string
(** Raised by {!annotate}/{!annotate_lenient} when the delay list cannot
    cover the netlist (missing instances, or no usable delays at all). *)

val write : Circuit.Netlist.t -> delays:float array -> string
(** [write nl ~delays] renders an SDF 3.0 document; [delays] is per
    gate id, in ps. Raises [Invalid_argument] on length mismatch. *)

val write_file : string -> Circuit.Netlist.t -> delays:float array -> unit

val read : string -> (string * float) list
(** [read text] returns the [(instance_name, iopath_delay_ps)] pairs of
    a flat SDF document (the typical rise value of the first IOPATH per
    cell entry). Tolerant of whitespace and comments. *)

val read_file : string -> (string * float) list
(** {!read} on a file's contents; parse errors are re-raised with the
    file name and line number in the message ([path:line: msg]). *)

val annotate : Circuit.Netlist.t -> (string * float) list -> float array
(** Map parsed delays back onto gate ids by instance name; gates
    missing from the SDF raise [Failure] naming how many instances
    were unannotated and the first few of them. *)

val annotate_lenient :
  Circuit.Netlist.t -> (string * float) list -> float array * string list
(** Skip-and-warn variant: gates missing from the SDF (or annotated
    with a non-finite value) get the median of the usable delays, with
    one warning each. Raises [Failure] only when no usable delay
    exists at all. *)
