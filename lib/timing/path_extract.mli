(** Statistically-critical path extraction (the paper's [11]).

    Extracts every PI-to-PO path whose timing yield
    [P(d_path <= t_cons)] falls below [yield_threshold], by
    branch-and-bound DFS over the timing graph with a statistical upper
    bound for pruning. Paths are identified by their gate sequence
    (delays live on gates), and duplicates reached through different
    input pins are merged. *)

type path = {
  gates : int array;  (** gate ids in source-to-sink order *)
  mu : float;         (** nominal (mean) path delay *)
  sigma : float;      (** path delay standard deviation *)
}

type result = {
  paths : path list;     (** in discovery order *)
  truncated : bool;      (** true when [max_paths] stopped the search *)
  visited_nodes : int;   (** DFS work counter, for diagnostics *)
}

val extract :
  ?max_paths:int ->
  Delay_model.t ->
  t_cons:float ->
  yield_threshold:float ->
  result
(** Raises [Invalid_argument] if [yield_threshold] is outside (0, 1)
    or [t_cons <= 0]. Default [max_paths] is 20_000. *)

val fold :
  ?max_paths:int ->
  Delay_model.t ->
  t_cons:float ->
  yield_threshold:float ->
  init:'a ->
  f:('a -> path -> 'a) ->
  'a * bool * int
(** Streaming variant of {!extract}: [f] receives each accepted path
    exactly once, in discovery order, without the result list ever
    being materialized — the entry point for row-streamed pool builders
    ({!Pool_stream}) that must scale past what a list of millions of
    paths would allow. Returns [(acc, truncated, visited_nodes)]. Same
    validation and defaults as {!extract}. *)

val path_yield : path -> t_cons:float -> float
(** [P(d_path <= t_cons)]. *)
