type path = { gates : int array; mu : float; sigma : float }

type result = { paths : path list; truncated : bool; visited_nodes : int }

exception Limit_reached

(* Incremental accumulator for the variance of the partial path: keeps
   the coefficient of every variable touched so far and the running sum
   of squared coefficients, with exact push/pop symmetry. *)
module Acc = struct
  type t = {
    coeffs : (Variation.var_key, float) Hashtbl.t;
    mutable ss : float;
  }

  let create () = { coeffs = Hashtbl.create 256; ss = 0.0 }

  let push t sens =
    List.iter
      (fun (k, c) ->
        let old = Option.value ~default:0.0 (Hashtbl.find_opt t.coeffs k) in
        let cur = old +. c in
        t.ss <- t.ss +. ((cur *. cur) -. (old *. old));
        Hashtbl.replace t.coeffs k cur)
      sens

  let pop t sens =
    List.iter
      (fun (k, c) ->
        let cur = Hashtbl.find t.coeffs k in
        let old = cur -. c in
        t.ss <- t.ss +. ((old *. old) -. (cur *. cur));
        if Float.equal old 0.0 then Hashtbl.remove t.coeffs k else Hashtbl.replace t.coeffs k old)
      sens

  let sigma t = sqrt (Float.max 0.0 t.ss)

  let clear t =
    Hashtbl.reset t.coeffs;
    t.ss <- 0.0
end

let path_yield p ~t_cons =
  Stats.Normal.cdf_of { Stats.Normal.mean = p.mu; std = p.sigma } t_cons

exception Source_limit

(* The DFS shared by [extract] (list accumulation) and [fold]
   (streaming): every accepted path is handed to [emit] exactly once, in
   discovery order, so a caller can turn a million-path pool directly
   into CSR rows without ever holding the list. *)
let extract_gen ?(max_paths = 20_000) dm ~t_cons ~yield_threshold ~emit =
  if not (yield_threshold > 0.0 && yield_threshold < 1.0) then
    invalid_arg "Path_extract.extract: yield_threshold outside (0,1)";
  if t_cons <= 0.0 then invalid_arg "Path_extract.extract: t_cons <= 0";
  let nl = Delay_model.netlist dm in
  let tg = Tgraph.build nl in
  let z = Stats.Normal.quantile yield_threshold in
  let rest_mu = Tgraph.rest_bounds tg ~gate_value:(Delay_model.nominal dm) in
  let rest_sig = Tgraph.rest_bounds tg ~gate_value:(Delay_model.sigma dm) in
  let acc = Acc.create () in
  let stack = ref [] in
  let n_found = ref 0 in
  let visited = ref 0 in
  let seen = Hashtbl.create 1024 in
  let truncated = ref false in
  (* extraction test on a complete path *)
  (* Fair truncation: when the cap binds, no single PI may contribute
     more than its share in the first pass; leftover budget is spent in
     a second pass without the per-source cap. This keeps a truncated
     pool structurally diverse instead of exhausting the first input
     cones. *)
  let n_pi = Array.length (Tgraph.pi_codes tg) in
  let source_cap = max 16 ((max_paths + n_pi - 1) / n_pi) in
  let source_found = ref 0 in
  let capped = ref true in
  let record () =
    let gates = Array.of_list (List.rev !stack) in
    if not (Hashtbl.mem seen gates) then begin
      Hashtbl.add seen gates ();
      let mu = Array.fold_left (fun m g -> m +. Delay_model.nominal dm g) 0.0 gates in
      let sigma = Acc.sigma acc in
      if mu +. (z *. sigma) > t_cons then begin
        emit { gates; mu; sigma };
        incr n_found;
        incr source_found;
        if !n_found >= max_paths then begin
          truncated := true;
          raise Limit_reached
        end;
        if !capped && !source_found >= source_cap then raise Source_limit
      end
    end
  in
  let rec dfs v mu_acc sigsum_acc =
    incr visited;
    if Tgraph.is_po tg v && v >= Circuit.Netlist.num_inputs nl then record ();
    List.iter
      (fun (a : Tgraph.arc) ->
        let g = a.gate in
        let mu' = mu_acc +. Delay_model.nominal dm g in
        let sigsum' = sigsum_acc +. Delay_model.sigma dm g in
        if rest_mu.(a.dst) > neg_infinity then begin
          let sig_bound = if z > 0.0 then z *. (sigsum' +. rest_sig.(a.dst)) else 0.0 in
          if mu' +. rest_mu.(a.dst) +. sig_bound > t_cons then begin
            let sens = Delay_model.sensitivities dm g in
            Acc.push acc sens;
            stack := g :: !stack;
            dfs a.dst mu' sigsum';
            stack := List.tl !stack;
            Acc.pop acc sens
          end
        end)
      (Tgraph.arcs_from tg v)
  in
  (try
     let any_source_capped = ref false in
     Array.iter
       (fun pi ->
         source_found := 0;
         try dfs pi 0.0 0.0
         with Source_limit ->
           (* the abort unwound past the push/pop pairs: reset the
              accumulator and the gate stack before the next source *)
           Acc.clear acc;
           stack := [];
           any_source_capped := true)
       (Tgraph.pi_codes tg);
     if !any_source_capped then begin
       (* second pass: spend the remaining budget without the per-source
          cap (already-seen paths are deduplicated); completing it means
          the enumeration is in fact exhaustive *)
       capped := false;
       Array.iter (fun pi -> dfs pi 0.0 0.0) (Tgraph.pi_codes tg)
     end
   with Limit_reached -> ());
  (!truncated, !visited)

let extract ?max_paths dm ~t_cons ~yield_threshold =
  let found = ref [] in
  let truncated, visited_nodes =
    extract_gen ?max_paths dm ~t_cons ~yield_threshold
      ~emit:(fun p -> found := p :: !found)
  in
  { paths = List.rev !found; truncated; visited_nodes }

let fold ?max_paths dm ~t_cons ~yield_threshold ~init ~f =
  let acc = ref init in
  let truncated, visited_nodes =
    extract_gen ?max_paths dm ~t_cons ~yield_threshold
      ~emit:(fun p -> acc := f !acc p)
  in
  (!acc, truncated, visited_nodes)
