type spec = {
  path_dropout : float;
  die_dropout : float;
  outlier_rate : float;
  outlier_scale : float;
  stuck_rate : float;
  stuck_code_ps : float;
  drift_sigma_ps : float;
}

let none =
  {
    path_dropout = 0.0;
    die_dropout = 0.0;
    outlier_rate = 0.0;
    outlier_scale = 0.5;
    stuck_rate = 0.0;
    stuck_code_ps = 0.0;
    drift_sigma_ps = 0.0;
  }

let is_none s =
  Float.equal s.path_dropout 0.0 && Float.equal s.die_dropout 0.0
  && Float.equal s.outlier_rate 0.0 && Float.equal s.stuck_rate 0.0
  && Float.equal s.drift_sigma_ps 0.0

let validate s =
  let rate name r =
    if not (Float.is_finite r) || r < 0.0 || r > 1.0 then
      invalid_arg (Printf.sprintf "Faults: %s must be in [0, 1], got %g" name r)
  in
  rate "path_dropout" s.path_dropout;
  rate "die_dropout" s.die_dropout;
  rate "outlier_rate" s.outlier_rate;
  rate "stuck_rate" s.stuck_rate;
  if not (Float.is_finite s.outlier_scale) || s.outlier_scale < 0.0 then
    invalid_arg "Faults: outlier_scale must be non-negative";
  if not (Float.is_finite s.stuck_code_ps) then
    invalid_arg "Faults: stuck_code_ps must be finite";
  if not (Float.is_finite s.drift_sigma_ps) || s.drift_sigma_ps < 0.0 then
    invalid_arg "Faults: drift_sigma_ps must be non-negative"

type stats = {
  missing_entries : int;
  dropped_dies : int;
  outlier_entries : int;
  stuck_entries : int;
  drifted_dies : int;
  total_entries : int;
}

type injected = { data : Linalg.Mat.t; mask : bool array array; stats : stats }

let missing = Float.nan

let inject ?(measurement = Measurement.ideal) spec rng clean =
  validate spec;
  let dies, paths = Linalg.Mat.dims clean in
  let data = Linalg.Mat.copy clean in
  let mask = Array.init dies (fun _ -> Array.make paths true) in
  let missing_entries = ref 0 in
  let dropped_dies = ref 0 in
  let outlier_entries = ref 0 in
  let stuck_entries = ref 0 in
  let drifted_dies = ref 0 in
  let drop i j =
    if mask.(i).(j) then begin
      mask.(i).(j) <- false;
      incr missing_entries
    end;
    Linalg.Mat.set data i j missing
  in
  for i = 0 to dies - 1 do
    (* per-die calibration drift: one additive offset shared by every
       measurement taken on the die *)
    let drift =
      if spec.drift_sigma_ps > 0.0 then begin
        incr drifted_dies;
        spec.drift_sigma_ps *. Rng.gaussian rng
      end
      else 0.0
    in
    let die_dead = spec.die_dropout > 0.0 && Rng.float rng < spec.die_dropout in
    if die_dead then incr dropped_dies;
    for j = 0 to paths - 1 do
      if die_dead then drop i j
      else begin
        let v = Measurement.apply measurement rng (Linalg.Mat.get data i j) in
        let v = v +. drift in
        let v =
          if spec.stuck_rate > 0.0 && Rng.float rng < spec.stuck_rate then begin
            incr stuck_entries;
            spec.stuck_code_ps
          end
          else if spec.outlier_rate > 0.0 && Rng.float rng < spec.outlier_rate
          then begin
            (* gross error: the reading jumps by a large fraction of its
               value, in a random direction (glitching TDC, wrong path
               sensitized, crosstalk event) *)
            incr outlier_entries;
            let sign = if Rng.float rng < 0.5 then -1.0 else 1.0 in
            let mag = spec.outlier_scale *. (0.5 +. Rng.float rng) in
            v *. (1.0 +. (sign *. mag))
          end
          else v
        in
        Linalg.Mat.set data i j v;
        if spec.path_dropout > 0.0 && Rng.float rng < spec.path_dropout then
          drop i j
      end
    done
  done;
  {
    data;
    mask;
    stats =
      {
        missing_entries = !missing_entries;
        dropped_dies = !dropped_dies;
        outlier_entries = !outlier_entries;
        stuck_entries = !stuck_entries;
        drifted_dies = !drifted_dies;
        total_entries = dies * paths;
      };
  }

(* ------------------------------------------------------------------ *)
(* CLI-friendly spec strings: "dropout=0.1,outliers=0.01,stuck=0.005" *)

let of_string s =
  let parse_field acc kv =
    let kv = String.trim kv in
    if kv = "" then Ok acc
    else
      match String.index_opt kv '=' with
      | None -> Result.Error (Printf.sprintf "fault field %S has no '='" kv)
      | Some i ->
        let key = String.trim (String.sub kv 0 i) in
        let sv = String.trim (String.sub kv (i + 1) (String.length kv - i - 1)) in
        (match float_of_string_opt sv with
         | None -> Result.Error (Printf.sprintf "fault field %S: bad number %S" key sv)
         | Some v ->
           (match key with
            | "dropout" | "path-dropout" -> Ok { acc with path_dropout = v }
            | "die-dropout" -> Ok { acc with die_dropout = v }
            | "outliers" | "outlier-rate" -> Ok { acc with outlier_rate = v }
            | "outlier-scale" -> Ok { acc with outlier_scale = v }
            | "stuck" | "stuck-rate" -> Ok { acc with stuck_rate = v }
            | "stuck-code" -> Ok { acc with stuck_code_ps = v }
            | "drift" -> Ok { acc with drift_sigma_ps = v }
            | _ -> Result.Error (Printf.sprintf "unknown fault field %S" key)))
  in
  let rec go acc = function
    | [] ->
      (match validate acc with
       | () -> Ok acc
       | exception Invalid_argument m -> Result.Error m)
    | kv :: rest ->
      (match parse_field acc kv with
       | Ok acc -> go acc rest
       | Result.Error _ as e -> e)
  in
  go none (String.split_on_char ',' s)

let to_string s =
  String.concat ","
    (List.filter_map
       (fun (k, v, dflt) -> if v = dflt then None else Some (Printf.sprintf "%s=%g" k v))
       [
         ("dropout", s.path_dropout, 0.0);
         ("die-dropout", s.die_dropout, 0.0);
         ("outliers", s.outlier_rate, 0.0);
         ("outlier-scale", s.outlier_scale, none.outlier_scale);
         ("stuck", s.stuck_rate, 0.0);
         ("stuck-code", s.stuck_code_ps, 0.0);
         ("drift", s.drift_sigma_ps, 0.0);
       ])
