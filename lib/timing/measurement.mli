(** On-chip delay-measurement modelling.

    The paper assumes accurate post-silicon path delay measurement via
    special scan flip-flops or Path-RO-style structures (its [10]).
    Real measurement is neither continuous nor noise-free: a
    time-to-digital converter quantizes to its step, and launch/capture
    jitter adds noise. This module models both so the robustness of the
    prediction flow against measurement error can be quantified (bench
    experiment E9). *)

type model = {
  quantization_ps : float;  (** TDC step; 0 = continuous *)
  jitter_sigma_ps : float;  (** Gaussian jitter, 1 sigma *)
  offset_ps : float;        (** systematic calibration offset *)
}

val ideal : model
(** No quantization, jitter, or offset. *)

val typical_path_ro : model
(** 2.5 ps quantization, 1 ps jitter, no offset — representative of a
    ring-oscillator-based measurement structure in 90 nm. *)

val apply : model -> Rng.t -> float -> float
(** Measure one delay: add jitter and offset, then round to the
    quantization grid. *)

val apply_mat : model -> Rng.t -> Linalg.Mat.t -> Linalg.Mat.t
(** Element-wise {!apply} over a (dies x paths) delay matrix. *)

val worst_case_error : model -> kappa:float -> float
(** Deterministic bound on a single measurement's error:
    [|offset| + quantization/2 + kappa * jitter]. Add it to the
    prediction guard band when measurements are non-ideal. *)
