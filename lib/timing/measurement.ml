type model = {
  quantization_ps : float;
  jitter_sigma_ps : float;
  offset_ps : float;
}

let ideal = { quantization_ps = 0.0; jitter_sigma_ps = 0.0; offset_ps = 0.0 }

let typical_path_ro =
  { quantization_ps = 2.5; jitter_sigma_ps = 1.0; offset_ps = 0.0 }

let apply m rng d =
  let noisy =
    d +. m.offset_ps
    +. (if m.jitter_sigma_ps > 0.0 then m.jitter_sigma_ps *. Rng.gaussian rng else 0.0)
  in
  if m.quantization_ps > 0.0 then
    Float.round (noisy /. m.quantization_ps) *. m.quantization_ps
  else noisy

let apply_mat m rng mat =
  let rows, cols = Linalg.Mat.dims mat in
  Linalg.Mat.init rows cols (fun i j -> apply m rng (Linalg.Mat.get mat i j))

let worst_case_error m ~kappa =
  Float.abs m.offset_ps +. (m.quantization_ps /. 2.0)
  +. (kappa *. m.jitter_sigma_ps)
