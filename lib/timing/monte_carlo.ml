type t = {
  pool : Paths.t;
  x : Linalg.Mat.t;
  mutable d_paths : Linalg.Mat.t option;
  mutable d_segments : Linalg.Mat.t option;
}

let sample rng pool ~n =
  if n <= 0 then invalid_arg "Monte_carlo.sample: n must be positive";
  let m = Paths.num_vars pool in
  let x = Linalg.Mat.init n m (fun _ _ -> Rng.gaussian rng) in
  { pool; x; d_paths = None; d_segments = None }

let num_samples t = fst (Linalg.Mat.dims t.x)

let x_mat t = t.x

(* the product is fresh, so the mean shift lands in place: no per-element
   closure, no second allocation *)
let add_mu d mu =
  Linalg.Mat.add_row_vec_into d mu;
  d

let path_delays t =
  match t.d_paths with
  | Some d -> d
  | None ->
    let d = add_mu (Linalg.Mat.mul_nt t.x (Paths.a_mat t.pool)) (Paths.mu_paths t.pool) in
    t.d_paths <- Some d;
    d

let segment_delays t =
  match t.d_segments with
  | Some d -> d
  | None ->
    let d =
      add_mu (Linalg.Mat.mul_nt t.x (Paths.sigma_mat t.pool)) (Paths.mu_segments t.pool)
    in
    t.d_segments <- Some d;
    d

let circuit_yield dm ~t_cons ~rng ~samples =
  if samples <= 0 then invalid_arg "Monte_carlo.circuit_yield: samples must be positive";
  let nl = Delay_model.netlist dm in
  let model = Delay_model.model dm in
  let n_gates = Circuit.Netlist.num_gates nl in
  let num_inputs = Circuit.Netlist.num_inputs nl in
  let levels = model.Variation.levels in
  let gates = Circuit.Netlist.gates nl in
  let outputs = Circuit.Netlist.outputs nl in
  (* Randomness is drawn sample-by-sample from the single [rng] stream —
     the exact sequence the serial loop consumed — and only the per-sample
     longest-path sweeps run on the domain pool. Execution order therefore
     never touches the draw order: the yield is bit-identical at any
     PATHSEL_DOMAINS, including the historical serial result. Draws are
     buffered one block at a time to bound memory on big netlists. *)
  let draw_one () =
    let region_draw =
      Array.init 2 (fun _ ->
          Array.init levels (fun level ->
              Rng.gaussian_vector rng (Variation.regions_at_level level)))
    in
    let rand_draw = Rng.gaussian_vector rng n_gates in
    (region_draw, rand_draw)
  in
  let sweep (region_draw, rand_draw) arrival =
    Array.fill arrival 0 (num_inputs + n_gates) 0.0;
    Array.iter
      (fun (g : Circuit.Netlist.gate) ->
        let d = ref (Delay_model.nominal dm g.id) in
        List.iter
          (fun (k, c) ->
            match k with
            | Variation.Region { param; level; cell } ->
              let p = match param with Variation.Leff -> 0 | Variation.Vt -> 1 in
              d := !d +. (c *. region_draw.(p).(level).(cell))
            | Variation.Gate_random gid -> d := !d +. (c *. rand_draw.(gid)))
          (Delay_model.sensitivities dm g.id);
        let amax =
          Array.fold_left (fun acc code -> Float.max acc arrival.(code)) 0.0 g.fanin
        in
        arrival.(num_inputs + g.id) <- amax +. !d)
      gates;
    let dmax =
      Array.fold_left
        (fun acc o -> Float.max acc arrival.(Circuit.Netlist.encode_signal nl o))
        0.0 outputs
    in
    dmax <= t_cons
  in
  let block = min samples 64 in
  let passed = Array.make block false in
  let pass = ref 0 in
  let remaining = ref samples in
  while !remaining > 0 do
    let b = min block !remaining in
    let draws = Array.init b (fun _ -> draw_one ()) in
    Par.Pool.parallel_chunks ~grain:2 0 b (fun lo hi ->
        let arrival = Array.make (num_inputs + n_gates) 0.0 in
        for s = lo to hi - 1 do
          passed.(s) <- sweep draws.(s) arrival
        done);
    for s = 0 to b - 1 do
      if passed.(s) then incr pass
    done;
    remaining := !remaining - b
  done;
  float_of_int !pass /. float_of_int samples
