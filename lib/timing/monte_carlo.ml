type t = {
  pool : Paths.t;
  x : Linalg.Mat.t;
  mutable d_paths : Linalg.Mat.t option;
  mutable d_segments : Linalg.Mat.t option;
}

let sample rng pool ~n =
  if n <= 0 then invalid_arg "Monte_carlo.sample: n must be positive";
  let m = Paths.num_vars pool in
  let x = Linalg.Mat.init n m (fun _ _ -> Rng.gaussian rng) in
  { pool; x; d_paths = None; d_segments = None }

let num_samples t = fst (Linalg.Mat.dims t.x)

let x_mat t = t.x

let add_mu d mu =
  let n, k = Linalg.Mat.dims d in
  Linalg.Mat.init n k (fun i j -> Linalg.Mat.get d i j +. mu.(j))

let path_delays t =
  match t.d_paths with
  | Some d -> d
  | None ->
    let d = add_mu (Linalg.Mat.mul_nt t.x (Paths.a_mat t.pool)) (Paths.mu_paths t.pool) in
    t.d_paths <- Some d;
    d

let segment_delays t =
  match t.d_segments with
  | Some d -> d
  | None ->
    let d =
      add_mu (Linalg.Mat.mul_nt t.x (Paths.sigma_mat t.pool)) (Paths.mu_segments t.pool)
    in
    t.d_segments <- Some d;
    d

let circuit_yield dm ~t_cons ~rng ~samples =
  if samples <= 0 then invalid_arg "Monte_carlo.circuit_yield: samples must be positive";
  let nl = Delay_model.netlist dm in
  let model = Delay_model.model dm in
  let n_gates = Circuit.Netlist.num_gates nl in
  let num_inputs = Circuit.Netlist.num_inputs nl in
  let levels = model.Variation.levels in
  let pass = ref 0 in
  let arrival = Array.make (num_inputs + n_gates) 0.0 in
  for _ = 1 to samples do
    (* draw region variables for both parameters and all levels *)
    let region_draw =
      Array.init 2 (fun _ ->
          Array.init levels (fun level ->
              Rng.gaussian_vector rng (Variation.regions_at_level level)))
    in
    let rand_draw = Rng.gaussian_vector rng n_gates in
    Array.fill arrival 0 (num_inputs + n_gates) 0.0;
    Array.iter
      (fun (g : Circuit.Netlist.gate) ->
        let d = ref (Delay_model.nominal dm g.id) in
        List.iter
          (fun (k, c) ->
            match k with
            | Variation.Region { param; level; cell } ->
              let p = match param with Variation.Leff -> 0 | Variation.Vt -> 1 in
              d := !d +. (c *. region_draw.(p).(level).(cell))
            | Variation.Gate_random gid -> d := !d +. (c *. rand_draw.(gid)))
          (Delay_model.sensitivities dm g.id);
        let amax =
          Array.fold_left (fun acc code -> Float.max acc arrival.(code)) 0.0 g.fanin
        in
        arrival.(num_inputs + g.id) <- amax +. !d)
      (Circuit.Netlist.gates nl);
    let dmax =
      Array.fold_left
        (fun acc o -> Float.max acc arrival.(Circuit.Netlist.encode_signal nl o))
        0.0 (Circuit.Netlist.outputs nl)
    in
    if dmax <= t_cons then incr pass
  done;
  float_of_int !pass /. float_of_int samples
