(** NLDM (non-linear delay model) gate-delay calculation.

    A topological sweep propagates transition times (slews): each
    gate's delay and output slew come from its Liberty lookup tables at
    the worst input slew and the capacitive load it drives
    (sum of fanout input-pin capacitances plus an estimated wire
    capacitance per fanout). This replaces the linear
    intrinsic+fanout model of {!Circuit.Cell.delay} when a [.lib] is
    available — the same role Synopsys DC's delay calculator plays in
    the paper's flow. Delays are returned in picoseconds (Liberty
    tables are in ns). *)

exception Missing_cell of string
(** Raised by {!run} when a netlist cell has no entry in the Liberty
    library. *)

type config = {
  input_slew : float;       (** slew at primary inputs, ns; default 0.05 *)
  wire_cap_per_fanout : float;  (** pF added to the load per sink; default 0.002 *)
  primary_output_cap : float;   (** pF load of a primary output; default 0.004 *)
}

val default_config : config

type t = {
  delays : float array;   (** per gate, ps *)
  slews : float array;    (** per gate output, ns *)
  loads : float array;    (** per gate output, pF *)
}

val run :
  ?config:config -> Circuit.Liberty.Library.t -> Circuit.Netlist.t -> t
(** Raises [Failure] if a netlist cell is missing from the library. *)

val delay_model :
  ?config:config ->
  Circuit.Liberty.Library.t ->
  Circuit.Netlist.t ->
  model:Variation.model ->
  Delay_model.t
(** Convenience: a {!Delay_model.t} whose nominal delays come from the
    NLDM sweep (the sensitivity structure is unchanged). *)
