exception Missing_cell of string

type config = {
  input_slew : float;
  wire_cap_per_fanout : float;
  primary_output_cap : float;
}

let default_config =
  { input_slew = 0.05; wire_cap_per_fanout = 0.002; primary_output_cap = 0.004 }

type t = {
  delays : float array;
  slews : float array;
  loads : float array;
}

let run ?(config = default_config) lib nl =
  let n = Circuit.Netlist.num_gates nl in
  let num_inputs = Circuit.Netlist.num_inputs nl in
  let cells =
    Array.map
      (fun (g : Circuit.Netlist.gate) ->
        match Circuit.Liberty.Library.find_cell lib (Circuit.Cell.name g.cell) with
        | Some c -> c
        | None ->
          raise
            (Missing_cell
               (Printf.sprintf "Delay_calc.run: cell %s missing from library %s"
                  (Circuit.Cell.name g.cell) lib.Circuit.Liberty.Library.lib_name)))
      (Circuit.Netlist.gates nl)
  in
  (* load on each gate output: sink input caps + wire + PO loads *)
  let loads = Array.make n 0.0 in
  Array.iter
    (fun (g : Circuit.Netlist.gate) ->
      let cap = Circuit.Liberty.Library.average_input_cap cells.(g.id) in
      Array.iter
        (fun code ->
          if code >= num_inputs then begin
            let src = code - num_inputs in
            loads.(src) <- loads.(src) +. cap +. config.wire_cap_per_fanout
          end)
        g.fanin)
    (Circuit.Netlist.gates nl);
  Array.iter
    (fun o ->
      match o with
      | Circuit.Netlist.Gate_out g -> loads.(g) <- loads.(g) +. config.primary_output_cap
      | Circuit.Netlist.Pi _ -> ())
    (Circuit.Netlist.outputs nl);
  (* slew propagation in topological order *)
  let slew_of_signal = Array.make (num_inputs + n) config.input_slew in
  let delays = Array.make n 0.0 in
  let slews = Array.make n 0.0 in
  Array.iter
    (fun (g : Circuit.Netlist.gate) ->
      let in_slew =
        Array.fold_left
          (fun acc code -> Float.max acc slew_of_signal.(code))
          0.0 g.fanin
      in
      let cell = cells.(g.id) in
      let d_ns =
        Circuit.Liberty.Library.worst_delay cell ~slew:in_slew ~load:loads.(g.id)
      in
      let out_slew =
        Circuit.Liberty.Library.worst_output_slew cell ~slew:in_slew ~load:loads.(g.id)
      in
      delays.(g.id) <- 1000.0 *. d_ns;
      slews.(g.id) <- out_slew;
      slew_of_signal.(num_inputs + g.id) <- out_slew)
    (Circuit.Netlist.gates nl);
  { delays; slews; loads }

let delay_model ?config lib nl ~model =
  let r = run ?config lib nl in
  Delay_model.build_with_nominals nl model r.delays
