type t = {
  dm : Delay_model.t;
  paths : Path_extract.path array;
  segments : int array array;
  seg_of_path : int array array;
  vars : Variation.var_key array;
  g_mat : Linalg.Mat.t;
  sigma_mat : Linalg.Mat.t;
  a_mat : Linalg.Mat.t;
  mu_paths : Linalg.Vec.t;
  mu_segments : Linalg.Vec.t;
  covered_gates : int;
  covered_regions : int;
}

(* Split every path's gate list into maximal chains of the path-union
   graph: a chain may continue across (a, b) only when a's only successor
   is b and b's only predecessor is a, among all target paths (path
   endpoints count as virtual source/sink edges). *)
let extract_segments paths =
  let in_deg = Hashtbl.create 1024 in
  let out_deg = Hashtbl.create 1024 in
  let edges = Hashtbl.create 4096 in
  let bump tbl k = Hashtbl.replace tbl k (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k)) in
  let src_marked = Hashtbl.create 256 in
  let snk_marked = Hashtbl.create 256 in
  Array.iter
    (fun (p : Path_extract.path) ->
      let g = p.gates in
      let len = Array.length g in
      if not (Hashtbl.mem src_marked g.(0)) then begin
        Hashtbl.add src_marked g.(0) ();
        bump in_deg g.(0)
      end;
      if not (Hashtbl.mem snk_marked g.(len - 1)) then begin
        Hashtbl.add snk_marked g.(len - 1) ();
        bump out_deg g.(len - 1)
      end;
      for i = 0 to len - 2 do
        let e = (g.(i), g.(i + 1)) in
        if not (Hashtbl.mem edges e) then begin
          Hashtbl.add edges e ();
          bump out_deg g.(i);
          bump in_deg g.(i + 1)
        end
      done)
    paths;
  let deg tbl k = Option.value ~default:0 (Hashtbl.find_opt tbl k) in
  let seg_table = Hashtbl.create 1024 in
  let segments = ref [] in
  let n_segs = ref 0 in
  let seg_id gates_list =
    let key = Array.of_list (List.rev gates_list) in
    match Hashtbl.find_opt seg_table key with
    | Some id -> id
    | None ->
      let id = !n_segs in
      incr n_segs;
      Hashtbl.add seg_table key id;
      segments := key :: !segments;
      id
  in
  let seg_of_path =
    Array.map
      (fun (p : Path_extract.path) ->
        let g = p.gates in
        let len = Array.length g in
        let segs = ref [] in
        let current = ref [ g.(0) ] in
        for i = 0 to len - 2 do
          let a = g.(i) and b = g.(i + 1) in
          if deg out_deg a = 1 && deg in_deg b = 1 then current := b :: !current
          else begin
            segs := seg_id !current :: !segs;
            current := [ b ]
          end
        done;
        segs := seg_id !current :: !segs;
        Array.of_list (List.rev !segs))
      paths
  in
  let segments = Array.of_list (List.rev !segments) in
  (segments, seg_of_path)

let segment_chains = extract_segments

let build dm path_list =
  if path_list = [] then invalid_arg "Paths.build: empty path list";
  let paths = Array.of_list path_list in
  let segments, seg_of_path = extract_segments paths in
  let n = Array.length paths in
  let n_s = Array.length segments in
  (* variable space over covered gates *)
  let covered = Hashtbl.create 1024 in
  Array.iter (fun s -> Array.iter (fun g -> Hashtbl.replace covered g ()) s) segments;
  let var_set = Hashtbl.create 1024 in
  Hashtbl.iter
    (fun g () ->
      List.iter (fun (k, _) -> Hashtbl.replace var_set k ()) (Delay_model.sensitivities dm g))
    covered;
  let vars = Array.of_seq (Hashtbl.to_seq_keys var_set) in
  Array.sort Variation.compare_var vars;
  let m = Array.length vars in
  let var_index = Hashtbl.create m in
  Array.iteri (fun i k -> Hashtbl.replace var_index k i) vars;
  (* segment sensitivities and nominal delays *)
  let sigma_mat = Linalg.Mat.create n_s m in
  let mu_segments = Array.make n_s 0.0 in
  Array.iteri
    (fun s gates ->
      Array.iter
        (fun g ->
          mu_segments.(s) <- mu_segments.(s) +. Delay_model.nominal dm g;
          List.iter
            (fun (k, c) ->
              let j = Hashtbl.find var_index k in
              Linalg.Mat.set sigma_mat s j (Linalg.Mat.get sigma_mat s j +. c))
            (Delay_model.sensitivities dm g))
        gates)
    segments;
  let g_mat = Linalg.Mat.create n n_s in
  Array.iteri
    (fun i segs -> Array.iter (fun s -> Linalg.Mat.set g_mat i s 1.0) segs)
    seg_of_path;
  let a_mat = Linalg.Mat.mul g_mat sigma_mat in
  let mu_paths = Linalg.Mat.apply g_mat mu_segments in
  let covered_regions =
    let cells = Hashtbl.create 64 in
    Array.iter
      (fun k ->
        match k with
        | Variation.Region { level; cell; _ } -> Hashtbl.replace cells (level, cell) ()
        | Variation.Gate_random _ -> ())
      vars;
    Hashtbl.length cells
  in
  {
    dm; paths; segments; seg_of_path; vars; g_mat; sigma_mat; a_mat;
    mu_paths; mu_segments;
    covered_gates = Hashtbl.length covered;
    covered_regions;
  }

let num_paths t = Array.length t.paths

let num_segments t = Array.length t.segments

let num_vars t = Array.length t.vars

let covered_gates t = t.covered_gates

let covered_regions t = t.covered_regions

let path t i = t.paths.(i)

let segment_gates t s = Array.copy t.segments.(s)

let segments_of_path t i = Array.copy t.seg_of_path.(i)

let g_mat t = t.g_mat

let sigma_mat t = t.sigma_mat

let a_mat t = t.a_mat

let mu_paths t = t.mu_paths

let mu_segments t = t.mu_segments

let delay_model t = t.dm

let var_keys t = Array.copy t.vars

let path_row t i =
  let m = Array.length t.vars in
  let var_index = Hashtbl.create m in
  Array.iteri (fun j k -> Hashtbl.replace var_index k j) t.vars;
  let row = Array.make m 0.0 in
  Array.iter
    (fun g ->
      List.iter
        (fun (k, c) ->
          let j = Hashtbl.find var_index k in
          row.(j) <- row.(j) +. c)
        (Delay_model.sensitivities t.dm g))
    t.paths.(i).gates;
  row
