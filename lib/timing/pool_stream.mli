(** Row-streamed sparse path pools for million-path selection.

    {!Paths.build} materializes the dense [A = G * Sigma]
    (paths x parameters), which caps pools at a few thousand rows. This
    front-end keeps both factors in CSR ({!Linalg.Sparse}) and exposes
    the pool to the selection engine only as a mat-mul operator
    ({!Linalg.Rsvd.op}), so the randomized sketch can select from
    millions of paths while the densest object ever allocated is a
    [paths x sketch_width] tall block — never [paths x parameters] and
    never [paths x paths].

    The CSR factors are built row-by-row with {!Linalg.Sparse.init_rows}
    (a fold over paths producing (column, value) rows); the
    [pathsel-lint] [no-dense-pool] rule statically bans densification
    calls inside this module. *)

type t

val of_paths : Delay_model.t -> Path_extract.path list -> t
(** Sparse analogue of {!Paths.build}: same segment partition
    ({!Paths.segment_chains}) and the same sorted variable order, so
    row [i] of the implicit [A] equals row [i] of
    [Paths.a_mat (Paths.build dm paths)]. Raises [Invalid_argument] on
    an empty path list or a non-finite sensitivity (the message names
    the offending segment and gate). *)

val of_extract :
  ?max_paths:int ->
  Delay_model.t ->
  t_cons:float ->
  yield_threshold:float ->
  t * bool
(** Extraction fused with pool construction through
    {!Path_extract.fold}: accepted paths stream straight into the
    builder. Returns the pool and the extractor's [truncated] flag.
    Raises [Invalid_argument] when no path clears the threshold. *)

val synthetic :
  ?seed:int ->
  ?decay:float ->
  paths:int ->
  segments:int ->
  vars:int ->
  segs_per_path:int ->
  vars_per_seg:int ->
  unit ->
  t
(** Deterministic synthetic pool for scaling experiments: [paths] rows
    each touching [segs_per_path] random segments, segments each
    touching [vars_per_seg] random parameters with exponentially
    decaying column scales (the paper's fast singular-value decay).
    [decay] is the spectrum's e-folding scale in columns (default 24,
    independent of [vars] — an effective rank of a few dozen, like the
    real pools of Section 4.2). Memory is O(nnz), so a 1,000,000-path
    pool is a few hundred MB of CSR, not a dense matrix. *)

val op : t -> Linalg.Rsvd.op
(** The pool as a linear operator: [mul x = G (Sigma x)] and
    [tmul y = Sigma^T (G^T y)], both CSR kernels — [A] itself is never
    formed. *)

val num_paths : t -> int

val num_segments : t -> int

val num_vars : t -> int

val nnz : t -> int
(** Stored entries across both CSR factors. *)

val g : t -> Linalg.Sparse.t
(** [paths x segments] incidence. *)

val sigma : t -> Linalg.Sparse.t
(** [segments x parameters] sensitivities. *)

val mu : t -> Linalg.Vec.t
(** Nominal path delays, [G * mu_segments]. *)

val mu_segments : t -> Linalg.Vec.t

val rows_dense : t -> int array -> Linalg.Mat.t
(** [rows_dense t idx] densifies only the selected rows of the implicit
    [A] ([|idx| x parameters]) — the piece a representative-set
    predictor needs. Raises [Invalid_argument] on out-of-range rows. *)
