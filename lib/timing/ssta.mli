(** Block-based statistical static timing analysis (the paper's [2],
    Blaauw et al.).

    Arrival times are carried in canonical first-order form:

    [t = mean + sum_r c_r x_r + c_eps * eps]

    where the [x_r] are the {e correlated} variables of the variation
    model (the quadtree region variables for both parameters) and [eps]
    is an independent standard Gaussian absorbing all purely random
    (per-gate) contributions. [max] is approximated with Clark's
    moment matching. A single topological sweep yields the circuit
    delay distribution and the timing yield analytically — the Monte
    Carlo of {!Monte_carlo.circuit_yield} is the reference it is tested
    against. *)

type canonical = {
  mean : float;
  coeffs : float array;   (** over the correlated-variable basis *)
  residual : float;       (** sigma of the lumped independent part *)
}

val sigma : canonical -> float
(** Total standard deviation. *)

val add_delay : canonical -> mean:float -> coeffs:float array -> residual:float
  -> canonical
(** Add a gate delay in canonical form (sums means and coefficients;
    residuals add in quadrature). *)

val clark_max : canonical -> canonical -> canonical
(** Clark's approximation of [max(a, b)], matching the first two
    moments and preserving the correlated structure. *)

type t = {
  circuit_delay : canonical;   (** statistical circuit delay *)
  node_arrivals : canonical array;  (** per signal code *)
  basis : Variation.var_key array;  (** correlated-variable order *)
}

val analyze : Delay_model.t -> t
(** One forward sweep over the timing graph. *)

val yield_at : t -> float -> float
(** [yield_at a t_cons] is the analytic [P(circuit delay <= t_cons)]
    under the Gaussian approximation of the circuit delay. *)

val quantile : t -> float -> float
(** [quantile a p] is the delay the circuit meets with probability
    [p]. *)
