(** Timing graph view of a netlist.

    Nodes are signal codes (see {!Circuit.Netlist.encode_signal}); each
    gate [g] contributes one timing arc per fanin, from the fanin signal
    to the gate-output signal, carrying gate [g]'s delay. A timing path
    is therefore fully described by its gate sequence, and the path
    delay is the sum of the member gates' delays. *)

type arc = {
  src : int;   (** source signal code *)
  gate : int;  (** driven gate; the arc's delay is this gate's delay *)
  dst : int;   (** signal code of the gate output *)
}

type t

val build : Circuit.Netlist.t -> t

val netlist : t -> Circuit.Netlist.t

val num_nodes : t -> int
(** [num_inputs + num_gates] signal codes. *)

val arcs_from : t -> int -> arc list
(** Outgoing timing arcs of a signal code. *)

val is_po : t -> int -> bool
(** Whether the signal code is a primary output. *)

val pi_codes : t -> int array

val rest_bounds : t -> gate_value:(int -> float) -> float array
(** [rest_bounds t ~gate_value] returns, per signal code [v], the
    maximum over all v->PO suffixes of the sum of [gate_value g] along
    the suffix (0 when [v] is itself a PO, [neg_infinity] when no PO is
    reachable). Used for branch-and-bound pruning bounds with
    [gate_value] = nominal delay or = per-gate sigma. *)
