(** First-order (linear) gate-delay model under the variation model.

    Gate [g]'s delay is [d_g = d0_g + sum_i c_{g,i} x_i] with the [x_i]
    independent standard Gaussians. The per-parameter 1-sigma excursion
    contributes [sens * d0] of delay spread, split across the quadtree
    levels by the model's [level_weights]; the lumped per-gate random
    variable is sized so its variance is [random_share] of the gate's
    total delay variance (then scaled by [random_boost]). *)

type t

val build : Circuit.Netlist.t -> Variation.model -> t

val build_with_nominals :
  Circuit.Netlist.t -> Variation.model -> float array -> t
(** Like {!build}, but with externally computed nominal delays (e.g.
    from the NLDM sweep of {!Delay_calc}); the per-gate sensitivities
    scale with the supplied nominal, exactly as in {!build}. Raises
    [Invalid_argument] on a length mismatch or a non-positive delay. *)

val netlist : t -> Circuit.Netlist.t

val model : t -> Variation.model

val nominal : t -> int -> float
(** Nominal delay of gate [g] (includes its fanout load). *)

val sensitivities : t -> int -> (Variation.var_key * float) list
(** Sensitivity coefficients of gate [g]; keys are distinct. *)

val sigma : t -> int -> float
(** Total delay standard deviation of gate [g]:
    [sqrt (sum_i c_i^2)]. *)

val nominal_critical_delay : t -> float
(** Longest-path delay at nominal corner (the paper's tight timing
    constraint T_cons for Table 1). *)
