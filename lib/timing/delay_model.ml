type t = {
  netlist : Circuit.Netlist.t;
  model : Variation.model;
  nominal : float array;
  sens : (Variation.var_key * float) list array;
  sigmas : float array;
}

let gate_sensitivities model (g : Circuit.Netlist.gate) d0 =
  let correlated param strength =
    let sigma_p = strength *. d0 in
    List.init model.Variation.levels (fun level ->
        let w = model.Variation.level_weights.(level) in
        let cell = Variation.cell_of_position ~level g.Circuit.Netlist.x g.Circuit.Netlist.y in
        (Variation.Region { param; level; cell }, sqrt w *. sigma_p))
  in
  let leff = correlated Variation.Leff (Circuit.Cell.leff_sensitivity g.Circuit.Netlist.cell) in
  let vt = correlated Variation.Vt (Circuit.Cell.vt_sensitivity g.Circuit.Netlist.cell) in
  let corr_var =
    List.fold_left (fun acc (_, c) -> acc +. (c *. c)) 0.0 (leff @ vt)
  in
  (* random_share of TOTAL variance: sigma_r^2 = share/(1-share) * corr_var *)
  let share = model.Variation.random_share in
  let sigma_r =
    model.Variation.random_boost *. sqrt (share /. (1.0 -. share) *. corr_var)
  in
  let rand =
    if sigma_r > 0.0 then [ (Variation.Gate_random g.Circuit.Netlist.id, sigma_r) ] else []
  in
  leff @ vt @ rand

let build_generic netlist model ~nominal_of =
  let n = Circuit.Netlist.num_gates netlist in
  let nominal = Array.make n 0.0 in
  let sens = Array.make n [] in
  let sigmas = Array.make n 0.0 in
  Array.iter
    (fun (g : Circuit.Netlist.gate) ->
      let d0 = nominal_of g in
      nominal.(g.id) <- d0;
      let s = gate_sensitivities model g d0 in
      sens.(g.id) <- s;
      sigmas.(g.id) <- sqrt (List.fold_left (fun acc (_, c) -> acc +. (c *. c)) 0.0 s))
    (Circuit.Netlist.gates netlist);
  { netlist; model; nominal; sens; sigmas }

let build netlist model =
  let nominal_of (g : Circuit.Netlist.gate) =
    let fanout = Circuit.Netlist.fanout_count netlist g.id in
    Circuit.Cell.delay g.cell ~fanout
  in
  build_generic netlist model ~nominal_of

let build_with_nominals netlist model nominals =
  if Array.length nominals <> Circuit.Netlist.num_gates netlist then
    invalid_arg "Delay_model.build_with_nominals: length mismatch";
  Array.iter
    (fun d ->
      if d <= 0.0 then
        invalid_arg "Delay_model.build_with_nominals: non-positive delay")
    nominals;
  build_generic netlist model
    ~nominal_of:(fun (g : Circuit.Netlist.gate) -> nominals.(g.id))

let netlist t = t.netlist

let model t = t.model

let nominal t g = t.nominal.(g)

let sensitivities t g = t.sens.(g)

let sigma t g = t.sigmas.(g)

let nominal_critical_delay t =
  let nl = t.netlist in
  let num_inputs = Circuit.Netlist.num_inputs nl in
  let n = Circuit.Netlist.num_gates nl in
  (* arrival time per signal code; gates are in topological order *)
  let arrival = Array.make (num_inputs + n) 0.0 in
  Array.iter
    (fun (g : Circuit.Netlist.gate) ->
      let amax = Array.fold_left (fun acc code -> Float.max acc arrival.(code)) 0.0 g.fanin in
      arrival.(num_inputs + g.id) <- amax +. t.nominal.(g.id))
    (Circuit.Netlist.gates nl);
  Array.fold_left
    (fun acc o -> Float.max acc arrival.(Circuit.Netlist.encode_signal nl o))
    0.0 (Circuit.Netlist.outputs nl)
