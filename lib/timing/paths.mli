(** Target-path pool: segments, variables, and the linear delay model
    matrices of the paper's Eqns (1)-(2).

    Given the extracted target paths, this module:
    - partitions the path-union subgraph into {b segments} (maximal
      gate chains traversed identically by every path through them);
    - indexes the {b covered} variation variables (regions touching a
      covered gate, per parameter, plus one random variable per covered
      gate);
    - assembles [mu_S], [Sigma] (segments x variables), [G] (paths x
      segments, 0/1 incidence), and [A = G * Sigma] (paths x
      variables), with [mu_Ptar = G * mu_S]. *)

type t

val build : Delay_model.t -> Path_extract.path list -> t
(** Raises [Invalid_argument] on an empty path list. *)

val segment_chains :
  Path_extract.path array -> int array array * int array array
(** [segment_chains paths] partitions the path-union subgraph into
    maximal gate chains: returns [(segments, seg_of_path)] where
    [segments.(s)] is segment [s]'s gate list and [seg_of_path.(i)] the
    segment ids whose concatenation is path [i]. This is the shared
    front half of {!build} and of the sparse streaming builder
    {!Pool_stream.of_paths}. *)

val num_paths : t -> int

val num_segments : t -> int

val num_vars : t -> int

val covered_gates : t -> int
(** |G_C|: gates lying on at least one target path. *)

val covered_regions : t -> int
(** |R_C|: distinct (level, cell) quadtree regions containing at least
    one covered gate (parameter-agnostic count, as in the paper's
    Table 2 where the variable count is |G_C| + 2|R_C|). *)

val path : t -> int -> Path_extract.path

val segment_gates : t -> int -> int array

val segments_of_path : t -> int -> int array
(** Segment ids whose concatenation is exactly path [i]'s gate list. *)

val g_mat : t -> Linalg.Mat.t
(** [n x n_S] 0/1 incidence. *)

val sigma_mat : t -> Linalg.Mat.t
(** [n_S x m] segment sensitivities. *)

val a_mat : t -> Linalg.Mat.t
(** [n x m], equal to [G * Sigma]. *)

val mu_paths : t -> Linalg.Vec.t

val mu_segments : t -> Linalg.Vec.t

val path_row : t -> int -> Linalg.Vec.t
(** Directly accumulated sensitivity row of path [i] (independent of
    the [G * Sigma] factorization; used to cross-check [A]). *)

val delay_model : t -> Delay_model.t

val var_keys : t -> Variation.var_key array
(** Column order of the variable space. *)
