(** Fault injection for post-silicon measurement matrices.

    Real silicon data is dirty: scan chains fail (missing
    measurements), TDCs glitch or stick at a code (outliers), whole
    dies drop out mid-test, and per-die calibration drifts. This
    module corrupts a clean [dies x paths] delay matrix (as drawn by
    {!Monte_carlo}) under a configurable fault model so the robust
    prediction layer ({!Core.Robust}) can be exercised and measured.

    Composable with {!Measurement}: the benign quantization/jitter
    model is applied to every surviving entry before the gross faults,
    mirroring the physical signal chain (sensor noise first, then data
    loss and corruption). *)

type spec = {
  path_dropout : float;  (** per-entry missing probability, in [0, 1] *)
  die_dropout : float;  (** whole-die missing probability *)
  outlier_rate : float;  (** per-entry gross-error probability *)
  outlier_scale : float;
      (** gross error magnitude as a fraction of the reading (the
          injected error is uniform in [0.5, 1.5] x this, either sign) *)
  stuck_rate : float;  (** per-entry stuck-TDC probability *)
  stuck_code_ps : float;  (** the code a stuck TDC returns, in ps *)
  drift_sigma_ps : float;
      (** per-die additive calibration drift, N(0, sigma), in ps *)
}

val none : spec
(** All rates zero: {!inject} is the identity (modulo the measurement
    model). *)

val is_none : spec -> bool

val validate : spec -> unit
(** Raises [Invalid_argument] on rates outside [0, 1] or non-finite /
    negative magnitudes. *)

type stats = {
  missing_entries : int;  (** entries masked out (incl. dropped dies) *)
  dropped_dies : int;
  outlier_entries : int;
  stuck_entries : int;
  drifted_dies : int;
  total_entries : int;
}

type injected = {
  data : Linalg.Mat.t;
      (** corrupted matrix; missing entries hold [nan] *)
  mask : bool array array;
      (** [dies x paths]; [true] = the entry was measured. Outliers and
          stuck codes are {e present} (the screen must find them) —
          the mask only records data loss. *)
  stats : stats;
}

val missing : float
(** The in-band encoding of a missing measurement ([nan]). *)

val inject :
  ?measurement:Measurement.model -> spec -> Rng.t -> Linalg.Mat.t -> injected
(** [inject spec rng clean] corrupts a copy of [clean]. Deterministic
    in [rng]. Default [measurement] is {!Measurement.ideal}. *)

val of_string : string -> (spec, string) result
(** Parse a CLI spec like ["dropout=0.1,outliers=0.01,stuck=0.005"].
    Fields: [dropout]/[path-dropout], [die-dropout], [outliers],
    [outlier-scale], [stuck], [stuck-code], [drift]; all optional,
    unknown fields and malformed numbers are errors. *)

val to_string : spec -> string
(** Inverse of {!of_string} (omitting fields at their defaults). *)
