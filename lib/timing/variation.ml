type param = Leff | Vt

let params = [ Leff; Vt ]

let param_name = function Leff -> "Leff" | Vt -> "Vt"

type var_key =
  | Region of { param : param; level : int; cell : int }
  | Gate_random of int

type model = {
  levels : int;
  level_weights : float array;
  random_share : float;
  random_boost : float;
}

let default_weights levels =
  if levels = 1 then [| 1.0 |]
  else begin
    let rest = 0.6 /. float_of_int (levels - 1) in
    Array.init levels (fun k -> if k = 0 then 0.4 else rest)
  end

let make_model ?level_weights ?(random_share = 0.06) ?(random_boost = 1.0) ~levels () =
  if levels < 1 then invalid_arg "Variation.make_model: levels must be >= 1";
  if random_share < 0.0 || random_share >= 1.0 then
    invalid_arg "Variation.make_model: random_share outside [0, 1)";
  if random_boost < 0.0 then invalid_arg "Variation.make_model: negative random_boost";
  let level_weights =
    match level_weights with
    | None -> default_weights levels
    | Some w ->
      if Array.length w <> levels then
        invalid_arg "Variation.make_model: level_weights length mismatch";
      let s = Array.fold_left ( +. ) 0.0 w in
      if s <= 0.0 then invalid_arg "Variation.make_model: level_weights sum to 0";
      Array.iter (fun x -> if x < 0.0 then
                     invalid_arg "Variation.make_model: negative level weight") w;
      Array.map (fun x -> x /. s) w
  in
  { levels; level_weights; random_share; random_boost }

let regions_at_level level = 1 lsl (2 * level)

let region_count m =
  let rec go k acc = if k >= m.levels then acc else go (k + 1) (acc + regions_at_level k) in
  go 0 0

let cell_of_position ~level x y =
  let side = 1 lsl level in
  let clamp_idx v =
    let i = int_of_float (v *. float_of_int side) in
    max 0 (min (side - 1) i)
  in
  (clamp_idx y * side) + clamp_idx x

let compare_var a b =
  match a, b with
  | Region r1, Region r2 ->
    compare
      ( (match r1.param with Leff -> 0 | Vt -> 1), r1.level, r1.cell )
      ( (match r2.param with Leff -> 0 | Vt -> 1), r2.level, r2.cell )
  | Region _, Gate_random _ -> -1
  | Gate_random _, Region _ -> 1
  | Gate_random g1, Gate_random g2 -> compare g1 g2

let var_name = function
  | Region { param; level; cell } ->
    Printf.sprintf "%s@L%d.%d" (param_name param) level cell
  | Gate_random g -> Printf.sprintf "rand@g%d" g
