type arc = { src : int; gate : int; dst : int }

type t = {
  netlist : Circuit.Netlist.t;
  out_arcs : arc list array;
  po : bool array;
  pis : int array;
}

let build nl =
  let num_inputs = Circuit.Netlist.num_inputs nl in
  let n_nodes = num_inputs + Circuit.Netlist.num_gates nl in
  let out_arcs = Array.make n_nodes [] in
  let seen = Hashtbl.create 1024 in
  Array.iter
    (fun (g : Circuit.Netlist.gate) ->
      let dst = num_inputs + g.id in
      Array.iter
        (fun src ->
          (* a gate with two pins tied to the same net contributes ONE
             timing arc: paths are gate sequences, so duplicate arcs
             would only multiply the traversal, not the paths *)
          if not (Hashtbl.mem seen (src, g.id)) then begin
            Hashtbl.add seen (src, g.id) ();
            out_arcs.(src) <- { src; gate = g.id; dst } :: out_arcs.(src)
          end)
        g.fanin)
    (Circuit.Netlist.gates nl);
  (* keep deterministic order: reverse the accumulated lists *)
  Array.iteri (fun i l -> out_arcs.(i) <- List.rev l) out_arcs;
  let po = Array.make n_nodes false in
  Array.iter
    (fun o -> po.(Circuit.Netlist.encode_signal nl o) <- true)
    (Circuit.Netlist.outputs nl);
  { netlist = nl; out_arcs; po; pis = Array.init num_inputs (fun i -> i) }

let netlist t = t.netlist

let num_nodes t = Array.length t.out_arcs

let arcs_from t v = t.out_arcs.(v)

let is_po t v = t.po.(v)

let pi_codes t = t.pis

let rest_bounds t ~gate_value =
  let n = num_nodes t in
  let rest = Array.make n neg_infinity in
  (* signal codes are already topological (PIs, then gates in order);
     sweep backwards *)
  for v = n - 1 downto 0 do
    if t.po.(v) then rest.(v) <- 0.0;
    List.iter
      (fun a ->
        if rest.(a.dst) > neg_infinity then
          rest.(v) <- Float.max rest.(v) (gate_value a.gate +. rest.(a.dst)))
      t.out_arcs.(v)
  done;
  rest
