(** Statistical gate criticality.

    The criticality of a gate is the probability, over process
    variation, that it lies on the die's critical (delay-limiting)
    path. Deterministic STA gives a 0/1 answer; under variation the
    critical path moves from die to die, and criticality is the right
    prioritization signal for optimization and for deciding where
    measurement structures pay off. Computed by Monte Carlo: per
    sampled die, a full timing sweep plus an argmax backtrace marks the
    critical path's gates. *)

type t = {
  probability : float array;     (** per gate id, in [0, 1] *)
  samples : int;
  mean_critical_length : float;  (** average gates on the critical path *)
}

val compute : Delay_model.t -> rng:Rng.t -> samples:int -> t
(** Raises [Invalid_argument] when [samples <= 0]. *)

val ranking : t -> int array
(** Gate ids sorted by decreasing criticality. *)

val nominal_critical_gates : Delay_model.t -> int array
(** The gates of the nominal (variation-free) critical path, in
    source-to-sink order — deterministic STA's answer, for
    comparison. *)
