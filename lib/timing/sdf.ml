exception Parse_error of int * string
exception Annotate_error of string

let write nl ~delays =
  if Array.length delays <> Circuit.Netlist.num_gates nl then
    invalid_arg "Sdf.write: delays length mismatch";
  let buf = Buffer.create 8192 in
  Buffer.add_string buf "(DELAYFILE\n";
  Buffer.add_string buf "  (SDFVERSION \"3.0\")\n";
  Buffer.add_string buf
    (Printf.sprintf "  (DESIGN \"%s\")\n" (Circuit.Netlist.name nl));
  Buffer.add_string buf "  (TIMESCALE 1ps)\n";
  Array.iter
    (fun (g : Circuit.Netlist.gate) ->
      let d = delays.(g.id) in
      Buffer.add_string buf
        (Printf.sprintf
           "  (CELL (CELLTYPE \"%s\") (INSTANCE %s)\n\
           \    (DELAY (ABSOLUTE (IOPATH A Z (%.3f:%.3f:%.3f) (%.3f:%.3f:%.3f)))))\n"
           (Circuit.Cell.name g.cell) g.name d d d d d d))
    (Circuit.Netlist.gates nl);
  Buffer.add_string buf ")\n";
  Buffer.contents buf

let write_file path nl ~delays =
  let oc = open_out path in
  output_string oc (write nl ~delays);
  close_out oc

(* ------------------------------------------------------------------ *)
(* Reader: a little s-expression scanner specialized to the subset *)

type sexp = Atom of string | List of sexp list

let parse_sexps text =
  let n = String.length text in
  let line = ref 1 in
  let i = ref 0 in
  let rec skip_ws () =
    if !i < n then
      match text.[!i] with
      | '\n' ->
        incr line;
        incr i;
        skip_ws ()
      | ' ' | '\t' | '\r' ->
        incr i;
        skip_ws ()
      | '/' when !i + 1 < n && text.[!i + 1] = '/' ->
        while !i < n && text.[!i] <> '\n' do incr i done;
        skip_ws ()
      | _ -> ()
  in
  let rec parse_one () =
    skip_ws ();
    if !i >= n then raise (Parse_error (!line, "unexpected end of input"));
    match text.[!i] with
    | '(' ->
      incr i;
      let items = ref [] in
      let rec go () =
        skip_ws ();
        if !i >= n then raise (Parse_error (!line, "unterminated list"));
        if text.[!i] = ')' then incr i
        else begin
          items := parse_one () :: !items;
          go ()
        end
      in
      go ();
      List (List.rev !items)
    | ')' -> raise (Parse_error (!line, "unexpected ')'"))
    | '"' ->
      incr i;
      let start = !i in
      while !i < n && text.[!i] <> '"' do
        if text.[!i] = '\n' then incr line;
        incr i
      done;
      if !i >= n then raise (Parse_error (!line, "unterminated string"));
      let s = String.sub text start (!i - start) in
      incr i;
      Atom s
    | _ ->
      let start = !i in
      while
        !i < n
        && (match text.[!i] with
            | ' ' | '\t' | '\n' | '\r' | '(' | ')' -> false
            | _ -> true)
      do
        incr i
      done;
      Atom (String.sub text start (!i - start))
  in
  let top = parse_one () in
  skip_ws ();
  top

let triple_first atom =
  (* "1.5:1.5:1.5" -> 1.5; plain numbers accepted too *)
  match String.split_on_char ':' atom with
  | v :: _ -> float_of_string_opt (String.trim v)
  | [] -> None

let read text =
  let top = parse_sexps text in
  let results = ref [] in
  let rec find_instance_and_delay items =
    let instance = ref None in
    let delay = ref None in
    List.iter
      (fun item ->
        match item with
        | List (Atom "INSTANCE" :: Atom inst :: _) -> instance := Some inst
        | List (Atom "DELAY" :: rest) ->
          List.iter
            (fun r ->
              match r with
              | List (Atom "ABSOLUTE" :: paths) ->
                List.iter
                  (fun p ->
                    match p with
                    | List (Atom "IOPATH" :: _ :: _ :: values) ->
                      (* delay triples are parenthesized: (rise:typ:fall) *)
                      (match values with
                       | Atom v :: _ when !delay = None -> delay := triple_first v
                       | List (Atom v :: _) :: _ when !delay = None ->
                         delay := triple_first v
                       | List _ :: _ | Atom _ :: _ | [] -> ())
                    | List _ | Atom _ -> ())
                  paths
              | List _ | Atom _ -> ())
            rest
        | List _ | Atom _ -> ())
      items;
    match !instance, !delay with
    | Some inst, Some d -> results := (inst, d) :: !results
    | (Some _ | None), (Some _ | None) -> ()
  and walk = function
    | List (Atom "CELL" :: items) -> find_instance_and_delay items
    | List items -> List.iter walk items
    | Atom _ -> ()
  in
  walk top;
  List.rev !results

let read_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  try read text
  with Parse_error (line, msg) ->
    raise (Parse_error (line, Printf.sprintf "%s:%d: %s" path line msg))

let annotate nl pairs =
  let tbl = Hashtbl.create (List.length pairs) in
  List.iter (fun (inst, d) -> Hashtbl.replace tbl inst d) pairs;
  let missing = ref [] in
  let delays =
    Array.map
      (fun (g : Circuit.Netlist.gate) ->
        match Hashtbl.find_opt tbl g.name with
        | Some d -> d
        | None ->
          missing := g.name :: !missing;
          nan)
      (Circuit.Netlist.gates nl)
  in
  (match List.rev !missing with
   | [] -> ()
   | names ->
     let shown = List.filteri (fun i _ -> i < 5) names in
     raise
       (Annotate_error
          (Printf.sprintf "Sdf.annotate: no delay for %d of %d instances (%s%s)"
          (List.length names)
          (Circuit.Netlist.num_gates nl)
          (String.concat ", " shown)
          (if List.length names > 5 then ", ..." else ""))));
  delays

let annotate_lenient nl pairs =
  let tbl = Hashtbl.create (List.length pairs) in
  List.iter (fun (inst, d) -> Hashtbl.replace tbl inst d) pairs;
  let present = List.map snd pairs |> List.filter Float.is_finite in
  if present = [] then raise (Annotate_error "Sdf.annotate_lenient: no usable delays at all");
  let fallback =
    (* median of the annotated delays: a neutral stand-in for a gate
       the SDF forgot, keeping the netlist usable for path extraction *)
    let sorted = List.sort compare present in
    List.nth sorted (List.length sorted / 2)
  in
  let warnings = ref [] in
  let delays =
    Array.map
      (fun (g : Circuit.Netlist.gate) ->
        match Hashtbl.find_opt tbl g.name with
        | Some d when Float.is_finite d -> d
        | Some _ ->
          warnings :=
            Printf.sprintf "non-finite delay for %s; using median %.3f" g.name
              fallback
            :: !warnings;
          fallback
        | None ->
          warnings :=
            Printf.sprintf "no delay for instance %s; using median %.3f" g.name
              fallback
            :: !warnings;
          fallback)
      (Circuit.Netlist.gates nl)
  in
  (delays, List.rev !warnings)
