(* WAL record + checkpoint codec. Field order is fixed and positional,
   exactly like the PSA1 artifact payload; integers that can exceed 32
   bits (sequence numbers, counters) are split across two u32s. *)

module W = Store.Codec.W
module R = Store.Codec.R

let w_int w v =
  if v < 0 then raise (Store.Codec.Malformed "negative integer field");
  W.u32 w (v land 0xFFFFFFFF);
  W.u32 w ((v lsr 32) land 0x7FFFFFFF)

let r_int r =
  let lo = R.u32 r in
  let hi = R.u32 r in
  (hi lsl 32) lor lo

let w_bool w b = W.u32 w (if b then 1 else 0)

let r_bool r =
  match R.u32 r with
  | 0 -> false
  | 1 -> true
  | _ -> raise (Store.Codec.Malformed "boolean field out of range")

let w_state w (s : Stats.Drift.state) =
  W.u32 w (match s with Healthy -> 0 | Warning -> 1 | Drifted -> 2)

let r_state r : Stats.Drift.state =
  match R.u32 r with
  | 0 -> Healthy
  | 1 -> Warning
  | 2 -> Drifted
  | _ -> raise (Store.Codec.Malformed "drift state out of range")

let w_option w f = function
  | None -> W.u32 w 0
  | Some v ->
    W.u32 w 1;
    f w v

let r_option r f =
  match R.u32 r with
  | 0 -> None
  | 1 -> Some (f r)
  | _ -> raise (Store.Codec.Malformed "option tag out of range")

(* ------------------------------------------------------------------ *)
(* WAL observation records. A leading kind tag leaves room for other
   record types without a segment-format change. *)

let obs_kind = 1

let encode_obs (o : Monitor.obs) =
  let w = W.create () in
  W.u32 w obs_kind;
  W.str w o.Monitor.wafer;
  W.f64 w o.Monitor.resid;
  W.float_array w o.Monitor.measured;
  W.float_array w o.Monitor.truth;
  W.float_array w o.Monitor.full;
  W.contents w

let decode_obs payload =
  match
    let r = R.create payload in
    let kind = R.u32 r in
    if kind <> obs_kind then
      raise
        (Store.Codec.Malformed (Printf.sprintf "unknown record kind %d" kind));
    let wafer = R.str r in
    let resid = R.f64 r in
    let measured = R.float_array r in
    let truth = R.float_array r in
    let full = R.float_array r in
    if not (R.at_end r) then
      raise (Store.Codec.Malformed "trailing bytes after observation");
    { Monitor.measured; truth; full; resid; wafer }
  with
  | o -> Ok o
  | exception Store.Codec.Truncated -> Error "truncated observation record"
  | exception Store.Codec.Malformed msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Drift / refit / monitor snapshots *)

let w_drift_config w (c : Stats.Drift.config) =
  W.f64 w c.Stats.Drift.slack;
  W.f64 w c.warn;
  W.f64 w c.drift;
  w_int w c.window;
  W.f64 w c.var_ratio;
  w_int w c.max_consecutive_bad

let r_drift_config r : Stats.Drift.config =
  let slack = R.f64 r in
  let warn = R.f64 r in
  let drift = R.f64 r in
  let window = r_int r in
  let var_ratio = R.f64 r in
  let max_consecutive_bad = r_int r in
  { Stats.Drift.slack; warn; drift; window; var_ratio; max_consecutive_bad }

let w_detector w (s : Stats.Drift.snapshot) =
  w_drift_config w s.Stats.Drift.snap_config;
  W.f64 w s.snap_mean0;
  W.f64 w s.snap_sigma0;
  W.f64 w s.snap_s_hi;
  W.f64 w s.snap_s_lo;
  w_int w s.snap_n;
  w_int w s.snap_bad;
  w_int w s.snap_consecutive_bad;
  w_bool w s.snap_quarantine;
  W.float_array w s.snap_win;
  w_int w s.snap_win_n;
  w_state w s.snap_state

let r_detector r : Stats.Drift.snapshot =
  let snap_config = r_drift_config r in
  let snap_mean0 = R.f64 r in
  let snap_sigma0 = R.f64 r in
  let snap_s_hi = R.f64 r in
  let snap_s_lo = R.f64 r in
  let snap_n = r_int r in
  let snap_bad = r_int r in
  let snap_consecutive_bad = r_int r in
  let snap_quarantine = r_bool r in
  let snap_win = R.float_array r in
  let snap_win_n = r_int r in
  let snap_state = r_state r in
  {
    Stats.Drift.snap_config;
    snap_mean0;
    snap_sigma0;
    snap_s_hi;
    snap_s_lo;
    snap_n;
    snap_bad;
    snap_consecutive_bad;
    snap_quarantine;
    snap_win;
    snap_win_n;
    snap_state;
  }

let w_group_entry w (e : Stats.Drift.Grouped.entry_snapshot) =
  W.str w e.Stats.Drift.Grouped.snap_group;
  W.float_array w e.snap_calib;
  w_int w e.snap_calib_n;
  w_option w w_detector e.snap_det

let r_group_entry r : Stats.Drift.Grouped.entry_snapshot =
  let snap_group = R.str r in
  let snap_calib = R.float_array r in
  let snap_calib_n = r_int r in
  let snap_det = r_option r r_detector in
  { Stats.Drift.Grouped.snap_group; snap_calib; snap_calib_n; snap_det }

let w_grouped w (g : Stats.Drift.Grouped.group_snapshot) =
  w_drift_config w g.Stats.Drift.Grouped.snap_cfg;
  w_int w g.snap_calibrate;
  w_int w g.snap_max_groups;
  w_int w g.snap_overflow;
  w_int w (List.length g.snap_entries);
  List.iter (w_group_entry w) g.snap_entries

let r_grouped r : Stats.Drift.Grouped.group_snapshot =
  let snap_cfg = r_drift_config r in
  let snap_calibrate = r_int r in
  let snap_max_groups = r_int r in
  let snap_overflow = r_int r in
  let n = r_int r in
  if n > 1 lsl 20 then
    raise (Store.Codec.Malformed "group count out of range");
  let snap_entries = List.init n (fun _ -> r_group_entry r) in
  {
    Stats.Drift.Grouped.snap_cfg;
    snap_calibrate;
    snap_max_groups;
    snap_overflow;
    snap_entries;
  }

let w_refit w (s : Core.Refit.snapshot) =
  w_int w s.Core.Refit.snap_r;
  w_int w s.snap_m;
  w_int w s.snap_resync_every;
  W.mat w s.snap_g;
  W.mat w s.snap_c;
  W.mat w s.snap_l;
  w_int w s.snap_count;
  w_int w s.snap_skipped;
  w_int w s.snap_since_resync;
  w_int w s.snap_resyncs

let r_refit r : Core.Refit.snapshot =
  let snap_r = r_int r in
  let snap_m = r_int r in
  let snap_resync_every = r_int r in
  let snap_g = R.mat r in
  let snap_c = R.mat r in
  let snap_l = R.mat r in
  let snap_count = r_int r in
  let snap_skipped = r_int r in
  let snap_since_resync = r_int r in
  let snap_resyncs = r_int r in
  {
    Core.Refit.snap_r;
    snap_m;
    snap_resync_every;
    snap_g;
    snap_c;
    snap_l;
    snap_count;
    snap_skipped;
    snap_since_resync;
    snap_resyncs;
  }

let w_snapshot w (s : Monitor.snapshot) =
  w_int w s.Monitor.snap_r;
  w_int w s.snap_m;
  w_int w s.snap_applied_seq;
  w_int w (Array.length s.snap_ring);
  Array.iter (W.float_array w) s.snap_ring;
  w_int w s.snap_ring_n;
  w_int w s.snap_observed;
  w_int w s.snap_skipped;
  w_int w s.snap_dropped;
  w_int w s.snap_errors;
  w_int w s.snap_reselects;
  w_int w s.snap_reselect_failures;
  W.f64 w s.snap_last_reselect_ms;
  W.f64 w s.snap_backoff;
  W.f64 w s.snap_next_attempt;
  w_bool w s.snap_self_swap;
  W.str w s.snap_last_error;
  w_refit w s.snap_refit;
  w_grouped w s.snap_drift

let r_snapshot r : Monitor.snapshot =
  let snap_r = r_int r in
  let snap_m = r_int r in
  let snap_applied_seq = r_int r in
  let k = r_int r in
  if k > 1 lsl 24 then raise (Store.Codec.Malformed "ring size out of range");
  let snap_ring = Array.init k (fun _ -> R.float_array r) in
  let snap_ring_n = r_int r in
  let snap_observed = r_int r in
  let snap_skipped = r_int r in
  let snap_dropped = r_int r in
  let snap_errors = r_int r in
  let snap_reselects = r_int r in
  let snap_reselect_failures = r_int r in
  let snap_last_reselect_ms = R.f64 r in
  let snap_backoff = R.f64 r in
  let snap_next_attempt = R.f64 r in
  let snap_self_swap = r_bool r in
  let snap_last_error = R.str r in
  let snap_refit = r_refit r in
  let snap_drift = r_grouped r in
  {
    Monitor.snap_r;
    snap_m;
    snap_applied_seq;
    snap_ring;
    snap_ring_n;
    snap_observed;
    snap_skipped;
    snap_dropped;
    snap_errors;
    snap_reselects;
    snap_reselect_failures;
    snap_last_reselect_ms;
    snap_backoff;
    snap_next_attempt;
    snap_self_swap;
    snap_last_error;
    snap_refit;
    snap_drift;
  }

let encode_snapshot s =
  let w = W.create () in
  w_snapshot w s;
  W.contents w

let decode_snapshot payload =
  match
    let r = R.create payload in
    let s = r_snapshot r in
    if not (R.at_end r) then
      raise (Store.Codec.Malformed "trailing bytes after snapshot");
    s
  with
  | s -> Ok s
  | exception Store.Codec.Truncated -> Error "truncated snapshot"
  | exception Store.Codec.Malformed msg -> Error msg

let snapshot_equal a b = String.equal (encode_snapshot a) (encode_snapshot b)

(* ------------------------------------------------------------------ *)
(* Checkpoint files: PSA1-style header, own magic, atomic write *)

let ckpt_magic = "PSC1"
let ckpt_version = 1
let header_size = 20

let save_checkpoint path ~gen snapshot =
  let w = W.create () in
  w_int w gen;
  w_snapshot w snapshot;
  let payload = W.contents w in
  let b = Bytes.create header_size in
  Bytes.blit_string ckpt_magic 0 b 0 4;
  Bytes.set_int32_le b 4 (Int32.of_int ckpt_version);
  Bytes.set_int64_le b 8 (Int64.of_int (String.length payload));
  Bytes.set_int32_le b 16 (Int32.of_int (Store.Codec.crc32 payload));
  Store.write_file_atomic path (Bytes.unsafe_to_string b ^ payload)

let corrupt file msg = Error (Core.Errors.Corrupt_artifact { file; msg })

let load_checkpoint path =
  if not (Sys.file_exists path) then Ok None
  else begin
    match
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    with
    | exception Sys_error msg -> Error (Core.Errors.Io { file = path; msg })
    | exception End_of_file ->
      corrupt path "truncated: unexpected end of file"
    | s ->
      if String.length s < header_size then corrupt path "short header"
      else if String.sub s 0 4 <> ckpt_magic then
        Error (Core.Errors.Bad_magic { file = path })
      else begin
        let version = Int32.to_int (String.get_int32_le s 4) land 0xFFFFFFFF in
        if version <> ckpt_version then
          Error
            (Core.Errors.Version_mismatch
               { file = path; found = version; expected = ckpt_version })
        else begin
          let plen = Int64.to_int (String.get_int64_le s 8) in
          if plen < 0 || String.length s - header_size <> plen then
            corrupt path "payload length mismatch"
          else begin
            let stored_crc =
              Int32.to_int (String.get_int32_le s 16) land 0xFFFFFFFF
            in
            let payload = String.sub s header_size plen in
            if Store.Codec.crc32 payload <> stored_crc then
              corrupt path "checksum mismatch (CRC-32)"
            else begin
              match
                let r = R.create payload in
                let gen = r_int r in
                let snap = r_snapshot r in
                if not (R.at_end r) then
                  raise
                    (Store.Codec.Malformed "trailing bytes after checkpoint");
                (gen, snap)
              with
              | v -> Ok (Some v)
              | exception Store.Codec.Truncated ->
                corrupt path "payload field truncated"
              | exception Store.Codec.Malformed msg -> corrupt path msg
            end
          end
        end
      end
  end
