(** The batched post-silicon prediction server.

    [pathsel select] re-runs the whole pipeline (netlist -> SSTA ->
    extraction -> SVD -> selection) on every invocation; this module is
    the serving half the paper's amortization argument implies. A
    long-running, single-process server loads one {!Store} artifact at
    startup, keeps the predictor's precomputed factors hot (the dense
    Theorem-2 weight matrix, and the Gram/cross blocks behind
    {!Core.Robust}'s per-pattern Cholesky solves), and answers batches
    of dies with one matrix-matrix apply instead of a per-die pipeline.

    {2 Protocol}

    Newline-delimited JSON over a Unix-domain or loopback TCP socket:
    one request object per line, one response object per line.

    {v
    {"op":"ping"}
    {"op":"stats"}
    {"op":"shutdown"}
    {"op":"predict","dies":[[d11,...,d1r],...],"robust":true}
    v}

    [dies] is one row of [r] measured representative-path delays per
    die; [null] entries are missing measurements. The optional
    [robust] flag — or any missing entry — routes the batch through
    {!Core.Robust} (MAD screen + per-survivor-pattern reduced solves on
    the artifact's cached Gram blocks); clean unflagged batches take
    the plain {!Core.Predictor} matrix path, and the two agree
    bit-for-bit on clean data. Responses carry ["ok":true] with
    per-batch results, or ["ok":false] with an error message and a
    sysexits-style [code] — a malformed line poisons only its own
    response, never the connection or the accept loop. *)

module Wire : module type of Wire
(** Re-export: [Serve] is the library's entry module, so the wire
    format is reachable as [Serve.Wire] from outside. *)

type address =
  | Unix_sock of string  (** filesystem path of a Unix-domain socket *)
  | Tcp of int           (** TCP port on 127.0.0.1; 0 = ephemeral *)

val address_of_string : string -> (address, string) result
(** ["path.sock"] or [":4242"] / ["tcp:4242"]. *)

val address_to_string : address -> string

(** {1 Server} *)

type t
(** Server state: artifact, predictors, counters, stop flag. *)

val create : ?max_batch:int -> Store.t -> t
(** Build the serving state: restores the Theorem-2 predictor and the
    robust predictor from the artifact once, up front. [max_batch]
    bounds the dies accepted per request (default 4096). *)

val handle : t -> string -> string
(** Process one request line into one response line (no trailing
    newline). Never raises: parse errors, bad shapes, and numerical
    failures all become ["ok":false] responses and count toward the
    error counter. A ["shutdown"] request flips the stop flag. *)

val stopping : t -> bool

val run :
  ?install_signals:bool ->
  ?max_batch:int ->
  ?on_ready:(address -> unit) ->
  Store.t ->
  address ->
  unit
(** Serve until a [shutdown] request or (with [install_signals], the
    default) SIGINT/SIGTERM. The in-flight request is drained — its
    response is written — before the loop exits; the Unix socket file
    is removed on the way out. [on_ready] fires once listening, with
    the bound address (the actual port when [Tcp 0] was requested).
    Connections are handled sequentially; a failing connection is
    dropped without disturbing the accept loop. *)

(** {1 Client} *)

module Client : sig
  type conn

  val connect : ?retries:int -> address -> conn
  (** Retries [ECONNREFUSED]/[ENOENT] every 100 ms ([retries] times,
      default 50) to absorb server startup; raises [Unix.Unix_error]
      once exhausted. *)

  val close : conn -> unit

  val request : conn -> Wire.json -> (Wire.json, string) result
  (** One round trip: print, send, read one line, parse. *)

  val ping : conn -> bool

  val stats : conn -> (Wire.json, string) result

  val predict :
    conn -> ?robust:bool -> Linalg.Mat.t -> (Linalg.Mat.t * Wire.json, string) result
  (** Send a [dies x r] measurement batch; returns the
      [dies x (n-r)] predictions plus the full response object
      (screen/fallback counters live there). An ["ok":false] response
      is the [Error] case. *)

  val shutdown : conn -> unit
  (** Best-effort: sends the request and reads the ack; errors are
      swallowed (the server may die first). *)
end
