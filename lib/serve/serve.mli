(** The batched post-silicon prediction server.

    [pathsel select] re-runs the whole pipeline (netlist -> SSTA ->
    extraction -> SVD -> selection) on every invocation; this module is
    the serving half the paper's amortization argument implies. A
    long-running server loads one {!Store} artifact at startup, keeps
    the predictor's precomputed factors hot (the dense Theorem-2 weight
    matrix, and the Gram/cross blocks behind {!Core.Robust}'s
    per-pattern Cholesky solves), and answers batches of dies with one
    matrix-matrix apply instead of a per-die pipeline.

    {2 Protocol}

    Newline-delimited JSON over a Unix-domain or loopback TCP socket:
    one request object per line, one response object per line.

    {v
    {"op":"ping"}
    {"op":"stats"}
    {"op":"shutdown"}
    {"op":"predict","dies":[[d11,...,d1r],...],"robust":true}
    {"op":"observe","dies":[[d11,...,d1r],...],"truth":[[t11,...,t1m],...],
     "wafer":"W07"}
    {"op":"yield","method":"is","samples":8192,"seed":7,"t_cons":950.0}
    {"op":"tune","t_clk":940.0,"dies":[[d11,...,d1r],...],
     "buffers":[{"paths":[0,3],"levels":[{"offset_ps":0.0,"cost":0.0},
                                         {"offset_ps":-8.0,"cost":1.5}]}]}
    v}

    [dies] is one row of [r] measured representative-path delays per
    die; [null] entries are missing measurements. The optional
    [robust] flag — or any missing entry — routes the batch through
    {!Core.Robust} (MAD screen + per-survivor-pattern reduced solves on
    the artifact's cached Gram blocks); clean unflagged batches take
    the plain {!Core.Predictor} matrix path, and the two agree
    bit-for-bit on clean data. A malformed line poisons only its own
    response, never the connection or the accept loop.

    [observe] streams {e fully measured} dies — representative
    measurements plus ground-truth remaining-path delays — into the
    self-healing loop (enabled by {!config}'s [monitor]): dies passing
    the MAD/missing screen feed the drift detector and the incremental
    refit, and become re-selection input if drift binds. The optional
    [wafer] field keys drift calibration per wafer/lot group
    ({!Stats.Drift.Grouped}); streams that omit it behave exactly as
    before. Every ok response carries the artifact generation ([gen],
    starting at 1 and bumped by each hot swap) so consumers can
    correlate predictions with the model that produced them.

    {2 Decision ops}

    [yield] estimates the artifact's timing-yield at [t_cons] (default:
    the artifact's stored constraint) by importance sampling
    ({!Yield.importance}; ["method":"mc"] selects brute force instead).
    [samples] (default 4096, capped) and [seed] (default 1) make the
    answer a pure function of the request and the artifact — clients
    can recompute and audit the exact bits. The response carries both
    estimators ([p_fail], [sn_p_fail]), their standard errors, [ess],
    the dominant path, and the equal-confidence [sample_reduction]
    versus naive Monte Carlo.

    [tune] solves each die's minimum-cost tunable-buffer assignment
    ({!Tune.solve}) against [t_clk] (default: the artifact's
    constraint). Per-die delays come from [dies] (representative
    measurements, predicted to the full pool — the normal flow) or a
    caller-supplied full [delays] matrix. A die that cannot meet timing
    even at all-minimum offsets fails the {e whole} request with
    semantic code [65] naming the die, the worst path, and its deficit
    — a typed answer, never a transport failure, so clients do not
    retry it.

    {2 Failure codes}

    ["ok":false] responses carry a [code] in one of two vocabularies:

    - {b semantic} errors — bad shapes, over-limit batches, compute
      failures — carry the sysexits-style {e integer} codes of
      {!Core.Errors.exit_code}. Retrying one repeats the answer.
    - {b infrastructure} errors carry a {e string} code:
      ["overloaded"] (connection shed at the bounded queue),
      ["deadline_exceeded"] (the per-request wall clock expired),
      ["line_too_long"] (the {!Wire.default_max_line} cap tripped) and
      ["bad_frame"] (the line did not parse as JSON — possibly mangled
      in transit). These are safe to retry, and {!Client.retry} does.

    {2 Operations}

    The server runs a small pool of connection-worker threads (blocking
    socket calls release the OCaml runtime lock; the dense kernels
    behind each request still ride the {!Par.Pool} domains) behind a
    bounded accept queue. Past capacity, connections are refused with
    an ["overloaded"] response instead of piling into the kernel
    backlog. Every read and write carries a wall-clock budget
    ({!config}'s [deadline]); silent connections are reaped after
    [idle_timeout]. SIGINT/SIGTERM (and the [shutdown] op) drain
    in-flight requests before exit. When [reload_from] is given, SIGHUP
    loads and CRC-verifies that artifact off to the side and atomically
    swaps the predictor state — in-flight requests finish on the
    snapshot they started with, and a bad artifact is rejected without
    touching the serving state. *)

module Wire : module type of Wire
(** Re-export: [Serve] is the library's entry module, so the wire
    format is reachable as [Serve.Wire] from outside. *)

module Io : module type of Io
(** Re-export of the timeout-wrapped socket primitives (also used by
    the [Chaos] proxy). *)

module Monitor : module type of Monitor
(** Re-export of the self-healing loop (drift detection, incremental
    refit, background re-selection); configure it via {!config}'s
    [monitor] field. *)

module Durable : module type of Durable
(** Re-export of the durability codec: WAL observation records,
    canonical monitor snapshots, and checkpoint files. Configure the
    layer itself via {!config}'s [durability] field. *)

type address =
  | Unix_sock of string  (** filesystem path of a Unix-domain socket *)
  | Tcp of int           (** TCP port on 127.0.0.1; 0 = ephemeral *)

val address_of_string : string -> (address, string) result
(** ["path.sock"] or [":4242"] / ["tcp:4242"]. *)

val address_to_string : address -> string

(** {1 Server} *)

(** Durability knobs (see the "Crash recovery and durability" chapter of
    the docs). When {!config}'s [durability] is armed, every [observe]
    batch is appended to a CRC-framed write-ahead log and fsynced
    {e before} the ok ack leaves — an acknowledged observation survives
    a SIGKILL. The monitor state (recent-die ring, refit moments, drift
    detectors, generation counter) is checkpointed atomically every
    [checkpoint_every] applied records and on every generation change;
    boot loads the last checkpoint and replays the WAL suffix, landing
    bit-exactly on the pre-crash state. *)
type durability = {
  wal_dir : string;
      (** WAL segments and the checkpoint live here (created if
          missing); default ["pathsel-wal"] *)
  checkpoint_every : int;
      (** journaled records between checkpoints (256): smaller = faster
          recovery, more checkpoint writes *)
  wal_segment_bytes : int;
      (** segment rotation threshold ({!Store.Wal.default_config}) *)
  wal_retain : int;
      (** sealed checkpoint-covered segments kept by pruning
          ({!Store.Wal.default_config}) *)
}

val default_durability : durability

type config = {
  max_batch : int;      (** dies accepted per predict request (4096) *)
  max_line : int;       (** request-line byte cap ({!Wire.default_max_line}) *)
  workers : int;        (** connection worker threads; 0 = sized from
                            {!Par.Pool.size} (clamped to 2..8) *)
  queue : int;          (** accepted connections awaiting a worker (64);
                            beyond it, connections are shed *)
  deadline : float;     (** per-request wall-clock budget, seconds (10) *)
  idle_timeout : float; (** silent-connection reap, seconds (60) *)
  monitor : Monitor.config option;
      (** arm the self-healing loop ([None], off, by default); requires
          [reload_from] for auto re-selection to fire *)
  durability : durability option;
      (** arm the WAL + checkpoint layer ([None], off, by default);
          requires [monitor] — the journal records the observation
          stream that feeds it *)
}

val default_config : config

type t
(** Server state: config, hot artifact snapshot, counters, stop flag. *)

val buffers_to_json : Tune.buffer array -> Wire.json
(** Wire encoding of a tunable-buffer description (the [buffers] field
    of a [tune] request) — inverse of the server's decoder. *)

val buffers_of_json :
  n_paths:int -> Wire.json -> (Tune.buffer array, string) result
(** The server's decoder for the [buffers] field: a list of
    [{"paths": [...], "levels": [{"offset_ps": .., "cost": ..}, ...]}]
    objects, validated against the artifact's path count. Exposed for
    clients (the CLI) that read the same description from a file. *)

val create : ?config:config -> ?reload_from:string -> Store.t -> t
(** Build the serving state: restores the Theorem-2 predictor and the
    robust predictor from the artifact once, up front. [reload_from]
    names the artifact path a SIGHUP re-loads.

    With [durability] armed this is also the recovery path: the WAL is
    opened (truncating any torn tail), the last checkpoint is loaded,
    the monitor is restored from it, and the WAL suffix above the
    checkpoint's watermark is replayed — sequence-numbered ingestion
    makes the replay idempotent, so a crash {e during} recovery re-lands
    on the same state. The boot generation is the checkpointed one plus
    one. A corrupt checkpoint degrades to a cold start plus full-WAL
    replay; a checkpoint whose path pool no longer matches the artifact
    is discarded with a warning. Raises [Failure] only when the WAL
    directory itself cannot be opened. *)

val maybe_checkpoint : ?force:bool -> t -> unit
(** Write a checkpoint if one is due ([checkpoint_every] applied records
    since the last, or a generation change), then prune WAL segments the
    checkpoint covers; [force] skips the due-check. No-op without
    durability. {b Monitor-thread only} (it snapshots monitor
    internals): [run] calls it after every {!monitor_step}; tests
    driving {!monitor_step} directly may call it the same way. *)

val handle : t -> string -> string
(** Process one request line into one response line (no trailing
    newline). Never raises: parse errors, bad shapes, and numerical
    failures all become ["ok":false] responses and count toward the
    error counter. A ["shutdown"] request flips the stop flag.
    Thread-safe. *)

val stopping : t -> bool

val do_reload : t -> (unit, string) result
(** Load + CRC-verify the [reload_from] artifact and atomically swap it
    in, bumping the generation; in-flight requests finish on their
    snapshot. This is the single swap path: SIGHUP requests it, the
    background re-selection calls it after {!Store.save}. [Error] when
    no reload path is configured or the artifact is rejected (the old
    artifact keeps serving either way; [reload_failures] counts it). *)

val monitor_step : t -> now:float -> unit
(** One iteration of the self-healing loop: re-anchor the monitor after
    an artifact swap, drain queued observations, update the detector
    and refit, and trigger re-selection when drift binds. [run] drives
    this from a dedicated thread; tests may drive it directly for
    deterministic control. No-op when the monitor is off. *)

val monitor_report : t -> Monitor.report option
(** Latest monitor snapshot ([None] when monitoring is off). *)

val listen_on : address -> Unix.file_descr * address * (unit -> unit)
(** Bind + listen on [address]; returns the listening descriptor, the
    bound address (the actual port for [Tcp 0]) and a cleanup thunk
    that removes the Unix socket file. Shared with the [Chaos] proxy. *)

val run :
  ?install_signals:bool ->
  ?config:config ->
  ?reload_from:string ->
  ?on_ready:(address -> unit) ->
  Store.t ->
  address ->
  unit
(** Serve until a [shutdown] request or (with [install_signals], the
    default) SIGINT/SIGTERM. In-flight requests are drained — their
    responses written — before the loop exits; the Unix socket file is
    removed on the way out. [on_ready] fires once listening, with the
    bound address (the actual port when [Tcp 0] was requested).
    SIGHUP hot reload is armed whenever [reload_from] is given, even
    with [install_signals:false]. The [stats] op surfaces the per-cause
    counters: [shed], [timeouts], [idle_closed], [overflows],
    [reloads], [reload_failures]. *)

(** {1 Client} *)

module Client : sig
  type conn

  val connect : ?retries:int -> ?timeout:float -> address -> conn
  (** Retries [ECONNREFUSED]/[ENOENT]/[EAGAIN] every 100 ms ([retries]
      times, default 50) to absorb server startup; each attempt's
      connect carries [timeout] seconds (default 5). Raises
      [Unix.Unix_error] or {!Io.Timeout} once exhausted. *)

  val close : conn -> unit

  val request : ?deadline:float -> conn -> Wire.json -> (Wire.json, string) result
  (** One round trip: print, send, read one line, parse — all within
      [deadline] seconds of wall clock (default 30). A timeout, a lost
      connection, or an unparseable response is the [Error] case; it
      never blocks forever on a dead peer. *)

  val ping : ?deadline:float -> conn -> bool

  val stats : ?deadline:float -> conn -> (Wire.json, string) result

  val predict :
    ?deadline:float ->
    conn ->
    ?robust:bool ->
    Linalg.Mat.t ->
    (Linalg.Mat.t * Wire.json, string) result
  (** Send a [dies x r] measurement batch; returns the
      [dies x (n-r)] predictions plus the full response object
      (screen/fallback counters live there). An ["ok":false] response
      is the [Error] case. *)

  val observe :
    ?deadline:float ->
    ?wafer:string ->
    conn ->
    measured:Linalg.Mat.t ->
    truth:Linalg.Mat.t ->
    (Wire.json, string) result
  (** Stream a batch of fully measured dies ([measured]: [dies x r],
      [truth]: [dies x (n-r)]) into the server's self-healing loop.
      [wafer] keys per-group drift calibration (omitted = the flat
      default group). [Ok] carries the full response: [queued]/
      [screened] counts, a per-die [die_status] list (["used"] /
      ["screened"]), and [journaled] — [true] means every used die hit
      fsynced storage before this ack left. An ["ok":false] response is
      the [Error] case; the retryable ["journal_failed"] code means the
      batch was {e not} made durable. *)

  val die_statuses : Wire.json -> string list
  (** The [die_status] field of an observe ack (empty when absent). *)

  val describe_observe : Wire.json -> string
  (** Render an observe ack per die, one line each: ["journaled and
      used"], ["used"], ["screened out (not journaled)"], or
      ["screened out"]. *)

  val yield_request :
    ?samples:int ->
    ?seed:int ->
    ?meth:[ `Is | `Mc ] ->
    ?t_cons:float ->
    unit ->
    Wire.json
  (** Build a [yield] request; omitted fields take the server defaults
      (4096 samples, seed 1, importance sampling, the artifact's
      stored constraint). *)

  val estimate_yield :
    ?deadline:float ->
    ?samples:int ->
    ?seed:int ->
    ?meth:[ `Is | `Mc ] ->
    ?t_cons:float ->
    conn ->
    (Wire.json, string) result
  (** One [yield] round trip; [Ok] is the full response object. *)

  val tune_request :
    ?t_clk:float ->
    buffers:Tune.buffer array ->
    measured:Linalg.Mat.t ->
    unit ->
    Wire.json

  val tune :
    ?deadline:float ->
    ?t_clk:float ->
    buffers:Tune.buffer array ->
    measured:Linalg.Mat.t ->
    conn ->
    (Wire.json, string) result
  (** One [tune] round trip over a [dies x r] measurement batch. An
      infeasible die answers ["ok":false] with semantic code [65] —
      surfaced here as [Error] with the server's message; use
      {!request} directly to inspect the code. *)

  val generation : conn -> int option
  (** Artifact generation of the last ok response on this connection
      ([None] before the first). A mid-stream change — the server hot
      swapped its artifact — is reported on [stderr] when detected. *)

  val shutdown : conn -> unit
  (** Best-effort: sends the request and reads the ack; errors are
      swallowed (the server may die first). *)

  (** {2 Retry policy}

      For embedding in a tester loop: bounded attempts, exponential
      backoff with decorrelated jitter
      ([sleep ~ U(base_delay, 3 * previous sleep)], capped at
      [max_delay]), and a fresh connection per attempt. Only transport
      failures and string-coded infrastructure responses are retried —
      semantic errors (integer [code]) never are. *)

  type retry = {
    attempts : int;         (** total tries, >= 1 (5) *)
    base_delay : float;     (** backoff floor, seconds (0.05) *)
    max_delay : float;      (** backoff cap, seconds (2) *)
    connect_timeout : float;(** per-attempt connect budget, seconds (5) *)
    deadline : float;       (** per-attempt request budget, seconds (30) *)
  }

  val default_retry : retry

  val request_with_retry :
    ?retry:retry -> ?rng:Rng.t -> address -> Wire.json -> (Wire.json, string) result
  (** The final attempt's outcome is returned as-is (including a
      semantic ["ok":false] response as [Ok]). [rng] drives the jitter;
      the default is a fixed seed, so pass one for cross-process
      decorrelation. *)

  val predict_with_retry :
    ?retry:retry ->
    ?rng:Rng.t ->
    address ->
    ?robust:bool ->
    Linalg.Mat.t ->
    (Linalg.Mat.t * Wire.json, string) result
  (** {!predict} through {!request_with_retry}. *)
end
