(** The server's wire format: newline-delimited JSON.

    Reuses {!Core.Report.json} as the value type (so CLI and tests
    pattern-match one vocabulary) and adds the two halves the report
    module does not need: a parser, and a {e round-trip-exact} printer.
    {!Core.Report.to_string} prints floats at [%.12g] for human
    consumption; predictions served to a tester must instead survive
    print-then-parse bit-for-bit, so {!print} uses 17 significant
    digits (sufficient for IEEE-754 doubles). Non-finite floats map to
    [null] (JSON has no NaN); measurement decoding maps [null] back to
    [nan], the library-wide missing-entry encoding. *)

type json = Core.Report.json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of json list
  | Obj of (string * json) list

val print : json -> string
(** Compact, single-line, float-exact rendering. *)

val parse : string -> (json, string) result
(** Strict single-value JSON parser (objects, arrays, strings with
    escapes, numbers, [true]/[false]/[null]); trailing garbage is an
    error. Numbers without [./e] parse as [Int], others as [Float]. *)

(** {1 Accessors} *)

val member : string -> json -> json option
(** Field lookup; [None] when absent or when the value is not an
    object. *)

val to_float : json -> float option
(** [Int], [Float], or [Null] (as [nan]); [None] otherwise. *)

(** {1 Measurement matrices} *)

val mat_to_json : Linalg.Mat.t -> json
(** Row-per-die list of lists; non-finite entries become [Null]. *)

val mat_of_json : cols:int -> json -> (Linalg.Mat.t, string) result
(** Inverse of {!mat_to_json}: a non-empty list of equal-length numeric
    rows, each of width [cols]; [Null] entries become [nan]. *)
