(** The server's wire format: newline-delimited JSON.

    Reuses {!Core.Report.json} as the value type (so CLI and tests
    pattern-match one vocabulary) and adds the two halves the report
    module does not need: a parser, and a {e round-trip-exact} printer.
    {!Core.Report.to_string} prints floats at [%.12g] for human
    consumption; predictions served to a tester must instead survive
    print-then-parse bit-for-bit, so {!print} uses 17 significant
    digits (sufficient for IEEE-754 doubles). Non-finite floats map to
    [null] (JSON has no NaN); measurement decoding maps [null] back to
    [nan], the library-wide missing-entry encoding. *)

type json = Core.Report.json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of json list
  | Obj of (string * json) list

val print : json -> string
(** Compact, single-line, float-exact rendering. *)

val parse : string -> (json, string) result
(** Strict single-value JSON parser (objects, arrays, strings with
    escapes, numbers, [true]/[false]/[null]); trailing garbage is an
    error. Numbers without [./e] parse as [Int], others as [Float]. *)

(** {1 Framing}

    Requests and responses are newline-delimited; the framer does the
    incremental splitting, tolerates CRLF terminators, and enforces a
    per-line byte cap so a newline-less flood cannot grow a buffer
    without bound — past the cap the line's bytes are discarded as they
    arrive and the line surfaces as {!Framer.Too_long}. *)

val default_max_line : int
(** 16 MiB — comfortably above any sane measurement batch. *)

module Framer : sig
  type t

  type item =
    | Line of string   (** one complete line, terminator(s) stripped *)
    | Too_long of int  (** an over-cap line ended; its total byte count *)

  val create : ?max_line:int -> unit -> t
  (** [max_line] defaults to {!default_max_line}. *)

  val feed : t -> Bytes.t -> int -> int -> unit
  (** Feed [len] bytes at [ofs]; completed lines queue up for {!pop}. *)

  val pop : t -> item option

  val partial : t -> bool
  (** An unterminated line is pending (buffered or being discarded) —
      the signal that a request is mid-flight for deadline purposes. *)

  val overflowing : t -> bool
  (** The current unterminated line already exceeds the cap; servers
      can reject without waiting for the newline that may never come. *)
end

(** {1 Accessors} *)

val member : string -> json -> json option
(** Field lookup; [None] when absent or when the value is not an
    object. *)

val to_float : json -> float option
(** [Int], [Float], or [Null] (as [nan]); [None] otherwise. *)

(** {1 Measurement matrices} *)

val mat_to_json : Linalg.Mat.t -> json
(** Row-per-die list of lists; non-finite entries become [Null]. *)

val mat_of_json : cols:int -> json -> (Linalg.Mat.t, string) result
(** Inverse of {!mat_to_json}: a non-empty list of equal-length numeric
    rows, each of width [cols]; [Null] entries become [nan]. *)
