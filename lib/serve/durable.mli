(** The serving layer's durability codec: WAL observation records and
    recovery checkpoints.

    Everything here rides the artifact codec ({!Store.Codec}), so every
    float — refit moments, CUSUM accumulators, ring rows — round-trips
    {e bit-exactly}; recovered state is not "close to" the pre-crash
    state, it {e is} the pre-crash state. Snapshot encodings are also
    canonical (ring rows oldest-first, detector groups sorted), which
    is what lets tests assert recovery correctness by comparing encoded
    bytes instead of chasing a tolerance.

    A checkpoint file is framed like a PSA1 artifact with its own magic:

    {v
    offset  size  field
    0       4     magic "PSC1"
    4       4     format version, u32 LE
    8       8     payload length, u64 LE
    16      4     CRC-32 (IEEE) of the payload, u32 LE
    20      -     payload: generation counter + monitor snapshot
    v}

    and is written with {!Store.write_file_atomic} — a crash mid-
    checkpoint leaves the previous checkpoint, never a torn one. *)

val ckpt_magic : string

val ckpt_version : int

(** {2 WAL observation records} *)

val encode_obs : Monitor.obs -> string
(** One journaled die as a WAL record payload. *)

val decode_obs : string -> (Monitor.obs, string) result
(** Inverse of {!encode_obs}; [Error] names the defect (an unknown
    record kind from a newer writer, a truncated field). *)

(** {2 Monitor snapshots} *)

val encode_snapshot : Monitor.snapshot -> string
(** Canonical encoding; equal states produce equal bytes. *)

val decode_snapshot : string -> (Monitor.snapshot, string) result

val snapshot_equal : Monitor.snapshot -> Monitor.snapshot -> bool
(** Bit-exact state equality via the canonical encoding (NaN-safe) —
    the predicate behind the recovery QCheck property. *)

(** {2 Checkpoint files} *)

val save_checkpoint :
  string -> gen:int -> Monitor.snapshot -> (unit, Core.Errors.t) result
(** Atomic-rename write of [(gen, snapshot)] to the given path. *)

val load_checkpoint :
  string -> ((int * Monitor.snapshot) option, Core.Errors.t) result
(** [Ok None] when no checkpoint exists yet (a first boot);
    [Error] is a typed [Bad_magic]/[Version_mismatch]/
    [Corrupt_artifact]/[Io] — the caller decides whether to fall back
    to a cold start plus full-WAL replay. Never raises. *)
