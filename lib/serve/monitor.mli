(** The self-healing loop: drift monitoring, incremental refit, and
    background re-selection.

    Connection workers {!submit} observations — fully measured dies with
    their prediction residual — through a lock-free queue; a single
    monitor thread drains it with {!step}. Each step (1) calibrates a
    {!Stats.Drift} detector from the first healthy residuals, then feeds
    it; (2) folds the die into an incremental {!Core.Refit} regression
    and publishes a coefficient snapshot; (3) keeps a ring of recent
    full-die delay vectors; and (4) when the detector binds ([Drifted]),
    invokes the [reselect] callback on the recent dies — off the hot
    path — with a cooldown and exponential backoff on failure.

    Locking discipline: this module must never block. Submission is a
    compare-and-set push; every externally visible figure is published
    as an immutable {!report} snapshot through an [Atomic]. The
    [no-blocking-in-monitor] lint rule forbids [Mutex]/[Condition]/
    [Thread.join] (and raw socket I/O, via [no-unbounded-io]) here, so
    a stalled reselect can slow {e this} thread only — serving never
    waits on the monitor. {!step} and {!swapped} must be called from a
    single thread; {!submit} and {!read} are safe from any thread. *)

type config = {
  calibrate : int;
      (** Healthy residuals used to estimate a detector's reference
          mean/sigma before monitoring starts — per wafer group.
          Default [32]. *)
  drift : Stats.Drift.config;  (** Detector thresholds (every group). *)
  max_groups : int;
      (** Bound on the per-wafer detector table
          ({!Stats.Drift.Grouped}); unknown wafers past the cap share
          the default group. Default [64]. *)
  min_dies : int;
      (** Recent dies required before a re-selection may run.
          Default [64]. *)
  buffer : int;
      (** Ring capacity of recent full-die vectors. Default [256]. *)
  refit_min : int;
      (** Accepted dies before refit coefficients are published.
          Default [16]. *)
  refit_ridge : float;  (** {!Core.Refit} ridge. Default [1e-3]. *)
  refit_resync_every : int;
      (** {!Core.Refit} exact-resync period. Default [64]. *)
  cooldown : float;
      (** Seconds between re-selection attempts (also the delay after a
          success before the detector may trigger again). Default [5]. *)
  max_backoff : float;
      (** Failure backoff cap, seconds (doubles from [cooldown]).
          Default [60]. *)
  pending_cap : int;
      (** Observations queued between steps before {!submit} drops
          (counted, never blocking). Default [4096]. *)
}

val default_config : config

(** One fully measured die, as seen by a connection worker. *)
type obs = {
  measured : float array;  (** representative-path delays, length [r] *)
  truth : float array;  (** measured remaining-path delays, length [m] *)
  full : float array;
      (** all [n_paths] delays, scattered from [measured]/[truth] in
          artifact path order — re-selection input *)
  resid : float;
      (** prediction residual for this die (mean over predicted paths),
          computed against the snapshot that served it *)
  wafer : string;
      (** wafer/lot id keying drift calibration; [""] (the default
          group) for flat streams that don't distinguish wafers *)
}

(** Immutable stats snapshot, refreshed after every {!step}. *)
type report = {
  observed : int;  (** dies accepted into the stream *)
  skipped : int;  (** dies rejected (shape mismatch / non-finite) *)
  dropped : int;  (** submissions lost to a full queue *)
  calibrating : bool;  (** no wafer group has finished calibration *)
  state : Stats.Drift.state;  (** worst state across wafer groups *)
  cusum : float;  (** max across groups; 0 while calibrating *)
  var_ratio : float;  (** max across groups; [nan] until a window fills *)
  quarantined : bool;  (** some group's detector quarantined itself *)
  groups : int;  (** wafer groups tracked (the default group counts) *)
  group_overflow : int;
      (** observations folded into the default group because the wafer
          table was full *)
  monitor_errors : int;
      (** fail-safe hits: malformed observations dropped, plus monitor
          loop failures recorded via {!note_error} *)
  refit_dies : int;
  refit_resyncs : int;
  reselects : int;  (** successful background re-selections *)
  reselect_failures : int;
  last_reselect_ms : float;  (** [nan] before the first success *)
  backoff_s : float;  (** current failure backoff (0 = none pending) *)
  last_error : string;  (** last re-selection failure ([""] if none) *)
}

type t

val create :
  ?config:config ->
  n_paths:int ->
  r:int ->
  m:int ->
  reselect:(Linalg.Mat.t -> (int * int * float, string) result) ->
  unit ->
  t
(** [reselect recent] re-runs selection on a [dies x n_paths] matrix of
    recent fully measured dies and swaps the resulting artifact in,
    returning the new [(r, m)] split plus its own wall time in
    milliseconds on success (the monitor deliberately keeps no clock)
    — see [Serve]'s wiring, which routes it through [Store.save] and
    the atomic-reload machinery. It runs on the monitor thread and must
    not raise. Raises [Invalid_argument] on inconsistent dimensions or
    a malformed config. *)

val n_paths : t -> int
(** The path-pool size the monitor was built for; artifacts swapped in
    must keep it (the ring of full dies is indexed by it). *)

val submit : ?seq:int -> t -> obs -> unit
(** Lock-free enqueue; never blocks, drops (and counts) past
    [pending_cap] — except journaled records ([seq > 0]), which bypass
    the cap: their producer is already throttled by the WAL fsync, and
    dropping an acked record would let a later sequence number mark it
    applied, so recovery would never replay it. Safe from any thread.
    [seq] (default [0] = not journaled) is the observation's WAL
    sequence number: the monitor
    tracks the highest one folded in ({!applied_seq}) so checkpoints
    know where the replay suffix starts, and ignores a journaled
    record it has already applied — replay is idempotent. *)

val step : t -> now:float -> unit
(** Drain the queue, update detector/refit/ring, and trigger a
    re-selection when drift binds and the cooldown/backoff allows.
    [now] is the caller's wall clock (seconds); the monitor keeps no
    clock of its own, which also makes backoff testable. Never raises:
    pathological observations are counted in [monitor_errors] and the
    detector can quarantine itself, but the serving path is never the
    monitor's to break. *)

val read : t -> report
(** Latest published snapshot. Safe from any thread. *)

val coefficients : t -> (Linalg.Mat.t * int) option
(** Published refit coefficients (with the die count behind them), once
    [refit_min] dies have been accepted. The matrix is an immutable
    snapshot — apply it with {!Core.Refit.predict}. Safe from any
    thread. *)

val swapped : t -> r:int -> m:int -> unit
(** Tell the monitor the serving artifact changed under it: reset the
    detector (to recalibrate against the new model's residuals) and
    restart the refit at the new [(r, m)] split. An operator swap
    (SIGHUP reload) also clears any pending re-selection backoff; when
    the swap is the monitor's own re-selection landing, the
    post-reselect cooldown survives. The recent-die ring survives
    either way — full die vectors are artifact-independent. Monitor
    thread only. *)

val note_error : t -> string -> unit
(** Record a monitor-loop failure (counted in [monitor_errors], shown
    as [last_error]) and republish the report. For the caller's
    thread-level fail-safe around {!step}: the loop survives, the
    operator sees it. Monitor thread only. *)

(** {2 Durability}

    The whole monitor-thread state — refit moments, per-wafer
    detectors, the recent-die ring, counters, re-selection pacing —
    snapshots into an inert canonical record (ring rows oldest-first,
    detector groups sorted by id) for the serving layer's periodic
    checkpoint. Recovery is {!restore} from the last checkpoint
    followed by {!replay} of the WAL records above
    [snap_applied_seq]; the result is bit-exactly the state an
    uninterrupted run over the same die stream would hold
    (QCheck-property-tested in [test/test_monitor.ml]). *)

type snapshot = {
  snap_r : int;
  snap_m : int;
  snap_applied_seq : int;
  snap_ring : float array array;
      (** the live window, oldest first: [min (ring dies, buffer)] rows *)
  snap_ring_n : int;  (** total dies ever accepted into the ring *)
  snap_observed : int;
  snap_skipped : int;
  snap_dropped : int;
  snap_errors : int;
  snap_reselects : int;
  snap_reselect_failures : int;
  snap_last_reselect_ms : float;
  snap_backoff : float;
  snap_next_attempt : float;
  snap_self_swap : bool;
  snap_last_error : string;
  snap_refit : Core.Refit.snapshot;
  snap_drift : Stats.Drift.Grouped.group_snapshot;
}

val snapshot : t -> snapshot
(** Deep copy of the monitor state; the live monitor keeps running
    while a checkpoint writer serializes it. Monitor thread only. *)

val restore :
  ?config:config ->
  n_paths:int ->
  reselect:(Linalg.Mat.t -> (int * int * float, string) result) ->
  snapshot ->
  t
(** Rebuild a monitor mid-stream. The snapshot's own detector config
    and [(r, m)] split win over [config] for everything already
    accumulated; [config] governs capacity knobs (ring [buffer],
    [pending_cap], pacing) — with an unchanged [buffer] the restored
    ring is bit-identical, with a changed one the newest rows are
    kept. Raises [Invalid_argument] on inconsistent shapes. *)

val applied_seq : t -> int
(** Highest WAL sequence number folded into this state ([0] when
    durability is off) — where the next checkpoint's replay suffix
    starts. Monitor thread only. *)

val replay : t -> (int * obs) list -> unit
(** [replay t records] re-applies journaled observations (in sequence
    order, as {!Store.Wal.fold} yields them) directly — bypassing the
    bounded queue, so a long WAL suffix cannot shed — then republishes
    coefficients and the report. Records at or below {!applied_seq}
    are skipped. No re-selection fires during replay: the first live
    {!step} decides, so recovery adds at most one cooldown of delay.
    Monitor thread only, before serving starts. *)
