(** Timeout-wrapped socket primitives.

    Every read, write and connect in the serving and chaos layers goes
    through these wrappers, each with an explicit wall-clock budget —
    the [no-unbounded-io] lint rule makes a raw
    [Unix.read]/[Unix.write]/[Unix.connect] anywhere else under
    [lib/serve/] or [lib/chaos/] a build error. *)

exception Timeout
(** The wall-clock budget expired before the operation completed. *)

exception Closed
(** The peer is gone: zero-byte write, [EPIPE] or [ECONNRESET]. *)

type readiness = [ `Ready | `Timeout | `Interrupted ]
(** [`Interrupted] is an EINTR (a signal landed); it is {e not} a
    timeout — the caller decides whether its deadline has passed. *)

val wait_readable : Unix.file_descr -> float -> readiness
val wait_writable : Unix.file_descr -> float -> readiness

type read_result = Data of int | Eof | Read_timeout

val read :
  Unix.file_descr -> Bytes.t -> int -> int -> timeout:float -> read_result
(** One chunk read within [timeout] seconds. EINTR re-waits on the
    remaining budget; a reset connection reads as [Eof]. *)

val write_all : Unix.file_descr -> string -> timeout:float -> unit
(** Write the whole string within [timeout] seconds or raise
    {!Timeout} (slow reader) / {!Closed} (peer gone). *)

val connect : Unix.file_descr -> Unix.sockaddr -> timeout:float -> unit
(** Non-blocking connect with a deadline; the descriptor is returned to
    blocking mode on completion. Raises {!Timeout} or the underlying
    [Unix.Unix_error]. *)
