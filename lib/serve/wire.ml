type json = Core.Report.json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of json list
  | Obj of (string * json) list

(* ------------------------------------------------------------------ *)
(* Printing *)

let escape = function
  | '"' -> "\\\""
  | '\\' -> "\\\\"
  | '\n' -> "\\n"
  | '\r' -> "\\r"
  | '\t' -> "\\t"
  | c when Char.code c < 0x20 -> Printf.sprintf "\\u%04x" (Char.code c)
  | c -> String.make 1 c

let print j =
  let buf = Buffer.create 256 in
  let rec go = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f ->
      if Float.is_finite f then begin
        (* 17 significant digits round-trip any IEEE-754 double; keep a
           decimal point or exponent so the value re-parses as Float *)
        let s = Printf.sprintf "%.17g" f in
        Buffer.add_string buf s;
        if not (String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s) then
          Buffer.add_string buf ".0"
      end
      else Buffer.add_string buf "null"
    | String s ->
      Buffer.add_char buf '"';
      String.iter (fun c -> Buffer.add_string buf (escape c)) s;
      Buffer.add_char buf '"'
    | List l ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          go v)
        l;
      Buffer.add_char buf ']'
    | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          go (String k);
          Buffer.add_char buf ':';
          go v)
        fields;
      Buffer.add_char buf '}'
  in
  go j;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing: plain recursive descent over the string *)

exception Bad of string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word value =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      value
    end
    else fail "invalid literal"
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        (if !pos >= n then fail "unterminated escape");
        (match s.[!pos] with
         | '"' -> Buffer.add_char buf '"'
         | '\\' -> Buffer.add_char buf '\\'
         | '/' -> Buffer.add_char buf '/'
         | 'b' -> Buffer.add_char buf '\b'
         | 'f' -> Buffer.add_char buf '\012'
         | 'n' -> Buffer.add_char buf '\n'
         | 'r' -> Buffer.add_char buf '\r'
         | 't' -> Buffer.add_char buf '\t'
         | 'u' ->
           if !pos + 4 >= n then fail "truncated \\u escape";
           let hex = String.sub s (!pos + 1) 4 in
           let code =
             match int_of_string_opt ("0x" ^ hex) with
             | Some c -> c
             | None -> fail "invalid \\u escape"
           in
           pos := !pos + 4;
           (* decode to UTF-8 *)
           if code < 0x80 then Buffer.add_char buf (Char.chr code)
           else if code < 0x800 then begin
             Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
             Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
           end
           else begin
             Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
             Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
             Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
           end
         | _ -> fail "invalid escape");
        advance ();
        go ()
      | c when Char.code c < 0x20 -> fail "control character in string"
      | c ->
        Buffer.add_char buf c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    let is_float = String.exists (fun c -> c = '.' || c = 'e' || c = 'E') tok in
    if is_float then
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> fail "invalid number"
    else
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> fail "invalid number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let items = ref [ parse_value () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          items := parse_value () :: !items;
          skip_ws ()
        done;
        expect ']';
        List (List.rev !items)
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let field () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          (k, v)
        in
        let fields = ref [ field () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          fields := field () :: !fields;
          skip_ws ()
        done;
        expect '}';
        Obj (List.rev !fields)
      end
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character '%c'" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Bad msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Framing: incremental newline splitting with a line-length cap *)

let default_max_line = 16 * 1024 * 1024

module Framer = struct
  type item = Line of string | Too_long of int

  type t = {
    max_line : int;
    pending : Buffer.t;   (* the unterminated tail of the input *)
    out : item Queue.t;
    mutable dropped : int;  (* bytes discarded past the cap; 0 = not overflowing *)
  }

  let create ?(max_line = default_max_line) () =
    if max_line < 1 then invalid_arg "Wire.Framer.create: max_line < 1";
    { max_line; pending = Buffer.create 1024; out = Queue.create (); dropped = 0 }

  (* a trailing '\r' belongs to a CRLF terminator, not the payload *)
  let finish_line t =
    let line = Buffer.contents t.pending in
    Buffer.clear t.pending;
    let n = String.length line in
    if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line

  let feed t bytes ofs len =
    if ofs < 0 || len < 0 || ofs + len > Bytes.length bytes then
      invalid_arg "Wire.Framer.feed: bad range";
    for i = ofs to ofs + len - 1 do
      let c = Bytes.get bytes i in
      if t.dropped > 0 then
        if c = '\n' then begin
          (* the oversized line finally ended; report its total size *)
          Queue.add (Too_long (t.max_line + t.dropped)) t.out;
          t.dropped <- 0
        end
        else t.dropped <- t.dropped + 1
      else if c = '\n' then Queue.add (Line (finish_line t)) t.out
      else if Buffer.length t.pending >= t.max_line then begin
        (* cap tripped: free the buffered prefix immediately — holding
           it is exactly the OOM a newline-less flood aims for *)
        Buffer.clear t.pending;
        t.dropped <- 1
      end
      else Buffer.add_char t.pending c
    done

  let pop t = Queue.take_opt t.out

  let partial t = Buffer.length t.pending > 0 || t.dropped > 0

  let overflowing t = t.dropped > 0
end

(* ------------------------------------------------------------------ *)
(* Accessors *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_float = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | Null -> Some Float.nan
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Measurement matrices *)

let mat_to_json m =
  let rows, cols = Linalg.Mat.dims m in
  List
    (List.init rows (fun i ->
         List
           (List.init cols (fun j ->
                let v = Linalg.Mat.get m i j in
                if Float.is_finite v then Float v else Null))))

let mat_of_json ~cols j =
  match j with
  | List [] -> Error "empty batch"
  | List rows ->
    let nrows = List.length rows in
    let m = Linalg.Mat.create nrows cols in
    let rec fill i = function
      | [] -> Ok m
      | List cells :: rest ->
        if List.length cells <> cols then
          Error
            (Printf.sprintf "die %d has %d measurements, expected %d" i
               (List.length cells) cols)
        else begin
          let bad = ref None in
          List.iteri
            (fun k cell ->
              match to_float cell with
              | Some v -> Linalg.Mat.set m i k v
              | None ->
                if !bad = None then
                  bad := Some (Printf.sprintf "die %d entry %d is not a number" i k))
            cells;
          match !bad with None -> fill (i + 1) rest | Some msg -> Error msg
        end
      | _ :: _ -> Error (Printf.sprintf "die %d is not an array" i)
    in
    fill 0 rows
  | _ -> Error "dies must be an array of arrays"
