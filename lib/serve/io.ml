(* Timeout-wrapped socket primitives.

   Every read, write and connect the serving and chaos layers perform
   goes through this module: each call carries an explicit wall-clock
   budget, so no peer — slow, stalled or malicious — can pin a thread on
   a bare blocking syscall. The pathsel-lint rule [no-unbounded-io]
   enforces the routing: a raw Unix.read/write/connect anywhere else
   under lib/serve/ or lib/chaos/ is a lint error, and this file is the
   single allowlisted home for them.

   [wait_readable]/[wait_writable] are the fixed version of the old
   [Serve.readable]: they report `Timeout and `Interrupted (EINTR) as
   distinct outcomes instead of collapsing both to [false], which is
   what let a deadline expiry silently re-loop. *)

exception Timeout
(* the wall-clock budget expired before the operation completed *)

exception Closed
(* the peer is gone: zero-byte write, EPIPE or ECONNRESET *)

type readiness = [ `Ready | `Timeout | `Interrupted ]

let wait_readable fd timeout : readiness =
  match Unix.select [ fd ] [] [] timeout with
  | [], _, _ -> `Timeout
  | _ -> `Ready
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> `Interrupted

let wait_writable fd timeout : readiness =
  match Unix.select [] [ fd ] [] timeout with
  | _, [], _ -> `Timeout
  | _ -> `Ready
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> `Interrupted

let now () = Unix.gettimeofday ()

(* remaining budget; clamped at 0 because a negative select timeout
   means "block forever", the one thing this module exists to prevent *)
let remaining deadline = Float.max 0.0 (deadline -. now ())

type read_result = Data of int | Eof | Read_timeout

(* One chunk read with a deadline. EINTR and spurious wakeups re-wait
   on the remaining budget; a reset peer reads as [Eof] (the connection
   is equally gone either way). *)
let read fd buf ofs len ~timeout =
  let deadline = now () +. timeout in
  let rec go () =
    match wait_readable fd (remaining deadline) with
    | `Timeout -> Read_timeout
    | `Interrupted -> if now () >= deadline then Read_timeout else go ()
    | `Ready -> (
      match Unix.read fd buf ofs len with
      | 0 -> Eof
      | k -> Data k
      | exception
          Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
        ->
        if now () >= deadline then Read_timeout else go ()
      | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> Eof)
  in
  go ()

(* Write the whole string or raise: [Timeout] when the budget runs out
   mid-write (slow-loris reader), [Closed] when the peer is gone. *)
let write_all fd s ~timeout =
  let deadline = now () +. timeout in
  let len = String.length s in
  let off = ref 0 in
  while !off < len do
    match wait_writable fd (remaining deadline) with
    | `Timeout -> raise Timeout
    | `Interrupted -> if now () >= deadline then raise Timeout
    | `Ready -> (
      match Unix.write_substring fd s !off (len - !off) with
      | 0 -> raise Closed
      | k -> off := !off + k
      | exception
          Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
        ->
        if now () >= deadline then raise Timeout
      | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
        raise Closed)
  done

(* Non-blocking connect with a deadline; the fd is returned to blocking
   mode (the wrappers above carry their own budgets via select).
   EAGAIN — a Unix-domain listen backlog at capacity — is re-raised for
   the caller's retry policy rather than waited on: select would report
   writability without an established connection. *)
let connect fd sa ~timeout =
  Unix.set_nonblock fd;
  let deadline = now () +. timeout in
  let finish () = Unix.clear_nonblock fd in
  let rec await () =
    match wait_writable fd (remaining deadline) with
    | `Timeout ->
      finish ();
      raise Timeout
    | `Interrupted -> if now () >= deadline then (finish (); raise Timeout) else await ()
    | `Ready -> (
      match Unix.getsockopt_error fd with
      | None -> finish ()
      | Some err ->
        finish ();
        raise (Unix.Unix_error (err, "connect", "")))
  in
  match Unix.connect fd sa with
  | () -> finish ()
  | exception Unix.Unix_error ((Unix.EINPROGRESS | Unix.EINTR), _, _) -> await ()
  | exception e ->
    finish ();
    raise e
