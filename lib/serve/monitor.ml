(* Single-writer state machine: everything below the Atomics is touched
   only by the monitor thread ([step]/[swapped]); workers talk to it
   exclusively through [submit] (CAS push) and [read]/[coefficients]
   (snapshot gets). Nothing here may block — see the
   no-blocking-in-monitor lint rule. *)

type config = {
  calibrate : int;
  drift : Stats.Drift.config;
  max_groups : int;
  min_dies : int;
  buffer : int;
  refit_min : int;
  refit_ridge : float;
  refit_resync_every : int;
  cooldown : float;
  max_backoff : float;
  pending_cap : int;
}

let default_config =
  {
    calibrate = 32;
    drift = Stats.Drift.default_config;
    max_groups = 64;
    min_dies = 64;
    buffer = 256;
    refit_min = 16;
    refit_ridge = 1e-3;
    refit_resync_every = 64;
    cooldown = 5.0;
    max_backoff = 60.0;
    pending_cap = 4096;
  }

type obs = {
  measured : float array;
  truth : float array;
  full : float array;
  resid : float;
  wafer : string;
}

type report = {
  observed : int;
  skipped : int;
  dropped : int;
  calibrating : bool;
  state : Stats.Drift.state;
  cusum : float;
  var_ratio : float;
  quarantined : bool;
  groups : int;
  group_overflow : int;
  monitor_errors : int;
  refit_dies : int;
  refit_resyncs : int;
  reselects : int;
  reselect_failures : int;
  last_reselect_ms : float;
  backoff_s : float;
  last_error : string;
}

let initial_report =
  {
    observed = 0;
    skipped = 0;
    dropped = 0;
    calibrating = true;
    state = Stats.Drift.Healthy;
    cusum = 0.0;
    var_ratio = Float.nan;
    quarantined = false;
    groups = 0;
    group_overflow = 0;
    monitor_errors = 0;
    refit_dies = 0;
    refit_resyncs = 0;
    reselects = 0;
    reselect_failures = 0;
    last_reselect_ms = Float.nan;
    backoff_s = 0.0;
    last_error = "";
  }

type t = {
  cfg : config;
  n_paths : int;
  reselect : Linalg.Mat.t -> (int * int * float, string) result;
  (* worker-facing; each pending entry carries its WAL sequence number
     (0 when durability is off) *)
  pending : (int * obs) list Atomic.t;
  pending_n : int Atomic.t;
  dropped : int Atomic.t;
  published : report Atomic.t;
  coeffs : (Linalg.Mat.t * int) option Atomic.t;
  (* monitor-thread state *)
  mutable r : int;
  mutable m : int;
  mutable grouped : Stats.Drift.Grouped.t;
      (* per-wafer detectors, lazily keyed; mutable only for [restore] *)
  mutable refit : Core.Refit.t;
  ring : float array array; (* recent full dies, circular *)
  mutable ring_n : int; (* total dies ever accepted into the ring *)
  mutable observed : int;
  mutable skipped : int;
  mutable errors : int;
  mutable reselects : int;
  mutable reselect_failures : int;
  mutable last_reselect_ms : float;
  mutable backoff : float;
  mutable next_attempt : float;
  mutable self_swap : bool;
      (* the next [swapped] is our own re-selection landing, not an
         operator reload: keep the post-reselect cooldown *)
  mutable last_error : string;
  mutable applied_seq : int;
      (* highest WAL sequence number folded into this state; 0 when
         durability is off. Recovery replays only records above it,
         and a journaled record that arrives twice (checkpoint taken
         after it, then replayed) is ignored — replay is idempotent. *)
}

let check_config cfg =
  (* the detector itself is only built once calibration completes, on
     the monitor thread — validating its config here instead makes bad
     CLI thresholds (e.g. --drift-warn above --drift-threshold) fail at
     startup rather than kill the monitor mid-stream *)
  Stats.Drift.check_config cfg.drift;
  if cfg.calibrate < 2 then invalid_arg "Monitor: calibrate < 2";
  if cfg.max_groups < 1 then invalid_arg "Monitor: max_groups < 1";
  if cfg.min_dies < 1 then invalid_arg "Monitor: min_dies < 1";
  if cfg.buffer < cfg.min_dies then invalid_arg "Monitor: buffer < min_dies";
  if cfg.refit_min < 1 then invalid_arg "Monitor: refit_min < 1";
  if not (cfg.cooldown > 0.0) then invalid_arg "Monitor: cooldown must be > 0";
  if cfg.max_backoff < cfg.cooldown then
    invalid_arg "Monitor: max_backoff < cooldown";
  if cfg.pending_cap < 1 then invalid_arg "Monitor: pending_cap < 1"

let create ?(config = default_config) ~n_paths ~r ~m ~reselect () =
  check_config config;
  if r < 1 || m < 1 || r + m <> n_paths then
    invalid_arg "Monitor.create: need r >= 1, m >= 1, r + m = n_paths";
  {
    cfg = config;
    n_paths;
    reselect;
    pending = Atomic.make [];
    pending_n = Atomic.make 0;
    dropped = Atomic.make 0;
    published = Atomic.make initial_report;
    coeffs = Atomic.make None;
    r;
    m;
    grouped =
      Stats.Drift.Grouped.create ~config:config.drift
        ~calibrate:config.calibrate ~max_groups:config.max_groups ();
    refit =
      Core.Refit.create ~ridge:config.refit_ridge
        ~resync_every:config.refit_resync_every ~r ~m ();
    ring = Array.make config.buffer [||];
    ring_n = 0;
    observed = 0;
    skipped = 0;
    errors = 0;
    reselects = 0;
    reselect_failures = 0;
    last_reselect_ms = Float.nan;
    backoff = 0.0;
    next_attempt = 0.0;
    self_swap = false;
    last_error = "";
    applied_seq = 0;
  }

let n_paths t = t.n_paths

let submit ?(seq = 0) t o =
  (* claim a slot first (fetch-and-add, rolled back on overflow) so
     concurrent submits cannot all pass a check-then-increment and blow
     past the cap together. Journaled records (seq > 0) bypass the shed
     cap: their producer is already throttled by the WAL fsync, and
     dropping a record the server acked as journaled would poison the
     checkpoint watermark — a later sequence number would mark the
     dropped one as applied, and recovery would never replay it. *)
  let admitted =
    if seq > 0 then begin
      ignore (Atomic.fetch_and_add t.pending_n 1);
      true
    end
    else if Atomic.fetch_and_add t.pending_n 1 >= t.cfg.pending_cap then begin
      ignore (Atomic.fetch_and_add t.pending_n (-1));
      Atomic.incr t.dropped;
      false
    end
    else true
  in
  if admitted then begin
    let rec push () =
      let cur = Atomic.get t.pending in
      if not (Atomic.compare_and_set t.pending cur ((seq, o) :: cur)) then
        push ()
    in
    push ()
  end

let read t = Atomic.get t.published
let coefficients t = Atomic.get t.coeffs

let publish t =
  let g = t.grouped in
  Atomic.set t.published
    {
      observed = t.observed;
      skipped = t.skipped;
      dropped = Atomic.get t.dropped;
      calibrating = Stats.Drift.Grouped.calibrating g;
      state = Stats.Drift.Grouped.state g;
      cusum = Stats.Drift.Grouped.cusum g;
      var_ratio =
        (match Stats.Drift.Grouped.variance_ratio g with
         | Some v -> v
         | None -> Float.nan);
      quarantined = Stats.Drift.Grouped.quarantined g;
      groups = Stats.Drift.Grouped.group_count g;
      group_overflow = Stats.Drift.Grouped.overflowed g;
      monitor_errors = t.errors;
      refit_dies = Core.Refit.count t.refit;
      refit_resyncs = Core.Refit.resyncs t.refit;
      reselects = t.reselects;
      reselect_failures = t.reselect_failures;
      last_reselect_ms = t.last_reselect_ms;
      backoff_s = t.backoff;
      last_error = t.last_error;
    }

(* Restart detector + refit against a fresh artifact split; the ring of
   full dies is artifact-independent and survives. Re-selection pacing
   (backoff/next_attempt) is deliberately untouched: clearing it here
   would erase the post-reselect cooldown the moment our own swap lands
   back through [swapped]. *)
let restart t ~r ~m =
  if r < 1 || m < 1 || r + m <> t.n_paths then
    invalid_arg "Monitor: swapped artifact has an incompatible path split";
  t.r <- r;
  t.m <- m;
  Stats.Drift.Grouped.restart t.grouped;
  t.refit <-
    Core.Refit.create ~ridge:t.cfg.refit_ridge
      ~resync_every:t.cfg.refit_resync_every ~r ~m ();
  Atomic.set t.coeffs None

let swapped t ~r ~m =
  restart t ~r ~m;
  (* an operator swap is a fresh start — clear re-selection pacing; our
     own reselect's swap keeps the cooldown set when it succeeded *)
  if not t.self_swap then begin
    t.backoff <- 0.0;
    t.next_attempt <- 0.0
  end;
  t.self_swap <- false;
  publish t

let note_error t msg =
  t.errors <- t.errors + 1;
  t.last_error <- msg;
  publish t

let feed_detector t o =
  (* per-wafer calibration + detection; flat streams (no wafer id) all
     land in the default group, which behaves like the old single
     detector *)
  ignore (Stats.Drift.Grouped.observe t.grouped ~group:o.wafer o.resid)

let ingest t seq o =
  if seq > 0 && seq <= t.applied_seq then
    (* already folded in before the crash that triggered this replay *)
    ()
  else begin
    (if
       Array.length o.measured <> t.r
       || Array.length o.truth <> t.m
       || Array.length o.full <> t.n_paths
     then t.skipped <- t.skipped + 1
     else
       match Core.Refit.observe t.refit ~measured:o.measured ~truth:o.truth with
       | false ->
         (* non-finite die: the refit moments stay clean; the residual
            still goes to the detector, whose quarantine logic owns
            pathological input *)
         t.skipped <- t.skipped + 1;
         feed_detector t o
       | true ->
         t.observed <- t.observed + 1;
         t.ring.(t.ring_n mod t.cfg.buffer) <- Array.copy o.full;
         t.ring_n <- t.ring_n + 1;
         feed_detector t o
       | exception Invalid_argument _ ->
         (* the fail-safe: a malformed observation is dropped and counted;
            it must never take the monitor (let alone the server) down *)
         t.errors <- t.errors + 1);
    if seq > t.applied_seq then t.applied_seq <- seq
  end

let recent_dies t =
  let k = Int.min t.ring_n t.cfg.buffer in
  let base = t.ring_n - k in
  Linalg.Mat.init k t.n_paths (fun i j ->
      t.ring.((base + i) mod t.cfg.buffer).(j))

let maybe_reselect t ~now =
  let drifted = Stats.Drift.Grouped.drifted_active t.grouped in
  if
    drifted
    && Int.min t.ring_n t.cfg.buffer >= t.cfg.min_dies
    && now >= t.next_attempt
  then begin
    match t.reselect (recent_dies t) with
    | Ok (r, m, ms) ->
      t.reselects <- t.reselects + 1;
      t.last_reselect_ms <- ms;
      t.last_error <- "";
      t.self_swap <- true;
      restart t ~r ~m;
      t.backoff <- 0.0;
      t.next_attempt <- now +. t.cfg.cooldown
    | Error msg ->
      t.reselect_failures <- t.reselect_failures + 1;
      t.last_error <- msg;
      t.backoff <-
        (if t.backoff > 0.0 then Float.min t.cfg.max_backoff (t.backoff *. 2.0)
         else t.cfg.cooldown);
      t.next_attempt <- now +. t.backoff
  end

let publish_coeffs t =
  if Core.Refit.count t.refit >= t.cfg.refit_min then
    Atomic.set t.coeffs
      (Some (Core.Refit.coefficients t.refit, Core.Refit.count t.refit))

let step t ~now =
  let batch = List.rev (Atomic.exchange t.pending []) in
  (* release exactly the slots we drained: a submit that claimed its
     slot but has not pushed yet keeps it, so zeroing here would leak
     its count (and under-admit until the next drain) *)
  (match batch with
   | [] -> ()
   | _ :: _ ->
     ignore (Atomic.fetch_and_add t.pending_n (-(List.length batch))));
  List.iter (fun (seq, o) -> ingest t seq o) batch;
  (match batch with [] -> () | _ :: _ -> publish_coeffs t);
  maybe_reselect t ~now;
  publish t

(* ------------------------------------------------------------------ *)
(* Durability: the monitor-thread state is snapshotted into an inert,
   canonical record (ring rows in chronological order, group table
   sorted) that the serving layer's checkpoint writer serializes with
   the artifact codec. [restore] + [replay] over the WAL suffix land
   bit-exactly on the state an uninterrupted run would hold — the
   recovery property in test/test_monitor.ml. *)

type snapshot = {
  snap_r : int;
  snap_m : int;
  snap_applied_seq : int;
  snap_ring : float array array;
      (* the live window, oldest first: min(ring_n, buffer) rows *)
  snap_ring_n : int;
  snap_observed : int;
  snap_skipped : int;
  snap_dropped : int;
  snap_errors : int;
  snap_reselects : int;
  snap_reselect_failures : int;
  snap_last_reselect_ms : float;
  snap_backoff : float;
  snap_next_attempt : float;
  snap_self_swap : bool;
  snap_last_error : string;
  snap_refit : Core.Refit.snapshot;
  snap_drift : Stats.Drift.Grouped.group_snapshot;
}

let snapshot t =
  let k = Int.min t.ring_n t.cfg.buffer in
  let base = t.ring_n - k in
  {
    snap_r = t.r;
    snap_m = t.m;
    snap_applied_seq = t.applied_seq;
    snap_ring =
      Array.init k (fun i -> Array.copy t.ring.((base + i) mod t.cfg.buffer));
    snap_ring_n = t.ring_n;
    snap_observed = t.observed;
    snap_skipped = t.skipped;
    snap_dropped = Atomic.get t.dropped;
    snap_errors = t.errors;
    snap_reselects = t.reselects;
    snap_reselect_failures = t.reselect_failures;
    snap_last_reselect_ms = t.last_reselect_ms;
    snap_backoff = t.backoff;
    snap_next_attempt = t.next_attempt;
    snap_self_swap = t.self_swap;
    snap_last_error = t.last_error;
    snap_refit = Core.Refit.snapshot t.refit;
    snap_drift = Stats.Drift.Grouped.snapshot t.grouped;
  }

let restore ?(config = default_config) ~n_paths ~reselect s =
  let t = create ~config ~n_paths ~r:s.snap_r ~m:s.snap_m ~reselect () in
  (* re-inserting the snapshot rows in chronological order reproduces
     the raw circular layout exactly when the buffer size is unchanged,
     and degrades gracefully (keeping the newest rows) when an operator
     shrank or grew it between runs *)
  let k = Array.length s.snap_ring in
  if k > s.snap_ring_n then
    invalid_arg "Monitor.restore: ring larger than its own die count";
  let kept = Int.min k config.buffer in
  for i = 0 to kept - 1 do
    t.ring.((s.snap_ring_n - kept + i) mod config.buffer) <-
      Array.copy s.snap_ring.(k - kept + i)
  done;
  t.ring_n <- s.snap_ring_n;
  t.applied_seq <- s.snap_applied_seq;
  t.observed <- s.snap_observed;
  t.skipped <- s.snap_skipped;
  Atomic.set t.dropped s.snap_dropped;
  t.errors <- s.snap_errors;
  t.reselects <- s.snap_reselects;
  t.reselect_failures <- s.snap_reselect_failures;
  t.last_reselect_ms <- s.snap_last_reselect_ms;
  t.backoff <- s.snap_backoff;
  t.next_attempt <- s.snap_next_attempt;
  t.self_swap <- s.snap_self_swap;
  t.last_error <- s.snap_last_error;
  t.refit <- Core.Refit.restore s.snap_refit;
  if Core.Refit.r t.refit <> s.snap_r || Core.Refit.m t.refit <> s.snap_m then
    invalid_arg "Monitor.restore: refit snapshot split mismatch";
  t.grouped <- Stats.Drift.Grouped.restore s.snap_drift;
  publish_coeffs t;
  publish t;
  t

let applied_seq t = t.applied_seq

let replay t records =
  List.iter (fun (seq, o) -> ingest t seq o) records;
  publish_coeffs t;
  publish t
