module Wire = Wire

type address = Unix_sock of string | Tcp of int

let address_of_string s =
  let tcp p =
    match int_of_string_opt p with
    | Some port when port >= 0 && port < 65536 -> Ok (Tcp port)
    | _ -> Error (Printf.sprintf "invalid TCP port %S" p)
  in
  if String.length s > 0 && s.[0] = ':' then tcp (String.sub s 1 (String.length s - 1))
  else if String.length s > 4 && String.sub s 0 4 = "tcp:" then
    tcp (String.sub s 4 (String.length s - 4))
  else if s = "" then Error "empty address"
  else Ok (Unix_sock s)

let address_to_string = function
  | Unix_sock path -> path
  | Tcp port -> Printf.sprintf "127.0.0.1:%d" port

let rec eintr f =
  try f () with Unix.Unix_error (Unix.EINTR, _, _) -> eintr f

(* ------------------------------------------------------------------ *)
(* Server state *)

let latency_window = 4096

type counters = {
  mutable requests : int;
  mutable predicted : int;  (* dies *)
  mutable errors : int;
  lat : float array;        (* ms, ring buffer *)
  mutable lat_n : int;      (* total latencies ever recorded *)
}

type t = {
  artifact : Store.t;
  predictor : Core.Predictor.t;
  robust : Core.Robust.t;
  n_rep : int;
  max_batch : int;
  counters : counters;
  started : float;
  mutable stop : bool;
}

let create ?(max_batch = 4096) artifact =
  if max_batch < 1 then invalid_arg "Serve.create: max_batch < 1";
  (* restore once, up front: the dense weight matrix and the robust
     Gram/cross blocks are the precomputed factors every request reuses *)
  let predictor = Store.predictor artifact in
  let robust = Store.robust artifact in
  {
    artifact;
    predictor;
    robust;
    n_rep = Array.length (Core.Predictor.rep_indices predictor);
    max_batch;
    counters =
      { requests = 0; predicted = 0; errors = 0;
        lat = Array.make latency_window 0.0; lat_n = 0 };
    started = Unix.gettimeofday ();
    stop = false;
  }

let stopping t = t.stop

let record_latency t ms =
  let c = t.counters in
  c.lat.(c.lat_n mod latency_window) <- ms;
  c.lat_n <- c.lat_n + 1

let latency_stats t =
  let c = t.counters in
  let n = min c.lat_n latency_window in
  if n = 0 then Wire.Null
  else begin
    let window = Array.sub c.lat 0 n in
    let sum = Array.fold_left ( +. ) 0.0 window in
    Wire.Obj
      [
        ("min", Wire.Float (Array.fold_left Float.min window.(0) window));
        ("mean", Wire.Float (sum /. float_of_int n));
        ("max", Wire.Float (Array.fold_left Float.max window.(0) window));
        ("p99", Wire.Float (Stats.Descriptive.quantile window 0.99));
        ("window", Wire.Int n);
      ]
  end

(* ------------------------------------------------------------------ *)
(* Request handling *)

let ok_fields op rest = Wire.Obj (("ok", Wire.Bool true) :: ("op", Wire.String op) :: rest)

let error_response ?(code = 65) msg =
  Wire.Obj
    [ ("ok", Wire.Bool false); ("error", Wire.String msg); ("code", Wire.Int code) ]

let handle_stats t =
  let c = t.counters in
  let a = t.artifact in
  ok_fields "stats"
    [
      ("requests", Wire.Int c.requests);
      ("dies_predicted", Wire.Int c.predicted);
      ("errors", Wire.Int c.errors);
      (* pool size behind the batched matrix applies (PATHSEL_DOMAINS /
         --domains); the served bits are identical at any value *)
      ("domains", Wire.Int (Par.Pool.size ()));
      ("uptime_s", Wire.Float (Unix.gettimeofday () -. t.started));
      ("latency_ms", latency_stats t);
      ( "artifact",
        Wire.Obj
          [
            ("fingerprint", Wire.String a.Store.fingerprint);
            ("paths", Wire.Int a.Store.n_paths);
            ("representatives", Wire.Int t.n_rep);
            ("predicted_paths", Wire.Int (a.Store.n_paths - t.n_rep));
            ("t_cons_ps", Wire.Float a.Store.t_cons);
            ("eps", Wire.Float a.Store.eps);
          ] );
    ]

let handle_predict t req =
  match Wire.member "dies" req with
  | None -> error_response "predict: missing \"dies\""
  | Some dies ->
    (match Wire.mat_of_json ~cols:t.n_rep dies with
     | Error msg -> error_response ("predict: " ^ msg)
     | Ok measured ->
       let n_dies, _ = Linalg.Mat.dims measured in
       if n_dies > t.max_batch then
         error_response
           (Printf.sprintf "predict: batch of %d dies exceeds the %d-die limit"
              n_dies t.max_batch)
       else begin
         let dirty_flag =
           match Wire.member "robust" req with Some (Wire.Bool b) -> b | _ -> false
         in
         let has_missing =
           let found = ref false in
           for i = 0 to n_dies - 1 do
             for j = 0 to t.n_rep - 1 do
               if not (Float.is_finite (Linalg.Mat.get measured i j)) then found := true
             done
           done;
           !found
         in
         (* a request that flags dirty data — or one that provably is
            (missing entries) — routes through the fault-tolerant
            predictor and its cached Gram blocks; clean batches take
            the single matrix-matrix apply *)
         let extra, predicted =
           if dirty_flag || has_missing then begin
             let pr = Core.Robust.predict_all t.robust ~measured in
             ( [
                 ("robust", Wire.Bool true);
                 ( "screen",
                   Wire.Obj
                     [
                       ("missing", Wire.Int pr.Core.Robust.screened.Core.Robust.missing);
                       ("outliers", Wire.Int pr.Core.Robust.screened.Core.Robust.outliers);
                       ("resolves", Wire.Int pr.Core.Robust.resolves);
                       ("ridge_fallbacks", Wire.Int pr.Core.Robust.ridge_fallbacks);
                       ("dead_dies", Wire.Int pr.Core.Robust.dead_dies);
                     ] );
               ],
               pr.Core.Robust.predicted )
           end
           else ([ ("robust", Wire.Bool false) ], Core.Predictor.predict_all t.predictor ~measured)
         in
         t.counters.predicted <- t.counters.predicted + n_dies;
         ok_fields "predict"
           (("dies", Wire.Int n_dies)
            :: extra
            @ [ ("predictions", Wire.mat_to_json predicted) ])
       end)

let handle t line =
  let t0 = Unix.gettimeofday () in
  t.counters.requests <- t.counters.requests + 1;
  let response =
    match Wire.parse line with
    | Error msg -> error_response ("parse error: " ^ msg)
    | Ok req ->
      (match Wire.member "op" req with
       | Some (Wire.String "ping") ->
         ok_fields "ping" [ ("version", Wire.Int Store.current_version) ]
       | Some (Wire.String "stats") -> handle_stats t
       | Some (Wire.String "shutdown") ->
         t.stop <- true;
         ok_fields "shutdown" [ ("draining", Wire.Bool true) ]
       | Some (Wire.String "predict") ->
         (* isolate compute errors: a pathological batch answers
            ok:false instead of tearing the connection down *)
         (match Core.Errors.catch (fun () -> handle_predict t req) with
          | Ok resp -> resp
          | Error e ->
            error_response ~code:(Core.Errors.exit_code e) (Core.Errors.to_string e))
       | Some (Wire.String op) -> error_response (Printf.sprintf "unknown op %S" op)
       | Some _ -> error_response "\"op\" must be a string"
       | None -> error_response "request must be an object with an \"op\" field")
  in
  (match response with
   | Wire.Obj (("ok", Wire.Bool false) :: _) -> t.counters.errors <- t.counters.errors + 1
   | _ -> ());
  record_latency t ((Unix.gettimeofday () -. t0) *. 1000.0);
  Wire.print response

(* ------------------------------------------------------------------ *)
(* Socket plumbing *)

(* a zero-byte write on a blocking socket: the peer is gone *)
exception Short_write

let write_all fd s =
  let len = String.length s in
  let off = ref 0 in
  while !off < len do
    let k = eintr (fun () -> Unix.write_substring fd s !off (len - !off)) in
    if k = 0 then raise Short_write;
    off := !off + k
  done

(* true when [fd] is readable before [timeout]; false on timeout or a
   signal interruption (the caller re-checks the stop flag either way) *)
let readable fd timeout =
  match Unix.select [ fd ] [] [] timeout with
  | [], _, _ -> false
  | _ -> true
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> false

let serve_conn t fd =
  let pending = Buffer.create 1024 in
  let lines = Queue.create () in
  let chunk = Bytes.create 65536 in
  let feed k =
    for i = 0 to k - 1 do
      match Bytes.get chunk i with
      | '\n' ->
        Queue.add (Buffer.contents pending) lines;
        Buffer.clear pending
      | c -> Buffer.add_char pending c
    done
  in
  let rec loop () =
    if not (Queue.is_empty lines) then begin
      let line = Queue.pop lines in
      if String.trim line <> "" then write_all fd (handle t line ^ "\n");
      if not t.stop then loop ()
    end
    else if not t.stop then begin
      if readable fd 0.25 then begin
        let k = eintr (fun () -> Unix.read fd chunk 0 (Bytes.length chunk)) in
        if k > 0 then begin
          feed k;
          loop ()
        end (* k = 0: EOF, client done *)
      end
      else loop ()
    end
  in
  loop ()

let listen_on addr =
  match addr with
  | Unix_sock path ->
    if Sys.file_exists path then Sys.remove path;
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.bind fd (Unix.ADDR_UNIX path);
    Unix.listen fd 64;
    (fd, Unix_sock path, fun () -> if Sys.file_exists path then Sys.remove path)
  | Tcp port ->
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt fd Unix.SO_REUSEADDR true;
    Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
    Unix.listen fd 64;
    let bound =
      match Unix.getsockname fd with
      | Unix.ADDR_INET (_, p) -> Tcp p
      | _ -> Tcp port
    in
    (fd, bound, fun () -> ())

let run ?(install_signals = true) ?max_batch ?on_ready artifact addr =
  let t = create ?max_batch artifact in
  (* a client hanging up mid-response must not kill the process *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  if install_signals then begin
    let stop_on _ = t.stop <- true in
    Sys.set_signal Sys.sigint (Sys.Signal_handle stop_on);
    Sys.set_signal Sys.sigterm (Sys.Signal_handle stop_on)
  end;
  let lfd, bound, cleanup = listen_on addr in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close lfd with Unix.Unix_error _ -> ());
      cleanup ())
    (fun () ->
      Option.iter (fun f -> f bound) on_ready;
      while not t.stop do
        if readable lfd 0.25 then begin
          match eintr (fun () -> Unix.accept lfd) with
          | exception Unix.Unix_error _ -> ()
          | cfd, _ ->
            (* one bad client never kills the accept loop *)
            (try serve_conn t cfd
             with Unix.Unix_error _ | Short_write | Sys_error _ ->
               t.counters.errors <- t.counters.errors + 1);
            (try Unix.close cfd with Unix.Unix_error _ -> ())
        end
      done)

(* ------------------------------------------------------------------ *)
(* Client *)

module Client = struct
  type conn = {
    fd : Unix.file_descr;
    pending : Buffer.t;
    chunk : Bytes.t;
    lines : string Queue.t;
  }

  let sockaddr_of = function
    | Unix_sock path -> Unix.ADDR_UNIX path
    | Tcp port -> Unix.ADDR_INET (Unix.inet_addr_loopback, port)

  let connect ?(retries = 50) addr =
    let sa = sockaddr_of addr in
    let domain = match addr with Unix_sock _ -> Unix.PF_UNIX | Tcp _ -> Unix.PF_INET in
    let rec go n =
      let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
      match eintr (fun () -> Unix.connect fd sa) with
      | () ->
        { fd; pending = Buffer.create 1024; chunk = Bytes.create 65536;
          lines = Queue.create () }
      | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _) when n > 0
        ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        Unix.sleepf 0.1;
        go (n - 1)
      | exception e ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        raise e
    in
    go retries

  let close c = try Unix.close c.fd with Unix.Unix_error _ -> ()

  let read_line c =
    let rec go () =
      if not (Queue.is_empty c.lines) then Some (Queue.pop c.lines)
      else begin
        let k = eintr (fun () -> Unix.read c.fd c.chunk 0 (Bytes.length c.chunk)) in
        if k = 0 then None
        else begin
          for i = 0 to k - 1 do
            match Bytes.get c.chunk i with
            | '\n' ->
              Queue.add (Buffer.contents c.pending) c.lines;
              Buffer.clear c.pending
            | ch -> Buffer.add_char c.pending ch
          done;
          go ()
        end
      end
    in
    go ()

  let request c req =
    match
      write_all c.fd (Wire.print req ^ "\n");
      read_line c
    with
    | Some line -> Wire.parse line
    | None -> Error "connection closed by server"
    | exception Unix.Unix_error (e, _, _) ->
      Error (Printf.sprintf "socket error: %s" (Unix.error_message e))
    | exception Short_write -> Error "short write: connection lost"

  let ping c =
    match request c (Wire.Obj [ ("op", Wire.String "ping") ]) with
    | Ok resp -> Wire.member "ok" resp = Some (Wire.Bool true)
    | Error _ -> false

  let stats c = request c (Wire.Obj [ ("op", Wire.String "stats") ])

  let predict c ?(robust = false) measured =
    let req =
      Wire.Obj
        [
          ("op", Wire.String "predict");
          ("robust", Wire.Bool robust);
          ("dies", Wire.mat_to_json measured);
        ]
    in
    match request c req with
    | Error msg -> Error msg
    | Ok resp ->
      if Wire.member "ok" resp <> Some (Wire.Bool true) then
        Error
          (match Wire.member "error" resp with
           | Some (Wire.String msg) -> msg
           | _ -> "server refused the request")
      else begin
        match Wire.member "predictions" resp with
        | Some (Wire.List rows as preds) ->
          let cols =
            match rows with Wire.List cells :: _ -> List.length cells | _ -> 0
          in
          (match Wire.mat_of_json ~cols preds with
           | Ok m -> Ok (m, resp)
           | Error msg -> Error ("bad predictions payload: " ^ msg))
        | _ -> Error "response carries no predictions"
      end

  let shutdown c =
    match request c (Wire.Obj [ ("op", Wire.String "shutdown") ]) with
    | Ok _ | Error _ -> ()
end
