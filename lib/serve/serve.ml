module Wire = Wire
module Io = Io
module Monitor = Monitor
module Durable = Durable

type address = Unix_sock of string | Tcp of int

let address_of_string s =
  let tcp p =
    match int_of_string_opt p with
    | Some port when port >= 0 && port < 65536 -> Ok (Tcp port)
    | _ -> Error (Printf.sprintf "invalid TCP port %S" p)
  in
  if String.length s > 0 && s.[0] = ':' then tcp (String.sub s 1 (String.length s - 1))
  else if String.length s > 4 && String.sub s 0 4 = "tcp:" then
    tcp (String.sub s 4 (String.length s - 4))
  else if s = "" then Error "empty address"
  else Ok (Unix_sock s)

let address_to_string = function
  | Unix_sock path -> path
  | Tcp port -> Printf.sprintf "127.0.0.1:%d" port

(* ------------------------------------------------------------------ *)
(* Configuration *)

(* durability: journal every accepted observe to a WAL before the ack
   leaves, checkpoint the monitor state periodically, and recover
   checkpoint + WAL suffix at boot *)
type durability = {
  wal_dir : string;          (* WAL segments + checkpoint live here *)
  checkpoint_every : int;    (* journaled records between checkpoints *)
  wal_segment_bytes : int;   (* segment rotation threshold *)
  wal_retain : int;          (* sealed covered segments kept by prune *)
}

let default_durability =
  {
    wal_dir = "pathsel-wal";
    checkpoint_every = 256;
    wal_segment_bytes = Store.Wal.default_config.Store.Wal.segment_bytes;
    wal_retain = Store.Wal.default_config.Store.Wal.retain_segments;
  }

type config = {
  max_batch : int;      (* dies accepted per predict request *)
  max_line : int;       (* request line byte cap (Wire.Framer) *)
  workers : int;        (* connection worker threads; 0 = from the pool size *)
  queue : int;          (* accepted connections waiting for a worker *)
  deadline : float;     (* per-request wall-clock budget, seconds *)
  idle_timeout : float; (* silent-connection reap, seconds *)
  monitor : Monitor.config option; (* arm the self-healing loop *)
  durability : durability option;  (* arm the WAL + checkpoint layer *)
}

let default_config =
  {
    max_batch = 4096;
    max_line = Wire.default_max_line;
    workers = 0;
    queue = 64;
    deadline = 10.0;
    idle_timeout = 60.0;
    monitor = None;
    durability = None;
  }

(* I/O concurrency rides cheap systhreads sized from the compute pool:
   blocked reads release the runtime lock, and the dense kernels behind
   each request still run on the Par.Pool domains *)
let resolved_workers cfg =
  if cfg.workers > 0 then cfg.workers
  else Int.max 2 (Int.min 8 (Par.Pool.size ()))

let check_config cfg =
  if cfg.max_batch < 1 then invalid_arg "Serve: max_batch < 1";
  if cfg.max_line < 64 then invalid_arg "Serve: max_line < 64";
  if cfg.workers < 0 then invalid_arg "Serve: workers < 0";
  if cfg.queue < 1 then invalid_arg "Serve: queue < 1";
  if not (cfg.deadline > 0.0) then invalid_arg "Serve: deadline must be > 0";
  if not (cfg.idle_timeout > 0.0) then invalid_arg "Serve: idle_timeout must be > 0";
  match cfg.durability with
  | None -> ()
  | Some d ->
    (* the WAL journals observations; without a monitor there is nothing
       to journal or recover, so an armed-but-pointless combination is a
       config error, not a silent no-op *)
    if cfg.monitor = None then
      invalid_arg "Serve: durability requires the monitor to be armed";
    if d.wal_dir = "" then invalid_arg "Serve: wal_dir is empty";
    if d.checkpoint_every < 1 then invalid_arg "Serve: checkpoint_every < 1";
    if d.wal_segment_bytes < 1024 then
      invalid_arg "Serve: wal_segment_bytes < 1024";
    if d.wal_retain < 1 then invalid_arg "Serve: wal_retain < 1"

(* ------------------------------------------------------------------ *)
(* Server state *)

let latency_window = 4096

type counters = {
  mutable requests : int;
  mutable predicted : int;        (* dies *)
  mutable yields : int;           (* yield estimates served *)
  mutable tuned : int;            (* dies configured by the tune op *)
  mutable tune_infeasible : int;  (* tune requests refused: timing unmet *)
  mutable errors : int;
  mutable shed : int;             (* connections refused with "overloaded" *)
  mutable timeouts : int;         (* request deadlines expired (read or write) *)
  mutable idle_closed : int;      (* silent connections reaped *)
  mutable overflows : int;        (* request lines past the byte cap *)
  mutable reloads : int;          (* successful SIGHUP artifact swaps *)
  mutable reload_failures : int;  (* SIGHUP loads rejected (bad artifact) *)
  lat : float array;              (* ms, ring buffer *)
  mutable lat_n : int;            (* total latencies ever recorded *)
}

(* everything a request needs from the artifact, swapped atomically on
   reload: a request snapshots this once and finishes on its snapshot.
   [gen] counts swaps, starting at 1, and rides every ok response so
   clients can correlate predictions with the model that made them *)
type hot = {
  artifact : Store.t;
  predictor : Core.Predictor.t;
  robust : Core.Robust.t;
  n_rep : int;
  gen : int;
}

(* runtime state of the durability layer. The journal mutex [jm] is the
   load-bearing piece: it serializes WAL append + monitor submit so the
   monitor ingests observations in strictly increasing sequence order —
   without it a checkpoint's applied_seq could cover an acked record the
   monitor had not ingested yet, and recovery would skip it. The
   checkpoint watermarks are Atomics because the monitor thread writes
   them while stats handlers read them. *)
type dur_state = {
  dur_cfg : durability;
  wal : Store.Wal.t;
  ckpt_path : string;
  jm : Mutex.t;
  ckpt_seq : int Atomic.t;  (* applied_seq in the last checkpoint *)
  ckpt_gen : int Atomic.t;  (* generation in the last checkpoint *)
}

let checkpoint_file = "checkpoint.psc"

type t = {
  cfg : config;
  hot : hot Atomic.t;
  dur : dur_state option;
  reload_from : string option;
  reload_requested : bool Atomic.t;
  stop_flag : bool Atomic.t;
  counters : counters;
  cm : Mutex.t;  (* guards [counters]; workers update them concurrently *)
  started : float;
  mon : Monitor.t option Atomic.t;
      (* written once at create, cleared (only) by the monitor thread if
         an incompatible artifact is swapped in; handlers read it from
         their own threads, so the cell must be Atomic *)
  mon_resync : bool Atomic.t;
      (* an artifact swap happened: the monitor thread must re-anchor
         its detector/refit before the next step (it alone may touch
         monitor internals, so the swap path only raises this flag) *)
}

let hot_of_artifact ?(gen = 1) artifact =
  (* restore once, up front: the dense weight matrix and the robust
     Gram/cross blocks are the precomputed factors every request reuses *)
  let predictor = Store.predictor artifact in
  {
    artifact;
    predictor;
    robust = Store.robust artifact;
    n_rep = Array.length (Core.Predictor.rep_indices predictor);
    gen;
  }

let create_raw ?(config = default_config) ?(gen = 1) ?dur ?reload_from artifact =
  check_config config;
  {
    cfg = config;
    hot = Atomic.make (hot_of_artifact ~gen artifact);
    dur;
    reload_from;
    reload_requested = Atomic.make false;
    stop_flag = Atomic.make false;
    counters =
      {
        requests = 0;
        predicted = 0;
        yields = 0;
        tuned = 0;
        tune_infeasible = 0;
        errors = 0;
        shed = 0;
        timeouts = 0;
        idle_closed = 0;
        overflows = 0;
        reloads = 0;
        reload_failures = 0;
        lat = Array.make latency_window 0.0;
        lat_n = 0;
      };
    cm = Mutex.create ();
    started = Unix.gettimeofday ();
    mon = Atomic.make None;
    mon_resync = Atomic.make false;
  }

let stopping t = Atomic.get t.stop_flag

(* counter updates never raise, so a plain lock/unlock pair is safe.
   The analyzer flags the lock as monitor-reachable (reselect ->
   do_reload -> tick): that is by design — [t.cm] guards only the
   counters record, the critical section is a handful of field writes
   and is never held across I/O, so the monitor thread cannot stall on
   a request here. *)
let tick t f =
  (* lint: allow-next monitor-blocking *)
  Mutex.lock t.cm;
  f t.counters;
  Mutex.unlock t.cm

(* ------------------------------------------------------------------ *)
(* Reload and background re-selection *)

let do_reload t =
  match t.reload_from with
  | None -> Error "no reload path configured"
  | Some path ->
    (* load + CRC-verify off to the side; only a good artifact is
       swapped in, and in-flight requests finish on their snapshot *)
    (match Store.load path with
     | Ok artifact ->
       (* compare-and-set retry: a SIGHUP reload on the main loop can
          race the monitor thread's auto-reselect swap, and a plain
          read-modify-write could mint duplicate generations or lose a
          swap — the gen bump must be atomic for the client's
          mid-stream generation-change warning to mean anything *)
       let rec swap () =
         let cur = Atomic.get t.hot in
         if
           not
             (Atomic.compare_and_set t.hot cur
                (hot_of_artifact ~gen:(cur.gen + 1) artifact))
         then swap ()
       in
       swap ();
       (* monitor internals belong to the monitor thread; the swap path
          only raises a flag for it to re-anchor on its next step *)
       Atomic.set t.mon_resync true;
       (* both the SIGHUP path (serving side) and the monitor's
          auto-reselect write these counters, but always under [t.cm]
          via [tick]; the race rule does not model lock-guarded state *)
       (* lint: allow-next shared-mutable-race *)
       tick t (fun c -> c.reloads <- c.reloads + 1);
       Ok ()
     | Error e ->
       (* lint: allow-next shared-mutable-race *)
       tick t (fun c -> c.reload_failures <- c.reload_failures + 1);
       Error (Core.Errors.to_string e))

(* strip a previous provenance suffix so fingerprints don't snowball
   across repeated re-selections *)
let fingerprint_base fp =
  let marker = " [reselect" in
  let lm = String.length marker in
  let n = String.length fp in
  let rec find i =
    if i + lm > n then n
    else if String.sub fp i lm = marker then i
    else find (i + 1)
  in
  String.sub fp 0 (find 0)

(* The monitor's reselect callback: rebuild the variation model
   empirically from recent fully measured dies, re-run the paper's
   selection at the artifact's stored eps/t_cons, persist crash-safely
   with Store.save, and swap through the same CRC-verified reload path
   SIGHUP uses. Runs on the monitor thread, off the hot path; any
   failure leaves the old artifact serving. *)
let reselect_from_recent t recent =
  match t.reload_from with
  | None ->
    Error "auto-reselect needs a reload path (start the server with reload_from)"
  | Some path ->
    let t0 = Unix.gettimeofday () in
    let n_dies, n_paths = Linalg.Mat.dims recent in
    if n_dies < 2 then Error "too few recent dies to re-select from"
    else begin
      let hot = Atomic.get t.hot in
      let art = hot.artifact in
      match
        Core.Errors.catch (fun () ->
            (* empirical nominal + centered/scaled die samples as A:
               the sample covariance of the recent dies is A A^T, which
               is everything Select/Predictor/Robust consume *)
            let mu =
              Array.init n_paths (fun j ->
                  let s = ref 0.0 in
                  for i = 0 to n_dies - 1 do
                    s := !s +. Linalg.Mat.get recent i j
                  done;
                  !s /. float_of_int n_dies)
            in
            let scale = 1.0 /. sqrt (float_of_int (n_dies - 1)) in
            let a =
              Linalg.Mat.init n_paths n_dies (fun j i ->
                  (Linalg.Mat.get recent i j -. mu.(j)) *. scale)
            in
            let sel =
              Core.Select.approximate ~a ~mu ~eps:art.Store.eps
                ~t_cons:art.Store.t_cons ()
            in
            let fingerprint =
              Printf.sprintf "%s [reselect gen=%d dies=%d]"
                (fingerprint_base art.Store.fingerprint)
                (hot.gen + 1) n_dies
            in
            Store.of_selection ~fingerprint ~kappa:art.Store.kappa
              ~n_segments:art.Store.n_segments ~t_cons:art.Store.t_cons
              ~eps:art.Store.eps ~a ~mu sel)
      with
      | Error e -> Error ("re-selection failed: " ^ Core.Errors.to_string e)
      | Ok artifact' ->
        (match Store.save path artifact' with
         | Error e -> Error ("artifact save failed: " ^ Core.Errors.to_string e)
         | Ok () ->
           (match do_reload t with
            | Error msg -> Error ("swap failed: " ^ msg)
            | Ok () ->
              let hot' = Atomic.get t.hot in
              Ok
                ( hot'.n_rep,
                  hot'.artifact.Store.n_paths - hot'.n_rep,
                  (Unix.gettimeofday () -. t0) *. 1000.0 )))
    end

let create ?(config = default_config) ?reload_from artifact =
  check_config config;
  (* durability prologue: open (and crash-recover) the WAL and read the
     last checkpoint before the serving state is built, because the boot
     generation is derived from the checkpointed one *)
  let dur, ckpt =
    match config.durability with
    | None -> (None, None)
    | Some d ->
      let wal =
        match
          Store.Wal.open_
            ~config:
              {
                Store.Wal.segment_bytes = d.wal_segment_bytes;
                retain_segments = d.wal_retain;
              }
            d.wal_dir
        with
        | Ok w -> w
        | Error e ->
          Core.Errors.raise_error
            (Core.Errors.Io
               {
                 file = d.wal_dir;
                 msg = "Serve: cannot open WAL: " ^ Core.Errors.to_string e;
               })
      in
      let ckpt_path = Filename.concat d.wal_dir checkpoint_file in
      let ckpt =
        match Durable.load_checkpoint ckpt_path with
        | Ok c -> c
        | Error e ->
          (* a corrupt checkpoint is recoverable: cold-start the monitor
             and replay the whole journal instead *)
          Printf.eprintf
            "pathsel serve: checkpoint %s unreadable (%s); cold start + \
             full WAL replay\n%!"
            ckpt_path (Core.Errors.to_string e);
          None
      in
      ( Some
          {
            dur_cfg = d;
            wal;
            ckpt_path;
            jm = Mutex.create ();
            ckpt_seq =
              Atomic.make
                (match ckpt with
                 | Some (_, s) -> s.Monitor.snap_applied_seq
                 | None -> 0);
            ckpt_gen =
              Atomic.make (match ckpt with Some (g, _) -> g | None -> 0);
          },
        ckpt )
  in
  (* every restart bumps the generation past the checkpointed one, so a
     client watching [gen] sees a recovery as the model swap it is *)
  let gen = match ckpt with Some (g, _) -> g + 1 | None -> 1 in
  let t = create_raw ~config ~gen ?dur ?reload_from artifact in
  (match config.monitor with
   | None -> ()
   | Some mc ->
     let hot = Atomic.get t.hot in
     let n_paths = hot.artifact.Store.n_paths in
     let r = hot.n_rep in
     let m = n_paths - r in
     let reselect recent = reselect_from_recent t recent in
     let fresh () = Monitor.create ~config:mc ~n_paths ~r ~m ~reselect () in
     let mon =
       match ckpt with
       | None -> fresh ()
       | Some (_, snap) ->
         if snap.Monitor.snap_r + snap.Monitor.snap_m <> n_paths then begin
           Printf.eprintf
             "pathsel serve: checkpointed path pool (%d) does not match \
              the artifact (%d paths); discarding monitor state\n%!"
             (snap.Monitor.snap_r + snap.Monitor.snap_m)
             n_paths;
           fresh ()
         end
         else begin
           match Monitor.restore ~config:mc ~n_paths ~reselect snap with
           | mon ->
             if snap.Monitor.snap_r <> r then begin
               (* an operator swapped in an artifact with a different
                  split while the server was down: the ring survives,
                  detector and refit re-anchor (reload semantics) *)
               Printf.eprintf
                 "pathsel serve: artifact split changed offline (r=%d -> \
                  %d); re-anchoring detector and refit\n%!"
                 snap.Monitor.snap_r r;
               Monitor.swapped mon ~r ~m
             end;
             mon
           | exception Invalid_argument msg ->
             Printf.eprintf
               "pathsel serve: checkpoint rejected (%s); cold start\n%!" msg;
             fresh ()
         end
     in
     (* replay the WAL suffix — every record acked after the checkpoint
        was taken. Ingestion is idempotent over sequence numbers, so a
        record covered by both the checkpoint and the journal is
        skipped, and a second crash during replay re-lands on the same
        state. *)
     (match t.dur with
      | None -> ()
      | Some dur ->
        let from_seq = Monitor.applied_seq mon + 1 in
        (match
           Store.Wal.fold ~from_seq dur.dur_cfg.wal_dir ~init:[]
             ~f:(fun acc ~seq payload ->
               match Durable.decode_obs payload with
               | Ok o -> (seq, o) :: acc
               | Error msg ->
                 Printf.eprintf
                   "pathsel serve: WAL record %d undecodable (%s); \
                    skipped\n%!"
                   seq msg;
                 acc)
         with
         | Ok (acc, _last) -> Monitor.replay mon (List.rev acc)
         | Error e ->
           Printf.eprintf
             "pathsel serve: WAL replay failed: %s (continuing from the \
              checkpoint alone)\n%!"
             (Core.Errors.to_string e)));
     Atomic.set t.mon (Some mon));
  t

let monitor_step t ~now =
  match Atomic.get t.mon with
  | None -> ()
  | Some mon ->
    if Atomic.exchange t.mon_resync false then begin
      let hot = Atomic.get t.hot in
      if hot.artifact.Store.n_paths = Monitor.n_paths mon then
        Monitor.swapped mon ~r:hot.n_rep
          ~m:(hot.artifact.Store.n_paths - hot.n_rep)
      else begin
        (* an operator swapped in an artifact over a different path
           pool: the recent-die ring no longer lines up, so monitoring
           stands down rather than feed the detector garbage *)
        Atomic.set t.mon None;
        Printf.eprintf
          "pathsel serve: artifact path pool changed (%d -> %d paths); \
           drift monitoring disabled\n%!"
          (Monitor.n_paths mon) hot.artifact.Store.n_paths
      end
    end;
    (match Atomic.get t.mon with Some m -> Monitor.step m ~now | None -> ())

(* Runs on the monitor thread, right after [monitor_step]: write a
   checkpoint when enough journaled records have been applied since the
   last one, or when the generation moved (a reselect or reload landed —
   the next boot must not resurrect the pre-swap monitor state against
   the post-swap artifact). The write itself is [Store.write_file_atomic]
   under the hood, so a SIGKILL mid-checkpoint leaves the previous
   checkpoint intact and recovery just replays a longer WAL suffix. *)
let maybe_checkpoint ?(force = false) t =
  match (t.dur, Atomic.get t.mon) with
  | None, _ | _, None -> ()
  | Some dur, Some mon ->
    let applied = Monitor.applied_seq mon in
    let gen = (Atomic.get t.hot).gen in
    if
      force
      || applied - Atomic.get dur.ckpt_seq >= dur.dur_cfg.checkpoint_every
      || gen <> Atomic.get dur.ckpt_gen
    then begin
      match
        Durable.save_checkpoint dur.ckpt_path ~gen (Monitor.snapshot mon)
      with
      | Ok () ->
        Atomic.set dur.ckpt_seq applied;
        Atomic.set dur.ckpt_gen gen;
        (* sealed segments fully below the checkpoint are dead weight;
           a failed prune only delays space reclamation *)
        (match Store.Wal.prune dur.wal ~upto_seq:applied with
         | Ok _ -> ()
         | Error e ->
           Printf.eprintf "pathsel serve: WAL prune failed: %s\n%!"
             (Core.Errors.to_string e))
      | Error e ->
        (* the previous checkpoint still stands; recovery falls back to
           a longer replay, losing nothing *)
        Printf.eprintf "pathsel serve: checkpoint write failed: %s\n%!"
          (Core.Errors.to_string e)
    end

let monitor_report t = Option.map Monitor.read (Atomic.get t.mon)

let latency_stats_locked c =
  let n = Int.min c.lat_n latency_window in
  if n = 0 then Wire.Null
  else begin
    let window = Array.sub c.lat 0 n in
    let sum = Array.fold_left ( +. ) 0.0 window in
    Wire.Obj
      [
        ("min", Wire.Float (Array.fold_left Float.min window.(0) window));
        ("mean", Wire.Float (sum /. float_of_int n));
        ("max", Wire.Float (Array.fold_left Float.max window.(0) window));
        ("p99", Wire.Float (Stats.Descriptive.quantile window 0.99));
        ("window", Wire.Int n);
      ]
  end

(* ------------------------------------------------------------------ *)
(* Request handling *)

(* every ok response names the artifact generation that produced it, so
   a client can tell when a hot swap happened under its stream *)
let ok_fields ~gen op rest =
  Wire.Obj
    (("ok", Wire.Bool true)
    :: ("op", Wire.String op)
    :: ("gen", Wire.Int gen)
    :: rest)

(* semantic failures (bad shapes, compute errors) carry their
   sysexits-style numeric code; clients must not retry them *)
let error_response ?(code = 65) msg =
  Wire.Obj
    [ ("ok", Wire.Bool false); ("error", Wire.String msg); ("code", Wire.Int code) ]

(* infrastructure failures carry a string code ("overloaded",
   "deadline_exceeded", "line_too_long", "bad_frame"): the request may
   never have been seen whole, so a retry is safe and expected *)
let infra_response code msg =
  Wire.Obj
    [ ("ok", Wire.Bool false); ("error", Wire.String msg); ("code", Wire.String code) ]

let monitor_fields t =
  match monitor_report t with
  | None -> []
  | Some (r : Monitor.report) ->
    [
      ( "monitor",
        Wire.Obj
          [
            ("state", Wire.String (Stats.Drift.state_to_string r.Monitor.state));
            ("calibrating", Wire.Bool r.Monitor.calibrating);
            ("observed", Wire.Int r.Monitor.observed);
            ("skipped", Wire.Int r.Monitor.skipped);
            ("dropped", Wire.Int r.Monitor.dropped);
            ("cusum", Wire.Float r.Monitor.cusum);
            ("var_ratio", Wire.Float r.Monitor.var_ratio);
            ("quarantined", Wire.Bool r.Monitor.quarantined);
            ("groups", Wire.Int r.Monitor.groups);
            ("group_overflow", Wire.Int r.Monitor.group_overflow);
            ("monitor_errors", Wire.Int r.Monitor.monitor_errors);
            ("refit_dies", Wire.Int r.Monitor.refit_dies);
            ("refit_resyncs", Wire.Int r.Monitor.refit_resyncs);
            ("reselects", Wire.Int r.Monitor.reselects);
            ("reselect_failures", Wire.Int r.Monitor.reselect_failures);
            ("last_reselect_ms", Wire.Float r.Monitor.last_reselect_ms);
            ("backoff_s", Wire.Float r.Monitor.backoff_s);
            ("last_error", Wire.String r.Monitor.last_error);
          ] );
    ]

let durability_fields t =
  match t.dur with
  | None -> []
  | Some dur ->
    (* [jm] serializes against appenders, so the sequence read is a
       consistent journal high-water mark *)
    Mutex.lock dur.jm;
    let journaled = Store.Wal.next_seq dur.wal - 1 in
    Mutex.unlock dur.jm;
    [
      ( "durability",
        Wire.Obj
          [
            ("wal_dir", Wire.String dur.dur_cfg.wal_dir);
            ("journaled", Wire.Int journaled);
            ("checkpoint_seq", Wire.Int (Atomic.get dur.ckpt_seq));
            ("checkpoint_gen", Wire.Int (Atomic.get dur.ckpt_gen));
            ("checkpoint_every", Wire.Int dur.dur_cfg.checkpoint_every);
          ] );
    ]

let handle_stats t =
  let hot = Atomic.get t.hot in
  let a = hot.artifact in
  Mutex.lock t.cm;
  let c = t.counters in
  let fields =
    [
      ("requests", Wire.Int c.requests);
      ("dies_predicted", Wire.Int c.predicted);
      ("yield_estimates", Wire.Int c.yields);
      ("dies_tuned", Wire.Int c.tuned);
      ("tune_infeasible", Wire.Int c.tune_infeasible);
      ("errors", Wire.Int c.errors);
      ("shed", Wire.Int c.shed);
      ("timeouts", Wire.Int c.timeouts);
      ("idle_closed", Wire.Int c.idle_closed);
      ("overflows", Wire.Int c.overflows);
      ("reloads", Wire.Int c.reloads);
      ("reload_failures", Wire.Int c.reload_failures);
      (* pool size behind the batched matrix applies (PATHSEL_DOMAINS /
         --domains); the served bits are identical at any value *)
      ("domains", Wire.Int (Par.Pool.size ()));
      ("workers", Wire.Int (resolved_workers t.cfg));
      ("uptime_s", Wire.Float (Unix.gettimeofday () -. t.started));
      ("latency_ms", latency_stats_locked c);
      ( "artifact",
        Wire.Obj
          [
            ("fingerprint", Wire.String a.Store.fingerprint);
            ("generation", Wire.Int hot.gen);
            ("paths", Wire.Int a.Store.n_paths);
            ("representatives", Wire.Int hot.n_rep);
            ("predicted_paths", Wire.Int (a.Store.n_paths - hot.n_rep));
            ("t_cons_ps", Wire.Float a.Store.t_cons);
            ("eps", Wire.Float a.Store.eps);
          ] );
    ]
    @ monitor_fields t
    @ durability_fields t
  in
  Mutex.unlock t.cm;
  ok_fields ~gen:hot.gen "stats" fields

let handle_predict t hot req =
  match Wire.member "dies" req with
  | None -> error_response "predict: missing \"dies\""
  | Some dies ->
    (match Wire.mat_of_json ~cols:hot.n_rep dies with
     | Error msg -> error_response ("predict: " ^ msg)
     | Ok measured ->
       let n_dies, _ = Linalg.Mat.dims measured in
       if n_dies > t.cfg.max_batch then
         error_response
           (Printf.sprintf "predict: batch of %d dies exceeds the %d-die limit"
              n_dies t.cfg.max_batch)
       else begin
         let dirty_flag =
           match Wire.member "robust" req with Some (Wire.Bool b) -> b | _ -> false
         in
         let has_missing =
           let found = ref false in
           for i = 0 to n_dies - 1 do
             for j = 0 to hot.n_rep - 1 do
               if not (Float.is_finite (Linalg.Mat.get measured i j)) then found := true
             done
           done;
           !found
         in
         (* a request that flags dirty data — or one that provably is
            (missing entries) — routes through the fault-tolerant
            predictor and its cached Gram blocks; clean batches take
            the single matrix-matrix apply *)
         let extra, predicted =
           if dirty_flag || has_missing then begin
             let pr = Core.Robust.predict_all hot.robust ~measured in
             ( [
                 ("robust", Wire.Bool true);
                 ( "screen",
                   Wire.Obj
                     [
                       ("missing", Wire.Int pr.Core.Robust.screened.Core.Robust.missing);
                       ("outliers", Wire.Int pr.Core.Robust.screened.Core.Robust.outliers);
                       ("resolves", Wire.Int pr.Core.Robust.resolves);
                       ("ridge_fallbacks", Wire.Int pr.Core.Robust.ridge_fallbacks);
                       ("dead_dies", Wire.Int pr.Core.Robust.dead_dies);
                     ] );
               ],
               pr.Core.Robust.predicted )
           end
           else
             ([ ("robust", Wire.Bool false) ],
              Core.Predictor.predict_all hot.predictor ~measured)
         in
         tick t (fun c -> c.predicted <- c.predicted + n_dies);
         ok_fields ~gen:hot.gen "predict"
           (("dies", Wire.Int n_dies)
            :: extra
            @ [ ("predictions", Wire.mat_to_json predicted) ])
       end)

(* observe: stream fully measured dies (representative measurements
   plus ground-truth remaining-path delays) into the self-healing loop.
   The handler does the cheap, bounded part — screen, one predictor
   apply, residuals — and hands the dies to the monitor thread through
   a lock-free queue; detection and re-selection never ride a request. *)
let handle_observe t hot req =
  match Atomic.get t.mon with
  | None -> error_response "observe: drift monitoring is disabled on this server"
  | Some mon ->
    (match (Wire.member "dies" req, Wire.member "truth" req) with
     | None, _ -> error_response "observe: missing \"dies\""
     | _, None -> error_response "observe: missing \"truth\""
     | Some dies, Some truth ->
       let n_rem = hot.artifact.Store.n_paths - hot.n_rep in
       (match
          ( Wire.mat_of_json ~cols:hot.n_rep dies,
            Wire.mat_of_json ~cols:n_rem truth )
        with
        | Error msg, _ -> error_response ("observe: dies: " ^ msg)
        | _, Error msg -> error_response ("observe: truth: " ^ msg)
        | Ok measured, Ok truth ->
          let n_dies, _ = Linalg.Mat.dims measured in
          let n_truth, _ = Linalg.Mat.dims truth in
          if n_dies <> n_truth then
            error_response
              (Printf.sprintf
                 "observe: %d measurement rows but %d truth rows" n_dies
                 n_truth)
          else if n_dies > t.cfg.max_batch then
            error_response
              (Printf.sprintf
                 "observe: batch of %d dies exceeds the %d-die limit" n_dies
                 t.cfg.max_batch)
          else if n_dies = 0 then
            error_response "observe: empty batch"
          else begin
            (* optional wafer/lot id keys per-group drift calibration;
               absent (or non-string) means the flat default group *)
            let wafer =
              match Wire.member "wafer" req with
              | Some (Wire.String w) -> w
              | Some _ | None -> ""
            in
            (* the MAD screen + missing check keep corrupted dies out of
               the refit/detector stream; they are counted, not served *)
            let screen = Core.Robust.screen hot.robust ~measured in
            let die_clean i =
              let row = screen.Core.Robust.mask.(i) in
              let ok = ref (Array.for_all (fun b -> b) row) in
              for j = 0 to n_rem - 1 do
                if not (Float.is_finite (Linalg.Mat.get truth i j)) then
                  ok := false
              done;
              !ok
            in
            let pred = Core.Predictor.predict_all hot.predictor ~measured in
            let rep = Core.Predictor.rep_indices hot.predictor in
            let rem = Core.Predictor.rem_indices hot.predictor in
            (* per-die verdicts ride the ack, so a tester knows which of
               its dies actually fed the loop and which the MAD/missing
               screen quarantined *)
            let status = Array.make n_dies "screened" in
            let batch = ref [] in
            for i = 0 to n_dies - 1 do
              if die_clean i then begin
                status.(i) <- "used";
                let m_row = Linalg.Mat.row measured i in
                let t_row = Linalg.Mat.row truth i in
                let full = Array.make hot.artifact.Store.n_paths 0.0 in
                Array.iteri (fun j p -> full.(p) <- m_row.(j)) rep;
                Array.iteri (fun j p -> full.(p) <- t_row.(j)) rem;
                let resid = ref 0.0 in
                for j = 0 to n_rem - 1 do
                  resid := !resid +. (t_row.(j) -. Linalg.Mat.get pred i j)
                done;
                batch :=
                  {
                    Monitor.measured = m_row;
                    truth = t_row;
                    full;
                    resid = !resid /. float_of_int n_rem;
                    wafer;
                  }
                  :: !batch
              end
            done;
            let batch = List.rev !batch in
            let queued = List.length batch in
            let journal_and_submit () =
              match t.dur with
              | None ->
                List.iter (fun o -> Monitor.submit mon o) batch;
                Ok false
              | Some dur ->
                (match batch with
                 | [] -> Ok true (* nothing survived the screen *)
                 | _ :: _ ->
                   (* journal-before-ack: the fsync'd append is the
                      durability point — the ack leaves only after it.
                      [jm] keeps WAL order equal to ingestion order
                      (see [dur_state]); the append blocks this worker,
                      never the monitor thread. *)
                   Mutex.lock dur.jm;
                   Fun.protect
                     ~finally:(fun () -> Mutex.unlock dur.jm)
                     (fun () ->
                       match
                         Store.Wal.append dur.wal
                           (List.map Durable.encode_obs batch)
                       with
                       | Error e -> Error e
                       | Ok last ->
                         let first = last - queued + 1 in
                         List.iteri
                           (fun i o -> Monitor.submit ~seq:(first + i) mon o)
                           batch;
                         Ok true))
            in
            match journal_and_submit () with
            | Error e ->
              (* the observation is NOT durable, so no ok ack may leave;
                 the string code marks it safe to retry *)
              infra_response "journal_failed"
                ("observe: journal append failed: " ^ Core.Errors.to_string e)
            | Ok journaled ->
              ok_fields ~gen:hot.gen "observe"
                [
                  ("dies", Wire.Int n_dies);
                  ("queued", Wire.Int queued);
                  ("screened", Wire.Int (n_dies - queued));
                  ("journaled", Wire.Bool journaled);
                  ( "die_status",
                    Wire.List
                      (Array.to_list status
                      |> List.map (fun s -> Wire.String s)) );
                ]
          end))

(* ------------------------------------------------------------------ *)
(* Decision ops: yield estimation and per-die tuning *)

(* a yield estimate is one dense pass per sample block over the full
   sensitivity matrix; the cap keeps a single request's compute bounded
   the way max_batch bounds predict *)
let max_yield_samples = 1 lsl 20

let handle_yield t hot req =
  let art = hot.artifact in
  let bad msg = error_response ("yield: " ^ msg) in
  let int_field name default =
    match Wire.member name req with
    | Some (Wire.Int n) -> Ok n
    | Some _ -> Error (Printf.sprintf "%S must be an integer" name)
    | None -> Ok default
  in
  match (int_field "samples" 4096, int_field "seed" 1) with
  | Error msg, _ | _, Error msg -> bad msg
  | Ok samples, Ok seed ->
    if samples < 2 || samples > max_yield_samples then
      bad (Printf.sprintf "\"samples\" must be in [2, %d]" max_yield_samples)
    else begin
      let t_cons =
        match Wire.member "t_cons" req with
        | None -> Some art.Store.t_cons
        | Some v -> Wire.to_float v
      in
      match t_cons with
      | None -> bad "\"t_cons\" must be a number"
      | Some t_cons when not (Float.is_finite t_cons) ->
        bad "\"t_cons\" must be finite"
      | Some t_cons ->
        let meth =
          match Wire.member "method" req with
          | Some (Wire.String ("is" | "importance")) | None -> Ok `Is
          | Some (Wire.String ("mc" | "brute-force")) -> Ok `Mc
          | Some _ -> Error "\"method\" must be \"is\" or \"mc\""
        in
        (match meth with
         | Error msg -> bad msg
         | Ok meth ->
           (* explicit seed + strict draw order: the same request always
              returns the same bits, so clients can recompute and audit *)
           let rng = Rng.create seed in
           let a = art.Store.a_mat and mu = art.Store.mu in
           let est =
             match meth with
             | `Is -> Yield.importance ~a ~mu ~t_cons ~rng ~samples ()
             | `Mc -> Yield.brute_force ~a ~mu ~t_cons ~rng ~samples ()
           in
           tick t (fun c -> c.yields <- c.yields + 1);
           ok_fields ~gen:hot.gen "yield"
             [
               ( "method",
                 Wire.String (match meth with `Is -> "is" | `Mc -> "mc") );
               ("t_cons", Wire.Float est.Yield.t_cons);
               ("p_fail", Wire.Float est.Yield.p_fail);
               ("sn_p_fail", Wire.Float est.Yield.sn_p_fail);
               ("yield", Wire.Float (Yield.yield_of est));
               ("std_err", Wire.Float est.Yield.std_err);
               ("sn_std_err", Wire.Float est.Yield.sn_std_err);
               ("ess", Wire.Float est.Yield.ess);
               ("samples", Wire.Int est.Yield.samples);
               ("hits", Wire.Int est.Yield.hits);
               ("shift_norm", Wire.Float est.Yield.shift_norm);
               ("dominant", Wire.Int est.Yield.dominant);
               ("sample_reduction", Wire.Float (Yield.sample_reduction est));
             ])
    end

let level_of_json j =
  match (Wire.member "offset_ps" j, Wire.member "cost" j) with
  | Some o, Some c ->
    (match (Wire.to_float o, Wire.to_float c) with
     | Some offset_ps, Some cost -> Ok { Tune.offset_ps; cost }
     | _ -> Error "level \"offset_ps\"/\"cost\" must be numbers")
  | _ -> Error "each level needs \"offset_ps\" and \"cost\""

let buffer_of_json ~n_paths b j =
  match (Wire.member "paths" j, Wire.member "levels" j) with
  | Some (Wire.List pj), Some (Wire.List lj) ->
    let rec ints acc = function
      | [] -> Ok (Array.of_list (List.rev acc))
      | Wire.Int p :: rest ->
        if p < 0 || p >= n_paths then
          Error
            (Printf.sprintf "buffer %d drives path %d outside [0, %d)" b p
               n_paths)
        else ints (p :: acc) rest
      | _ -> Error (Printf.sprintf "buffer %d: paths must be integers" b)
    in
    let rec levels acc = function
      | [] -> Ok (Array.of_list (List.rev acc))
      | l :: rest ->
        (match level_of_json l with
         | Ok lv -> levels (lv :: acc) rest
         | Error msg -> Error (Printf.sprintf "buffer %d: %s" b msg))
    in
    (match (ints [] pj, levels [] lj) with
     | Ok paths, Ok lvls ->
       if Array.length lvls = 0 then
         Error (Printf.sprintf "buffer %d has no levels" b)
       else Ok { Tune.paths; levels = lvls }
     | Error msg, _ | _, Error msg -> Error msg)
  | _ -> Error (Printf.sprintf "buffer %d needs \"paths\" and \"levels\" lists" b)

let buffers_to_json (buffers : Tune.buffer array) =
  Wire.List
    (Array.to_list buffers
    |> List.map (fun (b : Tune.buffer) ->
           Wire.Obj
             [
               ( "paths",
                 Wire.List
                   (Array.to_list b.Tune.paths
                   |> List.map (fun p -> Wire.Int p)) );
               ( "levels",
                 Wire.List
                   (Array.to_list b.Tune.levels
                   |> List.map (fun (l : Tune.level) ->
                          Wire.Obj
                            [
                              ("offset_ps", Wire.Float l.Tune.offset_ps);
                              ("cost", Wire.Float l.Tune.cost);
                            ])) );
             ]))

let buffers_of_json ~n_paths j =
  match j with
  | Wire.List bjs ->
    let rec go b acc = function
      | [] -> Ok (Array.of_list (List.rev acc))
      | bj :: rest ->
        (match buffer_of_json ~n_paths b bj with
         | Ok buf -> go (b + 1) (buf :: acc) rest
         | Error msg -> Error msg)
    in
    go 0 [] bjs
  | _ -> Error "\"buffers\" must be a list"

(* tune: configure each die's tunable buffers to close timing at
   minimum cost, from predicted delays ("dies" = representative
   measurements, the normal flow) or caller-supplied full delay vectors
   ("delays"). Any die that cannot meet timing fails the whole request
   with the typed [infeasible] code 65 — a semantic answer, never a
   transport failure, so clients do not retry it. *)
let handle_tune t hot req =
  let art = hot.artifact in
  let n_paths = art.Store.n_paths in
  let bad msg = error_response ("tune: " ^ msg) in
  match Wire.member "buffers" req with
  | None -> bad "missing \"buffers\""
  | Some bj ->
    (match buffers_of_json ~n_paths bj with
     | Error msg -> bad msg
     | Ok buffers ->
       let t_clk =
         match Wire.member "t_clk" req with
         | None -> Some art.Store.t_cons
         | Some v -> Wire.to_float v
       in
       (match t_clk with
        | None -> bad "\"t_clk\" must be a number"
        | Some t_clk when not (Float.is_finite t_clk) ->
          bad "\"t_clk\" must be finite"
        | Some t_clk ->
          let full_delays =
            match (Wire.member "delays" req, Wire.member "dies" req) with
            | Some d, _ -> Wire.mat_of_json ~cols:n_paths d
            | None, Some dies ->
              (match Wire.mat_of_json ~cols:hot.n_rep dies with
               | Error _ as e -> e
               | Ok measured ->
                 let n_dies, _ = Linalg.Mat.dims measured in
                 let pred =
                   Core.Predictor.predict_all hot.predictor ~measured
                 in
                 let rep = Core.Predictor.rep_indices hot.predictor in
                 let rem = Core.Predictor.rem_indices hot.predictor in
                 let full = Array.make_matrix n_dies n_paths 0.0 in
                 for i = 0 to n_dies - 1 do
                   Array.iteri
                     (fun j p -> full.(i).(p) <- Linalg.Mat.get measured i j)
                     rep;
                   Array.iteri
                     (fun j p -> full.(i).(p) <- Linalg.Mat.get pred i j)
                     rem
                 done;
                 Ok (Linalg.Mat.init n_dies n_paths (fun i j -> full.(i).(j))))
            | None, None -> Error "missing \"dies\" (or \"delays\")"
          in
          (match full_delays with
           | Error msg -> bad msg
           | Ok delays ->
             let n_dies, _ = Linalg.Mat.dims delays in
             if n_dies > t.cfg.max_batch then
               bad
                 (Printf.sprintf "batch of %d dies exceeds the %d-die limit"
                    n_dies t.cfg.max_batch)
             else begin
               let results =
                 Array.init n_dies (fun i ->
                     Tune.solve
                       {
                         Tune.delays = Linalg.Mat.row delays i;
                         t_clk;
                         buffers;
                       })
               in
               let first_infeasible = ref None in
               Array.iteri
                 (fun i r ->
                   match (r, !first_infeasible) with
                   | Tune.Infeasible inf, None ->
                     first_infeasible := Some (i, inf)
                   | _ -> ())
                 results;
               match !first_infeasible with
               | Some (die, inf) ->
                 tick t (fun c ->
                     c.tune_infeasible <- c.tune_infeasible + 1);
                 error_response ~code:65
                   (Printf.sprintf
                      "tune: infeasible: die %d cannot meet t_clk=%g ps \
                       (path %d misses by %g ps at minimum offsets)"
                      die t_clk inf.Tune.path inf.Tune.deficit_ps)
               | None ->
                 tick t (fun c -> c.tuned <- c.tuned + n_dies);
                 let rows =
                   Array.to_list results
                   |> List.map (fun r ->
                          match r with
                          | Tune.Infeasible _ -> assert false
                          | Tune.Feasible a ->
                            Wire.Obj
                              [
                                ( "levels",
                                  Wire.List
                                    (Array.to_list a.Tune.levels
                                    |> List.map (fun l -> Wire.Int l)) );
                                ("cost", Wire.Float a.Tune.cost);
                                ("slack_ps", Wire.Float a.Tune.slack_ps);
                                ("exact", Wire.Bool a.Tune.exact);
                              ])
                 in
                 ok_fields ~gen:hot.gen "tune"
                   [
                     ("dies", Wire.Int n_dies);
                     ("t_clk", Wire.Float t_clk);
                     ("results", Wire.List rows);
                   ]
             end)))

let handle t line =
  let t0 = Unix.gettimeofday () in
  (* one snapshot per request: a SIGHUP reload swapping [t.hot] mid-soak
     never changes the artifact a request already started on *)
  let hot = Atomic.get t.hot in
  let response =
    match Wire.parse line with
    | Error msg -> infra_response "bad_frame" ("parse error: " ^ msg)
    | Ok req ->
      (match Wire.member "op" req with
       | Some (Wire.String "ping") ->
         ok_fields ~gen:hot.gen "ping"
           [ ("version", Wire.Int Store.current_version) ]
       | Some (Wire.String "stats") -> handle_stats t
       | Some (Wire.String "shutdown") ->
         Atomic.set t.stop_flag true;
         ok_fields ~gen:hot.gen "shutdown" [ ("draining", Wire.Bool true) ]
       | Some (Wire.String "predict") ->
         (* isolate compute errors: a pathological batch answers
            ok:false instead of tearing the connection down *)
         (match Core.Errors.catch (fun () -> handle_predict t hot req) with
          | Ok resp -> resp
          | Error e ->
            error_response ~code:(Core.Errors.exit_code e) (Core.Errors.to_string e))
       | Some (Wire.String "observe") ->
         (match Core.Errors.catch (fun () -> handle_observe t hot req) with
          | Ok resp -> resp
          | Error e ->
            error_response ~code:(Core.Errors.exit_code e) (Core.Errors.to_string e))
       | Some (Wire.String "yield") ->
         (match Core.Errors.catch (fun () -> handle_yield t hot req) with
          | Ok resp -> resp
          | Error e ->
            error_response ~code:(Core.Errors.exit_code e) (Core.Errors.to_string e))
       | Some (Wire.String "tune") ->
         (match Core.Errors.catch (fun () -> handle_tune t hot req) with
          | Ok resp -> resp
          | Error e ->
            error_response ~code:(Core.Errors.exit_code e) (Core.Errors.to_string e))
       | Some (Wire.String op) -> error_response (Printf.sprintf "unknown op %S" op)
       | Some _ -> error_response "\"op\" must be a string"
       | None -> error_response "request must be an object with an \"op\" field")
  in
  let failed =
    match response with Wire.Obj (("ok", Wire.Bool false) :: _) -> true | _ -> false
  in
  let ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
  tick t (fun c ->
      c.requests <- c.requests + 1;
      if failed then c.errors <- c.errors + 1;
      c.lat.(c.lat_n mod latency_window) <- ms;
      c.lat_n <- c.lat_n + 1);
  Wire.print response

(* ------------------------------------------------------------------ *)
(* Connections *)

let close_quiet fd = try Unix.close fd with Unix.Unix_error _ -> ()

let serve_conn t fd =
  let framer = Wire.Framer.create ~max_line:t.cfg.max_line () in
  let chunk = Bytes.create 65536 in
  (* [Some t0]: an unterminated request line started arriving at t0 and
     must complete — bytes and our response — within the deadline *)
  let started = ref None in
  let after_response () =
    started :=
      (if Wire.Framer.partial framer then Some (Unix.gettimeofday ()) else None)
  in
  let respond s =
    match Io.write_all fd s ~timeout:t.cfg.deadline with
    | () -> true
    | exception Io.Timeout ->
      (* a reader too slow to take its own response: count and drop *)
      tick t (fun c -> c.timeouts <- c.timeouts + 1);
      false
    | exception Io.Closed -> false
  in
  let rec loop () =
    if not (Atomic.get t.stop_flag) then
      match Wire.Framer.pop framer with
      | Some (Wire.Framer.Line line) ->
        (* even an empty line gets its (error) response: one line in,
           one line out keeps client pipelining aligned *)
        let keep = respond (handle t line ^ "\n") in
        after_response ();
        if keep then loop ()
      | Some (Wire.Framer.Too_long n) ->
        (* the cap held (bytes past it were discarded as they arrived);
           the oversized line gets its own typed error and the
           connection lives on *)
        tick t (fun c ->
            c.overflows <- c.overflows + 1;
            c.errors <- c.errors + 1);
        let keep =
          respond
            (Wire.print
               (infra_response "line_too_long"
                  (Printf.sprintf
                     "request line of %d bytes exceeds the %d-byte cap" n
                     t.cfg.max_line))
            ^ "\n")
        in
        after_response ();
        if keep then loop ()
      | None ->
        let timeout, mid_request =
          match !started with
          | Some t0 ->
            (Float.max 0.0 (t0 +. t.cfg.deadline -. Unix.gettimeofday ()), true)
          | None -> (t.cfg.idle_timeout, false)
        in
        (match Io.wait_readable fd timeout with
         | `Interrupted ->
           (* a signal, not a timeout: re-derive the remaining budget
              and keep waiting (the old [readable] conflated these) *)
           loop ()
         | `Timeout ->
           if mid_request then begin
             (* deadline expiry is reported, not silently re-looped; the
                connection closes because its stream is now mid-frame *)
             tick t (fun c ->
                 c.timeouts <- c.timeouts + 1;
                 c.errors <- c.errors + 1);
             ignore
               (respond
                  (Wire.print
                     (infra_response "deadline_exceeded"
                        "request did not complete within the deadline")
                  ^ "\n"))
           end
           else
             (* silent connection: reap it quietly to free the worker *)
             tick t (fun c -> c.idle_closed <- c.idle_closed + 1)
         | `Ready ->
           (match Io.read fd chunk 0 (Bytes.length chunk) ~timeout:1.0 with
            | Io.Eof -> () (* client done *)
            | Io.Read_timeout -> loop ()
            | Io.Data k ->
              Wire.Framer.feed framer chunk 0 k;
              (match !started with
               | None when Wire.Framer.partial framer ->
                 started := Some (Unix.gettimeofday ())
               | _ -> ());
              loop ()))
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Accept loop, worker pool, reload *)

let listen_on addr =
  (* bind/listen can raise (address in use, bad path): without the
     close-on-exception the freshly opened socket would leak *)
  match addr with
  | Unix_sock path ->
    if Sys.file_exists path then Sys.remove path;
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (match
       Unix.bind fd (Unix.ADDR_UNIX path);
       Unix.listen fd 64
     with
     | () ->
       (fd, Unix_sock path, fun () -> if Sys.file_exists path then Sys.remove path)
     | exception e ->
       close_quiet fd;
       raise e)
  | Tcp port ->
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    (match
       Unix.setsockopt fd Unix.SO_REUSEADDR true;
       Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
       Unix.listen fd 64;
       Unix.getsockname fd
     with
     | Unix.ADDR_INET (_, p) -> (fd, Tcp p, fun () -> ())
     | _ -> (fd, Tcp port, fun () -> ())
     | exception e ->
       close_quiet fd;
       raise e)

type shared = {
  srv : t;
  q : Unix.file_descr Queue.t;
  qm : Mutex.t;
  qc : Condition.t;
}

let worker sh =
  let srv = sh.srv in
  let rec loop () =
    Mutex.lock sh.qm;
    while Queue.is_empty sh.q && not (Atomic.get srv.stop_flag) do
      Condition.wait sh.qc sh.qm
    done;
    let job = Queue.take_opt sh.q in
    Mutex.unlock sh.qm;
    match job with
    | None -> () (* stopping and the queue is drained *)
    | Some fd ->
      (match serve_conn srv fd with
       | () -> ()
       | exception (Unix.Unix_error _ | Sys_error _ | Io.Timeout | Io.Closed) ->
         (* one bad connection never takes its worker down *)
         tick srv (fun c -> c.errors <- c.errors + 1));
      close_quiet fd;
      loop ()
  in
  loop ()

let overloaded_line =
  Wire.print (infra_response "overloaded" "server at capacity; retry with backoff")
  ^ "\n"

let run ?(install_signals = true) ?config ?reload_from ?on_ready artifact addr =
  let t = create ?config ?reload_from artifact in
  (* a client hanging up mid-response must not kill the process *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  if install_signals then begin
    let stop_on _ = Atomic.set t.stop_flag true in
    Sys.set_signal Sys.sigint (Sys.Signal_handle stop_on);
    Sys.set_signal Sys.sigterm (Sys.Signal_handle stop_on);
    (* EINTR storms (e.g. the chaos harness) interrupt syscalls without
       changing behaviour; the Io wrappers re-derive their budgets *)
    try Sys.set_signal Sys.sigusr1 (Sys.Signal_handle (fun _ -> ()))
    with Invalid_argument _ -> ()
  end;
  (match t.reload_from with
   | Some _ ->
     (* hot reload is armed independently of install_signals so a
        threaded test server can exercise it too *)
     (try
        Sys.set_signal Sys.sighup
          (Sys.Signal_handle (fun _ -> Atomic.set t.reload_requested true))
      with Invalid_argument _ -> ())
   | None -> ());
  let lfd, bound, cleanup = listen_on addr in
  let sh = { srv = t; q = Queue.create (); qm = Mutex.create (); qc = Condition.create () } in
  let workers =
    List.init (resolved_workers t.cfg) (fun _ -> Thread.create worker sh)
  in
  (* the self-healing loop rides its own thread: drain observations,
     update detector/refit, and run re-selection when drift binds — a
     slow reselect stalls only this thread, never a request *)
  let monitor_thread =
    match Atomic.get t.mon with
    | None -> None
    | Some _ ->
      Some
        (Thread.create
           (fun () ->
             while not (Atomic.get t.stop_flag) do
               (* thread-level fail-safe: an escaped exception must not
                  silently kill the loop while the server still reports
                  the monitor as armed — count it, tell the operator,
                  keep monitoring *)
               (match
                  monitor_step t ~now:(Unix.gettimeofday ());
                  (* checkpointing rides the monitor thread: it alone
                     may snapshot monitor internals *)
                  maybe_checkpoint t
                with
                | () -> ()
                | exception e ->
                  let msg = Printexc.to_string e in
                  (match Atomic.get t.mon with
                   | Some mon -> Monitor.note_error mon msg
                   | None -> ());
                  tick t (fun c -> c.errors <- c.errors + 1);
                  Printf.eprintf
                    "pathsel serve: monitor step failed: %s (monitoring \
                     continues)\n%!"
                    msg);
               Thread.delay 0.05
             done)
           ())
  in
  Fun.protect
    ~finally:(fun () ->
      Atomic.set t.stop_flag true;
      Mutex.lock sh.qm;
      Condition.broadcast sh.qc;
      Mutex.unlock sh.qm;
      List.iter Thread.join workers;
      Option.iter Thread.join monitor_thread;
      (* the monitor thread has exited (join is the happens-before), so
         the main thread may take one final snapshot: a clean shutdown
         leaves a checkpoint at the journal's high-water mark and the
         next boot replays nothing *)
      (match maybe_checkpoint ~force:true t with
       | () -> ()
       | exception e ->
         Printf.eprintf "pathsel serve: final checkpoint failed: %s\n%!"
           (Printexc.to_string e));
      Option.iter (fun d -> Store.Wal.close d.wal) t.dur;
      (* accepted but never picked up: close without service *)
      Mutex.lock sh.qm;
      Queue.iter close_quiet sh.q;
      Queue.clear sh.q;
      Mutex.unlock sh.qm;
      close_quiet lfd;
      cleanup ())
    (fun () ->
      Option.iter (fun f -> f bound) on_ready;
      while not (Atomic.get t.stop_flag) do
        if Atomic.exchange t.reload_requested false then begin
          match do_reload t with
          | Ok () -> ()
          | Error msg ->
            Printf.eprintf
              "pathsel serve: reload failed: %s (keeping the loaded artifact)\n%!"
              msg
        end;
        match Io.wait_readable lfd 0.25 with
        | `Timeout | `Interrupted -> ()
        | `Ready ->
          (match Unix.accept lfd with
           | exception Unix.Unix_error _ -> ()
           | cfd, _ ->
             Mutex.lock sh.qm;
             if Queue.length sh.q >= t.cfg.queue then begin
               Mutex.unlock sh.qm;
               (* bounded in-flight queue: past capacity the connection
                  is refused with a typed response, not silently queued
                  into an unbounded backlog *)
               tick t (fun c -> c.shed <- c.shed + 1);
               (match Io.write_all cfd overloaded_line ~timeout:0.25 with
                | () -> ()
                | exception (Io.Timeout | Io.Closed) -> ());
               close_quiet cfd
             end
             else begin
               Queue.add cfd sh.q;
               Condition.signal sh.qc;
               Mutex.unlock sh.qm
             end)
      done)

(* ------------------------------------------------------------------ *)
(* Client *)

module Client = struct
  type conn = {
    fd : Unix.file_descr;
    framer : Wire.Framer.t;
    chunk : Bytes.t;
    mutable last_gen : int option;
        (* last artifact generation seen on this connection *)
  }

  let sockaddr_of = function
    | Unix_sock path -> Unix.ADDR_UNIX path
    | Tcp port -> Unix.ADDR_INET (Unix.inet_addr_loopback, port)

  let connect ?(retries = 50) ?(timeout = 5.0) addr =
    let sa = sockaddr_of addr in
    let domain = match addr with Unix_sock _ -> Unix.PF_UNIX | Tcp _ -> Unix.PF_INET in
    let rec go n =
      let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
      match Io.connect fd sa ~timeout with
      | () ->
        { fd; framer = Wire.Framer.create (); chunk = Bytes.create 65536; last_gen = None }
      | exception
          Unix.Unix_error
            ((Unix.ECONNREFUSED | Unix.ENOENT | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
        when n > 0 ->
        (* server still starting (or its backlog momentarily full) *)
        close_quiet fd;
        Unix.sleepf 0.1;
        go (n - 1)
      | exception e ->
        close_quiet fd;
        raise e
    in
    go retries

  let close c = close_quiet c.fd

  exception Oversized of int

  (* one response line within the wall-clock budget; None = EOF *)
  let read_line ~deadline c =
    let rec go () =
      match Wire.Framer.pop c.framer with
      | Some (Wire.Framer.Line l) -> Some l
      | Some (Wire.Framer.Too_long n) -> raise (Oversized n)
      | None ->
        (match
           Io.read c.fd c.chunk 0 (Bytes.length c.chunk)
             ~timeout:(Float.max 0.0 (deadline -. Unix.gettimeofday ()))
         with
         | Io.Eof -> None
         | Io.Read_timeout -> raise Io.Timeout
         | Io.Data k ->
           Wire.Framer.feed c.framer c.chunk 0 k;
           go ())
    in
    go ()

  (* every ok response names the artifact generation that served it; a
     change mid-stream means earlier predictions on this connection came
     from a different model — worth a warning, not an error (the swap
     is exactly what the self-healing loop is for) *)
  let note_generation c resp =
    match Wire.member "gen" resp with
    | Some (Wire.Int g) ->
      (match c.last_gen with
       | Some g0 when g0 <> g ->
         Printf.eprintf
           "pathsel client: server artifact generation changed mid-stream \
            (%d -> %d); predictions before and after came from different \
            models\n%!"
           g0 g;
         c.last_gen <- Some g
       | Some _ -> ()
       | None -> c.last_gen <- Some g)
    | _ -> ()

  let generation c = c.last_gen

  let request ?(deadline = 30.0) c req =
    let dl = Unix.gettimeofday () +. deadline in
    match
      Io.write_all c.fd (Wire.print req ^ "\n")
        ~timeout:(Float.max 0.0 (dl -. Unix.gettimeofday ()));
      read_line ~deadline:dl c
    with
    | Some line ->
      (match Wire.parse line with
       | Ok resp ->
         note_generation c resp;
         Ok resp
       | Error _ as e -> e)
    | None -> Error "connection closed by server"
    | exception Io.Timeout -> Error "timeout: no response within the deadline"
    | exception Io.Closed -> Error "short write: connection lost"
    | exception Oversized n ->
      Error (Printf.sprintf "oversized response line (%d bytes)" n)
    | exception Unix.Unix_error (e, _, _) ->
      Error (Printf.sprintf "socket error: %s" (Unix.error_message e))

  let ping ?deadline c =
    match request ?deadline c (Wire.Obj [ ("op", Wire.String "ping") ]) with
    | Ok resp -> Wire.member "ok" resp = Some (Wire.Bool true)
    | Error _ -> false

  let stats ?deadline c = request ?deadline c (Wire.Obj [ ("op", Wire.String "stats") ])

  let predict_request robust measured =
    Wire.Obj
      [
        ("op", Wire.String "predict");
        ("robust", Wire.Bool robust);
        ("dies", Wire.mat_to_json measured);
      ]

  let decode_predict resp =
    if Wire.member "ok" resp <> Some (Wire.Bool true) then
      Error
        (match Wire.member "error" resp with
         | Some (Wire.String msg) -> msg
         | _ -> "server refused the request")
    else begin
      match Wire.member "predictions" resp with
      | Some (Wire.List rows as preds) ->
        let cols =
          match rows with Wire.List cells :: _ -> List.length cells | _ -> 0
        in
        (match Wire.mat_of_json ~cols preds with
         | Ok m -> Ok (m, resp)
         | Error msg -> Error ("bad predictions payload: " ^ msg))
      | _ -> Error "response carries no predictions"
    end

  let predict ?deadline c ?(robust = false) measured =
    match request ?deadline c (predict_request robust measured) with
    | Error msg -> Error msg
    | Ok resp -> decode_predict resp

  let observe ?deadline ?wafer c ~measured ~truth =
    let req =
      Wire.Obj
        ([
           ("op", Wire.String "observe");
           ("dies", Wire.mat_to_json measured);
           ("truth", Wire.mat_to_json truth);
         ]
        @
        match wafer with
        | None -> []
        | Some w -> [ ("wafer", Wire.String w) ])
    in
    match request ?deadline c req with
    | Error msg -> Error msg
    | Ok resp ->
      if Wire.member "ok" resp = Some (Wire.Bool true) then Ok resp
      else
        Error
          (match Wire.member "error" resp with
           | Some (Wire.String msg) -> msg
           | _ -> "server refused the observation batch")

  (* per-die verdicts from an observe ack: which dies fed the loop,
     which the screen quarantined, and whether the accepted ones are on
     durable storage *)
  let die_statuses resp =
    match Wire.member "die_status" resp with
    | Some (Wire.List l) ->
      List.filter_map (function Wire.String s -> Some s | _ -> None) l
    | _ -> []

  let describe_observe resp =
    let journaled = Wire.member "journaled" resp = Some (Wire.Bool true) in
    die_statuses resp
    |> List.mapi (fun i s ->
           Printf.sprintf "die %d: %s" i
             (match s with
              | "used" -> if journaled then "journaled and used" else "used"
              | _ ->
                if journaled then "screened out (not journaled)"
                else "screened out"))
    |> String.concat "\n"

  (* ---------------- decision ops ---------------- *)

  let yield_request ?samples ?seed ?(meth = `Is) ?t_cons () =
    let opt name f v =
      match v with None -> [] | Some x -> [ (name, f x) ]
    in
    Wire.Obj
      ([
         ("op", Wire.String "yield");
         ("method", Wire.String (match meth with `Is -> "is" | `Mc -> "mc"));
       ]
      @ opt "samples" (fun n -> Wire.Int n) samples
      @ opt "seed" (fun n -> Wire.Int n) seed
      @ opt "t_cons" (fun x -> Wire.Float x) t_cons)

  let refused what resp =
    Error
      (match Wire.member "error" resp with
       | Some (Wire.String msg) -> msg
       | _ -> "server refused the " ^ what)

  let estimate_yield ?deadline ?samples ?seed ?meth ?t_cons c =
    match
      request ?deadline c (yield_request ?samples ?seed ?meth ?t_cons ())
    with
    | Error msg -> Error msg
    | Ok resp ->
      if Wire.member "ok" resp = Some (Wire.Bool true) then Ok resp
      else refused "yield estimate" resp

  let tune_request ?t_clk ~buffers ~measured () =
    Wire.Obj
      ([
         ("op", Wire.String "tune");
         ("buffers", buffers_to_json buffers);
         ("dies", Wire.mat_to_json measured);
       ]
      @
      match t_clk with None -> [] | Some x -> [ ("t_clk", Wire.Float x) ])

  let tune ?deadline ?t_clk ~buffers ~measured c =
    match request ?deadline c (tune_request ?t_clk ~buffers ~measured ()) with
    | Error msg -> Error msg
    | Ok resp ->
      if Wire.member "ok" resp = Some (Wire.Bool true) then Ok resp
      else refused "tune request" resp

  let shutdown c =
    match request c (Wire.Obj [ ("op", Wire.String "shutdown") ]) with
    | Ok _ | Error _ -> ()

  (* ---------------- retries ---------------- *)

  type retry = {
    attempts : int;
    base_delay : float;
    max_delay : float;
    connect_timeout : float;
    deadline : float;
  }

  let default_retry =
    {
      attempts = 5;
      base_delay = 0.05;
      max_delay = 2.0;
      connect_timeout = 5.0;
      deadline = 30.0;
    }

  (* Retry only what is safe to retry: transport failures (the server
     may never have seen the request — and predictions are idempotent
     anyway) and infrastructure responses, whose string [code] says the
     request was shed before being served whole. Semantic errors carry
     a numeric code and retrying them would just repeat the answer. *)
  let retryable_response resp =
    match Wire.member "ok" resp with
    | Some (Wire.Bool false) ->
      (match Wire.member "code" resp with
       | Some (Wire.String _) -> true
       | _ -> false)
    | _ -> false

  let request_with_retry ?(retry = default_retry) ?rng addr req =
    if retry.attempts < 1 then
      invalid_arg "Client.request_with_retry: attempts < 1";
    let rng =
      match rng with Some r -> r | None -> Rng.create 0x5eed (* deterministic default *)
    in
    let rec go attempt prev_sleep =
      let result =
        match connect ~retries:0 ~timeout:retry.connect_timeout addr with
        | c ->
          Fun.protect
            ~finally:(fun () -> close c)
            (fun () -> request ~deadline:retry.deadline c req)
        | exception Io.Timeout -> Error "connect timeout"
        | exception Unix.Unix_error (e, _, _) ->
          Error (Printf.sprintf "connect: %s" (Unix.error_message e))
      in
      let try_again =
        match result with Error _ -> true | Ok resp -> retryable_response resp
      in
      if (not try_again) || attempt >= retry.attempts then result
      else begin
        (* exponential backoff with decorrelated jitter:
           sleep ~ U(base, 3 * previous sleep), capped at max_delay *)
        let hi =
          Float.max retry.base_delay (Float.min retry.max_delay (prev_sleep *. 3.0))
        in
        let sleep = Rng.uniform rng retry.base_delay hi in
        Unix.sleepf sleep;
        go (attempt + 1) sleep
      end
    in
    go 1 retry.base_delay

  let predict_with_retry ?retry ?rng addr ?(robust = false) measured =
    match request_with_retry ?retry ?rng addr (predict_request robust measured) with
    | Error msg -> Error msg
    | Ok resp -> decode_predict resp
end
