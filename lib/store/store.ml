(* Re-export the library's inner modules: the library is wrapped with
   this file as its interface, so [Codec] and [Wal] are only reachable
   as [Store.Codec]/[Store.Wal] through these aliases. *)
module Codec = Codec
module Wal = Wal

type t = {
  fingerprint : string;
  t_cons : float;
  eps : float;
  kappa : float;
  n_paths : int;
  n_segments : int;
  n_vars : int;
  selection : Core.Select.t;
  blocks : Core.Robust.blocks;
  mu : Linalg.Vec.t;
  a_mat : Linalg.Mat.t;
}

let magic = "PSA1"

let current_version = 2

let header_size = 20 (* magic 4 + version 4 + payload length 8 + crc 4 *)

let of_selection ?(fingerprint = "") ?(kappa = Core.Config.default.Core.Config.kappa)
    ?(n_segments = 0) ~t_cons ~eps ~a ~mu (sel : Core.Select.t) =
  let n, m = Linalg.Mat.dims a in
  if Array.length mu <> n then invalid_arg "Store.of_selection: mu length mismatch";
  let rep = sel.Core.Select.indices in
  let rem = Core.Predictor.rem_indices sel.Core.Select.predictor in
  let a_r = Linalg.Mat.select_rows a rep in
  let a_m = Linalg.Mat.select_rows a rem in
  let blocks =
    { Core.Robust.gram = Linalg.Mat.gram a_r; cross = Linalg.Mat.mul_nt a_r a_m }
  in
  {
    fingerprint;
    t_cons;
    eps;
    kappa;
    n_paths = n;
    n_segments;
    n_vars = m;
    selection = sel;
    blocks;
    mu = Array.copy mu;
    a_mat = a;
  }

let predictor t = t.selection.Core.Select.predictor

let robust t = Core.Robust.of_parts ~base:(predictor t) t.blocks

(* ------------------------------------------------------------------ *)
(* Encoding *)

let encode_payload t =
  let b = Codec.W.create () in
  let sel = t.selection in
  let raw = Core.Predictor.export sel.Core.Select.predictor in
  Codec.W.str b t.fingerprint;
  Codec.W.f64 b t.t_cons;
  Codec.W.f64 b t.eps;
  Codec.W.f64 b t.kappa;
  Codec.W.u32 b t.n_paths;
  Codec.W.u32 b t.n_segments;
  Codec.W.u32 b t.n_vars;
  (* selection bookkeeping *)
  Codec.W.int_array b sel.Core.Select.indices;
  Codec.W.u32 b sel.Core.Select.rank;
  Codec.W.u32 b sel.Core.Select.effective_rank;
  Codec.W.u32 b sel.Core.Select.evaluations;
  Codec.W.f64 b sel.Core.Select.eps_r;
  Codec.W.float_array b sel.Core.Select.per_path_eps;
  (* the Theorem-2 predictor, exactly as built *)
  Codec.W.int_array b raw.Core.Predictor.raw_rep;
  Codec.W.int_array b raw.Core.Predictor.raw_rem;
  Codec.W.mat b raw.Core.Predictor.raw_w;
  Codec.W.float_array b raw.Core.Predictor.raw_mu_rep;
  Codec.W.float_array b raw.Core.Predictor.raw_mu_rem;
  Codec.W.mat b raw.Core.Predictor.raw_omega;
  Codec.W.float_array b raw.Core.Predictor.raw_sigmas;
  (* the robust predictor's cached reduced-system blocks *)
  Codec.W.mat b t.blocks.Core.Robust.gram;
  Codec.W.mat b t.blocks.Core.Robust.cross;
  (* full per-path means *)
  Codec.W.float_array b t.mu;
  (* v2: the full sensitivity matrix, for decision workloads (yield
     estimation needs every row, not just the reduced blocks) *)
  Codec.W.mat b t.a_mat;
  Codec.W.contents b

let to_bytes t =
  let payload = encode_payload t in
  let b = Buffer.create (header_size + String.length payload) in
  Buffer.add_string b magic;
  Buffer.add_int32_le b (Int32.of_int current_version);
  Buffer.add_int64_le b (Int64.of_int (String.length payload));
  Buffer.add_int32_le b (Int32.of_int (Codec.crc32 payload));
  Buffer.add_string b payload;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Decoding *)

let corrupt file msg = Error (Core.Errors.Corrupt_artifact { file; msg })

let decode_payload ~file payload =
  let r = Codec.R.create payload in
  let fingerprint = Codec.R.str r in
  let t_cons = Codec.R.f64 r in
  let eps = Codec.R.f64 r in
  let kappa = Codec.R.f64 r in
  let n_paths = Codec.R.u32 r in
  let n_segments = Codec.R.u32 r in
  let n_vars = Codec.R.u32 r in
  let indices = Codec.R.int_array r in
  let rank = Codec.R.u32 r in
  let effective_rank = Codec.R.u32 r in
  let evaluations = Codec.R.u32 r in
  let eps_r = Codec.R.f64 r in
  let per_path_eps = Codec.R.float_array r in
  (* sequential let-bindings: record-literal field order of evaluation
     is unspecified, and the reader must consume fields in file order *)
  let raw_rep = Codec.R.int_array r in
  let raw_rem = Codec.R.int_array r in
  let raw_w = Codec.R.mat r in
  let raw_mu_rep = Codec.R.float_array r in
  let raw_mu_rem = Codec.R.float_array r in
  let raw_omega = Codec.R.mat r in
  let raw_sigmas = Codec.R.float_array r in
  let raw =
    {
      Core.Predictor.raw_rep;
      raw_rem;
      raw_w;
      raw_mu_rep;
      raw_mu_rem;
      raw_omega;
      raw_sigmas;
    }
  in
  let gram = Codec.R.mat r in
  let cross = Codec.R.mat r in
  let mu = Codec.R.float_array r in
  let a_mat = Codec.R.mat r in
  if not (Codec.R.at_end r) then raise (Codec.Malformed "trailing bytes in payload");
  (* structural consistency: every cross-field relationship the encoder
     guarantees is re-checked, so a corrupted-but-CRC-colliding or
     hand-edited payload still fails closed *)
  let fail msg = raise (Codec.Malformed msg) in
  let rsel = Array.length indices in
  if indices <> raw.Core.Predictor.raw_rep then
    fail "selection indices disagree with predictor rows";
  if Array.length mu <> n_paths then fail "mu length disagrees with path count";
  if rsel + Array.length raw.Core.Predictor.raw_rem <> n_paths then
    fail "rep/rem split disagrees with path count";
  if Array.length per_path_eps <> Array.length raw.Core.Predictor.raw_rem then
    fail "per-path tolerance length disagrees with remainder count";
  let omr, omc = Linalg.Mat.dims raw.Core.Predictor.raw_omega in
  if omr > 0 && omc <> n_vars then fail "error-operator width disagrees with n_vars";
  let ar, ac = Linalg.Mat.dims a_mat in
  if ar <> n_paths || ac <> n_vars then
    fail "sensitivity matrix dims disagree with path/variable counts";
  (* Predictor.import re-validates index ordering and every dimension *)
  let predictor =
    try Core.Predictor.import raw
    with Invalid_argument msg -> fail msg
  in
  let blocks = { Core.Robust.gram; cross } in
  (* Robust.of_parts validates the block dimensions *)
  (try ignore (Core.Robust.of_parts ~base:predictor blocks)
   with Invalid_argument msg -> fail msg);
  ignore file;
  {
    fingerprint;
    t_cons;
    eps;
    kappa;
    n_paths;
    n_segments;
    n_vars;
    selection =
      {
        Core.Select.indices;
        predictor;
        rank;
        effective_rank;
        eps_r;
        per_path_eps;
        evaluations;
      };
    blocks;
    mu;
    a_mat;
  }

let of_bytes ?(file = "<bytes>") s =
  if String.length s < header_size then corrupt file "shorter than the header"
  else if String.sub s 0 4 <> magic then Error (Core.Errors.Bad_magic { file })
  else begin
    let version = Int32.to_int (String.get_int32_le s 4) land 0xFFFFFFFF in
    if version <> current_version then
      Error
        (Core.Errors.Version_mismatch { file; found = version; expected = current_version })
    else begin
      let plen = Int64.to_int (String.get_int64_le s 8) in
      if plen < 0 || String.length s - header_size < plen then
        corrupt file "payload shorter than the header says"
      else if String.length s - header_size > plen then
        corrupt file "trailing bytes after the payload"
      else begin
        let stored_crc = Int32.to_int (String.get_int32_le s 16) land 0xFFFFFFFF in
        let payload = String.sub s header_size plen in
        if Codec.crc32 payload <> stored_crc then
          corrupt file "checksum mismatch (CRC-32)"
        else
          match decode_payload ~file payload with
          | t -> Ok t
          | exception Codec.Truncated -> corrupt file "payload field truncated"
          | exception Codec.Malformed msg -> corrupt file msg
      end
    end
  end

(* ------------------------------------------------------------------ *)
(* Files *)

(* Crash-safe: the bytes go to a same-directory temp file which is
   fsynced and then atomically renamed over [path]. A crash at any
   instant leaves either the previous artifact or the new one on disk,
   never a torn hybrid — which is what lets a serving process SIGHUP-
   reload from [path] while another process rewrites it. The serving
   layer's checkpoint writer reuses this exact idiom. *)
let write_file_atomic path bytes =
  let tmp = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
  let remove_quiet f = try Sys.remove f with Sys_error _ -> () in
  match
    let fd =
      Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
    in
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        let b = Bytes.of_string bytes in
        let n = Bytes.length b in
        let off = ref 0 in
        while !off < n do
          off := !off + Unix.write fd b !off (n - !off)
        done;
        Unix.fsync fd);
    Sys.rename tmp path;
    (* durability of the rename itself: fsync the directory entry;
       best-effort — not every filesystem lets you open a directory *)
    (match Unix.openfile (Filename.dirname path) [ Unix.O_RDONLY ] 0 with
     | dfd ->
       (try Unix.fsync dfd with Unix.Unix_error _ -> ());
       (try Unix.close dfd with Unix.Unix_error _ -> ())
     | exception Unix.Unix_error _ -> ())
  with
  | () -> Ok ()
  | exception Sys_error msg ->
    remove_quiet tmp;
    Error (Core.Errors.Io { file = path; msg })
  | exception Unix.Unix_error (err, fn, _) ->
    remove_quiet tmp;
    Error
      (Core.Errors.Io
         { file = path; msg = Printf.sprintf "%s: %s" fn (Unix.error_message err) })

let save path t = write_file_atomic path (to_bytes t)

let load path =
  match
    let ic = open_in_bin path in
    Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () ->
        really_input_string ic (in_channel_length ic))
  with
  | s -> of_bytes ~file:path s
  | exception Sys_error msg -> Error (Core.Errors.Io { file = path; msg })
  | exception End_of_file ->
    (* the file shrank under the read loop: a torn artifact, not a
       filesystem failure — report it as corruption so operators reach
       for regeneration, not remounts *)
    Error
      (Core.Errors.Corrupt_artifact
         { file = path; msg = "truncated: unexpected end of file" })

(* ------------------------------------------------------------------ *)

(* Bit-exact equality via the canonical encoding: two artifacts are
   equal iff they serialize identically (floats compared as bits). *)
let equal a b = String.equal (to_bytes a) (to_bytes b)

let describe t =
  let sel = t.selection in
  let r = Array.length sel.Core.Select.indices in
  let buf = Buffer.create 256 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "format:          %s v%d" magic current_version;
  line "fingerprint:     %s" (if t.fingerprint = "" then "(none)" else t.fingerprint);
  line "t_cons:          %.3f ps" t.t_cons;
  line "tolerance eps:   %.2f%% (achieved eps_r %.2f%%)" (100.0 *. t.eps)
    (100.0 *. sel.Core.Select.eps_r);
  line "kappa:           %.2f" t.kappa;
  line "target paths:    %d (%d segments, %d variables)" t.n_paths t.n_segments
    t.n_vars;
  line "representatives: %d of %d (rank %d, effective rank %d)" r t.n_paths
    sel.Core.Select.rank sel.Core.Select.effective_rank;
  line "predicted paths: %d" (t.n_paths - r);
  line "payload:         %d bytes" (String.length (to_bytes t) - header_size);
  Buffer.contents buf
