(** Append-only write-ahead log for fleet observations.

    The durability contract of the serving layer: an [observe] die is
    journaled here — fsync'd — {e before} its acknowledgement leaves
    the server, so a [kill -9] at any instant loses nothing a client
    was told it had. Boot-time recovery loads the last checkpoint and
    {!fold}s the WAL suffix back into the monitor.

    {2 On-disk layout}

    A WAL is a directory of segment files [wal-<seq20>.log], where
    [<seq20>] is the zero-padded first sequence number the segment
    holds (names sort in replay order). Each record is framed

    {v
    offset  size  field
    0       4     frame length (8 + payload bytes), u32 LE
    4       4     CRC-32 (IEEE) of bytes 8.., u32 LE
    8       8     sequence number, u64 LE (strictly +1 per record)
    16      -     payload (opaque; callers use Codec for bit-exact
                  float round-trips, matching the PSA1 artifact codec)
    v}

    Appends are batched: one {!append} call frames every payload,
    issues a single [write] and a single [fsync], and only then
    returns — the fsync {e is} the ack barrier. A crash mid-append
    leaves a torn tail; {!open_} scans the last segment and truncates
    it back to the last intact record, so the log is always
    append-clean after open. Segments rotate at [segment_bytes];
    {!prune} deletes sealed segments fully covered by a checkpoint,
    keeping [retain_segments] sealed segments as a safety margin.

    Thread safety: {!append} and {!prune} serialize on an internal
    mutex and are safe from any thread (connection workers journal
    concurrently). {!fold} reads the directory without the handle and
    must not race a live writer. *)

type t

type config = {
  segment_bytes : int;
      (** Rotate the active segment once it reaches this many bytes.
          Default [1 lsl 22] (4 MiB). *)
  retain_segments : int;
      (** Sealed, checkpoint-covered segments kept by {!prune} as a
          safety margin before deletion. Default [1]. *)
}

val default_config : config

val open_ : ?config:config -> string -> (t, Core.Errors.t) result
(** Open (creating the directory and first segment if needed) and
    recover: the last segment is scanned record-by-record and
    physically truncated at the first torn or corrupt frame, and the
    next sequence number is positioned after the last intact record.
    Fails with a typed [Io]/[Corrupt_artifact] error; never raises. *)

val dir : t -> string

val next_seq : t -> int
(** The sequence number the next appended record will carry.
    Sequence numbers start at 1. *)

val append : t -> string list -> (int, Core.Errors.t) result
(** [append t payloads] journals the batch: consecutive sequence
    numbers, one write, one fsync, then returns the sequence number of
    the {e last} record (first is [last - length payloads + 1]).
    Rotates the segment first when the active one is full. Raises
    [Invalid_argument] on an empty batch or a payload larger than
    {!Codec.max_len}; I/O failures are typed errors (the caller must
    not ack). *)

val fold :
  ?from_seq:int ->
  string ->
  init:'a ->
  f:('a -> seq:int -> string -> 'a) ->
  ('a * int, Core.Errors.t) result
(** [fold dir ~init ~f] replays every intact record in sequence order,
    returning the accumulator and the highest sequence number seen
    ([0] when the log is empty). Records with [seq < from_seq]
    (default [1]) are skipped without being handed to [f]. A torn or
    corrupt tail in the {e last} segment ends the replay silently —
    that is the crash the log exists to absorb; corruption anywhere
    else (a bad frame mid-log, a sequence gap) is data loss and
    reports [Corrupt_artifact]. *)

val prune : t -> upto_seq:int -> (int, Core.Errors.t) result
(** Retention: delete sealed segments whose every record has
    [seq <= upto_seq] (i.e. is captured by a checkpoint), always
    keeping the active segment and the newest [retain_segments] sealed
    ones. Returns the number of segments deleted. *)

val close : t -> unit
(** Fsync and close the active segment. Idempotent; the handle must
    not be used afterwards. *)
