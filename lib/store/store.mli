(** Persistent selection artifacts.

    The paper's economics are one-time vs per-die: the SVD/QR selection
    (Algorithms 1-3) runs {e once per design}, then every fabricated
    die is predicted from a handful of measurements. This module makes
    the split durable: everything a die-time predictor needs — the
    {!Core.Select} result, the Theorem-2 weight matrix, the cached
    Gram/cross blocks of the fault-tolerant predictor, the per-path
    means, and the config/seed fingerprint that produced them — is
    written to a versioned, checksummed binary file that a serving
    process loads in milliseconds.

    {2 File format (version 2)}

    {v
    offset  size  field
    0       4     magic "PSA1"
    4       4     format version, u32 LE
    8       8     payload length, u64 LE
    16      4     CRC-32 (IEEE) of the payload, u32 LE
    20      -     payload
    v}

    The payload is a fixed positional sequence of length-prefixed
    fields (see [store.ml]); all integers are little-endian, all floats
    IEEE-754 doubles by bit pattern, so every value round-trips
    {e exactly}. Version 2 appends the full sensitivity matrix [A]
    after the mean vector so that decision workloads (yield estimation,
    per-die tuning) can run from the artifact alone.
    Versioning policy: the version is bumped on {e any}
    payload layout change; readers refuse both older and newer versions
    ({!Core.Errors.Version_mismatch}) rather than guess — artifacts are
    cheap to regenerate from the design database, silent misreads are
    not. A wrong magic is {!Core.Errors.Bad_magic}; truncation, a CRC
    mismatch, or an inconsistent payload is
    {!Core.Errors.Corrupt_artifact}. [load] never raises on bad input:
    every failure is a typed [Error] with a sysexits code. *)

module Codec = Codec
(** The little-endian bit-exact binary primitives behind the artifact
    payload — shared with {!Wal} record payloads and the serving
    layer's checkpoint codec. *)

module Wal = Wal
(** Append-only write-ahead log: the durability side of the store. *)

type t = {
  fingerprint : string;
      (** free-form provenance: circuit, seeds, config of the producing
          run — compared by operators, not parsed *)
  t_cons : float;        (** timing constraint the selection targets *)
  eps : float;           (** requested worst-case tolerance *)
  kappa : float;         (** WC quantile multiplier used *)
  n_paths : int;         (** target-pool size |P_tar| *)
  n_segments : int;      (** segment count of the pool *)
  n_vars : int;          (** variation-variable count *)
  selection : Core.Select.t;
  blocks : Core.Robust.blocks;
      (** cached [A_r A_r^T] and [A_r A_m^T] for {!Core.Robust} *)
  mu : Linalg.Vec.t;     (** full per-path mean vector, length [n_paths] *)
  a_mat : Linalg.Mat.t;
      (** full sensitivity matrix [A] ([n_paths] x [n_vars]) — what
          yield estimation and per-die tuning consume *)
}

val magic : string

val current_version : int

val header_size : int
(** Bytes before the payload: magic + version + length + CRC. *)

val of_selection :
  ?fingerprint:string ->
  ?kappa:float ->
  ?n_segments:int ->
  t_cons:float ->
  eps:float ->
  a:Linalg.Mat.t ->
  mu:Linalg.Vec.t ->
  Core.Select.t ->
  t
(** Package a selection over sensitivity matrix [a] (paths x variables)
    and mean vector [mu]. Computes the robust predictor's Gram/cross
    blocks from [a]; raises [Invalid_argument] on dimension mismatch. *)

val predictor : t -> Core.Predictor.t
(** The stored Theorem-2 predictor (shared with [selection.predictor]). *)

val robust : t -> Core.Robust.t
(** The fault-tolerant predictor reassembled from the stored blocks —
    no access to [A] needed. *)

val to_bytes : t -> string

val of_bytes : ?file:string -> string -> (t, Core.Errors.t) result
(** [file] tags the typed error (default ["<bytes>"]). *)

val write_file_atomic : string -> string -> (unit, Core.Errors.t) result
(** The crash-safe write idiom behind {!save}, exposed for other
    durable files (the serving layer's recovery checkpoints): bytes go
    to a same-directory temp file, are fsynced, and are atomically
    renamed over the destination; the directory entry is fsynced
    best-effort. A crash leaves either the old file or the new one,
    never a torn hybrid. *)

val save : string -> t -> (unit, Core.Errors.t) result
(** Crash-safe write: bytes land in a same-directory temp file, are
    fsynced, and are atomically renamed over the destination. A crash
    mid-save leaves either the old artifact or the new one — never a
    torn file — so a server may SIGHUP-reload the path while a writer
    replaces it. *)

val load : string -> (t, Core.Errors.t) result

val equal : t -> t -> bool
(** Bit-exact equality of every stored field (NaN-safe: compares float
    bit patterns, not values). *)

val describe : t -> string
(** Multi-line human-readable summary for [pathsel inspect]. *)
