type config = { segment_bytes : int; retain_segments : int }

let default_config = { segment_bytes = 1 lsl 22; retain_segments = 1 }

type t = {
  dir : string;
  cfg : config;
  lock : Mutex.t;
  mutable fd : Unix.file_descr;
  mutable seg_bytes : int; (* bytes in the active segment *)
  mutable next : int; (* sequence number of the next record *)
  mutable closed : bool;
}

let dir t = t.dir
let next_seq t = t.next

(* Frame: u32 len (8 + payload) | u32 crc (of seq+payload) | u64 seq
   | payload. 16 bytes of overhead per record. *)
let frame_header = 16

let typed_error ~file = function
  | Sys_error msg -> Core.Errors.Io { file; msg }
  | Unix.Unix_error (err, fn, _) ->
    Core.Errors.Io
      { file; msg = Printf.sprintf "%s: %s" fn (Unix.error_message err) }
  | exn -> raise exn

let protect_io ~file f =
  match f () with
  | v -> Ok v
  | exception ((Sys_error _ | Unix.Unix_error _) as exn) ->
    Error (typed_error ~file exn)

let corrupt file msg = Error (Core.Errors.Corrupt_artifact { file; msg })

(* best-effort directory-entry durability, as in [Store.save] *)
let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | dfd ->
    (try Unix.fsync dfd with Unix.Unix_error _ -> ());
    (try Unix.close dfd with Unix.Unix_error _ -> ())
  | exception Unix.Unix_error _ -> ()

let segment_name seq = Printf.sprintf "wal-%020d.log" seq

let segment_base name =
  (* "wal-<20 digits>.log" -> first sequence number it holds *)
  match int_of_string (String.sub name 4 20) with
  | seq when seq >= 1 -> Some seq
  | _ | (exception _) -> None

let is_segment name =
  String.length name = 28
  && String.sub name 0 4 = "wal-"
  && Filename.check_suffix name ".log"
  && segment_base name <> None

let list_segments dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter is_segment
  |> List.sort String.compare

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Scan one segment image. Returns the intact records (in order), the
   byte offset just past the last intact frame, and whether the scan
   stopped early (torn/corrupt tail). Sequence numbers must run
   [base, base+1, ...]: a skew means the file is not the segment its
   name claims, which is corruption, not tearing. *)
let scan_segment ~base s =
  let n = String.length s in
  let records = ref [] in
  let pos = ref 0 in
  let good_end = ref 0 in
  let expected = ref base in
  let torn = ref false in
  (try
     while (not !torn) && !pos + frame_header <= n do
       let len = Int32.to_int (String.get_int32_le s !pos) land 0xFFFFFFFF in
       if len < 8 || len > Codec.max_len || !pos + 8 + len > n then torn := true
       else begin
         let crc = Int32.to_int (String.get_int32_le s (!pos + 4)) land 0xFFFFFFFF in
         let body = String.sub s (!pos + 8) len in
         if Codec.crc32 body <> crc then torn := true
         else begin
           let seq = Int64.to_int (String.get_int64_le body 0) in
           if seq <> !expected then torn := true
           else begin
             records := (seq, String.sub body 8 (len - 8)) :: !records;
             incr expected;
             pos := !pos + 8 + len;
             good_end := !pos
           end
         end
       end
     done
   with Invalid_argument _ -> torn := true);
  let torn = !torn || !good_end < n in
  (List.rev !records, !good_end, torn)

let open_segment dir name =
  Unix.openfile (Filename.concat dir name)
    [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ]
    0o644

let open_ ?(config = default_config) dir =
  if config.segment_bytes < 1 lsl 12 then
    invalid_arg "Wal.open_: segment_bytes must be at least 4096";
  if config.retain_segments < 0 then
    invalid_arg "Wal.open_: retain_segments must be >= 0";
  protect_io ~file:dir @@ fun () ->
  (match Unix.mkdir dir 0o755 with
   | () -> ()
   | exception Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  match List.rev (list_segments dir) with
  | [] ->
    let name = segment_name 1 in
    let fd = open_segment dir name in
    fsync_dir dir;
    { dir; cfg = config; lock = Mutex.create (); fd; seg_bytes = 0;
      next = 1; closed = false }
  | last :: _ ->
    (* torn-tail recovery: truncate the active segment back to its
       last intact record so appends continue from clean bytes *)
    let base = Option.get (segment_base last) in
    let path = Filename.concat dir last in
    let s = read_file path in
    let records, good_end, torn = scan_segment ~base s in
    if torn then begin
      let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          Unix.ftruncate fd good_end;
          Unix.fsync fd)
    end;
    let next =
      match List.rev records with (seq, _) :: _ -> seq + 1 | [] -> base
    in
    let fd = open_segment dir last in
    { dir; cfg = config; lock = Mutex.create (); fd; seg_bytes = good_end;
      next; closed = false }

let rotate t =
  Unix.fsync t.fd;
  Unix.close t.fd;
  t.fd <- open_segment t.dir (segment_name t.next);
  t.seg_bytes <- 0;
  fsync_dir t.dir

let append t payloads =
  if payloads = [] then invalid_arg "Wal.append: empty batch";
  List.iter
    (fun p ->
      if String.length p > Codec.max_len - 8 then
        invalid_arg "Wal.append: payload too large")
    payloads;
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) @@ fun () ->
  if t.closed then invalid_arg "Wal.append: closed";
  protect_io ~file:t.dir @@ fun () ->
  if t.seg_bytes >= t.cfg.segment_bytes then rotate t;
  let first = t.next in
  let buf = Buffer.create 256 in
  List.iteri
    (fun i payload ->
      let seq = first + i in
      let len = 8 + String.length payload in
      let body = Bytes.create len in
      Bytes.set_int64_le body 0 (Int64.of_int seq);
      Bytes.blit_string payload 0 body 8 (String.length payload);
      let body = Bytes.unsafe_to_string body in
      let hdr = Bytes.create 8 in
      Bytes.set_int32_le hdr 0 (Int32.of_int len);
      Bytes.set_int32_le hdr 4 (Int32.of_int (Codec.crc32 body));
      Buffer.add_bytes buf hdr;
      Buffer.add_string buf body)
    payloads;
  let b = Buffer.to_bytes buf in
  let n = Bytes.length b in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write t.fd b !off (n - !off)
  done;
  (* the ack barrier: the batch is durable before any caller replies *)
  Unix.fsync t.fd;
  t.seg_bytes <- t.seg_bytes + n;
  t.next <- first + List.length payloads;
  t.next - 1

let fold ?(from_seq = 1) dir ~init ~f =
  match
    protect_io ~file:dir @@ fun () ->
    let segments = list_segments dir in
    List.map (fun name -> (name, read_file (Filename.concat dir name))) segments
  with
  | Error _ as e -> e
  | Ok images ->
    let n_segs = List.length images in
    let rec go i acc last images =
      match images with
      | [] -> Ok (acc, last)
      | (name, s) :: rest ->
        (match segment_base name with
         | None -> corrupt (Filename.concat dir name) "bad segment name"
         | Some base ->
           if last > 0 && base <> last + 1 then
             corrupt (Filename.concat dir name)
               (Printf.sprintf "sequence gap: segment starts at %d after %d"
                  base last)
           else begin
             let records, _, torn = scan_segment ~base s in
             if torn && i < n_segs - 1 then
               corrupt (Filename.concat dir name)
                 "corrupt record before the last segment"
             else begin
               let acc =
                 List.fold_left
                   (fun acc (seq, payload) ->
                     if seq >= from_seq then f acc ~seq payload else acc)
                   acc records
               in
               let last =
                 match List.rev records with
                 | (seq, _) :: _ -> seq
                 | [] -> if base > 1 then base - 1 else last
               in
               go (i + 1) acc last rest
             end
           end)
    in
    go 0 init 0 images

let prune t ~upto_seq =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) @@ fun () ->
  protect_io ~file:t.dir @@ fun () ->
  let segments = list_segments t.dir in
  (* a sealed segment is fully covered when the next segment's base
     (its successor's first record) is <= upto_seq + 1 *)
  let rec covered = function
    | a :: (b :: _ as rest) ->
      (match segment_base b with
       | Some base when base <= upto_seq + 1 -> a :: covered rest
       | _ -> [])
    | [ _ ] | [] -> [] (* never the active segment *)
  in
  let victims = covered segments in
  let keep = t.cfg.retain_segments in
  let n = List.length victims in
  let victims =
    if n <= keep then [] else List.filteri (fun i _ -> i < n - keep) victims
  in
  List.iter (fun name -> Sys.remove (Filename.concat t.dir name)) victims;
  if victims <> [] then fsync_dir t.dir;
  List.length victims

let close t =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) @@ fun () ->
  if not t.closed then begin
    t.closed <- true;
    (try Unix.fsync t.fd with Unix.Unix_error _ -> ());
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end
