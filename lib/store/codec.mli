(** Little-endian binary primitives and CRC-32 for the artifact codec.

    Deliberately boring: fixed-width little-endian integers, IEEE-754
    doubles by bit pattern (so floats round-trip {e exactly}), and
    length-prefixed aggregates. The reader bounds-checks every access
    and raises {!Truncated}/{!Malformed} instead of [Invalid_argument]
    so {!Store} can map decoder failures onto one typed error. *)

exception Truncated
(** The payload ended before the field being read. *)

exception Malformed of string
(** A length prefix or dimension is negative or absurdly large. *)

val max_len : int
(** Upper bound on any length prefix the reader will accept (also the
    WAL's frame-size sanity bound): a length beyond this is
    {!Malformed} garbage, not data. *)

val crc32 : string -> int
(** IEEE 802.3 (reflected, poly 0xEDB88320) CRC over the whole string,
    in [0, 2^32). *)

module W : sig
  type t

  val create : unit -> t
  val contents : t -> string
  val u32 : t -> int -> unit
  (** The value must fit in 32 bits; raises {!Malformed} otherwise. *)

  val f64 : t -> float -> unit
  (** Exact, by IEEE bit pattern. *)

  val str : t -> string -> unit
  val int_array : t -> int array -> unit
  val float_array : t -> float array -> unit
  val mat : t -> Linalg.Mat.t -> unit
end

module R : sig
  type t

  val create : ?pos:int -> string -> t
  val pos : t -> int
  val at_end : t -> bool
  val u32 : t -> int
  val f64 : t -> float
  val str : t -> string
  val int_array : t -> int array
  val float_array : t -> float array
  val mat : t -> Linalg.Mat.t
end
