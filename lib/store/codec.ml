exception Truncated
exception Malformed of string

(* Sanity cap on decoded lengths: a corrupt length prefix must fail
   fast, not attempt a multi-gigabyte allocation. 2^28 elements is far
   beyond any real selection artifact. *)
let max_len = 1 lsl 28

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 s =
  let t = Lazy.force crc_table in
  let c = ref 0xFFFFFFFF in
  String.iter (fun ch -> c := t.((!c lxor Char.code ch) land 0xFF) lxor (!c lsr 8)) s;
  !c lxor 0xFFFFFFFF

module W = struct
  type t = Buffer.t

  let create () = Buffer.create 4096

  let contents = Buffer.contents

  let u32 b v =
    if v < 0 || v > 0xFFFFFFFF then raise (Malformed "u32 out of range");
    Buffer.add_int32_le b (Int32.of_int v)

  let f64 b x = Buffer.add_int64_le b (Int64.bits_of_float x)

  let str b s =
    u32 b (String.length s);
    Buffer.add_string b s

  let int_array b a =
    u32 b (Array.length a);
    Array.iter (fun v -> u32 b v) a

  let float_array b a =
    u32 b (Array.length a);
    Array.iter (fun x -> f64 b x) a

  let mat b m =
    let rows, cols = Linalg.Mat.dims m in
    u32 b rows;
    u32 b cols;
    for i = 0 to rows - 1 do
      for j = 0 to cols - 1 do
        f64 b (Linalg.Mat.get m i j)
      done
    done
end

module R = struct
  type t = { s : string; mutable pos : int }

  let create ?(pos = 0) s = { s; pos }

  let pos t = t.pos

  let at_end t = t.pos = String.length t.s

  let need t n =
    if n < 0 || t.pos + n > String.length t.s then raise Truncated

  let u32 t =
    need t 4;
    let v = Int32.to_int (String.get_int32_le t.s t.pos) land 0xFFFFFFFF in
    t.pos <- t.pos + 4;
    v

  let f64 t =
    need t 8;
    let v = Int64.float_of_bits (String.get_int64_le t.s t.pos) in
    t.pos <- t.pos + 8;
    v

  let len t what =
    let n = u32 t in
    if n > max_len then raise (Malformed (what ^ " length out of range"));
    n

  let str t =
    let n = len t "string" in
    need t n;
    let s = String.sub t.s t.pos n in
    t.pos <- t.pos + n;
    s

  (* explicit loops: Array.init / Mat.init evaluation order is not a
     documented guarantee, and the reader is strictly sequential *)
  let int_array t =
    let n = len t "int array" in
    need t (4 * n);
    let a = Array.make n 0 in
    for i = 0 to n - 1 do
      a.(i) <- u32 t
    done;
    a

  let float_array t =
    let n = len t "float array" in
    need t (8 * n);
    let a = Array.make n 0.0 in
    for i = 0 to n - 1 do
      a.(i) <- f64 t
    done;
    a

  let mat t =
    let rows = len t "matrix rows" in
    let cols = len t "matrix cols" in
    if rows * cols > max_len then raise (Malformed "matrix size out of range");
    need t (8 * rows * cols);
    let data = Array.make (rows * cols) 0.0 in
    for k = 0 to (rows * cols) - 1 do
      data.(k) <- f64 t
    done;
    Linalg.Mat.init rows cols (fun i j -> data.((i * cols) + j))
end
