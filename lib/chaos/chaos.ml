(* A fault-injecting socket proxy.

   Sits between a client and the prediction server and mangles the
   byte stream according to a composable fault spec, mirroring the way
   Timing.Faults injects dirty *data*: each fault is a knob, [none]
   turns them all off, and any combination composes. The E16 soak
   experiment drives a server through this proxy and asserts the
   serving invariants (zero wrong answers, zero server deaths, bounded
   clean-lane latency) while the faults rage.

   Corruption deliberately writes the byte 0x01: a control character is
   illegal everywhere in the compact single-line JSON the wire speaks
   (Wire.parse rejects control characters inside strings and no token
   admits one), so a corrupted frame can only ever fail to parse —
   never silently alter a prediction. That is what keeps the soak's
   "every ok:true answer is bit-identical" invariant checkable. *)

type spec = {
  delay_ms : float;       (* fixed forwarding delay per chunk *)
  jitter_ms : float;      (* extra uniform delay in [0, jitter_ms] *)
  partial_write : float;  (* P(chunk dribbled out in small fragments) *)
  truncate : float;       (* P(chunk cut short mid-frame, then dropped link) *)
  corrupt : float;        (* P(one byte of the chunk replaced with 0x01) *)
  disconnect : float;     (* P(link dropped instead of forwarding) *)
  stall : float;          (* P(connection accepted, then never answered) *)
  eintr_burst : int;      (* SIGUSR1s fired at the victim per chunk *)
}

let none =
  {
    delay_ms = 0.0;
    jitter_ms = 0.0;
    partial_write = 0.0;
    truncate = 0.0;
    corrupt = 0.0;
    disconnect = 0.0;
    stall = 0.0;
    eintr_burst = 0;
  }

let validate s =
  let rate name v =
    if not (Float.is_finite v) || v < 0.0 || v > 1.0 then
      invalid_arg (Printf.sprintf "Chaos: %s rate %g outside [0, 1]" name v)
  in
  let delay name v =
    if not (Float.is_finite v) || v < 0.0 then
      invalid_arg (Printf.sprintf "Chaos: %s %g must be finite and >= 0" name v)
  in
  rate "partial" s.partial_write;
  rate "truncate" s.truncate;
  rate "corrupt" s.corrupt;
  rate "disconnect" s.disconnect;
  rate "stall" s.stall;
  delay "delay-ms" s.delay_ms;
  delay "jitter-ms" s.jitter_ms;
  if s.eintr_burst < 0 then invalid_arg "Chaos: eintr burst must be >= 0"

(* ------------------------------------------------------------------ *)
(* CLI-friendly spec strings: "delay=2,corrupt=0.05,stall=0.1,eintr=3" *)

let of_string str =
  let parse_field acc kv =
    let kv = String.trim kv in
    if kv = "" then Ok acc
    else
      match String.index_opt kv '=' with
      | None -> Result.Error (Printf.sprintf "chaos field %S has no '='" kv)
      | Some i ->
        let key = String.trim (String.sub kv 0 i) in
        let sv = String.trim (String.sub kv (i + 1) (String.length kv - i - 1)) in
        (match float_of_string_opt sv with
         | None -> Result.Error (Printf.sprintf "chaos field %S: bad number %S" key sv)
         | Some v ->
           (match key with
            | "delay" | "delay-ms" -> Ok { acc with delay_ms = v }
            | "jitter" | "jitter-ms" -> Ok { acc with jitter_ms = v }
            | "partial" | "partial-write" -> Ok { acc with partial_write = v }
            | "truncate" -> Ok { acc with truncate = v }
            | "corrupt" -> Ok { acc with corrupt = v }
            | "disconnect" -> Ok { acc with disconnect = v }
            | "stall" -> Ok { acc with stall = v }
            | "eintr" | "eintr-burst" -> Ok { acc with eintr_burst = int_of_float v }
            | _ -> Result.Error (Printf.sprintf "unknown chaos field %S" key)))
  in
  let rec go acc = function
    | [] ->
      (match validate acc with
       | () -> Ok acc
       | exception Invalid_argument m -> Result.Error m)
    | kv :: rest ->
      (match parse_field acc kv with
       | Ok acc -> go acc rest
       | Result.Error _ as e -> e)
  in
  go none (String.split_on_char ',' str)

let to_string s =
  String.concat ","
    (List.filter_map
       (fun (k, v, dflt) ->
         if Float.equal v dflt then None else Some (Printf.sprintf "%s=%g" k v))
       [
         ("delay", s.delay_ms, 0.0);
         ("jitter", s.jitter_ms, 0.0);
         ("partial", s.partial_write, 0.0);
         ("truncate", s.truncate, 0.0);
         ("corrupt", s.corrupt, 0.0);
         ("disconnect", s.disconnect, 0.0);
         ("stall", s.stall, 0.0);
         ("eintr", float_of_int s.eintr_burst, 0.0);
       ])

(* ------------------------------------------------------------------ *)
(* Proxy state *)

type stats = {
  connections : int;
  chunks : int;
  bytes : int;
  delayed : int;
  partial_writes : int;
  truncated : int;
  corrupted : int;
  disconnected : int;
  stalled : int;
  eintr_signals : int;
}

let zero_stats =
  {
    connections = 0;
    chunks = 0;
    bytes = 0;
    delayed = 0;
    partial_writes = 0;
    truncated = 0;
    corrupted = 0;
    disconnected = 0;
    stalled = 0;
    eintr_signals = 0;
  }

type t = {
  spec : spec;
  lfd : Unix.file_descr;
  bound : Serve.address;
  upstream : Serve.address;
  cleanup : unit -> unit;
  eintr_pid : int option;
  stop_flag : bool Atomic.t;
  sm : Mutex.t; (* guards [st] and [conns] *)
  mutable st : stats;
  mutable conns : Thread.t list;
  mutable acceptor : Thread.t option;
}

let bound_addr t = t.bound
let stats t =
  Mutex.lock t.sm;
  let s = t.st in
  Mutex.unlock t.sm;
  s

let bump t f =
  Mutex.lock t.sm;
  t.st <- f t.st;
  Mutex.unlock t.sm

let close_quiet fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* ------------------------------------------------------------------ *)
(* Per-connection pump *)

let sockaddr_of = function
  | Serve.Unix_sock path -> Unix.ADDR_UNIX path
  | Serve.Tcp port -> Unix.ADDR_INET (Unix.inet_addr_loopback, port)

let upstream_connect t =
  let domain =
    match t.upstream with
    | Serve.Unix_sock _ -> Unix.PF_UNIX
    | Serve.Tcp _ -> Unix.PF_INET
  in
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  match Serve.Io.connect fd (sockaddr_of t.upstream) ~timeout:5.0 with
  | () -> Some fd
  | exception (Serve.Io.Timeout | Unix.Unix_error _) ->
    close_quiet fd;
    None

(* read one chunk from [src], run it through the fault gauntlet, and
   forward what survives to [dst] *)
let forward t rng buf ~src ~dst =
  match Serve.Io.read src buf 0 (Bytes.length buf) ~timeout:0.5 with
  | Serve.Io.Eof -> `Closed
  | Serve.Io.Read_timeout -> `Idle
  | Serve.Io.Data k ->
    bump t (fun s -> { s with chunks = s.chunks + 1; bytes = s.bytes + k });
    if Rng.float rng < t.spec.disconnect then begin
      bump t (fun s -> { s with disconnected = s.disconnected + 1 });
      `Cut
    end
    else begin
      let k, cut_after =
        if k > 1 && Rng.float rng < t.spec.truncate then begin
          bump t (fun s -> { s with truncated = s.truncated + 1 });
          (Int.max 1 (k / 2), true)
        end
        else (k, false)
      in
      if Rng.float rng < t.spec.corrupt then begin
        (* 0x01 can only break the frame, never reshape a number *)
        Bytes.set buf (Rng.int rng k) '\x01';
        bump t (fun s -> { s with corrupted = s.corrupted + 1 })
      end;
      let d =
        t.spec.delay_ms
        +. (if t.spec.jitter_ms > 0.0 then Rng.uniform rng 0.0 t.spec.jitter_ms
            else 0.0)
      in
      if d > 0.0 then begin
        bump t (fun s -> { s with delayed = s.delayed + 1 });
        Unix.sleepf (d /. 1000.0)
      end;
      (match t.eintr_pid with
       | Some pid when t.spec.eintr_burst > 0 ->
         for _ = 1 to t.spec.eintr_burst do
           try Unix.kill pid Sys.sigusr1 with Unix.Unix_error _ -> ()
         done;
         bump t (fun s ->
             { s with eintr_signals = s.eintr_signals + t.spec.eintr_burst })
       | _ -> ());
      let data = Bytes.sub_string buf 0 k in
      let send s = Serve.Io.write_all dst s ~timeout:5.0 in
      (match
         if k > 1 && Rng.float rng < t.spec.partial_write then begin
           (* dribble the chunk out in fragments: exercises mid-frame
              reassembly without starving the peer's deadline *)
           bump t (fun s -> { s with partial_writes = s.partial_writes + 1 });
           let frag = Int.max 64 (k / 16) in
           let off = ref 0 in
           while !off < k do
             let len = Int.min frag (k - !off) in
             send (String.sub data !off len);
             Unix.sleepf 0.001;
             off := !off + len
           done
         end
         else send data
       with
      | () -> if cut_after then `Cut else `Ok
      | exception (Serve.Io.Timeout | Serve.Io.Closed) -> `Closed
      | exception Unix.Unix_error _ -> `Closed)
    end

let black_hole t cfd =
  (* accept-then-stall: swallow bytes, never answer, until the peer
     hangs up or the proxy stops — a slow-loris from the server's side *)
  bump t (fun s -> { s with stalled = s.stalled + 1 });
  let buf = Bytes.create 4096 in
  let rec go () =
    if not (Atomic.get t.stop_flag) then
      match Serve.Io.read cfd buf 0 (Bytes.length buf) ~timeout:0.25 with
      | Serve.Io.Eof -> ()
      | Serve.Io.Data _ | Serve.Io.Read_timeout -> go ()
  in
  go ()

let pump t rng cfd =
  bump t (fun s -> { s with connections = s.connections + 1 });
  if Rng.float rng < t.spec.stall then begin
    black_hole t cfd;
    close_quiet cfd
  end
  else
    match upstream_connect t with
    | None -> close_quiet cfd
    | Some ufd ->
      let buf = Bytes.create 65536 in
      let rec loop () =
        if not (Atomic.get t.stop_flag) then begin
          match Unix.select [ cfd; ufd ] [] [] 0.25 with
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
          | [], _, _ -> loop ()
          | ready, _, _ ->
            let res =
              if List.mem cfd ready then forward t rng buf ~src:cfd ~dst:ufd
              else `Idle
            in
            let res =
              match res with
              | (`Ok | `Idle) when List.mem ufd ready ->
                forward t rng buf ~src:ufd ~dst:cfd
              | r -> r
            in
            (match res with
             | `Ok | `Idle -> loop ()
             | `Closed | `Cut -> ())
        end
      in
      (match loop () with
       | () -> ()
       | exception Unix.Unix_error _ -> ());
      close_quiet cfd;
      close_quiet ufd

(* ------------------------------------------------------------------ *)
(* Lifecycle *)

let acceptor_loop t seed =
  let idx = ref 0 in
  while not (Atomic.get t.stop_flag) do
    match Serve.Io.wait_readable t.lfd 0.25 with
    | `Timeout | `Interrupted -> ()
    | `Ready ->
      (match Unix.accept t.lfd with
       | exception Unix.Unix_error _ -> ()
       | cfd, _ ->
         incr idx;
         (* per-connection RNG: deterministic given the seed and the
            connection order, independent across connections *)
         let rng = Rng.create (seed + (977 * !idx)) in
         let th = Thread.create (fun () -> pump t rng cfd) () in
         Mutex.lock t.sm;
         t.conns <- th :: t.conns;
         Mutex.unlock t.sm)
  done

let start ?(seed = 1337) ?eintr_pid spec ~listen ~upstream =
  validate spec;
  (* the proxy disconnects peers mid-write by design; any process
     hosting it (bench drivers, the pathsel chaos subcommand) must
     survive the resulting EPIPEs rather than die of SIGPIPE *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let lfd, bound, cleanup = Serve.listen_on listen in
  let t =
    {
      spec;
      lfd;
      bound;
      upstream;
      cleanup;
      eintr_pid;
      stop_flag = Atomic.make false;
      sm = Mutex.create ();
      st = zero_stats;
      conns = [];
      acceptor = None;
    }
  in
  t.acceptor <- Some (Thread.create (fun () -> acceptor_loop t seed) ());
  t

let stop t =
  Atomic.set t.stop_flag true;
  (match t.acceptor with Some th -> Thread.join th | None -> ());
  let conns =
    Mutex.lock t.sm;
    let c = t.conns in
    t.conns <- [];
    Mutex.unlock t.sm;
    c
  in
  List.iter Thread.join conns;
  close_quiet t.lfd;
  t.cleanup ()

(* ------------------------------------------------------------------ *)
(* Process-level killer *)

(* The proxy above mangles bytes; this kills the whole process. Arming
   one against a server under live traffic lands the SIGKILL at a
   uniformly random point in whatever the server happens to be doing —
   mid-WAL-append, mid-fsync, between a checkpoint's temp-file write and
   its rename — which is exactly the distribution of crashes the
   durability layer claims to survive. SIGKILL is deliberate: it cannot
   be caught, so no shutdown path gets a chance to tidy up. *)
module Killer = struct
  type t = {
    delay : float; (* the drawn fire time, seconds after arm *)
    cancelled : bool Atomic.t;
    did_fire : bool Atomic.t;
    thread : Thread.t;
  }

  let arm ?(seed = 1) ~min_delay ~max_delay pid =
    if
      not
        (Float.is_finite min_delay && Float.is_finite max_delay
       && min_delay >= 0.0 && max_delay >= min_delay)
    then invalid_arg "Chaos.Killer: need 0 <= min_delay <= max_delay";
    let rng = Rng.create seed in
    let delay =
      if max_delay > min_delay then Rng.uniform rng min_delay max_delay
      else min_delay
    in
    let cancelled = Atomic.make false in
    let did_fire = Atomic.make false in
    let thread =
      Thread.create
        (fun () ->
          (* sleep in short slices so [cancel] takes effect promptly *)
          let deadline = Unix.gettimeofday () +. delay in
          let rec wait () =
            if not (Atomic.get cancelled) then begin
              let left = deadline -. Unix.gettimeofday () in
              if left > 0.0 then begin
                Unix.sleepf (Float.min left 0.01);
                wait ()
              end
              else begin
                Atomic.set did_fire true;
                try Unix.kill pid Sys.sigkill
                with Unix.Unix_error _ -> () (* already gone: still a kill point *)
              end
            end
          in
          wait ())
        ()
    in
    { delay; cancelled; did_fire; thread }

  let delay t = t.delay

  let fired t = Atomic.get t.did_fire

  let cancel t =
    Atomic.set t.cancelled true;
    Thread.join t.thread;
    Atomic.get t.did_fire
end
