(** A fault-injecting socket proxy for chaos-testing the server.

    [Chaos.start] listens on one address and forwards byte chunks to an
    upstream {!Serve} server, mangling them per a composable fault
    {!spec} — the wire-level sibling of [Timing.Faults]' data-level
    injection. Faults compose: a chunk can be delayed {e and} corrupted
    {e and} dribbled out in fragments.

    Corruption writes the byte [0x01], a control character no token of
    the compact single-line JSON admits, so a corrupted frame can only
    fail to parse — never silently change a prediction. The E16 soak
    leans on that: every ["ok":true] answer must be bit-identical to the
    offline predictor even while every fault fires. *)

type spec = {
  delay_ms : float;       (** fixed forwarding delay per chunk, ms *)
  jitter_ms : float;      (** extra uniform delay in [\[0, jitter_ms\]] *)
  partial_write : float;  (** P(chunk dribbled out in small fragments) *)
  truncate : float;       (** P(chunk cut mid-frame, link then dropped) *)
  corrupt : float;        (** P(one byte replaced with [0x01]) *)
  disconnect : float;     (** P(link dropped instead of forwarding) *)
  stall : float;          (** P(connection accepted, then never answered) *)
  eintr_burst : int;      (** SIGUSR1s fired at [eintr_pid] per chunk *)
}

val none : spec
(** All faults off — a transparent proxy. *)

val validate : spec -> unit
(** Raises [Invalid_argument] on rates outside [\[0, 1\]], negative or
    non-finite delays, or a negative burst. *)

val of_string : string -> (spec, string) result
(** Comma-separated [key=value] fields over {!none}, mirroring
    [Timing.Faults.of_string]:
    ["delay=2,jitter=5,partial=0.2,truncate=0.05,corrupt=0.05,disconnect=0.02,stall=0.1,eintr=3"]. *)

val to_string : spec -> string
(** Only non-default fields, parseable by {!of_string}. *)

(** {1 Proxy} *)

type stats = {
  connections : int;
  chunks : int;
  bytes : int;
  delayed : int;
  partial_writes : int;
  truncated : int;
  corrupted : int;
  disconnected : int;
  stalled : int;
  eintr_signals : int;
}

type t

val start :
  ?seed:int ->
  ?eintr_pid:int ->
  spec ->
  listen:Serve.address ->
  upstream:Serve.address ->
  t
(** Bind [listen] and start the acceptor thread; each accepted
    connection gets its own pump thread and a deterministic
    per-connection RNG derived from [seed]. [eintr_pid] is the victim
    of [eintr_burst] signals (typically the server's pid). Also sets
    the calling process to ignore [SIGPIPE]: the proxy (and the lanes
    talking through it) hit mid-write hangups by design, and those
    must surface as [EPIPE] errors, not kill the host process. Raises
    [Invalid_argument] on an invalid spec. *)

val bound_addr : t -> Serve.address
(** The actual listening address ([Tcp 0] resolves to the real port). *)

val stats : t -> stats
(** Snapshot of the fault counters. *)

val stop : t -> unit
(** Stop accepting, join all pump threads, close and clean up the
    listening socket. *)

(** {1 Process-level killer}

    The proxy mangles bytes; this kills processes. Arming a killer
    against a server under live traffic lands a SIGKILL at a uniformly
    random point in whatever the server is doing — mid-WAL-append,
    mid-fsync, between a checkpoint's temp write and its rename — the
    crash distribution the durability layer claims to survive. SIGKILL
    cannot be caught, so no shutdown path gets to tidy up. The E20
    kill/recovery soak drives repeated arm→kill→restart cycles. *)
module Killer : sig
  type t

  val arm : ?seed:int -> min_delay:float -> max_delay:float -> int -> t
  (** [arm ~min_delay ~max_delay pid] starts a thread that SIGKILLs
      [pid] after a delay drawn uniformly from
      [\[min_delay, max_delay\]] seconds ([seed] makes the draw
      deterministic). A pid already gone when the timer fires is
      ignored — the kill point still counts. Raises [Invalid_argument]
      unless [0 <= min_delay <= max_delay], both finite. *)

  val delay : t -> float
  (** The drawn fire time, seconds after [arm]. *)

  val fired : t -> bool
  (** Whether the SIGKILL has been sent (racy by nature: a [false] may
      be stale by the time you read it). *)

  val cancel : t -> bool
  (** Disarm (if the timer has not fired yet) and join the timer
      thread; returns whether the kill had already been sent. Always
      call it — an unjoined timer thread outlives its soak cycle. *)
end
