type params = {
  num_gates : int;
  num_inputs : int;
  num_outputs : int;
  depth : int;
  hub_fraction : float;
  seed : int;
}

let default =
  { num_gates = 400; num_inputs = 30; num_outputs = 25; depth = 14;
    hub_fraction = 0.05; seed = 1 }

(* Cell mix of a typical area-optimized synthesized netlist: NAND/NOR
   heavy, some complex cells, few XORs. *)
let pick_cell rng =
  let r = Rng.float rng in
  if r < 0.22 then Cell.Inv
  else if r < 0.30 then Cell.Buf
  else if r < 0.52 then Cell.Nand2
  else if r < 0.60 then Cell.Nor2
  else if r < 0.68 then Cell.And2
  else if r < 0.76 then Cell.Or2
  else if r < 0.82 then Cell.Nand3
  else if r < 0.86 then Cell.Nor3
  else if r < 0.90 then Cell.Xor2
  else if r < 0.93 then Cell.Xnor2
  else if r < 0.97 then Cell.Aoi21
  else Cell.Oai21

let generate p =
  if p.num_gates <= 0 || p.num_inputs <= 0 || p.num_outputs <= 0 then
    invalid_arg "Generator.generate: sizes must be positive";
  if p.depth < 1 then invalid_arg "Generator.generate: depth must be >= 1";
  let rng = Rng.create p.seed in
  let depth = min p.depth p.num_gates in
  (* Distribute gates over levels: wider in the middle, like a synthesized
     cone structure. *)
  let level_of = Array.make p.num_gates 0 in
  let weight l =
    let t = float_of_int l /. float_of_int (max 1 (depth - 1)) in
    0.5 +. (2.0 *. t *. (1.0 -. t))
  in
  let weights = Array.init depth weight in
  let wtotal = Array.fold_left ( +. ) 0.0 weights in
  (* at least one gate per level, rest proportional to the weights *)
  let counts = Array.make depth 1 in
  let remaining = ref (p.num_gates - depth) in
  for l = 0 to depth - 1 do
    let share =
      int_of_float (Float.round (weights.(l) /. wtotal *. float_of_int (p.num_gates - depth)))
    in
    let add = min !remaining share in
    counts.(l) <- counts.(l) + add;
    remaining := !remaining - add
  done;
  (* dump any rounding remainder into the middle level *)
  counts.(depth / 2) <- counts.(depth / 2) + !remaining;
  let next_id = ref 0 in
  let by_level = Array.make depth [||] in
  for l = 0 to depth - 1 do
    by_level.(l) <- Array.init counts.(l) (fun _ ->
        let id = !next_id in
        incr next_id;
        level_of.(id) <- l;
        id)
  done;
  assert (!next_id = p.num_gates);
  (* Mark hubs: gates whose outputs are preferentially reused. *)
  let is_hub = Array.make p.num_gates false in
  let n_hubs = int_of_float (p.hub_fraction *. float_of_int p.num_gates) in
  for _ = 1 to n_hubs do
    is_hub.(Rng.int rng p.num_gates) <- true
  done;
  (* Pick a fanin signal for a gate at level [l]: mostly the previous
     level (long chains), sometimes any earlier level (reconvergence),
     occasionally a primary input. Hubs at the source level are chosen
     with boosted probability. *)
  let pick_from_level lsrc =
    let cands = by_level.(lsrc) in
    let c0 = cands.(Rng.int rng (Array.length cands)) in
    if is_hub.(c0) then c0
    else begin
      (* one redraw biased toward hubs *)
      let c1 = cands.(Rng.int rng (Array.length cands)) in
      if is_hub.(c1) then c1 else c0
    end
  in
  let pick_fanin l =
    if l = 0 then Netlist.Pi (Rng.int rng p.num_inputs)
    else begin
      let r = Rng.float rng in
      if r < 0.12 then Netlist.Pi (Rng.int rng p.num_inputs)
      else if r < 0.82 then Netlist.Gate_out (pick_from_level (l - 1))
      else Netlist.Gate_out (pick_from_level (Rng.int rng l))
    end
  in
  (* Placement: a gate sits near the mean position of its gate fanins
     (placement locality), with jitter; level-0 gates spread on a grid. *)
  let positions = Array.make p.num_gates (0.0, 0.0) in
  let clamp v = Float.min 1.0 (Float.max 0.0 v) in
  let place id fanin =
    let gate_positions =
      Array.to_list fanin
      |> List.filter_map (function
           | Netlist.Gate_out g -> Some positions.(g)
           | Netlist.Pi _ -> None)
    in
    let x, y =
      match gate_positions with
      | [] -> (Rng.float rng, Rng.float rng)
      | ps ->
        let n = float_of_int (List.length ps) in
        let sx = List.fold_left (fun acc (x, _) -> acc +. x) 0.0 ps in
        let sy = List.fold_left (fun acc (_, y) -> acc +. y) 0.0 ps in
        ( clamp ((sx /. n) +. Rng.uniform rng (-0.06) 0.06),
          clamp ((sy /. n) +. Rng.uniform rng (-0.06) 0.06) )
    in
    positions.(id) <- (x, y)
  in
  let gate_defs = ref [] in
  for l = 0 to depth - 1 do
    Array.iter
      (fun id ->
        let cell = pick_cell rng in
        let fanin = Array.init (Cell.arity cell) (fun _ -> pick_fanin l) in
        place id fanin;
        gate_defs := (Printf.sprintf "g%d" id, cell, fanin, positions.(id)) :: !gate_defs)
      by_level.(l)
  done;
  let gate_defs = List.rev !gate_defs in
  (* Outputs: every sink-less gate must be observable, then top up with
     last-level gates until we reach the requested output count. *)
  let has_fanout = Array.make p.num_gates false in
  List.iter
    (fun (_, _, fanin, _) ->
      Array.iter
        (function Netlist.Gate_out g -> has_fanout.(g) <- true | Netlist.Pi _ -> ())
        fanin)
    gate_defs;
  let sinkless = ref [] in
  for id = p.num_gates - 1 downto 0 do
    if not has_fanout.(id) then sinkless := id :: !sinkless
  done;
  let outputs = ref (List.map (fun id -> Netlist.Gate_out id) !sinkless) in
  let last = by_level.(depth - 1) in
  let i = ref 0 in
  while List.length !outputs < p.num_outputs && !i < Array.length last do
    let id = last.(!i) in
    incr i;
    if has_fanout.(id) then outputs := Netlist.Gate_out id :: !outputs
  done;
  Netlist.build
    ~name:(Printf.sprintf "synth%d_s%d" p.num_gates p.seed)
    ~num_inputs:p.num_inputs ~gates:gate_defs ~outputs:!outputs
