(** The paper's evaluation circuits.

    Ten ISCAS'89-style benchmarks with the gate counts, logic depths,
    and spatial-correlation configurations of the paper's Tables 1 and 2
    (3-level model, 21 regions, for the small circuits; 5-level model,
    341 regions, for the large ones). The netlists are synthetic
    structural analogues; see DESIGN.md, "Substitutions".

    [scale] shrinks a preset for fast runs: gate/IO counts are
    multiplied by [scale] (depth is preserved). [scale = 1.0] is
    paper-scale. *)

type preset = {
  bench_name : string;
  gate_count : int;     (** |G| at scale 1.0 *)
  depth : int;
  inputs : int;
  outputs : int;
  region_levels : int;  (** 3 => 21 regions, 5 => 341 regions *)
}

val all : preset list
(** The paper's evaluation suite, in the tables' order: s1196 ... s38417. *)

val extended : preset list
(** The full ISCAS'89 family (s27 ... s38584), including {!all}; sizes
    follow the published gate counts. Useful for user experiments beyond
    the paper's tables. *)

val find : string -> preset option
(** Case-insensitive lookup by name, over {!extended}. *)

val netlist : ?scale:float -> preset -> Netlist.t
(** Deterministic netlist for the preset (seeded by the preset name).
    Raises [Invalid_argument] if [scale] is not in (0, 1]. *)

val region_count : preset -> int
(** Total regions |R| of the hierarchical model: sum of 4^k for
    k < region_levels. *)
