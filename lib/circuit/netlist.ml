type gate = {
  id : int;
  name : string;
  cell : Cell.kind;
  fanin : int array;
  x : float;
  y : float;
}

type signal = Pi of int | Gate_out of int

type t = {
  name : string;
  num_inputs : int;
  gates : gate array;
  outputs : signal array;
  fanout_counts : int array;       (* per gate: gate sinks + PO sinks *)
  gate_fanouts : int list array;   (* per gate: sink gate ids *)
}

let signal_code ~num_inputs = function
  | Pi i -> i
  | Gate_out g -> num_inputs + g

let build ~name ~num_inputs ~gates ~outputs =
  if num_inputs < 0 then invalid_arg "Netlist.build: negative input count";
  if outputs = [] then invalid_arg "Netlist.build: no outputs";
  let n = List.length gates in
  let seen_names = Hashtbl.create (n + num_inputs) in
  let check_signal ctx limit = function
    | Pi i ->
      if i < 0 || i >= num_inputs then
        invalid_arg (Printf.sprintf "Netlist.build: %s references bad input %d" ctx i)
    | Gate_out g ->
      if g < 0 || g >= limit then
        invalid_arg
          (Printf.sprintf "Netlist.build: %s references gate %d before definition" ctx g)
  in
  let gate_array =
    Array.of_list
      (List.mapi
         (fun id (gname, cell, fanin, (x, y)) ->
           if Hashtbl.mem seen_names gname then
             invalid_arg (Printf.sprintf "Netlist.build: duplicate gate name %s" gname);
           Hashtbl.add seen_names gname ();
           if Array.length fanin <> Cell.arity cell then
             invalid_arg
               (Printf.sprintf "Netlist.build: gate %s has %d fanins, cell %s wants %d"
                  gname (Array.length fanin) (Cell.name cell) (Cell.arity cell));
           if x < 0.0 || x > 1.0 || y < 0.0 || y > 1.0 then
             invalid_arg (Printf.sprintf "Netlist.build: gate %s placed off-die" gname);
           Array.iter (check_signal gname id) fanin;
           let fanin = Array.map (signal_code ~num_inputs) fanin in
           { id; name = gname; cell; fanin; x; y })
         gates)
  in
  List.iter (check_signal "output" n) outputs;
  let fanout_counts = Array.make n 0 in
  let gate_fanouts = Array.make n [] in
  Array.iter
    (fun g ->
      Array.iter
        (fun code ->
          if code >= num_inputs then begin
            let src = code - num_inputs in
            fanout_counts.(src) <- fanout_counts.(src) + 1;
            gate_fanouts.(src) <- g.id :: gate_fanouts.(src)
          end)
        g.fanin)
    gate_array;
  List.iter
    (function
      | Pi _ -> ()
      | Gate_out g -> fanout_counts.(g) <- fanout_counts.(g) + 1)
    outputs;
  Array.iteri
    (fun id c ->
      if c = 0 then
        invalid_arg
          (Printf.sprintf "Netlist.build: gate %s (id %d) drives nothing"
             gate_array.(id).name id))
    fanout_counts;
  {
    name;
    num_inputs;
    gates = gate_array;
    outputs = Array.of_list outputs;
    fanout_counts;
    gate_fanouts = Array.map List.rev gate_fanouts;
  }

let name (t : t) = t.name

let num_inputs t = t.num_inputs

let num_gates t = Array.length t.gates

let gate t i = t.gates.(i)

let gates t = t.gates

let outputs t = t.outputs

let fanout_count t g = t.fanout_counts.(g)

let fanouts t g = List.map (fun id -> Gate_out id) t.gate_fanouts.(g)

let encode_signal t s = signal_code ~num_inputs:t.num_inputs s

let decode_signal t code =
  if code < t.num_inputs then Pi code else Gate_out (code - t.num_inputs)

let signal_name t = function
  | Pi i -> Printf.sprintf "pi%d" i
  | Gate_out g -> t.gates.(g).name

let depth t =
  let d = Array.make (Array.length t.gates) 1 in
  Array.iter
    (fun g ->
      let dmax = ref 0 in
      Array.iter
        (fun code ->
          if code >= t.num_inputs then begin
            let src = code - t.num_inputs in
            if d.(src) > !dmax then dmax := d.(src)
          end)
        g.fanin;
      d.(g.id) <- !dmax + 1)
    t.gates;
  Array.fold_left max 0 d

let stats (t : t) =
  Printf.sprintf "%s: %d PIs, %d gates, %d POs, depth %d" t.name t.num_inputs
    (num_gates t) (Array.length t.outputs) (depth t)
