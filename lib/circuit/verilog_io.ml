exception Parse_error of int * string

let fail line fmt = Printf.ksprintf (fun s -> raise (Parse_error (line, s))) fmt

(* ------------------------------------------------------------------ *)
(* Lexer *)

type token =
  | Tid of string
  | Tlparen
  | Trparen
  | Tcomma
  | Tsemi
  | Tdot

let keywords = [ "module"; "endmodule"; "input"; "output"; "wire" ]

let tokenize text =
  let n = String.length text in
  let toks = ref [] in
  let line = ref 1 in
  let i = ref 0 in
  let push t = toks := (t, !line) :: !toks in
  let is_id_char c =
    match c with
    | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '$' -> true
    | _ -> false
  in
  while !i < n do
    let c = text.[!i] in
    (match c with
     | '\n' -> incr line; incr i
     | ' ' | '\t' | '\r' -> incr i
     | '/' when !i + 1 < n && text.[!i + 1] = '/' ->
       while !i < n && text.[!i] <> '\n' do incr i done
     | '/' when !i + 1 < n && text.[!i + 1] = '*' ->
       i := !i + 2;
       let closed = ref false in
       while not !closed && !i < n do
         if text.[!i] = '\n' then incr line;
         if !i + 1 < n && text.[!i] = '*' && text.[!i + 1] = '/' then begin
           closed := true;
           i := !i + 2
         end
         else incr i
       done;
       if not !closed then fail !line "unterminated comment"
     | '(' -> push Tlparen; incr i
     | ')' -> push Trparen; incr i
     | ',' -> push Tcomma; incr i
     | ';' -> push Tsemi; incr i
     | '.' -> push Tdot; incr i
     | '\\' ->
       (* escaped identifier: up to whitespace *)
       let start = !i + 1 in
       i := start;
       while !i < n && text.[!i] <> ' ' && text.[!i] <> '\t' && text.[!i] <> '\n' do
         incr i
       done;
       push (Tid (String.sub text start (!i - start)))
     | _ when is_id_char c ->
       let start = !i in
       while !i < n && is_id_char text.[!i] do incr i done;
       push (Tid (String.sub text start (!i - start)))
     | '[' -> fail !line "buses are not supported by the structural subset"
     | _ -> fail !line "unexpected character %C" c)
  done;
  List.rev !toks

(* ------------------------------------------------------------------ *)
(* Parser *)

type stream = { mutable toks : (token * int) list }

let peek s = match s.toks with [] -> None | t :: _ -> Some t

let next s what =
  match s.toks with
  | [] -> fail 0 "expected %s at end of input" what
  | t :: rest ->
    s.toks <- rest;
    t

let expect_tok s what t0 =
  let t, line = next s what in
  if t <> t0 then fail line "expected %s" what

let expect_id s what =
  match next s what with
  | Tid w, _ -> w
  | _, line -> fail line "expected %s" what

let parse_id_list s =
  (* names separated by commas, terminated by ';' *)
  let rec go acc =
    let id = expect_id s "identifier" in
    match next s "',' or ';'" with
    | Tcomma, _ -> go (id :: acc)
    | Tsemi, _ -> List.rev (id :: acc)
    | _, line -> fail line "expected ',' or ';'"
  in
  go []

type connection = Positional of string list | Named of (string * string) list

let parse_connections s =
  expect_tok s "'('" Tlparen;
  match peek s with
  | Some (Tdot, _) ->
    (* named: .PORT(net), ... *)
    let rec go acc =
      expect_tok s "'.'" Tdot;
      let port = expect_id s "port name" in
      expect_tok s "'('" Tlparen;
      let net = expect_id s "net name" in
      expect_tok s "')'" Trparen;
      match next s "',' or ')'" with
      | Tcomma, _ -> go ((port, net) :: acc)
      | Trparen, _ -> Named (List.rev ((port, net) :: acc))
      | _, line -> fail line "expected ',' or ')'"
    in
    go []
  | Some _ ->
    let rec go acc =
      let net = expect_id s "net name" in
      match next s "',' or ')'" with
      | Tcomma, _ -> go (net :: acc)
      | Trparen, _ -> Positional (List.rev (net :: acc))
      | _, line -> fail line "expected ',' or ')'"
    in
    go []
  | None -> fail 0 "unterminated connection list"

(* Verilog primitive name -> generic function name for arity dispatch *)
let primitive_function = function
  | "and" -> Some "AND"
  | "or" -> Some "OR"
  | "nand" -> Some "NAND"
  | "nor" -> Some "NOR"
  | "xor" -> Some "XOR"
  | "xnor" -> Some "XNOR"
  | "not" -> Some "NOT"
  | "buf" -> Some "BUF"
  | _ -> None

type raw_instance = {
  line : int;
  cell : string;        (* cell or primitive name *)
  out_net : string;
  in_nets : string list;
}

let parse ~name text =
  let s = { toks = tokenize text } in
  expect_tok s "'module'" (Tid "module");
  let mod_name = expect_id s "module name" in
  (* header port list (names only) *)
  (match peek s with
   | Some (Tlparen, _) ->
     ignore (next s "(");
     let rec skip () =
       match next s "port list" with
       | Trparen, _ -> ()
       | (Tid _ | Tcomma), _ -> skip ()
       | _, line -> fail line "unexpected token in port list"
     in
     skip ();
     expect_tok s "';'" Tsemi
   | Some _ | None -> ());
  let inputs = ref [] in
  let outputs = ref [] in
  let wires = ref [] in
  let instances = ref [] in
  let finished = ref false in
  while not !finished do
    match next s "statement" with
    | Tid "endmodule", _ -> finished := true
    | Tid "input", _ -> inputs := !inputs @ parse_id_list s
    | Tid "output", _ -> outputs := !outputs @ parse_id_list s
    | Tid "wire", _ -> wires := !wires @ parse_id_list s
    | Tid cellname, line when not (List.mem cellname keywords) ->
      let inst = expect_id s "instance name" in
      let conns = parse_connections s in
      expect_tok s "';'" Tsemi;
      let out_net, in_nets =
        match conns with
        | Positional (out :: ins) -> (out, ins)
        | Positional [] -> fail line "instance %s has no connections" inst
        | Named pairs ->
          (* output pins: Z, Q, Y, OUT; everything else is an input *)
          let is_output p =
            List.mem (String.uppercase_ascii p) [ "Z"; "Q"; "Y"; "OUT"; "O" ]
          in
          let outs, ins = List.partition (fun (p, _) -> is_output p) pairs in
          (match outs with
           | [ (_, net) ] -> (net, List.map snd ins)
           | [] -> fail line "instance %s has no output connection" inst
           | _ -> fail line "instance %s has multiple output connections" inst)
      in
      ignore inst;
      instances := { line; cell = cellname; out_net; in_nets } :: !instances
    | Tid kw, line -> fail line "unsupported construct %s" kw
    | _, line -> fail line "unexpected token"
  done;
  let instances = List.rev !instances in
  let mod_name = if mod_name = "" then name else mod_name in
  (* DFF cut: Q net becomes a pseudo input, D net a pseudo output *)
  let is_dff c =
    let u = String.uppercase_ascii c in
    String.length u >= 3 && String.sub u 0 3 = "DFF"
  in
  let dffs, logic = List.partition (fun r -> is_dff r.cell) instances in
  let pseudo_inputs = List.map (fun r -> r.out_net) dffs in
  let pseudo_outputs = List.concat_map (fun r -> r.in_nets) dffs in
  let all_inputs = !inputs @ pseudo_inputs in
  let all_outputs = !outputs @ pseudo_outputs in
  (* translate to the .bench intermediate and reuse its topological
     ordering and decomposition machinery *)
  let buf = Buffer.create 4096 in
  List.iter (fun i -> Buffer.add_string buf (Printf.sprintf "INPUT(%s)\n" i)) all_inputs;
  List.iter (fun o -> Buffer.add_string buf (Printf.sprintf "OUTPUT(%s)\n" o)) all_outputs;
  List.iter
    (fun r ->
      let fname =
        match primitive_function (String.lowercase_ascii r.cell) with
        | Some f -> f
        | None ->
          (match Cell.of_name r.cell with
           | Some c -> Cell.name c
           | None -> fail r.line "unknown cell %s" r.cell)
      in
      Buffer.add_string buf
        (Printf.sprintf "%s = %s(%s)\n" r.out_net fname (String.concat ", " r.in_nets)))
    logic;
  match Bench_io.parse ~name:mod_name (Buffer.contents buf) with
  | nl -> nl
  | exception Bench_io.Parse_error (_, msg) -> raise (Parse_error (0, msg))

let parse_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  try parse ~name:(Filename.remove_extension (Filename.basename path)) text
  with Parse_error (line, msg) ->
    raise (Parse_error (line, Printf.sprintf "%s:%d: %s" path line msg))

let print nl =
  let buf = Buffer.create 4096 in
  let num_inputs = Netlist.num_inputs nl in
  let input_names = List.init num_inputs (fun i -> Printf.sprintf "pi%d" i) in
  let output_names =
    Array.to_list (Netlist.outputs nl) |> List.map (Netlist.signal_name nl)
  in
  Buffer.add_string buf
    (Printf.sprintf "module %s (%s);\n" (Netlist.name nl)
       (String.concat ", " (input_names @ List.sort_uniq compare output_names)));
  Buffer.add_string buf
    (Printf.sprintf "  input %s;\n" (String.concat ", " input_names));
  Buffer.add_string buf
    (Printf.sprintf "  output %s;\n"
       (String.concat ", " (List.sort_uniq compare output_names)));
  let out_set = List.sort_uniq compare output_names in
  let wires =
    Array.to_list (Netlist.gates nl)
    |> List.filter_map (fun (g : Netlist.gate) ->
         if List.mem g.name out_set then None else Some g.name)
  in
  if wires <> [] then
    Buffer.add_string buf (Printf.sprintf "  wire %s;\n" (String.concat ", " wires));
  Array.iter
    (fun (g : Netlist.gate) ->
      let ins =
        g.fanin |> Array.to_list
        |> List.map (fun code -> Netlist.signal_name nl (Netlist.decode_signal nl code))
      in
      Buffer.add_string buf
        (Printf.sprintf "  %s u_%s (%s);\n" (Cell.name g.cell) g.name
           (String.concat ", " (g.name :: ins))))
    (Netlist.gates nl);
  Buffer.add_string buf "endmodule\n";
  Buffer.contents buf
