type kind =
  | Inv
  | Buf
  | Nand2
  | Nand3
  | Nor2
  | Nor3
  | And2
  | Or2
  | Xor2
  | Xnor2
  | Aoi21
  | Oai21

let all =
  [ Inv; Buf; Nand2; Nand3; Nor2; Nor3; And2; Or2; Xor2; Xnor2; Aoi21; Oai21 ]

let name = function
  | Inv -> "INV"
  | Buf -> "BUF"
  | Nand2 -> "NAND2"
  | Nand3 -> "NAND3"
  | Nor2 -> "NOR2"
  | Nor3 -> "NOR3"
  | And2 -> "AND2"
  | Or2 -> "OR2"
  | Xor2 -> "XOR2"
  | Xnor2 -> "XNOR2"
  | Aoi21 -> "AOI21"
  | Oai21 -> "OAI21"

let of_name s =
  match String.uppercase_ascii s with
  | "INV" | "NOT" -> Some Inv
  | "BUF" | "BUFF" -> Some Buf
  | "NAND2" | "NAND" -> Some Nand2
  | "NAND3" -> Some Nand3
  | "NOR2" | "NOR" -> Some Nor2
  | "NOR3" -> Some Nor3
  | "AND2" | "AND" -> Some And2
  | "OR2" | "OR" -> Some Or2
  | "XOR2" | "XOR" -> Some Xor2
  | "XNOR2" | "XNOR" -> Some Xnor2
  | "AOI21" -> Some Aoi21
  | "OAI21" -> Some Oai21
  | _ -> None

let arity = function
  | Inv | Buf -> 1
  | Nand2 | Nor2 | And2 | Or2 | Xor2 | Xnor2 -> 2
  | Nand3 | Nor3 | Aoi21 | Oai21 -> 3

let intrinsic_delay = function
  | Inv -> 14.0
  | Buf -> 26.0
  | Nand2 -> 22.0
  | Nand3 -> 31.0
  | Nor2 -> 27.0
  | Nor3 -> 39.0
  | And2 -> 33.0
  | Or2 -> 37.0
  | Xor2 -> 48.0
  | Xnor2 -> 50.0
  | Aoi21 -> 36.0
  | Oai21 -> 34.0

let load_delay = function
  | Inv -> 4.5
  | Buf -> 3.5
  | Nand2 -> 5.5
  | Nand3 -> 6.5
  | Nor2 -> 7.0
  | Nor3 -> 8.5
  | And2 -> 5.0
  | Or2 -> 5.5
  | Xor2 -> 7.5
  | Xnor2 -> 7.5
  | Aoi21 -> 7.0
  | Oai21 -> 6.5

let delay k ~fanout = intrinsic_delay k +. (load_delay k *. float_of_int (max 0 (fanout - 1)))

(* First-order delay sensitivities to a 1-sigma (10% of mean) parameter
   excursion, as a fraction of nominal delay. L_eff couples more strongly
   than V_t at nominal supply; stacked/complex gates couple a bit more. *)
let leff_sensitivity = function
  | Inv | Buf -> 0.075
  | Nand2 | And2 -> 0.085
  | Nor2 | Or2 -> 0.090
  | Nand3 | Nor3 -> 0.095
  | Xor2 | Xnor2 -> 0.100
  | Aoi21 | Oai21 -> 0.095

let vt_sensitivity = function
  | Inv | Buf -> 0.055
  | Nand2 | And2 -> 0.060
  | Nor2 | Or2 -> 0.065
  | Nand3 | Nor3 -> 0.070
  | Xor2 | Xnor2 -> 0.075
  | Aoi21 | Oai21 -> 0.070
