exception Parse_error of int * string

let print nl =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "# gate  x  y\n";
  Array.iter
    (fun (g : Netlist.gate) ->
      Buffer.add_string buf (Printf.sprintf "%s  %.6f  %.6f\n" g.name g.x g.y))
    (Netlist.gates nl);
  Buffer.contents buf

let write_file path nl =
  let oc = open_out path in
  output_string oc (print nl);
  close_out oc

let parse text =
  let lines = String.split_on_char '\n' text in
  List.concat
    (List.mapi
       (fun i line ->
         let lineno = i + 1 in
         let line =
           match String.index_opt line '#' with
           | Some k -> String.sub line 0 k
           | None -> line
         in
         let words =
           String.split_on_char ' ' line
           |> List.concat_map (String.split_on_char '\t')
           |> List.filter (fun w -> w <> "")
         in
         match words with
         | [] -> []
         | [ name; xs; ys ] ->
           (match float_of_string_opt xs, float_of_string_opt ys with
            | Some x, Some y ->
              if x < 0.0 || x > 1.0 || y < 0.0 || y > 1.0 then
                raise (Parse_error (lineno, "coordinates outside the unit die"));
              [ (name, (x, y)) ]
            | _, _ -> raise (Parse_error (lineno, "malformed coordinates")))
         | _ -> raise (Parse_error (lineno, "expected: name x y")))
       lines)

let parse_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  try parse text
  with Parse_error (line, msg) ->
    raise (Parse_error (line, Printf.sprintf "%s:%d: %s" path line msg))

let apply nl placements =
  let tbl = Hashtbl.create (List.length placements) in
  List.iter
    (fun (name, pos) ->
      if not (Array.exists (fun (g : Netlist.gate) -> g.name = name) (Netlist.gates nl))
      then invalid_arg (Printf.sprintf "Placement_io.apply: unknown gate %s" name);
      Hashtbl.replace tbl name pos)
    placements;
  let gates =
    Array.to_list (Netlist.gates nl)
    |> List.map (fun (g : Netlist.gate) ->
         let x, y =
           match Hashtbl.find_opt tbl g.name with
           | Some pos -> pos
           | None -> (g.x, g.y)
         in
         let fanin =
           Array.map (fun code -> Netlist.decode_signal nl code) g.fanin
         in
         (g.name, g.cell, fanin, (x, y)))
  in
  let outputs = Array.to_list (Netlist.outputs nl) in
  Netlist.build ~name:(Netlist.name nl) ~num_inputs:(Netlist.num_inputs nl)
    ~gates ~outputs
