(** A small 90nm-flavoured standard-cell library.

    Nominal delays are representative intrinsic pin-to-pin delays in
    picoseconds for a mid-drive cell in a 90 nm process; the absolute
    scale is irrelevant to the path-selection method (everything is
    normalized by the timing constraint), only the relative spread
    matters. *)

type kind =
  | Inv
  | Buf
  | Nand2
  | Nand3
  | Nor2
  | Nor3
  | And2
  | Or2
  | Xor2
  | Xnor2
  | Aoi21
  | Oai21

val all : kind list

val name : kind -> string

val of_name : string -> kind option
(** Case-insensitive; recognizes both our names and the ISCAS
    [.bench] spellings ([NOT], [AND], [NAND], ...). *)

val arity : kind -> int
(** Number of inputs. *)

val intrinsic_delay : kind -> float
(** Nominal zero-load delay, ps. *)

val load_delay : kind -> float
(** Extra delay per additional fanout, ps. *)

val delay : kind -> fanout:int -> float
(** [delay k ~fanout] is the nominal gate delay driving [fanout] sinks:
    [intrinsic + load * max 0 (fanout - 1)]. *)

val leff_sensitivity : kind -> float
(** Dimensionless sensitivity of delay to the normalized effective
    channel length variation (fraction of nominal delay per sigma of a
    10%-of-mean L_eff deviation). *)

val vt_sensitivity : kind -> float
(** Same, for zero-bias threshold voltage. *)
