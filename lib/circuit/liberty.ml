exception Parse_error of int * string

type value =
  | Number of float
  | Word of string
  | Quoted of string
  | Tuple of value list

type group = {
  gname : string;
  args : value list;
  attrs : (string * value) list;
  subgroups : group list;
}

(* ------------------------------------------------------------------ *)
(* Lexer *)

type token =
  | Tident of string
  | Tnumber of float
  | Tstring of string
  | Tlparen
  | Trparen
  | Tlbrace
  | Trbrace
  | Tcolon
  | Tsemi
  | Tcomma

let fail line fmt = Printf.ksprintf (fun s -> raise (Parse_error (line, s))) fmt

let tokenize text =
  let n = String.length text in
  let tokens = ref [] in
  let line = ref 1 in
  let i = ref 0 in
  let push t = tokens := (t, !line) :: !tokens in
  let is_word_char c =
    match c with
    | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '.' | '-' | '+' | '*' | '/'
    | '!' | '\'' | '[' | ']' -> true
    | _ -> false
  in
  while !i < n do
    let c = text.[!i] in
    (match c with
     | '\n' ->
       incr line;
       incr i
     | ' ' | '\t' | '\r' -> incr i
     | '\\' ->
       (* line continuation: skip, along with a following newline *)
       incr i;
       if !i < n && text.[!i] = '\r' then incr i;
       if !i < n && text.[!i] = '\n' then begin
         incr line;
         incr i
       end
     | '/' when !i + 1 < n && text.[!i + 1] = '*' ->
       let closed = ref false in
       i := !i + 2;
       while not !closed && !i < n do
         if text.[!i] = '\n' then incr line;
         if !i + 1 < n && text.[!i] = '*' && text.[!i + 1] = '/' then begin
           closed := true;
           i := !i + 2
         end
         else incr i
       done;
       if not !closed then fail !line "unterminated comment"
     | '/' when !i + 1 < n && text.[!i + 1] = '/' ->
       while !i < n && text.[!i] <> '\n' do incr i done
     | '#' -> while !i < n && text.[!i] <> '\n' do incr i done
     | '"' ->
       let buf = Buffer.create 32 in
       incr i;
       let closed = ref false in
       while not !closed && !i < n do
         (match text.[!i] with
          | '"' -> closed := true
          | '\\' when !i + 1 < n && text.[!i + 1] = '\n' ->
            (* escaped newline inside a string: Liberty multi-line values *)
            incr line;
            incr i
          | '\n' ->
            incr line;
            Buffer.add_char buf ' '
          | ch -> Buffer.add_char buf ch);
         incr i
       done;
       if not !closed then fail !line "unterminated string";
       push (Tstring (Buffer.contents buf))
     | '(' -> push Tlparen; incr i
     | ')' -> push Trparen; incr i
     | '{' -> push Tlbrace; incr i
     | '}' -> push Trbrace; incr i
     | ':' -> push Tcolon; incr i
     | ';' -> push Tsemi; incr i
     | ',' -> push Tcomma; incr i
     | _ when is_word_char c ->
       let start = !i in
       while !i < n && is_word_char text.[!i] do incr i done;
       let w = String.sub text start (!i - start) in
       (match float_of_string_opt w with
        | Some f -> push (Tnumber f)
        | None -> push (Tident w))
     | _ -> fail !line "unexpected character %C" c);
  done;
  List.rev !tokens

(* ------------------------------------------------------------------ *)
(* Parser *)

type stream = { mutable toks : (token * int) list }

let peek s = match s.toks with [] -> None | t :: _ -> Some t

let advance s = match s.toks with [] -> () | _ :: rest -> s.toks <- rest

let expect s what pred =
  match peek s with
  | Some (t, line) when pred t -> advance s; (t, line)
  | Some (_, line) -> fail line "expected %s" what
  | None -> fail 0 "expected %s at end of input" what

let value_of_token = function
  | Tnumber f -> Number f
  | Tident w -> Word w
  | Tstring str -> Quoted str
  | Tlparen | Trparen | Tlbrace | Trbrace | Tcolon | Tsemi | Tcomma ->
    invalid_arg "value_of_token"

let parse_args s =
  ignore (expect s "'('" (fun t -> t = Tlparen));
  let rec go acc =
    match peek s with
    | Some (Trparen, _) ->
      advance s;
      List.rev acc
    | Some (Tcomma, _) ->
      advance s;
      go acc
    | Some ((Tnumber _ | Tident _ | Tstring _), _) ->
      let t, _ = expect s "value" (fun _ -> true) in
      go (value_of_token t :: acc)
    | Some (_, line) -> fail line "unexpected token in argument list"
    | None -> fail 0 "unterminated argument list"
  in
  go []

let rec parse_group_body s gname args =
  ignore (expect s "'{'" (fun t -> t = Tlbrace));
  let attrs = ref [] in
  let subgroups = ref [] in
  let rec go () =
    match peek s with
    | Some (Trbrace, _) ->
      advance s;
      (* optional trailing semicolon *)
      (match peek s with Some (Tsemi, _) -> advance s | Some _ | None -> ())
    | Some (Tident name, line) ->
      advance s;
      (match peek s with
       | Some (Tcolon, _) ->
         advance s;
         let t, _ = expect s "attribute value" (fun t ->
             match t with Tnumber _ | Tident _ | Tstring _ -> true | _ -> false)
         in
         (match peek s with Some (Tsemi, _) -> advance s | Some _ | None -> ());
         attrs := (name, value_of_token t) :: !attrs;
         go ()
       | Some (Tlparen, _) ->
         let args = parse_args s in
         (match peek s with
          | Some (Tlbrace, _) ->
            let g = parse_group_body s name args in
            subgroups := g :: !subgroups;
            go ()
          | Some (Tsemi, _) ->
            advance s;
            (* complex attribute *)
            attrs := (name, Tuple args) :: !attrs;
            go ()
          | Some (_, line) -> fail line "expected '{' or ';' after %s(...)" name
          | None -> fail 0 "unexpected end after %s(...)" name)
       | Some (_, _) -> fail line "expected ':' or '(' after %s" name
       | None -> fail 0 "unexpected end after %s" name)
    | Some (Tsemi, _) ->
      advance s;
      go ()
    | Some (_, line) -> fail line "unexpected token in group %s" gname
    | None -> fail 0 "unterminated group %s" gname
  in
  go ();
  { gname; args; attrs = List.rev !attrs; subgroups = List.rev !subgroups }

let parse text =
  let s = { toks = tokenize text } in
  match peek s with
  | Some (Tident name, _) ->
    advance s;
    let args = parse_args s in
    parse_group_body s name args
  | Some (_, line) -> fail line "expected a top-level group"
  | None -> fail 0 "empty input"

let parse_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  try parse text
  with Parse_error (line, msg) ->
    raise (Parse_error (line, Printf.sprintf "%s:%d: %s" path line msg))

(* ------------------------------------------------------------------ *)
(* Tables *)

module Table = struct
  type t = {
    index1 : float array;
    index2 : float array;
    values : float array array;
  }

  let bracket axis x =
    (* indices (i, i+1) straddling x, clamped; weight for the upper *)
    let n = Array.length axis in
    if n = 1 then (0, 0, 0.0)
    else if x <= axis.(0) then (0, 1, 0.0)
    else if x >= axis.(n - 1) then (n - 2, n - 1, 1.0)
    else begin
      let i = ref 0 in
      while axis.(!i + 1) < x do incr i done;
      let w = (x -. axis.(!i)) /. (axis.(!i + 1) -. axis.(!i)) in
      (!i, !i + 1, w)
    end

  let lookup t ~slew ~load =
    let i0, i1, wi = bracket t.index1 slew in
    let j0, j1, wj = bracket t.index2 load in
    let v i j = t.values.(i).(j) in
    ((1.0 -. wi) *. (((1.0 -. wj) *. v i0 j0) +. (wj *. v i0 j1)))
    +. (wi *. (((1.0 -. wj) *. v i1 j0) +. (wj *. v i1 j1)))
end

(* ------------------------------------------------------------------ *)
(* Library distillation *)

module Library = struct
  type timing = {
    delay_rise : Table.t option;
    delay_fall : Table.t option;
    slew_rise : Table.t option;
    slew_fall : Table.t option;
  }

  type cell = {
    cell_name : string;
    area : float option;
    input_caps : (string * float) list;
    timings : timing list;
  }

  type t = { lib_name : string; cells : cell list }

  let floats_of_quoted = function
    | Quoted s ->
      String.split_on_char ',' s
      |> List.concat_map (String.split_on_char ' ')
      |> List.filter_map (fun w ->
           let w = String.trim w in
           if w = "" then None else float_of_string_opt w)
    | Number f -> [ f ]
    | Word _ | Tuple _ -> []

  let tuple_floats = function
    | Tuple vs -> List.concat_map floats_of_quoted vs
    | v -> floats_of_quoted v

  let table_of_group g =
    let find_attr name = List.assoc_opt name g.attrs in
    let axis name default =
      match find_attr name with
      | Some v ->
        let l = tuple_floats v in
        if l = [] then default else Array.of_list l
      | None -> default
    in
    let index1 = axis "index_1" [| 0.0 |] in
    let index2 = axis "index_2" [| 0.0 |] in
    match find_attr "values" with
    | None -> None
    | Some v ->
      let flat =
        match v with
        | Tuple vs -> List.map floats_of_quoted vs
        | Quoted _ | Number _ | Word _ -> [ floats_of_quoted v ]
      in
      let rows = List.filter (fun r -> r <> []) flat in
      let expected_cols = Array.length index2 in
      let values =
        match rows with
        | [ one ] when List.length one = Array.length index1 * expected_cols ->
          (* single flat list: reshape *)
          let arr = Array.of_list one in
          Array.init (Array.length index1) (fun i ->
              Array.sub arr (i * expected_cols) expected_cols)
        | _ -> Array.of_list (List.map Array.of_list rows)
      in
      if Array.length values <> Array.length index1
         || Array.exists (fun r -> Array.length r <> expected_cols) values
      then None
      else Some { Table.index1; index2; values }

  let timing_of_group g =
    let sub name =
      List.find_opt (fun sg -> sg.gname = name) g.subgroups
      |> fun o -> Option.bind o table_of_group
    in
    {
      delay_rise = sub "cell_rise";
      delay_fall = sub "cell_fall";
      slew_rise = sub "rise_transition";
      slew_fall = sub "fall_transition";
    }

  let cell_of_group g =
    let cell_name =
      match g.args with
      | [ Word w ] | [ Quoted w ] -> w
      | _ -> "?"
    in
    let area =
      match List.assoc_opt "area" g.attrs with
      | Some (Number f) -> Some f
      | Some (Word _ | Quoted _ | Tuple _) | None -> None
    in
    let input_caps = ref [] in
    let timings = ref [] in
    List.iter
      (fun pin ->
        if pin.gname = "pin" then begin
          let pname =
            match pin.args with
            | [ Word w ] | [ Quoted w ] -> w
            | _ -> "?"
          in
          let direction =
            match List.assoc_opt "direction" pin.attrs with
            | Some (Word d) | Some (Quoted d) -> d
            | Some (Number _ | Tuple _) | None -> ""
          in
          (match List.assoc_opt "capacitance" pin.attrs with
           | Some (Number c) when direction <> "output" ->
             input_caps := (pname, c) :: !input_caps
           | Some _ | None -> ());
          List.iter
            (fun tg -> if tg.gname = "timing" then timings := timing_of_group tg :: !timings)
            pin.subgroups
        end)
      g.subgroups;
    { cell_name; area; input_caps = List.rev !input_caps; timings = List.rev !timings }

  let of_group g =
    if g.gname <> "library" then
      raise (Parse_error (0, "Liberty.Library.of_group: not a library"));
    let lib_name =
      match g.args with
      | [ Word w ] | [ Quoted w ] -> w
      | _ -> "?"
    in
    let cells =
      List.filter_map
        (fun sg -> if sg.gname = "cell" then Some (cell_of_group sg) else None)
        g.subgroups
    in
    { lib_name; cells }

  let find_cell t name =
    let lname = String.lowercase_ascii name in
    List.find_opt (fun c -> String.lowercase_ascii c.cell_name = lname) t.cells

  let fold_tables f init cell =
    List.fold_left
      (fun acc timing ->
        List.fold_left
          (fun acc t -> match t with Some tbl -> f acc tbl | None -> acc)
          acc
          [ timing.delay_rise; timing.delay_fall ])
      init cell.timings

  let worst_delay cell ~slew ~load =
    fold_tables (fun acc tbl -> Float.max acc (Table.lookup tbl ~slew ~load)) 0.0 cell

  let worst_output_slew cell ~slew ~load =
    List.fold_left
      (fun acc timing ->
        List.fold_left
          (fun acc t ->
            match t with
            | Some tbl -> Float.max acc (Table.lookup tbl ~slew ~load)
            | None -> acc)
          acc
          [ timing.slew_rise; timing.slew_fall ])
      0.0 cell.timings

  let average_input_cap cell =
    match cell.input_caps with
    | [] -> 0.0
    | caps ->
      List.fold_left (fun acc (_, c) -> acc +. c) 0.0 caps
      /. float_of_int (List.length caps)
end

(* ------------------------------------------------------------------ *)
(* Built-in 90nm-flavoured library *)

let builtin_cell name area cap d00 =
  (* one timing group per cell; tables scale a base delay d00 (ns) over a
     3x3 (slew ns x load pF) grid with plausible slopes *)
  let t v = Printf.sprintf "%.5f" v in
  let row s = Printf.sprintf "\"%s, %s, %s\"" (t s) (t (s *. 1.35)) (t (s *. 1.9)) in
  let tbl scale =
    Printf.sprintf
      "        index_1 (\"0.01, 0.08, 0.30\");\n\
      \        index_2 (\"0.001, 0.010, 0.040\");\n\
      \        values (%s, %s, %s);"
      (row (d00 *. scale))
      (row (d00 *. scale *. 1.25))
      (row (d00 *. scale *. 1.7))
  in
  Printf.sprintf
    "  cell (%s) {\n\
    \    area : %.2f;\n\
    \    pin (A) { direction : input; capacitance : %.4f; }\n\
    \    pin (Z) {\n\
    \      direction : output;\n\
    \      timing () {\n\
    \      cell_rise (delay_template_3x3) {\n%s\n      }\n\
    \      cell_fall (delay_template_3x3) {\n%s\n      }\n\
    \      rise_transition (delay_template_3x3) {\n%s\n      }\n\
    \      fall_transition (delay_template_3x3) {\n%s\n      }\n\
    \      }\n\
    \    }\n\
    \  }\n"
    name area cap (tbl 1.0) (tbl 0.95) (tbl 0.6) (tbl 0.65)

let builtin =
  let cells =
    [
      ("INV", 1.0, 0.0018, 0.014);
      ("BUF", 1.6, 0.0016, 0.026);
      ("NAND2", 1.4, 0.0021, 0.022);
      ("NAND3", 1.9, 0.0023, 0.031);
      ("NOR2", 1.5, 0.0024, 0.027);
      ("NOR3", 2.1, 0.0026, 0.039);
      ("AND2", 1.8, 0.0019, 0.033);
      ("OR2", 1.9, 0.0020, 0.037);
      ("XOR2", 2.6, 0.0028, 0.048);
      ("XNOR2", 2.7, 0.0028, 0.050);
      ("AOI21", 2.2, 0.0025, 0.036);
      ("OAI21", 2.1, 0.0024, 0.034);
    ]
  in
  "library (repro90) {\n  time_unit : \"1ns\";\n  capacitive_load_unit (1, pf);\n"
  ^ String.concat "" (List.map (fun (n, a, c, d) -> builtin_cell n a c d) cells)
  ^ "}\n"
