(** Placement files.

    `.bench` and structural Verilog carry no placement, so parsed
    netlists get a deterministic synthetic placement — fine for
    experiments, wrong for a real chip. This module reads and writes a
    minimal placement format (one [gate_name x y] line per gate,
    normalized die coordinates in [0, 1]) so a real placement can be
    attached to a parsed netlist before building the
    spatial-correlation model:

    {v
      # gate  x  y
      g0  0.125  0.500
      g1  0.250  0.375
    v} *)

exception Parse_error of int * string

val print : Netlist.t -> string

val write_file : string -> Netlist.t -> unit

val parse : string -> (string * (float * float)) list
(** Raises {!Parse_error} on malformed lines or coordinates outside
    [0, 1]. *)

val parse_file : string -> (string * (float * float)) list

val apply : Netlist.t -> (string * (float * float)) list -> Netlist.t
(** Rebuild the netlist with the given placement. Gates missing from
    the list keep their current position; unknown gate names raise
    [Failure]. *)
