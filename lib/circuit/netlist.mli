(** Gate-level combinational netlists.

    A netlist is a DAG of gates over primary inputs. Sequential elements
    of the original benchmarks are modelled the standard way for static
    timing: a flip-flop's Q pin is a pseudo primary input and its D pin a
    pseudo primary output, so every timing path is purely combinational.

    Gates carry a physical placement on the unit die [0,1] x [0,1] used
    by the spatial-correlation model. *)

type gate = {
  id : int;             (** dense index, [0 .. num_gates - 1] *)
  name : string;
  cell : Cell.kind;
  fanin : int array;    (** signal ids of the inputs, see {!signal} *)
  x : float;            (** placement on the unit die *)
  y : float;
}

(** A signal is either a primary input or the output of a gate. *)
type signal = Pi of int | Gate_out of int

type t

val build :
  name:string ->
  num_inputs:int ->
  gates:(string * Cell.kind * signal array * (float * float)) list ->
  outputs:signal list ->
  t
(** Builds and validates a netlist. Gates must be listed in a valid
    topological order (each gate's fanin refers to primary inputs or
    previously listed gates). Raises [Invalid_argument] on: forward or
    out-of-range references, arity mismatch with the cell kind,
    duplicate gate names, placements outside the unit square, or an
    empty output list. *)

val name : t -> string

val num_inputs : t -> int

val num_gates : t -> int

val gate : t -> int -> gate
(** Gates are returned in topological order of their ids. *)

val gates : t -> gate array

val outputs : t -> signal array

val fanout_count : t -> int -> int
(** [fanout_count nl g] is the number of gate inputs plus primary
    outputs driven by gate [g]'s output. Every gate drives at least one
    sink by construction. *)

val fanouts : t -> int -> signal list
(** Gate sinks of gate [g] as [Gate_out] ids; primary-output sinks are
    not listed (use {!outputs}). *)

val encode_signal : t -> signal -> int
(** Injective encoding of signals into [0 .. num_inputs + num_gates - 1]:
    primary inputs first, then gate outputs. *)

val decode_signal : t -> int -> signal

val signal_name : t -> signal -> string

val depth : t -> int
(** Longest path length counted in gates. 0 for a gateless netlist. *)

val stats : t -> string
(** One-line human-readable summary. *)
