type preset = {
  bench_name : string;
  gate_count : int;
  depth : int;
  inputs : int;
  outputs : int;
  region_levels : int;
}

let all =
  [
    { bench_name = "s1196"; gate_count = 529; depth = 24; inputs = 32; outputs = 32;
      region_levels = 3 };
    { bench_name = "s1238"; gate_count = 508; depth = 22; inputs = 32; outputs = 32;
      region_levels = 3 };
    { bench_name = "s1423"; gate_count = 657; depth = 53; inputs = 91; outputs = 79;
      region_levels = 3 };
    { bench_name = "s1488"; gate_count = 653; depth = 17; inputs = 14; outputs = 25;
      region_levels = 3 };
    { bench_name = "s5378"; gate_count = 2779; depth = 21; inputs = 214; outputs = 228;
      region_levels = 5 };
    { bench_name = "s9234"; gate_count = 5597; depth = 38; inputs = 247; outputs = 250;
      region_levels = 5 };
    { bench_name = "s13207"; gate_count = 7951; depth = 32; inputs = 700; outputs = 790;
      region_levels = 5 };
    { bench_name = "s15850"; gate_count = 9772; depth = 47; inputs = 611; outputs = 684;
      region_levels = 5 };
    { bench_name = "s35932"; gate_count = 16065; depth = 29; inputs = 1763; outputs = 2048;
      region_levels = 5 };
    { bench_name = "s38417"; gate_count = 22179; depth = 33; inputs = 1664; outputs = 1742;
      region_levels = 5 };
  ]

let extended =
  let mk bench_name gate_count depth inputs outputs =
    let region_levels = if gate_count <= 1000 then 3 else 5 in
    { bench_name; gate_count; depth; inputs; outputs; region_levels }
  in
  all
  @ [
      mk "s27" 10 4 7 5;
      mk "s208" 96 11 19 11;
      mk "s298" 119 9 17 20;
      mk "s344" 160 14 24 26;
      mk "s349" 161 14 24 26;
      mk "s382" 158 9 24 27;
      mk "s386" 159 11 13 13;
      mk "s400" 162 9 24 27;
      mk "s420" 218 13 35 18;
      mk "s444" 181 11 24 27;
      mk "s510" 211 12 25 13;
      mk "s526" 193 9 24 27;
      mk "s641" 379 23 54 43;
      mk "s713" 393 23 54 42;
      mk "s820" 289 10 23 24;
      mk "s832" 287 10 23 24;
      mk "s838" 446 16 67 33;
      mk "s953" 395 16 45 52;
      mk "s1494" 647 17 14 25;
      mk "s38584" 19253 31 1464 1730;
    ]

let find name =
  let lname = String.lowercase_ascii name in
  List.find_opt (fun p -> p.bench_name = lname) extended

(* stable small hash of the preset name for seeding *)
let seed_of_name name =
  let acc = ref 5381 in
  String.iter (fun c -> acc := ((!acc lsl 5) + !acc + Char.code c) land 0x3FFFFFFF) name;
  !acc

let netlist ?(scale = 1.0) p =
  if not (scale > 0.0 && scale <= 1.0) then
    invalid_arg "Benchmarks.netlist: scale must be in (0, 1]";
  let sc n = max 4 (int_of_float (Float.round (scale *. float_of_int n))) in
  Generator.generate
    {
      Generator.num_gates = sc p.gate_count;
      num_inputs = sc p.inputs;
      num_outputs = sc p.outputs;
      depth = p.depth;
      hub_fraction = 0.05;
      seed = seed_of_name p.bench_name;
    }

let region_count p =
  let rec sum k acc = if k >= p.region_levels then acc else sum (k + 1) (acc + (1 lsl (2 * k))) in
  sum 0 0
