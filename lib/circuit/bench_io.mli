(** ISCAS'89 [.bench] netlist format.

    Supported syntax:
    {v
      # comment
      INPUT(a)
      OUTPUT(z)
      n1 = NAND(a, b)
      n2 = DFF(n1)
    v}
    [DFF] cells are cut for static timing the usual way: the D pin
    becomes a pseudo primary output and the Q pin a pseudo primary
    input, so all parsed paths are combinational.

    The format has no placement; {!parse} synthesizes a deterministic
    placement by the same fanin-averaging rule the generator uses. *)

exception Parse_error of int * string
(** [(line, message)]. *)

val parse : name:string -> string -> Netlist.t
(** Parse from the string contents of a [.bench] file. *)

val parse_lenient : name:string -> string -> Netlist.t * string list
(** Skip-and-warn mode for dirty inputs: unparseable lines, unsupported
    cell functions, and gates (transitively) depending on undefined
    signals are skipped instead of failing; dropped outputs are
    reported. Returns the surviving netlist plus one warning per
    skipped construct. Still raises {!Parse_error} when nothing usable
    remains or on a combinational cycle. *)

val parse_file : string -> Netlist.t
(** Parse from a path; the netlist name is the file basename. Parse
    errors are re-raised with the file name and line number in the
    message ([path:line: msg]). *)

val print : Netlist.t -> string
(** Render a netlist back to [.bench] text (placement is not
    representable and is dropped; multi-input cells are emitted with
    their generic ISCAS spelling). *)
