(** A Liberty (.lib) reader for the subset needed by NLDM delay
    calculation.

    Supported syntax: nested groups [name (args) { ... }], simple
    attributes [key : value ;], complex attributes [key ("...", ...);],
    quoted strings, [/* ... */] and [//]/[#] comments, and [\]-escaped
    line continuations inside values. This covers the structure of real
    standard-cell libraries; constructs outside the subset are kept in
    the generic tree untouched, so callers can extract what they need.

    {!Library} distills the tree into the NLDM view: per cell, per
    output pin, the [cell_rise]/[cell_fall] delay tables and
    [rise_transition]/[fall_transition] output-slew tables over
    (input slew) x (output load), plus input pin capacitances. *)

exception Parse_error of int * string
(** [(line, message)] *)

(** Generic Liberty syntax tree. *)
type value =
  | Number of float
  | Word of string       (** unquoted identifier-ish value *)
  | Quoted of string
  | Tuple of value list  (** complex attribute arguments *)

type group = {
  gname : string;
  args : value list;
  attrs : (string * value) list;  (** in file order, duplicates kept *)
  subgroups : group list;
}

val parse : string -> group
(** Parse a full [.lib] text; the result is the top-level [library]
    group. *)

val parse_file : string -> group

module Table : sig
  type t = {
    index1 : float array;  (** input slew axis, ns *)
    index2 : float array;  (** output load axis, pF (singleton axes ok) *)
    values : float array array;  (** values.(i).(j), ns *)
  }

  val lookup : t -> slew:float -> load:float -> float
  (** Bilinear interpolation, clamped at the table edges. *)
end

module Library : sig
  type timing = {
    delay_rise : Table.t option;
    delay_fall : Table.t option;
    slew_rise : Table.t option;
    slew_fall : Table.t option;
  }

  type cell = {
    cell_name : string;
    area : float option;
    input_caps : (string * float) list;  (** pin name, pF *)
    timings : timing list;               (** one per timing() group *)
  }

  type t = {
    lib_name : string;
    cells : cell list;
  }

  val of_group : group -> t
  (** Raises [Failure] when the group is not a [library]. *)

  val find_cell : t -> string -> cell option
  (** Case-insensitive. *)

  val worst_delay : cell -> slew:float -> load:float -> float
  (** Max over the cell's timing arcs and rise/fall of the delay
    tables; 0 when the cell has none. *)

  val worst_output_slew : cell -> slew:float -> load:float -> float

  val average_input_cap : cell -> float
  (** 0 when no input pin declares a capacitance. *)
end

val builtin : string
(** An embedded 90nm-flavoured library covering this repository's
    twelve cells; used as the default NLDM source and as parser test
    data. *)
