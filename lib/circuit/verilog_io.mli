(** Structural (gate-level) Verilog netlist reader and writer.

    Supported subset — what synthesis tools emit for flattened
    gate-level netlists with scalar nets:
    {v
      module top (a, b, z);
        input a, b;
        output z;
        wire w1;
        NAND2 u1 (.Z(w1), .A(a), .B(b));  // named connections
        not u2 (z, w1);                   // Verilog primitive, output first
        DFF r1 (.Q(q), .D(w1));           // cut for static timing
      endmodule
    v}

    Cell instances resolve through {!Cell.of_name}; Verilog gate
    primitives ([and or nand nor xor xnor not buf]) are accepted with
    any arity (wide ones are decomposed into 2-input trees, like
    {!Bench_io}). [DFF] instances are cut the standard way: Q becomes a
    pseudo primary input, D a pseudo primary output. Buses, behavioural
    constructs, parameters, and multiple modules are out of scope and
    rejected with a {!Parse_error}. *)

exception Parse_error of int * string

val parse : name:string -> string -> Netlist.t
(** [name] is used only when the module header cannot provide one. *)

val parse_file : string -> Netlist.t

val print : Netlist.t -> string
(** Render as a structural Verilog module (placement is dropped). *)
