(** Synthetic ISCAS-like netlist generation.

    The paper evaluates on ISCAS'89 benchmarks synthesized with a
    commercial flow; those netlists are not redistributable, so this
    generator produces deterministic netlists with the same structural
    statistics that matter to the method: gate count, logic depth,
    reconvergent fanout (which makes target paths share segments), and
    placement locality (which makes the spatial-correlation model bind).
    See DESIGN.md, "Substitutions". *)

type params = {
  num_gates : int;
  num_inputs : int;
  num_outputs : int;
  depth : int;          (** target logic depth in gates *)
  hub_fraction : float; (** fraction of gates that become high-fanout hubs,
                            driving reconvergence; typical 0.05 *)
  seed : int;
}

val default : params
(** 400 gates, 30 inputs, 25 outputs, depth 14, 5% hubs, seed 1. *)

val generate : params -> Netlist.t
(** Deterministic in [params]. Raises [Invalid_argument] on
    non-positive sizes or [depth < 1]. *)
