exception Parse_error of int * string

let fail line fmt = Printf.ksprintf (fun s -> raise (Parse_error (line, s))) fmt

type raw_line =
  | Input of string
  | Output of string
  | Assign of string * string * string list  (* lhs, function, args *)

let lex_line lineno s =
  let s = match String.index_opt s '#' with
    | Some i -> String.sub s 0 i
    | None -> s
  in
  let s = String.trim s in
  if s = "" then None
  else begin
    let paren_payload keyword =
      let plen = String.length keyword in
      if String.length s > plen + 1
         && String.uppercase_ascii (String.sub s 0 plen) = keyword
         && s.[plen] = '('
         && s.[String.length s - 1] = ')'
      then Some (String.trim (String.sub s (plen + 1) (String.length s - plen - 2)))
      else None
    in
    match paren_payload "INPUT" with
    | Some arg -> Some (Input arg)
    | None ->
      match paren_payload "OUTPUT" with
      | Some arg -> Some (Output arg)
      | None ->
        match String.index_opt s '=' with
        | None -> fail lineno "unrecognized line: %s" s
        | Some eq ->
          let lhs = String.trim (String.sub s 0 eq) in
          let rhs = String.trim (String.sub s (eq + 1) (String.length s - eq - 1)) in
          (match String.index_opt rhs '(' with
           | None -> fail lineno "missing '(' in %s" rhs
           | Some op when rhs.[String.length rhs - 1] = ')' ->
             let fname = String.trim (String.sub rhs 0 op) in
             let args_s = String.sub rhs (op + 1) (String.length rhs - op - 2) in
             let args =
               String.split_on_char ',' args_s
               |> List.map String.trim
               |> List.filter (fun a -> a <> "")
             in
             Some (Assign (lhs, fname, args))
           | Some _ -> fail lineno "missing ')' in %s" rhs)
  end

(* Widen/narrow a parsed function to one of our cells based on arity.
   ISCAS benches use NAND/NOR/AND/OR with arbitrary arity; arity > 3 is
   decomposed into a tree of 2-input cells by the caller. *)
let cell_for lineno fname nargs =
  match Cell.of_name fname with
  | Some c when Cell.arity c = nargs -> c
  | Some _ | None ->
  match String.uppercase_ascii fname, nargs with
  | ("NOT" | "INV"), 1 -> Cell.Inv
  | ("BUF" | "BUFF"), 1 -> Cell.Buf
  | "NAND", 2 -> Cell.Nand2
  | "NAND", 3 -> Cell.Nand3
  | "NOR", 2 -> Cell.Nor2
  | "NOR", 3 -> Cell.Nor3
  | "AND", 2 -> Cell.And2
  | "OR", 2 -> Cell.Or2
  | "XOR", 2 -> Cell.Xor2
  | "XNOR", 2 -> Cell.Xnor2
  | "AOI21", 3 -> Cell.Aoi21
  | "OAI21", 3 -> Cell.Oai21
  | f, n -> fail lineno "unsupported function %s/%d" f n

let base_pair_cell lineno fname =
  (* the 2-input cell used when decomposing a wide AND/OR/NAND/NOR *)
  match String.uppercase_ascii fname with
  | "AND" | "NAND" -> Cell.And2
  | "OR" | "NOR" -> Cell.Or2
  | f -> fail lineno "cannot decompose wide %s" f

let top_cell_for_wide lineno fname =
  match String.uppercase_ascii fname with
  | "AND" -> Cell.And2
  | "NAND" -> Cell.Nand2
  | "OR" -> Cell.Or2
  | "NOR" -> Cell.Nor2
  | f -> fail lineno "cannot decompose wide %s" f

let parse_impl ~lenient ~name text =
  let warnings = ref [] in
  let warn lineno fmt =
    Printf.ksprintf
      (fun s ->
        warnings :=
          (if lineno > 0 then Printf.sprintf "%s:%d: %s" name lineno s
           else Printf.sprintf "%s: %s" name s)
          :: !warnings)
      fmt
  in
  let lines = String.split_on_char '\n' text in
  let raw =
    List.mapi
      (fun i l ->
        let lineno = i + 1 in
        match lex_line lineno l with
        | parsed -> (lineno, parsed)
        | exception Parse_error (_, msg) when lenient ->
          warn lineno "skipping unparseable line (%s)" msg;
          (lineno, None))
      lines
    |> List.filter_map (fun (i, l) -> Option.map (fun l -> (i, l)) l)
  in
  (* First pass: collect inputs, outputs, and assignments; DFF outputs
     become pseudo-inputs and their data pins pseudo-outputs. *)
  let inputs = ref [] and outputs = ref [] and assigns = ref [] in
  List.iter
    (fun (lineno, l) ->
      match l with
      | Input s -> inputs := s :: !inputs
      | Output s -> outputs := s :: !outputs
      | Assign (lhs, fname, args) ->
        if String.uppercase_ascii fname = "DFF" then begin
          match args with
          | [ d ] ->
            inputs := lhs :: !inputs;
            outputs := d :: !outputs
          | _ ->
            if lenient then warn lineno "skipping DFF %s: expected one input" lhs
            else fail lineno "DFF must have exactly one input"
        end
        else assigns := (lineno, lhs, fname, args) :: !assigns)
    raw;
  let inputs = List.rev !inputs and outputs = List.rev !outputs in
  let assigns = List.rev !assigns in
  let input_index = Hashtbl.create 64 in
  List.iteri (fun i s -> Hashtbl.replace input_index s i) inputs;
  (* Topologically order the assignments (the format does not require
     definition-before-use). *)
  let def_of = Hashtbl.create 64 in
  List.iter (fun ((_, lhs, _, _) as a) -> Hashtbl.replace def_of lhs a) assigns;
  let emitted = Hashtbl.create 64 in
  let skipped = Hashtbl.create 16 in
  let ordered = ref [] in
  let visiting = Hashtbl.create 16 in
  let rec emit lhs =
    (* returns true when lhs resolves to a usable signal *)
    if Hashtbl.mem emitted lhs || Hashtbl.mem input_index lhs then true
    else if Hashtbl.mem skipped lhs then false
    else begin
      if Hashtbl.mem visiting lhs then
        raise (Parse_error (0, Printf.sprintf "combinational cycle through %s" lhs));
      match Hashtbl.find_opt def_of lhs with
      | None ->
        if lenient then begin
          warn 0 "undefined signal %s" lhs;
          Hashtbl.add skipped lhs ();
          false
        end
        else raise (Parse_error (0, Printf.sprintf "undefined signal %s" lhs))
      | Some ((lineno, _, _, args) as a) ->
        Hashtbl.add visiting lhs ();
        let ok = List.fold_left (fun acc arg -> emit arg && acc) true args in
        Hashtbl.remove visiting lhs;
        if ok then begin
          Hashtbl.add emitted lhs ();
          ordered := a :: !ordered;
          true
        end
        else begin
          (* only reachable in lenient mode: strict emit raises *)
          warn lineno "skipping %s: depends on an undefined signal" lhs;
          Hashtbl.add skipped lhs ();
          false
        end
    end
  in
  List.iter (fun (_, lhs, _, _) -> ignore (emit lhs)) assigns;
  let outputs =
    List.filter
      (fun o ->
        if Hashtbl.mem input_index o then true
        else begin
          match emit o with
          | true -> true
          | false ->
            warn 0 "dropping output %s: undefined" o;
            false
          | exception Parse_error (l, msg) when lenient ->
            warn l "dropping output %s: %s" o msg;
            false
        end)
      outputs
  in
  if outputs = [] then raise (Parse_error (0, "no usable outputs"));
  let ordered = List.rev !ordered in
  (* Second pass: build gates, decomposing wide functions, and assign a
     deterministic placement by fanin averaging. *)
  let num_inputs = List.length inputs in
  let gate_sig = Hashtbl.create 64 in  (* signal name -> Netlist.signal *)
  List.iteri (fun i s -> Hashtbl.replace gate_sig s (Netlist.Pi i)) inputs;
  let gid = ref 0 in
  let gates = ref [] in
  let positions = Hashtbl.create 64 in
  let pos_of = function
    | Netlist.Pi i ->
      (0.02, float_of_int (i mod 97) /. 97.0)
    | Netlist.Gate_out g -> Hashtbl.find positions g
  in
  let clamp v = Float.min 1.0 (Float.max 0.0 v) in
  let add_gate gname cell fanin =
    let id = !gid in
    incr gid;
    let ps = Array.map pos_of fanin in
    let n = float_of_int (Array.length ps) in
    let sx = Array.fold_left (fun acc (x, _) -> acc +. x) 0.0 ps in
    let sy = Array.fold_left (fun acc (_, y) -> acc +. y) 0.0 ps in
    (* deterministic jitter from the gate id *)
    let jx = float_of_int ((id * 37) mod 13) /. 13.0 *. 0.08 in
    let jy = float_of_int ((id * 61) mod 17) /. 17.0 *. 0.08 in
    let x = clamp ((sx /. n) +. 0.05 +. jx) and y = clamp ((sy /. n) +. jy) in
    Hashtbl.replace positions id (x, y);
    gates := (gname, cell, fanin, (x, y)) :: !gates;
    Netlist.Gate_out id
  in
  let resolve lineno s =
    match Hashtbl.find_opt gate_sig s with
    | Some v -> v
    | None -> fail lineno "undefined signal %s" s
  in
  List.iter
    (fun (lineno, lhs, fname, args) ->
      try
        let args_sig = List.map (resolve lineno) args in
        let out =
          match args_sig with
        | [] -> fail lineno "%s has no arguments" lhs
        | [ a ] -> add_gate lhs (cell_for lineno fname 1) [| a |]
        | [ a; b ] -> add_gate lhs (cell_for lineno fname 2) [| a; b |]
        | [ a; b; c ]
          when (match cell_for lineno fname 3 with
                | (_ : Cell.kind) -> true
                | exception Parse_error _ -> false) ->
          add_gate lhs (cell_for lineno fname 3) [| a; b; c |]
        | many ->
          (* left-reduce into a tree of 2-input cells; the final stage
             carries the inversion for NAND/NOR *)
          let pair = base_pair_cell lineno fname in
          let top = top_cell_for_wide lineno fname in
          let rec reduce k = function
            | [ a; b ] -> add_gate lhs top [| a; b |]
            | a :: b :: rest ->
              let t = add_gate (Printf.sprintf "%s_t%d" lhs k) pair [| a; b |] in
              reduce (k + 1) (t :: rest)
            | _ -> assert false
          in
          reduce 0 many
        in
        Hashtbl.replace gate_sig lhs out
      with Parse_error (l, msg) when lenient ->
        warn (if l > 0 then l else lineno) "skipping %s (%s)" lhs msg)
    ordered;
  let out_sigs =
    List.filter_map
      (fun o ->
        match Hashtbl.find_opt gate_sig o with
        | Some v -> Some v
        | None ->
          if lenient then begin
            warn 0 "dropping output %s: its driver was skipped" o;
            None
          end
          else raise (Parse_error (0, Printf.sprintf "undefined output %s" o)))
      outputs
  in
  if out_sigs = [] then raise (Parse_error (0, "no usable outputs"));
  (Netlist.build ~name ~num_inputs ~gates:(List.rev !gates) ~outputs:out_sigs,
   List.rev !warnings)

let parse ~name text = fst (parse_impl ~lenient:false ~name text)

let parse_lenient ~name text = parse_impl ~lenient:true ~name text

let with_file_context path f =
  try f () with Parse_error (line, msg) ->
    (* tag the error with the file it came from; the line stays in the
       structured payload for programmatic handlers *)
    raise (Parse_error (line, Printf.sprintf "%s:%d: %s" path line msg))

let parse_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  with_file_context path (fun () ->
      parse ~name:(Filename.remove_extension (Filename.basename path)) text)

let print nl =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "# %s\n" (Netlist.name nl));
  for i = 0 to Netlist.num_inputs nl - 1 do
    Buffer.add_string buf (Printf.sprintf "INPUT(pi%d)\n" i)
  done;
  Array.iter
    (fun o -> Buffer.add_string buf
        (Printf.sprintf "OUTPUT(%s)\n" (Netlist.signal_name nl o)))
    (Netlist.outputs nl);
  let fname cell =
    match cell with
    | Cell.Inv -> "NOT"
    | Cell.Buf -> "BUF"
    | Cell.Nand2 | Cell.Nand3 -> "NAND"
    | Cell.Nor2 | Cell.Nor3 -> "NOR"
    | Cell.And2 -> "AND"
    | Cell.Or2 -> "OR"
    | Cell.Xor2 -> "XOR"
    | Cell.Xnor2 -> "XNOR"
    | Cell.Aoi21 -> "AOI21"
    | Cell.Oai21 -> "OAI21"
  in
  Array.iter
    (fun g ->
      let args =
        g.Netlist.fanin
        |> Array.map (fun code -> Netlist.signal_name nl (Netlist.decode_signal nl code))
        |> Array.to_list |> String.concat ", "
      in
      Buffer.add_string buf
        (Printf.sprintf "%s = %s(%s)\n" g.Netlist.name (fname g.Netlist.cell) args))
    (Netlist.gates nl);
  Buffer.contents buf
