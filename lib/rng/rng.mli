(** Deterministic pseudo-random number generation.

    The generator is xoshiro256** seeded through SplitMix64, so any
    64-bit seed yields a well-mixed state. Every stochastic component of
    the library takes an explicit [t] so that experiments are exactly
    reproducible. *)

type t

val create : int -> t
(** [create seed] builds a generator from an arbitrary integer seed. *)

val split : t -> t
(** [split rng] derives an independent generator stream and advances
    [rng]. Use it to hand sub-components their own streams. *)

val copy : t -> t

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val float : t -> float
(** Uniform in [\[0, 1)]. *)

val uniform : t -> float -> float -> float
(** [uniform rng lo hi] is uniform in [\[lo, hi)]. *)

val int : t -> int -> int
(** [int rng bound] is uniform in [\[0, bound)]. Raises
    [Invalid_argument] if [bound <= 0]. *)

val gaussian : t -> float
(** Standard normal deviate (Marsaglia polar method). *)

val gaussian_vector : t -> int -> float array
(** [gaussian_vector rng n] draws [n] iid standard normals. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
