type t = {
  mutable s0 : int64;
  mutable s1 : int64;
  mutable s2 : int64;
  mutable s3 : int64;
  mutable spare : float option;  (* cached second deviate of the polar method *)
}

(* SplitMix64: turns any seed into a well-distributed state. *)
let splitmix64 state =
  let z = Int64.add !state 0x9E3779B97F4A7C15L in
  state := z;
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed =
  let state = ref (Int64.of_int seed) in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  { s0; s1; s2; s3; spare = None }

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let bits64 r =
  let result = Int64.mul (rotl (Int64.mul r.s1 5L) 7) 9L in
  let t = Int64.shift_left r.s1 17 in
  r.s2 <- Int64.logxor r.s2 r.s0;
  r.s3 <- Int64.logxor r.s3 r.s1;
  r.s1 <- Int64.logxor r.s1 r.s2;
  r.s0 <- Int64.logxor r.s0 r.s3;
  r.s2 <- Int64.logxor r.s2 t;
  r.s3 <- rotl r.s3 45;
  result

let split r =
  let seed = Int64.to_int (bits64 r) in
  create (seed lxor 0x5DEECE66D)

let copy r = { r with spare = r.spare }

(* 53 uniform bits into [0,1) *)
let float r =
  let x = Int64.shift_right_logical (bits64 r) 11 in
  Int64.to_float x *. 0x1.0p-53

let uniform r lo hi = lo +. ((hi -. lo) *. float r)

let int r bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* keep 62 bits so the value fits OCaml's native int; plain modulo is
     fine for our small bounds *)
  let x = Int64.to_int (Int64.shift_right_logical (bits64 r) 2) in
  x mod bound

let gaussian r =
  match r.spare with
  | Some v ->
    r.spare <- None;
    v
  | None ->
    let rec draw () =
      let u = uniform r (-1.0) 1.0 in
      let v = uniform r (-1.0) 1.0 in
      let s = (u *. u) +. (v *. v) in
      if s >= 1.0 || Float.equal s 0.0 then draw ()
      else begin
        let mul = sqrt (-2.0 *. log s /. s) in
        r.spare <- Some (v *. mul);
        u *. mul
      end
    in
    draw ()

let gaussian_vector r n = Array.init n (fun _ -> gaussian r)

let shuffle r a =
  for i = Array.length a - 1 downto 1 do
    let j = int r (i + 1) in
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  done
