(** Sequential drift detection on prediction residuals.

    A two-sided CUSUM on standardized residuals catches persistent mean
    shifts; a windowed sample-variance ratio catches spread blow-ups
    that leave the mean intact. The detector is calibrated against a
    fixed reference [(mean, sigma)] supplied at creation time (callers
    typically estimate it from the first few dozen healthy dies) and
    reports a typed state after every observation.

    The detector is a diagnostic, never a gatekeeper: pathological
    input (non-finite residuals) is counted and, past a configurable
    run length, quarantines the {e detector} — the caller's serving
    path must keep running regardless of what happens here. *)

type state = Healthy | Warning | Drifted

val state_to_string : state -> string

type config = {
  slack : float;
      (** CUSUM slack [k], in reference sigmas: deviations below this
          are absorbed. Default [0.5] (tuned for ~1-sigma shifts). *)
  warn : float;
      (** CUSUM statistic (in sigmas) at which the state becomes
          [Warning]. Default [4.0]. *)
  drift : float;
      (** CUSUM statistic at which the state becomes [Drifted]; the
          boundary is inclusive ([>=]). Default [8.0]. *)
  window : int;
      (** Residual-variance window length. Default [64]. *)
  var_ratio : float;
      (** Windowed sample variance over reference variance at which the
          state becomes [Drifted] even without a mean shift.
          Default [6.0]. *)
  max_consecutive_bad : int;
      (** Consecutive non-finite residuals after which the detector
          quarantines itself. Default [8]. *)
}

val default_config : config

val check_config : config -> unit
(** Raises [Invalid_argument] on an invalid threshold set ([drift <= 0],
    [warn > drift], [window < 2], [var_ratio <= 1], non-finite values,
    [max_consecutive_bad < 1]). Exposed so callers that build a detector
    {e later} (e.g. after a calibration phase) can fail fast at
    configuration time instead of mid-stream. *)

type t

val create : ?config:config -> mean:float -> sigma:float -> unit -> t
(** Reference distribution of healthy residuals. [sigma] must be
    finite and [>= 0]; a zero [sigma] (degenerate reference) is floored
    internally so that any departure from [mean] registers immediately.
    Raises [Invalid_argument] on non-finite or negative inputs, or on a
    non-positive [window], [drift <= 0] or [warn > drift]. *)

val observe : t -> float -> state
(** Feed one residual and return the updated state. [Drifted] latches:
    once reached it persists until [reset]. Non-finite input never
    raises — it is counted ([bad_inputs]), leaves the statistics
    untouched, and after [max_consecutive_bad] in a row the detector
    quarantines itself ([quarantined] becomes true and the state
    freezes). *)

val state : t -> state

val cusum : t -> float
(** Current two-sided CUSUM statistic, max of the high and low sides,
    in reference sigmas. *)

val variance_ratio : t -> float option
(** Windowed sample variance over reference variance; [None] until the
    window has filled. *)

val observed : t -> int
(** Finite residuals consumed. *)

val bad_inputs : t -> int
(** Non-finite residuals rejected (cumulative, survives [reset]). *)

val quarantined : t -> bool

val reset : t -> unit
(** Clear CUSUM state, window, latch and quarantine; keep the reference
    distribution and the cumulative [bad_inputs] counter. Use after an
    artifact swap (followed by recalibration) or operator intervention. *)

(** {2 Durability}

    A detector is plain data — reference, CUSUM accumulators, residual
    window, latch — so crash recovery is a deep copy out and a deep
    copy back: a restored detector continues bit-exactly where the
    snapshot was taken. *)

type snapshot = {
  snap_config : config;
  snap_mean0 : float;
  snap_sigma0 : float;  (** already floored *)
  snap_s_hi : float;
  snap_s_lo : float;
  snap_n : int;
  snap_bad : int;
  snap_consecutive_bad : int;
  snap_quarantine : bool;
  snap_win : float array;  (** length [snap_config.window] *)
  snap_win_n : int;
  snap_state : state;
}

val snapshot : t -> snapshot
(** Deep copy; safe to serialize while the live detector observes. *)

val restore : snapshot -> t
(** Rebuild a detector mid-stream. Raises [Invalid_argument] on an
    invalid config or a window length mismatch. *)

(** Per-group drift detection for streams partitioned by wafer/lot.

    Process variation is strongly correlated within a wafer and a lot,
    so a residual reference calibrated across wafers is wider than any
    single wafer's healthy spread — a per-wafer shift can hide inside
    it. [Grouped] keys calibration and detection by an opaque group id:
    each group gets its own reference (estimated from its own first
    residuals) and its own CUSUM/variance detector, created lazily and
    bounded by a table cap. A stream that never names a group lands in
    the default group [""] and behaves exactly like a single flat
    detector with the same calibration length. *)
module Grouped : sig
  type t

  val create :
    ?config:config -> ?calibrate:int -> ?max_groups:int -> unit -> t
  (** One detector configuration shared by every group. [calibrate]
      (default [32], [>= 2]) residuals per group build that group's
      reference; [max_groups] (default [64], [>= 1]) bounds the table —
      unknown groups past the cap are folded into the default group and
      counted in {!overflowed}. Raises [Invalid_argument] on a bad
      config (via {!check_config}) or bad bounds. *)

  val observe : t -> group:string -> float -> state
  (** Feed one residual to [group]'s detector, creating it (calibrating
      first) on first sight. Returns that group's post-observation
      state; [Healthy] while the group is still calibrating. *)

  val group_count : t -> int
  (** Groups currently tracked (the default group counts). *)

  val overflowed : t -> int
  (** Observations from unknown groups folded into the default group
      because the table was full (cumulative, survives {!restart}). *)

  val calibrating : t -> bool
  (** No group has finished calibration yet — no detection capability
      anywhere. Matches the flat detector's "calibrating" notion when
      only the default group exists. *)

  val state : t -> state
  (** Worst state across groups ([Drifted] > [Warning] > [Healthy]). *)

  val cusum : t -> float
  (** Largest CUSUM statistic across calibrated groups; [0.0] if none. *)

  val variance_ratio : t -> float option
  (** Largest windowed variance ratio across groups whose window has
      filled; [None] if no group's has. *)

  val quarantined : t -> bool
  (** Some group's detector has quarantined itself. *)

  val drifted_active : t -> bool
  (** Some group is [Drifted] and {e not} quarantined — the re-selection
      trigger: a quarantined group's latched state is untrusted, but it
      must not mask a genuine drift in another group. *)

  val restart : t -> unit
  (** Drop every group (including calibration progress) back to a fresh
      table with only the default group; keeps the cumulative
      {!overflowed} counter. Use after an artifact swap. *)

  (** {2 Durability} *)

  type entry_snapshot = {
    snap_group : string;
    snap_calib : float array;
    snap_calib_n : int;
    snap_det : snapshot option;  (** [None] while still calibrating *)
  }

  type group_snapshot = {
    snap_cfg : config;
    snap_calibrate : int;
    snap_max_groups : int;
    snap_overflow : int;
    snap_entries : entry_snapshot list;
        (** sorted by group id, so the snapshot is canonical — equal
            tables produce equal snapshots regardless of insertion
            history *)
  }

  val snapshot : t -> group_snapshot
  (** Deep copy of every group (calibration buffers included). *)

  val restore : group_snapshot -> t
  (** Rebuild the table mid-stream; the default group is re-created if
      the snapshot somehow lacks it. Raises [Invalid_argument] on an
      invalid config or calibration-length mismatch. *)
end
