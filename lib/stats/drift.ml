type state = Healthy | Warning | Drifted

let state_to_string = function
  | Healthy -> "healthy"
  | Warning -> "warning"
  | Drifted -> "drifted"

type config = {
  slack : float;
  warn : float;
  drift : float;
  window : int;
  var_ratio : float;
  max_consecutive_bad : int;
}

let default_config =
  {
    slack = 0.5;
    warn = 4.0;
    drift = 8.0;
    window = 64;
    var_ratio = 6.0;
    max_consecutive_bad = 8;
  }

(* A degenerate (zero-sigma) reference means healthy residuals are a
   point mass: floor sigma so the first real deviation produces a huge
   standardized step instead of a division by zero. *)
let sigma_floor = 1e-12

type t = {
  cfg : config;
  mean0 : float;
  sigma0 : float; (* floored, > 0 *)
  mutable s_hi : float;
  mutable s_lo : float;
  mutable n : int; (* finite residuals consumed *)
  mutable bad : int;
  mutable consecutive_bad : int;
  mutable quarantine : bool;
  win : float array; (* ring buffer of recent residuals *)
  mutable win_n : int; (* total pushed into the ring *)
  mutable st : state;
}

let check_config config =
  if config.window < 2 then invalid_arg "Drift: window must be >= 2";
  if not (Float.is_finite config.drift && config.drift > 0.0) then
    invalid_arg "Drift: drift threshold must be positive";
  if (not (Float.is_finite config.warn)) || config.warn > config.drift then
    invalid_arg "Drift: warn threshold must be finite and not exceed the \
                 drift threshold";
  if (not (Float.is_finite config.slack)) || config.slack < 0.0 then
    invalid_arg "Drift: slack must be finite and >= 0";
  if not (Float.is_finite config.var_ratio && config.var_ratio > 1.0) then
    invalid_arg "Drift: var_ratio must exceed 1";
  if config.max_consecutive_bad < 1 then
    invalid_arg "Drift: max_consecutive_bad must be >= 1"

let create ?(config = default_config) ~mean ~sigma () =
  if not (Float.is_finite mean) then
    invalid_arg "Drift.create: reference mean must be finite";
  if (not (Float.is_finite sigma)) || sigma < 0.0 then
    invalid_arg "Drift.create: reference sigma must be finite and >= 0";
  check_config config;
  {
    cfg = config;
    mean0 = mean;
    sigma0 = Float.max sigma sigma_floor;
    s_hi = 0.0;
    s_lo = 0.0;
    n = 0;
    bad = 0;
    consecutive_bad = 0;
    quarantine = false;
    win = Array.make config.window 0.0;
    win_n = 0;
    st = Healthy;
  }

let cusum t = Float.max t.s_hi t.s_lo

let window_variance t =
  let k = Array.length t.win in
  if t.win_n < k then None
  else begin
    let mean = Array.fold_left ( +. ) 0.0 t.win /. float_of_int k in
    let acc = ref 0.0 in
    Array.iter
      (fun x ->
        let d = x -. mean in
        acc := !acc +. (d *. d))
      t.win;
    Some (!acc /. float_of_int (k - 1))
  end

let variance_ratio t =
  match window_variance t with
  | None -> None
  | Some v -> Some (v /. (t.sigma0 *. t.sigma0))

let classify t =
  match t.st with
  | Drifted -> Drifted (* latched *)
  | Healthy | Warning ->
    let c = cusum t in
    let var_hit =
      match variance_ratio t with
      | Some r -> r >= t.cfg.var_ratio
      | None -> false
    in
    if c >= t.cfg.drift || var_hit then Drifted
    else if c >= t.cfg.warn then Warning
    else Healthy

let observe t x =
  if t.quarantine then t.st
  else if not (Float.is_finite x) then begin
    t.bad <- t.bad + 1;
    t.consecutive_bad <- t.consecutive_bad + 1;
    if t.consecutive_bad >= t.cfg.max_consecutive_bad then
      t.quarantine <- true;
    t.st
  end
  else begin
    t.consecutive_bad <- 0;
    let z = (x -. t.mean0) /. t.sigma0 in
    t.s_hi <- Float.max 0.0 (t.s_hi +. z -. t.cfg.slack);
    t.s_lo <- Float.max 0.0 (t.s_lo -. z -. t.cfg.slack);
    t.win.(t.win_n mod Array.length t.win) <- x;
    t.win_n <- t.win_n + 1;
    t.n <- t.n + 1;
    t.st <- classify t;
    t.st
  end

let state t = t.st
let observed t = t.n
let bad_inputs t = t.bad
let quarantined t = t.quarantine

let reset t =
  t.s_hi <- 0.0;
  t.s_lo <- 0.0;
  t.n <- 0;
  t.consecutive_bad <- 0;
  t.quarantine <- false;
  t.win_n <- 0;
  t.st <- Healthy

(* ------------------------------------------------------------------ *)

module Grouped = struct
  type detector = t

  let flat_create = create
  let flat_observe = observe
  let flat_state = state
  let flat_cusum = cusum
  let flat_variance_ratio = variance_ratio
  let flat_quarantined = quarantined

  (* each group calibrates its own reference from its first residuals,
     exactly the way a flat caller would *)
  type entry = {
    calib : float array;
    mutable calib_n : int;
    mutable det : detector option;
  }

  type nonrec t = {
    cfg : config;
    calibrate : int;
    max_groups : int;
    groups : (string, entry) Hashtbl.t;
    mutable overflow : int;
  }

  let default_group = ""

  let fresh t =
    { calib = Array.make t.calibrate 0.0; calib_n = 0; det = None }

  let create ?(config = default_config) ?(calibrate = 32) ?(max_groups = 64)
      () =
    check_config config;
    if calibrate < 2 then invalid_arg "Drift.Grouped: calibrate must be >= 2";
    if max_groups < 1 then invalid_arg "Drift.Grouped: max_groups must be >= 1";
    let t =
      { cfg = config; calibrate; max_groups; groups = Hashtbl.create 16;
        overflow = 0 }
    in
    Hashtbl.replace t.groups default_group (fresh t);
    t

  let entry_for t group =
    match Hashtbl.find_opt t.groups group with
    | Some e -> e
    | None ->
      if Hashtbl.length t.groups >= t.max_groups then begin
        (* bounded table: unknown groups past the cap share the default
           stream rather than grow without limit *)
        t.overflow <- t.overflow + 1;
        Hashtbl.find t.groups default_group
      end
      else begin
        let e = fresh t in
        Hashtbl.replace t.groups group e;
        e
      end

  let observe t ~group x =
    let e = entry_for t group in
    match e.det with
    | Some d -> flat_observe d x
    | None ->
      (* calibration: only finite residuals shape the reference *)
      if Float.is_finite x then begin
        e.calib.(e.calib_n) <- x;
        e.calib_n <- e.calib_n + 1;
        if e.calib_n >= t.calibrate then begin
          let sample = Array.sub e.calib 0 e.calib_n in
          e.det <-
            Some
              (flat_create ~config:t.cfg
                 ~mean:(Descriptive.mean sample)
                 ~sigma:(Descriptive.stddev sample) ())
        end
      end;
      Healthy

  let fold f init t = Hashtbl.fold (fun _ e acc -> f acc e) t.groups init

  let group_count t = Hashtbl.length t.groups
  let overflowed t = t.overflow

  let calibrating t =
    fold (fun acc e -> acc && Option.is_none e.det) true t

  let severity = function Healthy -> 0 | Warning -> 1 | Drifted -> 2

  let state t =
    fold
      (fun acc e ->
        match e.det with
        | None -> acc
        | Some d ->
          let s = flat_state d in
          if severity s > severity acc then s else acc)
      Healthy t

  let cusum t =
    fold
      (fun acc e ->
        match e.det with
        | None -> acc
        | Some d -> Float.max acc (flat_cusum d))
      0.0 t

  let variance_ratio t =
    fold
      (fun acc e ->
        match e.det with
        | None -> acc
        | Some d ->
          (match (flat_variance_ratio d, acc) with
           | None, _ -> acc
           | Some v, None -> Some v
           | Some v, Some a -> Some (Float.max v a)))
      None t

  let quarantined t =
    fold
      (fun acc e ->
        acc
        || match e.det with Some d -> flat_quarantined d | None -> false)
      false t

  let drifted_active t =
    fold
      (fun acc e ->
        acc
        ||
        match e.det with
        | Some d ->
          (match flat_state d with
           | Drifted -> not (flat_quarantined d)
           | Healthy | Warning -> false)
        | None -> false)
      false t

  let restart t =
    Hashtbl.reset t.groups;
    Hashtbl.replace t.groups default_group (fresh t)
end
