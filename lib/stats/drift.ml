type state = Healthy | Warning | Drifted

let state_to_string = function
  | Healthy -> "healthy"
  | Warning -> "warning"
  | Drifted -> "drifted"

type config = {
  slack : float;
  warn : float;
  drift : float;
  window : int;
  var_ratio : float;
  max_consecutive_bad : int;
}

let default_config =
  {
    slack = 0.5;
    warn = 4.0;
    drift = 8.0;
    window = 64;
    var_ratio = 6.0;
    max_consecutive_bad = 8;
  }

(* A degenerate (zero-sigma) reference means healthy residuals are a
   point mass: floor sigma so the first real deviation produces a huge
   standardized step instead of a division by zero. *)
let sigma_floor = 1e-12

type t = {
  cfg : config;
  mean0 : float;
  sigma0 : float; (* floored, > 0 *)
  mutable s_hi : float;
  mutable s_lo : float;
  mutable n : int; (* finite residuals consumed *)
  mutable bad : int;
  mutable consecutive_bad : int;
  mutable quarantine : bool;
  win : float array; (* ring buffer of recent residuals *)
  mutable win_n : int; (* total pushed into the ring *)
  mutable st : state;
}

let check_config config =
  if config.window < 2 then invalid_arg "Drift: window must be >= 2";
  if not (Float.is_finite config.drift && config.drift > 0.0) then
    invalid_arg "Drift: drift threshold must be positive";
  if (not (Float.is_finite config.warn)) || config.warn > config.drift then
    invalid_arg "Drift: warn threshold must be finite and not exceed the \
                 drift threshold";
  if (not (Float.is_finite config.slack)) || config.slack < 0.0 then
    invalid_arg "Drift: slack must be finite and >= 0";
  if not (Float.is_finite config.var_ratio && config.var_ratio > 1.0) then
    invalid_arg "Drift: var_ratio must exceed 1";
  if config.max_consecutive_bad < 1 then
    invalid_arg "Drift: max_consecutive_bad must be >= 1"

let create ?(config = default_config) ~mean ~sigma () =
  if not (Float.is_finite mean) then
    invalid_arg "Drift.create: reference mean must be finite";
  if (not (Float.is_finite sigma)) || sigma < 0.0 then
    invalid_arg "Drift.create: reference sigma must be finite and >= 0";
  check_config config;
  {
    cfg = config;
    mean0 = mean;
    sigma0 = Float.max sigma sigma_floor;
    s_hi = 0.0;
    s_lo = 0.0;
    n = 0;
    bad = 0;
    consecutive_bad = 0;
    quarantine = false;
    win = Array.make config.window 0.0;
    win_n = 0;
    st = Healthy;
  }

let cusum t = Float.max t.s_hi t.s_lo

let window_variance t =
  let k = Array.length t.win in
  if t.win_n < k then None
  else begin
    let mean = Array.fold_left ( +. ) 0.0 t.win /. float_of_int k in
    let acc = ref 0.0 in
    Array.iter
      (fun x ->
        let d = x -. mean in
        acc := !acc +. (d *. d))
      t.win;
    Some (!acc /. float_of_int (k - 1))
  end

let variance_ratio t =
  match window_variance t with
  | None -> None
  | Some v -> Some (v /. (t.sigma0 *. t.sigma0))

let classify t =
  match t.st with
  | Drifted -> Drifted (* latched *)
  | Healthy | Warning ->
    let c = cusum t in
    let var_hit =
      match variance_ratio t with
      | Some r -> r >= t.cfg.var_ratio
      | None -> false
    in
    if c >= t.cfg.drift || var_hit then Drifted
    else if c >= t.cfg.warn then Warning
    else Healthy

let observe t x =
  if t.quarantine then t.st
  else if not (Float.is_finite x) then begin
    t.bad <- t.bad + 1;
    t.consecutive_bad <- t.consecutive_bad + 1;
    if t.consecutive_bad >= t.cfg.max_consecutive_bad then
      t.quarantine <- true;
    t.st
  end
  else begin
    t.consecutive_bad <- 0;
    let z = (x -. t.mean0) /. t.sigma0 in
    t.s_hi <- Float.max 0.0 (t.s_hi +. z -. t.cfg.slack);
    t.s_lo <- Float.max 0.0 (t.s_lo -. z -. t.cfg.slack);
    t.win.(t.win_n mod Array.length t.win) <- x;
    t.win_n <- t.win_n + 1;
    t.n <- t.n + 1;
    t.st <- classify t;
    t.st
  end

let state t = t.st
let observed t = t.n
let bad_inputs t = t.bad
let quarantined t = t.quarantine

let reset t =
  t.s_hi <- 0.0;
  t.s_lo <- 0.0;
  t.n <- 0;
  t.consecutive_bad <- 0;
  t.quarantine <- false;
  t.win_n <- 0;
  t.st <- Healthy
