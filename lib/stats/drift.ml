type state = Healthy | Warning | Drifted

let state_to_string = function
  | Healthy -> "healthy"
  | Warning -> "warning"
  | Drifted -> "drifted"

type config = {
  slack : float;
  warn : float;
  drift : float;
  window : int;
  var_ratio : float;
  max_consecutive_bad : int;
}

let default_config =
  {
    slack = 0.5;
    warn = 4.0;
    drift = 8.0;
    window = 64;
    var_ratio = 6.0;
    max_consecutive_bad = 8;
  }

(* A degenerate (zero-sigma) reference means healthy residuals are a
   point mass: floor sigma so the first real deviation produces a huge
   standardized step instead of a division by zero. *)
let sigma_floor = 1e-12

type t = {
  cfg : config;
  mean0 : float;
  sigma0 : float; (* floored, > 0 *)
  mutable s_hi : float;
  mutable s_lo : float;
  mutable n : int; (* finite residuals consumed *)
  mutable bad : int;
  mutable consecutive_bad : int;
  mutable quarantine : bool;
  win : float array; (* ring buffer of recent residuals *)
  mutable win_n : int; (* total pushed into the ring *)
  mutable st : state;
}

let check_config config =
  if config.window < 2 then invalid_arg "Drift: window must be >= 2";
  if not (Float.is_finite config.drift && config.drift > 0.0) then
    invalid_arg "Drift: drift threshold must be positive";
  if (not (Float.is_finite config.warn)) || config.warn > config.drift then
    invalid_arg "Drift: warn threshold must be finite and not exceed the \
                 drift threshold";
  if (not (Float.is_finite config.slack)) || config.slack < 0.0 then
    invalid_arg "Drift: slack must be finite and >= 0";
  if not (Float.is_finite config.var_ratio && config.var_ratio > 1.0) then
    invalid_arg "Drift: var_ratio must exceed 1";
  if config.max_consecutive_bad < 1 then
    invalid_arg "Drift: max_consecutive_bad must be >= 1"

let create ?(config = default_config) ~mean ~sigma () =
  if not (Float.is_finite mean) then
    invalid_arg "Drift.create: reference mean must be finite";
  if (not (Float.is_finite sigma)) || sigma < 0.0 then
    invalid_arg "Drift.create: reference sigma must be finite and >= 0";
  check_config config;
  {
    cfg = config;
    mean0 = mean;
    sigma0 = Float.max sigma sigma_floor;
    s_hi = 0.0;
    s_lo = 0.0;
    n = 0;
    bad = 0;
    consecutive_bad = 0;
    quarantine = false;
    win = Array.make config.window 0.0;
    win_n = 0;
    st = Healthy;
  }

let cusum t = Float.max t.s_hi t.s_lo

let window_variance t =
  let k = Array.length t.win in
  if t.win_n < k then None
  else begin
    let mean = Array.fold_left ( +. ) 0.0 t.win /. float_of_int k in
    let acc = ref 0.0 in
    Array.iter
      (fun x ->
        let d = x -. mean in
        acc := !acc +. (d *. d))
      t.win;
    Some (!acc /. float_of_int (k - 1))
  end

let variance_ratio t =
  match window_variance t with
  | None -> None
  | Some v -> Some (v /. (t.sigma0 *. t.sigma0))

let classify t =
  match t.st with
  | Drifted -> Drifted (* latched *)
  | Healthy | Warning ->
    let c = cusum t in
    let var_hit =
      match variance_ratio t with
      | Some r -> r >= t.cfg.var_ratio
      | None -> false
    in
    if c >= t.cfg.drift || var_hit then Drifted
    else if c >= t.cfg.warn then Warning
    else Healthy

let observe t x =
  if t.quarantine then t.st
  else if not (Float.is_finite x) then begin
    t.bad <- t.bad + 1;
    t.consecutive_bad <- t.consecutive_bad + 1;
    if t.consecutive_bad >= t.cfg.max_consecutive_bad then
      t.quarantine <- true;
    t.st
  end
  else begin
    t.consecutive_bad <- 0;
    let z = (x -. t.mean0) /. t.sigma0 in
    t.s_hi <- Float.max 0.0 (t.s_hi +. z -. t.cfg.slack);
    t.s_lo <- Float.max 0.0 (t.s_lo -. z -. t.cfg.slack);
    t.win.(t.win_n mod Array.length t.win) <- x;
    t.win_n <- t.win_n + 1;
    t.n <- t.n + 1;
    t.st <- classify t;
    t.st
  end

let state t = t.st
let observed t = t.n
let bad_inputs t = t.bad
let quarantined t = t.quarantine

let reset t =
  t.s_hi <- 0.0;
  t.s_lo <- 0.0;
  t.n <- 0;
  t.consecutive_bad <- 0;
  t.quarantine <- false;
  t.win_n <- 0;
  t.st <- Healthy

(* ------------------------------------------------------------------ *)
(* Durability: a detector is its reference, its CUSUM accumulators,
   the residual window, and the latch/quarantine flags — all plain
   data. Snapshots deep-copy the window so a checkpoint writer can
   encode one while the live detector keeps observing. *)

type snapshot = {
  snap_config : config;
  snap_mean0 : float;
  snap_sigma0 : float;
  snap_s_hi : float;
  snap_s_lo : float;
  snap_n : int;
  snap_bad : int;
  snap_consecutive_bad : int;
  snap_quarantine : bool;
  snap_win : float array;
  snap_win_n : int;
  snap_state : state;
}

let snapshot t =
  {
    snap_config = t.cfg;
    snap_mean0 = t.mean0;
    snap_sigma0 = t.sigma0;
    snap_s_hi = t.s_hi;
    snap_s_lo = t.s_lo;
    snap_n = t.n;
    snap_bad = t.bad;
    snap_consecutive_bad = t.consecutive_bad;
    snap_quarantine = t.quarantine;
    snap_win = Array.copy t.win;
    snap_win_n = t.win_n;
    snap_state = t.st;
  }

let restore s =
  check_config s.snap_config;
  if Array.length s.snap_win <> s.snap_config.window then
    invalid_arg "Drift.restore: window length mismatch";
  {
    cfg = s.snap_config;
    mean0 = s.snap_mean0;
    sigma0 = s.snap_sigma0;
    s_hi = s.snap_s_hi;
    s_lo = s.snap_s_lo;
    n = s.snap_n;
    bad = s.snap_bad;
    consecutive_bad = s.snap_consecutive_bad;
    quarantine = s.snap_quarantine;
    win = Array.copy s.snap_win;
    win_n = s.snap_win_n;
    st = s.snap_state;
  }

(* ------------------------------------------------------------------ *)

module Grouped = struct
  type detector = t

  let flat_create = create
  let flat_observe = observe
  let flat_state = state
  let flat_cusum = cusum
  let flat_variance_ratio = variance_ratio
  let flat_quarantined = quarantined
  let flat_snapshot = snapshot
  let flat_restore = restore

  (* each group calibrates its own reference from its first residuals,
     exactly the way a flat caller would *)
  type entry = {
    calib : float array;
    mutable calib_n : int;
    mutable det : detector option;
  }

  type nonrec t = {
    cfg : config;
    calibrate : int;
    max_groups : int;
    groups : (string, entry) Hashtbl.t;
    mutable overflow : int;
  }

  let default_group = ""

  let fresh t =
    { calib = Array.make t.calibrate 0.0; calib_n = 0; det = None }

  let create ?(config = default_config) ?(calibrate = 32) ?(max_groups = 64)
      () =
    check_config config;
    if calibrate < 2 then invalid_arg "Drift.Grouped: calibrate must be >= 2";
    if max_groups < 1 then invalid_arg "Drift.Grouped: max_groups must be >= 1";
    let t =
      { cfg = config; calibrate; max_groups; groups = Hashtbl.create 16;
        overflow = 0 }
    in
    Hashtbl.replace t.groups default_group (fresh t);
    t

  let entry_for t group =
    match Hashtbl.find_opt t.groups group with
    | Some e -> e
    | None ->
      if Hashtbl.length t.groups >= t.max_groups then begin
        (* bounded table: unknown groups past the cap share the default
           stream rather than grow without limit *)
        t.overflow <- t.overflow + 1;
        Hashtbl.find t.groups default_group
      end
      else begin
        let e = fresh t in
        Hashtbl.replace t.groups group e;
        e
      end

  let observe t ~group x =
    let e = entry_for t group in
    match e.det with
    | Some d -> flat_observe d x
    | None ->
      (* calibration: only finite residuals shape the reference *)
      if Float.is_finite x then begin
        e.calib.(e.calib_n) <- x;
        e.calib_n <- e.calib_n + 1;
        if e.calib_n >= t.calibrate then begin
          let sample = Array.sub e.calib 0 e.calib_n in
          e.det <-
            Some
              (flat_create ~config:t.cfg
                 ~mean:(Descriptive.mean sample)
                 ~sigma:(Descriptive.stddev sample) ())
        end
      end;
      Healthy

  let fold f init t = Hashtbl.fold (fun _ e acc -> f acc e) t.groups init

  let group_count t = Hashtbl.length t.groups
  let overflowed t = t.overflow

  let calibrating t =
    fold (fun acc e -> acc && Option.is_none e.det) true t

  let severity = function Healthy -> 0 | Warning -> 1 | Drifted -> 2

  let state t =
    fold
      (fun acc e ->
        match e.det with
        | None -> acc
        | Some d ->
          let s = flat_state d in
          if severity s > severity acc then s else acc)
      Healthy t

  let cusum t =
    fold
      (fun acc e ->
        match e.det with
        | None -> acc
        | Some d -> Float.max acc (flat_cusum d))
      0.0 t

  let variance_ratio t =
    fold
      (fun acc e ->
        match e.det with
        | None -> acc
        | Some d ->
          (match (flat_variance_ratio d, acc) with
           | None, _ -> acc
           | Some v, None -> Some v
           | Some v, Some a -> Some (Float.max v a)))
      None t

  let quarantined t =
    fold
      (fun acc e ->
        acc
        || match e.det with Some d -> flat_quarantined d | None -> false)
      false t

  let drifted_active t =
    fold
      (fun acc e ->
        acc
        ||
        match e.det with
        | Some d ->
          (match flat_state d with
           | Drifted -> not (flat_quarantined d)
           | Healthy | Warning -> false)
        | None -> false)
      false t

  let restart t =
    Hashtbl.reset t.groups;
    Hashtbl.replace t.groups default_group (fresh t)

  (* Durability: group entries are serialized sorted by key so the
     snapshot is canonical — two tables with the same contents yield
     the same snapshot regardless of hash-table history. *)

  type entry_snapshot = {
    snap_group : string;
    snap_calib : float array;
    snap_calib_n : int;
    snap_det : snapshot option;
  }

  type group_snapshot = {
    snap_cfg : config;
    snap_calibrate : int;
    snap_max_groups : int;
    snap_overflow : int;
    snap_entries : entry_snapshot list;  (** sorted by group id *)
  }

  let snapshot t =
    let entries =
      Hashtbl.fold
        (fun group e acc ->
          {
            snap_group = group;
            snap_calib = Array.copy e.calib;
            snap_calib_n = e.calib_n;
            snap_det = Option.map flat_snapshot e.det;
          }
          :: acc)
        t.groups []
      |> List.sort (fun a b -> String.compare a.snap_group b.snap_group)
    in
    {
      snap_cfg = t.cfg;
      snap_calibrate = t.calibrate;
      snap_max_groups = t.max_groups;
      snap_overflow = t.overflow;
      snap_entries = entries;
    }

  let restore s =
    let t =
      create ~config:s.snap_cfg ~calibrate:s.snap_calibrate
        ~max_groups:s.snap_max_groups ()
    in
    t.overflow <- s.snap_overflow;
    List.iter
      (fun e ->
        if Array.length e.snap_calib <> t.calibrate then
          invalid_arg "Drift.Grouped.restore: calibration length mismatch";
        Hashtbl.replace t.groups e.snap_group
          {
            calib = Array.copy e.snap_calib;
            calib_n = e.snap_calib_n;
            det = Option.map flat_restore e.snap_det;
          })
      s.snap_entries;
    if not (Hashtbl.mem t.groups default_group) then
      Hashtbl.replace t.groups default_group (fresh t);
    t
end
