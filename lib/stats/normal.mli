(** The standard normal distribution and scalar Gaussian random variables. *)

val pdf : float -> float

val cdf : float -> float
(** Standard normal CDF, accurate to ~1e-15 via the complementary error
    function. *)

val quantile : float -> float
(** Inverse CDF. Acklam's rational approximation refined by one Halley
    step; accurate to ~1e-13 on (0, 1). Raises [Invalid_argument]
    outside (0, 1). *)

val erfc : float -> float
(** Complementary error function. *)

type gaussian = { mean : float; std : float }
(** A scalar Gaussian N(mean, std^2); [std >= 0]. *)

val cdf_of : gaussian -> float -> float
(** [cdf_of g x] is P(X <= x) for X ~ g; degenerate [std = 0] is a step. *)

val worst_case : kappa:float -> gaussian -> float
(** [worst_case ~kappa g] is the paper's WC(y) operator: the worst-case
    magnitude [|mean| + kappa * std] of the random variable. *)

val yield_at : gaussian -> float -> float
(** [yield_at g t] is P(X <= t): the timing yield of a path with delay
    distribution [g] against constraint [t]. Synonym of {!cdf_of}. *)
