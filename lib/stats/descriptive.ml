let mean xs =
  if Array.length xs = 0 then invalid_arg "Descriptive.mean: empty";
  Array.fold_left ( +. ) 0.0 xs /. float_of_int (Array.length xs)

let variance xs =
  let n = Array.length xs in
  if n < 2 then 0.0
  else begin
    let m = mean xs in
    let acc = ref 0.0 in
    Array.iter
      (fun x ->
        let d = x -. m in
        acc := !acc +. (d *. d))
      xs;
    !acc /. float_of_int (n - 1)
  end

let stddev xs = sqrt (variance xs)

let covariance xs ys =
  let n = Array.length xs in
  if n <> Array.length ys then invalid_arg "Descriptive.covariance: length mismatch";
  if n < 2 then 0.0
  else begin
    let mx = mean xs and my = mean ys in
    let acc = ref 0.0 in
    for i = 0 to n - 1 do
      acc := !acc +. ((xs.(i) -. mx) *. (ys.(i) -. my))
    done;
    !acc /. float_of_int (n - 1)
  end

let correlation xs ys =
  let sx = stddev xs and sy = stddev ys in
  if Float.equal sx 0.0 || Float.equal sy 0.0 then 0.0
  else covariance xs ys /. (sx *. sy)

let quantile xs p =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Descriptive.quantile: empty";
  if p < 0.0 || p > 1.0 then invalid_arg "Descriptive.quantile: p outside [0,1]";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let pos = p *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor pos) in
  let hi = min (n - 1) (lo + 1) in
  let frac = pos -. float_of_int lo in
  ((1.0 -. frac) *. sorted.(lo)) +. (frac *. sorted.(hi))

let max_abs xs = Array.fold_left (fun acc x -> Float.max acc (Float.abs x)) 0.0 xs

let approx_equal ?(rel = 1e-9) ?(abs = 1e-12) a b =
  if Float.is_nan a || Float.is_nan b then false
  else if Float.equal a b then true (* covers equal infinities *)
  else
    Float.abs (a -. b) <= Float.max abs (rel *. Float.max (Float.abs a) (Float.abs b))
