(** Descriptive statistics over float arrays. *)

val mean : float array -> float

val variance : float array -> float
(** Unbiased sample variance (n-1 denominator); 0 for n < 2. *)

val stddev : float array -> float

val covariance : float array -> float array -> float
(** Unbiased sample covariance. Raises [Invalid_argument] on length
    mismatch. *)

val correlation : float array -> float array -> float
(** Pearson correlation; 0 when either side is constant. *)

val quantile : float array -> float -> float
(** [quantile xs p] is the linear-interpolation empirical quantile,
    [p] in [0, 1]. Raises [Invalid_argument] on an empty array or [p]
    outside [0, 1]. Does not modify [xs]. *)

val max_abs : float array -> float

val approx_equal : ?rel:float -> ?abs:float -> float -> float -> bool
(** [approx_equal a b] is true when
    [|a - b| <= max abs (rel * max |a| |b|)] — a combined
    absolute/relative tolerance test (defaults [rel = 1e-9],
    [abs = 1e-12]). False when either side is NaN; true for equal
    infinities. This is the sanctioned replacement for [(=)] on floats
    when exact equality ([Float.equal]) is not what you mean. *)
