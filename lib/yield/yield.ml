type estimate = {
  p_fail : float;
  sn_p_fail : float;
  std_err : float;
  sn_std_err : float;
  ess : float;
  samples : int;
  hits : int;
  shift_norm : float;
  dominant : int;
  t_cons : float;
}

let yield_of e = 1.0 -. e.p_fail

(* rows below this Euclidean norm are treated as deterministic: their
   delay is exactly mu_i regardless of the draw *)
let sigma_floor = 1e-12

let check ~a ~mu ~t_cons =
  let n, _ = Linalg.Mat.dims a in
  if Array.length mu <> n then
    invalid_arg "Yield: mu length disagrees with the path count";
  if n < 1 then invalid_arg "Yield: empty path pool";
  if not (Float.is_finite t_cons) then invalid_arg "Yield: t_cons must be finite"

let row_norm a i =
  let _, m = Linalg.Mat.dims a in
  let acc = ref 0.0 in
  for j = 0 to m - 1 do
    let v = Linalg.Mat.get a i j in
    acc := !acc +. (v *. v)
  done;
  sqrt !acc

let dominant_path ~a ~mu ~t_cons =
  check ~a ~mu ~t_cons;
  let n, _ = Linalg.Mat.dims a in
  let best = ref (-1) in
  let best_beta = ref Float.infinity in
  for i = 0 to n - 1 do
    let s = row_norm a i in
    if s > sigma_floor then begin
      let beta = (t_cons -. mu.(i)) /. s in
      if beta < !best_beta then begin
        best := i;
        best_beta := beta
      end
    end
  done;
  (!best, !best_beta)

let design_point ~a ~mu ~t_cons =
  let _, m = Linalg.Mat.dims a in
  match dominant_path ~a ~mu ~t_cons with
  | -1, _ -> Array.make m 0.0
  | i, _ ->
    let s2 =
      let acc = ref 0.0 in
      for j = 0 to m - 1 do
        let v = Linalg.Mat.get a i j in
        acc := !acc +. (v *. v)
      done;
      !acc
    in
    let scale = (t_cons -. mu.(i)) /. s2 in
    Array.init m (fun j -> Linalg.Mat.get a i j *. scale)

(* Deterministic pools need no sampling: the failure is certain or
   impossible, decided by the means alone. *)
let deterministic_estimate ~mu ~t_cons ~samples =
  let fails = Array.exists (fun d -> d > t_cons) mu in
  let p = if fails then 1.0 else 0.0 in
  {
    p_fail = p;
    sn_p_fail = p;
    std_err = 0.0;
    sn_std_err = 0.0;
    ess = float_of_int samples;
    samples;
    hits = (if fails then samples else 0);
    shift_norm = 0.0;
    dominant = -1;
    t_cons;
  }

(* The shared sampler: draw [z ~ N(0, I)] in blocks, evaluate every
   path's delay at [x = shift + z] through the blocked kernels, weight
   by the likelihood ratio
     w(x) = phi(x) / phi(x - x_star) = exp (-(z . x_star) - ||x_star||^2 / 2),
   and accumulate the moment sums both estimators need. The draw order
   is strict sample order (row-major blocks off one stream), so the
   result is bit-identical at any block size >= samples and any domain
   pool size. *)
let estimate_with_shift ~block ~a ~mu ~t_cons ~rng ~samples ~shift ~dominant =
  let _, m = Linalg.Mat.dims a in
  let n_paths = Array.length mu in
  let shift2 =
    Array.fold_left (fun acc v -> acc +. (v *. v)) 0.0 shift
  in
  let shift_norm = sqrt shift2 in
  let half = 0.5 *. shift2 in
  (* delay of path i at the design point itself: mu_i + a_i . x* *)
  let base =
    let ax = Linalg.Mat.apply a shift in
    Array.init n_paths (fun i -> mu.(i) +. ax.(i))
  in
  let sw = ref 0.0 in
  let sw2 = ref 0.0 in
  let swf = ref 0.0 in
  let sw2f = ref 0.0 in
  let hits = ref 0 in
  let remaining = ref samples in
  while !remaining > 0 do
    let b = Int.min block !remaining in
    let z = Linalg.Mat.init b m (fun _ _ -> Rng.gaussian rng) in
    (* d.(s).(i) = z_s . a_i ; u.(s) = z_s . x* *)
    let d = Linalg.Mat.mul_nt z a in
    let u = Linalg.Mat.apply z shift in
    for s = 0 to b - 1 do
      let w = exp (-.u.(s) -. half) in
      let fail = ref false in
      let i = ref 0 in
      while (not !fail) && !i < n_paths do
        if base.(!i) +. Linalg.Mat.get d s !i > t_cons then fail := true;
        incr i
      done;
      sw := !sw +. w;
      sw2 := !sw2 +. (w *. w);
      if !fail then begin
        incr hits;
        swf := !swf +. w;
        sw2f := !sw2f +. (w *. w)
      end
    done;
    remaining := !remaining - b
  done;
  let n = float_of_int samples in
  let p = !swf /. n in
  (* sample variance of the per-draw values w * 1{fail} *)
  let var = Float.max 0.0 ((!sw2f -. (n *. p *. p)) /. (n -. 1.0)) in
  let std_err = sqrt (var /. n) in
  let sn_p, sn_se, ess =
    if !sw > 0.0 then begin
      let sn_p = !swf /. !sw in
      (* delta method: Var(p~) ~ sum (w (f - p~))^2 / (sum w)^2 *)
      let num =
        Float.max 0.0
          ((!sw2f *. (1.0 -. (2.0 *. sn_p))) +. (sn_p *. sn_p *. !sw2))
      in
      (sn_p, sqrt num /. !sw, !sw *. !sw /. !sw2)
    end
    else (0.0, 0.0, 0.0)
  in
  {
    p_fail = p;
    sn_p_fail = sn_p;
    std_err;
    sn_std_err = sn_se;
    ess;
    samples;
    hits = !hits;
    shift_norm;
    dominant;
    t_cons;
  }

let run_estimate ?(block = 4096) ~a ~mu ~t_cons ~rng ~samples ~shifted () =
  check ~a ~mu ~t_cons;
  if samples < 2 then invalid_arg "Yield: need at least 2 samples";
  if block < 1 then invalid_arg "Yield: block must be >= 1";
  let dominant, _ = dominant_path ~a ~mu ~t_cons in
  if dominant < 0 then deterministic_estimate ~mu ~t_cons ~samples
  else begin
    let _, m = Linalg.Mat.dims a in
    let shift =
      if shifted then design_point ~a ~mu ~t_cons else Array.make m 0.0
    in
    estimate_with_shift ~block ~a ~mu ~t_cons ~rng ~samples ~shift ~dominant
  end

let importance ?block ~a ~mu ~t_cons ~rng ~samples () =
  run_estimate ?block ~a ~mu ~t_cons ~rng ~samples ~shifted:true ()

let brute_force ?block ~a ~mu ~t_cons ~rng ~samples () =
  run_estimate ?block ~a ~mu ~t_cons ~rng ~samples ~shifted:false ()

let union_bound ~a ~mu ~t_cons =
  check ~a ~mu ~t_cons;
  let n, _ = Linalg.Mat.dims a in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    let s = row_norm a i in
    if s > sigma_floor then
      acc := !acc +. Stats.Normal.cdf (-.(t_cons -. mu.(i)) /. s)
    else if mu.(i) > t_cons then acc := !acc +. 1.0
  done;
  Float.min 1.0 !acc

let calibrate_t_cons ~a ~mu ~target =
  if not (Float.is_finite target && target > 0.0 && target < 1.0) then
    invalid_arg "Yield.calibrate_t_cons: target must be in (0, 1)";
  let n, _ = Linalg.Mat.dims a in
  check ~a ~mu ~t_cons:0.0;
  (* bracket: at lo every path fails its marginal, at hi none does *)
  let lo = ref Float.infinity and hi = ref Float.neg_infinity in
  for i = 0 to n - 1 do
    let s = Float.max (row_norm a i) sigma_floor in
    lo := Float.min !lo (mu.(i) -. (40.0 *. s));
    hi := Float.max !hi (mu.(i) +. (40.0 *. s))
  done;
  let lo = ref !lo and hi = ref !hi in
  (* union_bound is non-increasing in t: bisect to the target level *)
  for _ = 1 to 200 do
    let mid = 0.5 *. (!lo +. !hi) in
    if union_bound ~a ~mu ~t_cons:mid > target then lo := mid else hi := mid
  done;
  0.5 *. (!lo +. !hi)

let sample_reduction e =
  let per_sample_var = e.std_err *. e.std_err *. float_of_int e.samples in
  if per_sample_var > 0.0 then e.p_fail *. (1.0 -. e.p_fail) /. per_sample_var
  else Float.nan

let agreement_z e1 e2 =
  let gap = Float.abs (e1.p_fail -. e2.p_fail) in
  let se = sqrt ((e1.std_err *. e1.std_err) +. (e2.std_err *. e2.std_err)) in
  if se > 0.0 then gap /. se
  else if gap > 0.0 then Float.infinity
  else 0.0
