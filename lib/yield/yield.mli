(** Importance-sampled timing-yield estimation.

    The linear model of the paper makes a die's path delays
    [d = mu + A x] with [x ~ N(0, I)]; the circuit fails timing when
    [max_i d_i > t_cons]. For the yields that matter post-sign-off the
    failure is a rare event, and the naive Monte Carlo estimator needs
    [~100 / p] samples before its relative error is even respectable.

    This module estimates the same probability by sampling from a
    mean-shifted Gaussian [q = N(x*, I)] instead. The shift [x*] is the
    cheapest useful design point: the dominant path — the row of [A]
    whose standardized slack [beta_i = (t_cons - mu_i) / ||a_i||] is
    smallest — pulled exactly onto its failure boundary,
    [x* = a_i (t_cons - mu_i) / ||a_i||^2]. Samples are re-weighted by
    the likelihood ratio [w(x) = phi(x) / phi(x - x_star)], which keeps the
    estimator unbiased while concentrating samples where failures live.

    Both the unbiased likelihood-ratio estimate and the self-normalized
    variant (weights renormalized by their sample sum) are reported,
    with standard errors and an effective-sample-size diagnostic
    [ESS = (sum w)^2 / sum w^2]. A degenerate shift ([x* = 0], e.g. a
    dominant path sitting exactly at its constraint) makes every weight
    exactly [1.0] and the estimator collapses bit-for-bit onto brute
    force with the same generator.

    Everything is deterministic given the [Rng.t]: draws are consumed
    in strict sample order and the block-wise dense kernels are
    bit-identical at any {!Par.Pool} size, so a server can recompute an
    estimate exactly. *)

type estimate = {
  p_fail : float;      (** unbiased likelihood-ratio estimate of P(fail) *)
  sn_p_fail : float;   (** self-normalized estimate: sum wf / sum w *)
  std_err : float;     (** standard error of [p_fail] *)
  sn_std_err : float;  (** delta-method standard error of [sn_p_fail] *)
  ess : float;         (** effective sample size of the weights *)
  samples : int;
  hits : int;          (** raw count of failing samples *)
  shift_norm : float;  (** ||x*||, the design-point distance in sigmas *)
  dominant : int;      (** dominant path index; [-1] if the pool is
                           deterministic (all-zero sensitivity rows) *)
  t_cons : float;
}

val yield_of : estimate -> float
(** [1 - p_fail] (from the unbiased estimate). *)

val dominant_path :
  a:Linalg.Mat.t -> mu:Linalg.Vec.t -> t_cons:float -> int * float
(** The path minimizing [beta_i = (t_cons - mu_i) / ||a_i||] over rows
    with nonzero sensitivity, and its [beta]. [(-1, infinity)] when
    every row is (numerically) zero. *)

val design_point :
  a:Linalg.Mat.t -> mu:Linalg.Vec.t -> t_cons:float -> float array
(** The mean shift [x*]: the dominant path moved onto its failure
    boundary. The zero vector when the pool is deterministic. *)

val importance :
  ?block:int ->
  a:Linalg.Mat.t ->
  mu:Linalg.Vec.t ->
  t_cons:float ->
  rng:Rng.t ->
  samples:int ->
  unit ->
  estimate
(** Mean-shifted importance sampling with [samples] draws, evaluated in
    blocks of [block] (default 4096) through the dense kernels. Raises
    [Invalid_argument] on dimension mismatch, non-finite [t_cons], or
    [samples < 2]. *)

val brute_force :
  ?block:int ->
  a:Linalg.Mat.t ->
  mu:Linalg.Vec.t ->
  t_cons:float ->
  rng:Rng.t ->
  samples:int ->
  unit ->
  estimate
(** Plain Monte Carlo on the same model (shift zero, every weight 1).
    With the same [rng] seed and sample count it consumes the exact
    draw sequence of {!Timing.Monte_carlo.sample}, so failure counts
    against [path_delays] agree bit-for-bit. *)

val union_bound : a:Linalg.Mat.t -> mu:Linalg.Vec.t -> t_cons:float -> float
(** Gaussian union bound [sum_i Phi(-beta_i)] on the failure
    probability, clamped to [1.0]. Cheap, conservative. *)

val calibrate_t_cons :
  a:Linalg.Mat.t -> mu:Linalg.Vec.t -> target:float -> float
(** The constraint at which {!union_bound} equals [target] (bisection;
    [target] in (0, 1)). Because the bound is conservative, the true
    failure probability at the returned constraint is [<= target] —
    the knob experiments use to build a bench of known rarity. *)

val sample_reduction : estimate -> float
(** Equal-confidence sample-count ratio versus naive Monte Carlo: the
    per-sample variance [p(1-p)] a brute-force estimator would carry at
    this estimate's [p_fail], over the importance sampler's measured
    per-sample variance. A value of 50 means MC needs 50x the samples
    for the same standard error. [nan] when the estimate carries no
    variance information (e.g. zero hits). *)

val agreement_z : estimate -> estimate -> float
(** |p1 - p2| in combined standard errors, [sqrt (se1^2 + se2^2)],
    over the unbiased likelihood-ratio estimates ([p_fail]/[std_err]
    — the self-normalized fields are a diagnostic and carry an
    [O(1/ess)] bias at aggressive shifts). [infinity] when both
    standard errors are zero and the estimates differ. *)
