type problem = {
  grad_f : Linalg.Mat.t -> Linalg.Mat.t;
  prox_g : Linalg.Mat.t -> float -> Linalg.Mat.t;
  objective : Linalg.Mat.t -> float;
  lipschitz : float;
}

type stop = { max_iter : int; rel_tol : float }

let default_stop = { max_iter = 500; rel_tol = 1e-7 }

type report = {
  solution : Linalg.Mat.t;
  iterations : int;
  objective_value : float;
  converged : bool;
}

let solve ?(stop = default_stop) p ~init =
  if p.lipschitz <= 0.0 then invalid_arg "Fista.solve: lipschitz must be positive";
  let step = 1.0 /. p.lipschitz in
  let x = ref (Linalg.Mat.copy init) in
  let y = ref (Linalg.Mat.copy init) in
  let tk = ref 1.0 in
  let fx = ref (p.objective !x) in
  let iters = ref 0 in
  let converged = ref false in
  (try
     for it = 1 to stop.max_iter do
       iters := it;
       let g = p.grad_f !y in
       (* fused y - step*g: same fp ops as sub (scale step g), one pass *)
       let candidate = p.prox_g (Linalg.Mat.sub_scaled !y step g) step in
       let f_candidate = p.objective candidate in
       (* function-value restart: if the objective went up, restart the
          momentum from the last good iterate *)
       if f_candidate > !fx +. 1e-15 then begin
         tk := 1.0;
         y := Linalg.Mat.copy !x
       end
       else begin
         let t_next = (1.0 +. sqrt (1.0 +. (4.0 *. !tk *. !tk))) /. 2.0 in
         let beta = (!tk -. 1.0) /. t_next in
         let momentum =
           (* candidate + beta*(candidate - x), two allocations not three *)
           let m = Linalg.Mat.copy candidate in
           Linalg.Mat.axpy ~alpha:beta (Linalg.Mat.sub candidate !x) m;
           m
         in
         let rel = Float.abs (!fx -. f_candidate) /. Float.max 1e-12 (Float.abs !fx) in
         x := candidate;
         fx := f_candidate;
         y := momentum;
         tk := t_next;
         if rel < stop.rel_tol then begin
           converged := true;
           raise Exit
         end
       end
     done
   with Exit -> ());
  { solution = !x; iterations = !iters; objective_value = !fx; converged = !converged }

let power_iteration_norm ?(iters = 60) m =
  let n, n2 = Linalg.Mat.dims m in
  if n <> n2 then invalid_arg "Fista.power_iteration_norm: matrix not square";
  if n = 0 then 0.0
  else begin
    let v = ref (Array.init n (fun i -> 1.0 +. (0.01 *. float_of_int (i mod 7)))) in
    let lambda = ref 0.0 in
    for _ = 1 to iters do
      let w = Linalg.Mat.apply m !v in
      let nw = Linalg.Vec.norm2 w in
      if nw > 0.0 then begin
        lambda := nw /. Float.max 1e-300 (Linalg.Vec.norm2 !v);
        v := Linalg.Vec.scale (1.0 /. nw) w
      end
    done;
    (* Rayleigh quotient for the final estimate *)
    let w = Linalg.Mat.apply m !v in
    let r = Linalg.Vec.dot !v w /. Float.max 1e-300 (Linalg.Vec.dot !v !v) in
    Float.max r !lambda
  end
