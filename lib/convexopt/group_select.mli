(** Simultaneous variable (segment) selection — the paper's Eqn (10).

    Given the representative-path incidence [g1] ([r1 x n_S]) and the
    segment sensitivity matrix [sigma] ([n_S x m]), find a coefficient
    matrix [b] with few non-zero {e columns} (each non-zero column =
    one selected segment) such that every row of the prediction error
    [(g1 - b) * sigma] has worst-case magnitude (kappa times its
    Gaussian standard deviation) within its row bound.

    The convex l1/l-inf relaxation is solved in penalized form with
    FISTA; the penalty weight is swept/bisected to the sparsest
    feasible support, and the final [b] is refit by least squares on
    that support (which also realizes Step 3 of the paper's
    Algorithm 3). *)

type options = {
  lambda_steps : int;   (** geometric sweep resolution, default 24 *)
  bisect_steps : int;   (** refinement bisections, default 10 *)
  support_tol : float;  (** relative column-norm threshold, default 1e-6 *)
  fista_stop : Fista.stop;
}

val default_options : options

type result = {
  b : Linalg.Mat.t;            (** refit coefficients, [r1 x n_S],
                                   zero outside [support] columns *)
  support : int array;         (** selected segment indices, increasing *)
  row_errors : float array;    (** kappa * stddev of each row's error *)
  feasible : bool;             (** all row errors within bounds *)
  lambda : float;              (** penalty weight that produced [support] *)
}

val select :
  ?options:options ->
  sigma:Linalg.Mat.t ->
  g1:Linalg.Mat.t ->
  bounds:float array ->
  kappa:float ->
  unit ->
  result
(** Raises [Invalid_argument] on dimension mismatches, non-positive
    [kappa], or a non-positive bound. If even the dense solution is
    infeasible the densest support found is returned with
    [feasible = false]. *)

val refit :
  sigma:Linalg.Mat.t -> g1:Linalg.Mat.t -> support:int array -> Linalg.Mat.t
(** Least-squares refit of [b] on a fixed support: per row [i],
    minimize [|| (g1_i - b_i) sigma ||_2] over [b_i] supported on
    [support]. *)

val row_errors :
  sigma:Linalg.Mat.t -> g1:Linalg.Mat.t -> b:Linalg.Mat.t -> kappa:float ->
  float array
(** [kappa * || (g1_i - b_i) sigma ||_2] per row. *)
