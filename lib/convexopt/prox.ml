let project_l1_ball v r =
  if r < 0.0 then invalid_arg "Prox.project_l1_ball: negative radius";
  let n = Array.length v in
  let l1 = Array.fold_left (fun acc x -> acc +. Float.abs x) 0.0 v in
  if l1 <= r then Array.copy v
  else begin
    (* find the shrinkage threshold theta from the sorted magnitudes *)
    let u = Array.map Float.abs v in
    Array.sort (fun a b -> compare b a) u;
    let cum = ref 0.0 in
    let theta = ref 0.0 in
    (try
       for k = 0 to n - 1 do
         cum := !cum +. u.(k);
         let t = (!cum -. r) /. float_of_int (k + 1) in
         if k = n - 1 || u.(k + 1) <= t then begin
           theta := t;
           raise Exit
         end
       done
     with Exit -> ());
    Array.map
      (fun x ->
        let m = Float.abs x -. !theta in
        if m <= 0.0 then 0.0 else if x > 0.0 then m else -.m)
      v
  end

let prox_linf v tau =
  if tau < 0.0 then invalid_arg "Prox.prox_linf: negative tau";
  if Float.equal tau 0.0 then Array.copy v
  else begin
    let scaled = Array.map (fun x -> x /. tau) v in
    let proj = project_l1_ball scaled 1.0 in
    Array.mapi (fun i x -> x -. (tau *. proj.(i))) v
  end

let soft_threshold x tau =
  let m = Float.abs x -. tau in
  if m <= 0.0 then 0.0 else if x > 0.0 then m else -.m
