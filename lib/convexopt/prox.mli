(** Proximal operators and projections used by the solver. *)

val project_l1_ball : float array -> float -> float array
(** [project_l1_ball v r] is the Euclidean projection of [v] onto the
    l1 ball of radius [r] (Duchi et al.'s O(n log n) algorithm).
    Raises [Invalid_argument] if [r < 0]. *)

val prox_linf : float array -> float -> float array
(** [prox_linf v tau] is [argmin_u (tau * ||u||_inf + 1/2 ||u - v||^2)],
    computed by Moreau decomposition:
    [v - tau * project_l1_ball (v / tau) 1]. [tau >= 0]. *)

val soft_threshold : float -> float -> float
(** Scalar shrinkage [sign x * max 0 (|x| - tau)]. *)
