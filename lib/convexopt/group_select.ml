type options = {
  lambda_steps : int;
  bisect_steps : int;
  support_tol : float;
  fista_stop : Fista.stop;
}

let default_options =
  {
    lambda_steps = 16;
    bisect_steps = 6;
    support_tol = 1e-5;
    fista_stop = { Fista.max_iter = 200; rel_tol = 1e-6 };
  }

type result = {
  b : Linalg.Mat.t;
  support : int array;
  row_errors : float array;
  feasible : bool;
  lambda : float;
}

let row_errors ~sigma ~g1 ~b ~kappa =
  let e = Linalg.Mat.mul (Linalg.Mat.sub g1 b) sigma in
  Array.map (fun s -> kappa *. s) (Linalg.Mat.row_norms2 e)

let support_of ~tol b =
  let _, n_s = Linalg.Mat.dims b in
  let col_max = Array.make n_s 0.0 in
  let r1, _ = Linalg.Mat.dims b in
  for j = 0 to n_s - 1 do
    for i = 0 to r1 - 1 do
      col_max.(j) <- Float.max col_max.(j) (Float.abs (Linalg.Mat.get b i j))
    done
  done;
  let global = Array.fold_left Float.max 0.0 col_max in
  let thr = tol *. Float.max 1e-300 global in
  let sel = ref [] in
  for j = n_s - 1 downto 0 do
    if col_max.(j) > thr then sel := j :: !sel
  done;
  Array.of_list !sel

let refit ~sigma ~g1 ~support =
  let r1, n_s = Linalg.Mat.dims g1 in
  let b = Linalg.Mat.create r1 n_s in
  if Array.length support > 0 then begin
    (* per row i: min_b || sigma^T g1_i - sigma_S^T b ||_2 *)
    let sigma_t = Linalg.Mat.transpose sigma in          (* m x n_S *)
    let sigma_s_t = Linalg.Mat.select_cols sigma_t support in  (* m x |S| *)
    let rhs = Linalg.Mat.mul_nt sigma_t g1 in            (* m x r1 *)
    let coeffs = Linalg.Lstsq.solve_mat sigma_s_t rhs in (* |S| x r1 *)
    Array.iteri
      (fun k j ->
        for i = 0 to r1 - 1 do
          Linalg.Mat.set b i j (Linalg.Mat.get coeffs k i)
        done)
      support
  end;
  b

let select ?(options = default_options) ~sigma ~g1 ~bounds ~kappa () =
  let r1, n_s = Linalg.Mat.dims g1 in
  let n_s', _ = Linalg.Mat.dims sigma in
  if n_s <> n_s' then invalid_arg "Group_select.select: g1/sigma dimension mismatch";
  if Array.length bounds <> r1 then
    invalid_arg "Group_select.select: bounds length mismatch";
  if kappa <= 0.0 then invalid_arg "Group_select.select: kappa must be positive";
  Array.iter
    (fun bound -> if bound <= 0.0 then
        invalid_arg "Group_select.select: bounds must be positive")
    bounds;
  let q = Linalg.Mat.gram sigma in  (* n_S x n_S; grad f(B) = (B - G1) Q *)
  let lips = Float.max 1e-12 (Fista.power_iteration_norm q) in
  let g1q = Linalg.Mat.mul g1 q in
  let grad_f b =
    (* the product is fresh; subtract the constant term in place *)
    let p = Linalg.Mat.mul b q in
    Linalg.Mat.sub_into ~into:p p g1q;
    p
  in
  let smooth b =
    let d = Linalg.Mat.sub g1 b in
    let e = Linalg.Mat.mul d sigma in
    0.5 *. (Linalg.Mat.frobenius e ** 2.0)
  in
  let col_linf_sum b =
    let s = ref 0.0 in
    for j = 0 to n_s - 1 do
      let m = ref 0.0 in
      for i = 0 to r1 - 1 do
        m := Float.max !m (Float.abs (Linalg.Mat.get b i j))
      done;
      s := !s +. !m
    done;
    !s
  in
  let prox lambda b step =
    let tau = lambda *. step in
    let out = Linalg.Mat.copy b in
    for j = 0 to n_s - 1 do
      let col = Linalg.Mat.col out j in
      let p = Prox.prox_linf col tau in
      for i = 0 to r1 - 1 do
        Linalg.Mat.set out i j p.(i)
      done
    done;
    out
  in
  let solve_at lambda init =
    Fista.solve ~stop:options.fista_stop
      {
        Fista.grad_f;
        prox_g = prox lambda;
        objective = (fun b -> smooth b +. (lambda *. col_linf_sum b));
        lipschitz = lips;
      }
      ~init
  in
  (* Evaluate a lambda: solve, take the support, refit, check bounds. *)
  let evaluate lambda init =
    let rep = solve_at lambda init in
    let support = support_of ~tol:options.support_tol rep.Fista.solution in
    let b = refit ~sigma ~g1 ~support in
    let errors = row_errors ~sigma ~g1 ~b ~kappa in
    let feasible =
      Array.for_all (fun x -> x) (Array.mapi (fun i e -> e <= bounds.(i)) errors)
    in
    (rep.Fista.solution, support, b, errors, feasible)
  in
  (* lambda_max: the value at which B = 0 is already optimal-ish; use the
     largest column norm of the gradient at zero. *)
  let lambda_max =
    let g0 = grad_f (Linalg.Mat.create r1 n_s) in
    let m = ref 1e-12 in
    for j = 0 to n_s - 1 do
      m := Float.max !m (Linalg.Vec.norm1 (Linalg.Mat.col g0 j))
    done;
    !m
  in
  let lambda_min = lambda_max *. 1e-7 in
  let ratio =
    (lambda_min /. lambda_max) ** (1.0 /. float_of_int (max 1 (options.lambda_steps - 1)))
  in
  (* Sweep from sparse (large lambda) to dense; keep the sparsest feasible. *)
  let best = ref None in
  let last_infeasible = ref None in
  let init = ref (Linalg.Mat.create r1 n_s) in
  (try
     let lambda = ref lambda_max in
     for _ = 1 to options.lambda_steps do
       let raw, support, b, errors, feasible = evaluate !lambda !init in
       init := raw;
       if feasible then begin
         best := Some (!lambda, support, b, errors);
         raise Exit
       end
       else last_infeasible := Some (!lambda, support, b, errors);
       lambda := !lambda *. ratio
     done
   with Exit -> ());
  (* Refine between the feasible lambda and the last infeasible one to
     shrink the support further. *)
  (match !best, !last_infeasible with
   | Some (lo, _, _, _), Some (hi, _, _, _) when hi > lo ->
     let lo = ref lo and hi = ref hi in
     for _ = 1 to options.bisect_steps do
       let mid = sqrt (!lo *. !hi) in
       let raw, support, b, errors, feasible = evaluate mid !init in
       init := raw;
       if feasible then begin
         (match !best with
          | Some (_, s0, _, _) when Array.length support <= Array.length s0 ->
            best := Some (mid, support, b, errors)
          | Some _ | None -> ());
         lo := mid
       end
       else hi := mid
     done
   | Some _, Some _ | Some _, None | None, Some _ | None, None -> ());
  match !best with
  | Some (lambda, support, b, errors) ->
    { b; support; row_errors = errors; feasible = true; lambda }
  | None ->
    (* nothing feasible: return the densest attempt (smallest lambda tried) *)
    let support = Array.init n_s (fun j -> j) in
    let b = refit ~sigma ~g1 ~support in
    let errors = row_errors ~sigma ~g1 ~b ~kappa in
    let feasible =
      Array.for_all (fun x -> x) (Array.mapi (fun i e -> e <= bounds.(i)) errors)
    in
    { b; support; row_errors = errors; feasible; lambda = 0.0 }

