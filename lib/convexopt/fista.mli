(** FISTA: accelerated proximal gradient for composite objectives
    [F(B) = f(B) + g(B)] with [f] smooth (L-Lipschitz gradient) and [g]
    prox-friendly, over matrix variables. *)

type problem = {
  grad_f : Linalg.Mat.t -> Linalg.Mat.t;
  (** gradient of the smooth part at the iterate *)
  prox_g : Linalg.Mat.t -> float -> Linalg.Mat.t;
  (** [prox_g v step] is [argmin_u (step * g(u) + 1/2 ||u - v||_F^2)] *)
  objective : Linalg.Mat.t -> float;
  (** full objective, for monitoring and the restart test *)
  lipschitz : float;  (** L; the step is 1/L *)
}

type stop = { max_iter : int; rel_tol : float }

val default_stop : stop
(** 500 iterations, 1e-7 relative objective change. *)

type report = {
  solution : Linalg.Mat.t;
  iterations : int;
  objective_value : float;
  converged : bool;
}

val solve : ?stop:stop -> problem -> init:Linalg.Mat.t -> report
(** FISTA with function-value restart (O'Donoghue–Candès). Raises
    [Invalid_argument] when [lipschitz <= 0]. *)

val power_iteration_norm : ?iters:int -> Linalg.Mat.t -> float
(** Largest eigenvalue estimate of a symmetric PSD matrix, for
    computing Lipschitz constants of quadratics. *)
