(** E15 — Domain-pool scaling: kernel and end-to-end pipeline wall-clock
    at 1/2/4/N domains, with bit-or-exact equivalence columns.

    Two claims are measured:

    - {b throughput}: the row-band parallel kernels ([Mat.mul],
      [mul_nt], [mul_tn], [gram]), Monte Carlo sampling, and the whole
      selection pipeline speed up with the pool size (on multicore
      hardware; on a single-core host the scaling rows are reported but
      the speedup gate is skipped);
    - {b determinism}: every output is bit-identical at every domain
      count — parallelism never changes an answer.

    [run ~smoke:true] is the [make perf-smoke] CI gate: a scaled-down
    sweep that fails (returns [ok = false]) when equivalence breaks, or
    when the 4-domain matmul speedup falls below 2x on a machine that
    actually has >= 2 cores. *)

type kernel_row = {
  kname : string;
  dims : string;
  times_ms : (int * float) list;  (** domain count -> best-of-reps ms *)
  identical : bool;               (** bit-identical to the 1-domain run *)
}

type result = {
  cores : int;                    (** [Par.Pool.available_cores ()] *)
  counts : int list;              (** domain counts measured *)
  kernels : kernel_row list;
  mc_yield_identical : bool;
  mc_delays_identical : bool;
  pipeline_times_s : (int * float) list;
  pipeline_identical : bool;
  matmul_speedup : float;         (** t(1 domain) / t(4 domains) *)
  pipeline_speedup : float;       (** same ratio, end-to-end pipeline *)
  equivalence_ok : bool;
  speedup_gate_active : bool;     (** false on single-core hosts *)
  ok : bool;                      (** the perf-smoke verdict *)
}

val run :
  ?oc:out_channel -> ?out:string -> ?smoke:bool -> Profile.t -> result
(** Runs the sweep, prints the table to [oc] (default [stdout]), and
    writes the JSON summary to [out] when given. Restores the pool size
    that was configured before the call. *)
