(** E2 — the paper's Table 2: hybrid path/segment selection.

    The timing constraint is tightened (scaled by {!t_cons_scale}) to
    enlarge the target pool, exactly mirroring the paper's intent of
    "extracting more critical paths" for Table 2 (the paper adjusts the
    constraint with the same relative yield threshold; on our synthetic
    circuits the pool grows when T shrinks, so the scale is < 1 —
    see EXPERIMENTS.md). eps = 8%; eps' is scanned as in Section 6.2.

    Columns: |G|, |R|, covered gates |G_C| and regions |R_C|, |P_tar|,
    approximate-path |P_r| with its errors, then hybrid |P_r|, |S_r|,
    |P_r| + |S_r| and its errors. *)

type row = {
  bench : string;
  gates : int;
  regions : int;
  covered_gates : int;
  covered_regions : int;
  n_target : int;
  approx_paths : int;
  approx_e1_pct : float;
  approx_e2_pct : float;
  hybrid_paths : int;
  hybrid_segments : int;
  hybrid_total : int;
  hybrid_e1_pct : float;
  hybrid_e2_pct : float;
  seconds : float;
}

val eps : float
(** 0.08, per the paper. *)

val t_cons_scale : float

val run_bench : Profile.t -> Circuit.Benchmarks.preset -> row

val run : ?oc:out_channel -> Profile.t -> row list
