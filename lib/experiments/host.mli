(** Host provenance for benchmark reports.

    Every BENCH_*.json is a performance claim made on some machine;
    readers comparing numbers across runs need to know how many cores
    the run actually had. A single-core host in particular makes every
    parallel-speedup figure a serial upper bound, so the caveat is
    recorded as a first-class boolean rather than buried in prose. *)

val cores : unit -> int
(** Cores the parallel pool would use ({!Par.Pool.available_cores}). *)

val fields : unit -> (string * Core.Report.json) list
(** [("cores_available", Int n); ("single_core_caveat", Bool (n = 1))]
    — splice into every experiment's top-level JSON object. *)
