(** Execution profiles for the experiment harness.

    [quick] shrinks the large circuits and caps pool sizes so the whole
    suite regenerates in CI time with the pure-OCaml numerics; [full]
    runs paper-scale (gate counts of the real ISCAS'89 circuits, pools
    up to several thousand paths, 10,000 MC dies). The qualitative
    results — reduction ratios, errors below tolerance, fewer than 100
    hybrid measurements — are profile-stable; see EXPERIMENTS.md. *)

type t = {
  name : string;
  scale_of : Circuit.Benchmarks.preset -> float;
  max_paths : int;
  mc_samples : int;
  yield_samples : int;
  benches : Circuit.Benchmarks.preset list;
}

val quick : t

val full : t

val of_string : string -> t option
