(** E3 — the paper's Figure 2: normalized singular values of A for
    S1423, (a) baseline and (b) with the random-variation sensitivities
    tripled. The faster the spectrum decays, the fewer representative
    paths are needed; boosting the independent random component flattens
    the decay. *)

type series = {
  label : string;
  values : float array;      (** normalized singular values, first [k] *)
  effective_rank : int;      (** at eta = 5% *)
  rank : int;
}

val compute : ?k:int -> Profile.t -> series list
(** Returns the two series (baseline, 3x random). [k] defaults to 30
    as in the paper's plot. *)

val run : ?oc:out_channel -> Profile.t -> series list
(** Computes and renders an ASCII log-scale plot plus the raw values. *)
