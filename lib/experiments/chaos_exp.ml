type lane = {
  mutable sent : int;
  mutable ok : int;
  mutable gave_up : int;     (* retries exhausted; allowed, counted *)
  mutable wrong : int;       (* ok:true with non-identical bits: must stay 0 *)
  mutable lat_ms : float list;
}

type result = {
  bench : string;
  faults : string;
  requests_faulted : int;
  ok_faulted : int;
  gave_up : int;
  wrong_answers : int;
  clean_requests : int;
  clean_failures : int;
  p99_clean_ms : float;
  p99_soak_ms : float;
  throughput_dies_per_s : float;
  reloads : int;
  reload_fingerprint_ok : bool;
  final_batch_ok : bool;
  server_exit_ok : bool;
  shed : int;
  timeouts : int;
  proxy_connections : int;
  proxy_corrupted : int;
  proxy_stalled : int;
  ok : bool;
}

let eps = 0.05

(* the fault mix the soak runs under: every injector fires *)
let soak_spec =
  {
    Chaos.delay_ms = 1.0;
    jitter_ms = 2.0;
    partial_write = 0.3;
    truncate = 0.05;
    corrupt = 0.08;
    disconnect = 0.05;
    stall = 0.08;
    eintr_burst = 2;
  }

let time f =
  let t0 = Unix.gettimeofday () in
  let v = f () in
  (v, Unix.gettimeofday () -. t0)

let rows_of m i0 k =
  let _, c = Linalg.Mat.dims m in
  Linalg.Mat.init k c (fun i j -> Linalg.Mat.get m (i0 + i) j)

let bits_equal m1 m2 =
  Linalg.Mat.dims m1 = Linalg.Mat.dims m2
  &&
  let r, c = Linalg.Mat.dims m1 in
  try
    for i = 0 to r - 1 do
      for j = 0 to c - 1 do
        if
          Int64.bits_of_float (Linalg.Mat.get m1 i j)
          <> Int64.bits_of_float (Linalg.Mat.get m2 i j)
        then raise Exit
      done
    done;
    true
  with Exit -> false

let p99 = function
  | [] -> 0.0
  | xs -> Stats.Descriptive.quantile (Array.of_list xs) 0.99

let int_stat resp key =
  match Serve.Wire.member key resp with Some (Serve.Wire.Int n) -> n | _ -> 0

let json_of_result r =
  let open Core.Report in
  Obj
    ([ ("experiment", String "E16") ]
    @ Host.fields ()
    @ [
      ("bench", String r.bench);
      ("faults", String r.faults);
      ("requests_faulted", Int r.requests_faulted);
      ("ok_faulted", Int r.ok_faulted);
      ("gave_up", Int r.gave_up);
      ("wrong_answers", Int r.wrong_answers);
      ("clean_requests", Int r.clean_requests);
      ("clean_failures", Int r.clean_failures);
      ("p99_clean_ms", Float r.p99_clean_ms);
      ("p99_soak_ms", Float r.p99_soak_ms);
      ("throughput_dies_per_s", Float r.throughput_dies_per_s);
      ("reloads", Int r.reloads);
      ("reload_fingerprint_ok", Bool r.reload_fingerprint_ok);
      ("final_batch_ok", Bool r.final_batch_ok);
      ("server_exit_ok", Bool r.server_exit_ok);
      ("shed", Int r.shed);
      ("timeouts", Int r.timeouts);
      ("proxy_connections", Int r.proxy_connections);
      ("proxy_corrupted", Int r.proxy_corrupted);
      ("proxy_stalled", Int r.proxy_stalled);
      ("ok", Bool r.ok);
    ])

let run ?(oc = stdout) ?out profile =
  let quick = profile.Profile.name <> "full" in
  let n_dies = if quick then 64 else 256 in
  let lane_iters = if quick then 10 else 60 in
  let clean_iters = if quick then 40 else 200 in
  let fault_lanes = 3 in
  let batch = 8 in
  let bench_name = "s1423" in
  Printf.fprintf oc
    "E16: chaos soak (%s; %d fault lanes x %d requests through a faulty proxy, \
     %d clean requests, SIGHUP reload mid-soak)\n"
    bench_name fault_lanes lane_iters clean_iters;
  let preset =
    match Circuit.Benchmarks.find bench_name with
    | Some p -> p
    | None ->
      Core.Errors.raise_error (Core.Errors.Invalid_input "Chaos_exp: s1423 preset missing")
  in
  let _, setup =
    Table1.setup_for profile preset ~t_cons_scale:1.0
      ~max_paths:profile.Profile.max_paths
  in
  let sel = Core.Pipeline.approximate_selection setup ~eps in
  let pool = setup.Core.Pipeline.pool in
  let t_cons = setup.Core.Pipeline.t_cons in
  let a = Timing.Paths.a_mat pool in
  let mu = Timing.Paths.mu_paths pool in
  let make_artifact fingerprint =
    Store.of_selection ~fingerprint
      ~n_segments:(Timing.Paths.num_segments pool)
      ~t_cons ~eps ~a ~mu sel
  in
  let artifact = make_artifact "bench:e16 s1423" in
  let p = sel.Core.Select.predictor in
  let rep = Core.Predictor.rep_indices p in
  let mc = Timing.Monte_carlo.sample (Rng.create 16) pool ~n:n_dies in
  let clean = Linalg.Mat.select_cols (Timing.Monte_carlo.path_delays mc) rep in
  (* the artifact file the server SIGHUP-reloads from *)
  let store_path = Filename.temp_file "pathsel-e16" ".psa" in
  (match Store.save store_path artifact with
   | Ok () -> ()
   | Error e -> Core.Errors.raise_error e);
  let sock = Filename.temp_file "pathsel-e16" ".sock" in
  Sys.remove sock;
  let server_addr = Serve.Unix_sock sock in
  let config =
    { Serve.default_config with
      Serve.workers = 3; queue = 16; deadline = 2.0; idle_timeout = 30.0 }
  in
  flush oc;
  flush stdout;
  (* the server child must fork before any proxy/lane threads exist *)
  let pid = Unix.fork () in
  if pid = 0 then begin
    (match Serve.run ~config ~reload_from:store_path artifact server_addr with
     | () -> Unix._exit 0
     | exception (Core.Errors.Error _ | Unix.Unix_error _ | Sys_error _) ->
       Unix._exit 1)
  end;
  let proxy =
    Chaos.start ~seed:1616 ~eintr_pid:pid soak_spec
      ~listen:(Serve.Unix_sock (sock ^ ".chaos"))
      ~upstream:server_addr
  in
  let proxy_addr = Chaos.bound_addr proxy in
  let expected i0 k = Core.Predictor.predict_all p ~measured:(rows_of clean i0 k) in
  let finish () =
    (* ---- baseline: clean latency + throughput, no faults in the path *)
    let conn = Serve.Client.connect server_addr in
    let base = { sent = 0; ok = 0; gave_up = 0; wrong = 0; lat_ms = [] } in
    let reps = if quick then 20 else 60 in
    let want = expected 0 batch in
    let sub = rows_of clean 0 batch in
    let (), dt =
      time (fun () ->
          for _ = 1 to reps do
            base.sent <- base.sent + 1;
            let r, lat = time (fun () -> Serve.Client.predict conn sub) in
            (match r with
             | Ok (m, _) ->
               base.ok <- base.ok + 1;
               if not (bits_equal m want) then base.wrong <- base.wrong + 1
             | Error _ -> base.gave_up <- base.gave_up + 1);
            base.lat_ms <- (lat *. 1000.0) :: base.lat_ms
          done)
    in
    let throughput = float_of_int (batch * reps) /. dt in
    let p99_clean_ms = p99 base.lat_ms in
    Printf.fprintf oc
      "baseline: %d direct requests, %.0f dies/s, p99 %.2f ms\n%!" reps
      throughput p99_clean_ms;
    (* ---- soak: fault lanes hammer through the proxy with retries,
       a clean lane keeps talking straight to the server *)
    let retry =
      { Serve.Client.attempts = 6; base_delay = 0.02; max_delay = 0.5;
        connect_timeout = 5.0; deadline = 5.0 }
    in
    let fault_lane idx =
      let lane = { sent = 0; ok = 0; gave_up = 0; wrong = 0; lat_ms = [] } in
      let rng = Rng.create (4242 + idx) in
      let i0 = idx * batch in
      let want = expected i0 batch in
      let sub = rows_of clean i0 batch in
      let body () =
        for _ = 1 to lane_iters do
          lane.sent <- lane.sent + 1;
          match Serve.Client.predict_with_retry ~retry ~rng proxy_addr sub with
          | Ok (m, _) ->
            lane.ok <- lane.ok + 1;
            if not (bits_equal m want) then lane.wrong <- lane.wrong + 1
          | Error _ -> lane.gave_up <- lane.gave_up + 1
        done
      in
      (lane, Thread.create body ())
    in
    let clean_done = Atomic.make 0 in
    let clean_lane () =
      let lane = { sent = 0; ok = 0; gave_up = 0; wrong = 0; lat_ms = [] } in
      let i0 = fault_lanes * batch in
      let want = expected i0 batch in
      let sub = rows_of clean i0 batch in
      let body () =
        let c = Serve.Client.connect server_addr in
        for _ = 1 to clean_iters do
          lane.sent <- lane.sent + 1;
          let r, lat = time (fun () -> Serve.Client.predict ~deadline:5.0 c sub) in
          (match r with
           | Ok (m, _) ->
             lane.ok <- lane.ok + 1;
             if not (bits_equal m want) then lane.wrong <- lane.wrong + 1
           | Error _ -> lane.gave_up <- lane.gave_up + 1);
          lane.lat_ms <- (lat *. 1000.0) :: lane.lat_ms;
          Atomic.incr clean_done;
          Thread.delay 0.02
        done;
        Serve.Client.close c
      in
      (lane, Thread.create body ())
    in
    let lanes = List.init fault_lanes fault_lane in
    let cl, cl_thread = clean_lane () in
    (* ---- mid-soak hot reload: rewrite the artifact (same selection,
       new fingerprint) and SIGHUP the server while requests fly *)
    let deadline = Unix.gettimeofday () +. 120.0 in
    while Atomic.get clean_done < clean_iters / 2
          && Unix.gettimeofday () < deadline do
      Thread.delay 0.05
    done;
    (match Store.save store_path (make_artifact "bench:e16 s1423 v2") with
     | Ok () -> ()
     | Error e -> Core.Errors.raise_error e);
    Unix.kill pid Sys.sighup;
    Thread.delay 1.0;
    let reloads, reload_fingerprint_ok =
      match Serve.Client.stats conn with
      | Ok resp ->
        let fp =
          match Serve.Wire.member "artifact" resp with
          | Some a ->
            (match Serve.Wire.member "fingerprint" a with
             | Some (Serve.Wire.String s) -> s
             | _ -> "")
          | None -> ""
        in
        (int_stat resp "reloads", fp = "bench:e16 s1423 v2")
      | Error _ -> (0, false)
    in
    Printf.fprintf oc "mid-soak SIGHUP: %d reload(s), fingerprint swapped: %b\n%!"
      reloads reload_fingerprint_ok;
    List.iter (fun (_, th) -> Thread.join th) lanes;
    Thread.join cl_thread;
    (* ---- a clean batch must still complete through the faulty proxy *)
    let final_retry = { retry with Serve.Client.attempts = 12 } in
    let final_batch_ok =
      match
        Serve.Client.predict_with_retry ~retry:final_retry
          ~rng:(Rng.create 99) proxy_addr sub
      with
      | Ok (m, _) -> bits_equal m want
      | Error _ -> false
    in
    (* ---- drain: final counters, shutdown, reap the child *)
    let shed, timeouts =
      match Serve.Client.stats conn with
      | Ok resp -> (int_stat resp "shed", int_stat resp "timeouts")
      | Error _ -> (0, 0)
    in
    Serve.Client.shutdown conn;
    Serve.Client.close conn;
    (lanes, cl, p99_clean_ms, throughput, reloads, reload_fingerprint_ok,
     final_batch_ok, shed, timeouts)
  in
  let ( lanes, cl, p99_clean_ms, throughput, reloads, reload_fingerprint_ok,
        final_batch_ok, shed, timeouts ) =
    Fun.protect ~finally:(fun () -> Chaos.stop proxy) finish
  in
  let _, status = Unix.waitpid [] pid in
  let server_exit_ok = status = Unix.WEXITED 0 in
  (try Sys.remove store_path with Sys_error _ -> ());
  let sum f = List.fold_left (fun acc (l, _) -> acc + f l) 0 lanes in
  let requests_faulted = sum (fun l -> l.sent) in
  let ok_faulted = sum (fun l -> l.ok) in
  let gave_up = sum (fun l -> l.gave_up) in
  let wrong_answers = sum (fun l -> l.wrong) + cl.wrong in
  let p99_soak_ms = p99 cl.lat_ms in
  let pst = Chaos.stats proxy in
  let ok =
    wrong_answers = 0 && cl.gave_up = 0 && server_exit_ok && reloads >= 1
    && reload_fingerprint_ok && final_batch_ok
    && p99_soak_ms < 2000.0
  in
  Printf.fprintf oc
    "soak: %d faulted requests -> %d ok, %d gave up, %d WRONG; clean lane \
     %d/%d ok, p99 %.2f ms (baseline %.2f ms)\n"
    requests_faulted ok_faulted gave_up wrong_answers cl.ok cl.sent p99_soak_ms
    p99_clean_ms;
  Printf.fprintf oc
    "proxy: %d connections, %d corrupted, %d stalled, %d truncated, %d dropped, \
     %d EINTR signals\n"
    pst.Chaos.connections pst.Chaos.corrupted pst.Chaos.stalled
    pst.Chaos.truncated pst.Chaos.disconnected pst.Chaos.eintr_signals;
  Printf.fprintf oc
    "server: shed %d, timeouts %d, exit clean: %b; final batch through \
     faults: %b\n"
    shed timeouts server_exit_ok final_batch_ok;
  Printf.fprintf oc "E16 %s\n" (if ok then "ok" else "FAILED");
  flush oc;
  let result =
    {
      bench = bench_name;
      faults = Chaos.to_string soak_spec;
      requests_faulted;
      ok_faulted;
      gave_up;
      wrong_answers;
      clean_requests = cl.sent;
      clean_failures = cl.gave_up;
      p99_clean_ms;
      p99_soak_ms;
      throughput_dies_per_s = throughput;
      reloads;
      reload_fingerprint_ok;
      final_batch_ok;
      server_exit_ok;
      shed;
      timeouts;
      proxy_connections = pst.Chaos.connections;
      proxy_corrupted = pst.Chaos.corrupted;
      proxy_stalled = pst.Chaos.stalled;
      ok;
    }
  in
  (match out with
   | Some path ->
     Core.Report.write_file path (json_of_result result);
     Printf.fprintf oc "wrote %s\n" path
   | None -> ());
  result
