(** E5/E6 — ablations on design choices called out in DESIGN.md.

    E5: Algorithm 1's search schedule. The paper decrements r linearly;
    we default to bisection. Both must land on (nearly) the same |P_r|;
    bisection does logarithmically many predictor builds.

    E6: the effective-rank energy threshold eta. Sweeping eta shows how
    the a-priori dimension estimate tracks the a-posteriori selected
    |P_r| at eps = 5%. *)

type schedule_row = {
  bench : string;
  linear_r : int;
  linear_evals : int;
  linear_seconds : float;
  bisect_r : int;
  bisect_evals : int;
  bisect_seconds : float;
}

type eta_row = {
  eta_pct : float;
  effective_rank : int;
}

val run_schedule : ?oc:out_channel -> Profile.t -> schedule_row list
(** E5, on the three smallest benchmarks. *)

val run_eta : ?oc:out_channel -> Profile.t -> eta_row list
(** E6, on s1423: eta in {1, 2, 5, 10}%. *)

type cluster_row = {
  k : int;
  selected : int;
  cluster_eps_r_pct : float;
  cluster_seconds : float;
}

val run_cluster : ?oc:out_channel -> Profile.t -> cluster_row list
(** E7: Section-4.4 clustering speedup on s38417 — per-cluster
    Algorithm 1 vs the direct global selection, over k. *)

type nested_row = {
  nested_bench : string;
  repivot_r : int;
  repivot_seconds : float;
  nested_r : int;
  nested_seconds : float;
}

val run_nested : ?oc:out_channel -> Profile.t -> nested_row list
(** E10: Algorithm 2 re-run per candidate r (the paper's letter) vs one
    nested pivot order shared by all r (the paper's "incremental"
    remark). *)

val run : ?oc:out_channel -> Profile.t -> unit
