(** E19 — sketched selection: quality against the exact engine, and
    wall-clock scaling on streamed sparse pools up to a million paths.

    Two sections:

    - {b quality}: on circuit pools small enough for the dense exact
      engine, both engines select at the same matched size [r] (the
      size Algorithm 1 picked under the exact engine at the 5%
      tolerance). Columns compare the analytic worst-case error of
      Eqn (7), the Monte-Carlo RMS error (e2), and the selected-set
      overlap.
    - {b scaling}: synthetic sparse pools built with
      {!Timing.Pool_stream.synthetic} at 10k / 100k / 1M paths; the
      sketch consumes the pool only through the CSR mat-mul operator.
      Timings split stream-build / adaptive sketch / pivoted QR so the
      report shows where the time goes.

    [ok] gates on the worst-case error ratio staying within 1.25x of
    exact across the quality pools AND the pools at or below 50k paths
    finishing inside the wall budget. [smoke] shrinks the run to one
    quality pool and one 50k-path scaling pool — the [make sketch-smoke]
    CI gate. The JSON report carries the {!Host} core-count caveat,
    since single-core CI hosts make absolute wall-clock figures
    unrepresentative. *)

type quality_row = {
  qname : string;
  q_paths : int;
  q_vars : int;
  rank_exact : int;           (** rank(A) from the exact SVD *)
  q_sketch_rank : int;        (** adaptive sketch rank used *)
  r_matched : int;            (** selection size both engines use *)
  eps_exact : float;          (** Eqn-(7) worst-case error, exact basis *)
  eps_sketch : float;         (** same, sketched basis *)
  worst_ratio : float;        (** eps_sketch / eps_exact *)
  rms_exact : float;          (** MC e2, exact basis *)
  rms_sketch : float;
  rms_ratio : float;
  overlap : float;            (** fraction of exact picks also picked *)
  t_exact_s : float;
  t_sketch_s : float;
}

type scale_row = {
  s_paths : int;
  s_segments : int;
  s_vars : int;
  s_nnz : int;                (** nonzeros across G and Sigma *)
  build_s : float;            (** streamed CSR construction *)
  sketch_s : float;           (** adaptive randomized range finder *)
  qr_s : float;               (** pivoted QR subset selection *)
  total_s : float;
  s_sketch_rank : int;
  s_tail : float;             (** achieved tail-energy fraction *)
  s_selected : int;
}

type result = {
  quality : quality_row list;
  scaling : scale_row list;
  worst_ratio_max : float;
  budget_s : float;
  within_budget : bool;
  ok : bool;
}

val ratio_gate : float
(** 1.25 — the sketched worst-case error may exceed exact by at most
    this factor (the CI acceptance bound). *)

val run : ?oc:out_channel -> ?out:string -> ?smoke:bool -> Profile.t -> result
(** Runs the experiment, prints a table to [oc] (default stdout), and
    writes a JSON report to [out] when given (BENCH_e19.json from the
    bench harness). *)
