type result = {
  bench : string;
  n_paths : int;
  shift : string;
  pre_drift_dies : int;
  baseline_err_ps : float;
  detection_dies : int;
  detection_bound : int;
  recovered : bool;
  recovery_err_ps : float;
  recovery_ratio : float;
  reselects : int;
  reselect_failures : int;
  reselect_ms : float;
  generation : int;
  wrong_answers : int;
  request_failures : int;
  server_exit_ok : bool;
  ok : bool;
}

let eps = 0.05

(* the recovered predictor must land within this factor of the healthy
   baseline error *)
let recovery_gate = 1.2

let rows_of m i0 k =
  let _, c = Linalg.Mat.dims m in
  Linalg.Mat.init k c (fun i j -> Linalg.Mat.get m (i0 + i) j)

let bits_equal m1 m2 =
  Linalg.Mat.dims m1 = Linalg.Mat.dims m2
  &&
  let r, c = Linalg.Mat.dims m1 in
  try
    for i = 0 to r - 1 do
      for j = 0 to c - 1 do
        if
          Int64.bits_of_float (Linalg.Mat.get m1 i j)
          <> Int64.bits_of_float (Linalg.Mat.get m2 i j)
        then raise Exit
      done
    done;
    true
  with Exit -> false

let mean_abs_err pred truth =
  let n, m = Linalg.Mat.dims pred in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    for j = 0 to m - 1 do
      acc := !acc +. Float.abs (Linalg.Mat.get pred i j -. Linalg.Mat.get truth i j)
    done
  done;
  !acc /. float_of_int (n * m)

let int_member resp key =
  match Serve.Wire.member key resp with Some (Serve.Wire.Int n) -> n | _ -> 0

let float_member resp key =
  match Serve.Wire.member key resp with
  | Some (Serve.Wire.Float x) -> x
  | Some (Serve.Wire.Int n) -> float_of_int n
  | _ -> Float.nan

let string_member resp key =
  match Serve.Wire.member key resp with Some (Serve.Wire.String s) -> s | _ -> ""

let json_of_result r =
  let open Core.Report in
  let timing_note =
    if Host.cores () = 1 then
      "1-core host (cf. BENCH_e15): reselect_ms is a serial upper bound; \
       detection_dies and the error gates are core-independent"
    else "multi-core host"
  in
  Obj
    ([ ("experiment", String "E17") ]
    @ Host.fields ()
    @ [
      ("bench", String r.bench);
      ("timing_note", String timing_note);
      ("n_paths", Int r.n_paths);
      ("shift", String r.shift);
      ("pre_drift_dies", Int r.pre_drift_dies);
      ("baseline_err_ps", Float r.baseline_err_ps);
      ("detection_dies", Int r.detection_dies);
      ("detection_bound", Int r.detection_bound);
      ("recovered", Bool r.recovered);
      ("recovery_err_ps", Float r.recovery_err_ps);
      ("recovery_ratio", Float r.recovery_ratio);
      ("recovery_gate", Float recovery_gate);
      ("reselects", Int r.reselects);
      ("reselect_failures", Int r.reselect_failures);
      ("reselect_ms", Float r.reselect_ms);
      ("generation", Int r.generation);
      ("wrong_answers", Int r.wrong_answers);
      ("request_failures", Int r.request_failures);
      ("server_exit_ok", Bool r.server_exit_ok);
      ("ok", Bool r.ok);
    ])

let run ?(oc = stdout) ?out profile =
  let quick = profile.Profile.name <> "full" in
  let batch = 16 in
  let pre_batches = if quick then 10 else 16 in
  let post_batches = if quick then 24 else 40 in
  let holdout = if quick then 48 else 96 in
  let detection_bound = 6 * batch in
  let bench_name = "s1423" in
  let pre_drift_dies = pre_batches * batch in
  Printf.fprintf oc
    "E17: self-healing soak (%s; %d healthy dies, process shift, up to %d \
     shifted dies, auto re-selection armed)\n%!"
    bench_name pre_drift_dies (post_batches * batch);
  let preset =
    match Circuit.Benchmarks.find bench_name with
    | Some p -> p
    | None ->
      Core.Errors.raise_error
        (Core.Errors.Invalid_input "Drift_exp: s1423 preset missing")
  in
  let _, setup =
    Table1.setup_for profile preset ~t_cons_scale:1.0
      ~max_paths:profile.Profile.max_paths
  in
  let sel = Core.Pipeline.approximate_selection setup ~eps in
  let pool = setup.Core.Pipeline.pool in
  let t_cons = setup.Core.Pipeline.t_cons in
  let a = Timing.Paths.a_mat pool in
  let mu = Timing.Paths.mu_paths pool in
  let artifact =
    Store.of_selection ~fingerprint:"bench:e17 s1423"
      ~n_segments:(Timing.Paths.num_segments pool)
      ~t_cons ~eps ~a ~mu sel
  in
  let n_paths = artifact.Store.n_paths in
  (* the artifact file doubles as the reload path the background
     re-selection writes through *)
  let store_path = Filename.temp_file "pathsel-e17" ".psa" in
  (match Store.save store_path artifact with
   | Ok () -> ()
   | Error e -> Core.Errors.raise_error e);
  let sock = Filename.temp_file "pathsel-e17" ".sock" in
  Sys.remove sock;
  let server_addr = Serve.Unix_sock sock in
  let monitor_cfg =
    {
      Serve.Monitor.default_config with
      Serve.Monitor.calibrate = 32;
      min_dies = 64;
      buffer = 160;
      refit_min = 16;
      cooldown = 0.4;
    }
  in
  let config =
    { Serve.default_config with
      Serve.workers = 2; deadline = 10.0; idle_timeout = 60.0;
      monitor = Some monitor_cfg }
  in
  (* ---- die populations: healthy stream + holdout, then the shifted
     world. The process shift is a frozen per-path sensitivity scale
     (systematic slowdown, path-dependent) on top of which every
     streamed die carries Timing.Faults' per-die calibration drift. *)
  let dies_of seed n =
    Timing.Monte_carlo.path_delays (Timing.Monte_carlo.sample (Rng.create seed) pool ~n)
  in
  let d_pre = dies_of 1701 pre_drift_dies in
  let d_pre_hold = dies_of 1702 holdout in
  let shift_rng = Rng.create 1703 in
  let factor =
    Array.init n_paths (fun _ -> 1.06 +. (0.02 *. Rng.gaussian shift_rng))
  in
  let drift_sigma_ps = 0.005 *. t_cons in
  let fault_spec =
    { Timing.Faults.none with Timing.Faults.drift_sigma_ps }
  in
  let scale_paths m =
    let r, c = Linalg.Mat.dims m in
    Linalg.Mat.init r c (fun i j -> Linalg.Mat.get m i j *. factor.(j))
  in
  let d_post =
    (Timing.Faults.inject fault_spec (Rng.create 1704)
       (scale_paths (dies_of 1705 (post_batches * batch))))
      .Timing.Faults.data
  in
  (* the holdout the recovered predictor is scored on: shift only, no
     per-die drift noise, so the ratio gate is stable *)
  let d_post_hold = scale_paths (dies_of 1706 holdout) in
  let shift_desc =
    Printf.sprintf "per-path scale ~ N(1.06, 0.02) + per-die drift N(0, %.1f ps)"
      drift_sigma_ps
  in
  flush oc;
  flush stdout;
  let pid = Unix.fork () in
  if pid = 0 then begin
    match Serve.run ~config ~reload_from:store_path artifact server_addr with
    | () -> Unix._exit 0
    | exception (Core.Errors.Error _ | Unix.Unix_error _ | Sys_error _) ->
      Unix._exit 1
  end;
  let conn = Serve.Client.connect server_addr in
  let failures = ref 0 in
  let wrong = ref 0 in
  (* the client tracks the serving split through the artifact file: a
     generation change in a response means the server hot-swapped, so
     the representative set (and observe's column layout) may differ *)
  let split_of store =
    let p = Store.predictor store in
    (p, Core.Predictor.rep_indices p, Core.Predictor.rem_indices p)
  in
  let cur_gen = ref 1 in
  let cur = ref (split_of artifact) in
  let refresh_split () =
    match Store.load store_path with
    | Ok s -> cur := split_of s
    | Error _ -> ()
  in
  let note_gen resp =
    let g = int_member resp "gen" in
    if g > !cur_gen then begin
      cur_gen := g;
      refresh_split ()
    end
  in
  let observe_rows rows =
    let send () =
      let _, rep, rem = !cur in
      Serve.Client.observe conn
        ~measured:(Linalg.Mat.select_cols rows rep)
        ~truth:(Linalg.Mat.select_cols rows rem)
    in
    match send () with
    | Ok resp -> note_gen resp
    | Error _ ->
      (* most likely a stale split across a hot swap: re-read the
         artifact and retry once before calling it a failure *)
      refresh_split ();
      (match send () with
       | Ok resp -> note_gen resp
       | Error _ -> incr failures)
  in
  let server_stats () =
    match Serve.Client.stats conn with
    | Ok resp ->
      note_gen resp;
      Some resp
    | Error _ ->
      incr failures;
      None
  in
  let predict_scored ~predictor ~measured ~truth =
    match Serve.Client.predict conn measured with
    | Ok (m, _resp) ->
      if not (bits_equal m (Core.Predictor.predict_all predictor ~measured))
      then incr wrong;
      mean_abs_err m truth
    | Error _ ->
      incr failures;
      Float.nan
  in
  let finish () =
    (* ---- phase A: healthy stream calibrates the detector, then the
       pre-drift baseline error is taken on a holdout batch *)
    for k = 0 to pre_batches - 1 do
      observe_rows (rows_of d_pre (k * batch) batch);
      Thread.delay 0.02
    done;
    Thread.delay 0.5;
    (match server_stats () with
     | Some resp ->
       (match Serve.Wire.member "monitor" resp with
        | Some mon ->
          Printf.fprintf oc
            "healthy stream: %d dies observed, state %s (calibrating %s)\n%!"
            (int_member mon "observed") (string_member mon "state")
            (match Serve.Wire.member "calibrating" mon with
             | Some (Serve.Wire.Bool b) -> string_of_bool b
             | _ -> "?")
        | None -> Printf.fprintf oc "WARNING: monitor missing from stats\n%!")
     | None -> ());
    let p1, rep1, rem1 = !cur in
    let baseline_err_ps =
      predict_scored ~predictor:p1
        ~measured:(Linalg.Mat.select_cols d_pre_hold rep1)
        ~truth:(Linalg.Mat.select_cols d_pre_hold rem1)
    in
    Printf.fprintf oc "baseline: %.3f ps mean abs error on %d holdout dies\n%!"
      baseline_err_ps holdout;
    (* ---- phase B: the shifted world streams in; watch the detector
       leave healthy and the background re-selection swap artifacts *)
    let detection = ref (-1) in
    for k = 0 to post_batches - 1 do
      observe_rows (rows_of d_post (k * batch) batch);
      Thread.delay 0.15;
      match server_stats () with
      | Some resp ->
        (match Serve.Wire.member "monitor" resp with
         | Some mon ->
           let st = string_member mon "state" in
           let resel = int_member mon "reselects" in
           if !detection < 0 && (st <> "healthy" || resel > 0) then begin
             detection := (k + 1) * batch;
             Printf.fprintf oc
               "shift detected within %d dies (state %s, cusum %.1f)\n%!"
               !detection st (float_member mon "cusum")
           end
         | None -> ())
      | None -> ()
    done;
    (* settle: allow an in-flight re-selection and its recalibration to
       complete before the final reading *)
    Thread.delay 1.0;
    let reselects, reselect_failures, reselect_ms, generation =
      match server_stats () with
      | Some resp ->
        let gen =
          match Serve.Wire.member "artifact" resp with
          | Some art -> int_member art "generation"
          | None -> 0
        in
        (match Serve.Wire.member "monitor" resp with
         | Some mon ->
           ( int_member mon "reselects",
             int_member mon "reselect_failures",
             float_member mon "last_reselect_ms",
             gen )
         | None -> (0, 0, Float.nan, gen))
      | None -> (0, 0, Float.nan, 0)
    in
    (* ---- phase C: the swapped-in artifact (re-read from the shared
       file) must predict the shifted world within the recovery gate *)
    let recovered_artifact =
      if reselects >= 1 then
        match Store.load store_path with
        | Ok s ->
          let has_marker =
            let marker = "[reselect" in
            let fp = s.Store.fingerprint in
            let lm = String.length marker and n = String.length fp in
            let rec go i =
              i + lm <= n && (String.sub fp i lm = marker || go (i + 1))
            in
            go 0
          in
          if has_marker then Some s else None
        | Error _ -> None
      else None
    in
    let recovered = Option.is_some recovered_artifact && generation >= 2 in
    let recovery_err_ps =
      match recovered_artifact with
      | Some s ->
        let p2, rep2, rem2 = split_of s in
        predict_scored ~predictor:p2
          ~measured:(Linalg.Mat.select_cols d_post_hold rep2)
          ~truth:(Linalg.Mat.select_cols d_post_hold rem2)
      | None -> Float.nan
    in
    Printf.fprintf oc
      "recovery: %d reselect(s) (%d failed), generation %d, %.0f ms wall; \
       %.3f ps on shifted holdout\n%!"
      reselects reselect_failures generation reselect_ms recovery_err_ps;
    Serve.Client.shutdown conn;
    Serve.Client.close conn;
    ( baseline_err_ps, !detection, reselects, reselect_failures, reselect_ms,
      generation, recovered, recovery_err_ps )
  in
  let ( baseline_err_ps, detection_dies, reselects, reselect_failures,
        reselect_ms, generation, recovered, recovery_err_ps ) =
    Fun.protect
      ~finally:(fun () -> try Sys.remove sock with Sys_error _ -> ())
      finish
  in
  let _, status = Unix.waitpid [] pid in
  let server_exit_ok = status = Unix.WEXITED 0 in
  (try Sys.remove store_path with Sys_error _ -> ());
  let recovery_ratio = recovery_err_ps /. baseline_err_ps in
  let ok =
    detection_dies > 0
    && detection_dies <= detection_bound
    && recovered
    && Float.is_finite recovery_ratio
    && recovery_ratio <= recovery_gate
    && !wrong = 0 && !failures = 0 && server_exit_ok
  in
  Printf.fprintf oc
    "E17: detection %d dies (bound %d), recovery ratio %.3f (gate %.2f), \
     %d wrong, %d failed requests, server exit clean: %b\n"
    detection_dies detection_bound recovery_ratio recovery_gate !wrong
    !failures server_exit_ok;
  Printf.fprintf oc "E17 %s\n" (if ok then "ok" else "FAILED");
  flush oc;
  let result =
    {
      bench = bench_name;
      n_paths;
      shift = shift_desc;
      pre_drift_dies;
      baseline_err_ps;
      detection_dies;
      detection_bound;
      recovered;
      recovery_err_ps;
      recovery_ratio;
      reselects;
      reselect_failures;
      reselect_ms;
      generation;
      wrong_answers = !wrong;
      request_failures = !failures;
      server_exit_ok;
      ok;
    }
  in
  (match out with
   | Some path ->
     Core.Report.write_file path (json_of_result result);
     Printf.fprintf oc "wrote %s\n" path
   | None -> ());
  result
