type schedule_row = {
  bench : string;
  linear_r : int;
  linear_evals : int;
  linear_seconds : float;
  bisect_r : int;
  bisect_evals : int;
  bisect_seconds : float;
}

type eta_row = { eta_pct : float; effective_rank : int }

let eps = 0.05

let run_schedule ?(oc = stdout) profile =
  Printf.fprintf oc "Ablation E5: Algorithm-1 schedule (eps = %.0f%%)\n" (100.0 *. eps);
  Printf.fprintf oc "%-9s | %8s %6s %7s | %8s %6s %7s\n" "BENCH" "lin |Pr|" "evals"
    "sec" "bis |Pr|" "evals" "sec";
  Printf.fprintf oc "%s\n" (String.make 64 '-');
  let chosen =
    List.filter
      (fun p ->
        List.mem p.Circuit.Benchmarks.bench_name [ "s1196"; "s1238"; "s1423" ])
      profile.Profile.benches
  in
  let rows =
    List.map
      (fun preset ->
        let _, setup =
          Table1.setup_for profile preset ~t_cons_scale:1.0
            ~max_paths:profile.Profile.max_paths
        in
        let a = Timing.Paths.a_mat setup.Core.Pipeline.pool in
        let mu = Timing.Paths.mu_paths setup.Core.Pipeline.pool in
        let timed schedule =
          let t0 = Unix.gettimeofday () in
          let s =
            Core.Select.approximate ~schedule ~a ~mu ~eps ~t_cons:setup.Core.Pipeline.t_cons ()
          in
          (s, Unix.gettimeofday () -. t0)
        in
        let lin, lin_t = timed Core.Select.Linear in
        let bis, bis_t = timed Core.Select.Bisection in
        let row =
          {
            bench = preset.Circuit.Benchmarks.bench_name;
            linear_r = Array.length lin.Core.Select.indices;
            linear_evals = lin.Core.Select.evaluations;
            linear_seconds = lin_t;
            bisect_r = Array.length bis.Core.Select.indices;
            bisect_evals = bis.Core.Select.evaluations;
            bisect_seconds = bis_t;
          }
        in
        Printf.fprintf oc "%-9s | %8d %6d %7.2f | %8d %6d %7.2f\n" row.bench
          row.linear_r row.linear_evals row.linear_seconds row.bisect_r
          row.bisect_evals row.bisect_seconds;
        flush oc;
        row)
      chosen
  in
  rows

let run_eta ?(oc = stdout) profile =
  Printf.fprintf oc "\nAblation E6: effective-rank threshold eta (s1423)\n";
  let preset =
    match Circuit.Benchmarks.find "s1423" with
    | Some p -> p
    | None -> Core.Errors.raise_error (Core.Errors.Invalid_input "Ablation: s1423 preset missing")
  in
  let _, setup =
    Table1.setup_for profile preset ~t_cons_scale:1.0
      ~max_paths:profile.Profile.max_paths
  in
  let a = Timing.Paths.a_mat setup.Core.Pipeline.pool in
  let svd = Linalg.Svd.factor a in
  let sel = Core.Pipeline.approximate_selection setup ~eps in
  Printf.fprintf oc "rank(A) = %d; |P_r| at eps=5%% = %d\n" (Linalg.Svd.rank svd)
    (Array.length sel.Core.Select.indices);
  Printf.fprintf oc "%8s | %s\n" "eta" "effective rank";
  let rows =
    List.map
      (fun eta ->
        let er = Core.Effective_rank.of_singular_values ~eta svd.Linalg.Svd.s in
        Printf.fprintf oc "%7.0f%% | %d\n" (100.0 *. eta) er;
        { eta_pct = 100.0 *. eta; effective_rank = er })
      [ 0.01; 0.02; 0.05; 0.10 ]
  in
  flush oc;
  rows

type cluster_row = {
  k : int;
  selected : int;
  cluster_eps_r_pct : float;
  cluster_seconds : float;
}

let run_cluster ?(oc = stdout) profile =
  Printf.fprintf oc "\nAblation E7: Section-4.4 clustering speedup (s38417, eps = %.0f%%)\n"
    (100.0 *. eps);
  let preset =
    match Circuit.Benchmarks.find "s38417" with
    | Some p -> p
    | None -> Core.Errors.raise_error (Core.Errors.Invalid_input "Ablation: s38417 preset missing")
  in
  let _, setup =
    Table1.setup_for profile preset ~t_cons_scale:1.0
      ~max_paths:profile.Profile.max_paths
  in
  let a = Timing.Paths.a_mat setup.Core.Pipeline.pool in
  let mu = Timing.Paths.mu_paths setup.Core.Pipeline.pool in
  let t_cons = setup.Core.Pipeline.t_cons in
  Printf.fprintf oc "%10s | %8s %10s %8s\n" "k" "|Pr|" "eps_r%" "sec";
  Printf.fprintf oc "%s\n" (String.make 44 '-');
  let direct_row =
    let t0 = Unix.gettimeofday () in
    let s = Core.Select.approximate ~a ~mu ~eps ~t_cons () in
    {
      k = 1;
      selected = Array.length s.Core.Select.indices;
      cluster_eps_r_pct = 100.0 *. s.Core.Select.eps_r;
      cluster_seconds = Unix.gettimeofday () -. t0;
    }
  in
  Printf.fprintf oc "%10s | %8d %10.2f %8.2f\n" "direct" direct_row.selected
    direct_row.cluster_eps_r_pct direct_row.cluster_seconds;
  let rows =
    List.map
      (fun k ->
        let t0 = Unix.gettimeofday () in
        let c = Core.Cluster.select ~k ~a ~mu ~eps ~t_cons () in
        let row =
          {
            k;
            selected = Array.length c.Core.Cluster.indices;
            cluster_eps_r_pct = 100.0 *. c.Core.Cluster.eps_r;
            cluster_seconds = Unix.gettimeofday () -. t0;
          }
        in
        Printf.fprintf oc "%10d | %8d %10.2f %8.2f\n" row.k row.selected
          row.cluster_eps_r_pct row.cluster_seconds;
        flush oc;
        row)
      [ 2; 4; 8 ]
  in
  Printf.fprintf oc
    "(clustering trades a slightly larger selection for much smaller SVDs)\n";
  flush oc;
  direct_row :: rows

type nested_row = {
  nested_bench : string;
  repivot_r : int;
  repivot_seconds : float;
  nested_r : int;
  nested_seconds : float;
}

let run_nested ?(oc = stdout) profile =
  Printf.fprintf oc
    "\nAblation E10: per-r re-pivoting vs incremental nested pivots (eps = %.0f%%)\n"
    (100.0 *. eps);
  Printf.fprintf oc "%-9s | %10s %8s | %9s %8s\n" "BENCH" "repivot|Pr|" "sec"
    "nested|Pr|" "sec";
  Printf.fprintf oc "%s\n" (String.make 56 '-');
  let chosen =
    List.filter
      (fun p -> List.mem p.Circuit.Benchmarks.bench_name [ "s1238"; "s5378" ])
      profile.Profile.benches
  in
  List.map
    (fun preset ->
      let _, setup =
        Table1.setup_for profile preset ~t_cons_scale:1.0
          ~max_paths:profile.Profile.max_paths
      in
      let a = Timing.Paths.a_mat setup.Core.Pipeline.pool in
      let mu = Timing.Paths.mu_paths setup.Core.Pipeline.pool in
      let t_cons = setup.Core.Pipeline.t_cons in
      let time f =
        let t0 = Unix.gettimeofday () in
        let r = f () in
        (r, Unix.gettimeofday () -. t0)
      in
      let repivot, t_re = time (fun () -> Core.Select.approximate ~a ~mu ~eps ~t_cons ()) in
      let nested, t_ne =
        time (fun () -> Core.Select.approximate_nested ~a ~mu ~eps ~t_cons ())
      in
      let row =
        {
          nested_bench = preset.Circuit.Benchmarks.bench_name;
          repivot_r = Array.length repivot.Core.Select.indices;
          repivot_seconds = t_re;
          nested_r = Array.length nested.Core.Select.indices;
          nested_seconds = t_ne;
        }
      in
      Printf.fprintf oc "%-9s | %10d %8.2f | %9d %8.2f\n" row.nested_bench
        row.repivot_r row.repivot_seconds row.nested_r row.nested_seconds;
      flush oc;
      row)
    chosen

let run ?(oc = stdout) profile =
  let (_ : schedule_row list) = run_schedule ~oc profile in
  let (_ : eta_row list) = run_eta ~oc profile in
  let (_ : cluster_row list) = run_cluster ~oc profile in
  let (_ : nested_row list) = run_nested ~oc profile in
  ()
